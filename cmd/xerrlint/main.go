// Command xerrlint enforces the serving error taxonomy: inside the serving
// layer, every constructed error must carry a taxonomy code, so naked
// fmt.Errorf(...) and errors.New(...) calls are forbidden there — use
// xerr.New/Newf/Wrap/Defectf/Interrupt (or the netout facade's
// NewError/Errorf/WrapError) instead. An untyped error silently classifies
// as INTERNAL at the HTTP boundary, which is exactly the bug class this
// repo's issue #6 removed; the linter keeps it from creeping back.
//
// Usage:
//
//	go run ./cmd/xerrlint [files-or-dirs...]
//
// With no arguments it checks the default serving scope: the serving files
// of internal/core, all of internal/shardnet (wire errors must carry their
// taxonomy code to survive serialization) and all of cmd/netout (test
// files are always exempt — tests legitimately build anonymous errors to
// probe classification).
// It prints one finding per line and exits 1 when any are found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// defaultScope is the serving layer: files whose errors cross the
// ServePool/HTTP boundary and therefore must be classified. The rest of
// internal/core (indexing, persistence, measures) is library surface whose
// errors never reach a status mapper directly, so it stays out of scope.
var defaultScope = []string{
	"internal/core/serve.go",
	"internal/core/guard.go",
	"internal/core/engine.go",
	"internal/core/batch.go",
	"internal/core/progressive.go",
	"internal/core/pipeline.go",
	"internal/core/parallel.go",
	"internal/core/scatter.go",
	"internal/shardnet",
	"cmd/netout",
}

// finding is one forbidden constructor call.
type finding struct {
	pos  token.Position
	call string
}

func (f finding) String() string {
	return fmt.Sprintf("%s: naked %s in serving code; construct a typed error (xerr.New/Newf/Wrap or netout.NewError/Errorf) so it classifies", f.pos, f.call)
}

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = defaultScope
	}
	var files []string
	for _, t := range targets {
		fi, err := os.Stat(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xerrlint: %v\n", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, t)
			continue
		}
		entries, err := os.ReadDir(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xerrlint: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(t, e.Name()))
			}
		}
	}
	var findings []finding
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		fs, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xerrlint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xerrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// checkFile parses one file and reports every fmt.Errorf / errors.New call.
// Detection is syntactic on the selector (package alias . function name):
// good enough for a repo-local rule, no type checking needed.
func checkFile(path string) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var findings []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		name := pkg.Name + "." + sel.Sel.Name
		if name == "fmt.Errorf" || name == "errors.New" {
			findings = append(findings, finding{pos: fset.Position(call.Pos()), call: name})
		}
		return true
	})
	return findings, nil
}
