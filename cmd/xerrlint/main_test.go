package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFileFindsNakedConstructors(t *testing.T) {
	path := writeTemp(t, "bad.go", `package p

import (
	"errors"
	"fmt"
)

func a() error { return fmt.Errorf("naked %d", 1) }
func b() error { return errors.New("also naked") }
`)
	findings, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].String(), "fmt.Errorf") {
		t.Fatalf("first finding: %s", findings[0])
	}
	if !strings.Contains(findings[1].String(), "errors.New") {
		t.Fatalf("second finding: %s", findings[1])
	}
}

func TestCheckFileAllowsTypedConstructors(t *testing.T) {
	path := writeTemp(t, "good.go", `package p

import "netout/internal/xerr"

func a() error { return xerr.Newf(xerr.Internal, "typed %d", 1) }
func b() error { return xerr.New(xerr.Unavailable, "typed") }
func c(err error) error { return xerr.Wrap(xerr.InvalidArgument, err) }
`)
	findings, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("false positives: %v", findings)
	}
}

func TestCheckFileAllowsErrorsIsAsJoin(t *testing.T) {
	// Only the constructors are forbidden — classification helpers from the
	// errors package stay legal everywhere.
	path := writeTemp(t, "helpers.go", `package p

import (
	"context"
	"errors"
)

func a(err error) bool  { return errors.Is(err, context.Canceled) }
func b(err error) error { return errors.Join(err, context.Canceled) }
`)
	findings, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("false positives: %v", findings)
	}
}

// The default serving scope of THIS repository must be clean — this is the
// regression gate `make lint` runs in CI form.
func TestServingScopeIsClean(t *testing.T) {
	root := repoRoot(t)
	for _, target := range defaultScope {
		abs := filepath.Join(root, target)
		fi, err := os.Stat(abs)
		if err != nil {
			t.Fatalf("scope entry %s: %v", target, err)
		}
		var files []string
		if fi.IsDir() {
			entries, err := os.ReadDir(abs)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					files = append(files, filepath.Join(abs, e.Name()))
				}
			}
		} else {
			files = []string{abs}
		}
		for _, f := range files {
			findings, err := checkFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, fd := range findings {
				t.Errorf("%s", fd)
			}
		}
	}
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}
