package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netout"
)

const sampleDump = `#* Mining Outliers in Large Graphs
#@ Ada Lovelace;Charles Babbage
#c KDD
#index 1

#* An Authorless Record
#c KDD
#index 2
`

func TestRun(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "dump.txt")
	outPath := filepath.Join(dir, "net.tsv")
	if err := os.WriteFile(inPath, []byte(sampleDump), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", inPath, "-out", outPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote "+outPath) {
		t.Fatalf("output = %q", out.String())
	}
	g, err := netout.LoadGraph(outPath)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Schema().TypeByName("author")
	if _, ok := g.VertexByName(a, "NULL"); !ok {
		t.Fatal("NULL author missing (default -null-author)")
	}
	if _, ok := g.VertexByName(a, "Ada Lovelace"); !ok {
		t.Fatal("Ada missing")
	}
}

func TestRunWithoutNullAuthor(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "dump.txt")
	outPath := filepath.Join(dir, "net.json")
	if err := os.WriteFile(inPath, []byte(sampleDump), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", inPath, "-out", outPath, "-null-author=false", "-stats=false"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := netout.LoadGraph(outPath)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Schema().TypeByName("author")
	if _, ok := g.VertexByName(a, "NULL"); ok {
		t.Fatal("NULL author present despite -null-author=false")
	}
	if strings.Contains(out.String(), "gini=") {
		t.Fatal("stats printed despite -stats=false")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-in", "/missing", "-out", "/tmp/x.tsv"}, &out); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("#z nope\n"), 0o644)
	if err := run([]string{"-in", bad, "-out", filepath.Join(dir, "x.tsv")}, &out); err == nil {
		t.Error("malformed dump accepted")
	}
	good := filepath.Join(dir, "good.txt")
	os.WriteFile(good, []byte(sampleDump), 0o644)
	if err := run([]string{"-in", good, "-out", "/nonexistent-dir/x.tsv"}, &out); err == nil {
		t.Error("unwritable output accepted")
	}
}
