// Command aminer2hin converts an ArnetMiner/DBLP citation dump — the format
// of the data set the paper's experiments use — into this repository's
// network formats, ready for cmd/netout and cmd/experiments.
//
// Usage:
//
//	aminer2hin -in aminer.txt -out network.tsv
//	aminer2hin -in aminer.txt -out network.json -max-terms 8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"netout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aminer2hin: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aminer2hin", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "ArnetMiner dump file (required)")
		outPath    = fs.String("out", "", "output network file, .tsv or .json (required)")
		minTermLen = fs.Int("min-term-len", 3, "minimum title-token length to become a term vertex")
		maxTerms   = fs.Int("max-terms", 0, "cap term links per paper (0 = no cap)")
		keepStop   = fs.Bool("keep-stopwords", false, "keep stopwords as term vertices")
		nullAuthor = fs.Bool("null-author", true, "attach author-less records to a NULL author vertex")
		stats      = fs.Bool("stats", true, "print a degree-distribution report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}

	opts := netout.AminerBuildOptions{
		MinTermLength:    *minTermLen,
		MaxTermsPerPaper: *maxTerms,
		KeepStopwords:    *keepStop,
	}
	if *nullAuthor {
		opts.MissingAuthor = "NULL"
	}
	g, err := netout.LoadAminer(*in, opts)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprint(out, g.StatsReport())
	}
	if err := netout.SaveGraph(*outPath, g); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}
