// Command hingen generates synthetic DBLP-like heterogeneous information
// networks and writes them to disk, along with a JSON manifest of the
// planted outlier structure.
//
// Usage:
//
//	hingen -out network.tsv [-scale 4] [-seed 7] [-manifest manifest.json]
//	hingen -out network.json -papers 20000 -communities 8 -stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"netout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hingen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hingen", flag.ContinueOnError)
	var (
		outPath     = fs.String("out", "", "output file (.tsv or .json) (required)")
		manifestOut = fs.String("manifest", "", "write the planted-structure manifest as JSON")
		scale       = fs.Int("scale", 1, "background scale factor")
		seed        = fs.Int64("seed", 1, "generator seed")
		papers      = fs.Int("papers", 0, "override background paper count")
		communities = fs.Int("communities", 0, "override community count")
		authors     = fs.Int("authors", 0, "override authors per community")
		noPlants    = fs.Bool("no-plants", false, "disable the planted case-study outliers")
		stats       = fs.Bool("stats", false, "print a degree-distribution report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}

	cfg := netout.ScaledGenConfig(*scale)
	cfg.Seed = *seed
	if *papers > 0 {
		cfg.Papers = *papers
	}
	if *communities > 0 {
		cfg.Communities = *communities
	}
	if *authors > 0 {
		cfg.AuthorsPerCommunity = *authors
	}
	if *noPlants {
		cfg.Planted = netout.GenPlanted{Disable: true}
	}

	g, man, err := netout.Generate(cfg)
	if err != nil {
		return err
	}
	st := g.Stats()
	fmt.Fprintf(out, "generated: %d vertices, %d directed edges\n", st.Vertices, st.EdgesDirected)
	for _, t := range g.Schema().TypeNames() {
		fmt.Fprintf(out, "  %-10s %d\n", t, st.PerType[t])
	}
	if *stats {
		fmt.Fprint(out, g.StatsReport())
	}
	if err := netout.SaveGraph(*outPath, g); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)

	if *manifestOut != "" {
		f, err := os.Create(*manifestOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(man); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *manifestOut)
	}
	return nil
}
