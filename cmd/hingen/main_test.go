package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netout"
)

func TestRun(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.tsv")
	manPath := filepath.Join(dir, "manifest.json")
	var out bytes.Buffer
	err := run([]string{
		"-out", netPath,
		"-manifest", manPath,
		"-papers", "150",
		"-authors", "20",
		"-stats",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"generated:", "author", "gini=", "wrote " + netPath, "wrote " + manPath} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	g, err := netout.LoadGraph(netPath)
	if err != nil {
		t.Fatalf("generated network unreadable: %v", err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty network")
	}
	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man netout.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest not JSON: %v", err)
	}
	if man.Hub == "" {
		t.Fatal("manifest missing hub")
	}
}

func TestRunNoPlants(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.json")
	var out bytes.Buffer
	if err := run([]string{"-out", netPath, "-papers", "100", "-authors", "15", "-no-plants"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := netout.LoadGraph(netPath)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Schema().TypeByName("author")
	if _, ok := g.VertexByName(a, "Christos Hub"); ok {
		t.Fatal("plants present despite -no-plants")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.tsv", "-papers", "50", "-authors", "10"}, &out); err == nil {
		t.Error("unwritable output accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x.tsv"), "-communities", "1"}, &out); err == nil {
		t.Error("invalid generator config accepted")
	}
}
