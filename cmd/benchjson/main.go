// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark runs can be committed, diffed and cited from docs.
//
// Usage:
//
//	go test -run XXX -bench=. . | benchjson -out BENCH.json
//	benchjson -in bench_output.txt
//
// The output records the run's goos/goarch/pkg/cpu header lines plus one
// entry per benchmark result: name, iterations, ns/op and any extra metrics
// (B/op, allocs/op, custom ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"gomaxprocs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "", "benchmark output file (default: stdin)")
	out := fs.String("out", "", "JSON output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// Parse reads `go test -bench` output.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// The -GOMAXPROCS suffix moves into its own field, so a -cpu series
	// stays distinguishable under a stable name (go test omits the suffix
	// entirely when GOMAXPROCS is 1).
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	return res, true
}
