package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netout
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExpand/nnz=4/dense-8         	 2521585	       120.9 ns/op
BenchmarkFig5Threshold/theta=0.01-8   	    1000	      5000 ns/op	   12345 index-bytes
BenchmarkSparseDot-8                  	  500000	      2100 ns/op	      64 B/op	       2 allocs/op
BenchmarkQuery/NetOut                 	     100	    100000 ns/op
PASS
ok  	netout	5.6s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "netout" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(rep.Results))
	}
	// A -cpu series at GOMAXPROCS=1 has no suffix: Procs defaults to 1.
	if r3 := rep.Results[3]; r3.Name != "BenchmarkQuery/NetOut" || r3.Procs != 1 {
		t.Fatalf("r3 = %+v", r3)
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkExpand/nnz=4/dense" || r0.Procs != 8 {
		t.Fatalf("name/procs = %q/%d (suffix should move into Procs)", r0.Name, r0.Procs)
	}
	if r0.Iterations != 2521585 || r0.NsPerOp != 120.9 {
		t.Fatalf("r0 = %+v", r0)
	}
	r1 := rep.Results[1]
	if r1.Metrics["index-bytes"] != 12345 {
		t.Fatalf("custom metric missing: %+v", r1)
	}
	r2 := rep.Results[2]
	if r2.Metrics["B/op"] != 64 || r2.Metrics["allocs/op"] != 2 {
		t.Fatalf("mem metrics missing: %+v", r2)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBad notanumber 5 ns/op\nhello\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("garbage parsed: %+v", rep.Results)
	}
}

func TestRunEndToEnd(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "BenchmarkSparseDot"`, `"ns_per_op": 120.9`, `"index-bytes": 12345`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("JSON output missing %s:\n%s", want, out.String())
		}
	}
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("empty input should error")
	}
}
