package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"netout"
)

// serveTestServer spins up the serve-mode handler over a small generated
// graph, exactly as `netout -serve` wires it (shared registry between the
// pool and the admin mux, event ring, in-flight table, readiness).
func serveTestServer(t *testing.T) (*httptest.Server, *netout.ServePool, *netout.EventRing) {
	t.Helper()
	g := smallGraph(t)
	reg := netout.NewMetricsRegistry()
	slow := netout.NewSlowLog(4)
	ring := netout.NewEventRing(16)
	inflight := netout.NewInflight()
	pool, err := netout.NewServePool(g, netout.ServeOptions{
		Workers:        2,
		MaxQueue:       4,
		DefaultTimeout: 30 * time.Second,
		Obs:            reg,
		SlowLog:        slow,
		Events:         ring,
		Inflight:       inflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	srv := httptest.NewServer(serveHandler(pool, reg, slow,
		netout.AdminWithReadiness(pool.Ready),
		netout.AdminWithEventRing(ring),
		netout.AdminWithInflight(inflight)))
	t.Cleanup(srv.Close)
	return srv, pool, ring
}

func TestServeHandlerQuery(t *testing.T) {
	srv, _, _ := serveTestServer(t)
	q := `FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3;`

	// Same query via ?q= and via POST body must both serve a full ranking.
	for _, req := range []func() (*http.Response, error){
		func() (*http.Response, error) {
			return http.Get(srv.URL + "/query?q=" + url.QueryEscape(q))
		},
		func() (*http.Response, error) {
			return http.Post(srv.URL+"/query", "text/plain", strings.NewReader(q))
		},
	} {
		resp, err := req()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var jr jsonResult
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(jr.Entries) == 0 || len(jr.Entries) > 3 {
			t.Fatalf("entries = %+v, want 1..3 ranked entries", jr.Entries)
		}
		if jr.Partial {
			t.Fatal("unconstrained query reported a partial result")
		}
		if jr.CandidateCount == 0 {
			t.Fatal("CandidateCount missing from response")
		}
	}
}

func TestServeHandlerErrors(t *testing.T) {
	srv, _, _ := serveTestServer(t)
	for name, tc := range map[string]struct {
		path, body string
		want       int
	}{
		"missing query": {"/query", "", http.StatusBadRequest},
		"parse error":   {"/query", "FIND NONSENSE;;", http.StatusBadRequest},
		"bad type":      {"/query", "FIND OUTLIERS FROM nosuchtype JUDGED BY a.b;", http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+tc.path, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status = %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

// The admin endpoints ride on the serve mux, and the pool's robustness
// counters are present in the scrape after traffic.
func TestServeHandlerAdminEndpoints(t *testing.T) {
	srv, _, _ := serveTestServer(t)
	q := `FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3;`
	resp, err := http.Post(srv.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(body)
	for _, metric := range []string{
		"netout_serve_served_total",
		"netout_serve_shed_total",
		"netout_serve_panics_total",
		"netout_serve_timeouts_total",
		"netout_serve_partials_total",
	} {
		if !strings.Contains(scrape, metric) {
			t.Fatalf("scrape missing %s:\n%s", metric, scrape)
		}
	}
}
