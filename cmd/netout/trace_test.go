package main

// Wire-level trace propagation and observability-surface tests for serve
// mode: traceparent accept/mint/echo on /query, the event journal and
// in-flight inspector endpoints, readiness, and the request-latency
// histogram.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"netout"
)

const traceQuery = `FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3;`

func TestServeHandlerTraceparentRoundTrip(t *testing.T) {
	fake := &fakeExecutor{res: &netout.Result{}}
	reg := netout.NewMetricsRegistry()
	srv := httptest.NewServer(serveHandler(fake, reg, nil))
	defer srv.Close()

	// An incoming traceparent is adopted: same trace, the server becomes a
	// child span of the caller's span, and the server's span is echoed back.
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	req, _ := http.NewRequest("GET", srv.URL+"/query?q="+url.QueryEscape(traceQuery), nil)
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	echo := resp.Header.Get("traceparent")
	sc, ok := netout.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if sc.TraceID != callerTrace {
		t.Fatalf("echoed trace %s, want the caller's %s", sc.TraceID, callerTrace)
	}
	if sc.SpanID == callerSpan {
		t.Fatal("server reused the caller's span ID instead of minting its own")
	}
	var jr jsonResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.TraceID != callerTrace {
		t.Fatalf("body trace_id = %q, want %q", jr.TraceID, callerTrace)
	}
	// The executor's context carried the server's span (parented on the
	// caller's), so the engine's trace and event join the distributed trace.
	got, ok := netout.SpanContextFromContext(fake.lastCtx)
	if !ok || got.TraceID != callerTrace || got.ParentSpanID != callerSpan || got.SpanID != sc.SpanID {
		t.Fatalf("execution span context = %+v (ok=%v), want trace %s parent %s span %s",
			got, ok, callerTrace, callerSpan, sc.SpanID)
	}

	// No (or invalid) incoming header: a fresh trace is minted and echoed.
	for _, bad := range []string{"", "not-a-traceparent", "00-" + strings.Repeat("0", 32) + "-" + callerSpan + "-01"} {
		req, _ := http.NewRequest("GET", srv.URL+"/query?q="+url.QueryEscape(traceQuery), nil)
		if bad != "" {
			req.Header.Set("traceparent", bad)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		minted, ok := netout.ParseTraceparent(resp.Header.Get("traceparent"))
		if !ok {
			t.Fatalf("minted traceparent %q does not parse (incoming %q)", resp.Header.Get("traceparent"), bad)
		}
		if minted.TraceID == callerTrace {
			t.Fatal("invalid incoming header was adopted instead of restarted")
		}
		var jr jsonResult
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jr.TraceID != minted.TraceID {
			t.Fatalf("body trace_id %q != echoed header trace %q", jr.TraceID, minted.TraceID)
		}
	}

	// Error responses carry the header too (it is set before any write).
	resp, err = http.Post(srv.URL+"/query", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := netout.ParseTraceparent(resp.Header.Get("traceparent")); !ok {
		t.Fatalf("400 response has no valid traceparent (%q)", resp.Header.Get("traceparent"))
	}
}

// TestServeTraceReachesJournal is the end-to-end correlation check over a
// real pool: the trace ID a client sees in the response header is the trace
// ID on the query's wide event at /debug/events.
func TestServeTraceReachesJournal(t *testing.T) {
	srv, _, ring := serveTestServer(t)
	req, _ := http.NewRequest("POST", srv.URL+"/query", strings.NewReader(traceQuery))
	req.Header.Set("X-Request-Id", "rid-journal")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	sc, ok := netout.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatal("no traceparent on the response")
	}

	evs := ring.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("journal has %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.TraceID != sc.TraceID || ev.SpanID != sc.SpanID {
		t.Fatalf("event trace %s/%s, want the response header's %s/%s",
			ev.TraceID, ev.SpanID, sc.TraceID, sc.SpanID)
	}
	if ev.RequestID != "rid-journal" || ev.Outcome != "ok" {
		t.Fatalf("event = rid %q outcome %q", ev.RequestID, ev.Outcome)
	}

	// The same journal is served at /debug/events.
	resp, err = http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var served []netout.QueryEvent
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("/debug/events is not JSON: %v\n%s", err, body)
	}
	if len(served) != 1 || served[0].TraceID != sc.TraceID {
		t.Fatalf("/debug/events = %+v, want the journaled event", served)
	}
}

// TestServeObservabilitySurfaces covers the remaining admin surfaces in
// serve mode: /readyz flips on Close, /debug/requests answers, and the
// request-latency histogram records by status code.
func TestServeObservabilitySurfaces(t *testing.T) {
	g := smallGraph(t)
	reg := netout.NewMetricsRegistry()
	inflight := netout.NewInflight()
	pool, err := netout.NewServePool(g, netout.ServeOptions{
		Workers: 2, Obs: reg, Inflight: inflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serveHandler(pool, reg, nil,
		netout.AdminWithReadiness(pool.Ready),
		netout.AdminWithInflight(inflight)))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 while serving", code)
	}
	if code, body := get("/debug/requests"); code != http.StatusOK || !strings.Contains(body, "in-flight") {
		t.Fatalf("/debug/requests = %d %q", code, body)
	}

	// One ok query and one 400: the latency histogram records per code.
	if code, _ := get("/query?q=" + url.QueryEscape(traceQuery)); code != http.StatusOK {
		t.Fatalf("query = %d, want 200", code)
	}
	resp, err := http.Post(srv.URL+"/query", "text/plain", strings.NewReader("NOT OQL;"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := counterValue(t, reg, `netout_http_request_seconds_count{code="200"}`); got != 1 {
		t.Fatalf("request histogram code=200 count = %v, want 1", got)
	}
	if got := counterValue(t, reg, `netout_http_request_seconds_count{code="400"}`); got != 1 {
		t.Fatalf("request histogram code=400 count = %v, want 1", got)
	}
	// The response counters kept their exact correspondence.
	if got := counterValue(t, reg, `netout_http_responses_total{code="200"}`); got != 1 {
		t.Fatalf("responses code=200 = %v, want 1", got)
	}

	// Draining: /healthz stays 200 (alive) while /readyz flips to 503.
	pool.Close()
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after Close = %d, want 200", code)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Fatalf("/readyz after Close = %d %q, want 503", code, body)
	}
}
