package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netout"
	"netout/internal/shardnet"
)

// Shard-server mode (-shard-serve): this process hosts its network behind
// the shardnet protocol so a coordinator started with -shard-addrs can
// scatter queries to it. The slice a shard serves is decided per query by
// the coordinator's candidate partition; every shard therefore loads the
// same network (same -net/-gen flags) and builds its own index.

type shardServeConfig struct {
	listen   string
	workers  int // concurrent request executions (reuses -workers)
	queue    int // admitted requests waiting beyond workers (reuses -max-queue)
	reg      *netout.MetricsRegistry
	grace    time.Duration
	adminSrv *http.Server
	quiet    bool
}

// runShardServe blocks serving shard requests on cfg.listen until
// SIGINT/SIGTERM, then drains: the shard server finishes in-flight requests
// (Close waits for them) and the admin endpoint gets cfg.grace to drain.
func runShardServe(g *netout.Graph, mat netout.Materializer, cfg shardServeConfig) error {
	srv, err := shardnet.NewServer(g, mat, shardnet.ServerOptions{
		Workers: cfg.workers,
		Queue:   cfg.queue,
		Obs:     cfg.reg,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	if !cfg.quiet {
		fmt.Printf("shard server on %s (protocol v%d; SIGINT/SIGTERM to drain)\n",
			lis.Addr(), netout.ShardProtocolVersion)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		if !cfg.quiet {
			fmt.Println("shard server draining ...")
		}
		srv.Close()
		shutdownHTTP(cfg.adminSrv, cfg.grace)
	}()
	return srv.Serve(lis)
}
