package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netout"
)

func TestSplitStatements(t *testing.T) {
	src := "FIND OUTLIERS FROM a JUDGED BY a.b;\n\n  FIND OUTLIERS FROM c JUDGED BY c.d ; ;\n"
	got := splitStatements(src)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	for _, stmt := range got {
		if !strings.HasSuffix(stmt, ";") {
			t.Fatalf("statement missing terminator: %q", stmt)
		}
	}
	if got := splitStatements("   \n"); len(got) != 0 {
		t.Fatalf("blank input gave %v", got)
	}
}

func TestSplitNameAndQuery(t *testing.T) {
	name, query, err := splitNameAndQuery(`"Ada Lovelace" FIND OUTLIERS ...`)
	if err != nil || name != "Ada Lovelace" || query != "FIND OUTLIERS ..." {
		t.Fatalf("got %q %q %v", name, query, err)
	}
	name, query, err = splitNameAndQuery(`'X' Q`)
	if err != nil || name != "X" || query != "Q" {
		t.Fatalf("got %q %q %v", name, query, err)
	}
	name, query, err = splitNameAndQuery("Bob FIND ...")
	if err != nil || name != "Bob" || query != "FIND ..." {
		t.Fatalf("got %q %q %v", name, query, err)
	}
	for _, bad := range []string{"", `"unterminated`, "loneword"} {
		if _, _, err := splitNameAndQuery(bad); err == nil {
			t.Errorf("splitNameAndQuery(%q) should fail", bad)
		}
	}
}

func TestCollectQueries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.oql")
	if err := os.WriteFile(path, []byte("A JUDGED BY x.y;\nB JUDGED BY x.y;"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := collectQueries("single;", path)
	if err != nil || len(got) != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := collectQueries("", filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadNetwork(t *testing.T) {
	if _, err := loadNetwork("", 0, 1, true); err == nil {
		t.Error("no source should fail")
	}
	if _, err := loadNetwork("x", 1, 1, true); err == nil {
		t.Error("both sources should fail")
	}
	g, err := loadNetwork("", 1, 1, true)
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("gen load failed: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "net.tsv")
	if err := netout.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := loadNetwork(path, 0, 1, true)
	if err != nil || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("file load failed: %v", err)
	}
}

func smallGraph(t *testing.T) *netout.Graph {
	t.Helper()
	cfg := netout.DefaultGenConfig()
	cfg.Papers = 200
	cfg.AuthorsPerCommunity = 25
	cfg.TermsPerCommunity = 25
	g, _, err := netout.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildMaterializer(t *testing.T) {
	g := smallGraph(t)
	q := `FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue;`
	for _, strat := range []string{"baseline", "pm", "spm", "cached"} {
		mat, err := buildMaterializer(g, strat, 0.5, 1<<20, false, true, []string{q}, true)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if mat == nil {
			t.Fatalf("%s: nil materializer", strat)
		}
	}
	if _, err := buildMaterializer(g, "spm", 0.5, 0, false, true, nil, true); err == nil {
		t.Error("spm without queries should fail")
	}
	if _, err := buildMaterializer(g, "cached", 0.5, 0, false, true, nil, true); err == nil {
		t.Error("cached with zero budget should fail")
	}
	if _, err := buildMaterializer(g, "wat", 0.5, 0, false, true, nil, true); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestPrintResult(t *testing.T) {
	g := smallGraph(t)
	eng := netout.NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3;`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	printResult(&buf, res, true)
	out := buf.String()
	for _, want := range []string{"rank", "timing:", "candidates", "trace: total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// With a cached materializer wired in, -timing also reports cache stats
	// via CacheStats.String.
	mat, err := netout.NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	statsMat = mat
	defer func() { statsMat = nil }()
	eng2 := netout.NewEngine(g, netout.WithMaterializer(mat))
	res2, err := eng2.Execute(`FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3;`)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	printResult(&buf, res2, true)
	if !strings.Contains(buf.String(), "cache: ") || !strings.Contains(buf.String(), "hit rate") {
		t.Errorf("timing output missing cache stats:\n%s", buf.String())
	}
}

func TestNameIndex(t *testing.T) {
	g := smallGraph(t)
	ni := newNameIndex(g)
	if err := ni.print("author", "Christos", 5); err != nil {
		t.Fatal(err)
	}
	if err := ni.print("author", "Christos", 5); err != nil { // cached trie path
		t.Fatal(err)
	}
	if err := ni.print("nosuch", "", 5); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestDispatchCommands(t *testing.T) {
	g := smallGraph(t)
	eng := netout.NewEngine(g)
	ni := newNameIndex(g)
	q := `FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3`
	cases := []string{
		".help",
		".schema",
		".names author Christos",
		q,
		".explain \"Christos Hub\" " + q,
		".suggest " + q,
		".progressive " + q,
	}
	for _, bare := range cases {
		if err := dispatch(eng, ni, bare+";", bare, false); err != nil {
			t.Errorf("dispatch(%q): %v", bare, err)
		}
	}
	bad := []string{
		".unknown",
		".names",
		".explain onlyname",
		".explain",
		".suggest bogus",
	}
	for _, bare := range bad {
		if err := dispatch(eng, ni, bare+";", bare, false); err == nil {
			t.Errorf("dispatch(%q) should fail", bare)
		}
	}
}

func TestReplFromScriptedSession(t *testing.T) {
	g := smallGraph(t)
	eng := netout.NewEngine(g)
	script := strings.Join([]string{
		".help;",
		"FIND OUTLIERS FROM author{\"Christos Hub\"}.paper.author", // multi-line query
		"JUDGED BY author.paper.venue TOP 2;",
		".hist FIND OUTLIERS FROM author JUDGED BY author.paper.venue;",
		"broken query;",
		"exit;",
		"never reached;",
	}, "\n") + "\n"
	// The REPL prints to stdout; drive it end-to-end and just assert it
	// terminates at "exit;" without panicking.
	replFrom(eng, true, strings.NewReader(script))
	// EOF without quit also terminates.
	replFrom(eng, false, strings.NewReader("FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 1;\n"))
}

func TestJSONOutput(t *testing.T) {
	g := smallGraph(t)
	eng := netout.NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 2;`)
	if err != nil {
		t.Fatal(err)
	}
	jsonResults = true
	defer func() { jsonResults = false }()
	var buf bytes.Buffer
	printResult(&buf, res, false)
	var jr jsonResult
	if err := json.Unmarshal(buf.Bytes(), &jr); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if len(jr.Entries) != 2 || jr.Entries[0].Rank != 1 || jr.CandidateCount == 0 {
		t.Fatalf("json result = %+v", jr)
	}
	if jr.Timing != nil || jr.Trace != nil {
		t.Fatalf("timing/trace emitted without -timing: %+v", jr)
	}

	// -json -timing composes: the cost breakdown and phase trace ride along.
	buf.Reset()
	printResult(&buf, res, true)
	if err := json.Unmarshal(buf.Bytes(), &jr); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if jr.Timing == nil {
		t.Fatal("-json -timing missing timing block")
	}
	wantPhases := []string{"parse", "validate", "plan", "materialize", "score", "rank"}
	if len(jr.Trace) != len(wantPhases) {
		t.Fatalf("trace = %+v, want %d phases", jr.Trace, len(wantPhases))
	}
	for i, want := range wantPhases {
		if jr.Trace[i].Phase != want {
			t.Fatalf("trace phase %d = %q, want %q", i, jr.Trace[i].Phase, want)
		}
	}
}
