// Command netout runs outlier queries against a heterogeneous information
// network.
//
// Usage:
//
//	netout -net network.tsv -query 'FIND OUTLIERS FROM ... JUDGED BY ...;'
//	netout -net network.tsv -file queries.oql
//	netout -net network.tsv                # REPL: statements from stdin
//	netout -gen 2 -query '...'             # run against a generated network
//
// Flags select the outlierness measure (-measure netout|pathsim|cossim) and
// the materialization strategy (-strategy baseline|pm|spm). SPM warms its
// index from the supplied query file (or the single -query).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"netout"
	"netout/internal/shardnet"
	"netout/internal/trie"
)

// eventSlowAlways is the latency above which a query's wide event is always
// journaled regardless of -event-sample, so the tail never samples away.
const eventSlowAlways = 100 * time.Millisecond

func main() {
	log.SetFlags(0)
	log.SetPrefix("netout: ")
	var (
		netPath     = flag.String("net", "", "network file (.tsv or .json)")
		genScale    = flag.Int("gen", 0, "generate a synthetic DBLP network at this scale instead of loading one")
		genSeed     = flag.Int64("seed", 1, "generator seed (with -gen)")
		queryText   = flag.String("query", "", "single query to execute")
		queryFile   = flag.String("file", "", "file of ;-separated queries to execute")
		measure     = flag.String("measure", "netout", "outlierness measure: netout, pathsim or cossim")
		strategy    = flag.String("strategy", "baseline", "materialization strategy: baseline, pm, spm or cached")
		threshold   = flag.Float64("spm-threshold", 0.01, "SPM relative frequency threshold")
		cacheMB     = flag.Int("cache-mb", 64, "cache size in MB for -strategy cached")
		subpath     = flag.Bool("subpath-cache", false, "with -strategy cached: share cache entries at (subpath, vertex) granularity, resuming misses from cached prefixes")
		planner     = flag.Bool("planner", true, "with -subpath-cache: steer kernel and persistence choices with the cost-based planner (false = naive persist-everything policy)")
		saveIndex   = flag.String("save-index", "", "write the pm/spm index to this file after building")
		loadIndex   = flag.String("load-index", "", "load a previously saved index instead of building one")
		combine     = flag.String("combine", "average", "multi-path combination: average or concat")
		workers     = flag.Int("workers", 1, "parallel workers for -file query batches")
		parallelism = flag.Int("parallelism", 0, "intra-query pipeline workers (0 = GOMAXPROCS, 1 = sequential)")
		shards      = flag.Int("shards", 0, "scatter–gather shards per engine; candidates are range-partitioned and merged deterministically (0 = unsharded)")
		shardAddrs  = flag.String("shard-addrs", "", "comma-separated shard server addresses; candidates scatter over the network to them instead of in-process shards")
		shardServe  = flag.Bool("shard-serve", false, "run as a shard server: host this network behind the shard protocol on -shard-listen")
		shardListen = flag.String("shard-listen", "127.0.0.1:9200", "with -shard-serve: listen address for the shard protocol")
		drainGrace  = flag.Duration("drain-grace", 5*time.Second, "graceful-shutdown window for in-flight work on SIGINT/SIGTERM (serve, shard-serve and admin servers)")
		explain     = flag.String("explain", "", "with -query: explain this candidate instead of ranking")
		timing      = flag.Bool("timing", false, "print per-query timing breakdown and phase trace")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz, /debug/slow, /debug/events, /debug/requests and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		eventLog    = flag.String("event-log", "", "append one JSON wide event per completed query to this file")
		eventSample = flag.Float64("event-sample", 1.0, "fraction of ok events kept in the journal; errors, partials and slow queries are always kept")
		serveAddr   = flag.String("serve", "", "serve queries over HTTP on this address (GET/POST /query; admin endpoints ride along)")
		maxQueue    = flag.Int("max-queue", 0, "with -serve: bound the admission queue; a full queue sheds queries with HTTP 429 (0 = unbounded)")
		timeout     = flag.Duration("timeout", 0, "with -serve: default per-query deadline for requests that carry none (0 = none)")
		jsonOut     = flag.Bool("json", false, "emit results as JSON instead of tables")
		progressive = flag.Bool("progressive", false, "run queries progressively, printing top-k snapshots")
		quiet       = flag.Bool("quiet", false, "suppress the banner")
	)
	flag.Parse()

	if *shardServe && *serveAddr != "" {
		log.Fatal("use either -shard-serve or -serve, not both")
	}

	g, err := loadNetwork(*netPath, *genScale, *genSeed, *quiet)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		st := g.Stats()
		fmt.Printf("loaded network: %d vertices, %d directed edges\n", st.Vertices, st.EdgesDirected)
		for _, t := range g.Schema().TypeNames() {
			fmt.Printf("  %-10s %d\n", t, st.PerType[t])
		}
	}

	m, err := netout.ParseMeasure(*measure)
	if err != nil {
		log.Fatal(err)
	}

	queries, err := collectQueries(*queryText, *queryFile)
	if err != nil {
		log.Fatal(err)
	}

	comb, err := netout.ParseCombination(*combine)
	if err != nil {
		log.Fatal(err)
	}
	jsonResults = *jsonOut

	var mat netout.Materializer
	if *loadIndex != "" {
		mat, err = netout.LoadIndexFile(g, *loadIndex)
		if err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Printf("loaded %s index (%0.1f MB) from %s\n",
				mat.Strategy(), float64(mat.IndexBytes())/1e6, *loadIndex)
		}
	} else {
		mat, err = buildMaterializer(g, *strategy, *threshold, int64(*cacheMB)<<20, *subpath, *planner, queries, *quiet)
		if err != nil {
			log.Fatal(err)
		}
		if *saveIndex != "" {
			if err := netout.SaveIndexFile(mat, *saveIndex); err != nil {
				log.Fatal(err)
			}
			if !*quiet {
				fmt.Printf("saved index to %s\n", *saveIndex)
			}
		}
	}
	statsMat = mat

	// The query journal and in-flight table ride along whenever any
	// observability surface is on (-metrics-addr, -serve or -event-log):
	// one wide event per completed query into the ring (served at
	// /debug/events) and, with -event-log, an append-only JSONL file.
	var (
		ring     *netout.EventRing
		inflight *netout.Inflight
		events   netout.EventSink
	)
	if *metricsAddr != "" || *serveAddr != "" || *eventLog != "" {
		ring = netout.NewEventRing(0)
		inflight = netout.NewInflight()
		events = ring
		if *eventLog != "" {
			f, err := os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			events = netout.CombineEventSinks(ring, netout.NewJSONLEventWriter(f))
		}
		if *eventSample < 1 {
			events = netout.NewSampledEventSink(events, *eventSample, eventSlowAlways)
		}
	}

	// The admin endpoint: Prometheus metrics, liveness/readiness, the
	// slow-query log, the event journal, the in-flight table and pprof. It
	// serves for as long as the process runs, so it is most useful with the
	// REPL or long query files; one-shot runs still expose their final
	// counters until exit. Serve mode always has metrics (the /query front
	// end and the admin endpoints share one mux), so a -metrics-addr there
	// is optional — set it to scrape on a separate port.
	var (
		reg      *netout.MetricsRegistry
		slow     *netout.SlowLog
		adminSrv *http.Server
	)
	if *metricsAddr != "" || *serveAddr != "" {
		reg = netout.DefaultMetrics()
		slow = netout.NewSlowLog(16)
		netout.RegisterProcessMetrics(reg)
		netout.RegisterMaterializerMetrics(reg, mat)
	}
	if *metricsAddr != "" {
		inflight.RegisterMetrics(reg)
		adminSrv = hardenedServer(*metricsAddr, netout.NewAdminMux(reg, slow,
			netout.AdminWithEventRing(ring),
			netout.AdminWithInflight(inflight)))
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		if !*quiet {
			fmt.Printf("admin endpoint on http://%s (/metrics, /healthz, /readyz, /debug/slow, /debug/events, /debug/requests, /debug/pprof)\n", *metricsAddr)
		}
	}

	// Remote shard fleet: one lazy-dialing client per -shard-addrs entry.
	// The clients are shared by every engine and pool worker; transport
	// failures fold into the exact-prefix Partial contract downstream.
	var remotes []netout.RemoteShard
	for _, a := range strings.Split(*shardAddrs, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		cl := shardnet.Dial(a, shardnet.ClientOptions{Obs: reg})
		defer cl.Close()
		remotes = append(remotes, cl)
	}

	eng := netout.NewEngine(g,
		netout.WithMeasure(m),
		netout.WithMaterializer(mat),
		netout.WithCombination(comb),
		netout.WithQueryParallelism(*parallelism),
		netout.WithShards(*shards),
		netout.WithRemoteShards(remotes...),
		netout.WithObs(reg, slow),
		netout.WithEventSink(events),
		netout.WithInflight(inflight))
	defer eng.Close()

	switch {
	case *shardServe:
		if err := runShardServe(g, mat, shardServeConfig{
			listen: *shardListen, workers: *workers, queue: *maxQueue,
			reg: reg, grace: *drainGrace, adminSrv: adminSrv, quiet: *quiet,
		}); err != nil {
			log.Fatal(err)
		}
	case *serveAddr != "":
		if err := runServe(g, serveConfig{
			addr: *serveAddr, workers: *workers, maxQueue: *maxQueue, timeout: *timeout,
			parallelism: *parallelism, shards: *shards, remotes: remotes,
			measure: m, combine: comb, mat: mat,
			reg: reg, slow: slow, events: events, ring: ring, inflight: inflight,
			drainGrace: *drainGrace, adminSrv: adminSrv,
			quiet: *quiet,
		}); err != nil {
			log.Fatal(err)
		}
	case *explain != "":
		if len(queries) != 1 {
			log.Fatal("-explain needs exactly one query (via -query or -file)")
		}
		x, err := eng.Explain(queries[0], *explain, 15)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(x.Format())
	case len(queries) > 0 && *workers > 1:
		results, err := netout.ExecuteBatch(g, queries, netout.BatchOptions{
			Workers: *workers, Measure: m, Combination: comb, Materializer: mat,
			QueryParallelism: *parallelism, Obs: reg, SlowLog: slow,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i, br := range results {
			fmt.Printf("-- query %d --\n", i+1)
			if br.Err != nil {
				fmt.Printf("error: %v\n", br.Err)
				continue
			}
			printResult(os.Stdout, br.Result, *timing)
		}
	case len(queries) > 0 && *progressive:
		for _, src := range queries {
			if err := runProgressive(eng, src, *timing); err != nil {
				log.Fatal(err)
			}
		}
	case len(queries) > 0:
		for _, src := range queries {
			if err := runOne(eng, src, *timing); err != nil {
				log.Fatal(err)
			}
		}
	default:
		repl(eng, *timing)
	}
}

func loadNetwork(path string, genScale int, seed int64, quiet bool) (*netout.Graph, error) {
	switch {
	case path != "" && genScale > 0:
		return nil, netout.Errorf(netout.CodeInvalidArgument, "use either -net or -gen, not both")
	case path != "":
		return netout.LoadGraph(path)
	case genScale > 0:
		if !quiet {
			fmt.Printf("generating synthetic DBLP network (scale %d, seed %d) ...\n", genScale, seed)
		}
		cfg := netout.ScaledGenConfig(genScale)
		cfg.Seed = seed
		g, _, err := netout.Generate(cfg)
		return g, err
	default:
		return nil, netout.Errorf(netout.CodeInvalidArgument, "need -net <file> or -gen <scale>")
	}
}

func collectQueries(queryText, queryFile string) ([]string, error) {
	var out []string
	if queryText != "" {
		out = append(out, queryText)
	}
	if queryFile != "" {
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return nil, err
		}
		out = append(out, splitStatements(string(data))...)
	}
	return out, nil
}

// splitStatements splits ;-separated statements, ignoring blank ones.
func splitStatements(src string) []string {
	var out []string
	for _, stmt := range strings.Split(src, ";") {
		if strings.TrimSpace(stmt) != "" {
			out = append(out, strings.TrimSpace(stmt)+";")
		}
	}
	return out
}

func buildMaterializer(g *netout.Graph, strategy string, threshold float64, cacheBytes int64, subpath, planner bool, queries []string, quiet bool) (netout.Materializer, error) {
	switch strategy {
	case "baseline":
		return netout.NewBaseline(g), nil
	case "cached":
		var opts []netout.CacheOption
		if subpath {
			opts = append(opts, netout.WithSubpathCache(), netout.WithCachePlanner(planner))
		}
		return netout.NewCached(g, cacheBytes, opts...)
	case "pm":
		if !quiet {
			fmt.Println("pre-materializing all length-2 meta-paths (PM) ...")
		}
		start := time.Now()
		mat := netout.NewPM(g)
		if !quiet {
			fmt.Printf("PM index: %.1f MB in %v\n", float64(mat.IndexBytes())/1e6, time.Since(start).Round(time.Millisecond))
		}
		return mat, nil
	case "spm":
		if len(queries) == 0 {
			return nil, netout.Errorf(netout.CodeInvalidArgument, "-strategy spm needs -query or -file as the initialization query set")
		}
		if !quiet {
			fmt.Printf("selective pre-materialization (SPM, threshold %g) from %d queries ...\n", threshold, len(queries))
		}
		start := time.Now()
		mat, err := netout.NewSPM(g, queries, netout.SPMConfig{Threshold: threshold})
		if err != nil {
			return nil, err
		}
		if !quiet {
			fmt.Printf("SPM index: %.1f MB in %v\n", float64(mat.IndexBytes())/1e6, time.Since(start).Round(time.Millisecond))
		}
		return mat, nil
	}
	return nil, netout.Errorf(netout.CodeInvalidArgument, "unknown strategy %q (want baseline, pm, spm or cached)", strategy)
}

// jsonResults switches all result printing to JSON lines (set by -json).
var jsonResults bool

// runProgressive executes one query progressively, printing a snapshot per
// chunk of the reference set.
func runProgressive(eng *netout.Engine, src string, timing bool) error {
	res, err := eng.ExecuteProgressive(src, netout.ProgressiveOptions{
		OnSnapshot: func(s netout.ProgressiveSnapshot) bool {
			fmt.Printf("[%d/%d refs]", s.ProcessedRefs, s.TotalRefs)
			for i, est := range s.TopK {
				if i >= 3 {
					break
				}
				fmt.Printf("  %s=%.3f±%.3f", est.Name, est.Score, est.HalfWidth)
			}
			fmt.Println()
			return true
		},
	})
	if err != nil {
		return err
	}
	printResult(os.Stdout, res, timing)
	return nil
}

func runOne(eng *netout.Engine, src string, timing bool) error {
	res, err := eng.Execute(src)
	if err != nil {
		return err
	}
	printResult(os.Stdout, res, timing)
	return nil
}

// jsonResult is the machine-readable result shape emitted by -json. With
// -timing, the Figure 4 cost breakdown and the per-phase trace ride along,
// so the two flags compose instead of -json silently dropping -timing.
type jsonResult struct {
	// RequestID is the serving layer's correlation ID (set in -serve mode,
	// echoed from the X-Request-Id response header; empty for CLI output).
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the W3C trace the query ran under (set in -serve mode,
	// matching the traceparent response header; empty for CLI output).
	TraceID        string      `json:"trace_id,omitempty"`
	Entries        []jsonEntry `json:"entries"`
	Partial        bool        `json:"partial,omitempty"`
	Skipped        int         `json:"skipped"`
	CandidateCount int         `json:"candidates"`
	ReferenceCount int         `json:"references"`
	TotalMicros    int64       `json:"total_us"`
	Timing         *jsonTiming `json:"timing,omitempty"`
	Trace          []jsonSpan  `json:"trace,omitempty"`
}

type jsonEntry struct {
	Rank  int     `json:"rank"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

type jsonTiming struct {
	SetRetrievalUs   int64 `json:"set_retrieval_us"`
	TraversalUs      int64 `json:"traversal_us"`
	TraversedVectors int64 `json:"traversed_vectors"`
	IndexedUs        int64 `json:"indexed_us"`
	IndexedVectors   int64 `json:"indexed_vectors"`
	ScoringUs        int64 `json:"scoring_us"`
}

type jsonSpan struct {
	Phase            string `json:"phase"`
	DurationUs       int64  `json:"duration_us"`
	TraversedVectors int64  `json:"traversed_vectors,omitempty"`
	IndexedVectors   int64  `json:"indexed_vectors,omitempty"`
	CacheHits        int64  `json:"cache_hits,omitempty"`
	CacheMisses      int64  `json:"cache_misses,omitempty"`
}

func printResult(w io.Writer, res *netout.Result, timing bool) {
	if jsonResults {
		jr := jsonResult{
			Partial:        res.Partial,
			Skipped:        len(res.Skipped),
			CandidateCount: res.CandidateCount,
			ReferenceCount: res.ReferenceCount,
			TotalMicros:    res.Timing.Total.Microseconds(),
		}
		for i, e := range res.Entries {
			jr.Entries = append(jr.Entries, jsonEntry{Rank: i + 1, Name: e.Name, Score: e.Score})
		}
		if timing {
			t := res.Timing
			jr.Timing = &jsonTiming{
				SetRetrievalUs:   t.SetRetrieval.Microseconds(),
				TraversalUs:      t.NotIndexed.Microseconds(),
				TraversedVectors: t.TraversedVectors,
				IndexedUs:        t.Indexed.Microseconds(),
				IndexedVectors:   t.IndexedVectors,
				ScoringUs:        t.Scoring.Microseconds(),
			}
			if res.Trace != nil {
				for _, s := range res.Trace.Spans {
					jr.Trace = append(jr.Trace, jsonSpan{
						Phase:            s.Phase,
						DurationUs:       s.Duration.Microseconds(),
						TraversedVectors: s.Stats.TraversedVectors,
						IndexedVectors:   s.Stats.IndexedVectors,
						CacheHits:        s.Stats.CacheHits,
						CacheMisses:      s.Stats.CacheMisses,
					})
				}
			}
		}
		enc := json.NewEncoder(w)
		if err := enc.Encode(jr); err != nil {
			fmt.Fprintf(os.Stderr, "netout: encoding result: %v\n", err)
		}
		return
	}
	printResultTable(w, res, timing)
}

// statsMat is the materializer whose cache counters the timing output
// reports (set by main; nil in tests that call printResult directly).
var statsMat netout.Materializer

func printResultTable(w io.Writer, res *netout.Result, timing bool) {
	if res.Partial {
		fmt.Fprintln(w, "(partial result: the deadline expired mid-query; entries cover the candidates scored so far)")
	}
	fmt.Fprintf(w, "%-5s %-12s %s\n", "rank", "score", "name")
	for i, e := range res.Entries {
		fmt.Fprintf(w, "%-5d %-12.4f %s\n", i+1, e.Score, e.Name)
	}
	if len(res.Skipped) > 0 {
		fmt.Fprintf(w, "(%d candidates skipped: zero visibility under the feature meta-paths)\n", len(res.Skipped))
	}
	fmt.Fprintf(w, "(%d candidates, %d reference vertices, %v)\n",
		res.CandidateCount, res.ReferenceCount, res.Timing.Total.Round(time.Microsecond))
	if timing {
		t := res.Timing
		fmt.Fprintf(w, "timing: set retrieval %v | traversal %v (%d vectors) | index %v (%d vectors) | scoring %v\n",
			t.SetRetrieval.Round(time.Microsecond),
			t.NotIndexed.Round(time.Microsecond), t.TraversedVectors,
			t.Indexed.Round(time.Microsecond), t.IndexedVectors,
			t.Scoring.Round(time.Microsecond))
		if res.Trace != nil {
			fmt.Fprint(w, res.Trace.Format())
		}
		if statsMat != nil {
			if cs, ok := netout.CacheStatsOf(statsMat); ok {
				fmt.Fprintf(w, "cache: %s\n", cs)
			}
		}
	}
}

const replHelp = `commands (all terminated by ';'):
  FIND OUTLIERS ...            run an outlier query
  .schema                      show vertex types and allowed links
  .names <type> [<prefix>]     list vertex names with a prefix (max 25)
  .explain <name> <query>      decompose <name>'s score under <query>
  .suggest <query>             rank alternative feature meta-paths
  .progressive <query>         run with progressive top-k snapshots
  .hist <query>                histogram of the candidate score distribution
  .help                        this message
  quit`

func repl(eng *netout.Engine, timing bool) { replFrom(eng, timing, os.Stdin) }

// replFrom runs the REPL loop over an arbitrary input stream (tests inject
// scripted sessions here).
func replFrom(eng *netout.Engine, timing bool, in io.Reader) {
	fmt.Println(`enter queries terminated by ';' (".help;" for commands, "quit;" to exit):`)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	names := newNameIndex(eng.Graph())
	prompt := func() { fmt.Print("netout> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		src := strings.TrimSpace(buf.String())
		buf.Reset()
		bare := strings.TrimSpace(strings.TrimSuffix(src, ";"))
		if strings.EqualFold(bare, "quit") || strings.EqualFold(bare, "exit") {
			return
		}
		if err := dispatch(eng, names, src, bare, timing); err != nil {
			fmt.Printf("error: %v\n", err)
		}
		prompt()
	}
}

func dispatch(eng *netout.Engine, names *nameIndex, src, bare string, timing bool) error {
	if !strings.HasPrefix(bare, ".") {
		return runOne(eng, src, timing)
	}
	fields := strings.Fields(bare)
	switch fields[0] {
	case ".help":
		fmt.Println(replHelp)
		return nil
	case ".schema":
		printSchema(eng.Graph())
		return nil
	case ".names":
		if len(fields) < 2 {
			return netout.Errorf(netout.CodeInvalidArgument, ".names wants: .names <type> [<prefix>]")
		}
		prefix := ""
		if len(fields) > 2 {
			prefix = fields[2]
		}
		return names.print(fields[1], prefix, 25)
	case ".explain":
		if len(fields) < 3 {
			return netout.Errorf(netout.CodeInvalidArgument, ".explain wants: .explain <name> <query>")
		}
		rest := strings.TrimSpace(strings.TrimPrefix(bare, ".explain"))
		name, query, err := splitNameAndQuery(rest)
		if err != nil {
			return err
		}
		x, err := eng.Explain(query+";", name, 15)
		if err != nil {
			return err
		}
		fmt.Print(x.Format())
		return nil
	case ".suggest":
		query := strings.TrimSpace(strings.TrimPrefix(bare, ".suggest"))
		sugs, err := eng.SuggestFeatures(query+";", 4)
		if err != nil {
			return err
		}
		fmt.Print(netout.FormatSuggestions(sugs, 10))
		return nil
	case ".progressive":
		query := strings.TrimSpace(strings.TrimPrefix(bare, ".progressive"))
		res, err := eng.ExecuteProgressive(query+";", netout.ProgressiveOptions{
			OnSnapshot: func(s netout.ProgressiveSnapshot) bool {
				fmt.Printf("  [%d/%d refs]", s.ProcessedRefs, s.TotalRefs)
				for i, est := range s.TopK {
					if i >= 3 {
						break
					}
					fmt.Printf("  %s=%.3f±%.3f", est.Name, est.Score, est.HalfWidth)
				}
				fmt.Println()
				return true
			},
		})
		if err != nil {
			return err
		}
		printResult(os.Stdout, res, timing)
		return nil
	case ".hist":
		query := strings.TrimSpace(strings.TrimPrefix(bare, ".hist"))
		// Drop any TOP clause so the histogram covers the full candidate set.
		res, err := eng.Execute(query + ";")
		if err != nil {
			return err
		}
		h, err := res.ScoreHistogram(12)
		if err != nil {
			return err
		}
		fmt.Print(h.Render(48))
		return nil
	}
	return netout.Errorf(netout.CodeInvalidArgument, "unknown command %s (try .help;)", fields[0])
}

// splitNameAndQuery splits `.explain` arguments: either a quoted name
// followed by the query, or a single bare word.
func splitNameAndQuery(rest string) (name, query string, err error) {
	if rest == "" {
		return "", "", netout.Errorf(netout.CodeInvalidArgument, "missing candidate name")
	}
	if rest[0] == '"' || rest[0] == '\'' {
		quote := rest[0]
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return "", "", netout.Errorf(netout.CodeInvalidArgument, "unterminated quoted name")
		}
		return rest[1 : 1+end], strings.TrimSpace(rest[2+end:]), nil
	}
	parts := strings.SplitN(rest, " ", 2)
	if len(parts) != 2 {
		return "", "", netout.Errorf(netout.CodeInvalidArgument, ".explain wants: .explain <name> <query>")
	}
	return parts[0], strings.TrimSpace(parts[1]), nil
}

func printSchema(g *netout.Graph) {
	s := g.Schema()
	st := g.Stats()
	for _, t := range s.TypeNames() {
		id, _ := s.TypeByName(t)
		var links []string
		for _, d := range s.AllowedFrom(id) {
			links = append(links, s.TypeName(d))
		}
		fmt.Printf("  %-12s %8d vertices, links to: %s\n", t, st.PerType[t], strings.Join(links, ", "))
	}
}

// nameIndex lazily builds per-type radix tries for prefix lookup.
type nameIndex struct {
	g     *netout.Graph
	tries map[string]*trie.Trie
}

func newNameIndex(g *netout.Graph) *nameIndex {
	return &nameIndex{g: g, tries: map[string]*trie.Trie{}}
}

func (ni *nameIndex) print(typeName, prefix string, limit int) error {
	t, ok := ni.g.Schema().TypeByName(typeName)
	if !ok {
		return netout.Errorf(netout.CodeNotFound, "unknown vertex type %q", typeName)
	}
	tr := ni.tries[typeName]
	if tr == nil {
		tr = &trie.Trie{}
		for _, v := range ni.g.VerticesOfType(t) {
			tr.Put(ni.g.Name(v), int32(v))
		}
		ni.tries[typeName] = tr
	}
	keys, _ := tr.WithPrefix(prefix)
	for i, k := range keys {
		if i >= limit {
			fmt.Printf("  ... and %d more\n", len(keys)-limit)
			break
		}
		fmt.Printf("  %s\n", k)
	}
	if len(keys) == 0 {
		fmt.Println("  (no matches)")
	}
	return nil
}
