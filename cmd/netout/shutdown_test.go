package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"netout"
)

// Tests for the serve-mode lifecycle fixes: hardened http.Server timeouts
// (the bare ListenAndServe had none — slowloris could pin connection slots
// forever) and signal-driven graceful shutdown that lets in-flight queries
// finish inside the drain grace.

func TestHardenedServerSetsTimeouts(t *testing.T) {
	srv := hardenedServer("127.0.0.1:0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris can pin a connection slot forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alives never release their slots")
	}
}

// blockingExecutor parks Execute until released, so tests can hold a query
// in flight across a shutdown.
type blockingExecutor struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingExecutor) Execute(ctx context.Context, src string) (*netout.Result, error) {
	close(b.started)
	select {
	case <-b.release:
		return &netout.Result{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// A query in flight when the stop signal fires completes with a 200: the
// drain closes the listener but waits for active requests before returning.
func TestServeAndDrainWaitsForInflightQuery(t *testing.T) {
	ex := &blockingExecutor{started: make(chan struct{}), release: make(chan struct{})}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := hardenedServer(lis.Addr().String(), serveHandler(ex, nil, nil))
	stop := make(chan struct{})
	drained := make(chan error, 1)
	go func() { drained <- serveAndDrain(srv, lis, stop, 5*time.Second) }()

	type httpOutcome struct {
		status int
		err    error
	}
	got := make(chan httpOutcome, 1)
	go func() {
		resp, err := http.Get("http://" + lis.Addr().String() + "/query?q=x")
		if err != nil {
			got <- httpOutcome{0, err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		got <- httpOutcome{resp.StatusCode, nil}
	}()

	<-ex.started
	close(stop)
	// The drain must be blocked on the in-flight request, not returning
	// with the query abandoned.
	select {
	case err := <-drained:
		t.Fatalf("serveAndDrain returned %v with a query still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(ex.release)
	if o := <-got; o.err != nil || o.status != http.StatusOK {
		t.Fatalf("in-flight query during drain: status %d, err %v; want 200", o.status, o.err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	// The listener is closed: new connections must be refused.
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// A request that outlives the grace is force-closed and serveAndDrain
// reports the failed drain instead of hanging.
func TestServeAndDrainForceClosesAfterGrace(t *testing.T) {
	ex := &blockingExecutor{started: make(chan struct{}), release: make(chan struct{})}
	defer close(ex.release)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := hardenedServer(lis.Addr().String(), serveHandler(ex, nil, nil))
	stop := make(chan struct{})
	drained := make(chan error, 1)
	go func() { drained <- serveAndDrain(srv, lis, stop, 50*time.Millisecond) }()
	go http.Get("http://" + lis.Addr().String() + "/query?q=x")
	<-ex.started
	close(stop)
	select {
	case err := <-drained:
		if err == nil {
			t.Fatal("grace expired with a request running, want a non-nil drain error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveAndDrain hung past the grace")
	}
}

// An error before the stop signal (e.g. the listener dying) surfaces
// immediately rather than waiting on a drain that will never be requested.
func TestServeAndDrainSurfacesServeError(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := hardenedServer(lis.Addr().String(), http.NewServeMux())
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan error, 1)
	go func() { done <- serveAndDrain(srv, lis, stop, time.Second) }()
	lis.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("serve error = %v, want the closed-listener failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveAndDrain did not surface the listener failure")
	}
}

func TestShutdownHTTPNilSafe(t *testing.T) {
	shutdownHTTP(nil, time.Second) // must not panic
}

func TestShutdownHTTPDrainsAuxServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := hardenedServer(lis.Addr().String(), http.NewServeMux())
	go srv.Serve(lis)
	// Confirm it serves, then drain and confirm it stopped.
	if resp, err := http.Get("http://" + lis.Addr().String() + "/metrics"); err == nil {
		resp.Body.Close()
	}
	shutdownHTTP(srv, time.Second)
	if _, err := net.DialTimeout("tcp", lis.Addr().String(), time.Second); err == nil {
		t.Error("aux server still accepting after shutdownHTTP")
	}
}
