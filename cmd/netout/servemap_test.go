package main

// Table-driven status-mapping suite for the /query handler: every serving
// error class, injected through the queryExecutor seam, must map to its
// taxonomy status and JSON error code, bump the per-status response
// counter, and carry the request ID end to end. This is the codification of
// the statuses the seed handler got wrong (everything fell through to 400).

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"netout"
)

// fakeExecutor returns a canned (result, error) pair and records the
// context it was called with.
type fakeExecutor struct {
	res     *netout.Result
	err     error
	lastCtx context.Context
}

func (f *fakeExecutor) Execute(ctx context.Context, src string) (*netout.Result, error) {
	f.lastCtx = ctx
	return f.res, f.err
}

// counterValue digs one counter's value out of a Prometheus scrape (0 when
// the sample is absent).
func counterValue(t *testing.T, reg *netout.MetricsRegistry, sample string) float64 {
	t.Helper()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(sb.String())
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("counter %s: %v", sample, err)
	}
	return v
}

func TestServeHandlerStatusMapping(t *testing.T) {
	for name, tc := range map[string]struct {
		err      error
		status   int
		code     string
		noBody   bool
		contains string // substring of the JSON error message
	}{
		"overloaded": {
			err:    netout.ErrOverloaded,
			status: http.StatusTooManyRequests,
			code:   "RESOURCE_EXHAUSTED",
		},
		"pool closed": {
			err:    netout.ErrPoolClosed,
			status: http.StatusServiceUnavailable,
			code:   "UNAVAILABLE",
		},
		"deadline": {
			err:    context.DeadlineExceeded,
			status: http.StatusGatewayTimeout,
			code:   "DEADLINE_EXCEEDED",
		},
		"canceled": {
			err:    context.Canceled,
			status: netout.StatusClientClosedRequest,
			noBody: true,
		},
		"panic defect": {
			err:    &netout.PanicError{Value: "boom", Stack: "goroutine 1 [running]:"},
			status: http.StatusInternalServerError,
			code:   "INTERNAL",
		},
		"invalid argument": {
			err:    netout.NewError(netout.CodeInvalidArgument, "oql: bad query"),
			status: http.StatusBadRequest,
			code:   "INVALID_ARGUMENT",
		},
		"not found": {
			err:    netout.NewError(netout.CodeNotFound, `core: no author named "X"`),
			status: http.StatusNotFound,
			code:   "NOT_FOUND",
		},
		// THE seed bug: an unclassified error must be the server's fault
		// (500), never blamed on the client's query (400).
		"unclassified": {
			err:      errors.New("disk exploded"),
			status:   http.StatusInternalServerError,
			code:     "INTERNAL",
			contains: "disk exploded",
		},
	} {
		t.Run(name, func(t *testing.T) {
			reg := netout.NewMetricsRegistry()
			fake := &fakeExecutor{err: tc.err}
			srv := httptest.NewServer(serveHandler(fake, reg, netout.NewSlowLog(4)))
			defer srv.Close()

			resp, err := http.Post(srv.URL+"/query", "text/plain",
				strings.NewReader("FIND OUTLIERS FROM author JUDGED BY author.paper.venue;"))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body: %s)", resp.StatusCode, tc.status, body)
			}
			if resp.Header.Get("X-Request-Id") == "" {
				t.Fatal("response carries no X-Request-Id")
			}
			if tc.noBody {
				if len(body) != 0 {
					t.Fatalf("canceled response has a body nobody will read: %q", body)
				}
			} else {
				var je jsonError
				if err := json.Unmarshal(body, &je); err != nil {
					t.Fatalf("error body is not JSON: %v (%s)", err, body)
				}
				if je.Error.Code != tc.code {
					t.Fatalf("body code = %q, want %q", je.Error.Code, tc.code)
				}
				if je.Error.RequestID != resp.Header.Get("X-Request-Id") {
					t.Fatalf("body rid %q != header rid %q", je.Error.RequestID, resp.Header.Get("X-Request-Id"))
				}
				if tc.contains != "" && !strings.Contains(je.Error.Message, tc.contains) {
					t.Fatalf("message %q does not contain %q", je.Error.Message, tc.contains)
				}
			}
			sample := `netout_http_responses_total{code="` + strconv.Itoa(tc.status) + `"}`
			if got := counterValue(t, reg, sample); got != 1 {
				t.Fatalf("%s = %v, want 1", sample, got)
			}
		})
	}
}

// A caller-supplied X-Request-Id is honored: echoed on the response, in the
// error body, and passed to the executor's context.
func TestServeHandlerRequestIDPropagation(t *testing.T) {
	reg := netout.NewMetricsRegistry()
	fake := &fakeExecutor{err: netout.NewError(netout.CodeInvalidArgument, "bad")}
	srv := httptest.NewServer(serveHandler(fake, reg, netout.NewSlowLog(4)))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query",
		strings.NewReader("FIND OUTLIERS FROM author JUDGED BY author.paper.venue;"))
	req.Header.Set("X-Request-Id", "lb-assigned-77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "lb-assigned-77" {
		t.Fatalf("header rid = %q, want the caller's", got)
	}
	var je jsonError
	if err := json.Unmarshal(body, &je); err != nil {
		t.Fatal(err)
	}
	if je.Error.RequestID != "lb-assigned-77" {
		t.Fatalf("body rid = %q, want the caller's", je.Error.RequestID)
	}
	if netout.RequestIDFromContext(fake.lastCtx) != "lb-assigned-77" {
		t.Fatalf("executor ctx rid = %q, want the caller's", netout.RequestIDFromContext(fake.lastCtx))
	}
}

// Success path: the request ID rides the JSON result, and the 200 counter
// bumps.
func TestServeHandlerSuccessRequestID(t *testing.T) {
	reg := netout.NewMetricsRegistry()
	fake := &fakeExecutor{res: &netout.Result{
		Entries:        []netout.Entry{{Name: "A", Score: 0.5}},
		CandidateCount: 3,
		ReferenceCount: 3,
	}}
	srv := httptest.NewServer(serveHandler(fake, reg, netout.NewSlowLog(4)))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/query", "text/plain",
		strings.NewReader("FIND OUTLIERS FROM author JUDGED BY author.paper.venue;"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var jr jsonResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.RequestID == "" || jr.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("result rid %q != header rid %q", jr.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if got := counterValue(t, reg, `netout_http_responses_total{code="200"}`); got != 1 {
		t.Fatalf("200 counter = %v, want 1", got)
	}
}

// The double-write fix: a result that cannot be encoded (NaN score) must
// yield one clean 500 JSON error — not a 200 with an error message glued
// onto a half-written body.
func TestServeHandlerEncodeFailureClean500(t *testing.T) {
	reg := netout.NewMetricsRegistry()
	fake := &fakeExecutor{res: &netout.Result{
		Entries: []netout.Entry{{Name: "NaN", Score: math.NaN()}},
	}}
	srv := httptest.NewServer(serveHandler(fake, reg, netout.NewSlowLog(4)))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/query", "text/plain",
		strings.NewReader("FIND OUTLIERS FROM author JUDGED BY author.paper.venue;"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 for an unencodable result", resp.StatusCode)
	}
	var je jsonError
	if err := json.Unmarshal(body, &je); err != nil {
		t.Fatalf("encode-failure body is not clean JSON: %v (%s)", err, body)
	}
	if je.Error.Code != "INTERNAL" {
		t.Fatalf("body code = %q, want INTERNAL", je.Error.Code)
	}
	if got := counterValue(t, reg, `netout_http_responses_total{code="500"}`); got != 1 {
		t.Fatalf("500 counter = %v, want 1", got)
	}
	if got := counterValue(t, reg, `netout_http_responses_total{code="200"}`); got != 0 {
		t.Fatalf("200 counter = %v, want 0 (no success must be recorded)", got)
	}
}

// End to end against a REAL pool: once Close has begun, /query answers 503
// UNAVAILABLE — the seed returned 400, telling clients their query was bad
// while the server was the one shutting down.
func TestServeHandlerClosedPool503(t *testing.T) {
	g := smallGraph(t)
	reg := netout.NewMetricsRegistry()
	slow := netout.NewSlowLog(4)
	pool, err := netout.NewServePool(g, netout.ServeOptions{Workers: 1, Obs: reg, SlowLog: slow})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serveHandler(pool, reg, slow))
	defer srv.Close()
	pool.Close()

	resp, err := http.Post(srv.URL+"/query", "text/plain",
		strings.NewReader(`FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue;`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 from a closed pool (body: %s)", resp.StatusCode, body)
	}
	var je jsonError
	if err := json.Unmarshal(body, &je); err != nil {
		t.Fatal(err)
	}
	if je.Error.Code != "UNAVAILABLE" {
		t.Fatalf("body code = %q, want UNAVAILABLE", je.Error.Code)
	}
}
