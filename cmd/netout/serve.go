package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netout"
)

// HTTP serve mode (-serve): a ServePool behind a minimal query endpoint,
// with the admin endpoints (/metrics, /healthz, /debug/slow, /debug/pprof)
// riding along on the same mux. Statuses are derived from the typed error
// taxonomy (netout.ErrorHTTPStatus), never from string matching:
//
//	400 CodeInvalidArgument   the query must change (parse/validate errors)
//	404 CodeNotFound          a vertex named by the query does not exist
//	429 CodeResourceExhausted admission control shed the query; retry later
//	499 CodeCanceled          the client hung up; no body is written
//	503 CodeUnavailable       the pool is draining or closed; retry elsewhere
//	504 CodeDeadlineExceeded  the deadline expired without a usable partial
//	500 CodeInternal          the server's fault — including every
//	                          unclassified error; never the client's
//
// Every response carries an X-Request-Id header (the caller's, if the
// request supplied one, else freshly generated); error bodies repeat it in
// JSON so a 500 can be correlated with its stack at /debug/slow.

type serveConfig struct {
	addr        string
	workers     int
	maxQueue    int
	timeout     time.Duration
	parallelism int
	shards      int
	remotes     []netout.RemoteShard
	measure     netout.Measure
	combine     netout.Combination
	mat         netout.Materializer
	reg         *netout.MetricsRegistry
	slow        *netout.SlowLog
	events      netout.EventSink
	ring        *netout.EventRing
	inflight    *netout.Inflight
	drainGrace  time.Duration
	adminSrv    *http.Server
	quiet       bool
}

// runServe starts the pool and blocks serving HTTP on cfg.addr until
// SIGINT/SIGTERM, then drains: in-flight requests get cfg.drainGrace to
// finish before the server force-closes, and the separate admin endpoint
// (if any) drains under the same grace.
func runServe(g *netout.Graph, cfg serveConfig) error {
	pool, err := netout.NewServePool(g, netout.ServeOptions{
		Workers:          cfg.workers,
		Measure:          cfg.measure,
		Combination:      cfg.combine,
		Materializer:     cfg.mat,
		QueryParallelism: cfg.parallelism,
		Shards:           cfg.shards,
		RemoteShards:     cfg.remotes,
		MaxQueue:         cfg.maxQueue,
		DefaultTimeout:   cfg.timeout,
		Obs:              cfg.reg,
		SlowLog:          cfg.slow,
		Events:           cfg.events,
		Inflight:         cfg.inflight,
	})
	if err != nil {
		return err
	}
	defer pool.Close()
	lis, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if !cfg.quiet {
		fmt.Printf("serving queries on http://%s/query (max-queue %d, timeout %v; admin endpoints on the same address)\n",
			lis.Addr(), cfg.maxQueue, cfg.timeout)
	}
	srv := hardenedServer(cfg.addr, serveHandler(pool, cfg.reg, cfg.slow,
		netout.AdminWithReadiness(pool.Ready),
		netout.AdminWithEventRing(cfg.ring),
		netout.AdminWithInflight(cfg.inflight)))
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if !cfg.quiet {
			fmt.Println("draining ...")
		}
		close(stop)
	}()
	defer shutdownHTTP(cfg.adminSrv, cfg.drainGrace)
	return serveAndDrain(srv, lis, stop, cfg.drainGrace)
}

// hardenedServer wraps h in an http.Server with the timeouts a bare
// http.ListenAndServe never sets: a client trickling its request header
// (slowloris) or parking an idle keep-alive connection cannot pin a
// connection slot forever.
func hardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveAndDrain serves srv on lis until stop fires, then shuts down
// gracefully: the listener closes, in-flight requests get grace to finish,
// and whatever remains is force-closed. nil means a clean drain; a non-nil
// error after stop means the grace expired with requests still running.
func serveAndDrain(srv *http.Server, lis net.Listener, stop <-chan struct{}, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	select {
	case err := <-done:
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}

// shutdownHTTP gracefully stops an auxiliary server (the admin endpoint),
// force-closing when grace expires. nil-safe, so call sites need not track
// whether the endpoint was configured.
func shutdownHTTP(srv *http.Server, grace time.Duration) {
	if srv == nil {
		return
	}
	if grace <= 0 {
		grace = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if srv.Shutdown(ctx) != nil {
		srv.Close()
	}
}

// queryExecutor is the slice of ServePool the handler needs. The seam lets
// tests drive the full status-mapping table with fake executors returning
// each error class, without constructing pool-internal failure states.
type queryExecutor interface {
	Execute(ctx context.Context, src string) (*netout.Result, error)
}

// jsonError is the machine-readable error body: the taxonomy code (stable
// contract), the human-readable message, and the request ID for /debug/slow
// correlation.
type jsonError struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id,omitempty"`
	} `json:"error"`
}

// serveHandler builds the serve-mode HTTP handler around an existing pool
// (split from runServe so tests can drive it through httptest). Admin
// options configure the mux's optional surfaces (readiness, event ring,
// in-flight table).
func serveHandler(pool queryExecutor, reg *netout.MetricsRegistry, slow *netout.SlowLog, adminOpts ...netout.AdminOption) http.Handler {
	mux := netout.NewAdminMux(reg, slow, adminOpts...)
	const responsesHelp = "HTTP /query responses by status code."
	const requestSecondsHelp = "HTTP /query request latency by status code."
	recordResponse := func(status int, elapsed time.Duration) {
		if reg != nil {
			code := strconv.Itoa(status)
			reg.Counter(`netout_http_responses_total{code="`+code+`"}`, responsesHelp).Inc()
			reg.Histogram(`netout_http_request_seconds{code="`+code+`"}`, requestSecondsHelp, nil).
				Observe(elapsed.Seconds())
		}
	}
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		countResponse := func(status int) { recordResponse(status, time.Since(begin)) }
		// Resolve the request ID first: every response — including the
		// early 400s below — must be correlatable.
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = netout.NewRequestID()
		}
		w.Header().Set("X-Request-Id", rid)
		// Wire-ready trace propagation: adopt the caller's W3C traceparent
		// when it parses (becoming a child span of theirs), mint a fresh
		// trace otherwise, and echo this server's span back so the caller
		// can parent us in its own trace view. The span context rides the
		// request context into the engine's trace and wide event.
		sc, ok := netout.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			sc = netout.SpanContext{TraceID: netout.NewTraceID()}
		}
		sc = sc.Child()
		w.Header().Set("traceparent", sc.Traceparent())
		writeError := func(status int, code netout.ErrorCode, msg string) {
			countResponse(status)
			var je jsonError
			je.Error.Code = string(code)
			je.Error.Message = msg
			je.Error.RequestID = rid
			body, _ := json.Marshal(je)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(body)
			w.Write([]byte("\n"))
		}
		src := r.URL.Query().Get("q")
		if src == "" && r.Body != nil {
			b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				writeError(http.StatusBadRequest, netout.CodeInvalidArgument,
					"reading request body: "+err.Error())
				return
			}
			src = string(b)
		}
		if strings.TrimSpace(src) == "" {
			writeError(http.StatusBadRequest, netout.CodeInvalidArgument,
				"missing query: pass ?q=... or a request body")
			return
		}
		ctx := netout.ContextWithRequestID(r.Context(), rid)
		ctx = netout.ContextWithSpanContext(ctx, sc)
		res, err := pool.Execute(ctx, src)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// The client hung up: nobody is reading the body. Record the
				// 499 for the access-side metrics and stop — writing a
				// response to a dead connection only obscures logs.
				countResponse(netout.StatusClientClosedRequest)
				w.WriteHeader(netout.StatusClientClosedRequest)
				return
			}
			writeError(netout.ErrorHTTPStatus(err), netout.ErrorCodeOf(err), err.Error())
			return
		}
		jr := jsonResult{
			RequestID:      rid,
			TraceID:        sc.TraceID,
			Partial:        res.Partial,
			Skipped:        len(res.Skipped),
			CandidateCount: res.CandidateCount,
			ReferenceCount: res.ReferenceCount,
			TotalMicros:    res.Timing.Total.Microseconds(),
		}
		for i, e := range res.Entries {
			jr.Entries = append(jr.Entries, jsonEntry{Rank: i + 1, Name: e.Name, Score: e.Score})
		}
		// Encode to a buffer before touching the ResponseWriter: an encode
		// failure (e.g. a NaN score) must produce a clean 500, not a 200
		// header followed by a half-written body with an error message
		// glued onto valid JSON.
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(jr); err != nil {
			writeError(http.StatusInternalServerError, netout.CodeInternal,
				"encoding result: "+err.Error())
			return
		}
		countResponse(http.StatusOK)
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
	})
	return mux
}
