package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"netout"
)

// HTTP serve mode (-serve): a ServePool behind a minimal query endpoint,
// with the admin endpoints (/metrics, /healthz, /debug/slow, /debug/pprof)
// riding along on the same mux. The status mapping makes the pool's
// robustness semantics visible to HTTP clients: a shed query is 429 (back
// off and retry), an expired deadline without a usable partial is 504, a
// recovered worker panic is 500, and everything else that fails is the
// client's query (400).

type serveConfig struct {
	addr        string
	workers     int
	maxQueue    int
	timeout     time.Duration
	parallelism int
	measure     netout.Measure
	combine     netout.Combination
	mat         netout.Materializer
	reg         *netout.MetricsRegistry
	slow        *netout.SlowLog
	quiet       bool
}

// runServe starts the pool and blocks serving HTTP on cfg.addr.
func runServe(g *netout.Graph, cfg serveConfig) error {
	pool, err := netout.NewServePool(g, netout.ServeOptions{
		Workers:          cfg.workers,
		Measure:          cfg.measure,
		Combination:      cfg.combine,
		Materializer:     cfg.mat,
		QueryParallelism: cfg.parallelism,
		MaxQueue:         cfg.maxQueue,
		DefaultTimeout:   cfg.timeout,
		Obs:              cfg.reg,
		SlowLog:          cfg.slow,
	})
	if err != nil {
		return err
	}
	defer pool.Close()
	if !cfg.quiet {
		fmt.Printf("serving queries on http://%s/query (max-queue %d, timeout %v; admin endpoints on the same address)\n",
			cfg.addr, cfg.maxQueue, cfg.timeout)
	}
	return http.ListenAndServe(cfg.addr, serveHandler(pool, cfg.reg, cfg.slow))
}

// serveHandler builds the serve-mode HTTP handler around an existing pool
// (split from runServe so tests can drive it through httptest).
func serveHandler(pool *netout.ServePool, reg *netout.MetricsRegistry, slow *netout.SlowLog) http.Handler {
	mux := netout.NewAdminMux(reg, slow)
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		src := r.URL.Query().Get("q")
		if src == "" && r.Body != nil {
			b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			src = string(b)
		}
		if strings.TrimSpace(src) == "" {
			http.Error(w, "missing query: pass ?q=... or a request body", http.StatusBadRequest)
			return
		}
		res, err := pool.Execute(r.Context(), src)
		switch {
		case errors.Is(err, netout.ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		case netout.IsPanicError(err):
			http.Error(w, err.Error(), http.StatusInternalServerError)
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			w.Header().Set("Content-Type", "application/json")
			jr := jsonResult{
				Partial:        res.Partial,
				Skipped:        len(res.Skipped),
				CandidateCount: res.CandidateCount,
				ReferenceCount: res.ReferenceCount,
				TotalMicros:    res.Timing.Total.Microseconds(),
			}
			for i, e := range res.Entries {
				jr.Entries = append(jr.Entries, jsonEntry{Rank: i + 1, Name: e.Name, Score: e.Score})
			}
			if err := json.NewEncoder(w).Encode(jr); err != nil {
				fmt.Fprintf(w, "encoding result: %v", err)
			}
		}
	})
	return mux
}
