package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"netout"
)

// querySets instantiates the three Table 4 templates with h.queries random
// author names each.
func (h *harness) querySets() map[string][]string {
	g, _ := h.network()
	names, err := netout.RandomVertexNames(g, "author", h.queries, h.seed+100)
	if err != nil {
		log.Fatal(err)
	}
	out := map[string][]string{}
	for _, tpl := range netout.PaperTemplates() {
		out[tpl.Name] = netout.BuildQuerySet(tpl, names)
	}
	return out
}

// runSet executes every query in the set and returns the total wall time,
// the accumulated per-stage breakdown, and per-query latencies.
func runSet(eng *netout.Engine, queries []string) (time.Duration, netout.Timing, []time.Duration, error) {
	var agg netout.Timing
	latencies := make([]time.Duration, 0, len(queries))
	start := time.Now()
	for _, src := range queries {
		qStart := time.Now()
		res, err := eng.Execute(src)
		if err != nil {
			return 0, agg, nil, fmt.Errorf("query %q: %w", src, err)
		}
		latencies = append(latencies, time.Since(qStart))
		agg.SetRetrieval += res.Timing.SetRetrieval
		agg.NotIndexed += res.Timing.NotIndexed
		agg.Indexed += res.Timing.Indexed
		agg.Scoring += res.Timing.Scoring
		agg.TraversedVectors += res.Timing.TraversedVectors
		agg.IndexedVectors += res.Timing.IndexedVectors
	}
	return time.Since(start), agg, latencies, nil
}

// percentile returns the p-quantile of the latencies (p in [0,1]).
func percentile(latencies []time.Duration, p float64) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fig3 reproduces Figure 3: total execution time for the generated query
// sets under Baseline, PM and SPM (threshold 0.01).
func (h *harness) fig3() {
	g, _ := h.network()
	sets := h.querySets()
	header(fmt.Sprintf("Figure 3 — total execution time for %d queries per template: Baseline vs PM vs SPM", h.queries))

	fmt.Println("building PM index (all length-2 meta-paths, all vertices) ...")
	pmStart := time.Now()
	pm := netout.NewPM(g)
	fmt.Printf("  PM: %.1f MB, built in %v\n", float64(pm.IndexBytes())/1e6, time.Since(pmStart).Round(time.Millisecond))

	// SPM initialization uses the query sets themselves as the
	// initialization query set (the paper uses all possible queries of the
	// template; the sampled set is the same workload distribution).
	spmByTemplate := map[string]netout.Materializer{}
	for name, qs := range sets {
		spmStart := time.Now()
		spm, err := netout.NewSPM(g, qs, netout.SPMConfig{Threshold: 0.01})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SPM(%s, θ=0.01): %.1f MB, built in %v\n",
			name, float64(spm.IndexBytes())/1e6, time.Since(spmStart).Round(time.Millisecond))
		spmByTemplate[name] = spm
	}
	fmt.Println()

	type cell struct {
		total     time.Duration
		latencies []time.Duration
	}
	results := map[string]map[string]cell{}
	for _, tpl := range netout.PaperTemplates() {
		results[tpl.Name] = map[string]cell{}
		for _, strat := range []struct {
			name string
			mat  netout.Materializer
		}{
			{"Baseline", netout.NewBaseline(g)},
			{"PM", pm},
			{"SPM", spmByTemplate[tpl.Name]},
		} {
			eng := netout.NewEngine(g, netout.WithMaterializer(strat.mat))
			total, _, lats, err := runSet(eng, sets[tpl.Name])
			if err != nil {
				log.Fatal(err)
			}
			results[tpl.Name][strat.name] = cell{total, lats}
		}
	}

	fmt.Printf("%-10s %14s %14s %14s %10s %10s\n",
		"query set", "Baseline (ms)", "PM (ms)", "SPM (ms)", "PM speedup", "SPM speedup")
	for _, tpl := range netout.PaperTemplates() {
		r := results[tpl.Name]
		base := r["Baseline"].total
		fmt.Printf("%-10s %14.1f %14.1f %14.1f %9.1fx %9.1fx\n",
			tpl.Name,
			float64(base.Microseconds())/1000,
			float64(r["PM"].total.Microseconds())/1000,
			float64(r["SPM"].total.Microseconds())/1000,
			float64(base)/float64(r["PM"].total),
			float64(base)/float64(r["SPM"].total))
	}
	fmt.Println("\nper-query latency percentiles (µs):")
	fmt.Printf("%-10s %-10s %10s %10s %10s\n", "query set", "strategy", "p50", "p95", "p99")
	for _, tpl := range netout.PaperTemplates() {
		for _, strat := range []string{"Baseline", "PM", "SPM"} {
			lats := results[tpl.Name][strat].latencies
			fmt.Printf("%-10s %-10s %10.1f %10.1f %10.1f\n",
				tpl.Name, strat,
				float64(percentile(lats, 0.50).Nanoseconds())/1000,
				float64(percentile(lats, 0.95).Nanoseconds())/1000,
				float64(percentile(lats, 0.99).Nanoseconds())/1000)
		}
	}
	h.writeCSV("fig3.csv", func(w *csv.Writer) {
		w.Write([]string{"query_set", "strategy", "total_ms", "p50_us", "p95_us", "p99_us"})
		for _, tpl := range netout.PaperTemplates() {
			for _, strat := range []string{"Baseline", "PM", "SPM"} {
				c := results[tpl.Name][strat]
				w.Write([]string{
					tpl.Name, strat,
					fmt.Sprintf("%.3f", float64(c.total.Microseconds())/1000),
					fmt.Sprintf("%.1f", float64(percentile(c.latencies, 0.50).Nanoseconds())/1000),
					fmt.Sprintf("%.1f", float64(percentile(c.latencies, 0.95).Nanoseconds())/1000),
					fmt.Sprintf("%.1f", float64(percentile(c.latencies, 0.99).Nanoseconds())/1000),
				})
			}
		}
	})
	fmt.Println("\npaper's finding: PM and SPM are 5-100x faster than Baseline; SPM trails PM but")
	fmt.Println("stays well above Baseline (>10x on Q3).")
	fmt.Println()
}

// fig4 reproduces Figure 4: the SPM (θ=0.01) per-stage processing-time
// breakdown for each query set.
func (h *harness) fig4() {
	g, _ := h.network()
	sets := h.querySets()
	header("Figure 4 — SPM (θ=0.01) processing-time breakdown per query set")

	fmt.Printf("%-10s %18s %18s %18s\n",
		"query set", "not indexed (ms)", "indexed (ms)", "outlierness (ms)")
	for _, tpl := range netout.PaperTemplates() {
		spm, err := netout.NewSPM(g, sets[tpl.Name], netout.SPMConfig{Threshold: 0.01})
		if err != nil {
			log.Fatal(err)
		}
		eng := netout.NewEngine(g, netout.WithMaterializer(spm))
		_, agg, _, err := runSet(eng, sets[tpl.Name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %18.1f %18.1f %18.1f   (vectors: %d traversed, %d indexed)\n",
			tpl.Name,
			float64(agg.NotIndexed.Microseconds())/1000,
			float64(agg.Indexed.Microseconds())/1000,
			float64(agg.Scoring.Microseconds())/1000,
			agg.TraversedVectors, agg.IndexedVectors)
	}
	fmt.Println("\npaper's finding: materializing non-indexed vectors dominates; loading indexed")
	fmt.Println("vectors is the cheapest part; outlierness calculation sits in between.")
	fmt.Println()
}

// fig5 reproduces Figure 5: SPM average execution time (a) and index size
// (b) across relative-frequency thresholds.
func (h *harness) fig5() {
	g, _ := h.network()
	sets := h.querySets()
	header("Figure 5 — SPM threshold sweep on query set Q1")

	thresholds := []float64{0.001, 0.01, 0.05, 0.1}
	q1 := sets["Q1"]
	type row struct {
		th    float64
		avgUS float64
		bytes int64
	}
	var rows []row
	fmt.Printf("%-12s %22s %18s\n", "threshold", "avg exec time (µs)", "index size (bytes)")
	for _, th := range thresholds {
		spm, err := netout.NewSPM(g, q1, netout.SPMConfig{Threshold: th})
		if err != nil {
			log.Fatal(err)
		}
		eng := netout.NewEngine(g, netout.WithMaterializer(spm))
		total, _, _, err := runSet(eng, q1)
		if err != nil {
			log.Fatal(err)
		}
		r := row{th, float64(total.Microseconds()) / float64(len(q1)), spm.IndexBytes()}
		rows = append(rows, r)
		fmt.Printf("%-12g %22.1f %18d\n", r.th, r.avgUS, r.bytes)
	}
	h.writeCSV("fig5.csv", func(w *csv.Writer) {
		w.Write([]string{"threshold", "avg_exec_us", "index_bytes"})
		for _, r := range rows {
			w.Write([]string{
				fmt.Sprintf("%g", r.th),
				fmt.Sprintf("%.1f", r.avgUS),
				fmt.Sprintf("%d", r.bytes),
			})
		}
	})
	fmt.Println("\npaper's finding: as the threshold rises the index shrinks and the average")
	fmt.Println("query time rises; a good trade-off lies between 0.01 and 0.05.")
	fmt.Println()
}
