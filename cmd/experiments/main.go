// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5's worked example and Section 7's case studies and
// efficiency studies) on a synthetic DBLP-like network.
//
// Usage:
//
//	experiments -run all                       # everything
//	experiments -run table2                    # Table 2: toy measure comparison
//	experiments -run table3                    # Table 3: measure comparison on the hub query
//	experiments -run table5                    # Table 5: case studies
//	experiments -run fig3 -queries 10000       # Fig 3: Baseline vs PM vs SPM
//	experiments -run fig4                      # Fig 4: SPM time breakdown
//	experiments -run fig5                      # Fig 5: SPM threshold sweep
//	experiments -run lof                       # Section 8: LOF comparison
//
// The -scale flag grows the background network; -queries sets the query-set
// size used by the efficiency experiments (the paper uses 10,000).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"netout"
)

type harness struct {
	scale   int
	seed    int64
	queries int
	csvDir  string

	graph    *netout.Graph
	manifest *netout.Manifest
}

// writeCSV emits a CSV artifact into the -csv directory (no-op when unset).
func (h *harness) writeCSV(name string, fill func(w *csv.Writer)) {
	if h.csvDir == "" {
		return
	}
	path := filepath.Join(h.csvDir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := csv.NewWriter(f)
	fill(w)
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "all", "experiment: all, table2, table3, table5, fig3, fig4, fig5, lof, ablation")
		scale   = flag.Int("scale", 2, "background network scale factor")
		seed    = flag.Int64("seed", 1, "generator seed")
		queries = flag.Int("queries", 2000, "query-set size for the efficiency experiments (paper: 10000)")
		csvDir  = flag.String("csv", "", "also write figure series as CSV files into this directory")
	)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	h := &harness{scale: *scale, seed: *seed, queries: *queries, csvDir: *csvDir}
	experiments := map[string]func(){
		"table2":   h.table2,
		"table3":   h.table3,
		"table5":   h.table5,
		"fig3":     h.fig3,
		"fig4":     h.fig4,
		"fig5":     h.fig5,
		"lof":      h.lof,
		"ablation": h.ablation,
	}
	order := []string{"table2", "table3", "table5", "fig3", "fig4", "fig5", "lof", "ablation"}

	if *run == "all" {
		for _, name := range order {
			experiments[name]()
		}
		return
	}
	fn, ok := experiments[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want one of all %s\n", *run, strings.Join(order, " "))
		os.Exit(2)
	}
	fn()
}

// network lazily generates the shared synthetic network.
func (h *harness) network() (*netout.Graph, *netout.Manifest) {
	if h.graph == nil {
		fmt.Printf("## generating synthetic DBLP network (scale %d, seed %d)\n", h.scale, h.seed)
		cfg := netout.ScaledGenConfig(h.scale)
		cfg.Seed = h.seed
		g, man, err := netout.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := g.Stats()
		fmt.Printf("   %d authors, %d papers, %d venues, %d terms; %d directed edges\n\n",
			st.PerType["author"], st.PerType["paper"], st.PerType["venue"], st.PerType["term"],
			st.EdgesDirected)
		h.graph, h.manifest = g, man
	}
	return h.graph, h.manifest
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 78))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 78))
}
