package main

import (
	"fmt"
	"log"
	"sort"

	"netout"
)

// table2 reproduces the paper's Table 2 exactly: the toy candidate set of
// Table 1 scored under NetOut, PathSim and CosSim. This experiment is fully
// specified by the paper, so the values must match to two decimals.
func (h *harness) table2() {
	header("Table 2 — toy example: NetOut vs PathSim vs CosSim (paper values in brackets)")

	names := []string{"Sarah", "Rob", "Lucy", "Joe", "Emma"}
	records := [][4]float64{
		{10, 10, 1, 1},
		{0, 1, 20, 20},
		{0, 5, 10, 10},
		{0, 0, 0, 2},
		{0, 0, 0, 30},
	}
	paper := map[string][3]float64{
		"Sarah": {100, 100, 100},
		"Rob":   {6.24, 9.97, 12.43},
		"Lucy":  {31.11, 32.79, 32.83},
		"Joe":   {50, 1.94, 7.04},
		"Emma":  {3.33, 5.44, 7.04},
	}
	vec := func(rec [4]float64) netout.Vector {
		var idx []int32
		var val []float64
		for i, c := range rec {
			if c != 0 {
				idx = append(idx, int32(i))
				val = append(val, c)
			}
		}
		return netout.Vector{Idx: idx, Val: val}
	}
	var cands []netout.Vector
	for _, r := range records {
		cands = append(cands, vec(r))
	}
	refs := make([]netout.Vector, 100)
	for i := range refs {
		refs[i] = vec([4]float64{10, 10, 1, 1})
	}
	no := netout.ScoreVectors(netout.MeasureNetOut, cands, refs)
	ps := netout.ScoreVectors(netout.MeasurePathSim, cands, refs)
	cs := netout.ScoreVectors(netout.MeasureCosSim, cands, refs)

	fmt.Printf("%-8s %22s %22s %22s\n", "", "Ω-NetOut", "Ω-PathSim", "Ω-CosSim")
	for i, n := range names {
		p := paper[n]
		fmt.Printf("%-8s %12.2f [%6.2f] %12.2f [%6.2f] %12.2f [%6.2f]\n",
			n, no[i], p[0], ps[i], p[1], cs[i], p[2])
	}
	fmt.Println()
}

// visibility returns each author's paper count (their visibility proxy, as
// Table 3's discussion uses "has published roughly N papers").
func paperCount(g *netout.Graph, name string) int {
	author, _ := g.Schema().TypeByName("author")
	paper, _ := g.Schema().TypeByName("paper")
	v, ok := g.VertexByName(author, name)
	if !ok {
		return 0
	}
	return g.Degree(v, paper)
}

// table3 reproduces Table 3's comparison: the same hub-coauthor query under
// the three measures, demonstrating that PathSim and CosSim surface only
// low-visibility authors while NetOut's outliers span a wide visibility
// range.
func (h *harness) table3() {
	g, man := h.network()
	header(fmt.Sprintf("Table 3 — top-5 outliers among %s's coauthors, P = author.paper.venue", man.Hub))

	src := fmt.Sprintf(`FIND OUTLIERS
FROM author{%q}.paper.author
JUDGED BY author.paper.venue
TOP 5;`, man.Hub)

	type row struct {
		name   string
		score  float64
		papers int
	}
	results := map[netout.Measure][]row{}
	for _, m := range []netout.Measure{netout.MeasureNetOut, netout.MeasurePathSim, netout.MeasureCosSim} {
		eng := netout.NewEngine(g, netout.WithMeasure(m))
		res, err := eng.Execute(src)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range res.Entries {
			results[m] = append(results[m], row{e.Name, e.Score, paperCount(g, e.Name)})
		}
	}
	fmt.Printf("%-4s | %-28s %8s %6s | %-28s %8s %6s | %-28s %8s %6s\n",
		"rank",
		"NetOut", "Ω", "#pap",
		"PathSim", "Ω", "#pap",
		"CosSim", "Ω", "#pap")
	for i := 0; i < 5; i++ {
		line := fmt.Sprintf("%-4d", i+1)
		for _, m := range []netout.Measure{netout.MeasureNetOut, netout.MeasurePathSim, netout.MeasureCosSim} {
			r := results[m][i]
			line += fmt.Sprintf(" | %-28s %8.3f %6d", r.name, r.score, r.papers)
		}
		fmt.Println(line)
	}
	span := func(m netout.Measure) (lo, hi int) {
		lo, hi = 1<<30, 0
		for _, r := range results[m] {
			if r.papers < lo {
				lo = r.papers
			}
			if r.papers > hi {
				hi = r.papers
			}
		}
		return
	}
	nlo, nhi := span(netout.MeasureNetOut)
	plo, phi := span(netout.MeasurePathSim)
	clo, chi := span(netout.MeasureCosSim)
	fmt.Printf("\nvisibility span of the top-5 (paper counts): NetOut %d..%d | PathSim %d..%d | CosSim %d..%d\n",
		nlo, nhi, plo, phi, clo, chi)
	fmt.Println("paper's finding: NetOut spans ~30..300 papers; PathSim/CosSim top-5 all have <2 papers.")
	fmt.Println()
}

// table5 reproduces the three case-study queries of Table 5.
func (h *harness) table5() {
	g, man := h.network()
	header("Table 5 — case study: three queries, NetOut rankings")

	kind := map[string]string{man.Hub: "hub", man.Null: "missing-data artifact"}
	for _, n := range man.CrossField {
		kind[n] = "cross-field"
	}
	for _, n := range man.Students {
		kind[n] = "student/rare-venue"
	}
	for _, n := range man.Loners {
		kind[n] = "loner"
	}
	for _, n := range man.Normals {
		kind[n] = "normal coauthor"
	}

	queries := []struct{ title, src string }{
		{
			fmt.Sprintf("Sc = Sr = author{%q}.paper.author, P = author.paper.venue", man.Hub),
			fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY author.paper.venue TOP 10;`, man.Hub),
		},
		{
			fmt.Sprintf("Sc = Sr = author{%q}.paper.author, P = author.paper.author", man.Hub),
			fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY author.paper.author TOP 10;`, man.Hub),
		},
		{
			fmt.Sprintf("Sc = Sr = venue{%q}.paper.author, P = author.paper.venue", man.MainVenue),
			fmt.Sprintf(`FIND OUTLIERS FROM venue{%q}.paper.author JUDGED BY author.paper.venue TOP 10;`, man.MainVenue),
		},
	}
	eng := netout.NewEngine(g)
	results := make([]*netout.Result, len(queries))
	for qi, q := range queries {
		fmt.Printf("Query %d: %s\n", qi+1, q.title)
		res, err := eng.Execute(q.src)
		if err != nil {
			log.Fatal(err)
		}
		results[qi] = res
		fmt.Printf("%-4s %-10s %-28s %s\n", "rank", "Ω-value", "name", "planted role")
		for i, e := range res.Entries {
			role := kind[e.Name]
			if role == "" {
				role = "-"
			}
			fmt.Printf("%-4d %-10.3f %-28s %s\n", i+1, e.Score, e.Name, role)
		}
		fmt.Println()
	}
	// Quantify "different judgment criteria lead to rather different
	// results" (the paper observes only one author overlapping between its
	// first two case-study rankings).
	shared, jaccard := netout.OverlapAtK(results[0], results[1], 10)
	fmt.Printf("query 1 vs query 2 (venue- vs coauthor-judged): top-10 overlap = %d (Jaccard %.2f)",
		shared, jaccard)
	if rho, err := netout.SpearmanRho(results[0], results[1]); err == nil {
		fmt.Printf(", Spearman ρ over shared candidates = %.2f", rho)
	}
	fmt.Println()
	fmt.Println("paper's finding: different criteria produce substantially different rankings (its two")
	fmt.Println("case-study lists share a single author). Here the planted cross-field authors are")
	fmt.Println("outlying under both criteria by construction; the query-specific plants (students")
	fmt.Println("under venues, loners under coauthors) appear only in their own ranking.")
	fmt.Println()
}

// lof runs the Section 8 comparison: NetOut against LOF, kNN-distance and
// the random-walk similarities (Personalized PageRank; SimRank on the
// query's ego network), evaluated against the planted venue outliers with
// precision/recall/AP/AUC.
func (h *harness) lof() {
	g, man := h.network()
	header("Section 8 — NetOut vs LOF / kNN / PPR / SimRank on the hub-coauthor venue query")

	eng := netout.NewEngine(g)
	src := fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY author.paper.venue;`, man.Hub)
	q, err := netout.ParseQuery(src)
	if err != nil {
		log.Fatal(err)
	}
	cands, err := eng.EvalSet(q.From)
	if err != nil {
		log.Fatal(err)
	}
	// Feature vectors for every candidate.
	tr := netout.NewTraverser(g)
	p, _ := netout.ParseMetaPath(g.Schema(), "author.paper.venue")
	vecs := make([]netout.Vector, len(cands))
	names := make([]string, len(cands))
	for i, v := range cands {
		vec, err := tr.NeighborVector(p, v)
		if err != nil {
			log.Fatal(err)
		}
		vecs[i] = vec
		names[i] = g.Name(v)
	}

	planted := map[string]bool{}
	for _, n := range man.PlantedOutliers() {
		planted[n] = true
	}
	k := len(man.PlantedOutliers())

	rankOf := func(scores []float64, descending bool) []string {
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if descending {
				return scores[idx[a]] > scores[idx[b]]
			}
			return scores[idx[a]] < scores[idx[b]]
		})
		out := make([]string, len(idx))
		for i, j := range idx {
			out[i] = names[j]
		}
		return out
	}

	var reports []netout.EvalReport
	addReport := func(method string, scores []float64, descending bool) {
		rep, err := netout.Evaluate(method, rankOf(scores, descending), planted, k)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}

	addReport("NetOut", netout.ScoreVectors(netout.MeasureNetOut, vecs, vecs), false)

	lofScores, err := netout.LOFScores(vecs, netout.LOFOptions{K: 5, Distance: netout.CosineDistance})
	if err != nil {
		log.Fatal(err)
	}
	addReport("LOF (cosine)", lofScores, true)
	lofEuc, err := netout.LOFScores(vecs, netout.LOFOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	addReport("LOF (euclidean)", lofEuc, true)
	knn, err := netout.KNNOutlierScores(vecs, 5)
	if err != nil {
		log.Fatal(err)
	}
	addReport("kNN distance", knn, true)

	ppr, err := netout.PPROutlierScores(g, cands, cands, netout.PPROptions{})
	if err != nil {
		log.Fatal(err)
	}
	addReport("PPR (restart walk)", ppr, false)

	cppr, err := netout.PPRMetaPathOutlierScores(g, p, cands, cands, netout.PPROptions{MaxIter: 20})
	if err != nil {
		log.Fatal(err)
	}
	addReport("PPR (meta-path walk)", cppr, false)

	// SimRank is O(n²); run it on the candidates' 2-hop ego network.
	ego, err := netout.EgoNetwork(g, cands, 2)
	if err != nil {
		log.Fatal(err)
	}
	if len(ego) <= 4096 {
		sub, mapping, err := netout.InducedSubgraph(g, ego)
		if err != nil {
			log.Fatal(err)
		}
		m, err := netout.SimRank(sub, netout.SimRankOptions{})
		if err != nil {
			log.Fatal(err)
		}
		subCands := make([]netout.VertexID, len(cands))
		for i, v := range cands {
			subCands[i] = mapping[v]
		}
		addReport("SimRank (2-hop ego)", netout.SimRankOutlierScores(m, subCands, subCands), false)
	} else {
		fmt.Printf("(SimRank skipped: ego network has %d vertices, above the O(n²) guard)\n", len(ego))
	}

	fmt.Printf("candidates: %d, planted venue outliers: %d (cross-field + students), k = %d\n\n",
		len(cands), k, k)
	fmt.Print(netout.FormatEvalReports(reports))
	fmt.Println("\npaper's finding (Section 8): alternatives such as LOF \"cannot produce better results than NetOut\".")
	fmt.Println()
}
