package main

import (
	"fmt"
	"log"
	"time"

	"netout"
)

// ablation studies the design choices DESIGN.md calls out, beyond the
// paper's own figures: the multi-path combination mode, the Cached strategy
// against the paper's three, batch-worker scaling over a shared index, and
// the progressive executor's overhead against exact Equation (1) execution.
func (h *harness) ablation() {
	g, man := h.network()
	header("Ablations — combination mode, Cached strategy, batch workers, progressive overhead")

	// --- Combination modes on a two-feature query.
	twoFeature := fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author
JUDGED BY author.paper.venue, author.paper.author : 2.0 TOP 10;`, man.Hub)
	fmt.Println("combination modes (two-feature hub query):")
	var avgRes, ccRes *netout.Result
	for _, c := range []netout.Combination{netout.CombineAverage, netout.CombineConcat} {
		eng := netout.NewEngine(g, netout.WithCombination(c))
		start := time.Now()
		res, err := eng.Execute(twoFeature)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		top := "-"
		if len(res.Entries) > 0 {
			top = fmt.Sprintf("%s (%.3f)", res.Entries[0].Name, res.Entries[0].Score)
		}
		fmt.Printf("  %-10s %10.1f µs   top: %s\n", c, float64(elapsed.Microseconds()), top)
		if c == netout.CombineAverage {
			avgRes = res
		} else {
			ccRes = res
		}
	}
	if shared, jac := netout.OverlapAtK(avgRes, ccRes, 10); true {
		fmt.Printf("  top-10 overlap between modes: %d (Jaccard %.2f)\n\n", shared, jac)
	}

	// --- Cached strategy against the paper's three on the Q1 workload.
	sets := h.querySets()
	q1 := sets["Q1"]
	fmt.Printf("strategies on %d Q1 queries (per-query mean):\n", len(q1))
	pm := netout.NewPM(g)
	spm, err := netout.NewSPM(g, q1, netout.SPMConfig{Threshold: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	cachedMat, err := netout.NewCached(g, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	strategies := []struct {
		name string
		mat  netout.Materializer
	}{
		{"Baseline", netout.NewBaseline(g)},
		{"PM", pm},
		{"SPM(0.01)", spm},
		{"Cached(64MB)", cachedMat},
	}
	for _, s := range strategies {
		eng := netout.NewEngine(g, netout.WithMaterializer(s.mat))
		total, _, _, err := runSet(eng, q1)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if cs, ok := netout.CacheStatsOf(s.mat); ok {
			extra = "   (" + cs.String() + ")"
		}
		fmt.Printf("  %-14s %10.1f µs/query%s\n",
			s.name, float64(total.Microseconds())/float64(len(q1)), extra)
	}
	fmt.Println("  note: the cache discovers SPM's hot set online — no offline indexing phase.")
	fmt.Println()

	// --- Batch workers over the shared PM index.
	fmt.Printf("batch execution of %d Q1 queries over the shared PM index:\n", len(q1))
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		results, err := netout.ExecuteBatch(g, q1, netout.BatchOptions{Workers: workers, Materializer: pm})
		if err != nil {
			log.Fatal(err)
		}
		for _, br := range results {
			if br.Err != nil {
				log.Fatal(br.Err)
			}
		}
		fmt.Printf("  workers=%d %10.1f ms total\n", workers, float64(time.Since(start).Microseconds())/1000)
	}
	fmt.Println()

	// --- Progressive executor overhead vs exact execution.
	single := fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY author.paper.venue TOP 10;`, man.Hub)
	eng := netout.NewEngine(g)
	start := time.Now()
	exact, err := eng.Execute(single)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)
	fmt.Println("progressive vs exact on the hub query:")
	fmt.Printf("  exact (Equation 1)     %10.1f µs\n", float64(exactTime.Microseconds()))
	for _, chunk := range []int{8, 32, 128} {
		start = time.Now()
		prog, err := eng.ExecuteProgressive(single, netout.ProgressiveOptions{ChunkSize: chunk})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		match := "top-1 matches"
		if len(prog.Entries) == 0 || len(exact.Entries) == 0 || prog.Entries[0].Vertex != exact.Entries[0].Vertex {
			match = "TOP-1 DIVERGES"
		}
		fmt.Printf("  progressive chunk=%-4d %10.1f µs   (%s)\n", chunk, float64(elapsed.Microseconds()), match)
	}
	fmt.Println("  the pairwise variance tracking is the price of confidence intervals.")
	fmt.Println()
}
