package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	lats := []time.Duration{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.5, 3}, {0.95, 5}, {0.99, 5}, {0.2, 1}, {1.0, 5},
	}
	for _, c := range cases {
		if got := percentile(lats, c.p); got != c.want {
			t.Errorf("percentile(%.2f) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	// The input must not be reordered.
	if lats[0] != 5 || lats[4] != 4 {
		t.Error("percentile mutated its input")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	h := &harness{csvDir: dir}
	h.writeCSV("out.csv", func(w *csv.Writer) {
		w.Write([]string{"a", "b"})
		w.Write([]string{"1", "2"})
	})
	data, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
	// Unset directory is a no-op.
	h2 := &harness{}
	h2.writeCSV("ignored.csv", func(w *csv.Writer) { w.Write([]string{"x"}) })
	if _, err := os.Stat("ignored.csv"); err == nil {
		t.Fatal("writeCSV wrote despite unset csvDir")
	}
}

func TestHeader(t *testing.T) {
	// header prints to stdout; just ensure it does not panic and the
	// separator width is stable.
	header("test title")
	if w := strings.Repeat("=", 78); len(w) != 78 {
		t.Fatal("unexpected")
	}
}
