package main

import (
	"testing"
)

// TestHarnessEndToEnd drives every experiment at a tiny scale: the
// experiment functions terminate the process on any error (log.Fatal), so
// completing the run is the assertion. Output goes to the test's stdout.
func TestHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	h := &harness{scale: 1, seed: 1, queries: 60, csvDir: t.TempDir()}
	// The lof experiment is exercised by `go run ./cmd/experiments -run lof`
	// and by the internal walk/eval tests; its SimRank/PPR baselines are too
	// slow for the default test path, so it is omitted here.
	for name, fn := range map[string]func(){
		"table2":   h.table2,
		"table3":   h.table3,
		"table5":   h.table5,
		"fig4":     h.fig4,
		"fig5":     h.fig5,
		"ablation": h.ablation,
	} {
		t.Run(name, func(t *testing.T) { fn() })
	}
	// fig3 last: it builds the full PM index (the expensive step).
	t.Run("fig3", func(t *testing.T) { h.fig3() })
}
