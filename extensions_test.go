package netout_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"netout"
)

func TestFacadeCombination(t *testing.T) {
	g := buildQuickstartGraph(t)
	src := `FIND OUTLIERS FROM author{"Ann"}.paper.author
JUDGED BY author.paper.venue, author.paper.author : 2.0;`
	c, err := netout.ParseCombination("concat")
	if err != nil || c != netout.CombineConcat {
		t.Fatal("ParseCombination")
	}
	avg, err := netout.NewEngine(g).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := netout.NewEngine(g, netout.WithCombination(netout.CombineConcat)).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg.Entries) != len(cc.Entries) {
		t.Fatal("entry counts differ")
	}
	// Modes are different formulas; scores generally differ.
	same := true
	for i := range avg.Entries {
		if math.Abs(avg.Entries[i].Score-cc.Entries[i].Score) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Log("note: combination modes coincided on this fixture (possible but unusual)")
	}
}

func TestFacadeProgressive(t *testing.T) {
	g := buildQuickstartGraph(t)
	src := `FIND OUTLIERS FROM author{"Ann"}.paper.author JUDGED BY author.paper.venue TOP 2;`
	snapshots := 0
	res, err := netout.NewEngine(g).ExecuteProgressive(src, netout.ProgressiveOptions{
		ChunkSize: 2,
		OnSnapshot: func(s netout.ProgressiveSnapshot) bool {
			snapshots++
			if len(s.TopK) > 2 {
				t.Errorf("snapshot TopK too long: %d", len(s.TopK))
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 || len(res.Entries) == 0 {
		t.Fatal("progressive produced nothing")
	}
	exact, _ := netout.NewEngine(g).Execute(src)
	if res.Entries[0].Name != exact.Entries[0].Name {
		t.Fatalf("progressive final top (%s) != exact top (%s)", res.Entries[0].Name, exact.Entries[0].Name)
	}
}

func TestFacadeExplainAndSuggest(t *testing.T) {
	g := buildQuickstartGraph(t)
	src := `FIND OUTLIERS FROM author{"Ann"}.paper.author JUDGED BY author.paper.venue;`
	eng := netout.NewEngine(g)
	x, err := eng.Explain(src, "Eve", 5)
	if err != nil {
		t.Fatal(err)
	}
	if x.Name != "Eve" || len(x.Paths) != 1 {
		t.Fatalf("explanation = %+v", x)
	}
	if !strings.Contains(x.Format(), "SIGGRAPH") {
		t.Errorf("Eve's explanation should mention SIGGRAPH:\n%s", x.Format())
	}
	sugs, err := eng.SuggestFeatures(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	if out := netout.FormatSuggestions(sugs, 3); out == "" {
		t.Fatal("FormatSuggestions empty")
	}
}

func TestFacadeBatch(t *testing.T) {
	g := buildQuickstartGraph(t)
	pm := netout.NewPM(g)
	view, err := netout.NewMaterializerView(pm)
	if err != nil {
		t.Fatal(err)
	}
	if view.Strategy() != netout.StrategyPM {
		t.Fatal("view strategy wrong")
	}
	queries := []string{
		`FIND OUTLIERS FROM author{"Ann"}.paper.author JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM author{"Eve"}.paper.author JUDGED BY author.paper.venue;`,
	}
	results, err := netout.ExecuteBatch(g, queries, netout.BatchOptions{Workers: 2, Materializer: pm})
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("query %d: %v", i, br.Err)
		}
	}
}

// The parser must never panic, whatever bytes it is fed.
func TestParserNeverPanics(t *testing.T) {
	base := `FIND OUTLIERS FROM author{"X"}.paper.author COMPARED TO venue{"Y"}.paper.author JUDGED BY author.paper.venue : 2.0 TOP 10;`
	mutate := func(r *rand.Rand, s string) string {
		b := []byte(s)
		switch r.Intn(4) {
		case 0: // delete a span
			if len(b) > 2 {
				i := r.Intn(len(b) - 1)
				j := i + 1 + r.Intn(len(b)-i-1)
				b = append(b[:i], b[j:]...)
			}
		case 1: // random byte flip
			if len(b) > 0 {
				b[r.Intn(len(b))] = byte(r.Intn(256))
			}
		case 2: // duplicate a span
			if len(b) > 2 {
				i := r.Intn(len(b) - 1)
				j := i + 1 + r.Intn(len(b)-i-1)
				b = append(b[:j:j], append(append([]byte{}, b[i:j]...), b[j:]...)...)
			}
		case 3: // insert random punctuation
			punct := `.;,:(){}"'<>=!`
			i := r.Intn(len(b) + 1)
			b = append(b[:i:i], append([]byte{punct[r.Intn(len(punct))]}, b[i:]...)...)
		}
		return string(b)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := base
		for k := 0; k <= r.Intn(6); k++ {
			s = mutate(r, s)
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("parser panicked on %q: %v", s, p)
			}
		}()
		_, _ = netout.ParseQuery(s) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The engine must never panic on arbitrary syntactically-valid queries over
// a real graph — unknown names and invalid paths must come back as errors.
func TestEngineRobustToArbitraryQueries(t *testing.T) {
	g := buildQuickstartGraph(t)
	eng := netout.NewEngine(g)
	types := []string{"author", "paper", "venue", "term", "bogus"}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		anchor := types[r.Intn(len(types))]
		var steps []string
		for k := 0; k <= r.Intn(3); k++ {
			steps = append(steps, types[r.Intn(len(types))])
		}
		feature := []string{types[r.Intn(len(types))], types[r.Intn(len(types))], types[r.Intn(len(types))]}
		src := fmt.Sprintf(`FIND OUTLIERS FROM %s{"Ann"}%s JUDGED BY %s TOP 3;`,
			anchor, dotJoin(steps), strings.Join(feature, "."))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("engine panicked on %q: %v", src, p)
				}
			}()
			_, _ = eng.Execute(src)
		}()
	}
}

func dotJoin(steps []string) string {
	if len(steps) == 0 {
		return ""
	}
	return "." + strings.Join(steps, ".")
}

func TestFacadeAminerAndCompare(t *testing.T) {
	dump := "#* Graph Outlier Mining\n#@ Ada;Bob\n#c KDD\n#index 1\n\n#* Fluid Rendering\n#@ Eve\n#c SIGGRAPH\n#index 2\n"
	recs, err := netout.ParseAminer(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Venue != "KDD" {
		t.Fatalf("records = %+v", recs)
	}
	g, err := netout.BuildAminer(recs, netout.AminerBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty graph")
	}
	if toks := netout.TokenizeTitle("The Graph of Mining", 3, true); len(toks) != 2 {
		t.Fatalf("TokenizeTitle = %v", toks)
	}
	if rep := g.StatsReport(); !strings.Contains(rep, "author->paper") {
		t.Fatalf("StatsReport = %q", rep)
	}

	// Compare two rankings from the quickstart graph.
	qg := buildQuickstartGraph(t)
	eng := netout.NewEngine(qg)
	a, err := eng.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.author;`)
	if err != nil {
		t.Fatal(err)
	}
	if shared, jac := netout.OverlapAtK(a, b, 3); shared < 0 || jac < 0 || jac > 1 {
		t.Fatalf("overlap = %d/%g", shared, jac)
	}
	if _, err := netout.SpearmanRho(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := netout.KendallTau(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCachedAndPersistence(t *testing.T) {
	g := buildQuickstartGraph(t)
	mat, err := netout.NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Strategy() != netout.StrategyCached {
		t.Fatal("strategy wrong")
	}
	src := `FIND OUTLIERS FROM author{"Ann"}.paper.author JUDGED BY author.paper.venue;`
	eng := netout.NewEngine(g, netout.WithMaterializer(mat))
	if _, err := eng.Execute(src); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(src); err != nil {
		t.Fatal(err)
	}
	cs, ok := netout.CacheStatsOf(mat)
	if !ok || cs.Hits == 0 {
		t.Fatalf("cache stats = %+v ok=%v", cs, ok)
	}

	pm := netout.NewPMParallel(g, 2)
	path := filepath.Join(t.TempDir(), "idx.noix")
	if err := netout.SaveIndexFile(pm, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := netout.LoadIndexFile(g, path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := netout.NewEngine(g, netout.WithMaterializer(pm)).Execute(src)
	got, _ := netout.NewEngine(g, netout.WithMaterializer(loaded)).Execute(src)
	if len(want.Entries) != len(got.Entries) || want.Entries[0] != got.Entries[0] {
		t.Fatal("loaded index diverges")
	}

	h, err := netout.NewHistogram([]float64{1, 2, 3, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 4 || !strings.Contains(h.Render(10), "scores") {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestFacadeRelAndKG(t *testing.T) {
	db := netout.NewRelDB()
	people, err := db.CreateTable(netout.RelTableDef{
		Name: "person", Key: "id",
		Columns: []netout.RelColumn{
			{Name: "id", Type: netout.RelInt},
			{Name: "name", Type: netout.RelText},
			{Name: "boss_id", Type: netout.RelInt, References: "person"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	people.MustInsert(netout.RelRow{"id": int64(1), "name": "root", "boss_id": nil})
	people.MustInsert(netout.RelRow{"id": int64(2), "name": "leaf", "boss_id": int64(1)})
	g, err := netout.RelToHIN(db, netout.RelBridgeConfig{
		EntityTables: []netout.RelEntityTable{{Table: "person", NameColumn: "name"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := g.Schema().TypeByName("person")
	if g.NumVerticesOfType(pt) != 2 {
		t.Fatal("bridge lost vertices")
	}

	st := netout.NewTripleStore()
	for _, tr := range [][3]string{
		{"x", "type", "thing"}, {"y", "type", "thing"}, {"x", "near", "y"},
	} {
		if err := st.Add(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	kgGraph, err := st.ToHIN()
	if err != nil {
		t.Fatal(err)
	}
	if kgGraph.NumVertices() != 2 {
		t.Fatal("kg graph wrong")
	}
	st2, err := netout.ReadTriples(strings.NewReader("a\ttype\tthing\nb\ttype\tthing\na\tnear\tb\n"))
	if err != nil || st2.Len() != 1 {
		t.Fatalf("ReadTriples: %v %d", err, st2.Len())
	}
}

// TestFacadeSurface exercises every remaining thin wrapper so the public
// surface is covered end to end.
func TestFacadeSurface(t *testing.T) {
	// Schema constructor error path + success.
	if _, err := netout.NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	s, err := netout.NewSchema("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := s.TypeByName("a")
	tb, _ := s.TypeByName("b")
	s.AllowLink(ta, tb)

	g := buildQuickstartGraph(t)

	// Materializer constructors.
	if netout.NewBaseline(g).Strategy() != netout.StrategyBaseline {
		t.Error("NewBaseline wrong")
	}
	p, _ := netout.ParseMetaPath(g.Schema(), "author.paper.venue")
	if netout.NewPMPaths(g, []netout.MetaPath{p}).IndexBytes() <= 0 {
		t.Error("NewPMPaths empty")
	}
	author, _ := g.Schema().TypeByName("author")
	ann, _ := g.VertexByName(author, "Ann")
	if netout.NewSPMVertices(g, []netout.VertexID{ann}).IndexBytes() <= 0 {
		t.Error("NewSPMVertices empty")
	}

	// Index persistence through io.Writer/Reader.
	var buf bytes.Buffer
	pm := netout.NewPM(g)
	if err := netout.SaveIndex(pm, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := netout.LoadIndex(g, bytes.NewReader(buf.Bytes()))
	if err != nil || loaded.IndexBytes() != pm.IndexBytes() {
		t.Fatalf("LoadIndex: %v", err)
	}

	// StopWhenStable through the façade.
	stops := 0
	_, err = netout.NewEngine(g).ExecuteProgressive(
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 2;`,
		netout.ProgressiveOptions{
			ChunkSize: 1,
			OnSnapshot: netout.StopWhenStable(2, 1, func(netout.ProgressiveSnapshot) bool {
				stops++
				return true
			}),
		})
	if err != nil || stops == 0 {
		t.Fatalf("StopWhenStable: %v (%d snapshots)", err, stops)
	}

	// Security generator.
	secCfg := netout.DefaultSecurityConfig()
	secCfg.HostsPerSubnet = 10
	sg, sman, err := netout.GenerateSecurity(secCfg)
	if err != nil || len(sman.Compromised) == 0 {
		t.Fatalf("GenerateSecurity: %v", err)
	}
	if sg.NumVertices() == 0 {
		t.Fatal("empty security graph")
	}

	// Triples from a file.
	dir := t.TempDir()
	tPath := filepath.Join(dir, "triples.tsv")
	if err := os.WriteFile(tPath, []byte("x\ttype\tthing\ny\ttype\tthing\nx\tnear\ty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := netout.LoadTriples(tPath)
	if err != nil || st.Len() != 1 {
		t.Fatalf("LoadTriples: %v", err)
	}

	// ArnetMiner from a file.
	aPath := filepath.Join(dir, "dump.txt")
	if err := os.WriteFile(aPath, []byte("#* T\n#@ A\n#c V\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ag, err := netout.LoadAminer(aPath, netout.AminerBuildOptions{})
	if err != nil || ag.NumVertices() == 0 {
		t.Fatalf("LoadAminer: %v", err)
	}

	// Subgraphs and ego networks.
	ego, err := netout.EgoNetwork(g, []netout.VertexID{ann}, 2)
	if err != nil || len(ego) < 2 {
		t.Fatalf("EgoNetwork: %v", err)
	}
	sub, mapping, err := netout.InducedSubgraph(g, ego)
	if err != nil || sub.NumVertices() != len(ego) || mapping[ann] == netout.InvalidVertex {
		t.Fatalf("InducedSubgraph: %v", err)
	}

	// Random-walk measures.
	ppr, err := netout.PPR(g, ann, netout.PPROptions{})
	if err != nil || ppr.IsZero() {
		t.Fatalf("PPR: %v", err)
	}
	m, err := netout.SimRank(g, netout.SimRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scores := netout.SimRankOutlierScores(m, []netout.VertexID{ann}, []netout.VertexID{ann})
	if len(scores) != 1 || scores[0] != 1 {
		t.Fatalf("SimRankOutlierScores = %v", scores)
	}

	// Evaluation metric wrappers.
	ranked := []string{"p", "n1", "n2"}
	pos := map[string]bool{"p": true}
	if netout.PrecisionAtK(ranked, pos, 1) != 1 || netout.RecallAtK(ranked, pos, 1) != 1 ||
		netout.AveragePrecision(ranked, pos) != 1 {
		t.Error("eval wrappers wrong")
	}
	rep, err := netout.Evaluate("x", ranked, pos, 1)
	if err != nil || rep.AUC != 1 {
		t.Fatalf("Evaluate: %v", err)
	}
	if netout.FormatEvalReports([]netout.EvalReport{rep}) == "" {
		t.Error("FormatEvalReports empty")
	}
}

func TestFacadeMetaPathWalk(t *testing.T) {
	g := buildQuickstartGraph(t)
	author, _ := g.Schema().TypeByName("author")
	ann, _ := g.VertexByName(author, "Ann")
	p, _ := netout.ParseMetaPath(g.Schema(), "author.paper.venue")
	ppr, err := netout.PPRMetaPath(g, p, ann, netout.PPROptions{})
	if err != nil || ppr.IsZero() {
		t.Fatalf("PPRMetaPath: %v", err)
	}
	cands := g.VerticesOfType(author)
	scores, err := netout.PPRMetaPathOutlierScores(g, p, cands, cands, netout.PPROptions{})
	if err != nil || len(scores) != len(cands) {
		t.Fatalf("PPRMetaPathOutlierScores: %v", err)
	}
}
