# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test race cover bench bench-json bench-smoke bench-shard bench-shard-smoke bench-workload bench-workload-smoke obs-smoke shard-net-smoke profile fuzz experiments examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Serving-scope error hygiene: naked fmt.Errorf/errors.New are forbidden in
# internal/core's serving files and cmd/netout — untyped errors classify as
# INTERNAL at the HTTP boundary instead of their true status. Fails the
# build on any finding.
lint:
	$(GO) run ./cmd/xerrlint

test: vet
	$(GO) test ./...

# -cpu 1,4 runs every test at both GOMAXPROCS values: 1 pins the sequential
# engine path, 4 exercises the intra-query pipeline and the re-entrant
# Engine under contention. This is also the gate for the fault-injection
# suite (internal/core/faultinject_test.go): panic isolation, admission
# control and deadline degradation are only proven if they hold under -race.
race:
	$(GO) test -race -cpu 1,4 ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -run XXX -bench=. -benchmem .

# Kernel/index microbenchmarks distilled to JSON (cited from README.md).
bench-json: bench-workload
	{ $(GO) test -run XXX -bench='BenchmarkExpand$$' . ; \
	  $(GO) test -run XXX -bench='BenchmarkPathIndexProbe|BenchmarkCacheProbe' -benchmem ./internal/core/ ; \
	  $(GO) test -run XXX -bench=BenchmarkAccumulators ./internal/sparse/ ; } \
		| $(GO) run ./cmd/benchjson -out BENCH_kernel.json
	$(GO) test -run XXX -bench='BenchmarkQuery/' -cpu 1,2,4 . \
		| $(GO) run ./cmd/benchjson -out BENCH_query.json

# The Zipf-skewed overlapping-meta-path stream: whole-path cache vs the
# subpath-decomposed cache (with and without the planner) over one identical
# query stream. The committed BENCH_workload.json comes from this target on
# an unloaded multi-core machine; CI only smoke-runs it (single vCPU numbers
# are not comparable — see README).
bench-workload:
	$(GO) test -run XXX -bench='BenchmarkWorkload/' -benchtime=4000x . \
		| $(GO) run ./cmd/benchjson -out BENCH_workload.json

# Sharded vs unsharded end-to-end query cost. The committed BENCH_shard.json
# comes from this target; on a single-vCPU CI box it documents overhead
# parity (shards=1 within noise of unsharded), while speedup from shards=2/4
# needs real cores — see README's multi-core protocol.
bench-shard:
	$(GO) test -run XXX -bench='BenchmarkShard/' . \
		| $(GO) run ./cmd/benchjson -out BENCH_shard.json

# One iteration per shard arm: proves the sharded path still executes.
bench-shard-smoke:
	$(GO) test -run XXX -bench='BenchmarkShard/' -benchtime=1x .

# One iteration of every benchmark: catches bit-rot without measuring.
bench-smoke:
	$(GO) test -run XXX -bench=. -benchtime=1x ./...

# One iteration of the workload stream + the warm-probe alloc check: proves
# the subpath arms still execute and a warm probe stays allocation-free.
bench-workload-smoke:
	$(GO) test -run XXX -bench='BenchmarkWorkload/' -benchtime=1x .
	$(GO) test -run XXX -bench=BenchmarkCacheProbe -benchtime=100x -benchmem ./internal/core/

# Boot `netout -serve` with an event log and assert every observability
# surface answers: /metrics, /debug/events, /debug/requests, /readyz, the
# traceparent response header and the on-disk JSONL journal.
obs-smoke:
	sh scripts/obs_smoke.sh

# Boot two `netout -shard-serve` processes plus a coordinator scattering
# over them: the networked result must equal unsharded execution exactly,
# both sides must export netout_shard_* metrics, and kill -9 on one shard
# must degrade the next query to partial instead of failing it.
shard-net-smoke:
	sh scripts/shard_net_smoke.sh

# Benchmarks under the profiler: CPU and heap profiles (plus the test binary
# needed to read them) land in results/ for `go tool pprof`.
PROFILE_BENCH ?= BenchmarkFig3Strategies
profile:
	mkdir -p results
	$(GO) test -run XXX -bench=$(PROFILE_BENCH) -benchmem \
		-cpuprofile results/cpu.prof -memprofile results/mem.prof \
		-o results/netout.test .
	@echo "profiles written: go tool pprof results/netout.test results/cpu.prof"

# Short fuzzing passes over the three parsers (regression seeds always run
# as part of `make test`).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/oql/
	$(GO) test -fuzz=FuzzReadTSV -fuzztime=30s ./internal/hinio/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/aminer/

# Regenerate every paper table and figure (EXPERIMENTS.md documents the
# expected shapes). The paper-scale run:
experiments:
	$(GO) run ./cmd/experiments -run all -scale 2 -queries 10000 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/measures
	$(GO) run ./examples/dblp
	$(GO) run ./examples/security
	$(GO) run ./examples/movies
	$(GO) run ./examples/relational
	$(GO) run ./examples/progressive

clean:
	rm -rf results test_output.txt bench_output.txt
