// Package netout is a query-based outlier detection system for
// heterogeneous information networks, implementing Kuck, Zhuang, Yan, Cam
// and Han, "Query-Based Outlier Detection in Heterogeneous Information
// Networks" (EDBT 2015).
//
// A heterogeneous information network (HIN) has typed vertices (papers,
// authors, venues, ...) and typed links. Outliers in such a network are
// relative to a user's viewpoint, so the system is driven by declarative
// queries:
//
//	FIND OUTLIERS
//	FROM author{"Christos Faloutsos"}.paper.author  // candidate set
//	COMPARED TO venue{"KDD"}.paper.author           // reference set (optional)
//	JUDGED BY author.paper.venue : 2.0              // weighted feature meta-paths
//	TOP 10;
//
// Candidates are ranked by the NetOut measure: the sum over the reference
// set of normalized connectivity, the number of symmetric meta-path
// instances linking a candidate to each reference vertex, normalized by the
// candidate's own visibility. PathSim- and cosine-based variants are
// provided for comparison, plus LOF and kNN-distance baselines.
//
// Basic usage:
//
//	schema := netout.MustSchema("author", "paper", "venue", "term")
//	// ... allow links, build the graph with netout.NewBuilder(schema) ...
//	eng := netout.NewEngine(g)
//	res, err := eng.Execute(`FIND OUTLIERS FROM ... JUDGED BY ... TOP 10;`)
//
// For low query latency the engine can pre-materialize length-2 meta-path
// neighbor vectors for every vertex (PM) or only for vertices that appear
// frequently in a query workload (SPM):
//
//	eng := netout.NewEngine(g, netout.WithMaterializer(netout.NewPM(g)))
package netout

import (
	"context"
	"io"
	"net/http"
	"time"

	"netout/internal/aminer"
	"netout/internal/core"
	"netout/internal/eval"
	"netout/internal/gen"
	"netout/internal/hin"
	"netout/internal/hinio"
	"netout/internal/kg"
	"netout/internal/lof"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/oql"
	"netout/internal/rel"
	"netout/internal/sparse"
	"netout/internal/walk"
	"netout/internal/xerr"
)

// ---------------------------------------------------------------------------
// Network types

// Core network types, re-exported from the graph substrate.
type (
	// Graph is an immutable heterogeneous information network.
	Graph = hin.Graph
	// Schema declares vertex types and which links are allowed.
	Schema = hin.Schema
	// TypeID identifies a vertex type within a Schema.
	TypeID = hin.TypeID
	// VertexID identifies a vertex in a Graph.
	VertexID = hin.VertexID
	// Builder accumulates vertices and edges and produces a Graph.
	Builder = hin.Builder
	// GraphStats summarizes a Graph.
	GraphStats = hin.Stats
)

// InvalidVertex is returned by lookups for unknown vertices.
const InvalidVertex = hin.InvalidVertex

// NewSchema creates a schema with the given vertex type names.
func NewSchema(typeNames ...string) (*Schema, error) { return hin.NewSchema(typeNames...) }

// MustSchema is NewSchema panicking on error, for statically-known schemas.
func MustSchema(typeNames ...string) *Schema { return hin.MustSchema(typeNames...) }

// NewBuilder creates a graph builder for the given schema.
func NewBuilder(schema *Schema) *Builder { return hin.NewBuilder(schema) }

// ---------------------------------------------------------------------------
// Meta-paths

// MetaPath is an ordered sequence of vertex types, e.g. (author paper venue).
type MetaPath = metapath.Path

// ParseMetaPath parses the dotted form "author.paper.venue" against a schema.
func ParseMetaPath(s *Schema, dotted string) (MetaPath, error) {
	return metapath.ParseDotted(s, dotted)
}

// NewMetaPath builds a meta-path by resolving type names against a schema.
func NewMetaPath(s *Schema, typeNames ...string) (MetaPath, error) {
	return metapath.FromNames(s, typeNames...)
}

// Traverser materializes meta-path neighbor vectors by network traversal.
type Traverser = metapath.Traverser

// NewTraverser creates a traverser over g.
func NewTraverser(g *Graph) *Traverser { return metapath.NewTraverser(g) }

// ExpandKernel selects the frontier-expansion kernel a Traverser uses
// (Traverser.SetKernel). KernelAuto, the default, picks per hop.
type ExpandKernel = metapath.Kernel

// Expansion kernels: auto picks merge/dense/map per hop from the frontier
// size and the target type's vertex-ID span; the forced kernels exist for
// benchmarks and equivalence tests.
const (
	KernelAuto  ExpandKernel = metapath.KernelAuto
	KernelMap   ExpandKernel = metapath.KernelMap
	KernelDense ExpandKernel = metapath.KernelDense
	KernelMerge ExpandKernel = metapath.KernelMerge
)

// KernelCounts reports how many hops each expansion kernel handled
// (Traverser.KernelCounts).
type KernelCounts = metapath.KernelCounts

// Vector is a sparse neighbor vector Φ_P(v): coordinate u holds the number
// of meta-path instances from v to vertex u.
type Vector = sparse.Vector

// ---------------------------------------------------------------------------
// Queries

// Query is a parsed FIND OUTLIERS statement.
type Query = oql.Query

// SyntaxError reports a lexical or parse error with its source position.
type SyntaxError = oql.SyntaxError

// ParseQuery parses an outlier query:
//
//	FIND OUTLIERS FROM ... [COMPARED TO ...] JUDGED BY ... [TOP n];
func ParseQuery(src string) (*Query, error) { return oql.Parse(src) }

// ValidateQuery checks a parsed query against a schema and returns the
// element type of its candidate set.
func ValidateQuery(q *Query, s *Schema) (TypeID, error) { return oql.Validate(q, s) }

// ---------------------------------------------------------------------------
// Engine, measures and strategies

// Engine executes outlier queries. Configure with WithMeasure and
// WithMaterializer.
type Engine = core.Engine

// EngineOption configures an Engine.
type EngineOption = core.Option

// Result is a ranked query outcome; Entry is one ranked outlier; Timing is
// the per-query cost breakdown.
type (
	Result = core.Result
	Entry  = core.Entry
	Timing = core.Timing
)

// Measure selects the outlierness formula; smaller scores are more outlying.
type Measure = core.Measure

// The available outlierness measures.
const (
	MeasureNetOut  = core.MeasureNetOut
	MeasurePathSim = core.MeasurePathSim
	MeasureCosSim  = core.MeasureCosSim
)

// ParseMeasure resolves "netout", "pathsim" or "cossim".
func ParseMeasure(name string) (Measure, error) { return core.ParseMeasure(name) }

// Strategy identifies a materialization strategy.
type Strategy = core.Strategy

// The available materialization strategies.
const (
	StrategyBaseline = core.StrategyBaseline
	StrategyPM       = core.StrategyPM
	StrategySPM      = core.StrategySPM
	StrategyCached   = core.StrategyCached
)

// Materializer produces meta-path neighbor vectors, possibly from an index.
type Materializer = core.Materializer

// MaterializerStats accumulates indexed vs traversed cost counters.
type MaterializerStats = core.MatStats

// SPMConfig configures selective pre-materialization.
type SPMConfig = core.SPMConfig

// NewEngine creates a query engine over g (default: NetOut measure,
// baseline materialization).
func NewEngine(g *Graph, opts ...EngineOption) *Engine { return core.NewEngine(g, opts...) }

// WithMeasure selects the outlierness measure.
func WithMeasure(m Measure) EngineOption { return core.WithMeasure(m) }

// WithMaterializer selects the materialization strategy.
func WithMaterializer(m Materializer) EngineOption { return core.WithMaterializer(m) }

// WithQueryParallelism bounds the engine's intra-query execution pipeline:
// queries with enough candidates split the candidate set into chunks and
// run materialize→score fused per chunk on n workers. n <= 0 (the default)
// uses GOMAXPROCS; n == 1 forces the sequential path. Results are identical
// for every n.
func WithQueryParallelism(n int) EngineOption { return core.WithQueryParallelism(n) }

// WithShards enables the scatter–gather shard tier: the candidate space is
// range-partitioned into n shards, each a resident goroutine with its own
// materializer view; a coordinator fans queries out and k-way merges the
// per-shard rankings. Results are bit-identical to unsharded execution for
// every n, and a slow or failing shard degrades to an exact-prefix partial
// instead of failing the query. n <= 0 (the default) disables sharding.
// Call Engine.Close when done to release the shard goroutines.
func WithShards(n int) EngineOption { return core.WithShards(n) }

// ShardStatus is one shard's per-query accounting, attached to Result.Shards
// for sharded executions.
type ShardStatus = core.ShardStatus

// The versioned shard protocol: a coordinator speaks to shards in
// ShardRequest/ShardResponse pairs, with the reference reduction broadcast
// alongside as a ShardBroadcast. In-process shards share the reduction by
// pointer; internal/shardnet serializes exactly these messages across a
// network boundary.
type (
	ShardRequest   = core.ShardRequest
	ShardResponse  = core.ShardResponse
	ShardBroadcast = core.ShardBroadcast
	ShardRefState  = core.ShardRefState
)

// ShardProtocolVersion is the current shard protocol version, stamped on
// every ShardRequest and echoed by every ShardResponse. Both sides of the
// wire enforce it: shard servers reject requests from a foreign revision,
// and coordinators fail queries whose replies carry one.
const ShardProtocolVersion = core.ShardProtocolVersion

// RemoteShard is a coordinator-side client for one out-of-process shard
// (implemented by shardnet.Client); see WithRemoteShards.
type RemoteShard = core.RemoteShard

// WithRemoteShards scatters queries across out-of-process shard servers,
// one RemoteShard client per shard in shard order, instead of resident
// goroutines. Results stay bit-identical to unsharded execution while every
// shard is healthy; a lost, shed or panicking remote shard degrades the
// query to an exact-prefix partial. Takes precedence over WithShards. The
// engine does not own the clients — close them where they were dialed.
func WithRemoteShards(shards ...RemoteShard) EngineOption {
	return core.WithRemoteShards(shards...)
}

// NewBaseline returns the traversal-only materializer.
func NewBaseline(g *Graph) Materializer { return core.NewBaseline(g) }

// NewPM pre-materializes all length-2 meta-path neighbor vectors.
func NewPM(g *Graph) Materializer { return core.NewPM(g) }

// NewPMPaths pre-materializes only the given length-2 meta-paths.
func NewPMPaths(g *Graph, paths []MetaPath) Materializer { return core.NewPMPaths(g, paths) }

// NewSPM selectively pre-materializes for vertices whose relative frequency
// across the initialization queries' candidate sets reaches cfg.Threshold.
func NewSPM(g *Graph, initQueries []string, cfg SPMConfig) (Materializer, error) {
	return core.NewSPM(g, initQueries, cfg)
}

// NewSPMVertices builds SPM with an explicit pre-selected vertex set.
func NewSPMVertices(g *Graph, vertices []VertexID) Materializer {
	return core.NewSPMVertices(g, vertices)
}

// NewCached returns a materializer that memoizes neighbor vectors in an
// LRU cache bounded to maxBytes: no offline indexing phase, but repeated
// workloads approach PM speed for their hot vertices. The cache is sharded
// and safe for concurrent use from any number of goroutines; concurrent
// misses on the same vector are deduplicated so the network is traversed
// once. Views made with NewMaterializerView share the same warm cache.
func NewCached(g *Graph, maxBytes int64, opts ...CacheOption) (Materializer, error) {
	return core.NewCached(g, maxBytes, opts...)
}

// CacheOption configures a NewCached materializer.
type CacheOption = core.CacheOption

// WithSubpathCache enables subpath-decomposed evaluation: cache entries are
// shared at (canonical subpath, vertex) granularity across queries and
// views, misses resume from the longest cached prefix of the meta-path, and
// profitable intermediate frontiers are persisted under the same byte
// budget. Results are bit-identical to whole-path evaluation; only the work
// skipped changes.
func WithSubpathCache() CacheOption { return core.WithSubpathCache() }

// WithCachePlanner toggles the cost-based planner steering subpath
// evaluation (default on when WithSubpathCache is set).
func WithCachePlanner(on bool) CacheOption { return core.WithCachePlanner(on) }

// Planner is the cost-based subpath-evaluation planner; its decisions are
// visible in query traces, wide events and netout_plan_* metrics.
type Planner = core.Planner

// PlannerOf extracts the planner from a NewCached materializer (nil when
// the planner or subpath mode is disabled, or for other strategies).
func PlannerOf(m Materializer) *Planner { return core.PlannerOf(m) }

// CacheStats reports hit/miss/eviction counters of a cached materializer.
// Under concurrent use Deduped counts loads that were coalesced into
// another goroutine's in-flight traversal (a subset of Hits). In subpath
// mode PrefixHits/HopsSaved report partial reuse on the miss path.
type CacheStats = core.CacheStats

// CacheStatsOf extracts cache counters from a NewCached materializer.
func CacheStatsOf(m Materializer) (CacheStats, bool) { return core.CacheStatsOf(m) }

// NewPMParallel builds the PM index with a worker pool; the result is
// identical to NewPM's.
func NewPMParallel(g *Graph, workers int) Materializer { return core.NewPMParallel(g, workers) }

// SaveIndex / LoadIndex persist a pre-materialized PM or SPM index so the
// offline indexing phase can be shipped to query servers. The index must be
// loaded against the same graph it was built from.
func SaveIndex(m Materializer, w io.Writer) error { return core.SaveIndex(m, w) }

// LoadIndex reads an index written by SaveIndex.
func LoadIndex(g *Graph, r io.Reader) (Materializer, error) { return core.LoadIndex(g, r) }

// SaveIndexFile writes an index to a file.
func SaveIndexFile(m Materializer, path string) error { return core.SaveIndexFile(m, path) }

// LoadIndexFile reads an index from a file.
func LoadIndexFile(g *Graph, path string) (Materializer, error) {
	return core.LoadIndexFile(g, path)
}

// Histogram is a binned view of a score distribution; render with
// Histogram.Render (Section 8's visualization extension).
type Histogram = core.Histogram

// NewHistogram bins the finite values among scores.
func NewHistogram(scores []float64, bins int) (*Histogram, error) {
	return core.NewHistogram(scores, bins)
}

// Combination selects how multiple feature meta-paths combine into one
// score: averaged per-path scores or concatenated connectivity.
type Combination = core.Combination

// The available multi-path combination modes.
const (
	CombineAverage = core.CombineAverage
	CombineConcat  = core.CombineConcat
)

// ParseCombination resolves "average" or "concat".
func ParseCombination(name string) (Combination, error) { return core.ParseCombination(name) }

// WithCombination selects the multi-path combination mode.
func WithCombination(c Combination) EngineOption { return core.WithCombination(c) }

// Progressive execution (approximate top-k with confidences while the query
// is being processed — the Section 8 extension).
type (
	ProgressiveOptions  = core.ProgressiveOptions
	ProgressiveSnapshot = core.ProgressiveSnapshot
	ProgressiveEstimate = core.ProgressiveEstimate
)

// StopWhenStable builds an OnSnapshot callback that stops a progressive
// query once the top-k identity is unchanged for the given number of
// consecutive snapshots.
func StopWhenStable(k, rounds int, inner func(ProgressiveSnapshot) bool) func(ProgressiveSnapshot) bool {
	return core.StopWhenStable(k, rounds, inner)
}

// Explanations decompose a candidate's NetOut score coordinate by
// coordinate, making the outlier judgment auditable.
type (
	Explanation     = core.Explanation
	PathExplanation = core.PathExplanation
	Contribution    = core.Contribution
)

// Query suggestion (alternative feature meta-paths ranked by how sharply
// they separate outliers — the Section 8 extension).
type Suggestion = core.Suggestion

// FormatSuggestions renders suggestions for terminal display.
func FormatSuggestions(sugs []Suggestion, limit int) string {
	return core.FormatSuggestions(sugs, limit)
}

// Batch execution.
type (
	BatchOptions = core.BatchOptions
	BatchResult  = core.BatchResult
)

// ExecuteBatch runs queries in parallel with a worker pool, sharing the
// given materializer across workers via views: PM/SPM indexes read-only,
// cached materializers warm — one worker's traversal is every other
// worker's cache hit.
func ExecuteBatch(g *Graph, queries []string, opts BatchOptions) ([]BatchResult, error) {
	return core.ExecuteBatch(g, queries, opts)
}

// NewMaterializerView returns a materializer that shares m's pre-computed
// state but is safe to use concurrently with other views: PM/SPM views
// share the immutable index with private traversal scratch; cached views
// share the warm cache itself (entries and stats). See DESIGN.md's
// concurrency contract.
func NewMaterializerView(m Materializer) (Materializer, error) { return core.NewView(m) }

// Serving (a resident worker pool for online query traffic, sharing one
// materializer across workers — the concurrent complement to ExecuteBatch).
type (
	ServePool    = core.ServePool
	ServeOptions = core.ServeOptions
	ServeStats   = core.ServeStats
)

// NewServePool starts a bounded worker pool over g that accepts queries
// from any number of goroutines via ServePool.Execute. Close the pool to
// release its workers.
func NewServePool(g *Graph, opts ServeOptions) (*ServePool, error) {
	return core.NewServePool(g, opts)
}

// Serving robustness: admission control, panic isolation and the typed
// error taxonomy (DESIGN.md, "Serving robustness").

// ErrOverloaded is returned by ServePool.Execute when the pool's bounded
// queue (ServeOptions.MaxQueue) is full: the query is shed immediately
// instead of queueing unboundedly. Treat it as retryable back-pressure
// (code CodeResourceExhausted, HTTP 429).
var ErrOverloaded = core.ErrOverloaded

// ErrPoolClosed is returned by ServePool.Execute once Close has begun: the
// pool cannot take the query and a load balancer should retry elsewhere
// (code CodeUnavailable, HTTP 503).
var ErrPoolClosed = core.ErrPoolClosed

// PanicError is a panic recovered by a serving-layer worker and converted
// into a per-query error, with the stack captured at the panic site.
type PanicError = core.PanicError

// IsPanicError reports whether err wraps a recovered worker panic.
func IsPanicError(err error) bool { return core.IsPanicError(err) }

// ErrorCode is a stable, machine-readable classification of a serving
// error. Codes — not error strings — are the contract HTTP statuses and
// metrics labels are derived from.
type ErrorCode = xerr.Code

// The serving error codes.
const (
	// CodeInvalidArgument: the query is malformed or fails validation; the
	// client must change it (the ONLY code that maps to HTTP 400).
	CodeInvalidArgument = xerr.InvalidArgument
	// CodeNotFound: a vertex or resource named by the query does not exist.
	CodeNotFound = xerr.NotFound
	// CodeResourceExhausted: admission control shed the query (retryable).
	CodeResourceExhausted = xerr.ResourceExhausted
	// CodeDeadlineExceeded: the query's deadline expired.
	CodeDeadlineExceeded = xerr.DeadlineExceeded
	// CodeCanceled: the caller went away before the query finished.
	CodeCanceled = xerr.Canceled
	// CodeUnavailable: this replica cannot serve (draining or closed).
	CodeUnavailable = xerr.Unavailable
	// CodeInternal: the server's own fault — bugs, recovered panics, and
	// every unclassified error.
	CodeInternal = xerr.Internal
)

// NewError builds a classified failure with the given message.
func NewError(code ErrorCode, msg string) error { return xerr.New(code, msg) }

// Errorf builds a classified failure with fmt.Errorf semantics (%w wraps).
func Errorf(code ErrorCode, format string, args ...any) error {
	return xerr.Newf(code, format, args...)
}

// WrapError classifies an existing error without changing its message or
// its errors.Is/As chain. Wrapping nil returns nil.
func WrapError(code ErrorCode, err error) error {
	if e := xerr.Wrap(code, err); e != nil {
		return e
	}
	return nil
}

// ErrorCodeOf classifies any error: typed errors report their own code,
// context.DeadlineExceeded / context.Canceled map to their codes, and
// everything unclassified is CodeInternal — an unknown failure is the
// server's fault, never the client's. nil reports "".
func ErrorCodeOf(err error) ErrorCode { return xerr.CodeOf(err) }

// ErrorHTTPStatus maps an error to its HTTP status: 400 InvalidArgument,
// 404 NotFound, 429 ResourceExhausted, 504 DeadlineExceeded,
// 499 Canceled (StatusClientClosedRequest), 503 Unavailable, 500 otherwise;
// nil maps to 200.
func ErrorHTTPStatus(err error) int { return xerr.HTTPStatus(err) }

// ErrorOutcome maps an error to its metrics outcome label ("ok" for nil;
// "invalid", "not_found", "overloaded", "deadline", "canceled",
// "unavailable" or "internal" otherwise).
func ErrorOutcome(err error) string { return xerr.Outcome(err) }

// ErrorRequestID extracts the request ID an error was stamped with by the
// serving layer ("" when there is none).
func ErrorRequestID(err error) string { return xerr.RequestIDOf(err) }

// ErrorStack extracts the captured stack from a defect (a recovered panic)
// anywhere in err's chain; "" for failures, which carry no stack.
func ErrorStack(err error) string { return xerr.StackOf(err) }

// StatusClientClosedRequest is the non-standard 499 status (from nginx)
// written for canceled requests, distinguishing "the client hung up" from
// the server-fault 5xx classes in access logs and metrics.
const StatusClientClosedRequest = xerr.StatusClientClosedRequest

// ContextWithRequestID returns ctx carrying a request correlation ID that
// ServePool.Execute and the engine will propagate into traces, the slow
// log and returned errors.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// RequestIDFromContext extracts the request ID from a context ("" if none).
func RequestIDFromContext(ctx context.Context) string { return obs.RequestIDFrom(ctx) }

// NewRequestID generates a fresh process-unique request ID.
func NewRequestID() string { return obs.NewRequestID() }

// SpanContext is a W3C Trace Context span identity (trace ID, span ID,
// parent span ID, flags) for cross-process trace propagation.
type SpanContext = obs.SpanContext

// ParseTraceparent parses a W3C `traceparent` header value; ok=false means
// "no usable incoming trace" (mint a fresh one), never an error.
func ParseTraceparent(h string) (SpanContext, bool) { return obs.ParseTraceparent(h) }

// NewTraceID returns a fresh random 32-hex-char W3C trace ID.
func NewTraceID() string { return obs.NewTraceID() }

// NewSpanID returns a fresh random 16-hex-char W3C span ID.
func NewSpanID() string { return obs.NewSpanID() }

// ContextWithSpanContext returns ctx carrying a span context that the engine
// stamps onto the query's trace (TraceID/SpanID/ParentSpanID) and wide event.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return obs.WithSpanContext(ctx, sc)
}

// SpanContextFromContext extracts the span context from a context.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	return obs.SpanContextFrom(ctx)
}

// ---------------------------------------------------------------------------
// Observability (metrics registry, query traces, slow-query log, admin HTTP)

// Observability types: a MetricsRegistry holds atomic counters, gauges and
// fixed-bucket latency histograms exposed in Prometheus text format; a
// QueryTrace is the per-phase breakdown attached to every Result; a SlowLog
// retains the N slowest queries with their traces.
type (
	MetricsRegistry = obs.Registry
	MetricCounter   = obs.Counter
	MetricGauge     = obs.Gauge
	MetricHistogram = obs.Histogram
	QueryTrace      = obs.Trace
	TraceSpan       = obs.Span
	TraceSpanStats  = obs.SpanStats
	TraceShardSpan  = obs.ShardSpan
	SlowLog         = obs.SlowLog
	SlowEntry       = obs.SlowEntry
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics returns the process-wide metrics registry.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// NewSlowLog creates a slow-query log retaining the n slowest queries.
func NewSlowLog(n int) *SlowLog { return obs.NewSlowLog(n) }

// WithObs connects an engine to a metrics registry and slow-query log;
// either may be nil. Every query then observes its latency, phase breakdown
// and outcome into the registry's instruments.
func WithObs(reg *MetricsRegistry, slow *SlowLog) EngineOption { return core.WithObs(reg, slow) }

// Wide-event query journal: one flat JSON record per completed query (ok,
// error, partial or recovered panic), emitted through an EventSink.
type (
	// QueryEvent is one wide event; QueryEventPhase is its per-phase row;
	// QueryEventShard is its per-shard row for sharded executions.
	QueryEvent      = obs.Event
	QueryEventPhase = obs.EventPhase
	QueryEventShard = obs.EventShard
	// EventSink receives completed query events (must be concurrency-safe).
	EventSink = obs.EventSink
	// EventRing retains the last N events in memory for /debug/events.
	EventRing = obs.EventRing
	// Inflight is the live table of executing queries behind /debug/requests;
	// InflightSnapshot is one row of its snapshot.
	Inflight         = obs.Inflight
	InflightSnapshot = obs.InflightSnapshot
)

// WithEventSink connects an engine to a wide-event journal: every completed
// query emits exactly one QueryEvent. nil disables emission.
func WithEventSink(s EventSink) EngineOption { return core.WithEventSink(s) }

// WithInflight registers every executing query in the table for the live
// /debug/requests inspector. nil disables tracking.
func WithInflight(t *Inflight) EngineOption { return core.WithInflight(t) }

// NewEventRing creates a bounded in-memory event ring retaining the n most
// recent events (n <= 0 defaults to 256).
func NewEventRing(n int) *EventRing { return obs.NewEventRing(n) }

// NewJSONLEventWriter returns a sink appending one JSON object per line to w
// (the journal file behind -event-log). Writes are serialized; a write error
// disables further output rather than failing queries.
func NewJSONLEventWriter(w io.Writer) EventSink { return obs.NewJSONLWriter(w) }

// NewSampledEventSink wraps inner with deterministic sampling: every error,
// partial and slow (>= slow, 0 disables) event passes; other OK events pass
// for a request-ID-hash fraction keep in [0, 1].
func NewSampledEventSink(inner EventSink, keep float64, slow time.Duration) EventSink {
	return obs.NewSampledSink(inner, keep, slow)
}

// CombineEventSinks fans events out to all given sinks, dropping nils; it
// returns nil when nothing remains.
func CombineEventSinks(sinks ...EventSink) EventSink { return obs.CombineSinks(sinks...) }

// NewInflight creates an empty in-flight query table.
func NewInflight() *Inflight { return obs.NewInflight() }

// RegisterMaterializerMetrics exposes a materializer's cost counters on a
// registry: index/cache bytes for every strategy, plus the full hit/miss/
// traversal instrument set for the concurrency-safe cached strategy, read
// from the same atomics CacheStatsOf reports so scrapes match exactly.
func RegisterMaterializerMetrics(reg *MetricsRegistry, m Materializer) {
	core.RegisterMaterializerMetrics(reg, m)
}

// RegisterProcessMetrics adds process-level gauges (uptime, goroutines,
// heap in use) to a registry.
func RegisterProcessMetrics(reg *MetricsRegistry) { obs.RegisterProcessMetrics(reg) }

// AdminOption configures optional NewAdminMux surfaces (/readyz readiness,
// /debug/events, /debug/requests).
type AdminOption = obs.AdminOption

// AdminWithReadiness installs a readiness check behind /readyz: nil means
// ready (200), an error means not ready (503). Wire ServePool.Ready here so
// a draining replica stops taking traffic without failing liveness.
func AdminWithReadiness(check func() error) AdminOption { return obs.WithReadiness(check) }

// AdminWithEventRing serves the ring's retained events as JSON at
// /debug/events.
func AdminWithEventRing(ring *EventRing) AdminOption { return obs.WithEventRing(ring) }

// AdminWithInflight serves the live in-flight query table at /debug/requests.
func AdminWithInflight(t *Inflight) AdminOption { return obs.WithInflight(t) }

// NewAdminMux builds the serving admin endpoint: /metrics (Prometheus text
// format), /healthz, /readyz, /debug/slow, /debug/events, /debug/requests
// and the net/http/pprof handlers. Mount it on an access-controlled address.
func NewAdminMux(reg *MetricsRegistry, slow *SlowLog, opts ...AdminOption) *http.ServeMux {
	return obs.NewAdminMux(reg, slow, opts...)
}

// ScoreVectors scores candidate neighbor vectors against reference vectors
// under a measure, without an engine (useful for custom feature pipelines).
func ScoreVectors(m Measure, cands, refs []Vector) []float64 {
	return core.ScoreVectors(m, cands, refs)
}

// NormalizedConnectivity returns σ(a,b) = κ(a,b)/κ(a,a) (Definition 9).
func NormalizedConnectivity(a, b Vector) float64 { return core.NormalizedConnectivity(a, b) }

// ---------------------------------------------------------------------------
// Query workloads (Table 4 style)

// QueryTemplate is a query template with a "{}" placeholder for a vertex name.
type QueryTemplate = core.Template

// PaperTemplates returns the three query templates of the paper's Table 4.
func PaperTemplates() []QueryTemplate { return core.PaperTemplates() }

// RandomVertexNames samples n vertex names of a type, deterministically.
func RandomVertexNames(g *Graph, typeName string, n int, seed int64) ([]string, error) {
	return core.RandomVertexNames(g, typeName, n, seed)
}

// BuildQuerySet instantiates a template once per name.
func BuildQuerySet(t QueryTemplate, names []string) []string {
	return core.BuildQuerySet(t, names)
}

// ---------------------------------------------------------------------------
// Baselines

// LOFOptions configures the Local Outlier Factor baseline.
type LOFOptions = lof.Options

// LOFScores computes LOF over feature vectors (larger = more outlying).
func LOFScores(points []Vector, opts LOFOptions) ([]float64, error) {
	return lof.Scores(points, opts)
}

// KNNOutlierScores computes the kNN-distance outlier score of Ramaswamy et
// al. (larger = more outlying).
func KNNOutlierScores(points []Vector, k int) ([]float64, error) {
	return lof.KNNScores(points, k, nil)
}

// EuclideanDistance and CosineDistance are the distance functions available
// to the baselines.
var (
	EuclideanDistance = lof.Euclidean
	CosineDistance    = lof.Cosine
)

// ---------------------------------------------------------------------------
// Synthetic networks and I/O

// GenConfig configures the synthetic DBLP-like network generator; Planted
// configures the case-study outlier profiles; Manifest records what was
// planted.
type (
	GenConfig  = gen.Config
	GenPlanted = gen.Planted
	Manifest   = gen.Manifest
)

// DefaultGenConfig returns a mid-sized deterministic generator configuration.
func DefaultGenConfig() GenConfig { return gen.Default() }

// ScaledGenConfig scales the default background network by a factor.
func ScaledGenConfig(factor int) GenConfig { return gen.Scaled(factor) }

// Generate builds a synthetic bibliographic network.
func Generate(cfg GenConfig) (*Graph, *Manifest, error) { return gen.Generate(cfg) }

// SecurityConfig configures the security-operations generator;
// SecurityManifest records its planted compromised hosts.
type (
	SecurityConfig   = gen.SecurityConfig
	SecurityManifest = gen.SecurityManifest
)

// DefaultSecurityConfig returns a small but non-trivial configuration.
func DefaultSecurityConfig() SecurityConfig { return gen.DefaultSecurityConfig() }

// GenerateSecurity builds a host/alert/signature/subnet network with
// planted compromised hosts.
func GenerateSecurity(cfg SecurityConfig) (*Graph, *SecurityManifest, error) {
	return gen.GenerateSecurity(cfg)
}

// LoadGraph reads a network from a file (.json → JSON, otherwise TSV).
func LoadGraph(path string) (*Graph, error) { return hinio.Load(path) }

// SaveGraph writes a network to a file (.json → JSON, otherwise TSV).
func SaveGraph(path string, g *Graph) error { return hinio.Save(path, g) }

// ---------------------------------------------------------------------------
// Relational bridge (Section 8: outlier queries over relational databases)

// Relational store types: entity tables become vertex types, foreign keys
// and junction tables become links.
type (
	RelDB           = rel.DB
	RelTable        = rel.Table
	RelTableDef     = rel.TableDef
	RelColumn       = rel.Column
	RelColumnType   = rel.ColumnType
	RelRow          = rel.Row
	RelBridgeConfig = rel.BridgeConfig
	RelEntityTable  = rel.EntityTable
)

// Relational column types.
const (
	RelText  = rel.TextCol
	RelInt   = rel.IntCol
	RelFloat = rel.FloatCol
)

// NewRelDB creates an empty in-memory relational database.
func NewRelDB() *RelDB { return rel.NewDB() }

// RelToHIN converts a relational database into a heterogeneous information
// network, after which outlier queries run unchanged.
func RelToHIN(db *RelDB, cfg RelBridgeConfig) (*Graph, error) { return rel.ToHIN(db, cfg) }

// ---------------------------------------------------------------------------
// Knowledge-graph ingestion (Section 8: open-schema networks)

// TripleStore accumulates subject/predicate/object triples; `type`
// declarations become vertex types and every other predicate becomes an
// allowed link.
type TripleStore = kg.Store

// NewTripleStore creates an empty triple store.
func NewTripleStore() *TripleStore { return kg.NewStore() }

// ReadTriples parses tab-separated triples.
func ReadTriples(r io.Reader) (*TripleStore, error) { return kg.Read(r) }

// LoadTriples reads triples from a file.
func LoadTriples(path string) (*TripleStore, error) { return kg.Load(path) }

// ---------------------------------------------------------------------------
// ArnetMiner import (the paper's data-set format)

// AminerRecord is one publication entry of an ArnetMiner/DBLP citation dump.
type AminerRecord = aminer.Record

// AminerBuildOptions configures network construction from parsed records.
type AminerBuildOptions = aminer.BuildOptions

// ParseAminer reads ArnetMiner-format records (#* title, #@ authors,
// #c venue, ...).
func ParseAminer(r io.Reader) ([]AminerRecord, error) { return aminer.Parse(r) }

// BuildAminer converts parsed records into the four-type bibliographic
// network the paper's experiments use.
func BuildAminer(records []AminerRecord, opts AminerBuildOptions) (*Graph, error) {
	return aminer.Build(records, opts)
}

// LoadAminer parses a dump file and builds the network in one step.
func LoadAminer(path string, opts AminerBuildOptions) (*Graph, error) {
	return aminer.Load(path, opts)
}

// TokenizeTitle splits a paper title into term tokens the way the importer
// does (lowercased, short tokens and optionally stopwords dropped).
func TokenizeTitle(title string, minLen int, dropStopwords bool) []string {
	return aminer.Tokenize(title, minLen, dropStopwords)
}

// ---------------------------------------------------------------------------
// Result comparison

// OverlapAtK reports how many vertices two results share in their top-k
// prefixes, plus the Jaccard similarity of those prefixes.
func OverlapAtK(a, b *Result, k int) (shared int, jaccard float64) {
	return core.OverlapAtK(a, b, k)
}

// SpearmanRho computes Spearman's rank correlation over the vertices both
// results rank.
func SpearmanRho(a, b *Result) (float64, error) { return core.SpearmanRho(a, b) }

// KendallTau computes Kendall's τ-a over the vertices both results rank.
func KendallTau(a, b *Result) (float64, error) { return core.KendallTau(a, b) }

// DegreeSummary describes a one-hop degree distribution; obtain via
// Graph.DegreeDistribution or Graph.StatsReport.
type DegreeSummary = hin.DegreeSummary

// InducedSubgraph builds the subgraph induced by the given vertices,
// returning the new graph and the old→new vertex mapping.
func InducedSubgraph(g *Graph, vertices []VertexID) (*Graph, map[VertexID]VertexID, error) {
	return hin.InducedSubgraph(g, vertices)
}

// EgoNetwork returns the vertices within hops undirected hops of the seeds.
func EgoNetwork(g *Graph, seeds []VertexID, hops int) ([]VertexID, error) {
	return hin.EgoNetwork(g, seeds, hops)
}

// ---------------------------------------------------------------------------
// Random-walk similarities (the alternatives Section 5.2 contrasts with)

// PPROptions configures Personalized PageRank (random walk with restart).
type PPROptions = walk.PPROptions

// PPR computes the Personalized PageRank vector from a source vertex.
func PPR(g *Graph, source VertexID, opts PPROptions) (Vector, error) {
	return walk.PPR(g, source, opts)
}

// PPROutlierScores scores candidates as Ω(vi) = Σ_{vj∈Sr} ppr_vi(vj)
// (smaller = more outlying).
func PPROutlierScores(g *Graph, cands, refs []VertexID, opts PPROptions) ([]float64, error) {
	return walk.PPROutlierScores(g, cands, refs, opts)
}

// PPRMetaPath computes the meta-path-constrained restart walk: each step
// follows one full instantiation of P·P⁻¹, staying on the source type.
func PPRMetaPath(g *Graph, p MetaPath, source VertexID, opts PPROptions) (Vector, error) {
	return walk.PPRMetaPath(g, p, source, opts)
}

// PPRMetaPathOutlierScores scores candidates under the constrained walk,
// excluding the self term (smaller = more outlying).
func PPRMetaPathOutlierScores(g *Graph, p MetaPath, cands, refs []VertexID, opts PPROptions) ([]float64, error) {
	return walk.PPRMetaPathOutlierScores(g, p, cands, refs, opts)
}

// SimRankOptions configures SimRank; SimRankMatrix holds its pairwise
// fixed point.
type (
	SimRankOptions = walk.SimRankOptions
	SimRankMatrix  = walk.SimRankMatrix
)

// SimRank computes the classic SimRank fixed point (O(n²) — run it on an
// ego-network subgraph for large networks).
func SimRank(g *Graph, opts SimRankOptions) (*SimRankMatrix, error) { return walk.SimRank(g, opts) }

// SimRankOutlierScores scores candidates as Ω(vi) = Σ_{vj∈Sr} s(vi, vj).
func SimRankOutlierScores(m *SimRankMatrix, cands, refs []VertexID) []float64 {
	return walk.SimRankOutlierScores(m, cands, refs)
}

// ---------------------------------------------------------------------------
// Ranking evaluation against ground truth

// EvalReport bundles precision/recall/AP/AUC for one method.
type EvalReport = eval.Report

// PrecisionAtK, RecallAtK, AveragePrecision and ROCAUC evaluate a ranking
// (most outlying first) against a ground-truth positive set.
func PrecisionAtK(ranked []string, positives map[string]bool, k int) float64 {
	return eval.PrecisionAtK(ranked, positives, k)
}

// RecallAtK is the fraction of positives found in the top-k.
func RecallAtK(ranked []string, positives map[string]bool, k int) float64 {
	return eval.RecallAtK(ranked, positives, k)
}

// AveragePrecision is AP over the ranking.
func AveragePrecision(ranked []string, positives map[string]bool) float64 {
	return eval.AveragePrecision(ranked, positives)
}

// ROCAUC is the area under the ROC curve of the ranking.
func ROCAUC(ranked []string, positives map[string]bool) (float64, error) {
	return eval.ROCAUC(ranked, positives)
}

// Evaluate computes the full report for one method's ranking.
func Evaluate(method string, ranked []string, positives map[string]bool, k int) (EvalReport, error) {
	return eval.Evaluate(method, ranked, positives, k)
}

// FormatEvalReports renders reports as an aligned table.
func FormatEvalReports(reports []EvalReport) string { return eval.FormatReports(reports) }
