// Command dblp reproduces the paper's Table 5 case study on a synthetic
// DBLP-like network: three queries over a prolific hub author's coauthors
// and a venue's author set, each surfacing a different kind of outlier.
//
//	go run ./examples/dblp [-scale N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"

	"netout"
)

func main() {
	scale := flag.Int("scale", 1, "background network scale factor")
	seed := flag.Int64("seed", 1, "generator seed")
	strategy := flag.String("strategy", "baseline", "materialization strategy: baseline or pm")
	flag.Parse()

	cfg := netout.ScaledGenConfig(*scale)
	cfg.Seed = *seed
	g, man, err := netout.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("synthetic DBLP: %d authors, %d papers, %d venues, %d terms\n",
		st.PerType["author"], st.PerType["paper"], st.PerType["venue"], st.PerType["term"])
	fmt.Printf("hub author: %s; main venue: %s\n\n", man.Hub, man.MainVenue)

	var opts []netout.EngineOption
	if *strategy == "pm" {
		fmt.Println("pre-materializing all length-2 meta-paths ...")
		opts = append(opts, netout.WithMaterializer(netout.NewPM(g)))
	}
	eng := netout.NewEngine(g, opts...)

	queries := []struct {
		title string
		src   string
	}{
		{
			"Query 1: hub coauthors judged by publishing venues " +
				"(expected: cross-field authors on top, students below)",
			fmt.Sprintf(`FIND OUTLIERS
FROM author{%q}.paper.author
JUDGED BY author.paper.venue
TOP 10;`, man.Hub),
		},
		{
			"Query 2: hub coauthors judged by their coauthors " +
				"(expected: the 'loner' authors with disjoint collaborations)",
			fmt.Sprintf(`FIND OUTLIERS
FROM author{%q}.paper.author
JUDGED BY author.paper.author
TOP 10;`, man.Hub),
		},
		{
			"Query 3: main venue's authors judged by venues " +
				"(expected: the NULL missing-data artifact on top)",
			fmt.Sprintf(`FIND OUTLIERS
FROM venue{%q}.paper.author
JUDGED BY author.paper.venue
TOP 10;`, man.MainVenue),
		},
	}

	kind := plantKinds(man)
	for _, q := range queries {
		fmt.Println(q.title)
		fmt.Println(q.src)
		res, err := eng.Execute(q.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %-9s %-24s %s\n", "rank", "Ω-value", "author", "planted role")
		for i, e := range res.Entries {
			role := kind[e.Name]
			if role == "" {
				role = "-"
			}
			fmt.Printf("%-4d %-9.3f %-24s %s\n", i+1, e.Score, e.Name, role)
		}
		fmt.Printf("(%d candidates, %d reference vertices, %v total)\n\n",
			res.CandidateCount, res.ReferenceCount, res.Timing.Total.Round(1000))
	}
}

// plantKinds labels planted authors for display.
func plantKinds(man *netout.Manifest) map[string]string {
	kind := map[string]string{}
	for _, n := range man.CrossField {
		kind[n] = "cross-field"
	}
	for _, n := range man.Students {
		kind[n] = "student/rare-venue"
	}
	for _, n := range man.Loners {
		kind[n] = "loner"
	}
	for _, n := range man.Normals {
		kind[n] = "normal coauthor"
	}
	if man.Null != "" {
		kind[man.Null] = "missing-data artifact"
	}
	kind[man.Hub] = "hub"
	return kind
}
