// Command quickstart builds a small bibliographic network by hand and runs
// a first outlier query against it: among Ann's coauthors, who publishes in
// unusual venues?
package main

import (
	"fmt"
	"log"

	"netout"
)

func main() {
	// 1. Declare the schema: four vertex types, papers linked to everything.
	schema := netout.MustSchema("author", "paper", "venue", "term")
	author, _ := schema.TypeByName("author")
	paper, _ := schema.TypeByName("paper")
	venue, _ := schema.TypeByName("venue")
	term, _ := schema.TypeByName("term")
	schema.AllowLink(paper, author)
	schema.AllowLink(paper, venue)
	schema.AllowLink(paper, term)

	// 2. Build the network: five authors; Ann, Ben, Cai and Dee are a data
	// mining group publishing at KDD and SIGMOD, while Eve coauthored one
	// paper with Ann but otherwise publishes alone at SIGGRAPH.
	b := netout.NewBuilder(schema)
	venues := map[string]netout.VertexID{}
	for _, v := range []string{"KDD", "SIGMOD", "SIGGRAPH"} {
		venues[v] = b.MustAddVertex(venue, v)
	}
	authors := map[string]netout.VertexID{}
	for _, a := range []string{"Ann", "Ben", "Cai", "Dee", "Eve"} {
		authors[a] = b.MustAddVertex(author, a)
	}
	pid := 0
	addPaper := func(v string, names ...string) {
		pid++
		p := b.MustAddVertex(paper, fmt.Sprintf("paper-%02d", pid))
		b.MustAddEdge(p, venues[v])
		for _, n := range names {
			b.MustAddEdge(p, authors[n])
		}
	}
	addPaper("KDD", "Ann", "Ben")
	addPaper("KDD", "Ann", "Cai")
	addPaper("KDD", "Ben", "Dee")
	addPaper("SIGMOD", "Ann", "Dee")
	addPaper("SIGMOD", "Cai", "Ben")
	addPaper("KDD", "Ann", "Eve")
	addPaper("SIGGRAPH", "Eve")
	addPaper("SIGGRAPH", "Eve")
	addPaper("SIGGRAPH", "Eve")
	g := b.Build()

	st := g.Stats()
	fmt.Printf("network: %d vertices (%d authors, %d papers, %d venues), %d directed edges\n\n",
		st.Vertices, st.PerType["author"], st.PerType["paper"], st.PerType["venue"], st.EdgesDirected)

	// 3. Ask for outliers among Ann's coauthors, judged by their venues.
	query := `FIND OUTLIERS
FROM author{"Ann"}.paper.author
JUDGED BY author.paper.venue
TOP 5;`
	fmt.Println(query)
	fmt.Println()

	eng := netout.NewEngine(g)
	res, err := eng.Execute(query)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Smaller NetOut scores mean more outlying: Eve should top the list.
	fmt.Printf("%-4s %-8s %s\n", "rank", "Ω-value", "author")
	for i, e := range res.Entries {
		fmt.Printf("%-4d %-8.3f %s\n", i+1, e.Score, e.Name)
	}
	fmt.Printf("\nresolved %d candidates against %d reference vertices in %v\n",
		res.CandidateCount, res.ReferenceCount, res.Timing.Total.Round(1000))
}
