// Command security demonstrates the query language on a non-bibliographic
// schema: a security-operations network of hosts, alerts, signatures and
// subnets (the application domain that motivated the paper's ARL funding).
// The analyst asks: among the hosts in the web subnet, which ones raise
// alerts with unusual signatures compared to their peers?
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netout"
)

func main() {
	// Schema: alerts are the event vertices, linked to the host that raised
	// them and the detection signature that fired; hosts belong to subnets.
	schema := netout.MustSchema("host", "alert", "signature", "subnet")
	host, _ := schema.TypeByName("host")
	alert, _ := schema.TypeByName("alert")
	signature, _ := schema.TypeByName("signature")
	subnet, _ := schema.TypeByName("subnet")
	schema.AllowLink(alert, host)
	schema.AllowLink(alert, signature)
	schema.AllowLink(host, subnet)

	b := netout.NewBuilder(schema)
	r := rand.New(rand.NewSource(11))

	web := b.MustAddVertex(subnet, "web-dmz")
	db := b.MustAddVertex(subnet, "db-internal")

	// Ordinary web-tier noise signatures vs. lateral-movement signatures
	// that normally fire only in the database tier.
	webSigs := make([]netout.VertexID, 6)
	for i := range webSigs {
		webSigs[i] = b.MustAddVertex(signature, fmt.Sprintf("HTTP-Scan-%d", i))
	}
	dbSigs := make([]netout.VertexID, 4)
	for i := range dbSigs {
		dbSigs[i] = b.MustAddVertex(signature, fmt.Sprintf("SQL-Lateral-%d", i))
	}
	exfil := b.MustAddVertex(signature, "DNS-Exfil")

	alertSeq := 0
	raise := func(h netout.VertexID, sig netout.VertexID) {
		alertSeq++
		a := b.MustAddVertex(alert, fmt.Sprintf("alert-%05d", alertSeq))
		b.MustAddEdge(a, h)
		b.MustAddEdge(a, sig)
	}

	// 20 ordinary web hosts: lots of scan noise.
	for i := 0; i < 20; i++ {
		h := b.MustAddVertex(host, fmt.Sprintf("web-%02d", i))
		b.MustAddEdge(h, web)
		for k := 0; k < 15+r.Intn(10); k++ {
			raise(h, webSigs[r.Intn(len(webSigs))])
		}
	}
	// 8 database hosts: lateral-movement signatures are routine there.
	for i := 0; i < 8; i++ {
		h := b.MustAddVertex(host, fmt.Sprintf("db-%02d", i))
		b.MustAddEdge(h, db)
		for k := 0; k < 10+r.Intn(6); k++ {
			raise(h, dbSigs[r.Intn(len(dbSigs))])
		}
	}
	// The compromised web host: normal scan noise plus database-tier
	// lateral movement and DNS exfiltration.
	bad := b.MustAddVertex(host, "web-99-compromised")
	b.MustAddEdge(bad, web)
	for k := 0; k < 10; k++ {
		raise(bad, webSigs[r.Intn(len(webSigs))])
	}
	for k := 0; k < 12; k++ {
		raise(bad, dbSigs[r.Intn(len(dbSigs))])
	}
	for k := 0; k < 6; k++ {
		raise(bad, exfil)
	}
	g := b.Build()

	st := g.Stats()
	fmt.Printf("security network: %d hosts, %d alerts, %d signatures, %d subnets\n\n",
		st.PerType["host"], st.PerType["alert"], st.PerType["signature"], st.PerType["subnet"])

	// Outlying hosts in the web subnet, judged by the signatures of the
	// alerts they raise — compared against their own subnet's peers.
	query := `FIND OUTLIERS
FROM subnet{"web-dmz"}.host
JUDGED BY host.alert.signature
TOP 5;`
	fmt.Println(query)
	eng := netout.NewEngine(g)
	res, err := eng.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-4s %-9s %s\n", "rank", "Ω-value", "host")
	for i, e := range res.Entries {
		fmt.Printf("%-4d %-9.3f %s\n", i+1, e.Score, e.Name)
	}

	// Cross-subnet comparison: web hosts judged against database hosts —
	// under this reference set the compromised host looks *least* outlying,
	// illustrating how the reference set changes outlier semantics.
	query2 := `FIND OUTLIERS
FROM subnet{"web-dmz"}.host
COMPARED TO subnet{"db-internal"}.host
JUDGED BY host.alert.signature;`
	fmt.Printf("\n%s\n", query2)
	res2, err := eng.Execute(query2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-4s %-9s %s   (least connected to db-tier behavior first)\n", "rank", "Ω-value", "host")
	for i, e := range res2.Entries {
		if i >= 5 {
			break
		}
		fmt.Printf("%-4d %-9.3f %s\n", i+1, e.Score, e.Name)
	}
	last := res2.Entries[len(res2.Entries)-1]
	fmt.Printf("\nnote: %q ranks last here — its alert profile is the one most like the db tier.\n", last.Name)
}
