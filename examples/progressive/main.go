// Command progressive demonstrates the Section 8 extension: approximate
// top-k outliers with confidence intervals while the query is being
// processed, stopping automatically once the top-k identity is stable.
//
//	go run ./examples/progressive [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"

	"netout"
)

func main() {
	scale := flag.Int("scale", 2, "background network scale factor")
	flag.Parse()

	cfg := netout.ScaledGenConfig(*scale)
	g, man, err := netout.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("network: %d authors, %d papers\n\n", st.PerType["author"], st.PerType["paper"])

	// A reference set of every author makes the exact query expensive —
	// exactly the situation where streaming estimates pay off.
	query := fmt.Sprintf(`FIND OUTLIERS
FROM author{%q}.paper.author
COMPARED TO author
JUDGED BY author.paper.venue
TOP 3;`, man.Hub)
	fmt.Println(query)
	fmt.Println()

	eng := netout.NewEngine(g)
	snapshots := 0
	res, err := eng.ExecuteProgressive(query, netout.ProgressiveOptions{
		ChunkSize: 200,
		OnSnapshot: netout.StopWhenStable(3, 4, func(s netout.ProgressiveSnapshot) bool {
			snapshots++
			fmt.Printf("after %5d/%d reference vertices:", s.ProcessedRefs, s.TotalRefs)
			for _, est := range s.TopK {
				fmt.Printf("  %s = %.2f ± %.2f", est.Name, est.Score, est.HalfWidth)
			}
			fmt.Println()
			return true
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstopped after %d snapshots (top-3 stable for 4 consecutive rounds)\n", snapshots)
	fmt.Println("\nfinal estimates:")
	for i, e := range res.Entries {
		fmt.Printf("  %d. %-28s %.3f\n", i+1, e.Name, e.Score)
	}

	// Compare with the exact answer.
	exact, err := eng.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexact top-3 for comparison:")
	for i, e := range exact.Entries {
		fmt.Printf("  %d. %-28s %.3f\n", i+1, e.Name, e.Score)
	}
}
