// Command relational demonstrates outlier queries over a traditional
// relational database (the Section 8 extension): an e-commerce schema of
// customers, products, categories and an orders junction table is bridged
// into a heterogeneous information network, after which the OQL language
// runs unchanged — here, to spot the account whose purchases look nothing
// like its cohort's.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netout"
)

func main() {
	db := netout.NewRelDB()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	categories, err := db.CreateTable(netout.RelTableDef{
		Name: "category", Key: "id",
		Columns: []netout.RelColumn{
			{Name: "id", Type: netout.RelInt},
			{Name: "name", Type: netout.RelText},
		},
	})
	must(err)
	products, err := db.CreateTable(netout.RelTableDef{
		Name: "product", Key: "id",
		Columns: []netout.RelColumn{
			{Name: "id", Type: netout.RelInt},
			{Name: "name", Type: netout.RelText},
			{Name: "category_id", Type: netout.RelInt, References: "category"},
		},
	})
	must(err)
	customers, err := db.CreateTable(netout.RelTableDef{
		Name: "customer", Key: "id",
		Columns: []netout.RelColumn{
			{Name: "id", Type: netout.RelInt},
			{Name: "name", Type: netout.RelText},
			{Name: "segment", Type: netout.RelText},
		},
	})
	must(err)
	orders, err := db.CreateTable(netout.RelTableDef{
		Name: "orders",
		Columns: []netout.RelColumn{
			{Name: "customer_id", Type: netout.RelInt, References: "customer"},
			{Name: "product_id", Type: netout.RelInt, References: "product"},
		},
	})
	must(err)

	// Categories and products.
	catNames := []string{"books", "garden", "electronics", "toys", "industrial-chemicals"}
	for i, n := range catNames {
		categories.MustInsert(netout.RelRow{"id": int64(i + 1), "name": n})
	}
	prodID := int64(0)
	prodsByCat := map[int64][]int64{}
	for ci := range catNames {
		for k := 0; k < 6; k++ {
			prodID++
			products.MustInsert(netout.RelRow{
				"id":          prodID,
				"name":        fmt.Sprintf("%s item %d", catNames[ci], k+1),
				"category_id": int64(ci + 1),
			})
			prodsByCat[int64(ci+1)] = append(prodsByCat[int64(ci+1)], prodID)
		}
	}

	// A "household" cohort buying books/garden/toys, plus one account that
	// mixes a couple of normal purchases with bulk industrial chemicals.
	r := rand.New(rand.NewSource(17))
	householdCats := []int64{1, 2, 4}
	for i := 1; i <= 15; i++ {
		customers.MustInsert(netout.RelRow{
			"id": int64(i), "name": fmt.Sprintf("customer-%02d", i), "segment": "household",
		})
		for k := 0; k < 6+r.Intn(5); k++ {
			cat := householdCats[r.Intn(len(householdCats))]
			ps := prodsByCat[cat]
			orders.MustInsert(netout.RelRow{"customer_id": int64(i), "product_id": ps[r.Intn(len(ps))]})
		}
	}
	customers.MustInsert(netout.RelRow{"id": int64(99), "name": "customer-99-suspicious", "segment": "household"})
	orders.MustInsert(netout.RelRow{"customer_id": int64(99), "product_id": prodsByCat[1][0]})
	for k := 0; k < 9; k++ {
		ps := prodsByCat[5]
		orders.MustInsert(netout.RelRow{"customer_id": int64(99), "product_id": ps[r.Intn(len(ps))]})
	}

	must(db.Validate())
	fmt.Println("relational schema: category, product(category_id FK), customer, orders(junction)")

	// Bridge: entity tables become vertex types; the orders junction
	// connects customers to products; the category FK links products to
	// categories.
	g, err := netout.RelToHIN(db, netout.RelBridgeConfig{
		EntityTables: []netout.RelEntityTable{
			{Table: "customer", NameColumn: "name"},
			{Table: "product", NameColumn: "name"},
			{Table: "category", NameColumn: "name"},
		},
		JunctionTables: []string{"orders"},
	})
	must(err)
	st := g.Stats()
	fmt.Printf("bridged network: %d customers, %d products, %d categories; %d directed edges\n\n",
		st.PerType["customer"], st.PerType["product"], st.PerType["category"], st.EdgesDirected)

	query := `FIND OUTLIERS
FROM customer
JUDGED BY customer.product.category
TOP 5;`
	fmt.Println(query)
	eng := netout.NewEngine(g)
	res, err := eng.Execute(query)
	must(err)
	fmt.Printf("\n%-4s %-9s %s\n", "rank", "Ω-value", "customer")
	for i, e := range res.Entries {
		fmt.Printf("%-4d %-9.3f %s\n", i+1, e.Score, e.Name)
	}

	fmt.Println("\nscore distribution (the outlier gap is visible at a glance):")
	full, err := eng.Execute(`FIND OUTLIERS FROM customer JUDGED BY customer.product.category;`)
	must(err)
	h, err := full.ScoreHistogram(8)
	must(err)
	fmt.Print(h.Render(40))

	fmt.Println("\nwhy is the top account outlying?")
	x, err := eng.Explain(query, res.Entries[0].Name, 6)
	must(err)
	fmt.Print(x.Format())
}
