// Command movies demonstrates the framework on a knowledge-graph-style
// schema (Section 8 notes the language "can be applied to open-schema
// networks such as a knowledge graph"): films linked to actors, directors,
// genres and studios. The analyst asks for outliers among a director's
// regular cast, judged by the genres of the other films those actors make —
// and drills into the top outlier with a score explanation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netout"
)

func main() {
	schema := netout.MustSchema("film", "actor", "director", "genre", "studio")
	film, _ := schema.TypeByName("film")
	actor, _ := schema.TypeByName("actor")
	director, _ := schema.TypeByName("director")
	genre, _ := schema.TypeByName("genre")
	studio, _ := schema.TypeByName("studio")
	schema.AllowLink(film, actor)
	schema.AllowLink(film, director)
	schema.AllowLink(film, genre)
	schema.AllowLink(film, studio)

	b := netout.NewBuilder(schema)
	r := rand.New(rand.NewSource(23))

	genres := map[string]netout.VertexID{}
	for _, g := range []string{"thriller", "noir", "drama", "musical", "western", "comedy"} {
		genres[g] = b.MustAddVertex(genre, g)
	}
	studios := []netout.VertexID{
		b.MustAddVertex(studio, "Meridian Pictures"),
		b.MustAddVertex(studio, "Halcyon Films"),
	}

	auteur := b.MustAddVertex(director, "V. Kessler")
	otherDirectors := make([]netout.VertexID, 6)
	for i := range otherDirectors {
		otherDirectors[i] = b.MustAddVertex(director, fmt.Sprintf("Director %02d", i))
	}

	// Kessler's regular troupe: twelve actors who, outside his films, make
	// thrillers and noirs like he does.
	troupe := make([]netout.VertexID, 12)
	for i := range troupe {
		troupe[i] = b.MustAddVertex(actor, fmt.Sprintf("Troupe Actor %02d", i))
	}
	// Two planted outliers in the troupe: a musical star and a western
	// veteran whose filmographies live in very different genres.
	musicalStar := b.MustAddVertex(actor, "Marla Quinn (musicals)")
	westernVet := b.MustAddVertex(actor, "Dutch Harlan (westerns)")

	filmSeq := 0
	shoot := func(d netout.VertexID, gs []string, cast ...netout.VertexID) {
		filmSeq++
		f := b.MustAddVertex(film, fmt.Sprintf("film-%03d", filmSeq))
		b.MustAddEdge(f, d)
		b.MustAddEdge(f, studios[r.Intn(len(studios))])
		for _, g := range gs {
			b.MustAddEdge(f, genres[g])
		}
		for _, a := range cast {
			b.MustAddEdge(f, a)
		}
	}

	// Kessler's films: thrillers/noirs with 3-4 troupe members, and one
	// appearance each for the two planted outsiders.
	for k := 0; k < 10; k++ {
		cast := []netout.VertexID{}
		for _, i := range r.Perm(len(troupe))[:3+r.Intn(2)] {
			cast = append(cast, troupe[i])
		}
		shoot(auteur, []string{"thriller", "noir"}, cast...)
	}
	shoot(auteur, []string{"thriller"}, troupe[0], musicalStar)
	shoot(auteur, []string{"noir"}, troupe[1], westernVet)

	// The troupe's outside work stays in-genre.
	for _, a := range troupe {
		for k := 0; k < 4+r.Intn(3); k++ {
			g := []string{"thriller", "noir", "drama"}[r.Intn(3)]
			shoot(otherDirectors[r.Intn(len(otherDirectors))], []string{g}, a)
		}
	}
	// The outsiders' main filmographies.
	for k := 0; k < 9; k++ {
		shoot(otherDirectors[r.Intn(len(otherDirectors))], []string{"musical", "comedy"}, musicalStar)
	}
	for k := 0; k < 9; k++ {
		shoot(otherDirectors[r.Intn(len(otherDirectors))], []string{"western"}, westernVet)
	}
	g := b.Build()

	st := g.Stats()
	fmt.Printf("movie knowledge graph: %d films, %d actors, %d directors, %d genres, %d studios\n\n",
		st.PerType["film"], st.PerType["actor"], st.PerType["director"],
		st.PerType["genre"], st.PerType["studio"])

	query := `FIND OUTLIERS
FROM director{"V. Kessler"}.film.actor
JUDGED BY actor.film.genre
TOP 5;`
	fmt.Println(query)
	eng := netout.NewEngine(g)
	res, err := eng.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-4s %-9s %s\n", "rank", "Ω-value", "actor")
	for i, e := range res.Entries {
		fmt.Printf("%-4d %-9.3f %s\n", i+1, e.Score, e.Name)
	}

	fmt.Println("\nwhy is the top outlier outlying?")
	x, err := eng.Explain(query, res.Entries[0].Name, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(x.Format())

	fmt.Println("\nwhich other viewpoints would separate outliers sharply?")
	sugs, err := eng.SuggestFeatures(query, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(netout.FormatSuggestions(sugs, 5))
}
