// Command measures reproduces the paper's Table 1/Table 2 toy example and
// extends it with the LOF and kNN-distance baselines: five candidate
// authors scored against a reference set of 100 identical authors, under
// the feature meta-path author.paper.venue.
//
// It shows the bias the paper demonstrates: PathSim and cosine similarity
// flag the low-visibility author Joe as a strong outlier, while NetOut
// correctly treats him as uncharacterized noise and flags Emma and Rob.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netout"
)

// Publication records of Table 1, columns VLDB, KDD, STOC, SIGGRAPH.
var (
	venueNames = []string{"VLDB", "KDD", "STOC", "SIGGRAPH"}
	candidates = []struct {
		name   string
		record [4]float64
	}{
		{"Sarah", [4]float64{10, 10, 1, 1}},
		{"Rob", [4]float64{0, 1, 20, 20}},
		{"Lucy", [4]float64{0, 5, 10, 10}},
		{"Joe", [4]float64{0, 0, 0, 2}},
		{"Emma", [4]float64{0, 0, 0, 30}},
	}
	referenceRecord = [4]float64{10, 10, 1, 1} // ×100 authors
)

// vec converts a venue-count row into a sparse neighbor vector, dropping
// zero counts (coordinates are already in ascending order).
func vec(record [4]float64) netout.Vector {
	var idx []int32
	var val []float64
	for i, c := range record {
		if c != 0 {
			idx = append(idx, int32(i))
			val = append(val, c)
		}
	}
	return netout.Vector{Idx: idx, Val: val}
}

func main() {
	var cands []netout.Vector
	for _, c := range candidates {
		cands = append(cands, vec(c.record))
	}
	refs := make([]netout.Vector, 100)
	for i := range refs {
		refs[i] = vec(referenceRecord)
	}

	fmt.Println("Table 1: publication records (reference set = 100 copies of the reference author)")
	fmt.Printf("%-12s", "")
	for _, v := range venueNames {
		fmt.Printf("%10s", v)
	}
	fmt.Println()
	fmt.Printf("%-12s", "Reference")
	for _, c := range referenceRecord {
		fmt.Printf("%10.0f", c)
	}
	fmt.Println()
	for _, c := range candidates {
		fmt.Printf("%-12s", c.name)
		for _, x := range c.record {
			fmt.Printf("%10.0f", x)
		}
		fmt.Println()
	}

	netOut := netout.ScoreVectors(netout.MeasureNetOut, cands, refs)
	pathSim := netout.ScoreVectors(netout.MeasurePathSim, cands, refs)
	cosSim := netout.ScoreVectors(netout.MeasureCosSim, cands, refs)

	// LOF and kNN run over the pooled candidate+reference population. The
	// 100 identical reference points are a degenerate density (LOF would be
	// +Inf for everything outside the duplicate cluster), so the density
	// baselines see a lightly jittered copy of the reference records —
	// equivalent to 100 near-identical real authors.
	r := rand.New(rand.NewSource(7))
	pool := append([]netout.Vector{}, cands...)
	for range refs {
		rec := referenceRecord
		for i := range rec {
			rec[i] += 0.2 * r.Float64()
		}
		pool = append(pool, vec(rec))
	}
	lofScores, err := netout.LOFScores(pool, netout.LOFOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	knnScores, err := netout.KNNOutlierScores(pool, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable 2: outlier scores (Ω columns: smaller = more outlying;")
	fmt.Println("LOF / kNN-dist columns: larger = more outlying)")
	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n",
		"", "Ω-NetOut", "Ω-PathSim", "Ω-CosSim", "LOF", "kNN-dist")
	for i, c := range candidates {
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			c.name, netOut[i], pathSim[i], cosSim[i], lofScores[i], knnScores[i])
	}

	fmt.Println(`
Reading the table:
  - NetOut flags Emma (3.33) and Rob (6.24); Joe scores 50 — his two papers
    are too little signal to call him an outlier.
  - PathSim flags Joe hardest (1.94): it is biased toward low visibility.
  - CosSim cannot distinguish Joe from Emma (both 7.04): direction only.
  - LOF ranks Joe highest of all: in raw count space his tiny record is far
    from the dense reference cluster, the same low-visibility bias as
    PathSim. kNN-distance prefers Emma/Rob but still scores Joe close to
    Lucy, again unable to discount an unstable two-paper record.`)
}
