#!/usr/bin/env sh
# Network shard tier smoke test: boot two `netout -shard-serve` processes
# and a coordinator with -shard-addrs over the same generated network, and
# assert (1) the scattered query's JSON is identical to unsharded execution,
# (2) both sides export their netout_shard_* metrics, and (3) killing one
# shard process degrades the next query to "partial":true instead of
# failing it. Run via `make shard-net-smoke`; CI runs it after the
# in-process shard smoke.
set -eu

BASE="${SHARD_SMOKE_PORT:-19230}"
COORD="127.0.0.1:$BASE"
SHARD1="127.0.0.1:$((BASE + 1))"
SHARD2="127.0.0.1:$((BASE + 2))"
SHARD1_METRICS="127.0.0.1:$((BASE + 3))"
TMP="$(mktemp -d)"
BIN="$TMP/netout"

cleanup() {
    for pid in "${COORD_PID:-}" "${S1_PID:-}" "${S2_PID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${COORD_PID:-}" "${S1_PID:-}" "${S2_PID:-}"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "shard-net-smoke: FAIL: $*" >&2
    for f in "$TMP"/shard1.log "$TMP"/shard2.log "$TMP"/coord.log; do
        [ -f "$f" ] && sed "s|^|  $(basename "$f"): |" "$f" >&2
    done
    exit 1
}

go build -o "$BIN" ./cmd/netout

# Every process loads the same network: the coordinator partitions
# candidates per query, so shards must agree on vertex identity.
GEN="-gen 1 -seed 1"

"$BIN" $GEN -shard-serve -shard-listen "$SHARD1" -workers 2 \
    -metrics-addr "$SHARD1_METRICS" >"$TMP/shard1.log" 2>&1 &
S1_PID=$!
"$BIN" $GEN -shard-serve -shard-listen "$SHARD2" -workers 2 \
    >"$TMP/shard2.log" 2>&1 &
S2_PID=$!

# The banner prints after the listener is up; wait for both (~10s bound).
for log in shard1 shard2; do
    i=0
    until grep -q 'shard server on' "$TMP/$log.log" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && fail "$log never started listening"
        sleep 0.1
    done
done

Q='FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 5;'

# Unsharded reference, via the CLI against the same generated network.
"$BIN" $GEN -quiet -json -query "$Q" >"$TMP/base.json" \
    || fail "unsharded reference query failed"

# Coordinator: serve mode scattering over both shard processes.
"$BIN" $GEN -serve "$COORD" -shard-addrs "$SHARD1,$SHARD2" -quiet \
    >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
i=0
until curl -fsS "http://$COORD/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "coordinator /readyz never became ready"
    kill -0 "$COORD_PID" 2>/dev/null || fail "coordinator exited during startup"
    sleep 0.1
done

curl -fsS -X POST --data "$Q" "http://$COORD/query" >"$TMP/sharded.json" \
    || fail "scattered query failed"

# The scattered result must match unsharded execution exactly — entries,
# skips, candidate and reference counts. Only the non-deterministic fields
# (elapsed time, serve-mode correlation IDs) are stripped before diffing.
normalize() {
    sed -e 's/"total_us":[0-9]*//' \
        -e 's/"request_id":"[^"]*",//' \
        -e 's/"trace_id":"[^"]*",//' \
        "$1"
}
normalize "$TMP/base.json" >"$TMP/base.norm"
normalize "$TMP/sharded.json" >"$TMP/sharded.norm"
cmp -s "$TMP/base.norm" "$TMP/sharded.norm" || {
    echo "  base:    $(cat "$TMP/base.json")" >&2
    echo "  sharded: $(cat "$TMP/sharded.json")" >&2
    fail "scattered result differs from unsharded execution"
}
grep -q '"partial":true' "$TMP/sharded.json" \
    && fail "healthy fleet produced a partial result"

# Both sides of the RPC export their metrics: the coordinator the per-shard
# client counters, the shard server its admission/served counters.
curl -fsS "http://$COORD/metrics" >"$TMP/coord.metrics" \
    || fail "coordinator /metrics unreachable"
grep -q '^netout_shard_rpc_total' "$TMP/coord.metrics" \
    || fail "coordinator metrics missing netout_shard_rpc_total"
curl -fsS "http://$SHARD1_METRICS/metrics" >"$TMP/shard1.metrics" \
    || fail "shard /metrics unreachable"
grep -q '^netout_shardsrv_requests_total' "$TMP/shard1.metrics" \
    || fail "shard metrics missing netout_shardsrv_requests_total"

# Kill one shard process outright (no drain). The next query must degrade
# to the surviving shard's exact prefix — partial, not failed.
kill -9 "$S2_PID" 2>/dev/null || true
wait "$S2_PID" 2>/dev/null || true
S2_PID=""
curl -fsS -X POST --data "$Q" "http://$COORD/query" >"$TMP/degraded.json" \
    || fail "query against a half-dead fleet failed instead of degrading"
grep -q '"partial":true' "$TMP/degraded.json" \
    || fail "lost shard did not surface as partial: $(cat "$TMP/degraded.json")"

echo "shard-net-smoke: OK (scattered = unsharded; shard loss degraded to partial)"
