#!/usr/bin/env sh
# Observability smoke test: boot `netout -serve` with an event log, run one
# query, and assert every admin surface answers — /metrics, /debug/events,
# /debug/requests, /readyz — and that the JSONL journal got the event.
# Run via `make obs-smoke`; CI runs it next to bench-smoke.
set -eu

PORT="${OBS_SMOKE_PORT:-19187}"
ADDR="127.0.0.1:$PORT"
TMP="$(mktemp -d)"
BIN="$TMP/netout"
LOG="$TMP/events.jsonl"
SRV_OUT="$TMP/serve.log"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "${SRV_PID:-}" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    [ -f "$SRV_OUT" ] && sed 's/^/  serve: /' "$SRV_OUT" >&2
    exit 1
}

go build -o "$BIN" ./cmd/netout

"$BIN" -gen 1 -serve "$ADDR" -event-log "$LOG" -quiet >"$SRV_OUT" 2>&1 &
SRV_PID=$!

# Wait for readiness (graph generation + pool start), bounded at ~10s.
i=0
until curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && fail "/readyz never became ready"
    kill -0 "$SRV_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done

Q='FIND OUTLIERS FROM author{"Christos Hub"}.paper.author JUDGED BY author.paper.venue TOP 3;'
RESP="$(curl -fsS -D "$TMP/headers" -X POST --data "$Q" "http://$ADDR/query")" \
    || fail "POST /query failed"
echo "$RESP" | grep -q '"entries"' || fail "/query response has no entries: $RESP"
grep -qi '^traceparent: 00-' "$TMP/headers" || fail "response carries no traceparent header"

# grep -q a saved copy rather than the pipe: -q closes the pipe on first
# match, which curl reports as a write failure.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics" || fail "/metrics unreachable"
grep -q '^netout_queries_total' "$TMP/metrics" \
    || fail "/metrics missing netout_queries_total"
grep -q '^netout_http_request_seconds_bucket' "$TMP/metrics" \
    || fail "/metrics missing the request latency histogram"
curl -fsS "http://$ADDR/debug/events" >"$TMP/events" || fail "/debug/events unreachable"
grep -q '"outcome": "ok"' "$TMP/events" || fail "/debug/events has no ok event"
curl -fsS "http://$ADDR/debug/requests" >"$TMP/requests" || fail "/debug/requests unreachable"
grep -q 'in-flight' "$TMP/requests" || fail "/debug/requests did not answer"

# The JSONL journal on disk has exactly the served query's wide event.
[ -s "$LOG" ] || fail "event log $LOG is empty"
grep -q '"outcome":"ok"' "$LOG" || fail "event log has no ok event: $(cat "$LOG")"

echo "obs-smoke: OK ($(wc -l <"$LOG") event(s) journaled)"
