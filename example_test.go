package netout_test

import (
	"fmt"

	"netout"
)

// exampleGraph builds the small bibliographic network used by the runnable
// documentation examples: a KDD/SIGMOD group plus Eve, who coauthored once
// with Ann but otherwise publishes alone at SIGGRAPH.
func exampleGraph() *netout.Graph {
	schema := netout.MustSchema("author", "paper", "venue")
	author, _ := schema.TypeByName("author")
	paper, _ := schema.TypeByName("paper")
	venue, _ := schema.TypeByName("venue")
	schema.AllowLink(paper, author)
	schema.AllowLink(paper, venue)
	b := netout.NewBuilder(schema)
	venues := map[string]netout.VertexID{}
	for _, v := range []string{"KDD", "SIGMOD", "SIGGRAPH"} {
		venues[v] = b.MustAddVertex(venue, v)
	}
	authors := map[string]netout.VertexID{}
	for _, a := range []string{"Ann", "Ben", "Cai", "Eve"} {
		authors[a] = b.MustAddVertex(author, a)
	}
	i := 0
	addPaper := func(v string, names ...string) {
		i++
		p := b.MustAddVertex(paper, fmt.Sprintf("p%d", i))
		b.MustAddEdge(p, venues[v])
		for _, n := range names {
			b.MustAddEdge(p, authors[n])
		}
	}
	addPaper("KDD", "Ann", "Ben")
	addPaper("KDD", "Ann", "Cai")
	addPaper("SIGMOD", "Ann", "Ben")
	addPaper("SIGMOD", "Cai")
	addPaper("KDD", "Ann", "Eve")
	addPaper("SIGGRAPH", "Eve")
	addPaper("SIGGRAPH", "Eve")
	addPaper("SIGGRAPH", "Eve")
	return b.Build()
}

// The basic flow: build a network, run a declarative outlier query, read
// the ranked result (smaller scores are more outlying).
func ExampleEngine_Execute() {
	g := exampleGraph()
	eng := netout.NewEngine(g)
	res, err := eng.Execute(`
		FIND OUTLIERS
		FROM author{"Ann"}.paper.author
		JUDGED BY author.paper.venue
		TOP 2;`)
	if err != nil {
		panic(err)
	}
	for i, e := range res.Entries {
		fmt.Printf("%d. %s (%.2f)\n", i+1, e.Name, e.Score)
	}
	// Output:
	// 1. Eve (1.50)
	// 2. Ann (2.10)
}

// Queries parse into an AST that validates against a schema and prints
// back in canonical form.
func ExampleParseQuery() {
	q, err := netout.ParseQuery(`find outliers from venue{"KDD"}.paper.author
judged by author.paper.venue : 2.0 top 5`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.String())
	// Output:
	// FIND OUTLIERS
	// FROM venue{"KDD"}.paper.author
	// JUDGED BY author.paper.venue : 2
	// TOP 5;
}

// Neighbor vectors Φ count meta-path instances; NormalizedConnectivity is
// the building block of NetOut.
func ExampleNormalizedConnectivity() {
	g := exampleGraph()
	tr := netout.NewTraverser(g)
	p, _ := netout.ParseMetaPath(g.Schema(), "author.paper.venue")
	author, _ := g.Schema().TypeByName("author")
	ann, _ := g.VertexByName(author, "Ann")
	eve, _ := g.VertexByName(author, "Eve")
	phiAnn, _ := tr.NeighborVector(p, ann)
	phiEve, _ := tr.NeighborVector(p, eve)
	fmt.Printf("sigma(Eve,Ann) = %.2f\n", netout.NormalizedConnectivity(phiEve, phiAnn))
	fmt.Printf("sigma(Eve,Eve) = %.2f\n", netout.NormalizedConnectivity(phiEve, phiEve))
	// Output:
	// sigma(Eve,Ann) = 0.30
	// sigma(Eve,Eve) = 1.00
}

// Explanations decompose a score coordinate by coordinate, making the
// outlier judgment auditable.
func ExampleEngine_Explain() {
	g := exampleGraph()
	eng := netout.NewEngine(g)
	x, err := eng.Explain(`FIND OUTLIERS FROM author{"Ann"}.paper.author
JUDGED BY author.paper.venue;`, "Eve", 1)
	if err != nil {
		panic(err)
	}
	top := x.Paths[0].Contributions[0]
	fmt.Printf("%s: %.0f%% of Eve's connectivity mass, reference count %.0f\n",
		top.Name, 100*top.CandidateShare, top.ReferenceCount)
	// Output:
	// SIGGRAPH: 90% of Eve's connectivity mass, reference count 3
}

// Meta-paths support the paper's two operators, reversal and concatenation.
func ExampleMetaPath() {
	g := exampleGraph()
	s := g.Schema()
	apv, _ := netout.ParseMetaPath(s, "author.paper.venue")
	fmt.Println(apv.Reverse().Dotted(s))
	fmt.Println(apv.Symmetric().Dotted(s))
	// Output:
	// venue.paper.author
	// author.paper.venue.paper.author
}
