// Package trie implements a byte-wise radix trie mapping strings to int32
// payloads. Section 6.1 of the paper notes that vertex lookup by name "can
// be naively implemented by a hash table, or a trie"; the hin package uses
// hash maps on the hot path and this trie backs prefix queries in the CLI
// (name completion) and serves as the alternative lookup backend.
package trie

import "sort"

// NotFound is returned by Get for absent keys.
const NotFound int32 = -1

type node struct {
	label    []byte // compressed edge label leading to this node
	children []*node
	value    int32
	hasValue bool
}

// Trie maps byte strings to non-negative int32 values. The zero value is an
// empty trie ready for use.
type Trie struct {
	root node
	size int
}

// Len reports the number of keys stored.
func (t *Trie) Len() int { return t.size }

// Put inserts or replaces key with value. Values must be non-negative
// (NotFound is reserved). It reports whether the key was newly inserted.
func (t *Trie) Put(key string, value int32) bool {
	if value < 0 {
		panic("trie: negative values are reserved")
	}
	n := &t.root
	k := []byte(key)
	for {
		if len(k) == 0 {
			if !n.hasValue {
				n.hasValue = true
				t.size++
				n.value = value
				return true
			}
			n.value = value
			return false
		}
		child := n.findChild(k[0])
		if child == nil {
			n.addChild(&node{label: append([]byte(nil), k...), value: value, hasValue: true})
			t.size++
			return true
		}
		common := commonPrefix(child.label, k)
		if common == len(child.label) {
			// Full edge match: descend.
			n, k = child, k[common:]
			continue
		}
		// Split the edge at the divergence point.
		rest := &node{
			label:    append([]byte(nil), child.label[common:]...),
			children: child.children,
			value:    child.value,
			hasValue: child.hasValue,
		}
		child.label = child.label[:common]
		child.children = []*node{rest}
		child.hasValue = false
		child.value = 0
		n, k = child, k[common:]
	}
}

// Get returns the value stored for key, or NotFound.
func (t *Trie) Get(key string) int32 {
	n := t.lookup(key)
	if n == nil || !n.hasValue {
		return NotFound
	}
	return n.value
}

// Contains reports whether key is present.
func (t *Trie) Contains(key string) bool {
	n := t.lookup(key)
	return n != nil && n.hasValue
}

func (t *Trie) lookup(key string) *node {
	n := &t.root
	k := []byte(key)
	for len(k) > 0 {
		child := n.findChild(k[0])
		if child == nil || commonPrefix(child.label, k) != len(child.label) {
			return nil
		}
		n, k = child, k[len(child.label):]
	}
	return n
}

// WithPrefix returns all (key, value) pairs whose key starts with prefix,
// in lexicographic key order.
func (t *Trie) WithPrefix(prefix string) (keys []string, values []int32) {
	n := &t.root
	k := []byte(prefix)
	acc := []byte(nil)
	for len(k) > 0 {
		child := n.findChild(k[0])
		if child == nil {
			return nil, nil
		}
		common := commonPrefix(child.label, k)
		if common == len(k) {
			// Prefix ends inside this edge; the whole subtree matches.
			acc = append(acc, child.label...)
			n, k = child, nil
			break
		}
		if common != len(child.label) {
			return nil, nil
		}
		acc = append(acc, child.label...)
		n, k = child, k[common:]
	}
	n.walk(acc, func(key []byte, v int32) {
		keys = append(keys, string(key))
		values = append(values, v)
	})
	return keys, values
}

func (n *node) walk(prefix []byte, fn func(key []byte, v int32)) {
	if n.hasValue {
		fn(prefix, n.value)
	}
	for _, c := range n.children {
		c.walk(append(prefix, c.label...), fn)
	}
}

func (n *node) findChild(b byte) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].label[0] >= b })
	if i < len(n.children) && n.children[i].label[0] == b {
		return n.children[i]
	}
	return nil
}

func (n *node) addChild(c *node) {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].label[0] >= c.label[0] })
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
