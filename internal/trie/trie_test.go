package trie

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	var tr Trie
	keys := []string{"", "a", "ab", "abc", "abd", "b", "banana", "band", "bandana"}
	for i, k := range keys {
		if !tr.Put(k, int32(i)) {
			t.Fatalf("Put(%q) reported existing", k)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for i, k := range keys {
		if got := tr.Get(k); got != int32(i) {
			t.Fatalf("Get(%q) = %d, want %d", k, got, i)
		}
		if !tr.Contains(k) {
			t.Fatalf("Contains(%q) = false", k)
		}
	}
	for _, k := range []string{"c", "ban", "bandanas", "abcd", "x"} {
		if tr.Get(k) != NotFound {
			t.Errorf("Get(%q) should be NotFound", k)
		}
		if tr.Contains(k) {
			t.Errorf("Contains(%q) should be false", k)
		}
	}
}

func TestPutReplace(t *testing.T) {
	var tr Trie
	tr.Put("k", 1)
	if tr.Put("k", 2) {
		t.Fatal("second Put should report existing key")
	}
	if tr.Get("k") != 2 || tr.Len() != 1 {
		t.Fatal("replacement failed")
	}
}

func TestPutNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative value should panic")
		}
	}()
	var tr Trie
	tr.Put("k", -1)
}

func TestWithPrefix(t *testing.T) {
	var tr Trie
	data := map[string]int32{
		"christos":  1,
		"christine": 2,
		"chris":     3,
		"clara":     4,
		"zoe":       5,
	}
	for k, v := range data {
		tr.Put(k, v)
	}
	keys, vals := tr.WithPrefix("chris")
	if len(keys) != 3 {
		t.Fatalf("WithPrefix(chris) = %v", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	for i, k := range keys {
		if vals[i] != data[k] {
			t.Fatalf("value mismatch for %q", k)
		}
	}
	keys, _ = tr.WithPrefix("")
	if len(keys) != len(data) {
		t.Fatalf("WithPrefix('') = %v", keys)
	}
	if keys, _ := tr.WithPrefix("nosuch"); keys != nil {
		t.Fatalf("WithPrefix(nosuch) = %v", keys)
	}
	if keys, _ := tr.WithPrefix("christopher"); keys != nil {
		t.Fatalf("prefix longer than any key should be empty, got %v", keys)
	}
}

func TestQuickMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trie
		ref := make(map[string]int32)
		alphabet := "abc"
		for i := 0; i < 200; i++ {
			n := r.Intn(6)
			b := make([]byte, n)
			for j := range b {
				b[j] = alphabet[r.Intn(len(alphabet))]
			}
			k := string(b)
			v := int32(r.Intn(1000))
			_, existed := ref[k]
			inserted := tr.Put(k, v)
			if inserted == existed {
				return false
			}
			ref[k] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if tr.Get(k) != v {
				return false
			}
		}
		// Probe some absent keys.
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("zz%d", i)
			if tr.Get(k) != NotFound {
				return false
			}
		}
		// Prefix enumeration matches the reference map.
		for _, prefix := range []string{"", "a", "ab", "abc", "b", "ca"} {
			keys, vals := tr.WithPrefix(prefix)
			var want []string
			for k := range ref {
				if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
					want = append(want, k)
				}
			}
			sort.Strings(want)
			if len(keys) != len(want) {
				return false
			}
			for i := range keys {
				if keys[i] != want[i] || vals[i] != ref[keys[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
