package aminer

import (
	"strings"
	"testing"
)

// FuzzParse ensures the ArnetMiner parser never panics and that accepted
// records always build a valid network.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"#* Title\n#@ A;B\n#c V\n#index 1\n",
		"#* Title Only\n",
		"#* One\n#* Two\n",
		"#* T\n#@ ;;\n#t \n#c \n#% x\n#! abs\n",
		"#*\tTabbed Title\n",
		"not a record",
		"#index 1\n",
		strings.Repeat("#* t\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		recs, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		g, err := Build(recs, BuildOptions{MissingAuthor: "NULL"})
		if err != nil {
			t.Fatalf("accepted records fail to build: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph invalid: %v", err)
		}
	})
}
