// Package aminer parses the ArnetMiner / DBLP citation text format — the
// actual distribution format of the data set the paper evaluates on
// (Section 7.1, arnetminer.org) — and builds the four-type bibliographic
// heterogeneous information network (paper, author, venue, term) the
// experiments use.
//
// The format is line oriented, one record per paper:
//
//	#* Some Paper Title
//	#@ Ada Lovelace;Charles Babbage
//	#t 1843
//	#c Analytical Engines Symposium
//	#index 12
//	#% 7
//	#! Abstract text ...
//
// Records are separated by blank lines (a new #* also starts a record).
// Only #*, #@ and #c contribute to the network: titles are tokenized into
// term vertices (lowercased, stopwords dropped), authors and venues become
// vertices of their types. Reference (#%), year (#t), index (#index) and
// abstract (#!) lines are accepted and ignored, so real dumps parse as-is.
package aminer

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"netout/internal/hin"
)

// Record is one parsed publication entry.
type Record struct {
	Title   string
	Authors []string
	Venue   string
	Year    string
	Index   string
}

// ParseError reports a malformed line with its position.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("aminer: line %d: %s", e.Line, e.Msg) }

// Parse reads records from r. Records missing a title are rejected;
// records missing authors or venue are kept (the network simply gets no
// such links), matching the sparsity of real dumps — this is exactly how
// "NULL" authors arise.
func Parse(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	var cur *Record
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if strings.TrimSpace(cur.Title) == "" {
			return &ParseError{lineNo, "record has no title"}
		}
		out = append(out, *cur)
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if !strings.HasPrefix(trimmed, "#") {
			return nil, &ParseError{lineNo, fmt.Sprintf("expected a #-tagged line, got %q", trimmed)}
		}
		tag, rest := splitTag(trimmed)
		switch tag {
		case "#*":
			if cur != nil {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			cur = &Record{Title: rest}
		case "#@":
			if cur == nil {
				return nil, &ParseError{lineNo, "#@ before any #*"}
			}
			for _, a := range strings.Split(rest, ";") {
				if a = strings.TrimSpace(a); a != "" {
					cur.Authors = append(cur.Authors, a)
				}
			}
		case "#c":
			if cur == nil {
				return nil, &ParseError{lineNo, "#c before any #*"}
			}
			cur.Venue = rest
		case "#t":
			if cur == nil {
				return nil, &ParseError{lineNo, "#t before any #*"}
			}
			cur.Year = rest
		case "#index":
			if cur == nil {
				return nil, &ParseError{lineNo, "#index before any #*"}
			}
			cur.Index = rest
		case "#%", "#!":
			if cur == nil {
				return nil, &ParseError{lineNo, tag + " before any #*"}
			}
			// references and abstracts are accepted and ignored
		default:
			return nil, &ParseError{lineNo, fmt.Sprintf("unknown tag %q", tag)}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("aminer: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func splitTag(line string) (tag, rest string) {
	// #index and other multi-letter tags: the tag is '#' plus the leading
	// letters/symbols up to the first space.
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

// BuildOptions configures network construction.
type BuildOptions struct {
	// MinTermLength drops shorter title tokens (default 3).
	MinTermLength int
	// MaxTermsPerPaper caps the number of term links per paper (0 = all).
	MaxTermsPerPaper int
	// KeepStopwords disables the built-in stopword list.
	KeepStopwords bool
	// MissingAuthor, when non-empty, attaches papers that have no #@ line
	// to an author vertex with this name — reproducing the NULL
	// missing-data artifact of the paper's Table 5 ("" keeps such papers
	// author-less).
	MissingAuthor string
}

// Build converts parsed records into the four-type bibliographic network.
func Build(records []Record, opts BuildOptions) (*hin.Graph, error) {
	if opts.MinTermLength <= 0 {
		opts.MinTermLength = 3
	}
	schema := hin.MustSchema("author", "paper", "venue", "term")
	authorT, _ := schema.TypeByName("author")
	paperT, _ := schema.TypeByName("paper")
	venueT, _ := schema.TypeByName("venue")
	termT, _ := schema.TypeByName("term")
	schema.AllowLink(paperT, authorT)
	schema.AllowLink(paperT, venueT)
	schema.AllowLink(paperT, termT)
	b := hin.NewBuilder(schema)

	for i, rec := range records {
		name := rec.Index
		if name == "" {
			name = fmt.Sprintf("record-%d", i)
		}
		// Titles can collide; papers are identified by index/position, with
		// the title kept in the vertex name for display.
		p, err := b.AddVertex(paperT, name+": "+rec.Title)
		if err != nil {
			return nil, err
		}
		authors := rec.Authors
		if len(authors) == 0 && opts.MissingAuthor != "" {
			authors = []string{opts.MissingAuthor}
		}
		for _, a := range authors {
			av, err := b.AddVertex(authorT, a)
			if err != nil {
				return nil, err
			}
			if err := b.AddEdge(p, av); err != nil {
				return nil, err
			}
		}
		if rec.Venue != "" {
			vv, err := b.AddVertex(venueT, rec.Venue)
			if err != nil {
				return nil, err
			}
			if err := b.AddEdge(p, vv); err != nil {
				return nil, err
			}
		}
		terms := Tokenize(rec.Title, opts.MinTermLength, !opts.KeepStopwords)
		if opts.MaxTermsPerPaper > 0 && len(terms) > opts.MaxTermsPerPaper {
			terms = terms[:opts.MaxTermsPerPaper]
		}
		for _, tm := range terms {
			tv, err := b.AddVertex(termT, tm)
			if err != nil {
				return nil, err
			}
			if err := b.AddEdge(p, tv); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// Load parses a file and builds the network in one step.
func Load(path string, opts BuildOptions) (*hin.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := Parse(f)
	if err != nil {
		return nil, err
	}
	return Build(records, opts)
}
