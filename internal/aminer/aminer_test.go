package aminer

import (
	"strings"
	"testing"

	"netout/internal/core"
)

const sampleDump = `#* Mining Outliers in Large Graphs
#@ Ada Lovelace;Charles Babbage
#t 2014
#c KDD
#index 1
#% 3
#! We study outlier mining in graphs.

#* Query Languages for Heterogeneous Networks
#@ Ada Lovelace
#t 2015
#c EDBT
#index 2

#* Rendering Fluids with Particles
#@ Grace Hopper
#t 2015
#c SIGGRAPH
#index 3
#* A Venue-less Preprint on Graph Mining
#@ Charles Babbage
#index 4

#* An Authorless Record
#c KDD
#index 5
`

func TestParse(t *testing.T) {
	recs, err := Parse(strings.NewReader(sampleDump))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d: %+v", len(recs), recs)
	}
	r0 := recs[0]
	if r0.Title != "Mining Outliers in Large Graphs" || len(r0.Authors) != 2 ||
		r0.Venue != "KDD" || r0.Year != "2014" || r0.Index != "1" {
		t.Fatalf("record 0 = %+v", r0)
	}
	// Record 3 started without a blank separator (#* directly after #index).
	if recs[3].Title != "A Venue-less Preprint on Graph Mining" || recs[3].Venue != "" {
		t.Fatalf("record 3 = %+v", recs[3])
	}
	if len(recs[4].Authors) != 0 {
		t.Fatalf("record 4 should be authorless: %+v", recs[4])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"untagged line":    "hello\n",
		"unknown tag":      "#z whatever\n",
		"authors first":    "#@ X\n",
		"venue first":      "#c X\n",
		"year first":       "#t 2000\n",
		"index first":      "#index 4\n",
		"refs first":       "#% 4\n",
		"abstract first":   "#! text\n",
		"title-less flush": "#* \n#@ X\n\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(src)); err == nil {
				t.Errorf("Parse(%q) should fail", src)
			}
		})
	}
	if _, err := Parse(strings.NewReader("")); err != nil {
		t.Errorf("empty input should parse to no records: %v", err)
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse(strings.NewReader("#z bad\n"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 || !strings.Contains(pe.Error(), "line 1") {
		t.Fatalf("ParseError = %+v", pe)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Mining the Outliers: of Large-Graphs, mining!", 3, true)
	want := []string{"mining", "outliers", "large", "graphs"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	// Keep stopwords when asked, drop short tokens always.
	got = Tokenize("The Big AI", 3, false)
	if len(got) != 2 || got[0] != "the" || got[1] != "big" {
		t.Fatalf("Tokenize with stopwords = %v", got)
	}
	// Unicode titles survive.
	got = Tokenize("日本語 graph データ", 2, true)
	if len(got) != 3 {
		t.Fatalf("unicode Tokenize = %v", got)
	}
	if got := Tokenize("", 3, true); len(got) != 0 {
		t.Fatalf("empty title = %v", got)
	}
}

func TestBuild(t *testing.T) {
	recs, err := Parse(strings.NewReader(sampleDump))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(recs, BuildOptions{MissingAuthor: "NULL"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	s := g.Schema()
	authorT, _ := s.TypeByName("author")
	paperT, _ := s.TypeByName("paper")
	venueT, _ := s.TypeByName("venue")
	termT, _ := s.TypeByName("term")
	if g.NumVerticesOfType(paperT) != 5 {
		t.Fatalf("papers = %d", g.NumVerticesOfType(paperT))
	}
	// Authors: Ada, Charles, Grace + NULL.
	if g.NumVerticesOfType(authorT) != 4 {
		t.Fatalf("authors = %d", g.NumVerticesOfType(authorT))
	}
	if g.NumVerticesOfType(venueT) != 3 {
		t.Fatalf("venues = %d", g.NumVerticesOfType(venueT))
	}
	if g.NumVerticesOfType(termT) == 0 {
		t.Fatal("no terms")
	}
	nullA, ok := g.VertexByName(authorT, "NULL")
	if !ok {
		t.Fatal("NULL author missing")
	}
	if d := g.Degree(nullA, paperT); d != 1 {
		t.Fatalf("NULL degree = %d", d)
	}
	// Shared term "mining" links records 1 and 4.
	mining, ok := g.VertexByName(termT, "mining")
	if !ok {
		t.Fatal("term 'mining' missing")
	}
	if d := g.Degree(mining, paperT); d != 2 {
		t.Fatalf("'mining' paper degree = %d", d)
	}
	// Ada's coauthor outlier query runs on the imported network.
	eng := core.NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS
FROM author{"Ada Lovelace"}.paper.author
JUDGED BY author.paper.term;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 2 {
		t.Fatalf("candidates = %d", res.CandidateCount)
	}
}

func TestBuildOptions(t *testing.T) {
	recs := []Record{{Title: "alpha beta gamma delta epsilon", Index: "1"}}
	g, err := Build(recs, BuildOptions{MaxTermsPerPaper: 2})
	if err != nil {
		t.Fatal(err)
	}
	termT, _ := g.Schema().TypeByName("term")
	if n := g.NumVerticesOfType(termT); n != 2 {
		t.Fatalf("terms = %d, want 2 (capped)", n)
	}
	// Without MissingAuthor the paper is author-less.
	authorT, _ := g.Schema().TypeByName("author")
	if n := g.NumVerticesOfType(authorT); n != 0 {
		t.Fatalf("authors = %d, want 0", n)
	}
	// Duplicate titles with no index still build (positional names).
	recs = []Record{{Title: "same"}, {Title: "same"}}
	g, err = Build(recs, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	paperT, _ := g.Schema().TypeByName("paper")
	if g.NumVerticesOfType(paperT) != 2 {
		t.Fatal("duplicate titles collapsed")
	}
}

func TestLoad(t *testing.T) {
	if _, err := Load("/nonexistent/dump.txt", BuildOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}
