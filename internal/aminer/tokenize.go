package aminer

import "strings"

// stopwords is a compact English stopword list tuned for paper titles;
// terms on it never become term vertices (unless BuildOptions.KeepStopwords
// is set).
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"based": true, "be": true, "between": true, "by": true, "can": true,
	"case": true, "do": true, "for": true, "from": true, "how": true,
	"in": true, "into": true, "is": true, "it": true, "its": true,
	"new": true, "non": true, "not": true, "of": true, "on": true,
	"or": true, "over": true, "some": true, "study": true, "that": true,
	"the": true, "their": true, "this": true, "to": true, "toward": true,
	"towards": true, "under": true, "using": true, "via": true, "what": true,
	"when": true, "with": true, "within": true, "without": true,
}

// Tokenize splits a title into lowercase alphanumeric terms, dropping
// tokens shorter than minLen and (optionally) stopwords. Duplicate terms
// within one title are kept once, preserving first-occurrence order, so a
// paper links to each of its terms exactly once.
func Tokenize(title string, minLen int, dropStopwords bool) []string {
	var out []string
	seen := map[string]bool{}
	var sb strings.Builder
	emit := func() {
		if sb.Len() == 0 {
			return
		}
		tok := sb.String()
		sb.Reset()
		if len(tok) < minLen {
			return
		}
		if dropStopwords && stopwords[tok] {
			return
		}
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r > 127: // keep non-ASCII letters (unicode titles)
			sb.WriteRune(r)
		default:
			emit()
		}
	}
	emit()
	return out
}
