package hinio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"netout/internal/gen"
	"netout/internal/hin"
)

func sampleGraph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.MustSchema("author", "paper", "venue")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	b := hin.NewBuilder(s)
	// Names exercising escaping: tabs, newlines, backslashes, unicode.
	a1 := b.MustAddVertex(a, "Alice\tTab")
	a2 := b.MustAddVertex(a, "Bob\nNewline")
	p1 := b.MustAddVertex(p, `back\slash`)
	p2 := b.MustAddVertex(p, "日本語")
	v1 := b.MustAddVertex(v, "EDBT")
	b.MustAddEdge(p1, a1)
	b.MustAddEdge(p1, a2)
	b.MustAddEdge(p1, v1)
	b.MustAddEdge(p2, a1)
	if err := b.AddEdgeMult(p2, v1, 3); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func graphsEqual(t *testing.T, a, b *hin.Graph) {
	t.Helper()
	if !a.Schema().Equal(b.Schema()) {
		t.Fatal("schemas differ")
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		vid := hin.VertexID(v)
		if a.Name(vid) != b.Name(vid) || a.Type(vid) != b.Type(vid) {
			t.Fatalf("vertex %d differs: %q/%d vs %q/%d", v, a.Name(vid), a.Type(vid), b.Name(vid), b.Type(vid))
		}
		for tt := 0; tt < a.Schema().NumTypes(); tt++ {
			an, am := a.Neighbors(vid, hin.TypeID(tt))
			bn, bm := b.Neighbors(vid, hin.TypeID(tt))
			if len(an) != len(bn) {
				t.Fatalf("vertex %d type %d neighbor count differs", v, tt)
			}
			for i := range an {
				if an[i] != bn[i] || am[i] != bm[i] {
					t.Fatalf("vertex %d neighbor %d differs", v, i)
				}
			}
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestGeneratedGraphRoundTrip(t *testing.T) {
	cfg := gen.Default()
	cfg.Papers = 300
	cfg.AuthorsPerCommunity = 30
	cfg.TermsPerCommunity = 30
	g, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestFileHelpersAndDispatch(t *testing.T) {
	g := sampleGraph(t)
	dir := t.TempDir()
	tsvPath := filepath.Join(dir, "net.tsv")
	jsonPath := filepath.Join(dir, "net.json")
	if err := Save(tsvPath, g); err != nil {
		t.Fatal(err)
	}
	if err := Save(jsonPath, g); err != nil {
		t.Fatal(err)
	}
	g1, err := Load(tsvPath)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g1)
	g2, err := Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if _, err := Load(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "not a header\n",
		"unknown record": tsvHeader + "\nX\tfoo\n",
		"short T":        tsvHeader + "\nT\n",
		"bad V type":     tsvHeader + "\nT\ta\nV\tx\tname\n",
		"V out of range": tsvHeader + "\nT\ta\nV\t7\tname\n",
		"short E":        tsvHeader + "\nT\ta\nL\t0\t0\nV\t0\tx\nE\t0\t0\n",
		"bad E mult":     tsvHeader + "\nT\ta\nL\t0\t0\nV\t0\tx\nE\t0\t0\tzero\n",
		"zero E mult":    tsvHeader + "\nT\ta\nL\t0\t0\nV\t0\tx\nE\t0\t0\t0\n",
		"E out of range": tsvHeader + "\nT\ta\nL\t0\t0\nV\t0\tx\nE\t0\t5\t1\n",
		"L out of range": tsvHeader + "\nT\ta\nL\t0\t9\n",
		"dup vertex":     tsvHeader + "\nT\ta\nV\t0\tx\nV\t0\tx\n",
		"schema edge":    tsvHeader + "\nT\ta\nT\tb\nV\t0\tx\nV\t1\ty\nE\t0\t1\t1\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTSV(strings.NewReader(src)); err == nil {
				t.Errorf("ReadTSV(%q) should fail", src)
			}
		})
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      "zzz",
		"unknown link":  `{"types":["a"],"links":[["a","b"]],"vertices":[],"edges":[]}`,
		"unknown vtype": `{"types":["a"],"links":[],"vertices":[{"type":"b","name":"x"}],"edges":[]}`,
		"dup vertex":    `{"types":["a"],"links":[],"vertices":[{"type":"a","name":"x"},{"type":"a","name":"x"}],"edges":[]}`,
		"edge range":    `{"types":["a"],"links":[["a","a"]],"vertices":[{"type":"a","name":"x"}],"edges":[[0,5,1]]}`,
		"edge mult":     `{"types":["a"],"links":[["a","a"]],"vertices":[{"type":"a","name":"x"}],"edges":[[0,0,0]]}`,
		"no types":      `{"types":[],"links":[],"vertices":[],"edges":[]}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(src)); err == nil {
				t.Errorf("ReadJSON(%q) should fail", src)
			}
		})
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"", "plain", "tab\there", "nl\nhere", `bs\here`, `mix\t\n\\`, "trailing\\"}
	for _, s := range cases {
		if got := unescape(escape(s)); got != s {
			t.Errorf("escape round trip of %q -> %q", s, got)
		}
	}
	// Unknown escapes pass through unchanged.
	if got := unescape(`\q`); got != `\q` {
		t.Errorf("unknown escape mangled: %q", got)
	}
}
