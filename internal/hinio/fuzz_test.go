package hinio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV ensures the TSV loader never panics and that everything it
// accepts is a valid graph that round-trips.
func FuzzReadTSV(f *testing.F) {
	seeds := []string{
		"",
		tsvHeader + "\n",
		tsvHeader + "\nT\tauthor\nT\tpaper\nL\t0\t1\nL\t1\t0\nV\t0\tAda\nV\t1\tp1\nE\t0\t1\t2\n",
		tsvHeader + "\nT\ta\nL\t0\t0\nV\t0\tx\\ty\nE\t0\t0\t1\n",
		tsvHeader + "\nX\tjunk\n",
		"#netout-hin v999\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadTSV(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %q", err, src)
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("round trip unparsable: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}
