package hinio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"netout/internal/hin"
)

// jsonGraph is the JSON interchange shape.
type jsonGraph struct {
	Types    []string    `json:"types"`
	Links    [][2]string `json:"links"` // allowed links by type name (one direction per entry)
	Vertices []jsonVert  `json:"vertices"`
	Edges    [][3]int64  `json:"edges"` // [src, dst, mult], each undirected edge once
}

type jsonVert struct {
	Type string `json:"type"`
	Name string `json:"name"`
}

// WriteJSON writes g to w as JSON.
func WriteJSON(w io.Writer, g *hin.Graph) error {
	s := g.Schema()
	jg := jsonGraph{Types: s.TypeNames()}
	for src := 0; src < s.NumTypes(); src++ {
		for dst := 0; dst < s.NumTypes(); dst++ {
			if s.EdgeAllowed(hin.TypeID(src), hin.TypeID(dst)) {
				jg.Links = append(jg.Links, [2]string{s.TypeName(hin.TypeID(src)), s.TypeName(hin.TypeID(dst))})
			}
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := hin.VertexID(v)
		jg.Vertices = append(jg.Vertices, jsonVert{Type: s.TypeName(g.Type(vid)), Name: g.Name(vid)})
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := hin.VertexID(v)
		for t := 0; t < s.NumTypes(); t++ {
			nbrs, mults := g.Neighbors(vid, hin.TypeID(t))
			for i, u := range nbrs {
				if vid <= u {
					jg.Edges = append(jg.Edges, [3]int64{int64(vid), int64(u), int64(mults[i])})
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jg)
}

// ReadJSON reads a graph from JSON.
func ReadJSON(r io.Reader) (*hin.Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("hinio: %w", err)
	}
	schema, err := hin.NewSchema(jg.Types...)
	if err != nil {
		return nil, fmt.Errorf("hinio: %w", err)
	}
	for _, l := range jg.Links {
		src, ok1 := schema.TypeByName(l[0])
		dst, ok2 := schema.TypeByName(l[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("hinio: link %v references unknown type", l)
		}
		schema.AllowEdge(src, dst)
	}
	b := hin.NewBuilder(schema)
	ids := make([]hin.VertexID, len(jg.Vertices))
	for i, jv := range jg.Vertices {
		t, ok := schema.TypeByName(jv.Type)
		if !ok {
			return nil, fmt.Errorf("hinio: vertex %d has unknown type %q", i, jv.Type)
		}
		v, err := b.AddVertex(t, jv.Name)
		if err != nil {
			return nil, fmt.Errorf("hinio: vertex %d: %w", i, err)
		}
		if int(v) != i {
			return nil, fmt.Errorf("hinio: duplicate vertex name %q within type %s", jv.Name, jv.Type)
		}
		ids[i] = v
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[0] >= int64(len(ids)) || e[1] < 0 || e[1] >= int64(len(ids)) {
			return nil, fmt.Errorf("hinio: edge %v out of range", e)
		}
		if e[2] < 1 {
			return nil, fmt.Errorf("hinio: edge %v has non-positive multiplicity", e)
		}
		if err := b.AddEdgeMult(ids[e[0]], ids[e[1]], int32(e[2])); err != nil {
			return nil, fmt.Errorf("hinio: %w", err)
		}
	}
	return b.Build(), nil
}

// SaveJSON writes g to a file as JSON.
func SaveJSON(path string, g *hin.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a graph from a JSON file.
func LoadJSON(path string) (*hin.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// Load reads a graph from a file, dispatching on the extension:
// ".json" uses the JSON format, everything else the TSV format.
func Load(path string) (*hin.Graph, error) {
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		return LoadJSON(path)
	}
	return LoadTSV(path)
}

// Save writes a graph to a file, dispatching on the extension like Load.
func Save(path string, g *hin.Graph) error {
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		return SaveJSON(path, g)
	}
	return SaveTSV(path, g)
}
