// Package hinio serializes heterogeneous information networks. Two formats
// are provided: a line-oriented TSV format suitable for large networks and
// streaming, and a JSON format convenient for interchange and debugging.
// Both round-trip exactly (schema, vertex names, edge multiplicities).
package hinio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"netout/internal/hin"
)

// The TSV format is line oriented:
//
//	#netout-hin v1
//	T <typeName>                  // one per vertex type, in order
//	L <srcType> <dstType>         // allowed link (stored one direction per line)
//	V <typeID> <escapedName>      // one per vertex, in vertex-ID order
//	E <srcID> <dstID> <mult>      // undirected edge, written once (src <= dst)
//
// Names are escaped: backslash, tab and newline become \\, \t, \n.

const tsvHeader = "#netout-hin v1"

// WriteTSV writes g to w in the TSV format.
func WriteTSV(w io.Writer, g *hin.Graph) error {
	bw := bufio.NewWriter(w)
	s := g.Schema()
	fmt.Fprintln(bw, tsvHeader)
	for _, name := range s.TypeNames() {
		fmt.Fprintf(bw, "T\t%s\n", escape(name))
	}
	for src := 0; src < s.NumTypes(); src++ {
		for dst := 0; dst < s.NumTypes(); dst++ {
			if s.EdgeAllowed(hin.TypeID(src), hin.TypeID(dst)) {
				fmt.Fprintf(bw, "L\t%d\t%d\n", src, dst)
			}
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "V\t%d\t%s\n", g.Type(hin.VertexID(v)), escape(g.Name(hin.VertexID(v))))
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := hin.VertexID(v)
		for t := 0; t < s.NumTypes(); t++ {
			nbrs, mults := g.Neighbors(vid, hin.TypeID(t))
			for i, u := range nbrs {
				if vid <= u { // write each undirected edge once
					fmt.Fprintf(bw, "E\t%d\t%d\t%d\n", vid, u, mults[i])
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTSV reads a graph in the TSV format.
func ReadTSV(r io.Reader) (*hin.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	nextLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "#") && lineNo > 1 {
				continue
			}
			return line, true
		}
		return "", false
	}

	if !sc.Scan() {
		return nil, fmt.Errorf("hinio: empty input")
	}
	lineNo++
	if strings.TrimSpace(sc.Text()) != tsvHeader {
		return nil, fmt.Errorf("hinio: bad header %q (want %q)", sc.Text(), tsvHeader)
	}

	var typeNames []string
	type link struct{ src, dst int }
	var links []link
	type vertexRec struct {
		t    int
		name string
	}
	var vertices []vertexRec
	type edgeRec struct {
		src, dst int
		mult     int
	}
	var edges []edgeRec

	for {
		line, ok := nextLine()
		if !ok {
			break
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "T":
			if len(fields) != 2 {
				return nil, fmt.Errorf("hinio: line %d: T wants 1 field", lineNo)
			}
			typeNames = append(typeNames, unescape(fields[1]))
		case "L":
			src, dst, err := twoInts(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("hinio: line %d: %v", lineNo, err)
			}
			links = append(links, link{src, dst})
		case "V":
			if len(fields) != 3 {
				return nil, fmt.Errorf("hinio: line %d: V wants 2 fields", lineNo)
			}
			t, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("hinio: line %d: bad type id %q", lineNo, fields[1])
			}
			vertices = append(vertices, vertexRec{t, unescape(fields[2])})
		case "E":
			if len(fields) != 4 {
				return nil, fmt.Errorf("hinio: line %d: E wants 3 fields", lineNo)
			}
			src, dst, err := twoInts(fields[1:3])
			if err != nil {
				return nil, fmt.Errorf("hinio: line %d: %v", lineNo, err)
			}
			mult, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("hinio: line %d: bad multiplicity %q", lineNo, fields[3])
			}
			edges = append(edges, edgeRec{src, dst, mult})
		default:
			return nil, fmt.Errorf("hinio: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hinio: %w", err)
	}

	schema, err := hin.NewSchema(typeNames...)
	if err != nil {
		return nil, fmt.Errorf("hinio: %w", err)
	}
	for _, l := range links {
		if l.src < 0 || l.src >= len(typeNames) || l.dst < 0 || l.dst >= len(typeNames) {
			return nil, fmt.Errorf("hinio: link %d-%d out of range", l.src, l.dst)
		}
		schema.AllowEdge(hin.TypeID(l.src), hin.TypeID(l.dst))
	}
	b := hin.NewBuilder(schema)
	ids := make([]hin.VertexID, len(vertices))
	for i, vr := range vertices {
		if vr.t < 0 || vr.t >= len(typeNames) {
			return nil, fmt.Errorf("hinio: vertex %d has type %d out of range", i, vr.t)
		}
		v, err := b.AddVertex(hin.TypeID(vr.t), vr.name)
		if err != nil {
			return nil, fmt.Errorf("hinio: vertex %d: %w", i, err)
		}
		if int(v) != i {
			return nil, fmt.Errorf("hinio: duplicate vertex name %q within type %s", vr.name, typeNames[vr.t])
		}
		ids[i] = v
	}
	for _, e := range edges {
		if e.src < 0 || e.src >= len(ids) || e.dst < 0 || e.dst >= len(ids) {
			return nil, fmt.Errorf("hinio: edge %d-%d out of range", e.src, e.dst)
		}
		if e.mult < 1 {
			return nil, fmt.Errorf("hinio: edge %d-%d has multiplicity %d", e.src, e.dst, e.mult)
		}
		if err := b.AddEdgeMult(ids[e.src], ids[e.dst], int32(e.mult)); err != nil {
			return nil, fmt.Errorf("hinio: %w", err)
		}
	}
	return b.Build(), nil
}

// SaveTSV writes g to a file.
func SaveTSV(path string, g *hin.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTSV(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTSV reads a graph from a file.
func LoadTSV(path string) (*hin.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f)
}

func twoInts(fields []string) (int, int, error) {
	if len(fields) < 2 {
		return 0, 0, fmt.Errorf("want 2 integers")
	}
	a, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad integer %q", fields[0])
	}
	b, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad integer %q", fields[1])
	}
	return a, b, nil
}

var escaper = strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`)

func escape(s string) string { return escaper.Replace(s) }

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			sb.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		case '\\':
			sb.WriteByte('\\')
		default:
			sb.WriteByte('\\')
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}
