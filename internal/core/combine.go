package core

import (
	"fmt"

	"netout/internal/sparse"
)

// Combination selects how multiple feature meta-paths are combined into one
// outlier score. Section 5.1 leaves the choice open, naming exactly these
// two families: "The connectivity between vertices can be redefined, or
// independent outlier scores can be computed considering each feature
// meta-path independently and then averaged."
type Combination int

const (
	// CombineAverage scores each feature meta-path independently and takes
	// the weighted average of the per-path Ω values (the default).
	CombineAverage Combination = iota
	// CombineConcat redefines connectivity: the per-path neighbor vectors
	// are concatenated into disjoint coordinate spaces (each scaled by its
	// weight) and a single Ω is computed over the combined vectors. Path
	// weights therefore act on the connectivity counts themselves, and a
	// candidate's visibility pools across paths.
	CombineConcat
)

func (c Combination) String() string {
	switch c {
	case CombineAverage:
		return "average"
	case CombineConcat:
		return "concat"
	}
	return fmt.Sprintf("Combination(%d)", int(c))
}

// ParseCombination resolves "average" or "concat".
func ParseCombination(name string) (Combination, error) {
	switch name {
	case "average", "avg":
		return CombineAverage, nil
	case "concat", "concatenate":
		return CombineConcat, nil
	}
	return 0, fmt.Errorf("core: unknown combination %q (want average or concat)", name)
}

// WithCombination selects the multi-path combination mode (default
// CombineAverage). Queries with a single feature meta-path are unaffected.
func WithCombination(c Combination) Option { return func(e *Engine) { e.combine = c } }

// concatOne is concatVectors for a single candidate — vecs[m] is the
// candidate's vector under feature path m — used by the shard tier's fused
// loop, which holds one candidate's vectors at a time. The arithmetic
// (weight scaling, block offsets, append order) replicates concatVectors
// exactly so sharded CombineConcat scores stay bit-identical.
func concatOne(vecs []sparse.Vector, weights []float64, stride int32) sparse.Vector {
	var totalNNZ int
	for m := range vecs {
		totalNNZ += vecs[m].NNZ()
	}
	v := sparse.Vector{
		Idx: make([]int32, 0, totalNNZ),
		Val: make([]float64, 0, totalNNZ),
	}
	for m := range vecs {
		offset := int32(m) * stride
		src := vecs[m]
		w := weights[m]
		for k := range src.Idx {
			v.Idx = append(v.Idx, src.Idx[k]+offset)
			v.Val = append(v.Val, w*src.Val[k])
		}
	}
	return v
}

// concatVectors shifts each path's vector into its own coordinate block of
// width `stride` and concatenates, scaling values by the path weight.
// perPath[i][m] is candidate i's vector under feature path m.
func concatVectors(perPath [][]sparse.Vector, weights []float64, stride int32) []sparse.Vector {
	if len(perPath) == 0 {
		return nil
	}
	n := len(perPath[0])
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		var totalNNZ int
		for m := range perPath {
			totalNNZ += perPath[m][i].NNZ()
		}
		v := sparse.Vector{
			Idx: make([]int32, 0, totalNNZ),
			Val: make([]float64, 0, totalNNZ),
		}
		for m := range perPath {
			offset := int32(m) * stride
			src := perPath[m][i]
			w := weights[m]
			for k := range src.Idx {
				v.Idx = append(v.Idx, src.Idx[k]+offset)
				v.Val = append(v.Val, w*src.Val[k])
			}
		}
		out[i] = v
	}
	return out
}
