package core

import (
	"fmt"
	"sort"
	"strings"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/oql"
	"netout/internal/sparse"
)

// Explanations decompose a candidate's NetOut score coordinate by
// coordinate. Under feature meta-path P,
//
//	Ω(vi) = Φ(vi)·S / ‖Φ(vi)‖²  with  S = Σ_{vj∈Sr} Φ(vj),
//
// so each neighbor u the candidate reaches contributes
// Φ(vi)[u]·S[u]/‖Φ(vi)‖² to the score. Low total contribution — i.e. the
// candidate's connectivity mass sits on neighbors the reference set barely
// touches — is exactly what makes a vertex an outlier, and listing the
// coordinates makes the judgment auditable ("most of her papers are at
// SIGGRAPH, where the reference set has almost no presence").

// Contribution is one neighbor coordinate of an explanation.
type Contribution struct {
	// Neighbor is the vertex at this coordinate (a venue for the meta-path
	// author.paper.venue) and Name its display name.
	Neighbor hin.VertexID
	Name     string
	// CandidateCount is Φ(vi)[u]: the candidate's path count to Neighbor.
	CandidateCount float64
	// CandidateShare is the share of the candidate's squared connectivity
	// mass at this coordinate, Φ(vi)[u]²/‖Φ(vi)‖².
	CandidateShare float64
	// ReferenceCount is S[u]: the reference set's total path count to
	// Neighbor.
	ReferenceCount float64
	// Omega is this coordinate's additive contribution to the candidate's
	// NetOut score.
	Omega float64
}

// PathExplanation explains one feature meta-path's score for a candidate.
type PathExplanation struct {
	Path   string // dotted form
	Weight float64
	// Score is the candidate's Ω under this path alone (NaN if the
	// candidate has zero visibility under the path).
	Score float64
	// Visibility is ‖Φ(vi)‖², the candidate's potential connectivity.
	Visibility float64
	// Contributions lists the candidate's neighbor coordinates, largest
	// candidate share first, truncated to the requested limit.
	Contributions []Contribution
}

// Explanation is the full audit record for one candidate of a query.
type Explanation struct {
	Vertex hin.VertexID
	Name   string
	// Score is the candidate's combined score as Execute would report it.
	Score float64
	Paths []PathExplanation
	// Trace is the explanation's own phase breakdown (validate → plan →
	// materialize → score), printed by Format.
	Trace *obs.Trace
}

// Explain runs the query's set resolution and explains the given candidate
// vertex (by name, within the candidate element type). topN bounds the
// contributions listed per path (0 means all).
func (e *Engine) Explain(src string, candidateName string, topN int) (*Explanation, error) {
	tr := obs.StartTrace()
	q, err := oql.Parse(src)
	if err != nil {
		return nil, err
	}
	tr.EndPhase("parse", obs.SpanStats{})
	return e.explainQuery(q, candidateName, topN, tr)
}

// ExplainQuery is Explain for a parsed query.
func (e *Engine) ExplainQuery(q *oql.Query, candidateName string, topN int) (*Explanation, error) {
	return e.explainQuery(q, candidateName, topN, obs.StartTrace())
}

// explainQuery explains against a trace whose parse phase (if any) has
// already been recorded; the tracer travels as a parameter so concurrent
// Explain calls on one engine never share trace state.
func (e *Engine) explainQuery(q *oql.Query, candidateName string, topN int, tr *obs.Tracer) (*Explanation, error) {
	if e.measure != MeasureNetOut {
		return nil, fmt.Errorf("core: explanations are defined for the NetOut measure (engine uses %s)", e.measure)
	}
	elemType, err := oql.Validate(q, e.g.Schema())
	if err != nil {
		return nil, err
	}
	tr.EndPhase("validate", obs.SpanStats{})
	target, ok := e.g.VertexByName(elemType, candidateName)
	if !ok {
		return nil, fmt.Errorf("core: no %s named %q", e.g.Schema().TypeName(elemType), candidateName)
	}
	cands, err := e.EvalSet(q.From)
	if err != nil {
		return nil, err
	}
	if !containsVertex(cands, target) {
		return nil, fmt.Errorf("core: %q is not in the query's candidate set", candidateName)
	}
	refs := cands
	if q.ComparedTo != nil {
		if refs, err = e.EvalSet(q.ComparedTo); err != nil {
			return nil, err
		}
	}
	paths := make([]metapath.Path, len(q.Features))
	for m, f := range q.Features {
		if paths[m], err = metapath.FromNames(e.g.Schema(), f.Segments...); err != nil {
			return nil, err
		}
	}
	tr.EndPhase("plan", obs.SpanStats{})

	// Materialize the candidate's Φ and the reference sum under every path
	// up front, so the trace's materialize phase covers all network work.
	matBefore := e.mat.Stats()
	cacheBefore, _ := CacheStatsOf(e.mat)
	phis := make([]sparse.Vector, len(q.Features))
	refSums := make([]sparse.Vector, len(q.Features))
	for m := range q.Features {
		phi, err := e.mat.NeighborVector(paths[m], target)
		if err != nil {
			return nil, err
		}
		phis[m] = phi
		refSum := sparse.NewAccumulator(64)
		for _, r := range refs {
			rv, err := e.mat.NeighborVector(paths[m], r)
			if err != nil {
				return nil, err
			}
			refSum.AddVector(rv, 1)
		}
		refSums[m] = refSum.Take()
	}
	matDelta := e.mat.Stats().Sub(matBefore)
	cacheAfter, _ := CacheStatsOf(e.mat)
	tr.EndPhase("materialize", obs.SpanStats{
		TraversedVectors: matDelta.TraversedVectors,
		IndexedVectors:   matDelta.IndexedVectors,
		CacheHits:        cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:      cacheAfter.Misses - cacheBefore.Misses,
	})

	out := &Explanation{Vertex: target, Name: candidateName}
	// Matches Execute's CombineAverage semantics: the combined score is
	// renormalized by the summed weight of the paths that characterize the
	// candidate, not by the total feature weight.
	seenWeight := 0.0
	for m, f := range q.Features {
		phi, s := phis[m], refSums[m]
		pe := PathExplanation{
			Path:       strings.Join(f.Segments, "."),
			Weight:     f.Weight,
			Visibility: phi.Norm2Sq(),
		}
		if pe.Visibility > 0 {
			for k := range phi.Idx {
				u := hin.VertexID(phi.Idx[k])
				c := Contribution{
					Neighbor:       u,
					Name:           e.g.Name(u),
					CandidateCount: phi.Val[k],
					CandidateShare: phi.Val[k] * phi.Val[k] / pe.Visibility,
					ReferenceCount: s.At(phi.Idx[k]),
				}
				c.Omega = c.CandidateCount * c.ReferenceCount / pe.Visibility
				pe.Score += c.Omega
				pe.Contributions = append(pe.Contributions, c)
			}
			sort.Slice(pe.Contributions, func(a, b int) bool {
				ca, cb := pe.Contributions[a], pe.Contributions[b]
				if ca.CandidateShare != cb.CandidateShare {
					return ca.CandidateShare > cb.CandidateShare
				}
				return ca.Neighbor < cb.Neighbor
			})
			if topN > 0 && len(pe.Contributions) > topN {
				pe.Contributions = pe.Contributions[:topN]
			}
			out.Score += f.Weight * pe.Score
			seenWeight += f.Weight
		}
		out.Paths = append(out.Paths, pe)
	}
	if seenWeight > 0 {
		out.Score /= seenWeight
	}
	tr.EndPhase("score", obs.SpanStats{})
	out.Trace = tr.Finish()
	return out, nil
}

// Format renders the explanation for terminal display.
func (x *Explanation) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — combined Ω = %.4f (smaller = more outlying)\n", x.Name, x.Score)
	for _, p := range x.Paths {
		fmt.Fprintf(&sb, "  path %s (weight %g): Ω = %.4f, visibility = %.0f\n",
			p.Path, p.Weight, p.Score, p.Visibility)
		if len(p.Contributions) == 0 {
			sb.WriteString("    (no connectivity under this path — candidate skipped)\n")
			continue
		}
		fmt.Fprintf(&sb, "    %-28s %12s %10s %12s %10s\n",
			"neighbor", "cand count", "share", "ref count", "Ω part")
		for _, c := range p.Contributions {
			fmt.Fprintf(&sb, "    %-28s %12.0f %9.1f%% %12.0f %10.4f\n",
				c.Name, c.CandidateCount, 100*c.CandidateShare, c.ReferenceCount, c.Omega)
		}
	}
	if x.Trace != nil {
		for _, line := range strings.Split(strings.TrimRight(x.Trace.Format(), "\n"), "\n") {
			fmt.Fprintf(&sb, "  %s\n", line)
		}
	}
	return sb.String()
}

func containsVertex(sorted []hin.VertexID, v hin.VertexID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}
