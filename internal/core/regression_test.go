package core

import (
	"context"
	"errors"
	"testing"

	"netout/internal/hin"
	"netout/internal/oql"
)

// Regression tests for two engine bugs. Each test fails on the pre-fix
// engine and pins the corrected behavior.

// partialVisibilityGraph builds a bibliographic network where author Rae is
// visible under author.paper.venue but has NO term links at all, so
// author.paper.term cannot characterize her. Mia and Noa are visible under
// both paths.
func partialVisibilityGraph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	b := hin.NewBuilder(s)
	mia := b.MustAddVertex(a, "Mia")
	noa := b.MustAddVertex(a, "Noa")
	rae := b.MustAddVertex(a, "Rae")
	icde := b.MustAddVertex(v, "ICDE")
	kdd := b.MustAddVertex(v, "KDD")
	mining := b.MustAddVertex(tm, "mining")
	p1 := b.MustAddVertex(p, "p1")
	p2 := b.MustAddVertex(p, "p2")
	p3 := b.MustAddVertex(p, "p3")
	b.MustAddEdge(p1, mia)
	b.MustAddEdge(p1, icde)
	b.MustAddEdge(p1, mining)
	b.MustAddEdge(p2, noa)
	b.MustAddEdge(p2, icde)
	b.MustAddEdge(p2, mining)
	// Rae's paper has a venue but no term: term-path visibility is zero.
	b.MustAddEdge(p3, rae)
	b.MustAddEdge(p3, kdd)
	return b.Build()
}

// Under CombineAverage, a candidate's combined score is the weighted
// average over the meta-paths that actually characterize it. A candidate
// visible under only one path must receive exactly its single-path score —
// not that score deflated by the weight of paths it is invisible under.
// (Pre-fix the engine divided by the total feature weight, so Rae's score
// below came out at 1/4 of the correct value.)
func TestCombineAverageRenormalizesPartialVisibility(t *testing.T) {
	g := partialVisibilityGraph(t)
	eng := NewEngine(g)

	combined, err := eng.Execute(`FIND OUTLIERS FROM author
JUDGED BY author.paper.venue : 1.0, author.paper.term : 3.0;`)
	if err != nil {
		t.Fatal(err)
	}
	venueOnly, err := eng.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	score := func(res *Result, name string) float64 {
		t.Helper()
		for _, e := range res.Entries {
			if e.Name == name {
				return e.Score
			}
		}
		t.Fatalf("%s missing from result %+v", name, res.Entries)
		return 0
	}
	got := score(combined, "Rae")
	want := score(venueOnly, "Rae")
	if got != want {
		t.Fatalf("Rae combined score = %g, want her venue-only score %g "+
			"(renormalize by the weight of characterizing paths, not total weight)", got, want)
	}
	// Fully-visible candidates are true weighted averages — the fix must
	// not change them. Mia and Noa are symmetric under both paths, so both
	// paths rank them identically; spot-check one against the hand formula.
	miaVenue := score(venueOnly, "Mia")
	termOnly, err := eng.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.term;`)
	if err != nil {
		t.Fatal(err)
	}
	miaTerm := score(termOnly, "Mia")
	wantMia := (1.0*miaVenue + 3.0*miaTerm) / 4.0
	if gotMia := score(combined, "Mia"); gotMia != wantMia {
		t.Fatalf("Mia combined score = %g, want weighted average %g", gotMia, wantMia)
	}
}

// ExecuteQueryContext must clear the engine's context on every exit path.
// The protected entry points (Explain, SuggestFeatures, ...) reset it
// themselves pre-fix; a direct EvalSet on a WHERE-bearing expression did
// not, and inherited the dead context of whichever query ran last.
func TestEvalSetAfterCancelledExecute(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := `FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) >= 0 JUDGED BY author.paper.venue;`
	if _, err := eng.ExecuteContext(ctx, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup: want Canceled, got %v", err)
	}
	q, err := oql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oql.Validate(q, g.Schema()); err != nil {
		t.Fatal(err)
	}
	set, err := eng.EvalSet(q.From)
	if err != nil {
		t.Fatalf("EvalSet saw the previous query's cancelled context: %v", err)
	}
	if len(set) == 0 {
		t.Fatal("EvalSet returned no vertices")
	}
	// An error exit must clear the context too, not only the happy path:
	// cancel only after the failed call, so a leaked handle is dead by the
	// time EvalSet would consult it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	if _, err := eng.ExecuteContext(ctx2, `FIND OUTLIERS FROM author{"Nobody"} JUDGED BY author.paper.venue;`); err == nil {
		t.Fatal("setup: missing-vertex query should fail")
	}
	cancel2()
	if _, err := eng.EvalSet(q.From); err != nil {
		t.Fatalf("EvalSet saw a context after an error exit: %v", err)
	}
}
