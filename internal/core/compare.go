package core

import (
	"fmt"
	"math"

	"netout/internal/hin"
)

// Result comparison utilities quantify the paper's Table 5 observation
// that different judgment criteria produce substantially different
// outliers ("with only one overlapping author") — overlap and rank
// correlation make that claim measurable instead of anecdotal.

// OverlapAtK returns the number of vertices shared by the top-k prefixes of
// two results, and the Jaccard similarity of those prefixes. k is clamped
// to the shorter entry list.
func OverlapAtK(a, b *Result, k int) (shared int, jaccard float64) {
	ka, kb := k, k
	if ka > len(a.Entries) {
		ka = len(a.Entries)
	}
	if kb > len(b.Entries) {
		kb = len(b.Entries)
	}
	inA := make(map[hin.VertexID]bool, ka)
	for _, e := range a.Entries[:ka] {
		inA[e.Vertex] = true
	}
	for _, e := range b.Entries[:kb] {
		if inA[e.Vertex] {
			shared++
		}
	}
	union := ka + kb - shared
	if union == 0 {
		return 0, 1
	}
	return shared, float64(shared) / float64(union)
}

// SpearmanRho computes Spearman's rank correlation between two results over
// the vertices they both rank (candidates skipped by either side are
// excluded). It returns an error when fewer than two vertices are shared.
// ρ=1 means identical orderings, ρ=-1 reversed, ρ≈0 unrelated — the Table 5
// "different viewpoints" effect shows up as low ρ between the venue-judged
// and coauthor-judged rankings.
func SpearmanRho(a, b *Result) (float64, error) {
	rankA := make(map[hin.VertexID]int, len(a.Entries))
	for i, e := range a.Entries {
		rankA[e.Vertex] = i
	}
	var ra, rb []float64
	for i, e := range b.Entries {
		if j, ok := rankA[e.Vertex]; ok {
			ra = append(ra, float64(j))
			rb = append(rb, float64(i))
		}
	}
	n := len(ra)
	if n < 2 {
		return 0, fmt.Errorf("core: results share %d ranked vertices; need at least 2", n)
	}
	// Pearson correlation of the rank sequences (handles the non-contiguous
	// ranks left by the intersection).
	meanA, meanB := mean(ra), mean(rb)
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-meanA, rb[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0, fmt.Errorf("core: degenerate rankings (no rank variance)")
	}
	return cov / math.Sqrt(varA*varB), nil
}

// KendallTau computes Kendall's τ-a over the vertices both results rank.
func KendallTau(a, b *Result) (float64, error) {
	rankA := make(map[hin.VertexID]int, len(a.Entries))
	for i, e := range a.Entries {
		rankA[e.Vertex] = i
	}
	var ra, rb []int
	for i, e := range b.Entries {
		if j, ok := rankA[e.Vertex]; ok {
			ra = append(ra, j)
			rb = append(rb, i)
		}
	}
	n := len(ra)
	if n < 2 {
		return 0, fmt.Errorf("core: results share %d ranked vertices; need at least 2", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := sign(ra[i] - ra[j])
			y := sign(rb[i] - rb[j])
			switch {
			case x*y > 0:
				concordant++
			case x*y < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
