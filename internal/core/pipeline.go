package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/oql"
	"netout/internal/sparse"
)

// Chunked intra-query pipeline. A query's candidates are independent of each
// other once the reference side is fixed — Ω(vi) reads Φ(vi) and the
// reference aggregate only — so the candidate set splits into fixed-size
// chunks and a worker pool runs materialize→score FUSED per chunk: each
// worker materializes a chunk's Φ vectors on its own materializer view,
// scores them against the shared refScorer, feeds its bounded top-n
// selector, and drops the vectors before touching the next chunk. Peak
// memory is O(workers·chunk + |Sr|) vectors instead of O(|Sc|·paths), and a
// query uses every core instead of one.
//
// Determinism contract: for any worker count the pipeline produces the SAME
// Result as the sequential path — Entries bit-identical, Skipped identical,
// every vector/cache counter identical. The arguments, relied on by the
// property tests:
//
//   - Scores: each candidate's arithmetic touches only its own Φ and the
//     reference precompute. The refScorer is built once, sequentially, from
//     the reference-ordered vector slices, so the float association of the
//     reference sums matches the sequential path exactly; per-candidate
//     score = same ops in the same order ⇒ same bits.
//   - Ranking: (score, vertex) is a strict total order over candidates, so
//     the top-k set and its sorted order are unique; per-worker bounded
//     selection + merge always reconstructs them (a global top-k entry is
//     necessarily in its worker's top-k).
//   - Counters: the reference phase is a barrier, so under the shared cache
//     every (path, vertex) load is classified hit/miss identically for any
//     schedule; traversal/indexed counts are per-load and order-free.
const parallelChunk = 128

// queryPlan carries a resolved query between the planner and an executor.
type queryPlan struct {
	q       *oql.Query
	cands   []hin.VertexID
	refs    []hin.VertexID
	paths   []metapath.Path
	weights []float64
	// ifq is the query's live in-flight record for phase and chunk-progress
	// updates (nil when no inspector is attached; all mutators are nil-safe).
	ifq *obs.InflightQuery
}

// pipeWorker is one pipeline worker's private state.
type pipeWorker struct {
	mat  Materializer // view of the engine's materializer (NewView)
	base MatStats     // stats snapshot at construction, for delta aggregation
	sel  *topSelector
	// vecs[m] is the reusable chunk buffer of Φ vectors under path m.
	vecs [][]sparse.Vector
	// sum/sumW/ok are CombineAverage chunk scratch (weighted score
	// accumulation, mirroring the sequential combined/seenWeight/seen).
	sum, sumW []float64
	ok        []bool
	scoreNs   int64
}

// pipelineWorkers decides whether the parallel pipeline applies and builds
// its workers. It declines — falling back to the sequential path — when the
// engine's parallelism is 1, when the candidate set is too small to fill
// more than one chunk, or when the materializer has no concurrent view.
func (e *Engine) pipelineWorkers(nCands int) ([]*pipeWorker, bool) {
	n := e.QueryParallelism()
	if n <= 1 || nCands <= parallelChunk {
		return nil, false
	}
	if chunks := (nCands + parallelChunk - 1) / parallelChunk; n > chunks {
		n = chunks
	}
	ws := make([]*pipeWorker, 0, n)
	for i := 0; i < n; i++ {
		w, _ := e.workerPool.Get().(*pipeWorker)
		if w == nil {
			view, err := NewView(e.mat)
			if err != nil {
				e.releaseWorkers(ws)
				return nil, false
			}
			w = &pipeWorker{mat: view}
		}
		// Re-snapshot at acquisition: a recycled worker's view has
		// accumulated stats from earlier queries.
		w.base = w.mat.Stats()
		w.scoreNs = 0
		ws = append(ws, w)
	}
	return ws, true
}

// releaseWorkers hands workers back to the engine's pool once a query is
// done with them (runChunks joins all goroutines before returning, so no
// worker is in flight here). Selectors are dropped — they reference result
// entries — while views and chunk scratch are kept for the next query.
func (e *Engine) releaseWorkers(ws []*pipeWorker) {
	for _, w := range ws {
		w.sel = nil
		e.workerPool.Put(w)
	}
}

// runChunks fans [0, n) out to the workers in parallelChunk-sized chunks
// claimed off an atomic cursor. fn must write only worker-private state and
// shared slots inside its own [lo, hi) — chunk ranges are disjoint, so such
// writes never race. On error the other workers stop at their next chunk
// boundary; the first failing worker's error (by worker index) is returned.
// A panicking fn is recovered into a *PanicError chunk failure: the panic
// never crosses the goroutine boundary (which would kill the process — a
// worker goroutine's panic is unrecoverable by the query's caller), and
// runChunks still joins every worker before returning.
func runChunks(ws []*pipeWorker, n int, fn func(w *pipeWorker, lo, hi int) error) error {
	nChunks := (n + parallelChunk - 1) / parallelChunk
	var cursor atomic.Int64
	var failed atomic.Bool
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *pipeWorker) {
			defer wg.Done()
			for !failed.Load() {
				c := int(cursor.Add(1)) - 1
				if c >= nChunks {
					return
				}
				hi := min((c+1)*parallelChunk, n)
				err := func() (err error) {
					defer recoverAsError(&err)
					return fn(w, c*parallelChunk, hi)
				}()
				if err != nil {
					errs[wi] = err
					failed.Store(true)
					return
				}
			}
		}(wi, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// executeParallel runs the materialize/score/rank phases of a planned query
// on the chunked pipeline, filling res in place. The trace receives the
// same phase sequence as the sequential path (materialize → score → rank);
// scoring is fused into the materialize span's wall time, so the score span
// is recorded (near-)empty with the counters aggregated across workers.
func (e *Engine) executeParallel(ctx context.Context, plan *queryPlan, res *Result, tr *obs.Tracer, ws []*pipeWorker) error {
	cands, refs, paths, weights := plan.cands, plan.refs, plan.paths, plan.weights
	matBefore := e.mat.Stats()
	cacheBefore, _ := CacheStatsOf(e.mat)
	// Views of the cached materializer share its counters, so per-view
	// deltas would count every load len(ws) times; take one whole-phase
	// delta on the shared state instead. Baseline/PM/SPM views carry
	// private stats: sum the per-worker deltas.
	_, statsShared := e.mat.(*cached)

	// Reference phase (a barrier: scorers need all of Sr). Chunk-parallel
	// materialization into slot-addressed, reference-ordered slices.
	refPerPath := make([][]sparse.Vector, len(paths))
	for m := range refPerPath {
		refPerPath[m] = make([]sparse.Vector, len(refs))
	}
	// The inspector's chunk progress resets per chunked phase: a reader sees
	// "materialize:refs 3/7" then "materialize 12/40". Updates touch only the
	// record's atomics — never the result — so determinism is unaffected.
	plan.ifq.SetPhase("materialize:refs")
	plan.ifq.StartChunks((len(refs)+parallelChunk-1)/parallelChunk, len(ws))
	err := runChunks(ws, len(refs), func(w *pipeWorker, lo, hi int) error {
		for m := range paths {
			for j := lo; j < hi; j++ {
				if err := ctxErr(ctx); err != nil {
					return err
				}
				vec, err := w.mat.NeighborVector(paths[m], refs[j])
				if err != nil {
					return err
				}
				refPerPath[m][j] = vec
			}
		}
		plan.ifq.ChunkDone()
		return nil
	})
	if err != nil {
		return err
	}

	// Reference-side precompute, built once and shared read-only by every
	// worker. Sequential on purpose: summing per-worker partial sums would
	// change the floating-point association and break bit-identity with the
	// sequential path.
	stride := int32(e.g.NumVertices())
	var concatRS *refScorer // CombineConcat: one scorer over combined vectors
	var pathRS []*refScorer // CombineAverage: one scorer per feature path
	if e.combine == CombineConcat {
		concatRS = newRefScorer(e.measure, concatVectors(refPerPath, weights, stride))
	} else {
		pathRS = make([]*refScorer, len(paths))
		for m := range paths {
			pathRS[m] = newRefScorer(e.measure, refPerPath[m])
		}
	}
	refPerPath = nil // scorers hold what they need; separable measures free Sr now

	// Candidate phase: fused materialize→score per chunk. seen is written at
	// disjoint per-chunk slots; everything else a worker touches is its own.
	seen := make([]bool, len(cands))
	for _, w := range ws {
		w.sel = newTopSelector(plan.q.TopK)
		if len(w.vecs) != len(paths) {
			w.vecs = make([][]sparse.Vector, len(paths))
		}
		if concatRS == nil && w.sum == nil {
			w.sum = make([]float64, parallelChunk)
			w.sumW = make([]float64, parallelChunk)
			w.ok = make([]bool, parallelChunk)
		}
	}
	// chunkDone marks fully materialized-and-scored chunks. Each slot is
	// written only by the worker owning that chunk and read after runChunks
	// joins, so there is no race. It exists for graceful degradation: when a
	// deadline expires mid-phase, the done chunks carry exact scores (NetOut
	// is separable per candidate) and form the partial result.
	nChunks := (len(cands) + parallelChunk - 1) / parallelChunk
	chunkDone := make([]bool, nChunks)
	plan.ifq.SetPhase("materialize")
	plan.ifq.StartChunks(nChunks, len(ws))
	err = runChunks(ws, len(cands), func(w *pipeWorker, lo, hi int) error {
		for m := range paths {
			buf := w.vecs[m][:0]
			for _, v := range cands[lo:hi] {
				if err := ctxErr(ctx); err != nil {
					return err
				}
				vec, err := w.mat.NeighborVector(paths[m], v)
				if err != nil {
					return err
				}
				buf = append(buf, vec)
			}
			w.vecs[m] = buf
		}
		start := time.Now()
		w.scoreChunk(e, plan, concatRS, pathRS, stride, seen, lo, hi)
		w.scoreNs += time.Since(start).Nanoseconds()
		chunkDone[lo/parallelChunk] = true
		plan.ifq.ChunkDone()
		return nil
	})
	if err != nil {
		if e.measure != MeasureNetOut || !degradable(err) {
			return err
		}
		// Deadline-bounded degradation: keep the chunks that finished. A
		// failed chunk never reached scoreChunk, so the selectors and seen
		// hold exactly the done chunks' candidates.
		res.Partial = true
	}

	var d MatStats
	if statsShared {
		d = e.mat.Stats().Sub(matBefore)
	} else {
		for _, w := range ws {
			d = d.Add(w.mat.Stats().Sub(w.base))
		}
	}
	res.Timing.NotIndexed += d.TraversalTime
	res.Timing.Indexed += d.IndexedTime
	res.Timing.TraversedVectors += d.TraversedVectors
	res.Timing.IndexedVectors += d.IndexedVectors
	cacheAfter, _ := CacheStatsOf(e.mat)
	tr.EndPhase("materialize", obs.SpanStats{
		TraversedVectors: d.TraversedVectors,
		IndexedVectors:   d.IndexedVectors,
		CacheHits:        cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:      cacheAfter.Misses - cacheBefore.Misses,
	})
	// Scoring ran fused inside the materialize span; keep the phase sequence
	// intact with an empty score span.
	tr.EndPhase("score", obs.SpanStats{})
	plan.ifq.SetPhase("rank")

	rankStart := time.Now()
	sel := ws[0].sel
	for _, w := range ws[1:] {
		sel.merge(w.sel)
	}
	for i, v := range cands {
		// Skipped means "characterized by no feature path", a judgment only
		// possible for candidates in chunks that actually ran; on a partial
		// result the unreached chunks' candidates are simply absent.
		if chunkDone[i/parallelChunk] && !seen[i] {
			res.Skipped = append(res.Skipped, v)
		}
	}
	res.Entries = sel.ranked()
	tr.EndPhase("rank", obs.SpanStats{})
	var scoreNs int64
	for _, w := range ws {
		scoreNs += w.scoreNs
	}
	res.Timing.Scoring += time.Duration(scoreNs) + time.Since(rankStart)
	return nil
}

// scoreChunk scores the freshly-materialized chunk [lo, hi) in w.vecs,
// marks characterized candidates in seen and pushes their entries into the
// worker's selector. The combination arithmetic replicates the sequential
// path operation for operation (see executeQuery) so scores are
// bit-identical.
func (w *pipeWorker) scoreChunk(e *Engine, plan *queryPlan, concatRS *refScorer, pathRS []*refScorer, stride int32, seen []bool, lo, hi int) {
	cands := plan.cands
	if concatRS != nil {
		for i, phi := range concatVectors(w.vecs, plan.weights, stride) {
			if s := concatRS.score(phi); !math.IsNaN(s) {
				seen[lo+i] = true
				w.sel.push(Entry{Vertex: cands[lo+i], Name: e.g.Name(cands[lo+i]), Score: s})
			}
		}
		return
	}
	n := hi - lo
	for i := 0; i < n; i++ {
		w.sum[i], w.sumW[i], w.ok[i] = 0, 0, false
	}
	for m := range pathRS {
		rs := pathRS[m]
		wt := plan.weights[m]
		for i, phi := range w.vecs[m] {
			s := rs.score(phi)
			if math.IsNaN(s) {
				continue
			}
			w.sum[i] += wt * s
			w.sumW[i] += wt
			w.ok[i] = true
		}
	}
	for i := 0; i < n; i++ {
		if !w.ok[i] {
			continue
		}
		sc := w.sum[i]
		if w.sumW[i] > 0 {
			sc = w.sum[i] / w.sumW[i]
		}
		seen[lo+i] = true
		w.sel.push(Entry{Vertex: cands[lo+i], Name: e.g.Name(cands[lo+i]), Score: sc})
	}
}
