package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"netout/internal/hin"
	"netout/internal/oql"
)

// bigBibGraph builds a random bibliographic network large enough to cross
// the pipeline's chunk gate (several hundred authors), with the tail of the
// author population left paperless — zero visibility under every
// author.paper.* feature path, so NaN scores and the Skipped list are
// exercised at scale.
func bigBibGraph(r *rand.Rand) *hin.Graph {
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	b := hin.NewBuilder(s)
	nA, nV, nT := 280+r.Intn(60), 5+r.Intn(5), 8+r.Intn(8)
	var authors, venues, terms []hin.VertexID
	for i := 0; i < nA; i++ {
		authors = append(authors, b.MustAddVertex(a, fmt.Sprintf("A%d", i)))
	}
	for i := 0; i < nV; i++ {
		venues = append(venues, b.MustAddVertex(v, fmt.Sprintf("V%d", i)))
	}
	for i := 0; i < nT; i++ {
		terms = append(terms, b.MustAddVertex(tm, fmt.Sprintf("T%d", i)))
	}
	linkable := authors[:nA-nA/12] // the rest stay paperless
	for i := 0; i < 2*nA; i++ {
		pp := b.MustAddVertex(p, fmt.Sprintf("P%d", i))
		for j := 0; j <= r.Intn(2); j++ {
			b.MustAddEdge(pp, linkable[r.Intn(len(linkable))])
		}
		b.MustAddEdge(pp, venues[r.Intn(nV)])
		for j := 0; j < r.Intn(3); j++ {
			b.MustAddEdge(pp, terms[r.Intn(nT)])
		}
	}
	return b.Build()
}

// compareResults asserts the full determinism contract between two runs of
// the same query: ranked entries bit-identical, skip list identical, and
// every count-valued Timing/trace field identical. (Durations are
// excluded: wall time legitimately varies run to run.)
func compareResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("%s: %d entries, want %d", label, len(got.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		if w.Vertex != g.Vertex || w.Name != g.Name ||
			math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, g, w)
		}
	}
	if !reflect.DeepEqual(want.Skipped, got.Skipped) {
		t.Fatalf("%s: skipped %v, want %v", label, got.Skipped, want.Skipped)
	}
	if got.CandidateCount != want.CandidateCount || got.ReferenceCount != want.ReferenceCount {
		t.Fatalf("%s: set sizes %d/%d, want %d/%d", label,
			got.CandidateCount, got.ReferenceCount, want.CandidateCount, want.ReferenceCount)
	}
	if got.Timing.TraversedVectors != want.Timing.TraversedVectors ||
		got.Timing.IndexedVectors != want.Timing.IndexedVectors {
		t.Fatalf("%s: timing counters %d/%d, want %d/%d", label,
			got.Timing.TraversedVectors, got.Timing.IndexedVectors,
			want.Timing.TraversedVectors, want.Timing.IndexedVectors)
	}
	if len(got.Trace.Spans) != len(want.Trace.Spans) {
		t.Fatalf("%s: %d trace spans, want %d", label, len(got.Trace.Spans), len(want.Trace.Spans))
	}
	for i, ws := range want.Trace.Spans {
		gs := got.Trace.Spans[i]
		if gs.Phase != ws.Phase {
			t.Fatalf("%s: span %d phase %q, want %q", label, i, gs.Phase, ws.Phase)
		}
		if gs.Stats != ws.Stats {
			t.Fatalf("%s: span %q stats %+v, want %+v", label, ws.Phase, gs.Stats, ws.Stats)
		}
	}
}

// TestPipelineDeterminism is the pipeline's central property test: for
// every measure, combination mode and materialization strategy, the query
// result — ranking bits, skip list, vector/cache counters, phase sequence —
// is identical for workers ∈ {1, 2, 7, GOMAXPROCS} on randomized graphs
// that include zero-visibility candidates. workers=1 takes the sequential
// path, so this simultaneously pins the pipeline to the sequential engine's
// exact output.
func TestPipelineDeterminism(t *testing.T) {
	counts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for seed := int64(1); seed <= 2; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := bigBibGraph(r)
		pm := NewPM(g)
		queries := []struct {
			name, src string
		}{
			{"single", `FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 10;`},
			{"multi", `FIND OUTLIERS FROM author JUDGED BY author.paper.venue, author.paper.term : 2.5 TOP 15;`},
			// COMPARED TO: refs ≠ cands; no TOP: the unbounded selector.
			{"untop", `FIND OUTLIERS FROM author COMPARED TO venue{"V0"}.paper.author JUDGED BY author.paper.author;`},
		}
		mats := []struct {
			name string
			mk   func() Materializer
		}{
			{"baseline", func() Materializer { return NewBaseline(g) }},
			{"pm", func() Materializer {
				view, err := NewView(pm)
				if err != nil {
					t.Fatal(err)
				}
				return view
			}},
			// Fresh (cold) cache per run: the hit/miss split is deterministic
			// for a fixed starting state, which is what the engine's stats
			// aggregation promises.
			{"cached", func() Materializer {
				c, err := NewCached(g, 64<<20)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}},
		}
		for _, m := range []Measure{MeasureNetOut, MeasurePathSim, MeasureCosSim} {
			for _, comb := range []Combination{CombineAverage, CombineConcat} {
				for _, q := range queries {
					for _, mat := range mats {
						var ref *Result
						for _, n := range counts {
							eng := NewEngine(g,
								WithMeasure(m),
								WithCombination(comb),
								WithMaterializer(mat.mk()),
								WithQueryParallelism(n))
							res, err := eng.Execute(q.src)
							if err != nil {
								t.Fatalf("seed %d %s/%s/%s/%s workers=%d: %v",
									seed, m, comb, q.name, mat.name, n, err)
							}
							if n == 1 {
								if len(res.Skipped) == 0 && q.name != "untop" {
									t.Fatalf("seed %d %s: no skipped candidates — graph does not exercise zero visibility", seed, q.name)
								}
								ref = res
								continue
							}
							label := fmt.Sprintf("seed %d %s/%s/%s/%s workers=%d",
								seed, m, comb, q.name, mat.name, n)
							compareResults(t, label, ref, res)
						}
					}
				}
			}
		}
	}
}

// TestEngineReentrantRace runs concurrent context-carrying executions and
// context-less explains against ONE shared engine. Before contexts and
// tracers were threaded through the call chain as parameters, both were
// stashed in Engine fields and this test failed under -race (and could
// leak one query's cancelled context into another's execution).
func TestEngineReentrantRace(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(g, WithMaterializer(mat))
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue TOP 5;`
	q, err := oql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				if i%2 == 0 {
					ctx, cancel := context.WithCancel(context.Background())
					res, err := eng.ExecuteQueryContext(ctx, q)
					cancel()
					if err != nil {
						t.Errorf("ExecuteQueryContext: %v", err)
					} else if len(res.Entries) != 3 {
						t.Errorf("entries = %+v", res.Entries)
					}
				} else {
					x, err := eng.Explain(src, "Zoe", 5)
					if err != nil {
						t.Errorf("Explain: %v", err)
					} else if x.Name != "Zoe" {
						t.Errorf("explained %q", x.Name)
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// countdownCtx reports Canceled after a fixed number of Err() polls,
// making mid-pipeline cancellation deterministic: the engine checks the
// context at per-vertex granularity, so the budget runs out while workers
// are materializing.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestPipelineCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := bigBibGraph(r)
	eng := NewEngine(g, WithQueryParallelism(4))
	q, err := oql.Parse(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 10;`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countdownCtx{Context: context.Background()}
	ctx.remaining.Store(60) // enough to pass planning, not materialization
	res, err := eng.ExecuteQueryContext(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
	// The engine must remain fully usable afterwards (no poisoned state).
	if _, err := eng.ExecuteQuery(q); err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
}

// TestTopSelectorMatchesSort pins the bounded selector to the reference
// implementation it replaced: sort everything, truncate to k.
func TestTopSelectorMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(200)
		entries := make([]Entry, n)
		perm := r.Perm(n)
		for i := range entries {
			// Scores drawn from a tiny set force heavy ties; the vertex
			// tie-break must resolve them identically everywhere.
			entries[i] = Entry{
				Vertex: hin.VertexID(perm[i]),
				Name:   fmt.Sprintf("v%d", perm[i]),
				Score:  float64(r.Intn(8)) / 4,
			}
		}
		equal := func(got, want []Entry) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		for _, k := range []int{0, 1, 3, 10, n, n + 5} {
			want := append([]Entry(nil), entries...)
			sort.Slice(want, func(i, j int) bool { return entryBefore(want[i], want[j]) })
			if k > 0 && len(want) > k {
				want = want[:k]
			}

			sel := newTopSelector(k)
			for _, e := range entries {
				sel.push(e)
			}
			if got := sel.ranked(); !equal(got, want) {
				t.Fatalf("trial %d k=%d: ranked = %v, want %v", trial, k, got, want)
			}

			// Split across three selectors and merge — the worker shape.
			parts := []*topSelector{newTopSelector(k), newTopSelector(k), newTopSelector(k)}
			for i, e := range entries {
				parts[i%3].push(e)
			}
			parts[0].merge(parts[1])
			parts[0].merge(parts[2])
			if got := parts[0].ranked(); !equal(got, want) {
				t.Fatalf("trial %d k=%d: merged = %v, want %v", trial, k, got, want)
			}
		}
	}
}
