package core

import (
	"math"
	"testing"

	"netout/internal/hin"
)

func resultOf(vertices ...hin.VertexID) *Result {
	r := &Result{}
	for i, v := range vertices {
		r.Entries = append(r.Entries, Entry{Vertex: v, Score: float64(i)})
	}
	return r
}

func TestOverlapAtK(t *testing.T) {
	a := resultOf(1, 2, 3, 4, 5)
	b := resultOf(3, 2, 9, 8, 7)
	shared, jac := OverlapAtK(a, b, 3)
	if shared != 2 {
		t.Fatalf("shared = %d", shared)
	}
	if math.Abs(jac-2.0/4.0) > 1e-12 {
		t.Fatalf("jaccard = %g", jac)
	}
	// k beyond the entry lists clamps.
	shared, _ = OverlapAtK(a, b, 100)
	if shared != 2 {
		t.Fatalf("clamped shared = %d", shared)
	}
	// Empty results: Jaccard of empty sets is 1 by convention.
	if _, jac := OverlapAtK(&Result{}, &Result{}, 5); jac != 1 {
		t.Fatalf("empty jaccard = %g", jac)
	}
}

func TestSpearmanRho(t *testing.T) {
	a := resultOf(1, 2, 3, 4)
	same := resultOf(1, 2, 3, 4)
	rev := resultOf(4, 3, 2, 1)
	rho, err := SpearmanRho(a, same)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("identical ρ = %g, %v", rho, err)
	}
	rho, err = SpearmanRho(a, rev)
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("reversed ρ = %g, %v", rho, err)
	}
	// Partial overlap: only shared vertices count.
	partial := resultOf(9, 3, 8, 1)
	rho, err = SpearmanRho(a, partial) // shared: 3 (a-rank 2) then 1 (a-rank 0): reversed order
	if err != nil || rho >= 0 {
		t.Fatalf("partial ρ = %g, %v", rho, err)
	}
	if _, err := SpearmanRho(a, resultOf(99)); err == nil {
		t.Error("too few shared vertices should fail")
	}
	if _, err := SpearmanRho(&Result{}, &Result{}); err == nil {
		t.Error("empty results should fail")
	}
}

func TestKendallTau(t *testing.T) {
	a := resultOf(1, 2, 3, 4)
	tau, err := KendallTau(a, resultOf(1, 2, 3, 4))
	if err != nil || tau != 1 {
		t.Fatalf("identical τ = %g, %v", tau, err)
	}
	tau, err = KendallTau(a, resultOf(4, 3, 2, 1))
	if err != nil || tau != -1 {
		t.Fatalf("reversed τ = %g, %v", tau, err)
	}
	tau, err = KendallTau(a, resultOf(2, 1, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	// One swapped adjacent pair out of 6: (6-2·1)/6? concordant 5, discordant 1 → 4/6.
	if math.Abs(tau-4.0/6.0) > 1e-12 {
		t.Fatalf("one-swap τ = %g", tau)
	}
	if _, err := KendallTau(a, resultOf(99)); err == nil {
		t.Error("too few shared vertices should fail")
	}
}

// The Table 5 claim, quantified: the venue-judged and coauthor-judged
// rankings of the hub coauthors differ substantially.
func TestDifferentCriteriaDifferentOutliers(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	byVenue, err := eng.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	byCoauthor, err := eng.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.author;`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpearmanRho(byVenue, byCoauthor); err != nil {
		t.Fatalf("rho on real results: %v", err)
	}
	if _, err := KendallTau(byVenue, byCoauthor); err != nil {
		t.Fatalf("tau on real results: %v", err)
	}
	shared, _ := OverlapAtK(byVenue, byCoauthor, 3)
	if shared < 0 || shared > 3 {
		t.Fatalf("overlap = %d", shared)
	}
}
