package core

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/oql"
)

func mustParse(t *testing.T, src string) *oql.Query {
	t.Helper()
	q, err := oql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestExactlyOneEventPerQuery is the journal's core contract: every completed
// query — ok, parse failure, plan failure, recovered panic, deadline-degraded
// partial — produces exactly one wide event with the right outcome.
func TestExactlyOneEventPerQuery(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(41)))
	ring := obs.NewEventRing(16)
	reg := obs.NewRegistry()
	eng := NewEngine(g, WithObs(reg, nil), WithEventSink(ring), WithInflight(obs.NewInflight()))

	emitted := 0
	expectOne := func(label, wantOutcome string, wantPartial bool) *obs.Event {
		t.Helper()
		emitted++
		evs := ring.Snapshot()
		if len(evs) != emitted {
			t.Fatalf("%s: journal has %d events, want %d (exactly one per query)", label, len(evs), emitted)
		}
		ev := evs[0] // most recent first
		if ev.Outcome != wantOutcome || ev.Partial != wantPartial {
			t.Fatalf("%s: outcome=%q partial=%v, want %q/%v (err=%q)", label, ev.Outcome, ev.Partial, wantOutcome, wantPartial, ev.Error)
		}
		if wantOutcome != "ok" && ev.Error == "" {
			t.Fatalf("%s: failure event carries no error text", label)
		}
		return ev
	}

	// ok
	if _, err := eng.Execute(faultQuery); err != nil {
		t.Fatal(err)
	}
	ev := expectOne("ok", "ok", false)
	// Parsed queries journal their canonical String() form.
	if ev.Query != mustParse(t, faultQuery).String() || ev.Entries == 0 || ev.TopScore == nil {
		t.Fatalf("ok event incomplete: %+v", ev)
	}

	// parse failure (never reaches executeQuery)
	if _, err := eng.Execute("THIS IS NOT OQL;"); err == nil {
		t.Fatal("parse should fail")
	}
	ev = expectOne("parse", "invalid", false)
	if ev.Query != "THIS IS NOT OQL;" {
		t.Fatalf("parse event lost the raw source: %q", ev.Query)
	}
	if len(ev.Phases) != 1 || ev.Phases[0].Phase != "parse" {
		t.Fatalf("parse event phases = %+v, want a lone parse span", ev.Phases)
	}

	// plan failure (unknown author dies in EvalSet)
	if _, err := eng.Execute(`FIND OUTLIERS FROM author{"No Such Author"} JUDGED BY author.paper.venue;`); err == nil {
		t.Fatal("plan should fail")
	}
	expectOne("plan", "not_found", false)

	// recovered panic
	fm := &faultMat{inner: NewBaseline(g), hook: fireOnce("journal panic probe")}
	engPanic := NewEngine(g, WithMaterializer(fm), WithEventSink(ring))
	if _, err := engPanic.Execute(faultQuery); !IsPanicError(err) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	ev = expectOne("panic", "internal", false)
	if !strings.Contains(ev.Error, "journal panic probe") {
		t.Fatalf("panic event error = %q", ev.Error)
	}

	// deadline-degraded partial (err == nil, Partial == true)
	cands, err := eng.CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(cands)
	res, err := eng.ExecuteContext(newDeadlineAfter(int64(1+nA+nA/2)), faultQuery)
	if err != nil || !res.Partial {
		t.Fatalf("degradation setup: err=%v partial=%v", err, res != nil && res.Partial)
	}
	ev = expectOne("partial", "ok", true)
	if ev.Candidates != nA {
		t.Fatalf("partial event candidates = %d, want full |Sc| %d", ev.Candidates, nA)
	}

	// The pre-parsed entry point journals too.
	if _, err := eng.ExecuteQuery(mustParse(t, faultQuery)); err != nil {
		t.Fatal(err)
	}
	expectOne("pre-parsed", "ok", false)
}

// TestEventAgreesWithTraceAndMetrics pins the three views of one query — the
// wide event, the Result's trace, and the /metrics scrape — to each other.
func TestEventAgreesWithTraceAndMetrics(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(43)))
	ring := obs.NewEventRing(8)
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(4)
	eng := NewEngine(g, WithObs(reg, slow), WithEventSink(ring))

	ctx := obs.WithRequestID(context.Background(), "rid-evt")
	sc := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), ParentSpanID: obs.NewSpanID()}
	ctx = obs.WithSpanContext(ctx, sc)
	ctx = obs.WithQueueWait(ctx, 5*time.Millisecond)
	res, err := eng.ExecuteContext(ctx, faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	ev := ring.Snapshot()[0]

	// Identity propagated from the context.
	if ev.RequestID != "rid-evt" || ev.TraceID != sc.TraceID || ev.SpanID != sc.SpanID || ev.ParentSpanID != sc.ParentSpanID {
		t.Fatalf("event identity = %+v, want ctx's rid/span context", ev)
	}
	if res.Trace.TraceID != sc.TraceID || res.Trace.RequestID != "rid-evt" {
		t.Fatalf("trace identity = rid %q trace %q", res.Trace.RequestID, res.Trace.TraceID)
	}
	if ev.QueueWaitUs != (5 * time.Millisecond).Microseconds() {
		t.Fatalf("QueueWaitUs = %d, want 5000", ev.QueueWaitUs)
	}

	// Durations and counters are read from the same sealed trace.
	if ev.TotalUs != res.Trace.Total.Microseconds() {
		t.Fatalf("event total %dus != trace total %v", ev.TotalUs, res.Trace.Total)
	}
	if len(ev.Phases) != len(res.Trace.Spans) {
		t.Fatalf("event has %d phases, trace has %d spans", len(ev.Phases), len(res.Trace.Spans))
	}
	for i, s := range res.Trace.Spans {
		p := ev.Phases[i]
		if p.Phase != s.Phase || p.DurationUs != s.Duration.Microseconds() ||
			p.TraversedVectors != s.Stats.TraversedVectors || p.IndexedVectors != s.Stats.IndexedVectors {
			t.Fatalf("phase %d: event %+v vs span %+v", i, p, s)
		}
	}

	// Result-shaped fields.
	if ev.Candidates != res.CandidateCount || ev.References != res.ReferenceCount || ev.Entries != len(res.Entries) {
		t.Fatalf("event counts %d/%d/%d vs result %d/%d/%d",
			ev.Candidates, ev.References, ev.Entries,
			res.CandidateCount, res.ReferenceCount, len(res.Entries))
	}
	if ev.TopScore == nil || *ev.TopScore != res.Entries[0].Score {
		t.Fatalf("event top score = %v, want %v", ev.TopScore, res.Entries[0].Score)
	}
	if ev.Measure != eng.Measure().String() || ev.Strategy != eng.Materializer().Strategy().String() || ev.Parallelism != eng.QueryParallelism() {
		t.Fatalf("event config = %s/%s/%d", ev.Measure, ev.Strategy, ev.Parallelism)
	}

	// The baseline materializer exposes kernel counters: per-hop work must be
	// attributed, and the traversed vectors agree with the trace.
	if len(ev.Kernels) == 0 {
		t.Fatalf("event has no kernel counts under the baseline materializer")
	}
	var kernelSum int64
	for _, n := range ev.Kernels {
		kernelSum += n
	}
	matSpan, _ := res.Trace.Span("materialize")
	// Every traversed vector takes at least one kernel hop (2-segment paths
	// take two), so the hop count bounds the vector count from above.
	if kernelSum < matSpan.Stats.TraversedVectors {
		t.Fatalf("kernel hops %d < traversed vectors %d", kernelSum, matSpan.Stats.TraversedVectors)
	}

	// /metrics deltas agree with the journal.
	srv := httptest.NewServer(obs.NewAdminMux(reg, slow, obs.WithEventRing(ring)))
	defer srv.Close()
	m := scrapeMetrics(t, srv.URL+"/metrics")
	if m[`netout_queries_total{outcome="ok"}`] != 1 || m["netout_query_seconds_count"] != 1 {
		t.Fatalf("metrics disagree with the single journaled query: %v", m)
	}
	if m["netout_vectors_traversed_total"] != float64(matSpan.Stats.TraversedVectors) {
		t.Fatalf("scraped traversed vectors %v != trace's %d",
			m["netout_vectors_traversed_total"], matSpan.Stats.TraversedVectors)
	}
}

// TestPipelineDeterminismWithJournal re-checks the pipeline's bit-identical
// contract with the journal and the inflight table attached: observability
// must never touch results.
func TestPipelineDeterminismWithJournal(t *testing.T) {
	g := bigBibGraph(rand.New(rand.NewSource(47)))
	want, err := NewEngine(g, WithQueryParallelism(1)).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		ring := obs.NewEventRing(8)
		eng := NewEngine(g, WithQueryParallelism(par),
			WithEventSink(ring), WithInflight(obs.NewInflight()))
		got, err := eng.Execute(faultQuery)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("parallelism %d: results diverge with the journal enabled", par)
		}
		evs := ring.Snapshot()
		if len(evs) != 1 || evs[0].Outcome != "ok" || evs[0].Parallelism != par {
			t.Fatalf("parallelism %d: journal = %+v", par, evs)
		}
	}
}

// TestInflightVisibleMidExecution blocks a query inside its materialize phase
// via fault injection and asserts the live inspector sees it: /debug/requests
// lists the query with its phase and identity, and the gauge reads 1.
func TestInflightVisibleMidExecution(t *testing.T) {
	g := bigBibGraph(rand.New(rand.NewSource(53)))
	gate := make(chan struct{})
	var entered atomic.Int64
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		if entered.Add(1) == 1 {
			<-gate // stall the first load until the inspector has looked
		}
	}}
	tab := obs.NewInflight()
	reg := obs.NewRegistry()
	tab.RegisterMetrics(reg)
	eng := NewEngine(g, WithMaterializer(fm), WithInflight(tab), WithObs(reg, nil))

	srv := httptest.NewServer(obs.NewAdminMux(reg, nil, obs.WithInflight(tab)))
	defer srv.Close()

	ctx := obs.WithRequestID(context.Background(), "rid-stuck")
	done := make(chan error, 1)
	go func() {
		_, err := eng.ExecuteContext(ctx, faultQuery)
		done <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); entered.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the stalled load")
		}
		time.Sleep(time.Millisecond)
	}

	// The stuck query is visible with its identity and phase.
	resp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{"in-flight queries: 1", "rid=rid-stuck", "FIND OUTLIERS", "phase materialize"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/requests missing %q:\n%s", want, body)
		}
	}
	m := scrapeMetrics(t, srv.URL+"/metrics")
	if m["netout_inflight_queries"] != 1 {
		t.Fatalf("inflight gauge = %v, want 1", m["netout_inflight_queries"])
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Finished queries leave the table (and the gauge).
	if tab.Len() != 0 {
		t.Fatalf("table not drained after completion: %d", tab.Len())
	}
	resp, err = http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); !strings.Contains(body, "none") {
		t.Fatalf("/debug/requests still lists queries:\n%s", body)
	}
}

// TestInflightChunkProgressUnderPipeline drives the parallel path with a
// chunked candidate phase and checks the record accumulates chunk progress.
func TestInflightChunkProgressUnderPipeline(t *testing.T) {
	g := bigBibGraph(rand.New(rand.NewSource(59)))
	tab := obs.NewInflight()
	var maxTotal atomic.Int64
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		for _, row := range tab.Snapshot() {
			if row.ChunksTotal > maxTotal.Load() {
				maxTotal.Store(row.ChunksTotal)
			}
		}
	}}
	eng := NewEngine(g, WithMaterializer(fm), WithQueryParallelism(4), WithInflight(tab))
	if _, err := eng.Execute(faultQuery); err != nil {
		t.Fatal(err)
	}
	// bigBibGraph has >128 candidates, so the chunked phase announced >1 chunk.
	if maxTotal.Load() < 2 {
		t.Fatalf("chunk progress never announced multiple chunks (max total %d)", maxTotal.Load())
	}
}

// TestServePoolEmitsEventsWithQueueWait checks the serving integration: pool
// queries journal through ServeOptions.Events with the queue wait attached,
// and the serve histograms appear in the scrape.
func TestServePoolEmitsEventsWithQueueWait(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(61)))
	ring := obs.NewEventRing(8)
	reg := obs.NewRegistry()
	tab := obs.NewInflight()
	pool, err := NewServePool(g, ServeOptions{
		Workers: 2, Materializer: NewBaseline(g), Obs: reg,
		Events: ring, Inflight: tab,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.Ready(); err != nil {
		t.Fatalf("open pool not ready: %v", err)
	}
	for i := 0; i < 3; i++ {
		ctx := obs.WithRequestID(context.Background(), fmt.Sprintf("rid-%d", i))
		if _, err := pool.Execute(ctx, faultQuery); err != nil {
			t.Fatal(err)
		}
	}
	evs := ring.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("journal has %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Outcome != "ok" || !strings.HasPrefix(ev.RequestID, "rid-") {
			t.Fatalf("pool event = %+v", ev)
		}
		if ev.QueueWaitUs < 0 {
			t.Fatalf("negative queue wait %d", ev.QueueWaitUs)
		}
	}
	srv := httptest.NewServer(obs.NewAdminMux(reg, nil))
	defer srv.Close()
	m := scrapeMetrics(t, srv.URL+"/metrics")
	if m["netout_serve_queue_seconds_count"] != 3 || m["netout_serve_execute_seconds_count"] != 3 {
		t.Fatalf("serve histograms = queue %v / execute %v, want 3 observations each",
			m["netout_serve_queue_seconds_count"], m["netout_serve_execute_seconds_count"])
	}
	// Closing flips readiness while the process stays alive.
	pool.Close()
	if err := pool.Ready(); err == nil {
		t.Fatal("closed pool still reports ready")
	}
}
