package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/sparse"
	"netout/internal/xerr"
)

// The scatter–gather shard tier (ROADMAP item 1). The candidate side of a
// query partitions into S contiguous target-type vertex ranges; each shard —
// a resident goroutine in-process, or a shard process behind a RemoteShard
// client — owns its own materializer view (a private arena view for PM/SPM,
// a warm-shared handle for the cached strategy) and scores its local
// candidates with the fused materialize+score loop into a bounded top-n
// heap. The reference side reduces ONCE on the coordinator via the refScorer
// and is broadcast read-only (in-process as a shared pointer; over the wire
// as a ShardBroadcast); the coordinator then performs a deterministic k-way
// merge of the per-shard rankings under the established (score, vertex)
// total order.
//
// Determinism contract, mirroring pipeline.go: for any shard count — local
// or remote — the sharded execution produces the SAME Entries and Skipped as
// unsharded execution, bit for bit.
//
//   - Scores: the reference reduction is built sequentially on the
//     coordinator in the sequential path's exact order, so the broadcast
//     aggregate's floating-point association is identical; each candidate's
//     combination arithmetic (queryScorers.score) replicates the sequential
//     operations operation for operation, and no arithmetic ever crosses
//     candidates. The wire codec ships floats as their exact IEEE-754 bits
//     (math.Float64bits), so crossing a network boundary changes nothing.
//   - Ranking: (score, vertex) is a strict total order over a query's
//     candidates (entryBefore), so the global top-k set and its sorted
//     order are unique, and a k-way merge of per-shard bounded top-k lists
//     reconstructs exactly what one selector over all candidates retains.
//   - Skipped: shard ranges are contiguous in the ascending candidate
//     order, so concatenating per-shard skip lists in shard order is the
//     sequential skip order.
//
// Degradation contract, mirroring guard.go: a shard whose execution expires
// its deadline or panics contributes the exact prefix of candidates it
// fully scored (NetOut only — prefix scores are exact because the measure
// is separable once the broadcast reference aggregate is fixed) and the
// query completes with Result.Partial=true plus per-shard accounting in
// Result.Shards, instead of failing. A REMOTE shard additionally degrades
// on transport loss and overload (UNAVAILABLE, RESOURCE_EXHAUSTED, and
// remote defects — the network tier's equivalents of a shard dying
// mid-query): its prefix is whatever the reply carried, possibly empty.
// Cancellation never degrades, protocol skew always fails the query, and
// non-degradable shard errors still fail it. Unlike unsharded execution, a
// panic is isolated to the shard it struck: the other shards' work is exact
// and is returned.

// ShardProtocolVersion is the protocol revision stamped on every
// ShardRequest and ShardResponse. The structs below are deliberately
// transport-agnostic — plain data, no channels, no engine internals in the
// exported fields — and internal/shardnet serializes exactly these messages
// across the process boundary; the version field is how a mixed-revision
// fleet detects skew instead of silently mis-merging. Version 2 added the
// Kind field to ShardResponse (v1 was the PR 9 in-process protocol and
// never had a serialized form, so there is no v1 peer to interoperate
// with). Both sides enforce the version: a shard server rejects a request
// stamped with a foreign version, and the coordinator's gather loop fails
// the query on a reply that does not echo its own.
const ShardProtocolVersion = 2

// ShardRequest is one shard's share of a scattered query: the full scoring
// configuration plus the shard's contiguous slice of the ascending
// candidate set. The reference side is NOT in the request — it reduces once
// on the coordinator and is broadcast alongside (in-process as the shared
// read-only queryScorers; over the wire as the ShardBroadcast, one
// aggregate vector per feature path for the separable measures, the
// visibility-filtered reference vectors for PathSim).
type ShardRequest struct {
	Version int
	// QueryID is the serving layer's request ID ("" outside serving).
	QueryID string
	// Shard is the target shard index in [0, S).
	Shard int
	// TopK bounds the shard's local selection (0 = unbounded); the
	// coordinator merges per-shard top-k lists into the global top k.
	TopK    int
	Measure Measure
	Combine Combination
	Weights []float64
	Paths   []metapath.Path
	// Candidates is this shard's contiguous range of the query's candidate
	// set. Ranges across shards are disjoint and cover the set in ascending
	// vertex order (hin.PartitionVertices).
	Candidates []hin.VertexID
}

// ShardResponse is one shard's reply: its local ranking plus the exact
// progress accounting the coordinator needs to merge or degrade.
type ShardResponse struct {
	Version int
	QueryID string
	Shard   int
	// Entries is the shard's bounded top-k over the candidates it scored,
	// ranked ascending under the (score, vertex) total order.
	Entries []Entry
	// Skipped lists processed candidates with zero visibility under every
	// feature path, in candidate order.
	Skipped []hin.VertexID
	// Candidates echoes the size of the shard's slice; Done counts the
	// candidates fully scored. On a clean run Done == Candidates; on a fault
	// Entries and Skipped cover exactly the Done-prefix, which is what a
	// degraded merge keeps.
	Candidates, Done int
	// Err, Code and Kind classify a shard failure ("" / zero on success).
	// The typed in-process error (e.g. *PanicError with its stack) travels
	// alongside for same-process callers; a network transport ships only
	// these three fields and the coordinator reconstructs a classified
	// error with xerr.FromWire — Kind is what lets a remote defect (a shard
	// panic whose *PanicError cannot cross the wire) keep degrading like a
	// local one.
	Err  string
	Code xerr.Code
	Kind xerr.Kind
	// Stats is the shard's materializer delta for this request. For the
	// shared cached strategy the counters are global across shards and the
	// coordinator uses a whole-phase delta instead.
	Stats MatStats
	// Duration is the shard's wall time for this request.
	Duration time.Duration

	err error
	// remote and addr mark a reply that crossed a process boundary; the
	// coordinator widens the degradation rule for those (transport loss and
	// overload fold into Partial) and stamps the address into the per-shard
	// accounting.
	remote bool
	addr   string
}

// ShardBroadcast is the reference reduction in wire form: everything a
// shard needs from the reference side, already reduced on the coordinator
// so the O(|Sr|) work happens once per query, not once per shard. For
// NetOut/CosSim each entry is a single aggregate vector (Equation (1) is
// separable); for PathSim it is the visibility-filtered reference vectors
// with their hoisted self-visibilities. CombineConcat broadcasts one entry
// over the concatenated space; CombineAverage one entry per feature path.
type ShardBroadcast struct {
	// Stride is the concatenation stride (the coordinator graph's vertex
	// count), needed by CombineConcat to rebuild candidate concatenation
	// with the same index arithmetic.
	Stride int32
	Refs   []ShardRefState
}

// ShardRefState is one refScorer's broadcastable state.
type ShardRefState struct {
	// Agg is the separable reference aggregate (NetOut/CosSim); zero for
	// PathSim.
	Agg sparse.Vector
	// Refs and RefVis are PathSim's pairwise inputs (visibility-filtered
	// reference vectors and their κ(vj,vj)); nil for the separable measures.
	Refs   []sparse.Vector
	RefVis []float64
}

func (st ShardRefState) scorer(m Measure) *refScorer {
	return &refScorer{m: m, s: st.Agg, refs: st.Refs, refVis: st.RefVis}
}

// RemoteShard is a coordinator-side client for one out-of-process shard.
// Call executes one shard request against the remote process and returns
// its reply; implementations own connection management, retry/backoff,
// hedging and deadline propagation (internal/shardnet.Client). Call must be
// safe for concurrent use — one client serves every ServePool worker — and
// should return an error only for transport-level faults (the remote
// expressing a failure returns a response with Err/Code/Kind set instead).
type RemoteShard interface {
	Call(ctx context.Context, req *ShardRequest, b *ShardBroadcast) (*ShardResponse, error)
	// Addr names the remote endpoint for accounting and metrics.
	Addr() string
}

// shardCall couples a versioned ShardRequest with the execution state its
// side of the boundary needs: the query's context, the broadcast reference
// reduction (as the in-process scorers, plus its wire form when the group
// is remote), and the reply channel.
type shardCall struct {
	req     *ShardRequest
	ctx     context.Context
	scorers *queryScorers
	bcast   *ShardBroadcast
	reply   chan<- *ShardResponse
}

// shardCaller is the seam between the coordinator's scatter loop and a
// shard's execution: the resident in-process goroutine (shardRunner) and
// the remote client adapter (remoteRunner) both implement it. dispatch must
// not block on the shard's work (the reply channel is buffered) and every
// dispatched call MUST eventually produce exactly one reply — the gather
// loop counts on it.
type shardCaller interface {
	dispatch(*shardCall)
	stop()
}

// shardRunner is one resident in-process shard: a long-lived goroutine
// owning a private materializer view, serving one shardCall at a time.
// There is no cross-shard locking on the hot path — a runner touches only
// its own view, selector and scratch; the only shared state is the
// read-only broadcast reduction (and, for the cached strategy, the
// internally-synchronized shared cache).
type shardRunner struct {
	id    int
	mat   Materializer
	calls chan *shardCall
}

func (r *shardRunner) dispatch(call *shardCall) { r.calls <- call }
func (r *shardRunner) stop()                    { close(r.calls) }

// remoteRunner adapts a RemoteShard client to the shardCaller seam. Each
// dispatch runs in its own goroutine so a slow or dead remote never blocks
// the scatter loop; a transport error or a panicking client synthesizes a
// classified failure response, so the gather loop's exactly-one-reply
// invariant holds no matter what the network does.
type remoteRunner struct {
	shard RemoteShard
}

func (r *remoteRunner) dispatch(call *shardCall) {
	go func() { call.reply <- r.serve(call) }()
}

// stop is a no-op: remote clients are owned by whoever constructed them
// (they are shared across every worker engine of a ServePool), not by the
// engine's shard group.
func (r *remoteRunner) stop() {}

func (r *remoteRunner) serve(call *shardCall) *ShardResponse {
	start := time.Now()
	resp, err := func() (resp *ShardResponse, err error) {
		defer recoverAsError(&err)
		return r.shard.Call(call.ctx, call.req, call.bcast)
	}()
	if err == nil && resp == nil {
		err = xerr.Newf(xerr.Unavailable, "core: remote shard %s returned no response", r.shard.Addr())
	}
	if err != nil {
		// Transport-level loss: there is no reply to merge, so the shard
		// contributed an empty exact prefix. The synthesized response speaks
		// the coordinator's own version — skew detection applies to what a
		// remote actually said, never to its absence.
		resp = &ShardResponse{
			Version:    ShardProtocolVersion,
			QueryID:    call.req.QueryID,
			Candidates: len(call.req.Candidates),
			Err:        err.Error(),
			Code:       xerr.CodeOf(err),
			Kind:       xerr.KindOf(err),
			Duration:   time.Since(start),
			err:        err,
		}
	}
	// The shard index is coordinator bookkeeping: trust the request we sent,
	// not the reply, so a confused remote cannot scribble over another
	// shard's slot in the gather array.
	resp.Shard = call.req.Shard
	if resp.err == nil && resp.Err != "" {
		resp.err = xerr.FromWire(resp.Code, resp.Kind, resp.Err)
	}
	resp.remote = true
	resp.addr = r.shard.Addr()
	return resp
}

// shardGroup is an engine's shard pool: resident in-process runners, or
// adapters over remote shard clients.
type shardGroup struct {
	callers []shardCaller
	// statsShared mirrors the pipeline's accounting split: views of the
	// cached materializer share counters, so per-shard deltas would
	// multiply-count and the coordinator takes one whole-phase delta.
	statsShared bool
	// remote marks a group of out-of-process shards: the scatter loop then
	// serializes the reference broadcast once per query and the gather loop
	// widens the degradation rule to transport faults.
	remote bool
	closed atomic.Bool
	wg     sync.WaitGroup
}

func newShardGroup(e *Engine, n int) (*shardGroup, error) {
	g := &shardGroup{callers: make([]shardCaller, n)}
	_, g.statsShared = e.mat.(*cached)
	runners := make([]*shardRunner, n)
	for i := range runners {
		view, err := NewView(e.mat)
		if err != nil {
			return nil, err
		}
		runners[i] = &shardRunner{id: i, mat: view, calls: make(chan *shardCall)}
		g.callers[i] = runners[i]
	}
	for _, r := range runners {
		g.wg.Add(1)
		go func(r *shardRunner) {
			defer g.wg.Done()
			for call := range r.calls {
				call.reply <- serveShard(call.ctx, e.g, r.mat, call.req, call.scorers)
			}
		}(r)
	}
	return g, nil
}

// newRemoteShardGroup adapts the engine's remote shard clients into a
// group. No resident goroutines and no views: each remote process owns its
// own graph slice and arena index, and dispatch spawns per-call.
func newRemoteShardGroup(e *Engine) *shardGroup {
	g := &shardGroup{remote: true, callers: make([]shardCaller, len(e.remotes))}
	for i, rs := range e.remotes {
		g.callers[i] = &remoteRunner{shard: rs}
	}
	return g
}

// close stops the runners and waits for them to exit. Idempotent. Remote
// clients are not closed — the engine does not own them.
func (g *shardGroup) close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	for _, c := range g.callers {
		c.stop()
	}
	g.wg.Wait()
}

// WithShards partitions query execution across n resident shards: the
// candidate set splits into n contiguous ranges, each scored by a dedicated
// goroutine with its own materializer view, and the results are k-way
// merged — bit-identical to unsharded execution for any n (see the
// determinism contract above). n <= 0 (the default) disables sharding;
// n == 1 runs the full scatter–gather machinery with a single shard, the
// honest baseline for measuring the tier's overhead. Sharded engines hold
// resident goroutines; release them with Close. Sharding replaces the
// intra-query chunk pipeline (WithQueryParallelism) when both are set.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.shards = n
	}
}

// WithRemoteShards scatters queries across out-of-process shards instead of
// resident goroutines: one RemoteShard client per shard process, in shard
// order (client i serves candidates range i). The reference side still
// reduces once on the coordinator and is broadcast to every shard as a
// ShardBroadcast; replies merge under the same determinism contract, so
// results are bit-identical to unsharded execution when every shard is
// healthy. Remote shards take precedence over WithShards when both are set.
// The engine does NOT own the clients — close them (and their connections)
// wherever they were dialed, after the engine is done.
func WithRemoteShards(shards ...RemoteShard) Option {
	return func(e *Engine) { e.remotes = shards }
}

// Shards returns the configured shard count (0 = unsharded).
func (e *Engine) Shards() int {
	if len(e.remotes) > 0 {
		return len(e.remotes)
	}
	return e.shards
}

// shardGroup lazily starts the engine's shard pool on first use. Remote
// clients win over in-process shards. Construction failure (a materializer
// without concurrent views) declines in-process sharding permanently and
// the engine runs unsharded, mirroring pipelineWorkers' fallback; remote
// groups cannot fail construction.
func (e *Engine) shardGroup() *shardGroup {
	if len(e.remotes) > 0 {
		e.shardOnce.Do(func() { e.shardGrp = newRemoteShardGroup(e) })
		return e.shardGrp
	}
	if e.shards < 1 {
		return nil
	}
	e.shardOnce.Do(func() {
		if g, err := newShardGroup(e, e.shards); err == nil {
			e.shardGrp = g
		}
	})
	return e.shardGrp
}

// Close releases the engine's resident shard goroutines, waiting for them
// to exit. Engines without WithShards hold no resident resources and need
// no Close (remote shard clients are owned by their dialer, not the
// engine). Close is idempotent and nil-safe; executing queries on a closed
// sharded engine is a caller bug (it fails the query with a *PanicError,
// like any other panic).
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.shardOnce.Do(func() {}) // no group may start after Close
	if e.shardGrp != nil {
		e.shardGrp.close()
	}
}

// queryScorers is the broadcast reference reduction: one refScorer over the
// concatenated vectors (CombineConcat) or one per feature path
// (CombineAverage), built once on the coordinator and shared read-only by
// every shard. For NetOut/CosSim each refScorer is a single aggregate
// vector — the "one small message" the network transport broadcasts.
type queryScorers struct {
	concat  *refScorer
	perPath []*refScorer
	weights []float64
	stride  int32
}

func newQueryScorers(measure Measure, combine Combination, refPerPath [][]sparse.Vector, weights []float64, stride int32) *queryScorers {
	qs := &queryScorers{weights: weights, stride: stride}
	if combine == CombineConcat {
		qs.concat = newRefScorer(measure, concatVectors(refPerPath, weights, stride))
		return qs
	}
	qs.perPath = make([]*refScorer, len(refPerPath))
	for m := range refPerPath {
		qs.perPath[m] = newRefScorer(measure, refPerPath[m])
	}
	return qs
}

// broadcast captures the scorers' post-reduction state in wire form. The
// state is shared, not copied — the broadcast is read-only by contract on
// both sides of the codec.
func (qs *queryScorers) broadcast() *ShardBroadcast {
	b := &ShardBroadcast{Stride: qs.stride}
	if qs.concat != nil {
		b.Refs = []ShardRefState{{Agg: qs.concat.s, Refs: qs.concat.refs, RefVis: qs.concat.refVis}}
		return b
	}
	b.Refs = make([]ShardRefState, len(qs.perPath))
	for i, rs := range qs.perPath {
		b.Refs[i] = ShardRefState{Agg: rs.s, Refs: rs.refs, RefVis: rs.refVis}
	}
	return b
}

// scorersFromRequest reconstructs the read-only scoring state on the far
// side of the wire from a request plus its broadcast. Validation is the
// shard server's input hygiene: a malformed pairing fails the request with
// a typed error instead of scoring garbage.
func scorersFromRequest(req *ShardRequest, b *ShardBroadcast) (*queryScorers, error) {
	if b == nil {
		return nil, xerr.New(xerr.InvalidArgument, "core: shard request without a reference broadcast")
	}
	switch req.Measure {
	case MeasureNetOut, MeasurePathSim, MeasureCosSim:
	default:
		return nil, xerr.Newf(xerr.InvalidArgument, "core: shard request names unknown measure %d", int(req.Measure))
	}
	if len(req.Weights) != len(req.Paths) {
		return nil, xerr.Newf(xerr.InvalidArgument, "core: shard request has %d weights for %d paths", len(req.Weights), len(req.Paths))
	}
	qs := &queryScorers{weights: req.Weights, stride: b.Stride}
	switch req.Combine {
	case CombineConcat:
		if len(b.Refs) != 1 {
			return nil, xerr.Newf(xerr.InvalidArgument, "core: concat shard broadcast carries %d reference states, want 1", len(b.Refs))
		}
		qs.concat = b.Refs[0].scorer(req.Measure)
	case CombineAverage:
		if len(b.Refs) != len(req.Paths) {
			return nil, xerr.Newf(xerr.InvalidArgument, "core: shard broadcast carries %d reference states for %d paths", len(b.Refs), len(req.Paths))
		}
		qs.perPath = make([]*refScorer, len(b.Refs))
		for i, st := range b.Refs {
			qs.perPath[i] = st.scorer(req.Measure)
		}
	default:
		return nil, xerr.Newf(xerr.InvalidArgument, "core: shard request names unknown combination %d", int(req.Combine))
	}
	return qs, nil
}

// score combines one candidate's per-path vectors into its outlier score,
// replicating the sequential combination arithmetic operation for operation
// (see executeQuery) so sharded scores are bit-identical. ok is false for a
// candidate with zero visibility under every path (skipped from ranking).
func (qs *queryScorers) score(vecs []sparse.Vector) (float64, bool) {
	if qs.concat != nil {
		s := qs.concat.score(concatOne(vecs, qs.weights, qs.stride))
		if math.IsNaN(s) {
			return 0, false
		}
		return s, true
	}
	var sum, sumW float64
	ok := false
	for m, rs := range qs.perPath {
		s := rs.score(vecs[m])
		if math.IsNaN(s) {
			continue
		}
		sum += qs.weights[m] * s
		sumW += qs.weights[m]
		ok = true
	}
	if !ok {
		return 0, false
	}
	if sumW > 0 {
		sum /= sumW
	}
	return sum, true
}

// shardFailure builds the classified failure reply for a request that never
// reached scoring (skew, malformed broadcast, out-of-range candidates).
func shardFailure(req *ShardRequest, err error) *ShardResponse {
	return &ShardResponse{
		Version:    ShardProtocolVersion,
		QueryID:    req.QueryID,
		Shard:      req.Shard,
		Candidates: len(req.Candidates),
		Err:        err.Error(),
		Code:       xerr.CodeOf(err),
		Kind:       xerr.KindOf(err),
		err:        err,
	}
}

// ServeShardRequest executes one shard request against a graph slice host:
// the entry point a shard server (internal/shardnet) calls for each decoded
// request. It enforces the protocol version, validates the request against
// the broadcast and the local graph, and never fails — every fault comes
// back as a classified failure response, mirroring the in-process rule that
// shards always reply. The materializer must be private to the caller for
// the duration of the call (shard servers hold a view pool).
func ServeShardRequest(ctx context.Context, g *hin.Graph, mat Materializer, req *ShardRequest, b *ShardBroadcast) *ShardResponse {
	if req.Version != ShardProtocolVersion {
		return shardFailure(req, xerr.Newf(xerr.Internal,
			"core: shard protocol skew: request version %d, this shard speaks %d", req.Version, ShardProtocolVersion))
	}
	scorers, err := scorersFromRequest(req, b)
	if err != nil {
		return shardFailure(req, err)
	}
	n := hin.VertexID(g.NumVertices())
	for _, v := range req.Candidates {
		if v < 0 || v >= n {
			return shardFailure(req, xerr.Newf(xerr.InvalidArgument,
				"core: shard candidate %d outside graph (%d vertices)", v, n))
		}
	}
	return serveShard(ctx, g, mat, req, scorers)
}

// serveShard scores the shard's candidate slice against the broadcast
// reference reduction: fused materialize+score per candidate, ascending
// order, into a bounded top-n heap. Failures never escape the shard — a
// panic or per-vertex error is recorded on the response together with the
// exact prefix of fully-scored candidates, so the coordinator can degrade
// the query instead of the fault killing it (or the process). Shared by the
// in-process shardRunner and the network shard server.
func serveShard(ctx context.Context, g *hin.Graph, mat Materializer, req *ShardRequest, scorers *queryScorers) *ShardResponse {
	start := time.Now()
	resp := &ShardResponse{
		Version:    ShardProtocolVersion,
		QueryID:    req.QueryID,
		Shard:      req.Shard,
		Candidates: len(req.Candidates),
	}
	base := mat.Stats()
	sel := newTopSelector(req.TopK)
	err := func() (err error) {
		defer recoverAsError(&err)
		vecs := make([]sparse.Vector, len(req.Paths))
		for i, v := range req.Candidates {
			for m := range req.Paths {
				if err := ctxErr(ctx); err != nil {
					return err
				}
				vec, mErr := mat.NeighborVector(req.Paths[m], v)
				if mErr != nil {
					return mErr
				}
				vecs[m] = vec
			}
			if s, ok := scorers.score(vecs); ok {
				sel.push(Entry{Vertex: v, Name: g.Name(v), Score: s})
			} else {
				resp.Skipped = append(resp.Skipped, v)
			}
			// A candidate interrupted mid-materialization is in neither
			// Entries nor Skipped; Done advances only past fully-scored ones,
			// so the response always describes an exact prefix.
			resp.Done = i + 1
		}
		return nil
	}()
	resp.Entries = sel.ranked()
	resp.Stats = mat.Stats().Sub(base)
	resp.Duration = time.Since(start)
	if err != nil {
		resp.err = err
		resp.Err = err.Error()
		resp.Code = xerr.CodeOf(err)
		resp.Kind = xerr.KindOf(err)
	}
	return resp
}

// shardDegradable decides whether a failed shard folds into an exact-prefix
// Partial instead of failing the query. The in-process rule mirrors
// unsharded execution (deadline) plus the tier's panic isolation; a remote
// reply widens it to the network tier's loss modes — transport failure,
// admission shed and remote defects — because a lost remote shard is
// operationally the same event as a panicking local one: its Done-prefix is
// exact and the rest of the fleet's work should survive. Cancellation never
// degrades (nobody is waiting), and remote INTERNAL failures that are not
// defects (e.g. protocol-level rejections) fail the query: they signal
// misconfiguration, not load.
func (e *Engine) shardDegradable(sr *ShardResponse) bool {
	if e.measure != MeasureNetOut || sr.err == nil {
		return false
	}
	if degradable(sr.err) || IsPanicError(sr.err) {
		return true
	}
	if !sr.remote {
		return false
	}
	switch xerr.CodeOf(sr.err) {
	case xerr.DeadlineExceeded, xerr.ResourceExhausted, xerr.Unavailable:
		return true
	case xerr.Internal:
		return xerr.KindOf(sr.err) == xerr.KindDefect
	}
	return false
}

// executeSharded runs the materialize/score/rank phases of a planned query
// on the shard group, filling res in place. The trace records the
// scatter–gather phase shape — reduce (reference side, on the coordinator)
// → scatter (shard fan-out and local scoring) → merge (k-way merge and skip
// assembly) — with per-shard sub-spans folded into the trace, the wide
// event and Result.Shards.
func (e *Engine) executeSharded(ctx context.Context, plan *queryPlan, res *Result, tr *obs.Tracer, sg *shardGroup) error {
	cands, refs, paths, weights := plan.cands, plan.refs, plan.paths, plan.weights

	// Reference reduction, once on the coordinator: feature-major over the
	// reference set in the sequential path's exact order, so the broadcast
	// aggregate's floating-point association is bit-identical to unsharded
	// execution. A failure here fails the query whole — without the
	// reduction no shard has a scorer, so there is no prefix to keep.
	plan.ifq.SetPhase("reduce")
	matBefore := e.mat.Stats()
	cacheBefore, _ := CacheStatsOf(e.mat)
	refPerPath := make([][]sparse.Vector, len(paths))
	for m := range paths {
		refPerPath[m] = make([]sparse.Vector, len(refs))
		for j, v := range refs {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			vec, err := e.mat.NeighborVector(paths[m], v)
			if err != nil {
				return err
			}
			refPerPath[m][j] = vec
		}
	}
	scorers := newQueryScorers(e.measure, e.combine, refPerPath, weights, int32(e.g.NumVertices()))
	refPerPath = nil // scorers hold what they need; separable measures free Sr now
	var bcast *ShardBroadcast
	if sg.remote {
		bcast = scorers.broadcast()
	}
	d := e.mat.Stats().Sub(matBefore)
	cacheMid, _ := CacheStatsOf(e.mat)
	res.Timing.NotIndexed += d.TraversalTime
	res.Timing.Indexed += d.IndexedTime
	res.Timing.TraversedVectors += d.TraversedVectors
	res.Timing.IndexedVectors += d.IndexedVectors
	tr.EndPhase("reduce", obs.SpanStats{
		TraversedVectors: d.TraversedVectors,
		IndexedVectors:   d.IndexedVectors,
		CacheHits:        cacheMid.Hits - cacheBefore.Hits,
		CacheMisses:      cacheMid.Misses - cacheBefore.Misses,
	})

	// Scatter: one versioned request per shard over its contiguous range of
	// the ascending candidate set, then gather every reply. Shards always
	// reply — panics are recovered inside serveShard, and the remote adapter
	// synthesizes a classified reply on transport loss — so the gather
	// cannot hang.
	plan.ifq.SetPhase("scatter")
	scatterBase := e.mat.Stats()
	ranges := hin.PartitionVertices(cands, len(sg.callers))
	reply := make(chan *ShardResponse, len(sg.callers))
	rid := obs.RequestIDFrom(ctx)
	for i, c := range sg.callers {
		c.dispatch(&shardCall{
			req: &ShardRequest{
				Version:    ShardProtocolVersion,
				QueryID:    rid,
				Shard:      i,
				TopK:       plan.q.TopK,
				Measure:    e.measure,
				Combine:    e.combine,
				Weights:    weights,
				Paths:      paths,
				Candidates: ranges[i],
			},
			ctx:     ctx,
			scorers: scorers,
			bcast:   bcast,
			reply:   reply,
		})
	}
	resps := make([]*ShardResponse, len(sg.callers))
	for range sg.callers {
		sr := <-reply
		resps[sr.Shard] = sr
	}
	var sd MatStats
	if sg.statsShared {
		sd = e.mat.Stats().Sub(scatterBase)
	} else {
		for _, sr := range resps {
			sd = sd.Add(sr.Stats)
		}
	}
	res.Timing.NotIndexed += sd.TraversalTime
	res.Timing.Indexed += sd.IndexedTime
	res.Timing.TraversedVectors += sd.TraversedVectors
	res.Timing.IndexedVectors += sd.IndexedVectors
	cacheAfter, _ := CacheStatsOf(e.mat)
	tr.EndPhase("scatter", obs.SpanStats{
		TraversedVectors: sd.TraversedVectors,
		IndexedVectors:   sd.IndexedVectors,
		CacheHits:        cacheAfter.Hits - cacheMid.Hits,
		CacheMisses:      cacheAfter.Misses - cacheMid.Misses,
	})

	// Version gate before any merging: a reply stamped with a foreign
	// protocol revision means a mixed-revision fleet, and its payload cannot
	// be trusted to mean what this coordinator thinks it means. Skew is a
	// deployment bug, so it fails the query whole — degrading would fold
	// unintelligible data into a "partial" answer.
	for _, sr := range resps {
		if sr.Version != ShardProtocolVersion {
			where := ""
			if sr.remote {
				where = " (" + sr.addr + ")"
			}
			return xerr.Newf(xerr.Internal,
				"core: shard protocol skew: shard %d%s replied version %d, coordinator speaks %d",
				sr.Shard, where, sr.Version, ShardProtocolVersion)
		}
	}

	// Classify shard failures. A deadline-expired or panicking shard
	// degrades under NetOut — its Done-prefix scores are exact — while
	// cancellation and real errors fail the query, exactly as unsharded
	// execution treats them; remote shards additionally degrade on
	// transport loss and overload (see shardDegradable).
	plan.ifq.SetPhase("merge")
	mergeStart := time.Now()
	partial := false
	totalDone := 0
	var failErr, degradedErr error
	for _, sr := range resps {
		totalDone += sr.Done
		if sr.err == nil {
			continue
		}
		if e.shardDegradable(sr) {
			partial = true
			if degradedErr == nil {
				degradedErr = sr.err
			}
			continue
		}
		if failErr == nil {
			failErr = sr.err
		}
	}
	if failErr != nil {
		return failErr
	}
	if partial {
		if totalDone == 0 {
			// No shard completed any candidate: there is nothing to degrade
			// to, so the first failing shard's error stands (the unsharded
			// empty-prefix rule).
			return degradedErr
		}
		res.Partial = true
	}

	// Deterministic k-way merge under the (score, vertex) total order, then
	// per-shard accounting. Skip lists concatenate in shard order, which IS
	// ascending candidate order (ranges are contiguous).
	lists := make([][]Entry, len(resps))
	for i, sr := range resps {
		lists[i] = sr.Entries
	}
	res.Entries = mergeRanked(lists, plan.q.TopK)
	res.Shards = make([]ShardStatus, len(resps))
	for i, sr := range resps {
		res.Skipped = append(res.Skipped, sr.Skipped...)
		res.Shards[i] = ShardStatus{
			Shard:      i,
			Addr:       sr.addr,
			Candidates: sr.Candidates,
			Done:       sr.Done,
			Partial:    sr.err != nil,
			Err:        sr.Err,
			Duration:   sr.Duration,
		}
		tr.AddShard(obs.ShardSpan{
			Shard:      i,
			Addr:       sr.addr,
			Duration:   sr.Duration,
			Candidates: sr.Candidates,
			Done:       sr.Done,
			Partial:    sr.err != nil,
			Err:        sr.Err,
		})
	}
	tr.EndPhase("merge", obs.SpanStats{})
	res.Timing.Scoring += time.Since(mergeStart)
	return nil
}

// ShardStatus is one shard's per-query accounting on a sharded Result.
type ShardStatus struct {
	// Shard is the shard index in [0, S).
	Shard int
	// Addr is the remote shard's endpoint ("" for in-process shards).
	Addr string
	// Candidates is the size of the shard's candidate slice; Done counts
	// the candidates it fully scored (== Candidates for a healthy shard).
	Candidates, Done int
	// Partial marks a shard that contributed an exact-prefix partial
	// instead of completing; Err is its classified error text ("" for a
	// healthy shard).
	Partial bool
	Err     string
	// Duration is the shard's wall time for this query.
	Duration time.Duration
}
