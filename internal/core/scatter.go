package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/sparse"
	"netout/internal/xerr"
)

// The scatter–gather shard tier (ROADMAP item 1, single-process form). The
// candidate side of a query partitions into S contiguous target-type vertex
// ranges; each shard is a resident goroutine owning its own materializer
// view (a private arena view for PM/SPM, a warm-shared handle for the
// cached strategy) that scores its local candidates with the fused
// materialize+score loop into a bounded top-n heap. The reference side
// reduces ONCE on the coordinator via the refScorer and is broadcast
// read-only; the coordinator then performs a deterministic k-way merge of
// the per-shard rankings under the established (score, vertex) total order.
//
// Determinism contract, mirroring pipeline.go: for any shard count the
// sharded execution produces the SAME Entries and Skipped as unsharded
// execution, bit for bit.
//
//   - Scores: the reference reduction is built sequentially on the
//     coordinator in the sequential path's exact order, so the aggregate's
//     floating-point association is identical; each candidate's combination
//     arithmetic (queryScorers.score) replicates the sequential operations
//     operation for operation, and no arithmetic ever crosses candidates.
//   - Ranking: (score, vertex) is a strict total order over a query's
//     candidates (entryBefore), so the global top-k set and its sorted
//     order are unique, and a k-way merge of per-shard bounded top-k lists
//     reconstructs exactly what one selector over all candidates retains.
//   - Skipped: shard ranges are contiguous in the ascending candidate
//     order, so concatenating per-shard skip lists in shard order is the
//     sequential skip order.
//
// Degradation contract, mirroring guard.go: a shard whose execution expires
// its deadline or panics contributes the exact prefix of candidates it
// fully scored (NetOut only — prefix scores are exact because the measure
// is separable once the broadcast reference aggregate is fixed) and the
// query completes with Result.Partial=true plus per-shard accounting in
// Result.Shards, instead of failing. Cancellation never degrades, and
// non-degradable shard errors still fail the query. Unlike unsharded
// execution, a panic is isolated to the shard it struck: the other shards'
// work is exact and is returned.

// ShardProtocolVersion is the protocol revision stamped on every
// ShardRequest and ShardResponse. The structs below are deliberately
// transport-agnostic — plain data, no channels, no engine internals in the
// exported fields — so a follow-up can move shards behind a network
// boundary (ROADMAP item 5) by serializing exactly these messages; the
// version field is how a mixed-revision fleet detects skew instead of
// silently mis-merging.
const ShardProtocolVersion = 1

// ShardRequest is one shard's share of a scattered query: the full scoring
// configuration plus the shard's contiguous slice of the ascending
// candidate set. The reference side is NOT in the request — it reduces once
// on the coordinator and is broadcast alongside (in-process as the shared
// read-only queryScorers; over a wire it would serialize as one aggregate
// vector per feature path for the separable measures, or the reference
// vectors themselves for PathSim).
type ShardRequest struct {
	Version int
	// QueryID is the serving layer's request ID ("" outside serving).
	QueryID string
	// Shard is the target shard index in [0, S).
	Shard int
	// TopK bounds the shard's local selection (0 = unbounded); the
	// coordinator merges per-shard top-k lists into the global top k.
	TopK    int
	Measure Measure
	Combine Combination
	Weights []float64
	Paths   []metapath.Path
	// Candidates is this shard's contiguous range of the query's candidate
	// set. Ranges across shards are disjoint and cover the set in ascending
	// vertex order (hin.PartitionVertices).
	Candidates []hin.VertexID
}

// ShardResponse is one shard's reply: its local ranking plus the exact
// progress accounting the coordinator needs to merge or degrade.
type ShardResponse struct {
	Version int
	QueryID string
	Shard   int
	// Entries is the shard's bounded top-k over the candidates it scored,
	// ranked ascending under the (score, vertex) total order.
	Entries []Entry
	// Skipped lists processed candidates with zero visibility under every
	// feature path, in candidate order.
	Skipped []hin.VertexID
	// Candidates echoes the size of the shard's slice; Done counts the
	// candidates fully scored. On a clean run Done == Candidates; on a fault
	// Entries and Skipped cover exactly the Done-prefix, which is what a
	// degraded merge keeps.
	Candidates, Done int
	// Err and Code classify a shard failure ("" / empty on success). The
	// typed in-process error (e.g. *PanicError with its stack) travels
	// alongside for same-process callers; a network transport ships only
	// these two fields.
	Err  string
	Code xerr.Code
	// Stats is the shard's materializer delta for this request. For the
	// shared cached strategy the counters are global across shards and the
	// coordinator uses a whole-phase delta instead.
	Stats MatStats
	// Duration is the shard's wall time for this request.
	Duration time.Duration

	err error
}

// shardCall couples a versioned ShardRequest with the in-process execution
// state a network transport would reconstruct on its side of the wire: the
// query's context, the broadcast reference reduction, and the reply channel.
type shardCall struct {
	req     *ShardRequest
	ctx     context.Context
	scorers *queryScorers
	reply   chan<- *ShardResponse
}

// shardRunner is one resident shard: a long-lived goroutine owning a
// private materializer view, serving one shardCall at a time. There is no
// cross-shard locking on the hot path — a runner touches only its own view,
// selector and scratch; the only shared state is the read-only broadcast
// reduction (and, for the cached strategy, the internally-synchronized
// shared cache).
type shardRunner struct {
	id    int
	mat   Materializer
	calls chan *shardCall
}

// shardGroup is an engine's resident shard pool.
type shardGroup struct {
	runners []*shardRunner
	// statsShared mirrors the pipeline's accounting split: views of the
	// cached materializer share counters, so per-shard deltas would
	// multiply-count and the coordinator takes one whole-phase delta.
	statsShared bool
	closed      atomic.Bool
	wg          sync.WaitGroup
}

func newShardGroup(e *Engine, n int) (*shardGroup, error) {
	g := &shardGroup{runners: make([]*shardRunner, n)}
	_, g.statsShared = e.mat.(*cached)
	for i := range g.runners {
		view, err := NewView(e.mat)
		if err != nil {
			return nil, err
		}
		g.runners[i] = &shardRunner{id: i, mat: view, calls: make(chan *shardCall)}
	}
	for _, r := range g.runners {
		g.wg.Add(1)
		go func(r *shardRunner) {
			defer g.wg.Done()
			for call := range r.calls {
				call.reply <- r.serve(e, call)
			}
		}(r)
	}
	return g, nil
}

// close stops the runners and waits for them to exit. Idempotent.
func (g *shardGroup) close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	for _, r := range g.runners {
		close(r.calls)
	}
	g.wg.Wait()
}

// WithShards partitions query execution across n resident shards: the
// candidate set splits into n contiguous ranges, each scored by a dedicated
// goroutine with its own materializer view, and the results are k-way
// merged — bit-identical to unsharded execution for any n (see the
// determinism contract above). n <= 0 (the default) disables sharding;
// n == 1 runs the full scatter–gather machinery with a single shard, the
// honest baseline for measuring the tier's overhead. Sharded engines hold
// resident goroutines; release them with Close. Sharding replaces the
// intra-query chunk pipeline (WithQueryParallelism) when both are set.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.shards = n
	}
}

// Shards returns the configured shard count (0 = unsharded).
func (e *Engine) Shards() int { return e.shards }

// shardGroup lazily starts the engine's resident shard pool on first use.
// Construction failure (a materializer without concurrent views) declines
// sharding permanently and the engine runs unsharded, mirroring
// pipelineWorkers' fallback.
func (e *Engine) shardGroup() *shardGroup {
	if e.shards < 1 {
		return nil
	}
	e.shardOnce.Do(func() {
		if g, err := newShardGroup(e, e.shards); err == nil {
			e.shardGrp = g
		}
	})
	return e.shardGrp
}

// Close releases the engine's resident shard goroutines, waiting for them
// to exit. Engines without WithShards hold no resident resources and need
// no Close. Close is idempotent and nil-safe; executing queries on a closed
// sharded engine is a caller bug (it fails the query with a *PanicError,
// like any other panic).
func (e *Engine) Close() {
	if e == nil {
		return
	}
	e.shardOnce.Do(func() {}) // no group may start after Close
	if e.shardGrp != nil {
		e.shardGrp.close()
	}
}

// queryScorers is the broadcast reference reduction: one refScorer over the
// concatenated vectors (CombineConcat) or one per feature path
// (CombineAverage), built once on the coordinator and shared read-only by
// every shard. For NetOut/CosSim each refScorer is a single aggregate
// vector — the "one small message" the network transport will broadcast.
type queryScorers struct {
	concat  *refScorer
	perPath []*refScorer
	weights []float64
	stride  int32
}

func newQueryScorers(measure Measure, combine Combination, refPerPath [][]sparse.Vector, weights []float64, stride int32) *queryScorers {
	qs := &queryScorers{weights: weights, stride: stride}
	if combine == CombineConcat {
		qs.concat = newRefScorer(measure, concatVectors(refPerPath, weights, stride))
		return qs
	}
	qs.perPath = make([]*refScorer, len(refPerPath))
	for m := range refPerPath {
		qs.perPath[m] = newRefScorer(measure, refPerPath[m])
	}
	return qs
}

// score combines one candidate's per-path vectors into its outlier score,
// replicating the sequential combination arithmetic operation for operation
// (see executeQuery) so sharded scores are bit-identical. ok is false for a
// candidate with zero visibility under every path (skipped from ranking).
func (qs *queryScorers) score(vecs []sparse.Vector) (float64, bool) {
	if qs.concat != nil {
		s := qs.concat.score(concatOne(vecs, qs.weights, qs.stride))
		if math.IsNaN(s) {
			return 0, false
		}
		return s, true
	}
	var sum, sumW float64
	ok := false
	for m, rs := range qs.perPath {
		s := rs.score(vecs[m])
		if math.IsNaN(s) {
			continue
		}
		sum += qs.weights[m] * s
		sumW += qs.weights[m]
		ok = true
	}
	if !ok {
		return 0, false
	}
	if sumW > 0 {
		sum /= sumW
	}
	return sum, true
}

// serve scores the shard's candidate slice against the broadcast reference
// reduction: fused materialize+score per candidate, ascending order, into a
// bounded top-n heap. Failures never escape the shard — a panic or
// per-vertex error is recorded on the response together with the exact
// prefix of fully-scored candidates, so the coordinator can degrade the
// query instead of the fault killing it (or the process).
func (r *shardRunner) serve(e *Engine, call *shardCall) *ShardResponse {
	req := call.req
	start := time.Now()
	resp := &ShardResponse{
		Version:    ShardProtocolVersion,
		QueryID:    req.QueryID,
		Shard:      req.Shard,
		Candidates: len(req.Candidates),
	}
	base := r.mat.Stats()
	sel := newTopSelector(req.TopK)
	err := func() (err error) {
		defer recoverAsError(&err)
		vecs := make([]sparse.Vector, len(req.Paths))
		for i, v := range req.Candidates {
			for m := range req.Paths {
				if err := ctxErr(call.ctx); err != nil {
					return err
				}
				vec, mErr := r.mat.NeighborVector(req.Paths[m], v)
				if mErr != nil {
					return mErr
				}
				vecs[m] = vec
			}
			if s, ok := call.scorers.score(vecs); ok {
				sel.push(Entry{Vertex: v, Name: e.g.Name(v), Score: s})
			} else {
				resp.Skipped = append(resp.Skipped, v)
			}
			// A candidate interrupted mid-materialization is in neither
			// Entries nor Skipped; Done advances only past fully-scored ones,
			// so the response always describes an exact prefix.
			resp.Done = i + 1
		}
		return nil
	}()
	resp.Entries = sel.ranked()
	resp.Stats = r.mat.Stats().Sub(base)
	resp.Duration = time.Since(start)
	if err != nil {
		resp.err = err
		resp.Err = err.Error()
		resp.Code = xerr.CodeOf(err)
	}
	return resp
}

// executeSharded runs the materialize/score/rank phases of a planned query
// on the resident shard group, filling res in place. The trace records the
// scatter–gather phase shape — reduce (reference side, on the coordinator)
// → scatter (shard fan-out and local scoring) → merge (k-way merge and skip
// assembly) — with per-shard sub-spans folded into the trace, the wide
// event and Result.Shards.
func (e *Engine) executeSharded(ctx context.Context, plan *queryPlan, res *Result, tr *obs.Tracer, sg *shardGroup) error {
	cands, refs, paths, weights := plan.cands, plan.refs, plan.paths, plan.weights

	// Reference reduction, once on the coordinator: feature-major over the
	// reference set in the sequential path's exact order, so the broadcast
	// aggregate's floating-point association is bit-identical to unsharded
	// execution. A failure here fails the query whole — without the
	// reduction no shard has a scorer, so there is no prefix to keep.
	plan.ifq.SetPhase("reduce")
	matBefore := e.mat.Stats()
	cacheBefore, _ := CacheStatsOf(e.mat)
	refPerPath := make([][]sparse.Vector, len(paths))
	for m := range paths {
		refPerPath[m] = make([]sparse.Vector, len(refs))
		for j, v := range refs {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			vec, err := e.mat.NeighborVector(paths[m], v)
			if err != nil {
				return err
			}
			refPerPath[m][j] = vec
		}
	}
	scorers := newQueryScorers(e.measure, e.combine, refPerPath, weights, int32(e.g.NumVertices()))
	refPerPath = nil // scorers hold what they need; separable measures free Sr now
	d := e.mat.Stats().Sub(matBefore)
	cacheMid, _ := CacheStatsOf(e.mat)
	res.Timing.NotIndexed += d.TraversalTime
	res.Timing.Indexed += d.IndexedTime
	res.Timing.TraversedVectors += d.TraversedVectors
	res.Timing.IndexedVectors += d.IndexedVectors
	tr.EndPhase("reduce", obs.SpanStats{
		TraversedVectors: d.TraversedVectors,
		IndexedVectors:   d.IndexedVectors,
		CacheHits:        cacheMid.Hits - cacheBefore.Hits,
		CacheMisses:      cacheMid.Misses - cacheBefore.Misses,
	})

	// Scatter: one versioned request per shard over its contiguous range of
	// the ascending candidate set, then gather every reply. Shards always
	// reply — panics are recovered inside serve — so the gather cannot hang.
	plan.ifq.SetPhase("scatter")
	scatterBase := e.mat.Stats()
	ranges := hin.PartitionVertices(cands, len(sg.runners))
	reply := make(chan *ShardResponse, len(sg.runners))
	rid := obs.RequestIDFrom(ctx)
	for i, r := range sg.runners {
		r.calls <- &shardCall{
			req: &ShardRequest{
				Version:    ShardProtocolVersion,
				QueryID:    rid,
				Shard:      i,
				TopK:       plan.q.TopK,
				Measure:    e.measure,
				Combine:    e.combine,
				Weights:    weights,
				Paths:      paths,
				Candidates: ranges[i],
			},
			ctx:     ctx,
			scorers: scorers,
			reply:   reply,
		}
	}
	resps := make([]*ShardResponse, len(sg.runners))
	for range sg.runners {
		sr := <-reply
		resps[sr.Shard] = sr
	}
	var sd MatStats
	if sg.statsShared {
		sd = e.mat.Stats().Sub(scatterBase)
	} else {
		for _, sr := range resps {
			sd = sd.Add(sr.Stats)
		}
	}
	res.Timing.NotIndexed += sd.TraversalTime
	res.Timing.Indexed += sd.IndexedTime
	res.Timing.TraversedVectors += sd.TraversedVectors
	res.Timing.IndexedVectors += sd.IndexedVectors
	cacheAfter, _ := CacheStatsOf(e.mat)
	tr.EndPhase("scatter", obs.SpanStats{
		TraversedVectors: sd.TraversedVectors,
		IndexedVectors:   sd.IndexedVectors,
		CacheHits:        cacheAfter.Hits - cacheMid.Hits,
		CacheMisses:      cacheAfter.Misses - cacheMid.Misses,
	})

	// Classify shard failures. A deadline-expired or panicking shard
	// degrades under NetOut — its Done-prefix scores are exact — while
	// cancellation and real errors fail the query, exactly as unsharded
	// execution treats them (degradable in guard.go; panic isolation is the
	// shard tier's addition: the fault is confined to the shard it struck).
	plan.ifq.SetPhase("merge")
	mergeStart := time.Now()
	partial := false
	totalDone := 0
	var failErr, degradedErr error
	for _, sr := range resps {
		totalDone += sr.Done
		if sr.err == nil {
			continue
		}
		if e.measure == MeasureNetOut && (degradable(sr.err) || IsPanicError(sr.err)) {
			partial = true
			if degradedErr == nil {
				degradedErr = sr.err
			}
			continue
		}
		if failErr == nil {
			failErr = sr.err
		}
	}
	if failErr != nil {
		return failErr
	}
	if partial {
		if totalDone == 0 {
			// No shard completed any candidate: there is nothing to degrade
			// to, so the first failing shard's error stands (the unsharded
			// empty-prefix rule).
			return degradedErr
		}
		res.Partial = true
	}

	// Deterministic k-way merge under the (score, vertex) total order, then
	// per-shard accounting. Skip lists concatenate in shard order, which IS
	// ascending candidate order (ranges are contiguous).
	lists := make([][]Entry, len(resps))
	for i, sr := range resps {
		lists[i] = sr.Entries
	}
	res.Entries = mergeRanked(lists, plan.q.TopK)
	res.Shards = make([]ShardStatus, len(resps))
	for i, sr := range resps {
		res.Skipped = append(res.Skipped, sr.Skipped...)
		res.Shards[i] = ShardStatus{
			Shard:      i,
			Candidates: sr.Candidates,
			Done:       sr.Done,
			Partial:    sr.err != nil,
			Err:        sr.Err,
			Duration:   sr.Duration,
		}
		tr.AddShard(obs.ShardSpan{
			Shard:      i,
			Duration:   sr.Duration,
			Candidates: sr.Candidates,
			Done:       sr.Done,
			Partial:    sr.err != nil,
			Err:        sr.Err,
		})
	}
	tr.EndPhase("merge", obs.SpanStats{})
	res.Timing.Scoring += time.Since(mergeStart)
	return nil
}

// ShardStatus is one shard's per-query accounting on a sharded Result.
type ShardStatus struct {
	// Shard is the shard index in [0, S).
	Shard int
	// Candidates is the size of the shard's candidate slice; Done counts
	// the candidates it fully scored (== Candidates for a healthy shard).
	Candidates, Done int
	// Partial marks a shard that contributed an exact-prefix partial
	// instead of completing; Err is its classified error text ("" for a
	// healthy shard).
	Partial bool
	Err     string
	// Duration is the shard's wall time for this query.
	Duration time.Duration
}
