package core

// The scatter–gather shard tier's determinism contract (scatter.go): for
// ANY shard count, sharded execution must produce results bit-identical to
// unsharded execution — same entries, same Float64bits scores, same skip
// order — across measures, combinations, strategies, and cold vs warm
// caches. Tolerance-based comparison would hide exactly the bug class these
// tests exist to catch (re-associated floating point, differing tie-breaks),
// so scores compare via math.Float64bits. All tests here must pass under
// `go test -race -cpu 1,4`.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netout/internal/hin"
)

// bitIdentical is resultsEqual with zero tolerance: entry vertices, the
// Float64bits of every score, and the skip list must match exactly.
func bitIdentical(a, b *Result) bool {
	if len(a.Entries) != len(b.Entries) || len(a.Skipped) != len(b.Skipped) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i].Vertex != b.Entries[i].Vertex ||
			math.Float64bits(a.Entries[i].Score) != math.Float64bits(b.Entries[i].Score) {
			return false
		}
	}
	for i := range a.Skipped {
		if a.Skipped[i] != b.Skipped[i] {
			return false
		}
	}
	return true
}

// Sharded execution is bit-identical to unsharded for every shard count,
// measure and combination — including shard counts exceeding the candidate
// count, where trailing shards receive empty ranges.
func TestQuickShardCountsAgree(t *testing.T) {
	queries := []string{
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue : 2, author.paper.term : 1;`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue.paper.author TOP 5;`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		for _, m := range []Measure{MeasureNetOut, MeasurePathSim, MeasureCosSim} {
			for _, comb := range []Combination{CombineAverage, CombineConcat} {
				plain := NewEngine(g, WithMeasure(m), WithCombination(comb))
				for _, shards := range []int{1, 2, 3, 7} {
					eng := NewEngine(g, WithMeasure(m), WithCombination(comb), WithShards(shards))
					for _, src := range queries {
						want, err1 := plain.Execute(src)
						got, err2 := eng.Execute(src)
						if err1 != nil || err2 != nil {
							t.Logf("measure %v shards=%d %q: %v / %v", m, shards, src, err1, err2)
							eng.Close()
							return false
						}
						if !bitIdentical(want, got) {
							t.Logf("measure %v combine %v shards=%d diverges on %q:\nunsharded %+v\nsharded   %+v",
								m, comb, shards, src, want.Entries, got.Entries)
							eng.Close()
							return false
						}
					}
					eng.Close()
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Sharded execution is bit-identical under the indexed and cached
// strategies too — shard views share the PM index read-only and the warm
// cache itself — on both a cold and a warm cache.
func TestShardedStrategiesAgree(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(11)))
	src := `FIND OUTLIERS FROM author JUDGED BY author.paper.venue, author.paper.author TOP 5;`
	want, err := NewEngine(g).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	mats := map[string]func() Materializer{
		"pm": func() Materializer { return NewPM(g) },
		"cached": func() Materializer {
			m, err := NewCached(g, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
	}
	for name, mk := range mats {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				eng := NewEngine(g, WithMaterializer(mk()), WithShards(shards))
				defer eng.Close()
				for pass, label := range []string{"cold", "warm"} {
					got, err := eng.Execute(src)
					if err != nil {
						t.Fatalf("%s pass: %v", label, err)
					}
					if !bitIdentical(want, got) {
						t.Fatalf("%s pass (run %d) diverges:\nunsharded %+v\nsharded   %+v",
							label, pass, want.Entries, got.Entries)
					}
				}
			})
		}
	}
}

// The coordinator's k-way merge must retain exactly what one selector over
// the union retains, under the same (score, vertex) total order — with
// scores deliberately duplicated across shards so the vertex tie-break is
// what decides both membership and order at the top-k boundary.
func TestMergeRankedMatchesSelector(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nShards := 1 + r.Intn(5)
		n := r.Intn(40)
		k := r.Intn(12) // 0 = unbounded
		// Scores drawn from a 4-value palette force heavy duplication.
		palette := []float64{0, 0.25, 0.25, 0.5, 1}
		perShard := make([]*topSelector, nShards)
		for i := range perShard {
			perShard[i] = newTopSelector(k)
		}
		global := newTopSelector(k)
		for v := 0; v < n; v++ {
			e := Entry{Vertex: hin.VertexID(v), Score: palette[r.Intn(len(palette))]}
			perShard[r.Intn(nShards)].push(e)
			global.push(e)
		}
		lists := make([][]Entry, nShards)
		for i, s := range perShard {
			lists[i] = s.ranked()
		}
		got := mergeRanked(lists, k)
		want := global.ranked()
		if len(got) != len(want) {
			t.Logf("len = %d, want %d", len(got), len(want))
			return false
		}
		for i := range want {
			if got[i].Vertex != want[i].Vertex ||
				math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Logf("entry %d = %+v, want %+v", i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A sharded result carries full per-shard accounting: S statuses whose
// candidate counts partition |Sc|, all complete on a healthy run, and the
// trace records the scatter–gather phase shape (reduce → scatter → merge)
// with one shard sub-span per shard.
func TestShardedResultAccounting(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(3)))
	const shards = 3
	eng := NewEngine(g, WithShards(shards))
	defer eng.Close()
	if eng.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", eng.Shards(), shards)
	}
	res, err := eng.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != shards {
		t.Fatalf("len(res.Shards) = %d, want %d", len(res.Shards), shards)
	}
	total := 0
	for i, st := range res.Shards {
		if st.Shard != i {
			t.Errorf("Shards[%d].Shard = %d", i, st.Shard)
		}
		if st.Partial || st.Err != "" {
			t.Errorf("healthy shard %d marked partial: %+v", i, st)
		}
		if st.Done != st.Candidates {
			t.Errorf("shard %d: Done %d != Candidates %d", i, st.Done, st.Candidates)
		}
		total += st.Candidates
	}
	if total != res.CandidateCount {
		t.Errorf("shard candidates sum to %d, want |Sc| = %d", total, res.CandidateCount)
	}
	for _, phase := range []string{"parse", "validate", "plan", "reduce", "scatter", "merge"} {
		if _, ok := res.Trace.Span(phase); !ok {
			t.Errorf("trace missing %q span; spans = %+v", phase, res.Trace.Spans)
		}
	}
	if _, ok := res.Trace.Span("materialize"); ok {
		t.Error("sharded trace still records an unsharded materialize span")
	}
	if len(res.Trace.Shards) != shards {
		t.Errorf("len(Trace.Shards) = %d, want %d", len(res.Trace.Shards), shards)
	}
}

// An unsharded engine (WithShards(0) or the default) never starts a shard
// group and its results carry no shard accounting, while WithShards(1) runs
// the real single-shard scatter path; Close on any engine is safe and
// idempotent.
func TestUnshardedEngineHasNoShardState(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(5)))
	eng := NewEngine(g, WithShards(0))
	res, err := eng.Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 0 || len(res.Trace.Shards) != 0 {
		t.Fatalf("WithShards(0) produced shard accounting: %+v", res.Shards)
	}
	eng.Close()
	eng.Close() // idempotent

	one := NewEngine(g, WithShards(1))
	defer one.Close()
	res, err = one.Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 1 || res.Shards[0].Done != res.CandidateCount {
		t.Fatalf("WithShards(1) accounting = %+v, want one complete shard", res.Shards)
	}

	var nilEng *Engine
	nilEng.Close() // nil-safe
}
