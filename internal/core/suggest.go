package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/oql"
	"netout/internal/sparse"
)

// Feature suggestion implements the last extension Section 8 sketches:
// "the system might even be able to suggest how the users can modify their
// queries to get more interesting, or more unusual, outliers."
//
// Given a query, SuggestFeatures keeps its candidate and reference sets but
// tries every schema-valid alternative feature meta-path (up to a hop
// limit) and ranks them by how sharply they separate outliers: paths under
// which all candidates score alike are uninteresting, paths with a heavy
// low tail single out strong outliers.

// Suggestion is one alternative feature meta-path, with the evidence that
// ranks it.
type Suggestion struct {
	// Path is the dotted meta-path, directly usable in a JUDGED BY clause.
	Path string
	// Separation measures how strongly the path isolates its top outlier:
	// the ratio (median Ω + 1)/(min Ω + 1). 1 means no separation.
	Separation float64
	// Characterized is the fraction of candidates with non-zero visibility
	// under the path (paths that characterize almost nobody rank low even
	// with large separation).
	Characterized float64
	// TopOutlier and TopScore preview the path's strongest outlier.
	TopOutlier string
	TopScore   float64
}

// SuggestFeatures evaluates alternative feature meta-paths for the query's
// candidate/reference sets and returns them ranked, best first. maxHops
// bounds the explored path length (2 or 4 are sensible; values below 2 are
// raised to 2). The query's own feature paths are included in the ranking,
// so the user can see where their current choice stands.
func (e *Engine) SuggestFeatures(src string, maxHops int) ([]Suggestion, error) {
	q, err := oql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.SuggestFeaturesQuery(q, maxHops)
}

// SuggestFeaturesQuery is SuggestFeatures for a parsed query.
func (e *Engine) SuggestFeaturesQuery(q *oql.Query, maxHops int) ([]Suggestion, error) {
	if maxHops < 2 {
		maxHops = 2
	}
	candType, err := oql.Validate(q, e.g.Schema())
	if err != nil {
		return nil, err
	}
	cands, err := e.EvalSet(q.From)
	if err != nil {
		return nil, err
	}
	if len(cands) < 3 {
		return nil, fmt.Errorf("core: candidate set too small (%d) to rank feature paths", len(cands))
	}
	refs := cands
	if q.ComparedTo != nil {
		if refs, err = e.EvalSet(q.ComparedTo); err != nil {
			return nil, err
		}
	}

	var out []Suggestion
	for _, p := range metapath.Enumerate(e.g.Schema(), candType, 2, maxHops) {
		sug, ok, err := e.evaluateFeaturePath(p, cands, refs)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, sug)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		// Prefer sharply separating paths that still characterize most of
		// the candidate set.
		sa := out[a].Separation * out[a].Characterized
		sb := out[b].Separation * out[b].Characterized
		if sa != sb {
			return sa > sb
		}
		return out[a].Path < out[b].Path
	})
	return out, nil
}

func (e *Engine) evaluateFeaturePath(p metapath.Path, cands, refs []hin.VertexID) (Suggestion, bool, error) {
	refVecs := make([]sparse.Vector, len(refs))
	var err error
	for j, v := range refs {
		if refVecs[j], err = e.mat.NeighborVector(p, v); err != nil {
			return Suggestion{}, false, err
		}
	}
	candVecs := make([]sparse.Vector, len(cands))
	for i, v := range cands {
		if candVecs[i], err = e.mat.NeighborVector(p, v); err != nil {
			return Suggestion{}, false, err
		}
	}
	scores := ScoreVectors(e.measure, candVecs, refVecs)
	var finite []float64
	minIdx := -1
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		finite = append(finite, s)
		if minIdx < 0 || s < scores[minIdx] {
			minIdx = i
		}
	}
	if len(finite) < 3 {
		return Suggestion{}, false, nil
	}
	sort.Float64s(finite)
	median := finite[len(finite)/2]
	min := finite[0]
	sug := Suggestion{
		Path:          p.Dotted(e.g.Schema()),
		Separation:    (median + 1) / (min + 1),
		Characterized: float64(len(finite)) / float64(len(cands)),
		TopOutlier:    e.g.Name(cands[minIdx]),
		TopScore:      min,
	}
	return sug, true, nil
}

// FormatSuggestions renders suggestions for terminal display.
func FormatSuggestions(sugs []Suggestion, limit int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %12s %8s %-24s %s\n", "feature meta-path", "separation", "charac.", "top outlier", "Ω")
	for i, s := range sugs {
		if limit > 0 && i >= limit {
			break
		}
		fmt.Fprintf(&sb, "%-40s %12.2f %7.0f%% %-24s %.3f\n",
			s.Path, s.Separation, 100*s.Characterized, s.TopOutlier, s.TopScore)
	}
	return sb.String()
}
