package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"netout/internal/hin"
	"netout/internal/metapath"
)

// fig1Graph builds the Figure 1(b) network used throughout the metapath
// tests: Zoe authors five papers (two at ICDE, three at KDD); Liam
// coauthors two of them; Ava coauthors one plus an extra paper with Liam at
// KDD.
func fig1Graph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	b := hin.NewBuilder(s)
	add := func(t hin.TypeID, n string) hin.VertexID { return b.MustAddVertex(t, n) }
	ava, liam, zoe := add(a, "Ava"), add(a, "Liam"), add(a, "Zoe")
	add(a, "Hermit") // isolated author: zero visibility under any path
	icde, kdd := add(v, "ICDE"), add(v, "KDD")
	var papers []hin.VertexID
	for i := 1; i <= 6; i++ {
		papers = append(papers, add(p, fmt.Sprintf("p%d", i)))
	}
	for i := 0; i < 5; i++ {
		b.MustAddEdge(papers[i], zoe)
	}
	b.MustAddEdge(papers[0], icde)
	b.MustAddEdge(papers[1], icde)
	b.MustAddEdge(papers[2], kdd)
	b.MustAddEdge(papers[3], kdd)
	b.MustAddEdge(papers[4], kdd)
	b.MustAddEdge(papers[0], liam)
	b.MustAddEdge(papers[1], liam)
	b.MustAddEdge(papers[2], ava)
	b.MustAddEdge(papers[5], ava)
	b.MustAddEdge(papers[5], liam)
	b.MustAddEdge(papers[5], kdd)
	// Terms so that Q2/Q3-style queries have something to chew on.
	dm, db := add(tm, "mining"), add(tm, "database")
	b.MustAddEdge(papers[0], dm)
	b.MustAddEdge(papers[1], db)
	b.MustAddEdge(papers[2], dm)
	b.MustAddEdge(papers[5], db)
	return b.Build()
}

func TestExecuteBasicNetOut(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	res, err := e.Execute(`FIND OUTLIERS
FROM author{"Zoe"}.paper.author
JUDGED BY author.paper.venue
TOP 10;`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.CandidateCount != 3 || res.ReferenceCount != 3 {
		t.Fatalf("set sizes = %d/%d", res.CandidateCount, res.ReferenceCount)
	}
	// Hand-computed: Φ_APV(Zoe)=[ICDE:2,KDD:3], Φ(Liam)=[ICDE:2,KDD:1],
	// Φ(Ava)=[KDD:2]; S=[ICDE:4,KDD:6]; Ω(Zoe)=26/13=2, Ω(Liam)=14/5=2.8,
	// Ω(Ava)=12/4=3.
	wantOrder := []string{"Zoe", "Liam", "Ava"}
	wantScore := []float64{2, 2.8, 3}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %+v", res.Entries)
	}
	for i, e := range res.Entries {
		if e.Name != wantOrder[i] || math.Abs(e.Score-wantScore[i]) > 1e-12 {
			t.Errorf("entry %d = %s %.3f, want %s %.3f", i, e.Name, e.Score, wantOrder[i], wantScore[i])
		}
	}
	if res.Timing.Total <= 0 {
		t.Error("Total timing not recorded")
	}
}

func TestExecuteComparedTo(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	// Candidates: Zoe's coauthor set; reference: KDD authors only.
	res, err := e.Execute(`FIND OUTLIERS
FROM author{"Zoe"}.paper.author
COMPARED TO venue{"KDD"}.paper.author
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.ReferenceCount != 3 { // Zoe, Ava, Liam all have KDD papers
		t.Fatalf("ReferenceCount = %d", res.ReferenceCount)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %+v", res.Entries)
	}
}

func TestExecuteTopKTruncation(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	res, err := e.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue TOP 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Name != "Zoe" {
		t.Fatalf("entries = %+v", res.Entries)
	}
}

func TestExecuteSkipsZeroVisibility(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	// All authors, including the isolated Hermit.
	res, err := e.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 4 {
		t.Fatalf("CandidateCount = %d", res.CandidateCount)
	}
	if len(res.Skipped) != 1 {
		t.Fatalf("Skipped = %v", res.Skipped)
	}
	if g.Name(res.Skipped[0]) != "Hermit" {
		t.Fatalf("skipped vertex = %s", g.Name(res.Skipped[0]))
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %+v", res.Entries)
	}
}

func TestExecuteMultiFeatureWeights(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	single, err := e.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	other, err := e.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.author;`)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := e.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author
JUDGED BY author.paper.venue : 3.0, author.paper.author;`)
	if err != nil {
		t.Fatal(err)
	}
	// The combined score is the weighted average of the per-path scores.
	scoreOf := func(r *Result, name string) float64 {
		for _, e := range r.Entries {
			if e.Name == name {
				return e.Score
			}
		}
		t.Fatalf("%s missing from %+v", name, r.Entries)
		return 0
	}
	for _, name := range []string{"Ava", "Liam", "Zoe"} {
		want := (3*scoreOf(single, name) + scoreOf(other, name)) / 4
		if got := scoreOf(combined, name); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s combined = %g, want %g", name, got, want)
		}
	}
}

func TestExecuteSetOperators(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	check := func(src string, wantNames ...string) {
		t.Helper()
		q := fmt.Sprintf(`FIND OUTLIERS FROM %s JUDGED BY author.paper.venue;`, src)
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("Execute(%s): %v", src, err)
		}
		var got []string
		for _, en := range res.Entries {
			got = append(got, en.Name)
		}
		for _, v := range res.Skipped {
			got = append(got, g.Name(v))
		}
		if len(got) != len(wantNames) {
			t.Fatalf("%s -> %v, want %v", src, got, wantNames)
		}
		want := map[string]bool{}
		for _, n := range wantNames {
			want[n] = true
		}
		for _, n := range got {
			if !want[n] {
				t.Fatalf("%s -> unexpected %s (got %v)", src, n, got)
			}
		}
	}
	check(`venue{"ICDE"}.paper.author UNION venue{"KDD"}.paper.author`, "Ava", "Liam", "Zoe")
	check(`venue{"ICDE"}.paper.author INTERSECT venue{"KDD"}.paper.author`, "Liam", "Zoe")
	check(`venue{"KDD"}.paper.author EXCEPT venue{"ICDE"}.paper.author`, "Ava")
	check(`author EXCEPT author{"Hermit"}`, "Ava", "Liam", "Zoe")
}

func TestExecuteWhereCount(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	// Authors with at least 3 papers: only Zoe (5) and Liam (3).
	res, err := e.Execute(`FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) >= 3
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 2 {
		t.Fatalf("CandidateCount = %d, want 2", res.CandidateCount)
	}
	// Compound condition with OR and NOT.
	res, err = e.Execute(`FIND OUTLIERS FROM author AS A
WHERE COUNT(A.paper) >= 3 OR NOT COUNT(A.paper.venue) != 1
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	// Zoe(5 papers), Liam(3), plus Ava (venues = {KDD} -> count 1).
	if res.CandidateCount != 3 {
		t.Fatalf("CandidateCount = %d, want 3", res.CandidateCount)
	}
	// AND short-circuit path.
	res, err = e.Execute(`FIND OUTLIERS FROM author AS A
WHERE COUNT(A.paper) >= 3 AND COUNT(A.paper.venue) = 2
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 2 { // Zoe and Liam both span ICDE+KDD
		t.Fatalf("CandidateCount = %d, want 2", res.CandidateCount)
	}
}

func TestExecuteErrors(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	cases := []string{
		`FIND OUTLIERS FROM author{"Nobody"}.paper.author JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM person{"X"} JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY venue.paper.author;`,
		`syntactically wrong`,
	}
	for _, src := range cases {
		if _, err := e.Execute(src); err == nil {
			t.Errorf("Execute(%q) should fail", src)
		}
	}
	if _, err := e.CandidateSet(`FIND OUTLIERS FROM author{"Nobody"}.paper.author JUDGED BY author.paper.venue;`); err == nil {
		t.Error("CandidateSet with missing vertex should fail")
	}
}

func TestExecuteEmptyCandidateSet(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	res, err := e.Execute(`FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 100
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("empty candidate set should not error: %v", err)
	}
	if res.CandidateCount != 0 || len(res.Entries) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCandidateSet(t *testing.T) {
	g := fig1Graph(t)
	e := NewEngine(g)
	set, err := e.CandidateSet(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("set = %v", set)
	}
	for i := 1; i < len(set); i++ {
		if set[i-1] >= set[i] {
			t.Fatal("set not sorted")
		}
	}
}

// Table 2 executed end-to-end through the engine over an actual graph.
func TestTable2EndToEnd(t *testing.T) {
	s := hin.MustSchema("author", "paper", "venue")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	b := hin.NewBuilder(s)
	venues := map[string]hin.VertexID{}
	for _, name := range []string{"VLDB", "KDD", "STOC", "SIGGRAPH"} {
		venues[name] = b.MustAddVertex(v, name)
	}
	paperSeq := 0
	addAuthor := func(name string, counts map[string]int) {
		au := b.MustAddVertex(a, name)
		for ven, n := range counts {
			for i := 0; i < n; i++ {
				paperSeq++
				pp := b.MustAddVertex(p, fmt.Sprintf("paper%d", paperSeq))
				b.MustAddEdge(pp, au)
				b.MustAddEdge(pp, venues[ven])
			}
		}
	}
	refRecord := map[string]int{"VLDB": 10, "KDD": 10, "STOC": 1, "SIGGRAPH": 1}
	refNames := make([]string, 100)
	for i := range refNames {
		refNames[i] = fmt.Sprintf("Ref%03d", i)
		addAuthor(refNames[i], refRecord)
	}
	addAuthor("Sarah", refRecord)
	addAuthor("Rob", map[string]int{"KDD": 1, "STOC": 20, "SIGGRAPH": 20})
	addAuthor("Lucy", map[string]int{"KDD": 5, "STOC": 10, "SIGGRAPH": 10})
	addAuthor("Joe", map[string]int{"SIGGRAPH": 2})
	addAuthor("Emma", map[string]int{"SIGGRAPH": 30})
	g := b.Build()

	quotedRefs := make([]string, len(refNames))
	for i, n := range refNames {
		quotedRefs[i] = fmt.Sprintf("%q", n)
	}
	src := fmt.Sprintf(`FIND OUTLIERS
FROM author{"Sarah", "Rob", "Lucy", "Joe", "Emma"}
COMPARED TO author{%s}
JUDGED BY author.paper.venue;`, strings.Join(quotedRefs, ", "))

	want := map[Measure]map[string]float64{
		MeasureNetOut:  {"Sarah": 100, "Rob": 6.24, "Lucy": 31.11, "Joe": 50, "Emma": 3.33},
		MeasurePathSim: {"Sarah": 100, "Rob": 9.97, "Lucy": 32.79, "Joe": 1.94, "Emma": 5.44},
		MeasureCosSim:  {"Sarah": 100, "Rob": 12.43, "Lucy": 31.11 + 1.72, "Joe": 7.04, "Emma": 7.04},
	}
	want[MeasureCosSim]["Lucy"] = 32.83
	for m, exp := range want {
		e := NewEngine(g, WithMeasure(m))
		res, err := e.Execute(src)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got := map[string]float64{}
		for _, en := range res.Entries {
			got[en.Name] = en.Score
		}
		for name, w := range exp {
			if math.Abs(got[name]-w) > 0.005 {
				t.Errorf("%s(%s) = %.4f, want %.2f", m, name, got[name], w)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Strategy equivalence property tests

func randomBibGraph(r *rand.Rand) *hin.Graph {
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	b := hin.NewBuilder(s)
	nA, nV, nT, nP := 5+r.Intn(10), 3+r.Intn(4), 4+r.Intn(6), 10+r.Intn(20)
	var authors, venues, terms []hin.VertexID
	for i := 0; i < nA; i++ {
		authors = append(authors, b.MustAddVertex(a, fmt.Sprintf("A%d", i)))
	}
	for i := 0; i < nV; i++ {
		venues = append(venues, b.MustAddVertex(v, fmt.Sprintf("V%d", i)))
	}
	for i := 0; i < nT; i++ {
		terms = append(terms, b.MustAddVertex(tm, fmt.Sprintf("T%d", i)))
	}
	for i := 0; i < nP; i++ {
		pp := b.MustAddVertex(p, fmt.Sprintf("P%d", i))
		for j := 0; j <= r.Intn(3); j++ {
			b.MustAddEdge(pp, authors[r.Intn(nA)])
		}
		b.MustAddEdge(pp, venues[r.Intn(nV)])
		for j := 0; j <= r.Intn(4); j++ {
			b.MustAddEdge(pp, terms[r.Intn(nT)])
		}
	}
	return b.Build()
}

func randomQueries(r *rand.Rand, g *hin.Graph) []string {
	features := []string{
		"author.paper.venue",
		"author.paper.author",
		"author.paper.term",
		"author.paper.venue.paper.author", // 4 hops: even-length decomposition
		"author.paper.term.paper.venue",
		"author.paper",                         // 1 hop: below chunk size
		"author.paper.venue.paper",             // 3 hops: odd-length single-hop tail
		"author.paper.author.paper.term.paper", // 5 hops: two chunks + tail
	}
	a, _ := g.Schema().TypeByName("author")
	authors := g.VerticesOfType(a)
	var out []string
	for i := 0; i < 3; i++ {
		anchor := g.Name(authors[r.Intn(len(authors))])
		f := features[r.Intn(len(features))]
		src := fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY %s TOP 10;`, anchor, f)
		out = append(out, src)
	}
	return out
}

// All three strategies must produce identical rankings and scores
// (Section 6.2's optimizations are exact, not approximate).
func TestQuickStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		queries := randomQueries(r, g)
		base := NewEngine(g)
		pm := NewEngine(g, WithMaterializer(NewPM(g)))
		spmMat, err := NewSPM(g, queries, SPMConfig{Threshold: 0.3})
		if err != nil {
			t.Logf("NewSPM: %v", err)
			return false
		}
		spm := NewEngine(g, WithMaterializer(spmMat))
		for _, src := range queries {
			rb, err := base.Execute(src)
			if err != nil {
				t.Logf("baseline %q: %v", src, err)
				return false
			}
			for _, e2 := range []*Engine{pm, spm} {
				ro, err := e2.Execute(src)
				if err != nil {
					t.Logf("%s %q: %v", e2.Materializer().Strategy(), src, err)
					return false
				}
				if !resultsEqual(rb, ro) {
					t.Logf("%s diverges on %q:\nbase %+v\nother %+v",
						e2.Materializer().Strategy(), src, rb.Entries, ro.Entries)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func resultsEqual(a, b *Result) bool {
	if len(a.Entries) != len(b.Entries) || len(a.Skipped) != len(b.Skipped) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i].Vertex != b.Entries[i].Vertex ||
			math.Abs(a.Entries[i].Score-b.Entries[i].Score) > 1e-9 {
			return false
		}
	}
	for i := range a.Skipped {
		if a.Skipped[i] != b.Skipped[i] {
			return false
		}
	}
	return true
}

// All measures agree between baseline and PM (the strategies change only
// how Φ is materialized, never the scores).
func TestQuickMeasuresUnderPM(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		src := randomQueries(r, g)[0]
		for _, m := range []Measure{MeasureNetOut, MeasurePathSim, MeasureCosSim} {
			rb, err1 := NewEngine(g, WithMeasure(m)).Execute(src)
			rp, err2 := NewEngine(g, WithMeasure(m), WithMaterializer(NewPM(g))).Execute(src)
			if err1 != nil || err2 != nil {
				return false
			}
			if !resultsEqual(rb, rp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializerBookkeeping(t *testing.T) {
	g := fig1Graph(t)
	base := NewBaseline(g)
	if base.Strategy() != StrategyBaseline || base.IndexBytes() != 0 {
		t.Fatal("baseline metadata wrong")
	}
	pm := NewPM(g)
	if pm.Strategy() != StrategyPM {
		t.Fatal("PM strategy wrong")
	}
	if pm.IndexBytes() <= 0 {
		t.Fatal("PM index should have positive size")
	}
	spm := NewSPMVertices(g, nil)
	if spm.Strategy() != StrategySPM || spm.IndexBytes() != 0 {
		t.Fatal("empty SPM should have empty index")
	}
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	spm2 := NewSPMVertices(g, []hin.VertexID{zoe})
	if spm2.IndexBytes() <= 0 || spm2.IndexBytes() >= pm.IndexBytes() {
		t.Fatalf("SPM index size %d should be positive and below PM's %d",
			spm2.IndexBytes(), pm.IndexBytes())
	}

	// PM answers a length-2 query purely from the index.
	p, err := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	if err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()
	if _, err := pm.NeighborVector(p, zoe); err != nil {
		t.Fatal(err)
	}
	d := pm.Stats().Sub(before)
	if d.IndexedVectors != 1 || d.TraversedVectors != 0 {
		t.Fatalf("PM stats = %+v", d)
	}

	// Baseline traverses.
	before = base.Stats()
	if _, err := base.NeighborVector(p, zoe); err != nil {
		t.Fatal(err)
	}
	d = base.Stats().Sub(before)
	if d.TraversedVectors != 1 || d.IndexedVectors != 0 {
		t.Fatalf("baseline stats = %+v", d)
	}
}

func TestMaterializerErrors(t *testing.T) {
	g := fig1Graph(t)
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	for _, mat := range []Materializer{NewBaseline(g), NewPM(g), NewSPMVertices(g, nil)} {
		if _, err := mat.NeighborVector(metapath.Path{}, 0); err == nil {
			t.Errorf("%s: zero path should fail", mat.Strategy())
		}
		if _, err := mat.NeighborVector(p, hin.VertexID(9999)); err == nil {
			t.Errorf("%s: bad vertex should fail", mat.Strategy())
		}
		v, _ := g.VertexByName(mustType(t, g, "venue"), "KDD")
		if _, err := mat.NeighborVector(p, v); err == nil {
			t.Errorf("%s: type mismatch should fail", mat.Strategy())
		}
	}
	if _, err := NewSPM(g, []string{"bogus"}, SPMConfig{Threshold: 0.5}); err == nil {
		t.Error("SPM with unparsable init query should fail")
	}
	if _, err := NewSPM(g, nil, SPMConfig{Threshold: -1}); err == nil {
		t.Error("SPM with bad threshold should fail")
	}
}

func mustType(t *testing.T, g *hin.Graph, name string) hin.TypeID {
	t.Helper()
	id, ok := g.Schema().TypeByName(name)
	if !ok {
		t.Fatalf("type %q missing", name)
	}
	return id
}

func TestSPMFromInitQueries(t *testing.T) {
	g := fig1Graph(t)
	// Zoe appears in the candidate set of both queries; threshold 1.0 keeps
	// only vertices present in every candidate set.
	queries := []string{
		`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM author{"Liam"}.paper.author JUDGED BY author.paper.venue;`,
	}
	mat, err := NewSPM(g, queries, SPMConfig{Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if mat.IndexBytes() <= 0 {
		t.Fatal("SPM should have indexed the common coauthors")
	}
	full, err := NewSPM(g, queries, SPMConfig{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if full.IndexBytes() < mat.IndexBytes() {
		t.Fatalf("threshold 0 index (%d) should be at least as large as threshold 1 (%d)",
			full.IndexBytes(), mat.IndexBytes())
	}
}

func TestTemplatesAndQuerySets(t *testing.T) {
	g := fig1Graph(t)
	tpls := PaperTemplates()
	if len(tpls) != 3 || tpls[0].Name != "Q1" {
		t.Fatalf("templates = %+v", tpls)
	}
	names, err := RandomVertexNames(g, "author", 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	// Determinism.
	names2, _ := RandomVertexNames(g, "author", 5, 42)
	for i := range names {
		if names[i] != names2[i] {
			t.Fatal("RandomVertexNames not deterministic")
		}
	}
	if _, err := RandomVertexNames(g, "nosuch", 5, 1); err == nil {
		t.Error("unknown type should fail")
	}
	e := NewEngine(g)
	for _, tpl := range tpls {
		for _, src := range BuildQuerySet(tpl, names) {
			if _, err := e.Execute(src); err != nil {
				t.Errorf("%s query %q failed: %v", tpl.Name, src, err)
			}
		}
	}
	// Names with quotes and backslashes survive substitution.
	weird := Template{Name: "W", Text: `FIND OUTLIERS FROM author{}.paper.author JUDGED BY author.paper.venue;`}
	src := weird.Instantiate(`O'Brien "The \ Great"`)
	q := strings.Count(src, `\"`)
	if q != 2 {
		t.Fatalf("escaping wrong: %s", src)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyBaseline.String() != "Baseline" || StrategyPM.String() != "PM" ||
		StrategySPM.String() != "SPM" || Strategy(9).String() == "" {
		t.Error("Strategy.String misbehaves")
	}
}

// NetOut is invariant under graph relabeling: building the same logical
// network with a different vertex insertion order must produce identical
// rankings by name. This pins down that no code path depends on vertex ID
// order beyond tie-breaking (ties are broken by ID, so we use a fixture
// without score ties).
func TestQuickRelabelingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		type paper struct {
			venue   string
			authors []string
		}
		nA, nV := 4+r.Intn(5), 2+r.Intn(3)
		var papers []paper
		for i := 0; i < 12+r.Intn(10); i++ {
			p := paper{venue: fmt.Sprintf("V%d", r.Intn(nV))}
			for k := 0; k <= r.Intn(3); k++ {
				p.authors = append(p.authors, fmt.Sprintf("A%d", r.Intn(nA)))
			}
			papers = append(papers, p)
		}
		build := func(order []int) *hin.Graph {
			s := hin.MustSchema("author", "paper", "venue")
			a, _ := s.TypeByName("author")
			pt, _ := s.TypeByName("paper")
			v, _ := s.TypeByName("venue")
			s.AllowLink(pt, a)
			s.AllowLink(pt, v)
			b := hin.NewBuilder(s)
			for _, i := range order {
				p := papers[i]
				pv := b.MustAddVertex(pt, fmt.Sprintf("P%d", i))
				vv := b.MustAddVertex(v, p.venue)
				b.MustAddEdge(pv, vv)
				for _, au := range p.authors {
					av := b.MustAddVertex(a, au)
					b.MustAddEdge(pv, av)
				}
			}
			return b.Build()
		}
		fwd := make([]int, len(papers))
		for i := range fwd {
			fwd[i] = i
		}
		shuffled := append([]int(nil), fwd...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		g1, g2 := build(fwd), build(shuffled)
		src := `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`
		r1, err1 := NewEngine(g1).Execute(src)
		r2, err2 := NewEngine(g2).Execute(src)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(r1.Entries) != len(r2.Entries) {
			return false
		}
		scores1 := map[string]float64{}
		for _, e := range r1.Entries {
			scores1[e.Name] = e.Score
		}
		for _, e := range r2.Entries {
			if math.Abs(scores1[e.Name]-e.Score) > 1e-9 {
				t.Logf("%s: %g vs %g", e.Name, scores1[e.Name], e.Score)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
