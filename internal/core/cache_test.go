package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

func TestCachedBasics(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Strategy() != StrategyCached || StrategyCached.String() != "Cached" {
		t.Fatal("strategy metadata wrong")
	}
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")

	v1, err := mat.NeighborVector(p, zoe)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := mat.NeighborVector(p, zoe)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Equal(v2) {
		t.Fatal("cache returned different vector")
	}
	cs, ok := CacheStatsOf(mat)
	if !ok {
		t.Fatal("CacheStatsOf failed")
	}
	if cs.Hits != 1 || cs.Misses != 1 || cs.Bytes <= 0 {
		t.Fatalf("cache stats = %+v", cs)
	}
	st := mat.Stats()
	if st.IndexedVectors != 1 || st.TraversedVectors != 1 {
		t.Fatalf("mat stats = %+v", st)
	}
	if mat.IndexBytes() != cs.Bytes {
		t.Fatal("IndexBytes mismatch")
	}
	if _, ok := CacheStatsOf(NewBaseline(g)); ok {
		t.Error("CacheStatsOf on baseline should fail")
	}
}

func TestCachedErrors(t *testing.T) {
	g := fig1Graph(t)
	if _, err := NewCached(g, 0); err == nil {
		t.Error("zero cache size accepted")
	}
	mat, _ := NewCached(g, 1<<20)
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	if _, err := mat.NeighborVector(metapath.Path{}, 0); err == nil {
		t.Error("zero path accepted")
	}
	if _, err := mat.NeighborVector(p, hin.VertexID(9999)); err == nil {
		t.Error("bad vertex accepted")
	}
	v, _ := g.Schema().TypeByName("venue")
	kdd, _ := g.VertexByName(v, "KDD")
	if _, err := mat.NeighborVector(p, kdd); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestCachedEviction(t *testing.T) {
	g := fig1Graph(t)
	// A tiny cache that holds roughly one vector.
	mat, err := NewCached(g, 150)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	a, _ := g.Schema().TypeByName("author")
	var authors []hin.VertexID
	for _, n := range []string{"Ava", "Liam", "Zoe"} {
		v, _ := g.VertexByName(a, n)
		authors = append(authors, v)
	}
	for round := 0; round < 3; round++ {
		for _, v := range authors {
			if _, err := mat.NeighborVector(p, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs, _ := CacheStatsOf(mat)
	if cs.Evictions == 0 {
		t.Fatalf("expected evictions with a tiny cache: %+v", cs)
	}
	if mat.IndexBytes() > 150 {
		t.Fatalf("cache exceeded its budget: %d", mat.IndexBytes())
	}
}

// Cached results must equal baseline results on random graphs and queries.
func TestQuickCachedAgreesWithBaseline(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		cachedMat, err := NewCached(g, 1<<16)
		if err != nil {
			return false
		}
		base := NewEngine(g)
		withCache := NewEngine(g, WithMaterializer(cachedMat))
		for _, src := range randomQueries(r, g) {
			// Run twice to exercise both the miss and hit paths.
			for k := 0; k < 2; k++ {
				rb, err1 := base.Execute(src)
				rc, err2 := withCache.Execute(src)
				if err1 != nil || err2 != nil {
					return false
				}
				if !resultsEqual(rb, rc) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNewViewCachedSharesWarmState(t *testing.T) {
	g := fig1Graph(t)
	mat, _ := NewCached(g, 1<<20)
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	want, err := mat.NeighborVector(p, zoe) // warm the cache through the original
	if err != nil {
		t.Fatal(err)
	}

	view, err := NewView(mat)
	if err != nil {
		t.Fatal(err)
	}
	if view.Strategy() != StrategyCached {
		t.Fatal("view strategy wrong")
	}
	if view.IndexBytes() != mat.IndexBytes() || view.IndexBytes() == 0 {
		t.Fatalf("view bytes %d != original %d: warm state not shared",
			view.IndexBytes(), mat.IndexBytes())
	}
	// The view must answer from the warm entry, not by traversal.
	before := view.Stats()
	got, err := view.NeighborVector(p, zoe)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("view returned a different vector")
	}
	d := view.Stats().Sub(before)
	if d.IndexedVectors != 1 || d.TraversedVectors != 0 {
		t.Fatalf("view lookup stats = %+v, want a pure index hit", d)
	}
	// Stats are aggregated over all views: both handles see the same totals.
	vs, _ := CacheStatsOf(view)
	ms, _ := CacheStatsOf(mat)
	if vs != ms {
		t.Fatalf("view stats %+v != original stats %+v", vs, ms)
	}
	if vs.Hits != 1 || vs.Misses != 1 {
		t.Fatalf("aggregated stats = %+v, want 1 hit / 1 miss", vs)
	}
	// Warming flows the other way too: entries inserted through the view
	// are visible to the original handle.
	liam, _ := g.VertexByName(a, "Liam")
	if _, err := view.NeighborVector(p, liam); err != nil {
		t.Fatal(err)
	}
	before = mat.Stats()
	if _, err := mat.NeighborVector(p, liam); err != nil {
		t.Fatal(err)
	}
	if d := mat.Stats().Sub(before); d.TraversedVectors != 0 {
		t.Fatalf("original re-traversed a view-warmed entry: %+v", d)
	}
}

// A minimal deterministic check of the singleflight follower path: a do()
// call that finds a registered flight must wait for it and return the
// leader's result without running its own fn. WaitGroup semantics make
// this order-independent (Done before Wait is fine), so no sleeps.
func TestFlightGroupCoalesces(t *testing.T) {
	var fg flightGroup
	leader := &flightCall{}
	leader.wg.Add(1)
	fg.mu.Lock()
	fg.m = map[ckey]*flightCall{{path: "k"}: leader}
	fg.mu.Unlock()

	type res struct {
		vec sparse.Vector
		err error
	}
	done := make(chan res)
	go func() {
		vec, err := fg.do(ckey{path: "k"}, func() (sparse.Vector, error) {
			t.Error("follower ran its own fn")
			return sparse.Vector{}, nil
		})
		done <- res{vec, err}
	}()
	leader.vec = sparse.Vector{Idx: []int32{7}, Val: []float64{3}}
	leader.wg.Done()
	r := <-done
	if r.err != nil || !r.vec.Equal(leader.vec) {
		t.Fatalf("follower got %v, %v", r.vec, r.err)
	}
	// A fresh key runs fn exactly once and unregisters afterwards.
	ran := 0
	vec, err := fg.do(ckey{path: "fresh"}, func() (sparse.Vector, error) {
		ran++
		return sparse.Vector{Idx: []int32{1}, Val: []float64{1}}, nil
	})
	if err != nil || ran != 1 || vec.IsZero() {
		t.Fatalf("leader path: ran=%d vec=%v err=%v", ran, vec, err)
	}
	fg.mu.Lock()
	if len(fg.m) != 1 { // only the hand-registered "k" remains
		t.Errorf("flight map not cleaned up: %d entries", len(fg.m))
	}
	fg.mu.Unlock()
}

// Shared-cache stress: ≥8 goroutines hammer one cache (both the original
// handle and views) with overlapping keys under a budget small enough to
// force constant eviction. Run under -race. Afterwards every counter
// invariant must hold exactly:
//
//	hits + misses == total NeighborVector calls
//	misses == TraversedVectors (singleflight: one traversal per miss)
//	hits   == IndexedVectors
//	Bytes  == re-summed entry sizes, and ≤ maxBytes
func TestSharedCacheConcurrentStress(t *testing.T) {
	g := fig1Graph(t)
	const maxBytes = 400 // a handful of entries: evictions guaranteed
	mat, err := NewCached(g, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Schema().TypeByName("author")
	authors := g.VerticesOfType(a)[:3] // Ava, Liam, Zoe (skip Hermit: zero Φ is fine but keep keys hot)
	var paths []metapath.Path
	for _, dotted := range []string{"author.paper.venue", "author.paper.author", "author.paper.term", "author.paper.venue.paper.author"} {
		p, err := metapath.ParseDotted(g.Schema(), dotted)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	const (
		workers = 8
		rounds  = 300
	)
	want := make(map[ckey]sparse.Vector)
	base := NewBaseline(g)
	for _, p := range paths {
		for _, v := range authors {
			vec, err := base.NeighborVector(p, v)
			if err != nil {
				t.Fatal(err)
			}
			want[cacheKey(p, v)] = vec
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		m := Materializer(mat)
		if w%2 == 1 { // half the workers go through views
			if m, err = NewView(mat); err != nil {
				t.Fatal(err)
			}
		}
		wg.Add(1)
		go func(w int, m Materializer) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				p := paths[r.Intn(len(paths))]
				v := authors[r.Intn(len(authors))]
				vec, err := m.NeighborVector(p, v)
				if err != nil {
					errCh <- err
					return
				}
				if !vec.Equal(want[cacheKey(p, v)]) {
					errCh <- fmt.Errorf("worker %d: wrong vector for %v/%d", w, p, v)
					return
				}
			}
		}(w, m)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	cs, ok := CacheStatsOf(mat)
	if !ok {
		t.Fatal("CacheStatsOf failed")
	}
	st := mat.Stats()
	total := int64(workers * rounds)
	if cs.Hits+cs.Misses != total {
		t.Fatalf("hits %d + misses %d != %d calls", cs.Hits, cs.Misses, total)
	}
	if cs.Misses != st.TraversedVectors {
		t.Fatalf("misses %d != traversed %d: singleflight accounting broken", cs.Misses, st.TraversedVectors)
	}
	if cs.Hits != st.IndexedVectors {
		t.Fatalf("hits %d != indexed %d", cs.Hits, st.IndexedVectors)
	}
	if cs.Evictions == 0 {
		t.Fatalf("expected evictions under a %d-byte budget: %+v", maxBytes, cs)
	}
	// Byte accounting survives eviction churn exactly.
	state := mat.(*cached).state
	if got := state.recomputeBytes(); got != cs.Bytes {
		t.Fatalf("atomic bytes %d != recomputed %d", cs.Bytes, got)
	}
	if cs.Bytes > maxBytes {
		t.Fatalf("cache exceeded its budget after settling: %d > %d", cs.Bytes, maxBytes)
	}
}

// ---------------------------------------------------------------------------
// Index persistence

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	g := fig1Graph(t)
	pm := NewPM(g)
	var buf bytes.Buffer
	if err := SaveIndex(pm, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(g, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Strategy() != StrategyPM {
		t.Fatalf("strategy = %v", loaded.Strategy())
	}
	if loaded.IndexBytes() != pm.IndexBytes() {
		t.Fatalf("index size %d != original %d", loaded.IndexBytes(), pm.IndexBytes())
	}
	// Loaded index answers queries identically.
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`
	want, err := NewEngine(g, WithMaterializer(pm)).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEngine(g, WithMaterializer(loaded)).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(want, got) {
		t.Fatal("loaded index diverges")
	}
	// Loaded index must be answered from the index, not traversal.
	before := loaded.Stats()
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	if _, err := loaded.NeighborVector(p, zoe); err != nil {
		t.Fatal(err)
	}
	d := loaded.Stats().Sub(before)
	if d.IndexedVectors != 1 || d.TraversedVectors != 0 {
		t.Fatalf("loaded index stats = %+v", d)
	}
}

func TestIndexFileHelpers(t *testing.T) {
	g := fig1Graph(t)
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	spm := NewSPMVertices(g, []hin.VertexID{zoe})
	path := filepath.Join(t.TempDir(), "index.noix")
	if err := SaveIndexFile(spm, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndexFile(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Strategy() != StrategySPM || loaded.IndexBytes() != spm.IndexBytes() {
		t.Fatal("SPM round trip failed")
	}
	if _, err := LoadIndexFile(g, filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	if err := SaveIndexFile(NewBaseline(g), path); err == nil {
		t.Error("baseline index save accepted")
	}
}

func TestIndexLoadErrors(t *testing.T) {
	g := fig1Graph(t)
	pm := NewPM(g)
	var buf bytes.Buffer
	if err := SaveIndex(pm, &buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX0123456789"),
		"truncated": good[:len(good)/2],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadIndex(g, bytes.NewReader(data)); err == nil {
				t.Error("corrupt index accepted")
			}
		})
	}
	// Graph mismatch.
	g2 := fig1Graph(t)
	b := hin.NewBuilder(g2.Schema())
	a, _ := g2.Schema().TypeByName("author")
	b.MustAddVertex(a, "Extra")
	other := b.Build()
	if _, err := LoadIndex(other, bytes.NewReader(good)); err == nil ||
		!strings.Contains(err.Error(), "different graph") {
		t.Errorf("graph mismatch not detected: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Parallel PM

func TestNewPMParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomBibGraph(r)
	seq := NewPM(g)
	par := NewPMParallel(g, 4)
	if par.Strategy() != StrategyPM {
		t.Fatal("strategy wrong")
	}
	if par.IndexBytes() != seq.IndexBytes() {
		t.Fatalf("index sizes differ: %d vs %d", par.IndexBytes(), seq.IndexBytes())
	}
	for _, src := range randomQueries(r, g) {
		rs, err1 := NewEngine(g, WithMaterializer(seq)).Execute(src)
		rp, err2 := NewEngine(g, WithMaterializer(par)).Execute(src)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !resultsEqual(rs, rp) {
			t.Fatalf("parallel PM diverges on %q", src)
		}
	}
	// workers <= 0 defaults to GOMAXPROCS.
	def := NewPMParallel(g, 0)
	if def.IndexBytes() != seq.IndexBytes() {
		t.Fatal("default-worker PM diverges")
	}
}

// ---------------------------------------------------------------------------
// Histogram

func TestHistogram(t *testing.T) {
	scores := []float64{1, 1.1, 1.2, 5, 5.1, 5.2, 5.3, 9.9}
	h, err := NewHistogram(scores, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 1 || h.Max != 9.9 || h.Total != 8 {
		t.Fatalf("histogram = %+v", h)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 8 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 4 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	out := h.Render(20)
	if !strings.Contains(out, "█") || !strings.Contains(out, "8 scores") {
		t.Fatalf("render = %q", out)
	}
	if out2 := h.Render(0); !strings.Contains(out2, "█") {
		t.Fatal("default bar width broken")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("empty scores accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	nan := []float64{1, 2, 3}
	nan = append(nan, []float64{0 / zero(), inf()}...)
	h, err := NewHistogram(nan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 3 {
		t.Fatalf("NaN/Inf not dropped: %+v", h)
	}
	// All-identical scores: single bin takes everything.
	h, err = NewHistogram([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[3] != 3 {
		t.Fatalf("degenerate histogram = %+v", h)
	}
}

func zero() float64 { return 0 }
func inf() float64  { return 1 / zero() }

func TestResultScoreHistogram(t *testing.T) {
	g := fig1Graph(t)
	res, err := NewEngine(g).Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.ScoreHistogram(2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 3 {
		t.Fatalf("histogram total = %d", h.Total)
	}
	if h.Render(10) == "" {
		t.Error("empty render")
	}
}

// An SPM index with no materialized vertices must fall back to traversal
// for length-2 paths (the traverseFrontier path) and still agree with the
// baseline bit for bit.
func TestIndexedMaterializerTraversalFallback(t *testing.T) {
	g := fig1Graph(t)
	empty := NewSPMVertices(g, nil) // nothing indexed
	base := NewBaseline(g)
	a, _ := g.Schema().TypeByName("author")
	for _, dotted := range []string{"author.paper.venue", "author.paper.author", "author.paper.venue.paper.author"} {
		p, err := metapath.ParseDotted(g.Schema(), dotted)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range g.VerticesOfType(a) {
			want, err1 := base.NeighborVector(p, v)
			got, err2 := empty.NeighborVector(p, v)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !want.Equal(got) {
				t.Fatalf("fallback diverges for %s on %s: %v vs %v", dotted, g.Name(v), got, want)
			}
		}
	}
	st := empty.Stats()
	if st.TraversedVectors == 0 || st.IndexedVectors != 0 {
		t.Fatalf("fallback stats = %+v", st)
	}
}

func TestEngineAccessors(t *testing.T) {
	g := fig1Graph(t)
	pm := NewPM(g)
	eng := NewEngine(g, WithMeasure(MeasureCosSim), WithMaterializer(pm), WithCombination(CombineConcat))
	if eng.Graph() != g {
		t.Error("Graph accessor wrong")
	}
	if eng.Measure() != MeasureCosSim {
		t.Error("Measure accessor wrong")
	}
	if eng.Materializer() != pm {
		t.Error("Materializer accessor wrong")
	}
	if eng.Combination() != CombineConcat {
		t.Error("Combination accessor wrong")
	}
}

// failWriter errors after n bytes, exercising SaveIndex's write error paths.
type failWriter struct{ remaining int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, fmt.Errorf("synthetic write failure")
	}
	n := len(p)
	if n > w.remaining {
		n = w.remaining
	}
	w.remaining -= n
	if n < len(p) {
		return n, fmt.Errorf("synthetic write failure")
	}
	return n, nil
}

func TestSaveIndexWriteFailures(t *testing.T) {
	g := fig1Graph(t)
	pm := NewPM(g)
	// Probe several truncation points: header, path table, vector payload.
	for _, budget := range []int{0, 2, 10, 40, 100, 500} {
		if err := SaveIndex(pm, &failWriter{remaining: budget}); err == nil {
			t.Errorf("budget %d: write failure not propagated", budget)
		}
	}
	// A big enough budget succeeds.
	var buf bytes.Buffer
	if err := SaveIndex(pm, &buf); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(pm, &failWriter{remaining: buf.Len()}); err != nil {
		t.Fatalf("exact budget should succeed: %v", err)
	}
}
