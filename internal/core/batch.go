package core

import (
	"context"
	"runtime"
	"sync"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/xerr"
)

// Batch execution answers the paper's third motivating challenge — "data
// analysts need to obtain results promptly" — for workloads of many
// queries: queries are independent, so a worker pool with per-worker
// engines processes them in parallel. Pre-materialized indexes are shared
// read-only across workers via views (the index is immutable after
// construction; only the per-materializer statistics are worker-local).
// Cached materializers are shared warm: every view references the same
// shard set, so one worker's miss is every other worker's hit.

// NewView returns a materializer that shares m's pre-computed state but is
// safe to use concurrently with other views of m:
//
//   - baseline: no shared state; the view is a fresh baseline.
//   - PM/SPM: the immutable index is shared; traversal scratch space and
//     statistics are private to the view.
//   - cached: the view references the SAME shard set, singleflight group
//     and counters, so warm entries and stats are shared across views
//     (the whole point of the online-discovery strategy in a concurrent
//     workload). The shared cache is internally synchronized.
func NewView(m Materializer) (Materializer, error) {
	if v, ok := m.(viewable); ok {
		return v.view()
	}
	switch v := m.(type) {
	case *baseline:
		return NewBaseline(v.tr.Graph()), nil
	case *indexedMaterializer:
		return &indexedMaterializer{
			tr:       metapath.NewTraverser(v.tr.Graph()),
			ix:       v.ix,
			strategy: v.strategy,
		}, nil
	case *cached:
		return &cached{state: v.state}, nil
	}
	return nil, xerr.Newf(xerr.Internal, "core: cannot create a concurrent view of %T", m)
}

// viewable lets a materializer outside the built-in set supply its own
// concurrent views. This is the seam the fault-injection harness wraps real
// materializers through (faultinject_test.go); the built-in strategies use
// the type switch above.
type viewable interface {
	view() (Materializer, error)
}

// BatchOptions configures ExecuteBatch.
type BatchOptions struct {
	// Workers is the pool size (default: GOMAXPROCS).
	Workers int
	// Measure is the outlierness measure (default MeasureNetOut).
	Measure Measure
	// Combination is the multi-path combination mode (default average).
	Combination Combination
	// Materializer, if set, is the shared strategy whose index the workers
	// reuse through views; nil means each worker gets its own baseline.
	Materializer Materializer
	// QueryParallelism bounds each worker engine's intra-query pipeline
	// (WithQueryParallelism). Default 1: the batch already parallelizes
	// across queries, so per-query fan-out would oversubscribe the machine.
	QueryParallelism int
	// Obs and SlowLog, if set, are wired into every worker engine: each
	// query observes its latency, phase breakdown and outcome into Obs and
	// offers itself to SlowLog (see Engine's WithObs).
	Obs     *obs.Registry
	SlowLog *obs.SlowLog
	// Context, if set, cancels the whole batch: dispatch stops at the next
	// query, in-flight queries abort at per-vertex granularity, and entries
	// never dispatched report ctx.Err(). nil means the batch runs to
	// completion.
	Context context.Context
}

// BatchResult pairs one query's outcome with its position and any error.
type BatchResult struct {
	Index  int
	Result *Result
	Err    error
}

// ExecuteBatch runs the queries in parallel and returns per-query results
// in input order. Individual query failures are reported per entry, not as
// a global error; the global error covers setup problems only.
func ExecuteBatch(g *hin.Graph, queries []string, opts BatchOptions) ([]BatchResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) && len(queries) > 0 {
		workers = len(queries)
	}
	queryPar := opts.QueryParallelism
	if queryPar <= 0 {
		queryPar = 1
	}
	results := make([]BatchResult, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	engines := make([]*Engine, workers)
	for w := 0; w < workers; w++ {
		var mat Materializer
		if opts.Materializer != nil {
			view, err := NewView(opts.Materializer)
			if err != nil {
				return nil, err
			}
			mat = view
		} else {
			mat = NewBaseline(g)
		}
		engines[w] = NewEngine(g,
			WithMeasure(opts.Measure),
			WithCombination(opts.Combination),
			WithMaterializer(mat),
			WithQueryParallelism(queryPar),
			WithObs(opts.Obs, opts.SlowLog))
	}
	if opts.Obs != nil && opts.Materializer != nil {
		RegisterMaterializerMetrics(opts.Obs, opts.Materializer)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for i := range jobs {
				// Panic isolation: a panicking query becomes that entry's
				// *PanicError and the worker moves on, so one hostile query
				// neither kills the process nor silently drops the rest of
				// its worker's share of the batch.
				var res *Result
				err := func() (err error) {
					defer recoverAsError(&err)
					res, err = eng.ExecuteContext(ctx, queries[i])
					return err
				}()
				results[i] = BatchResult{Index: i, Result: res, Err: err}
			}
		}(engines[w])
	}
dispatch:
	for i := range queries {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// The caller is gone: stop feeding workers and mark everything
			// not yet dispatched. Indices i.. are never sent, so these
			// writes cannot race a worker's.
			for j := i; j < len(queries); j++ {
				results[j] = BatchResult{Index: j, Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return results, nil
}
