package core

import (
	"math"
	"testing"

	"netout/internal/sparse"
)

// venueVec builds a neighbor vector over the four venues of Table 1,
// coordinates 0..3 = VLDB, KDD, STOC, SIGGRAPH.
func venueVec(vldb, kdd, stoc, siggraph float64) sparse.Vector {
	return sparse.FromMap(map[int32]float64{0: vldb, 1: kdd, 2: stoc, 3: siggraph})
}

// table1 returns the candidate vectors of Table 1 (in order Sarah, Rob,
// Lucy, Joe, Emma) and the 100-author reference set.
func table1() (cands []sparse.Vector, refs []sparse.Vector, names []string) {
	cands = []sparse.Vector{
		venueVec(10, 10, 1, 1), // Sarah
		venueVec(0, 1, 20, 20), // Rob
		venueVec(0, 5, 10, 10), // Lucy
		venueVec(0, 0, 0, 2),   // Joe
		venueVec(0, 0, 0, 30),  // Emma
	}
	refs = make([]sparse.Vector, 100)
	for i := range refs {
		refs[i] = venueVec(10, 10, 1, 1)
	}
	names = []string{"Sarah", "Rob", "Lucy", "Joe", "Emma"}
	return
}

// TestTable2Scores reproduces Table 2 of the paper exactly (values are the
// paper's, rounded to two decimals).
func TestTable2Scores(t *testing.T) {
	cands, refs, names := table1()
	want := map[Measure][]float64{
		MeasureNetOut:  {100, 6.24, 31.11, 50, 3.33},
		MeasurePathSim: {100, 9.97, 32.79, 1.94, 5.44},
		MeasureCosSim:  {100, 12.43, 32.83, 7.04, 7.04},
	}
	for m, exp := range want {
		got := ScoreVectors(m, cands, refs)
		for i := range exp {
			if math.Abs(got[i]-exp[i]) > 0.005 {
				t.Errorf("%s(%s) = %.4f, want %.2f", m, names[i], got[i], exp[i])
			}
		}
	}
}

// TestTable2Qualitative checks the measure-behaviour claims of Section 5.2:
// NetOut does not flag low-visibility Joe, while PathSim and CosSim rank
// him among the strongest outliers; Emma (high visibility, unusual venues)
// is flagged by NetOut.
func TestTable2Qualitative(t *testing.T) {
	cands, refs, _ := table1()
	netout := ScoreVectors(MeasureNetOut, cands, refs)
	pathsim := ScoreVectors(MeasurePathSim, cands, refs)
	cossim := ScoreVectors(MeasureCosSim, cands, refs)

	const (
		sarah = 0
		rob   = 1
		lucy  = 2
		joe   = 3
		emma  = 4
	)
	// NetOut: Emma < Rob < Lucy < Joe < Sarah.
	if !(netout[emma] < netout[rob] && netout[rob] < netout[lucy] &&
		netout[lucy] < netout[joe] && netout[joe] < netout[sarah]) {
		t.Errorf("NetOut ordering wrong: %v", netout)
	}
	// PathSim ranks Joe as the single strongest outlier.
	for i, s := range pathsim {
		if i != joe && s <= pathsim[joe] {
			t.Errorf("PathSim should rank Joe lowest, got %v", pathsim)
		}
	}
	// CosSim cannot distinguish Joe from Emma (same direction).
	if math.Abs(cossim[joe]-cossim[emma]) > 1e-9 {
		t.Errorf("CosSim should tie Joe and Emma: %v", cossim)
	}
}

// TestFigure2NormalizedConnectivity reproduces the Figure 2 example:
// σ(Jim, Mary) = 0.5 and σ(Mary, Jim) = 2.
func TestFigure2NormalizedConnectivity(t *testing.T) {
	jim := sparse.FromMap(map[int32]float64{0: 4, 1: 2, 2: 6})
	mary := sparse.FromMap(map[int32]float64{0: 2, 1: 1, 2: 3})
	if k := jim.Dot(mary); k != 28 {
		t.Fatalf("connectivity = %g, want 28", k)
	}
	if s := NormalizedConnectivity(jim, mary); s != 0.5 {
		t.Fatalf("σ(Jim,Mary) = %g, want 0.5", s)
	}
	if s := NormalizedConnectivity(mary, jim); s != 2 {
		t.Fatalf("σ(Mary,Jim) = %g, want 2", s)
	}
	// Self normalized connectivity is always 1.
	if s := NormalizedConnectivity(jim, jim); s != 1 {
		t.Fatalf("σ(Jim,Jim) = %g, want 1", s)
	}
}

func TestPairwiseMeasures(t *testing.T) {
	a := sparse.FromMap(map[int32]float64{0: 3})
	b := sparse.FromMap(map[int32]float64{0: 4})
	if got := PathSim(a, b); math.Abs(got-2*12.0/25) > 1e-12 {
		t.Errorf("PathSim = %g", got)
	}
	if got := CosSim(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("CosSim = %g, want 1", got)
	}
	var zero sparse.Vector
	if !math.IsNaN(NormalizedConnectivity(zero, b)) {
		t.Error("σ with zero visibility should be NaN")
	}
	if !math.IsNaN(PathSim(zero, zero)) {
		t.Error("PathSim of two zero vectors should be NaN")
	}
	if !math.IsNaN(CosSim(zero, b)) {
		t.Error("CosSim with a zero vector should be NaN")
	}
	if PathSim(zero, b) != 0 {
		t.Error("PathSim with one zero vector should be 0")
	}
}

func TestScoreVectorsZeroVisibility(t *testing.T) {
	refs := []sparse.Vector{sparse.FromMap(map[int32]float64{0: 1})}
	cands := []sparse.Vector{{}, sparse.FromMap(map[int32]float64{0: 2})}
	for _, m := range []Measure{MeasureNetOut, MeasurePathSim, MeasureCosSim} {
		got := ScoreVectors(m, cands, refs)
		if !math.IsNaN(got[0]) {
			t.Errorf("%s: zero-visibility candidate should be NaN, got %g", m, got[0])
		}
		if math.IsNaN(got[1]) {
			t.Errorf("%s: normal candidate should be finite", m)
		}
	}
}

// NetOut's fast path (Equation (1)) must agree with the naive pairwise
// definition Ω(vi) = Σ_j σ(vi, vj).
func TestNetOutEquationOneMatchesNaive(t *testing.T) {
	cands, refs, _ := table1()
	fast := ScoreVectors(MeasureNetOut, cands, refs)
	for i, c := range cands {
		var naive float64
		for _, r := range refs {
			naive += NormalizedConnectivity(c, r)
		}
		if math.Abs(fast[i]-naive) > 1e-9 {
			t.Errorf("candidate %d: fast %g vs naive %g", i, fast[i], naive)
		}
	}
	// Same for the CosSim separable path.
	fastCos := ScoreVectors(MeasureCosSim, cands, refs)
	for i, c := range cands {
		var naive float64
		for _, r := range refs {
			naive += CosSim(c, r)
		}
		if math.Abs(fastCos[i]-naive) > 1e-9 {
			t.Errorf("cossim candidate %d: fast %g vs naive %g", i, fastCos[i], naive)
		}
	}
}

func TestParseMeasure(t *testing.T) {
	for name, want := range map[string]Measure{
		"netout": MeasureNetOut, "NetOut": MeasureNetOut,
		"pathsim": MeasurePathSim, "PathSim": MeasurePathSim,
		"cossim": MeasureCosSim, "cosine": MeasureCosSim,
	} {
		got, err := ParseMeasure(name)
		if err != nil || got != want {
			t.Errorf("ParseMeasure(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMeasure("lof"); err == nil {
		t.Error("unknown measure should fail")
	}
	if MeasureNetOut.String() != "NetOut" || Measure(9).String() == "" {
		t.Error("Measure.String misbehaves")
	}
}
