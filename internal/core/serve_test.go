package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

func TestServePoolMatchesSerialEngine(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomBibGraph(r)
	var queries []string
	for len(queries) < 9 {
		queries = append(queries, randomQueries(r, g)...)
	}
	serial := NewEngine(g)
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := serial.Execute(q)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		want[i] = res
	}

	mat, err := NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewServePool(g, ServeOptions{Workers: 4, Materializer: mat})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Hammer the pool from more goroutines than workers, each running the
	// whole workload; every result must match the serial engine.
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, q := range queries {
				res, err := pool.Execute(context.Background(), q)
				if err != nil {
					errCh <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
				if !resultsEqual(res, want[i]) {
					errCh <- fmt.Errorf("client %d query %d: result differs from serial engine", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := pool.Stats()
	if st.Served != int64(clients*len(queries)) || st.Failed != 0 {
		t.Fatalf("stats = %+v, want %d served / 0 failed", st, clients*len(queries))
	}
	if st.MeanExecute() <= 0 {
		t.Fatalf("stats = %+v, want positive mean execute time", st)
	}
	if mean := st.MeanQueueWait(); mean < 0 {
		t.Fatalf("negative mean queue wait %v", mean)
	}
	// Means are totals divided by completed-query count.
	if want := st.Execute / time.Duration(st.Served+st.Failed); st.MeanExecute() != want {
		t.Fatalf("MeanExecute = %v, want %v", st.MeanExecute(), want)
	}
	// Workers share one warm cache through views: repeated workloads must
	// be overwhelmingly cache hits.
	cs, ok := CacheStatsOf(mat)
	if !ok {
		t.Fatal("CacheStatsOf failed")
	}
	if cs.Hits <= cs.Misses {
		t.Fatalf("shared cache not warm across workers: %+v", cs)
	}
}

func TestServePoolContextAndClose(t *testing.T) {
	g := fig1Graph(t)
	pool, err := NewServePool(g, ServeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`

	// A cancelled context aborts instead of executing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Execute(ctx, src); err == nil {
		t.Fatal("cancelled Execute should fail")
	}
	// A nil context works (treated as Background).
	if _, err := pool.Execute(nil, src); err != nil { //nolint:staticcheck
		t.Fatalf("nil-context Execute: %v", err)
	}
	// A query failure is reported to the caller and counted as failed,
	// without poisoning the pool.
	if _, err := pool.Execute(context.Background(), `FIND OUTLIERS FROM author{"Nobody"} JUDGED BY author.paper.venue;`); err == nil {
		t.Fatal("bad query should fail")
	}
	if res, err := pool.Execute(context.Background(), src); err != nil || len(res.Entries) == 0 {
		t.Fatalf("pool unusable after a failed query: %v", err)
	}
	st := pool.Stats()
	if st.Served != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want 2 served / 1 failed", st)
	}

	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Execute(context.Background(), src); err == nil {
		t.Fatal("Execute after Close should fail")
	}
}

func TestServeStatsMeansGuardZeroCounts(t *testing.T) {
	var zero ServeStats
	if zero.MeanQueueWait() != 0 || zero.MeanExecute() != 0 {
		t.Fatalf("zero-count means must be 0, got %v / %v", zero.MeanQueueWait(), zero.MeanExecute())
	}
	st := ServeStats{Served: 3, Failed: 1, QueueWait: 8 * time.Millisecond, Execute: 20 * time.Millisecond}
	if st.MeanQueueWait() != 2*time.Millisecond || st.MeanExecute() != 5*time.Millisecond {
		t.Fatalf("means = %v / %v", st.MeanQueueWait(), st.MeanExecute())
	}
}

func TestServePoolDefaultsAndErrors(t *testing.T) {
	g := fig1Graph(t)
	// Default worker count and baseline materializer.
	pool, err := NewServePool(g, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := pool.Execute(context.Background(), `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`); err != nil || len(res.Entries) == 0 {
		t.Fatalf("default pool: %v", err)
	}
	pool.Close()

	// A materializer that cannot be viewed is a setup error.
	if _, err := NewServePool(g, ServeOptions{Materializer: badMaterializer{}}); err == nil {
		t.Fatal("unviewable materializer should fail pool construction")
	}
}

// badMaterializer is a foreign implementation NewView cannot make a
// concurrent view of.
type badMaterializer struct{}

func (badMaterializer) NeighborVector(metapath.Path, hin.VertexID) (sparse.Vector, error) {
	return sparse.Vector{}, nil
}
func (badMaterializer) Strategy() Strategy { return StrategyBaseline }
func (badMaterializer) IndexBytes() int64  { return 0 }
func (badMaterializer) Stats() MatStats    { return MatStats{} }
