package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"netout/internal/hin"
	"netout/internal/metapath"
)

// The cost-based planner behind the subpath cache (ROADMAP item 2, Atrapos-
// style): before materializing Φ_P it decides, per hop, which expansion
// kernel to run and which intermediate frontiers are worth persisting, from
// live statistics the system already collects — per-(type,type) mean degrees
// sampled from the graph, type cardinalities and ID spans, and the cache's
// own hit-rate feedback. Decisions are deliberately conservative about
// bit-identity: kernels are interchangeable (all three are property-tested
// bit-equal), and persist/skip changes only which work is reused, so no
// planner choice can alter a result — only its cost.

// planChoice enumerates the planner's recorded decisions, exported as
// netout_plan_decisions_total{choice=...}.
type planChoice int

const (
	// planFullTraverse: a cache miss found no usable prefix and traversed
	// the whole path from the source vertex.
	planFullTraverse planChoice = iota
	// planPrefixResume: a miss resumed from a cached prefix frontier.
	planPrefixResume
	// planPersistIntermediate: an intermediate frontier was persisted for
	// future paths to resume from.
	planPersistIntermediate
	// planKernelAuto / planKernelDense / planKernelMap: per-hop kernel
	// choices made while building a plan. Auto means the frontier estimate
	// is small enough that the per-hop adaptive heuristic (which sees the
	// real NNZ) should decide; dense/map are pinned from the estimates.
	planKernelAuto
	planKernelDense
	planKernelMap

	planChoiceCount
)

func (c planChoice) String() string {
	switch c {
	case planFullTraverse:
		return "full-traverse"
	case planPrefixResume:
		return "prefix-resume"
	case planPersistIntermediate:
		return "persist-intermediate"
	case planKernelAuto:
		return "kernel-auto"
	case planKernelDense:
		return "kernel-dense"
	case planKernelMap:
		return "kernel-map"
	}
	return "unknown"
}

// Planner cost-model constants.
const (
	// plannerReplanEvery bounds plan staleness: a memoized plan is rebuilt
	// after this many loads, picking up drifted hit rates and warmup exit.
	plannerReplanEvery = 1024
	// plannerDegreeSample caps the vertices sampled per (from, to) type pair
	// when estimating mean degree, so planning stays O(1) in graph size.
	plannerDegreeSample = 4096
	// plannerWarmupLoads is the optimistic-persist window: below this many
	// loads the cache has no meaningful hit-rate signal yet, and refusing to
	// persist would be a self-fulfilling prophecy (nothing cached → no hits
	// → nothing cached).
	plannerWarmupLoads = 256
	// plannerMinHitRate is the reuse signal required to keep persisting
	// intermediates after warmup.
	plannerMinHitRate = 0.02
	// plannerMinWorkSaved is the minimum estimated edges a prefix resume
	// must skip for its boundary to be worth a cache slot — boundaries
	// cheaper than this are recomputed faster than they are looked up.
	plannerMinWorkSaved = 16
	// plannerEntryShare caps one persisted intermediate at 1/plannerEntryShare
	// of the cache budget: a single huge frontier must not evict the long
	// tail of small, highly-reusable entries.
	plannerEntryShare = 64
	// plannerBytesPerNNZ is the storage cost estimate per frontier
	// coordinate (int32 index + float64 value), plus fixed entry overhead.
	plannerBytesPerNNZ = 12
	plannerEntryFixed  = 64
)

// pathPlan is the planner's memoized decision set for one meta-path.
type pathPlan struct {
	// builtAt is the planner load count when the plan was built (staleness).
	builtAt int64
	// est[h] is the estimated frontier NNZ after h hops (est[0] = 1).
	est []float64
	// kernels[h] is the expansion kernel for hop h (KernelAuto defers to the
	// per-hop adaptive heuristic).
	kernels []metapath.Kernel
	// persist[b], for 2 <= b < Len, marks the prefix of b types worth
	// persisting when traversal passes its boundary.
	persist []bool
	// summary is the rendered plan line stamped into traces and wide events.
	summary string
}

// Planner picks subpath-evaluation plans from live graph and cache
// statistics. It is safe for concurrent use; plans are memoized per path
// and rebuilt every plannerReplanEvery loads.
type Planner struct {
	g        *hin.Graph
	st       *sharedCacheState // hit-rate feedback; nil for standalone use
	maxBytes int64

	mu      sync.Mutex
	meanDeg map[uint16]float64 // (from<<8 | to) -> sampled mean out-degree
	plans   map[string]*pathPlan

	loads     atomic.Int64
	decisions [planChoiceCount]atomic.Int64
}

// newPlanner wires a planner to a cache's shared state (internal: NewCached
// builds one when the subpath cache is enabled).
func newPlanner(g *hin.Graph, st *sharedCacheState) *Planner {
	return &Planner{
		g:        g,
		st:       st,
		maxBytes: st.maxBytes,
		meanDeg:  make(map[uint16]float64),
		plans:    make(map[string]*pathPlan),
	}
}

// NewPlanner builds a standalone planner over g with the given cache byte
// budget, without hit-rate feedback (reuse is assumed). For tests and
// tooling; NewCached(WithSubpathCache()) wires the feedback-connected one.
func NewPlanner(g *hin.Graph, cacheBytes int64) *Planner {
	return &Planner{
		g:        g,
		maxBytes: cacheBytes,
		meanDeg:  make(map[uint16]float64),
		plans:    make(map[string]*pathPlan),
	}
}

// planFor returns the current plan for p, counting one load against the
// replan cadence.
func (pl *Planner) planFor(p metapath.Path) *pathPlan {
	return pl.plan(p, pl.loads.Add(1))
}

// PlanSummary returns the rendered plan line for p — what the engine stamps
// into the query trace and wide event — without counting a load.
func (pl *Planner) PlanSummary(p metapath.Path) string {
	if p.IsZero() {
		return ""
	}
	return pl.plan(p, pl.loads.Load()).summary
}

// DecisionCounts returns the cumulative decision counters by choice label,
// matching the netout_plan_decisions_total metric family.
func (pl *Planner) DecisionCounts() map[string]int64 {
	out := make(map[string]int64, int(planChoiceCount))
	for c := planChoice(0); c < planChoiceCount; c++ {
		out[c.String()] = pl.decisions[c].Load()
	}
	return out
}

func (pl *Planner) count(c planChoice) { pl.decisions[c].Add(1) }

func (pl *Planner) plan(p metapath.Path, loads int64) *pathPlan {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pp, ok := pl.plans[p.Key()]; ok && loads-pp.builtAt < plannerReplanEvery {
		return pp
	}
	pp := pl.buildLocked(p, loads)
	pl.plans[p.Key()] = pp
	return pp
}

// buildLocked constructs a plan: frontier-size estimates by mean-degree
// products capped at type cardinality, kernels from the estimates, persist
// boundaries from the work-saved/bytes trade-off under the reuse signal.
func (pl *Planner) buildLocked(p metapath.Path, loads int64) *pathPlan {
	hops := p.Hops()
	est := make([]float64, hops+1)
	est[0] = 1
	kernels := make([]metapath.Kernel, hops)
	// cumEdges[h] estimates the edges traversed to complete hops 0..h-1 —
	// the work a resume from the boundary after hop h-1 skips.
	cumEdges := make([]float64, hops+1)
	for h := 0; h < hops; h++ {
		from, to := p.Type(h), p.Type(h+1)
		deg := pl.meanDegLocked(from, to)
		e := est[h] * deg
		if lim := float64(pl.g.NumVerticesOfType(to)); e > lim {
			e = lim
		}
		est[h+1] = e
		cumEdges[h+1] = cumEdges[h] + est[h]*deg
		kernels[h] = pl.kernelFor(est[h], to)
	}
	persist := make([]bool, p.Len())
	reuse := pl.reuseLikely(loads)
	for b := 2; b < p.Len(); b++ {
		bytesEst := int64(est[b-1]*plannerBytesPerNNZ) + plannerEntryFixed
		persist[b] = reuse &&
			cumEdges[b-1] >= plannerMinWorkSaved &&
			bytesEst <= pl.maxBytes/plannerEntryShare
	}
	pp := &pathPlan{builtAt: loads, est: est, kernels: kernels, persist: persist}
	pp.summary = renderPlan(p, pp, reuse)
	return pp
}

// meanDegLocked samples the mean out-degree from type `from` to type `to`,
// memoized per pair. A stride over the type's vertex list keeps the sample
// spread across the ID range instead of biased to the low IDs.
func (pl *Planner) meanDegLocked(from, to hin.TypeID) float64 {
	k := uint16(from)<<8 | uint16(to)
	if d, ok := pl.meanDeg[k]; ok {
		return d
	}
	vs := pl.g.VerticesOfType(from)
	n := len(vs)
	if n == 0 {
		pl.meanDeg[k] = 0
		return 0
	}
	if n > plannerDegreeSample {
		n = plannerDegreeSample
	}
	step := len(vs) / n
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(pl.g.Degree(vs[i*step], to))
	}
	d := sum / float64(n)
	pl.meanDeg[k] = d
	return d
}

// kernelFor picks the expansion kernel for a hop whose frontier NNZ is
// estimated at nnz. Small estimates defer to the adaptive heuristic (which
// reads the real NNZ and may pick the merge path); larger ones are pinned
// to dense or map under exactly the span guard the heuristic itself uses,
// so a misestimate can cost time but never an unbounded scratch allocation.
func (pl *Planner) kernelFor(nnz float64, to hin.TypeID) metapath.Kernel {
	if nnz <= metapath.MergeMaxFrontier {
		pl.count(planKernelAuto)
		return metapath.KernelAuto
	}
	if lo, hi, ok := pl.g.TypeIDSpan(to); ok && int64(hi)-int64(lo) < metapath.MaxDenseSpan {
		pl.count(planKernelDense)
		return metapath.KernelDense
	}
	pl.count(planKernelMap)
	return metapath.KernelMap
}

// reuseLikely reports whether persisted intermediates can expect reuse:
// optimistically yes during warmup (no signal yet), afterwards only while
// the cache's observed hit rate clears the floor. A standalone planner
// (no cache state) always assumes reuse.
func (pl *Planner) reuseLikely(loads int64) bool {
	if pl.st == nil || loads <= plannerWarmupLoads {
		return true
	}
	hits, misses := pl.st.hits.Load(), pl.st.misses.Load()
	total := hits + misses
	return total == 0 || float64(hits)/float64(total) >= plannerMinHitRate
}

// renderPlan formats one plan as a single trace/event line, e.g.
//
//	plan (0 1 0 1 0): est=[1 3 9 27 81] kernels=[auto dense dense dense] persist=[3 4]
func renderPlan(p metapath.Path, pp *pathPlan, reuse bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s: est=[", p.String())
	for i, e := range pp.est {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.0f", e)
	}
	sb.WriteString("] kernels=[")
	for i, k := range pp.kernels {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(k.String())
	}
	sb.WriteString("] persist=[")
	first := true
	for b, on := range pp.persist {
		if !on {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", b)
		first = false
	}
	sb.WriteString("]")
	if !reuse {
		sb.WriteString(" (reuse unlikely: persistence off)")
	}
	return sb.String()
}
