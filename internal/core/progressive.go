package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/oql"
	"netout/internal/sparse"
	"netout/internal/xerr"
)

// Progressive query execution implements the extension sketched in
// Section 8: "the system could find the approximate top-k outliers, with
// confidences, while the query is being processed so that users can
// determine whether to continue processing the query."
//
// NetOut is a sum over the reference set, Ω(vi) = Σ_{vj∈Sr} σ(vi,vj), so a
// uniform random sample of Sr yields an unbiased estimator
// Ω̂(vi) = (|Sr|/m)·Σ_{sampled} σ(vi,vj). The executor processes the
// (shuffled) reference set in chunks; after each chunk it reports the
// current top-k estimates with a CLT confidence half-width computed over
// the per-chunk contributions. The estimate is exact once every reference
// vertex has been processed.

// ProgressiveEstimate is one candidate's running estimate.
type ProgressiveEstimate struct {
	Vertex hin.VertexID
	Name   string
	// Score is the current unbiased estimate of Ω.
	Score float64
	// HalfWidth is the ~95% confidence half-width of Score (0 when the
	// estimate is exact or too few chunks have been seen to estimate
	// variance).
	HalfWidth float64
}

// ProgressiveSnapshot reports the state after one chunk of the reference
// set has been processed.
type ProgressiveSnapshot struct {
	// ProcessedRefs and TotalRefs track reference-set progress.
	ProcessedRefs, TotalRefs int
	// Exact is true on the final snapshot, when all references have been
	// processed and scores equal the non-progressive execution exactly.
	Exact bool
	// TopK holds the current best estimates, most outlying first,
	// truncated to the query's TOP k (all candidates if the query has none).
	TopK []ProgressiveEstimate
}

// ProgressiveOptions configures ExecuteProgressive.
type ProgressiveOptions struct {
	// ChunkSize is the number of reference vertices processed between
	// snapshots (default 64).
	ChunkSize int
	// Seed shuffles the reference set (default 1). Any seed yields an
	// unbiased sample order.
	Seed int64
	// OnSnapshot, if set, receives every snapshot; returning false stops
	// processing early and the last snapshot's estimates are returned.
	OnSnapshot func(ProgressiveSnapshot) bool
}

// StopWhenStable returns an OnSnapshot callback that stops processing once
// the identity of the top-k estimates has not changed for `rounds`
// consecutive snapshots — an automatic answer to the paper's "users can
// determine whether to continue processing the query". Wrap an existing
// callback to observe snapshots too (inner may be nil).
func StopWhenStable(k, rounds int, inner func(ProgressiveSnapshot) bool) func(ProgressiveSnapshot) bool {
	if k < 1 {
		k = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	var prev []hin.VertexID
	stable := 0
	return func(s ProgressiveSnapshot) bool {
		if inner != nil && !inner(s) {
			return false
		}
		n := k
		if n > len(s.TopK) {
			n = len(s.TopK)
		}
		cur := make([]hin.VertexID, n)
		for i := 0; i < n; i++ {
			cur[i] = s.TopK[i].Vertex
		}
		same := len(cur) == len(prev)
		if same {
			for i := range cur {
				if cur[i] != prev[i] {
					same = false
					break
				}
			}
		}
		if same {
			stable++
		} else {
			stable = 0
			prev = cur
		}
		return stable < rounds
	}
}

// ExecuteProgressive runs a query progressively. It supports single-feature
// queries under the NetOut measure (the separable sum the estimator needs);
// multi-feature queries are combined with CombineConcat semantics, which
// also reduce to a single separable sum.
//
// The returned result's entries come from the last snapshot taken; they are
// exact if processing was not stopped early (Result.Partial marks results
// built from a non-final snapshot).
func (e *Engine) ExecuteProgressive(src string, opts ProgressiveOptions) (*Result, error) {
	return e.ExecuteProgressiveContext(context.Background(), src, opts)
}

// ExecuteProgressiveContext is ExecuteProgressive with cancellation, checked
// at per-vertex granularity like the engine's other executors. A deadline
// that expires after at least one snapshot degrades gracefully: the last
// snapshot's estimates are returned with Result.Partial=true (the
// progressive estimator exists precisely to have a usable answer at every
// prefix); cancellation and pre-snapshot deadlines return the context error.
func (e *Engine) ExecuteProgressiveContext(ctx context.Context, src string, opts ProgressiveOptions) (*Result, error) {
	q, err := oql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.ExecuteQueryProgressiveContext(ctx, q, opts)
}

// ExecuteQueryProgressive is ExecuteProgressive for a parsed query.
func (e *Engine) ExecuteQueryProgressive(q *oql.Query, opts ProgressiveOptions) (*Result, error) {
	return e.ExecuteQueryProgressiveContext(context.Background(), q, opts)
}

// ExecuteQueryProgressiveContext is ExecuteProgressiveContext for a parsed
// query.
func (e *Engine) ExecuteQueryProgressiveContext(ctx context.Context, q *oql.Query, opts ProgressiveOptions) (*Result, error) {
	if e.measure != MeasureNetOut {
		return nil, xerr.Newf(xerr.InvalidArgument, "core: progressive execution supports the NetOut measure only (engine uses %s)", e.measure)
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = 64
	}
	start := time.Now()
	if _, err := oql.Validate(q, e.g.Schema()); err != nil {
		return nil, err
	}

	setStart := time.Now()
	cands, err := e.EvalSetContext(ctx, q.From)
	if err != nil {
		return nil, err
	}
	refs := cands
	if q.ComparedTo != nil {
		refs, err = e.EvalSetContext(ctx, q.ComparedTo)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{CandidateCount: len(cands), ReferenceCount: len(refs)}
	res.Timing.SetRetrieval = time.Since(setStart)

	// Materialize candidate vectors (combined across features when needed).
	weights := make([]float64, len(q.Features))
	paths := make([]metapath.Path, len(q.Features))
	for m, f := range q.Features {
		p, err := metapath.FromNames(e.g.Schema(), f.Segments...)
		if err != nil {
			return nil, err
		}
		paths[m] = p
		weights[m] = f.Weight
	}
	stride := int32(e.g.NumVertices())
	combinedVec := func(v hin.VertexID) (sparse.Vector, error) {
		if len(paths) == 1 {
			return e.mat.NeighborVector(paths[0], v)
		}
		perPath := make([][]sparse.Vector, len(paths))
		for m := range paths {
			vec, err := e.mat.NeighborVector(paths[m], v)
			if err != nil {
				return sparse.Vector{}, err
			}
			perPath[m] = []sparse.Vector{vec}
		}
		return concatVectors(perPath, weights, stride)[0], nil
	}

	candVecs := make([]sparse.Vector, len(cands))
	visibility := make([]float64, len(cands))
	for i, v := range cands {
		// No degradation here: without every candidate's Φ there are no
		// estimates at all, so a context error is a hard stop.
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if candVecs[i], err = combinedVec(v); err != nil {
			return nil, err
		}
		visibility[i] = candVecs[i].Norm2Sq()
		if visibility[i] == 0 {
			res.Skipped = append(res.Skipped, v)
		}
	}

	// Shuffle the reference set for unbiased sampling.
	order := make([]int, len(refs))
	for i := range order {
		order[i] = i
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})

	n := len(refs)
	processed := 0
	partialSum := make([]float64, len(cands)) // Σ per-reference dot contributions
	chunkSumSq := make([]float64, len(cands)) // Σ (per-ref contribution)² for variance
	var lastSnapshot ProgressiveSnapshot

	emit := func() bool {
		exact := processed == n
		snap := ProgressiveSnapshot{
			ProcessedRefs: processed,
			TotalRefs:     n,
			Exact:         exact,
		}
		ests := make([]ProgressiveEstimate, 0, len(cands))
		for i, v := range cands {
			if visibility[i] == 0 {
				continue
			}
			mean := partialSum[i] / float64(processed)
			est := mean * float64(n) / visibility[i]
			if exact {
				est = partialSum[i] / visibility[i]
			}
			hw := 0.0
			if !exact && processed > 1 {
				// Sample variance of per-reference contributions, scaled to
				// the full-population sum, with finite-population correction.
				varC := (chunkSumSq[i] - float64(processed)*mean*mean) / float64(processed-1)
				if varC > 0 {
					fpc := float64(n-processed) / float64(n-1)
					hw = 1.96 * float64(n) * math.Sqrt(varC/float64(processed)*fpc) / visibility[i]
				}
			}
			ests = append(ests, ProgressiveEstimate{
				Vertex: v, Name: e.g.Name(v), Score: est, HalfWidth: hw,
			})
		}
		sort.Slice(ests, func(a, b int) bool {
			if ests[a].Score != ests[b].Score {
				return ests[a].Score < ests[b].Score
			}
			return ests[a].Vertex < ests[b].Vertex
		})
		if q.TopK > 0 && len(ests) > q.TopK {
			ests = ests[:q.TopK]
		}
		snap.TopK = ests
		lastSnapshot = snap
		if opts.OnSnapshot != nil {
			return opts.OnSnapshot(snap)
		}
		return true
	}

sample:
	for processed < n {
		chunkEnd := processed + opts.ChunkSize
		if chunkEnd > n {
			chunkEnd = n
		}
		// Per-reference contributions, tracked per candidate so the
		// variance (and hence the confidence half-width) is available.
		// Progressive mode therefore pays the O(|Sr|·|Sc|) pairwise cost
		// that Equation (1) avoids — the price of confidence intervals.
		for _, j := range order[processed:chunkEnd] {
			if err := ctxErr(ctx); err != nil {
				if degradable(err) && processed > 0 {
					// Graceful degradation: the estimates at the last chunk
					// boundary are already an unbiased answer — return them
					// flagged Partial instead of the bare deadline error.
					// The in-flight chunk's partialSum contributions are
					// harmless: lastSnapshot was sealed before them.
					break sample
				}
				return nil, err
			}
			refVec, err := combinedVec(refs[j])
			if err != nil {
				return nil, err
			}
			for i := range cands {
				if visibility[i] == 0 {
					continue
				}
				c := candVecs[i].Dot(refVec)
				partialSum[i] += c
				chunkSumSq[i] += c * c
			}
		}
		processed = chunkEnd
		if !emit() {
			break
		}
	}

	res.Entries = make([]Entry, len(lastSnapshot.TopK))
	for i, est := range lastSnapshot.TopK {
		res.Entries[i] = Entry{Vertex: est.Vertex, Name: est.Name, Score: est.Score}
	}
	// An early stop — deadline degradation above or OnSnapshot returning
	// false — leaves the estimates inexact; surface that the same way the
	// deadline-degraded engine paths do.
	res.Partial = processed < n
	res.Timing.Total = time.Since(start)
	return res, nil
}
