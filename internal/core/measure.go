// Package core implements the paper's primary contribution: the NetOut
// outlierness measure (Section 5), the comparison measures built on PathSim
// and cosine similarity, and the query execution engine with the Baseline,
// PM (pre-materialization) and SPM (selective pre-materialization)
// strategies of Section 6.
package core

import (
	"fmt"
	"math"

	"netout/internal/sparse"
)

// Measure selects the outlierness formula applied to candidate and
// reference neighbor vectors. Smaller scores always mean more outlying.
type Measure int

const (
	// MeasureNetOut is the paper's measure (Definition 10): the sum of
	// normalized connectivities Ω(vi) = Σ_{vj∈Sr} κ(vi,vj)/κ(vi,vi),
	// computed with the O(|Sr|+|Sc|) rewriting of Equation (1).
	MeasureNetOut Measure = iota
	// MeasurePathSim replaces normalized connectivity with PathSim
	// (Sun et al., VLDB 2011): 2κ(vi,vj)/(κ(vi,vi)+κ(vj,vj)).
	MeasurePathSim
	// MeasureCosSim replaces normalized connectivity with the cosine
	// similarity of the neighbor vectors.
	MeasureCosSim
)

// ParseMeasure resolves a measure name ("netout", "pathsim", "cossim").
func ParseMeasure(name string) (Measure, error) {
	switch name {
	case "netout", "NetOut":
		return MeasureNetOut, nil
	case "pathsim", "PathSim":
		return MeasurePathSim, nil
	case "cossim", "CosSim", "cosine":
		return MeasureCosSim, nil
	}
	return 0, fmt.Errorf("core: unknown measure %q (want netout, pathsim or cossim)", name)
}

func (m Measure) String() string {
	switch m {
	case MeasureNetOut:
		return "NetOut"
	case MeasurePathSim:
		return "PathSim"
	case MeasureCosSim:
		return "CosSim"
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// ScoreVectors computes the outlierness score of every candidate neighbor
// vector against the reference neighbor vectors under the given measure.
// A NaN score marks a candidate that cannot be characterized by the feature
// meta-path (zero visibility: its neighbor vector is empty); callers
// typically exclude such candidates from the ranking.
//
// NetOut and CosSim use the separable fast path (Equation (1)), which is
// O(|Sr|+|Sc|) sparse operations; PathSim is inherently pairwise,
// O(|Sr|·|Sc|), exactly as discussed under Definition 10.
func ScoreVectors(m Measure, cands, refs []sparse.Vector) []float64 {
	rs := newRefScorer(m, refs)
	out := make([]float64, len(cands))
	for i, phi := range cands {
		out[i] = rs.score(phi)
	}
	return out
}

// refScorer is a measure's reference-side precomputation: everything that
// depends only on Sr, computed once per (query, path) and then shared
// read-only — the sequential path builds one per ScoreVectors call, the
// chunked pipeline builds one up front and lets every worker score against
// it concurrently.
type refScorer struct {
	m Measure
	// s is the separable reference aggregate of Equation (1): Σ Φ(vj) for
	// NetOut, Σ Φ(vj)/‖Φ(vj)‖ for CosSim.
	s sparse.Vector
	// refs and refVis are PathSim's pairwise inputs with the per-reference
	// visibilities κ(vj,vj) hoisted out of the candidate loop. References
	// with zero visibility are dropped up front: their term is
	// 2·Φ(vi)·Φ(vj)/(κii+0) = 0 for every visible candidate (the dot of
	// anything with an empty vector is +0, and adding +0 to a sum of
	// non-negative terms leaves its bits unchanged), so skipping them is
	// bit-identical.
	refs   []sparse.Vector
	refVis []float64
}

func newRefScorer(m Measure, refs []sparse.Vector) *refScorer {
	rs := &refScorer{m: m}
	switch m {
	case MeasureNetOut:
		// Ω(vi) = Φ(vi)·S / ‖Φ(vi)‖₂² with S = Σ_{vj∈Sr} Φ(vj).
		rs.s = sparse.Sum(refs)
	case MeasureCosSim:
		// Σ_j cos(Φi,Φj) = (Φi/‖Φi‖)·Σ_j Φj/‖Φj‖: separable like NetOut.
		normRefs := make([]sparse.Vector, 0, len(refs))
		for _, r := range refs {
			if n := r.Normalize(); !n.IsZero() {
				normRefs = append(normRefs, n)
			}
		}
		rs.s = sparse.Sum(normRefs)
	case MeasurePathSim:
		rs.refs = make([]sparse.Vector, 0, len(refs))
		rs.refVis = make([]float64, 0, len(refs))
		for _, r := range refs {
			if vis := r.Norm2Sq(); vis > 0 {
				rs.refs = append(rs.refs, r)
				rs.refVis = append(rs.refVis, vis)
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown measure %d", int(m)))
	}
	return rs
}

// score evaluates one candidate against the precomputed reference side.
// Safe for concurrent use: the receiver is read-only after newRefScorer.
func (rs *refScorer) score(phi sparse.Vector) float64 {
	switch rs.m {
	case MeasureNetOut:
		vis := phi.Norm2Sq()
		if vis == 0 {
			return math.NaN()
		}
		return phi.Dot(rs.s) / vis
	case MeasureCosSim:
		n := phi.Normalize()
		if n.IsZero() {
			return math.NaN()
		}
		return n.Dot(rs.s)
	default: // MeasurePathSim
		vis := phi.Norm2Sq()
		if vis == 0 {
			return math.NaN()
		}
		var sum float64
		for j, r := range rs.refs {
			sum += 2 * phi.Dot(r) / (vis + rs.refVis[j])
		}
		return sum
	}
}

// NormalizedConnectivity returns σ(a,b) = κ(a,b)/κ(a,a) (Definition 9)
// given the neighbor vectors of a and b under the feature meta-path.
// It returns NaN when a has zero visibility.
func NormalizedConnectivity(a, b sparse.Vector) float64 {
	vis := a.Norm2Sq()
	if vis == 0 {
		return math.NaN()
	}
	return a.Dot(b) / vis
}

// PathSim returns the PathSim similarity between two vertices given their
// neighbor vectors: 2κ(a,b)/(κ(a,a)+κ(b,b)), or NaN when both are zero.
func PathSim(a, b sparse.Vector) float64 {
	den := a.Norm2Sq() + b.Norm2Sq()
	if den == 0 {
		return math.NaN()
	}
	return 2 * a.Dot(b) / den
}

// CosSim returns the cosine similarity between two neighbor vectors, or NaN
// when either is zero.
func CosSim(a, b sparse.Vector) float64 {
	den := a.Norm2() * b.Norm2()
	if den == 0 {
		return math.NaN()
	}
	return a.Dot(b) / den
}
