// Package core implements the paper's primary contribution: the NetOut
// outlierness measure (Section 5), the comparison measures built on PathSim
// and cosine similarity, and the query execution engine with the Baseline,
// PM (pre-materialization) and SPM (selective pre-materialization)
// strategies of Section 6.
package core

import (
	"fmt"
	"math"

	"netout/internal/sparse"
)

// Measure selects the outlierness formula applied to candidate and
// reference neighbor vectors. Smaller scores always mean more outlying.
type Measure int

const (
	// MeasureNetOut is the paper's measure (Definition 10): the sum of
	// normalized connectivities Ω(vi) = Σ_{vj∈Sr} κ(vi,vj)/κ(vi,vi),
	// computed with the O(|Sr|+|Sc|) rewriting of Equation (1).
	MeasureNetOut Measure = iota
	// MeasurePathSim replaces normalized connectivity with PathSim
	// (Sun et al., VLDB 2011): 2κ(vi,vj)/(κ(vi,vi)+κ(vj,vj)).
	MeasurePathSim
	// MeasureCosSim replaces normalized connectivity with the cosine
	// similarity of the neighbor vectors.
	MeasureCosSim
)

// ParseMeasure resolves a measure name ("netout", "pathsim", "cossim").
func ParseMeasure(name string) (Measure, error) {
	switch name {
	case "netout", "NetOut":
		return MeasureNetOut, nil
	case "pathsim", "PathSim":
		return MeasurePathSim, nil
	case "cossim", "CosSim", "cosine":
		return MeasureCosSim, nil
	}
	return 0, fmt.Errorf("core: unknown measure %q (want netout, pathsim or cossim)", name)
}

func (m Measure) String() string {
	switch m {
	case MeasureNetOut:
		return "NetOut"
	case MeasurePathSim:
		return "PathSim"
	case MeasureCosSim:
		return "CosSim"
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// ScoreVectors computes the outlierness score of every candidate neighbor
// vector against the reference neighbor vectors under the given measure.
// A NaN score marks a candidate that cannot be characterized by the feature
// meta-path (zero visibility: its neighbor vector is empty); callers
// typically exclude such candidates from the ranking.
//
// NetOut and CosSim use the separable fast path (Equation (1)), which is
// O(|Sr|+|Sc|) sparse operations; PathSim is inherently pairwise,
// O(|Sr|·|Sc|), exactly as discussed under Definition 10.
func ScoreVectors(m Measure, cands, refs []sparse.Vector) []float64 {
	switch m {
	case MeasureNetOut:
		return scoreNetOut(cands, refs)
	case MeasurePathSim:
		return scorePathSim(cands, refs)
	case MeasureCosSim:
		return scoreCosSim(cands, refs)
	}
	panic(fmt.Sprintf("core: unknown measure %d", int(m)))
}

func scoreNetOut(cands, refs []sparse.Vector) []float64 {
	// Ω(vi) = Φ(vi)·S / ‖Φ(vi)‖₂² with S = Σ_{vj∈Sr} Φ(vj).
	s := sparse.Sum(refs)
	out := make([]float64, len(cands))
	for i, phi := range cands {
		vis := phi.Norm2Sq()
		if vis == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = phi.Dot(s) / vis
	}
	return out
}

func scorePathSim(cands, refs []sparse.Vector) []float64 {
	refVis := make([]float64, len(refs))
	for j, r := range refs {
		refVis[j] = r.Norm2Sq()
	}
	out := make([]float64, len(cands))
	for i, phi := range cands {
		vis := phi.Norm2Sq()
		if vis == 0 {
			out[i] = math.NaN()
			continue
		}
		var sum float64
		for j, r := range refs {
			den := vis + refVis[j]
			if den == 0 {
				continue
			}
			sum += 2 * phi.Dot(r) / den
		}
		out[i] = sum
	}
	return out
}

func scoreCosSim(cands, refs []sparse.Vector) []float64 {
	// Σ_j cos(Φi,Φj) = (Φi/‖Φi‖)·Σ_j Φj/‖Φj‖: separable like NetOut.
	normRefs := make([]sparse.Vector, 0, len(refs))
	for _, r := range refs {
		if n := r.Normalize(); !n.IsZero() {
			normRefs = append(normRefs, n)
		}
	}
	s := sparse.Sum(normRefs)
	out := make([]float64, len(cands))
	for i, phi := range cands {
		n := phi.Normalize()
		if n.IsZero() {
			out[i] = math.NaN()
			continue
		}
		out[i] = n.Dot(s)
	}
	return out
}

// NormalizedConnectivity returns σ(a,b) = κ(a,b)/κ(a,a) (Definition 9)
// given the neighbor vectors of a and b under the feature meta-path.
// It returns NaN when a has zero visibility.
func NormalizedConnectivity(a, b sparse.Vector) float64 {
	vis := a.Norm2Sq()
	if vis == 0 {
		return math.NaN()
	}
	return a.Dot(b) / vis
}

// PathSim returns the PathSim similarity between two vertices given their
// neighbor vectors: 2κ(a,b)/(κ(a,a)+κ(b,b)), or NaN when both are zero.
func PathSim(a, b sparse.Vector) float64 {
	den := a.Norm2Sq() + b.Norm2Sq()
	if den == 0 {
		return math.NaN()
	}
	return 2 * a.Dot(b) / den
}

// CosSim returns the cosine similarity between two neighbor vectors, or NaN
// when either is zero.
func CosSim(a, b sparse.Vector) float64 {
	den := a.Norm2() * b.Norm2()
	if den == 0 {
		return math.NaN()
	}
	return a.Dot(b) / den
}
