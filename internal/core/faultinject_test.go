package core

// Fault-injection harness for the serving-robustness layer: deterministic
// panics, stalls and cancellations injected at the materializer seam (a
// faultMat wrapping a real materializer via the viewable interface) and at
// the parallel index builder (pmBuildHook). Every test here must pass under
// `go test -race -cpu 1,4` — the whole point is proving the isolation,
// shedding and degradation paths are correct under concurrency, not just on
// the happy path.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/sparse"
)

// faultMat wraps a real materializer and calls hook before every load. The
// hook may panic, stall, cancel a context, or trip a synthetic deadline —
// the injection point for every pipeline stage, since all of them load
// vectors through this seam. Views share the same hook, so ServePool
// workers, batch workers and pipeline chunk workers all inherit the faults.
type faultMat struct {
	inner Materializer
	hook  func(p metapath.Path, v hin.VertexID)
}

func (f *faultMat) NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error) {
	if f.hook != nil {
		f.hook(p, v)
	}
	return f.inner.NeighborVector(p, v)
}
func (f *faultMat) Strategy() Strategy { return f.inner.Strategy() }
func (f *faultMat) IndexBytes() int64  { return f.inner.IndexBytes() }
func (f *faultMat) Stats() MatStats    { return f.inner.Stats() }

func (f *faultMat) view() (Materializer, error) {
	iv, err := NewView(f.inner)
	if err != nil {
		return nil, err
	}
	return &faultMat{inner: iv, hook: f.hook}, nil
}

// deadlineAfterCtx reports context.DeadlineExceeded after a fixed number of
// Err polls, so tests expire a "deadline" at an exact per-vertex check
// instead of a wall-clock instant — the degradation prefix becomes
// deterministic and the partial result comparable entry for entry.
type deadlineAfterCtx struct {
	context.Context
	remaining atomic.Int64
}

func newDeadlineAfter(polls int64) *deadlineAfterCtx {
	c := &deadlineAfterCtx{Context: context.Background()}
	c.remaining.Store(polls)
	return c
}

func (c *deadlineAfterCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

const faultQuery = `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`

// fireOnce returns a hook that panics with msg on exactly the first load.
func fireOnce(msg string) func(metapath.Path, hin.VertexID) {
	var fired atomic.Bool
	return func(metapath.Path, hin.VertexID) {
		if fired.CompareAndSwap(false, true) {
			panic(msg)
		}
	}
}

// The seed's ServePool worker had no recover: a panicking query killed the
// worker goroutine (crashing the process) and never wrote job.done, so on a
// background context the caller hung forever. This test hangs/crashes
// pre-fix; post-fix the caller gets a *PanicError, the pool keeps its full
// capacity, and the stats/metrics record the panic.
func TestServePoolWorkerPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := randomBibGraph(rand.New(rand.NewSource(7)))
			fm := &faultMat{inner: NewBaseline(g), hook: fireOnce("injected serve fault")}
			reg := obs.NewRegistry()
			pool, err := NewServePool(g, ServeOptions{Workers: workers, Materializer: fm, Obs: reg})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()

			done := make(chan struct{})
			var res *Result
			var execErr error
			go func() {
				res, execErr = pool.Execute(context.Background(), faultQuery)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("Execute hung: the worker panic stranded its caller")
			}
			if !IsPanicError(execErr) {
				t.Fatalf("err = %v, want a *PanicError", execErr)
			}
			var pe *PanicError
			if errors.As(execErr, &pe); pe.Stack == "" || pe.Value != "injected serve fault" {
				t.Fatalf("PanicError not captured faithfully: %+v", pe)
			}
			if res != nil {
				t.Fatalf("res = %+v, want nil alongside a panic error", res)
			}

			// Capacity intact: the hook fired once, so 2×workers concurrent
			// queries must all succeed on the surviving workers.
			errCh := make(chan error, 2*workers)
			for i := 0; i < 2*workers; i++ {
				go func() {
					_, err := pool.Execute(context.Background(), faultQuery)
					errCh <- err
				}()
			}
			for i := 0; i < 2*workers; i++ {
				if err := <-errCh; err != nil {
					t.Fatalf("post-panic query %d: %v", i, err)
				}
			}
			st := pool.Stats()
			if st.Served != int64(2*workers) || st.Failed != 1 || st.Panics != 1 {
				t.Fatalf("stats = %+v, want Served=%d Failed=1 Panics=1", st, 2*workers)
			}
			var sb strings.Builder
			reg.WritePrometheus(&sb)
			if !strings.Contains(sb.String(), "netout_serve_panics_total 1") {
				t.Fatalf("scrape missing panic counter:\n%s", sb.String())
			}
		})
	}
}

// Admission control: with MaxQueue=1 and the single worker stalled, one
// extra query queues and the next is shed with ErrOverloaded instead of
// blocking unboundedly.
func TestServePoolOverloadSheds(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(9)))
	gate := make(chan struct{})
	var entered atomic.Int64
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		entered.Add(1)
		<-gate // stall every load until the gate opens
	}}
	reg := obs.NewRegistry()
	pool, err := NewServePool(g, ServeOptions{Workers: 1, MaxQueue: 1, Materializer: fm, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	first := make(chan error, 1)
	go func() {
		_, err := pool.Execute(context.Background(), faultQuery)
		first <- err
	}()
	// Wait for the worker to be stalled inside the first query, so the
	// queue slot is demonstrably free for exactly one of the next two.
	for deadline := time.Now().Add(5 * time.Second); entered.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the stalled load")
		}
		time.Sleep(time.Millisecond)
	}
	contested := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := pool.Execute(context.Background(), faultQuery)
			contested <- err
		}()
	}
	// With the worker stalled, exactly one contender buffers and the other
	// must be shed immediately; only the shed one can report before the
	// gate opens.
	select {
	case err := <-contested:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("contended Execute: %v, want ErrOverloaded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no query was shed: admission control is not bounding the queue")
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("stalled query: %v", err)
	}
	if err := <-contested; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	st := pool.Stats()
	if st.Served != 2 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want Served=2 Shed=1", st)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "netout_serve_shed_total 1") {
		t.Fatalf("scrape missing shed counter:\n%s", sb.String())
	}
}

// DefaultTimeout + graceful degradation end to end: a stalled load outlives
// the pool's default deadline, and the caller still receives a Partial=true
// result whose entries match the unconstrained run exactly (NetOut scores
// are separable, so every scored candidate's value is final).
func TestServePoolDefaultTimeoutPartial(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(11)))
	full, err := NewEngine(g).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	fullScore := map[hin.VertexID]float64{}
	for _, e := range full.Entries {
		fullScore[e.Vertex] = e.Score
	}
	cands, err := NewEngine(g).CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := int64(len(cands))

	// Load 1..nA is the reference side, load nA+1 the first candidate;
	// stalling load nA+2 past the deadline leaves a non-empty candidate
	// prefix, which the worker turns into a partial result that the caller
	// collects within DrainGrace.
	var loads atomic.Int64
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		if loads.Add(1) == nA+2 {
			time.Sleep(300 * time.Millisecond)
		}
	}}
	reg := obs.NewRegistry()
	pool, err := NewServePool(g, ServeOptions{
		Workers: 1, Materializer: fm, Obs: reg,
		DefaultTimeout: 60 * time.Millisecond,
		DrainGrace:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	res, err := pool.Execute(context.Background(), faultQuery)
	if err != nil {
		t.Fatalf("Execute: %v, want a degraded partial result", err)
	}
	if !res.Partial {
		t.Fatal("res.Partial = false, want true after the deadline expired mid-query")
	}
	if len(res.Entries) == 0 {
		t.Fatal("partial result has no entries")
	}
	for _, e := range res.Entries {
		want, ok := fullScore[e.Vertex]
		if !ok {
			t.Fatalf("partial entry %s not in the full ranking", e.Name)
		}
		if e.Score != want {
			t.Fatalf("partial score for %s = %v, want the full run's %v", e.Name, e.Score, want)
		}
	}
	st := pool.Stats()
	if st.Partials != 1 || st.Served != 1 || st.Timeouts != 0 {
		t.Fatalf("stats = %+v, want Served=1 Partials=1 Timeouts=0", st)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "netout_serve_partials_total 1") {
		t.Fatalf("scrape missing partials counter:\n%s", sb.String())
	}
}

// Sequential-path degradation is exact prefix arithmetic: expiring the
// synthetic deadline at candidate check K must return precisely the full
// run's entries and skip list restricted to the first K candidates, scores
// bit-identical.
func TestSequentialDeadlinePartialPrefix(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(3)))
	full, err := NewEngine(g).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := NewEngine(g).CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(cands)
	K := nA / 2
	if K < 1 {
		t.Fatalf("graph too small: %d candidates", nA)
	}
	// Poll budget: 1 at query start, nA across the reference loop, then K
	// candidate checks — check K+1 (0-indexed candidate K) trips the
	// deadline, so exactly K candidates were materialized.
	ctx := newDeadlineAfter(int64(1 + nA + K))
	res, err := NewEngine(g).ExecuteContext(ctx, faultQuery)
	if err != nil {
		t.Fatalf("ExecuteContext: %v, want a degraded partial result", err)
	}
	if !res.Partial {
		t.Fatal("res.Partial = false, want true")
	}
	if res.CandidateCount != nA {
		t.Fatalf("CandidateCount = %d, want the full |Sc| %d", res.CandidateCount, nA)
	}
	inPrefix := map[hin.VertexID]bool{}
	for _, v := range cands[:K] {
		inPrefix[v] = true
	}
	var wantEntries []Entry
	for _, e := range full.Entries {
		if inPrefix[e.Vertex] {
			wantEntries = append(wantEntries, e)
		}
	}
	var wantSkipped []hin.VertexID
	for _, v := range full.Skipped {
		if inPrefix[v] {
			wantSkipped = append(wantSkipped, v)
		}
	}
	if len(res.Entries) != len(wantEntries) {
		t.Fatalf("partial entries = %d, want %d (prefix K=%d)", len(res.Entries), len(wantEntries), K)
	}
	for i := range wantEntries {
		if res.Entries[i].Vertex != wantEntries[i].Vertex || res.Entries[i].Score != wantEntries[i].Score {
			t.Fatalf("entry %d = %+v, want %+v (bit-identical prefix arithmetic)", i, res.Entries[i], wantEntries[i])
		}
	}
	if len(res.Skipped) != len(wantSkipped) {
		t.Fatalf("partial skipped = %v, want %v", res.Skipped, wantSkipped)
	}
	for i := range wantSkipped {
		if res.Skipped[i] != wantSkipped[i] {
			t.Fatalf("skipped[%d] = %v, want %v", i, res.Skipped[i], wantSkipped[i])
		}
	}
}

// A cancelled context must NOT degrade: the caller is gone, and converting
// cancellation into a partial answer would break the pipeline cancellation
// contract.
func TestSequentialCancellationDoesNotDegrade(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(3)))
	cands, _ := NewEngine(g).CandidateSet(faultQuery)
	ctx, cancel := context.WithCancel(context.Background())
	var loads atomic.Int64
	nA := int64(len(cands))
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		if loads.Add(1) == nA+2 { // mid-candidate-phase, where degradation COULD apply
			cancel()
		}
	}}
	res, err := NewEngine(g, WithMaterializer(fm)).ExecuteContext(ctx, faultQuery)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// Pipeline degradation: with 4 workers over >128 candidates, an expired
// deadline mid-candidate-phase yields a partial result covering exactly the
// completed chunks, every score bit-identical to the full run.
func TestPipelineDeadlinePartial(t *testing.T) {
	g := bigBibGraph(rand.New(rand.NewSource(11)))
	full, err := NewEngine(g, WithQueryParallelism(4)).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	fullScore := map[hin.VertexID]float64{}
	for _, e := range full.Entries {
		fullScore[e.Vertex] = e.Score
	}
	fullSkipped := map[hin.VertexID]bool{}
	for _, v := range full.Skipped {
		fullSkipped[v] = true
	}
	cands, err := NewEngine(g).CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(cands)
	reg := obs.NewRegistry()
	eng := NewEngine(g, WithQueryParallelism(4), WithObs(reg, nil))
	// Poll budget: 1 at query start + nA reference checks + nA-1 candidate
	// checks. Exactly one candidate poll (the chronologically last of the nA
	// issued) trips the deadline, so exactly one chunk fails and every other
	// chunk is deterministically complete — for any worker schedule. With
	// 280+ candidates and parallelChunk=128 there are ≥3 chunks, so the
	// partial result is a non-empty strict subset.
	ctx := newDeadlineAfter(int64(2 * nA))
	res, err := eng.ExecuteContext(ctx, faultQuery)
	if err != nil {
		t.Fatalf("ExecuteContext: %v, want a degraded partial result", err)
	}
	if !res.Partial {
		t.Fatal("res.Partial = false, want true")
	}
	covered := len(res.Entries) + len(res.Skipped)
	if covered == 0 || covered >= nA {
		t.Fatalf("partial covers %d of %d candidates, want a strict non-empty prefix subset", covered, nA)
	}
	for _, e := range res.Entries {
		want, ok := fullScore[e.Vertex]
		if !ok || e.Score != want {
			t.Fatalf("partial entry %s score %v, want full run's %v (present %v)", e.Name, e.Score, want, ok)
		}
	}
	for _, v := range res.Skipped {
		if !fullSkipped[v] {
			t.Fatalf("partial skipped %v not skipped in the full run", v)
		}
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "netout_query_partial_total 1") {
		t.Fatalf("scrape missing partial counter:\n%s", sb.String())
	}
	// The engine is reusable after degradation.
	again, err := eng.Execute(faultQuery)
	if err != nil || !resultsEqual(again, full) {
		t.Fatalf("post-degradation query: err=%v, equal=%v", err, err == nil && resultsEqual(again, full))
	}
}

// Panic isolation inside query execution: a panicking load becomes a
// *PanicError for both the sequential path (parallelism 1) and the chunked
// pipeline (parallelism 4, where the panic starts on a worker goroutine),
// and the engine keeps answering afterwards.
func TestQueryPanicIsolation(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			g := bigBibGraph(rand.New(rand.NewSource(13)))
			fm := &faultMat{inner: NewBaseline(g), hook: fireOnce("injected query fault")}
			reg := obs.NewRegistry()
			eng := NewEngine(g, WithMaterializer(fm), WithQueryParallelism(par), WithObs(reg, nil))
			res, err := eng.Execute(faultQuery)
			if !IsPanicError(err) || res != nil {
				t.Fatalf("got (%v, %v), want (nil, *PanicError)", res, err)
			}
			var sb strings.Builder
			reg.WritePrometheus(&sb)
			if !strings.Contains(sb.String(), "netout_query_panics_total 1") {
				t.Fatalf("scrape missing query panic counter:\n%s", sb.String())
			}
			// Disarmed (fireOnce), the engine answers and matches a clean one.
			want, err := NewEngine(g, WithQueryParallelism(par)).Execute(faultQuery)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Execute(faultQuery)
			if err != nil || !resultsEqual(got, want) {
				t.Fatalf("post-panic query: err=%v, matches clean engine=%v", err, err == nil && resultsEqual(got, want))
			}
		})
	}
}

// Batch cancellation: cancelling BatchOptions.Context stops dispatch,
// aborts in-flight queries at per-vertex granularity, and marks
// undispatched entries — nothing hangs and every entry is accounted for.
func TestBatchCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := randomBibGraph(rand.New(rand.NewSource(17)))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var loads atomic.Int64
			fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
				if loads.Add(1) == 3 { // no query can have finished yet
					cancel()
				}
			}}
			queries := make([]string, 6)
			for i := range queries {
				queries[i] = faultQuery
			}
			results, err := ExecuteBatch(g, queries, BatchOptions{
				Workers: workers, Materializer: fm, Context: ctx,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(queries) {
				t.Fatalf("got %d results, want %d", len(results), len(queries))
			}
			for i, br := range results {
				if !errors.Is(br.Err, context.Canceled) {
					t.Fatalf("entry %d: err = %v, want context.Canceled (cancel fired before any query could finish)", i, br.Err)
				}
			}
		})
	}
}

// Batch panic isolation: one poisoned query yields one *PanicError entry;
// the worker survives and every other query in the batch still succeeds.
func TestBatchPanicEntry(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := randomBibGraph(rand.New(rand.NewSource(19)))
			fm := &faultMat{inner: NewBaseline(g), hook: fireOnce("injected batch fault")}
			queries := make([]string, 6)
			for i := range queries {
				queries[i] = faultQuery
			}
			results, err := ExecuteBatch(g, queries, BatchOptions{Workers: workers, Materializer: fm})
			if err != nil {
				t.Fatal(err)
			}
			panics := 0
			for i, br := range results {
				switch {
				case IsPanicError(br.Err):
					panics++
				case br.Err != nil:
					t.Fatalf("entry %d: unexpected error %v", i, br.Err)
				case br.Result == nil || len(br.Result.Entries) == 0:
					t.Fatalf("entry %d: empty result", i)
				}
			}
			if panics != 1 {
				t.Fatalf("got %d panic entries, want exactly 1", panics)
			}
		})
	}
}

// Progressive execution: cancellation aborts, and an expired deadline after
// at least one snapshot degrades to exactly the last chunk boundary's
// estimates, bit-identical to an OnSnapshot-stopped control run.
func TestProgressiveCancelAndDeadlinePartial(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(23)))
	eng := NewEngine(g)
	popts := ProgressiveOptions{ChunkSize: 2}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := eng.ExecuteProgressiveContext(cancelled, faultQuery, popts); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("cancelled: got (%v, %v), want (nil, context.Canceled)", res, err)
	}

	cands, err := eng.CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(cands)
	if nA < 7 {
		t.Fatalf("graph too small: %d refs", nA)
	}
	// Poll budget: nA candidate-materialization checks, then one check per
	// reference vertex; 5 more polls fail at reference index 5, i.e. inside
	// the third chunk of size 2 — the last sealed snapshot is processed=4.
	ctx := newDeadlineAfter(int64(nA + 5))
	res, err := eng.ExecuteProgressiveContext(ctx, faultQuery, popts)
	if err != nil {
		t.Fatalf("deadline: %v, want a degraded partial result", err)
	}
	if !res.Partial {
		t.Fatal("res.Partial = false, want true")
	}

	// Control: same chunking stopped via OnSnapshot at the same boundary.
	control, err := eng.ExecuteProgressive(faultQuery, ProgressiveOptions{
		ChunkSize:  2,
		OnSnapshot: func(s ProgressiveSnapshot) bool { return s.ProcessedRefs < 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !control.Partial {
		t.Fatal("control.Partial = false, want true for an OnSnapshot early stop")
	}
	if len(res.Entries) != len(control.Entries) {
		t.Fatalf("degraded entries = %d, control = %d", len(res.Entries), len(control.Entries))
	}
	for i := range control.Entries {
		if res.Entries[i].Vertex != control.Entries[i].Vertex || res.Entries[i].Score != control.Entries[i].Score {
			t.Fatalf("entry %d = %+v, want control's %+v", i, res.Entries[i], control.Entries[i])
		}
	}

	// A full progressive run is exact and not partial.
	fullProg, err := eng.ExecuteProgressive(faultQuery, ProgressiveOptions{ChunkSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fullProg.Partial {
		t.Fatal("full progressive run marked Partial")
	}
}

// The parallel index builder: a panic in a build worker no longer kills the
// process from an unrecoverable goroutine; it is re-raised as a *PanicError
// in the caller's goroutine after all workers join, where it CAN be
// recovered — and a clean rebuild works.
func TestNewPMParallelPanicRecovered(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(29)))
	var fired atomic.Bool
	pmBuildHook = func(metapath.Path, hin.VertexID) {
		if fired.CompareAndSwap(false, true) {
			panic("injected build fault")
		}
	}
	defer func() { pmBuildHook = nil }()

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected NewPMParallel to re-raise the build failure")
			}
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", r, r)
			}
			if pe.Value != "injected build fault" || pe.Stack == "" {
				t.Fatalf("PanicError not captured faithfully: %+v", pe)
			}
		}()
		NewPMParallel(g, 4)
	}()

	// Disarmed, the parallel build completes and answers like the baseline.
	pm := NewPMParallel(g, 4)
	want, err := NewEngine(g).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEngine(g, WithMaterializer(pm)).Execute(faultQuery)
	if err != nil || !resultsEqual(got, want) {
		t.Fatalf("rebuilt PM: err=%v, matches baseline=%v", err, err == nil && resultsEqual(got, want))
	}
}

// Materializer metric registration is idempotent per (registry,
// materializer): a ServePool and repeated ExecuteBatch invocations sharing
// one registry — the cmd/netout wiring — register the collectors once, and
// the scrape stays single-valued and live.
func TestRegisterMaterializerMetricsIdempotent(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(31)))
	mat, err := NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	for i := 0; i < 2; i++ { // the call-twice regression for ExecuteBatch
		if _, err := ExecuteBatch(g, []string{faultQuery}, BatchOptions{
			Workers: 2, Materializer: mat, Obs: reg,
		}); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := NewServePool(g, ServeOptions{Workers: 2, Materializer: mat, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Execute(context.Background(), faultQuery); err != nil {
		t.Fatal(err)
	}
	pool.Close()

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	scrape := sb.String()
	for _, family := range []string{"netout_index_bytes", "netout_cache_hits_total"} {
		samples := 0
		for _, line := range strings.Split(scrape, "\n") {
			if strings.HasPrefix(line, family+" ") {
				samples++
			}
		}
		if samples != 1 {
			t.Fatalf("%s has %d sample lines, want 1:\n%s", family, samples, scrape)
		}
	}
	// The surviving collector still reads the live shared counters.
	cs, ok := CacheStatsOf(mat)
	if !ok || cs.Hits == 0 {
		t.Fatalf("cache stats not live: %+v (ok=%v)", cs, ok)
	}
	if !strings.Contains(scrape, fmt.Sprintf("netout_cache_hits_total %d", cs.Hits)) {
		t.Fatalf("scrape does not match live CacheStats (%d hits):\n%s", cs.Hits, scrape)
	}
}

// ---------------------------------------------------------------------------
// Scatter–gather shard tier faults

// One panicking shard must be isolated: the other shards' exact results are
// merged into a Partial result with per-shard accounting, instead of the
// panic failing the query whole (the unsharded behavior) or killing the
// process. The hook counter skips the coordinator's nA reference loads, so
// the panic fires inside exactly one shard's scoring loop.
func TestShardPanicIsolatesToPartial(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(9)))
	full, err := NewEngine(g).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := NewEngine(g).CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(cands)
	var loads atomic.Int64
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		if loads.Add(1) == int64(nA)+2 {
			panic("injected shard fault")
		}
	}}
	eng := NewEngine(g, WithMaterializer(fm), WithShards(2))
	defer eng.Close()
	res, err := eng.Execute(faultQuery)
	if err != nil {
		t.Fatalf("Execute: %v, want the panic degraded to a partial result", err)
	}
	if !res.Partial {
		t.Fatal("res.Partial = false, want true")
	}
	if len(res.Shards) != 2 {
		t.Fatalf("len(res.Shards) = %d, want 2", len(res.Shards))
	}
	panicked := 0
	for _, st := range res.Shards {
		if st.Partial {
			panicked++
			if !strings.Contains(st.Err, "injected shard fault") {
				t.Errorf("shard %d error %q does not carry the panic value", st.Shard, st.Err)
			}
			continue
		}
		if st.Done != st.Candidates || st.Err != "" {
			t.Errorf("healthy shard %d incomplete: %+v", st.Shard, st)
		}
	}
	if panicked != 1 {
		t.Fatalf("%d shards marked partial, want exactly 1: %+v", panicked, res.Shards)
	}
	// Every surviving entry is exact: bit-identical to the full run's score
	// for the same vertex.
	fullScore := map[hin.VertexID]float64{}
	for _, e := range full.Entries {
		fullScore[e.Vertex] = e.Score
	}
	for _, e := range res.Entries {
		want, ok := fullScore[e.Vertex]
		if !ok || math.Float64bits(want) != math.Float64bits(e.Score) {
			t.Fatalf("partial score for %s = %v, want the full run's %v", e.Name, e.Score, want)
		}
	}
}

// A shard tripping the query deadline degrades to a merged partial: the
// poll budget admits the reference reduction plus exactly K candidate
// checks across the shards, so K candidates total are scored (exact,
// bit-identical to the full run) and the rest are accounted as not done.
func TestShardDeadlineDegradesToMergedPartial(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(13)))
	full, err := NewEngine(g).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := NewEngine(g).CandidateSet(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	nA := len(cands)
	K := nA / 2
	if K < 1 {
		t.Fatalf("graph too small: %d candidates", nA)
	}
	eng := NewEngine(g, WithShards(2))
	defer eng.Close()
	// Poll budget mirrors TestSequentialDeadlinePartialPrefix: 1 at query
	// start, nA across the coordinator's reference reduction, then K
	// candidate checks shared by the shards.
	ctx := newDeadlineAfter(int64(1 + nA + K))
	res, err := eng.ExecuteContext(ctx, faultQuery)
	if err != nil {
		t.Fatalf("ExecuteContext: %v, want a degraded partial result", err)
	}
	if !res.Partial {
		t.Fatal("res.Partial = false, want true")
	}
	expired, totalDone := 0, 0
	for _, st := range res.Shards {
		totalDone += st.Done
		if st.Partial {
			expired++
			if !strings.Contains(st.Err, "deadline") {
				t.Errorf("shard %d error %q, want a deadline classification", st.Shard, st.Err)
			}
		}
	}
	if expired == 0 {
		t.Fatalf("no shard marked partial: %+v", res.Shards)
	}
	if totalDone != K {
		t.Fatalf("shards scored %d candidates total, want exactly the %d-poll budget", totalDone, K)
	}
	fullScore := map[hin.VertexID]float64{}
	for _, e := range full.Entries {
		fullScore[e.Vertex] = e.Score
	}
	for _, e := range res.Entries {
		want, ok := fullScore[e.Vertex]
		if !ok || math.Float64bits(want) != math.Float64bits(e.Score) {
			t.Fatalf("partial score for %s = %v, want the full run's %v", e.Name, e.Score, want)
		}
	}

	// Degradation is NetOut-only (prefix scores under the relative measures
	// are not exact), exactly like the unsharded contract: the same expiry
	// under PathSim fails the query instead.
	psEng := NewEngine(g, WithMeasure(MeasurePathSim), WithShards(2))
	defer psEng.Close()
	if _, err := psEng.ExecuteContext(newDeadlineAfter(int64(1+nA+K)), faultQuery); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PathSim sharded deadline err = %v, want context.DeadlineExceeded", err)
	}
}

// Executing on a Close()d sharded engine is a caller bug that must surface
// as a recovered *PanicError — never a hang or a process crash. Close
// before first use simply declines sharding: the engine keeps answering
// unsharded.
func TestShardedEngineCloseSemantics(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(17)))

	// Close before any query: no group ever starts; queries run unsharded.
	pre := NewEngine(g, WithShards(3))
	pre.Close()
	res, err := pre.Execute(faultQuery)
	if err != nil {
		t.Fatalf("Execute after early Close: %v", err)
	}
	if len(res.Shards) != 0 {
		t.Fatalf("closed-before-use engine still sharded: %+v", res.Shards)
	}

	// Close after use: the next query fails with a recovered panic.
	eng := NewEngine(g, WithShards(3))
	if _, err := eng.Execute(faultQuery); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := eng.Execute(faultQuery); !IsPanicError(err) {
		t.Fatalf("Execute after Close: %v, want a *PanicError", err)
	}
}
