package core

import (
	"fmt"

	"netout/internal/obs"
)

// Registry-backed instruments over the existing stats structs. The design
// rule: wherever a stats struct is already the source of truth (atomic
// counters in the sharded cache, the serve pool), the registry exposes it
// through CounterFunc/GaugeFunc reading the same atomics at scrape time —
// never a second counter that could drift. A /metrics scrape therefore
// matches Stats()/CacheStats()/ServeStats exactly, by construction.

// RegisterMaterializerMetrics exposes a materializer on reg:
//
//	netout_index_bytes                  gauge (all strategies)
//	netout_cache_hits_total             counter ┐
//	netout_cache_misses_total           counter │
//	netout_cache_deduped_total          counter │ cached strategy only
//	netout_cache_evictions_total        counter │ (read from the shared
//	netout_cache_prefix_hits_total      counter │  atomic counters)
//	netout_cache_hops_saved_total       counter │
//	netout_cache_bytes                  gauge   │
//	netout_mat_traversed_vectors_total  counter │
//	netout_mat_indexed_vectors_total    counter │
//	netout_mat_traversal_seconds_total  counter │
//	netout_mat_indexed_seconds_total    counter ┘
//	netout_plan_decisions_total{choice} counter (subpath planner only)
//
// Only the cached materializer's full MatStats are exported: its counters
// are shared atomics, safe to read from the scrape goroutine. Baseline and
// PM/SPM carry unsynchronized per-view stats, so for those only the index
// size — immutable after construction — is exposed.
//
// Registration is idempotent per (registry, materializer): a ServePool and
// an ExecuteBatch sharing one registry and one materializer (as cmd/netout
// wires them) register the collectors once, instead of double-registering on
// every batch invocation.
func RegisterMaterializerMetrics(reg *obs.Registry, m Materializer) {
	if !reg.Once(fmt.Sprintf("core:materializer-metrics:%T:%p", m, m)) {
		return
	}
	reg.GaugeFunc("netout_index_bytes", "In-memory size of the pre-materialized index or cache.",
		func() float64 { return float64(m.IndexBytes()) })
	c, ok := m.(*cached)
	if !ok {
		return
	}
	st := c.state
	reg.CounterFunc("netout_cache_hits_total", "Cache hits (including singleflight-deduplicated loads).",
		func() float64 { return float64(st.hits.Load()) })
	reg.CounterFunc("netout_cache_misses_total", "Cache misses (each one network traversal).",
		func() float64 { return float64(st.misses.Load()) })
	reg.CounterFunc("netout_cache_deduped_total", "Loads coalesced into another goroutine's in-flight traversal.",
		func() float64 { return float64(st.deduped.Load()) })
	reg.CounterFunc("netout_cache_evictions_total", "LRU evictions under the byte budget.",
		func() float64 { return float64(st.evictions.Load()) })
	reg.CounterFunc("netout_cache_prefix_hits_total", "Misses resumed from a cached subpath prefix frontier.",
		func() float64 { return float64(st.prefixHits.Load()) })
	reg.CounterFunc("netout_cache_hops_saved_total", "Traversal hops skipped by subpath prefix resumes.",
		func() float64 { return float64(st.hopsSaved.Load()) })
	reg.GaugeFunc("netout_cache_bytes", "Resident cache payload bytes.",
		func() float64 { return float64(st.bytes.Load()) })
	reg.CounterFunc("netout_mat_traversed_vectors_total", "Neighbor vectors materialized by network traversal.",
		func() float64 { return float64(st.traversedVecs.Load()) })
	reg.CounterFunc("netout_mat_indexed_vectors_total", "Neighbor vectors served warm from the cache.",
		func() float64 { return float64(st.indexedVecs.Load()) })
	reg.CounterFunc("netout_mat_traversal_seconds_total", "Seconds spent traversing the network for misses.",
		func() float64 { return float64(st.traversalNs.Load()) / 1e9 })
	reg.CounterFunc("netout_mat_indexed_seconds_total", "Seconds spent on warm loads and probes.",
		func() float64 { return float64(st.indexedNs.Load()) / 1e9 })
	if pl := st.planner; pl != nil {
		const planHelp = "Subpath planner decisions by choice (traversal shape, persistence, pinned kernels)."
		for c := planChoice(0); c < planChoiceCount; c++ {
			c := c
			reg.CounterFunc(`netout_plan_decisions_total{choice="`+c.String()+`"}`, planHelp,
				func() float64 { return float64(pl.decisions[c].Load()) })
		}
	}
}
