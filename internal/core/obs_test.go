package core

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"netout/internal/obs"
	"netout/internal/oql"
)

// scrapeMetrics fetches url and parses the Prometheus text exposition into
// series-name → value (names keep their label suffix).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestServePoolMetricsMatchStats is the acceptance check for the metrics
// layer: after a ServePool workload, a /metrics scrape must agree exactly
// with ServeStats and CacheStats. The instruments are func-backed readers of
// the same atomics, so any drift is a wiring bug.
func TestServePoolMetricsMatchStats(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomBibGraph(r)
	queries := randomQueries(r, g)

	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(8)
	mat, err := NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewServePool(g, ServeOptions{Workers: 3, Materializer: mat, Obs: reg, SlowLog: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Sequential submission keeps the engines' delta-based vector counters
	// exact (concurrent queries would interleave their before/after Stats
	// snapshots); the func-backed totals are exact either way.
	for round := 0; round < 2; round++ {
		for i, q := range queries {
			if _, err := pool.Execute(nil, q); err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
		}
	}
	// One failure past the parser (unknown author name fails in the plan
	// phase) so the error paths are exercised too.
	if _, err := pool.Execute(nil, `FIND OUTLIERS FROM author{"No Such Author"} JUDGED BY author.paper.venue;`); err == nil {
		t.Fatal("bad query should fail")
	}

	st := pool.Stats()
	cs, ok := CacheStatsOf(mat)
	if !ok {
		t.Fatal("CacheStatsOf failed")
	}
	ms := mat.Stats()
	if st.Served == 0 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want >0 served / 1 failed", st)
	}

	srv := httptest.NewServer(obs.NewAdminMux(reg, slow))
	defer srv.Close()
	m := scrapeMetrics(t, srv.URL+"/metrics")

	// Pool traffic: scrape == ServeStats, exactly.
	exact := map[string]float64{
		"netout_serve_workers":               3,
		"netout_serve_served_total":          float64(st.Served),
		"netout_serve_failed_total":          float64(st.Failed),
		"netout_serve_queue_seconds_total":   float64(st.QueueWait.Nanoseconds()) / 1e9,
		"netout_serve_execute_seconds_total": float64(st.Execute.Nanoseconds()) / 1e9,

		// Shared cache: scrape == CacheStatsOf, exactly.
		"netout_cache_hits_total":      float64(cs.Hits),
		"netout_cache_misses_total":    float64(cs.Misses),
		"netout_cache_deduped_total":   float64(cs.Deduped),
		"netout_cache_evictions_total": float64(cs.Evictions),
		"netout_cache_bytes":           float64(cs.Bytes),
		"netout_index_bytes":           float64(mat.IndexBytes()),

		// Materializer work: scrape == MatStats, exactly.
		"netout_mat_traversed_vectors_total": float64(ms.TraversedVectors),
		"netout_mat_indexed_vectors_total":   float64(ms.IndexedVectors),

		// Engine outcome counters line up with the pool's (every failure here
		// occurs past the parser, inside ExecuteQueryContext).
		`netout_queries_total{outcome="ok"}`:    float64(st.Served),
		`netout_queries_total{outcome="error"}`: float64(st.Failed),
		"netout_query_seconds_count":            float64(st.Served + st.Failed),

		// Sequential submission makes the per-query vector deltas sum to the
		// materializer's own totals.
		"netout_vectors_traversed_total": float64(ms.TraversedVectors),
		"netout_vectors_indexed_total":   float64(ms.IndexedVectors),
	}
	for name, want := range exact {
		got, ok := m[name]
		if !ok {
			t.Errorf("scrape is missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if cs.Hits == 0 {
		t.Fatalf("repeated workload produced no cache hits: %+v", cs)
	}
	// The failed query dies in plan, before materialize: every served query
	// (and only those) records a materialize span.
	if got := m[`netout_query_phase_seconds_count{phase="materialize"}`]; got != float64(st.Served) {
		t.Errorf("materialize phase count = %v, want %v", got, st.Served)
	}

	// The other admin surfaces.
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("/healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	slowBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(slowBody), "FIND OUTLIERS") {
		t.Fatalf("/debug/slow does not echo retained queries:\n%s", slowBody)
	}
}

// TestResultTracePhases checks the acceptance criterion on traces: every
// Result carries a contiguous phase breakdown whose durations sum to the
// trace total (within 5%), with the materializer work attributed to the
// materialize span.
func TestResultTracePhases(t *testing.T) {
	g := fig1Graph(t)
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(4)
	eng := NewEngine(g, WithObs(reg, slow))

	res, err := eng.Execute(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace is nil")
	}
	wantPhases := []string{"parse", "validate", "plan", "materialize", "score", "rank"}
	if len(res.Trace.Spans) != len(wantPhases) {
		t.Fatalf("trace has %d spans, want %d: %+v", len(res.Trace.Spans), len(wantPhases), res.Trace.Spans)
	}
	for i, want := range wantPhases {
		if res.Trace.Spans[i].Phase != want {
			t.Fatalf("span %d = %q, want %q", i, res.Trace.Spans[i].Phase, want)
		}
	}
	sum, total := res.Trace.PhaseSum(), res.Trace.Total
	if sum > total || total-sum > total/20 {
		t.Fatalf("phase sum %v vs total %v: off by more than 5%%", sum, total)
	}
	matSpan, ok := res.Trace.Span("materialize")
	if !ok {
		t.Fatal("no materialize span")
	}
	if matSpan.Stats.TraversedVectors != res.Timing.TraversedVectors ||
		matSpan.Stats.IndexedVectors != res.Timing.IndexedVectors {
		t.Fatalf("materialize span stats %+v disagree with Timing %+v", matSpan.Stats, res.Timing)
	}

	// Pre-parsed entry points trace too, minus the parse span.
	q, err := oql.Parse(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng.ExecuteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace == nil || res2.Trace.Spans[0].Phase != "validate" {
		t.Fatalf("pre-parsed trace = %+v, want to start at validate", res2.Trace)
	}

	// The slow log retained the successful queries.
	if got := slow.Snapshot(); len(got) != 2 || !strings.Contains(got[0].Query, "FIND OUTLIERS") {
		t.Fatalf("slow log = %+v, want both queries retained", got)
	}

	// Explanations carry their own trace, printed by Format.
	x, err := eng.Explain(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`, "Zoe", 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.Trace == nil {
		t.Fatal("Explanation.Trace is nil")
	}
	if !strings.Contains(x.Format(), "trace: total") {
		t.Fatalf("Explanation.Format does not include the trace:\n%s", x.Format())
	}
}
