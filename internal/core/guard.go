package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"netout/internal/xerr"
)

// Panic isolation for the serving layers. A production pool serving analyst
// traffic cannot let one hostile query take the process down — or, more
// subtly, strand its caller: a ServePool worker that panics before writing
// job.done leaves the caller blocked forever on a background context, and a
// dead worker silently shrinks pool capacity for everyone else. Every worker
// goroutine (ServePool workers, ExecuteBatch workers, pipeline chunk
// workers, parallel index builders) therefore converts panics into
// *PanicError replies at its unit-of-work boundary and keeps running.

// PanicError is a panic recovered by a serving-layer worker and converted
// into a per-query (or per-chunk) error. Value is the original panic value;
// Stack is the goroutine stack captured at the recovery point, preserved so
// the bug stays debuggable after isolation.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v", e.Value)
}

// ErrorCode classifies a recovered panic as INTERNAL in the serving
// taxonomy (xerr.Coder): a panic is always the server's bug, never the
// client's request.
func (e *PanicError) ErrorCode() xerr.Code { return xerr.Internal }

// ErrorKind marks a recovered panic as a Defect (xerr.Kinder): a
// programmer bug that keeps its stack.
func (e *PanicError) ErrorKind() xerr.Kind { return xerr.KindDefect }

// ErrorStack surfaces the stack captured at the recovery point
// (xerr.Stacker), so xerr.StackOf finds it through any wrapping.
func (e *PanicError) ErrorStack() string { return e.Stack }

func newPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe // re-raised: keep the stack from the original panic site
	}
	return &PanicError{Value: v, Stack: string(debug.Stack())}
}

// IsPanicError reports whether err wraps a recovered worker panic.
func IsPanicError(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// recoverAsError converts an in-flight panic into a *PanicError assigned to
// *errp. Use as `defer recoverAsError(&err)` at the top of a worker's unit
// of work; the worker then replies with the error like any other failure and
// stays alive for the next job.
func recoverAsError(errp *error) {
	if r := recover(); r != nil {
		*errp = newPanicError(r)
	}
}

// degradable reports whether a mid-execution error is an expired deadline
// that graceful degradation may convert into a partial result. Cancellation
// is deliberately excluded: a cancelled caller is gone and wants no answer,
// partial or otherwise.
func degradable(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}
