package core

import (
	"fmt"
	"math"
	"strings"
)

// Score-distribution visualization: Section 8 suggests that "it might be
// helpful to visualize outliers to provide more insight". A terminal
// histogram of the candidate scores makes the outlier gap visible at a
// glance: a healthy query shows a dense bulk of normal candidates and a
// thin low tail of outliers.

// Histogram is a binned view of a score distribution.
type Histogram struct {
	Min, Max float64
	// Counts[i] covers [Min + i·w, Min + (i+1)·w) with w = (Max-Min)/len;
	// the last bin is closed on the right.
	Counts []int
	Total  int
}

// NewHistogram bins the finite values among scores into the given number
// of bins. NaN and infinite scores are dropped; bins must be ≥ 1.
func NewHistogram(scores []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("core: histogram needs at least one bin")
	}
	var finite []float64
	for _, s := range scores {
		if !math.IsNaN(s) && !math.IsInf(s, 0) {
			finite = append(finite, s)
		}
	}
	if len(finite) == 0 {
		return nil, fmt.Errorf("core: no finite scores to bin")
	}
	h := &Histogram{Min: finite[0], Max: finite[0], Counts: make([]int, bins), Total: len(finite)}
	for _, s := range finite {
		if s < h.Min {
			h.Min = s
		}
		if s > h.Max {
			h.Max = s
		}
	}
	width := (h.Max - h.Min) / float64(bins)
	for _, s := range finite {
		i := bins - 1
		if width > 0 {
			i = int((s - h.Min) / width)
			if i >= bins {
				i = bins - 1
			}
		}
		h.Counts[i]++
	}
	return h, nil
}

// Render draws the histogram with unicode bars scaled to barWidth.
func (h *Histogram) Render(barWidth int) string {
	if barWidth < 1 {
		barWidth = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*width
		hi := lo + width
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "%10.3f..%-10.3f |%-*s %d\n", lo, hi, barWidth, strings.Repeat("█", bar), c)
	}
	fmt.Fprintf(&sb, "%d scores in [%.3f, %.3f]; smaller = more outlying\n", h.Total, h.Min, h.Max)
	return sb.String()
}

// ScoreHistogram bins a result's entry scores.
func (r *Result) ScoreHistogram(bins int) (*Histogram, error) {
	scores := make([]float64, len(r.Entries))
	for i, e := range r.Entries {
		scores[i] = e.Score
	}
	return NewHistogram(scores, bins)
}
