package core

import (
	"fmt"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// Strategy identifies a materialization strategy from Section 6.
type Strategy int

const (
	// StrategyBaseline traverses the network for every neighbor vector.
	StrategyBaseline Strategy = iota
	// StrategyPM pre-materializes all length-2 meta-path neighbor vectors.
	StrategyPM
	// StrategySPM pre-materializes length-2 vectors only for vertices that
	// appear frequently in an initialization query set.
	StrategySPM
)

func (s Strategy) String() string {
	switch s {
	case StrategyBaseline:
		return "Baseline"
	case StrategyPM:
		return "PM"
	case StrategySPM:
		return "SPM"
	case StrategyCached:
		return "Cached"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// MatStats accumulates the per-call cost split the Figure 4 study reports:
// time and vector counts for index hits versus network traversal.
type MatStats struct {
	IndexedTime      time.Duration
	TraversalTime    time.Duration
	IndexedVectors   int64
	TraversedVectors int64
}

// Sub returns the difference s - o, for snapshot-style interval measurement.
func (s MatStats) Sub(o MatStats) MatStats {
	return MatStats{
		IndexedTime:      s.IndexedTime - o.IndexedTime,
		TraversalTime:    s.TraversalTime - o.TraversalTime,
		IndexedVectors:   s.IndexedVectors - o.IndexedVectors,
		TraversedVectors: s.TraversedVectors - o.TraversedVectors,
	}
}

// Add returns the sum s + o, for aggregating per-worker stat deltas.
func (s MatStats) Add(o MatStats) MatStats {
	return MatStats{
		IndexedTime:      s.IndexedTime + o.IndexedTime,
		TraversalTime:    s.TraversalTime + o.TraversalTime,
		IndexedVectors:   s.IndexedVectors + o.IndexedVectors,
		TraversedVectors: s.TraversedVectors + o.TraversedVectors,
	}
}

// Materializer produces neighbor vectors Φ_P(v), possibly from a
// pre-computed index. The baseline and indexed (PM/SPM) implementations
// are not safe for concurrent use — share their immutable index across
// goroutines via NewView. The cached materializer (NewCached) IS safe for
// concurrent use, and its views share one warm cache.
type Materializer interface {
	// NeighborVector returns Φ_P(v).
	NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error)
	// Strategy identifies the implementation.
	Strategy() Strategy
	// IndexBytes reports the in-memory size of the pre-materialized index
	// (0 for the baseline), as studied in Figure 5b.
	IndexBytes() int64
	// Stats returns cumulative cost counters since construction.
	Stats() MatStats
}

// ---------------------------------------------------------------------------
// Baseline

type baseline struct {
	tr    *metapath.Traverser
	stats MatStats
}

// NewBaseline returns the traversal-only materializer of Section 6.1.
func NewBaseline(g *hin.Graph) Materializer {
	return &baseline{tr: metapath.NewTraverser(g)}
}

func (b *baseline) NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error) {
	start := time.Now()
	vec, err := b.tr.NeighborVector(p, v)
	b.stats.TraversalTime += time.Since(start)
	b.stats.TraversedVectors++
	return vec, err
}

func (b *baseline) Strategy() Strategy { return StrategyBaseline }
func (b *baseline) IndexBytes() int64  { return 0 }
func (b *baseline) Stats() MatStats    { return b.stats }

// ---------------------------------------------------------------------------
// Shared index machinery for PM and SPM (the arena-backed pathIndex lives in
// pathindex.go)

// allLength2Paths enumerates every schema-valid length-2 meta-path.
func allLength2Paths(s *hin.Schema) []metapath.Path {
	var out []metapath.Path
	for t0 := 0; t0 < s.NumTypes(); t0++ {
		for _, t1 := range s.AllowedFrom(hin.TypeID(t0)) {
			for _, t2 := range s.AllowedFrom(t1) {
				out = append(out, metapath.MustNew(hin.TypeID(t0), t1, t2))
			}
		}
	}
	return out
}

// indexedMaterializer resolves arbitrary meta-paths against a (possibly
// partial) length-2 index: the path is consumed two hops at a time, looking
// up the indexed vector when present and traversing otherwise, exactly as
// the decomposition identity of Section 6.2 prescribes:
//
//	Φ_{P1 P2}(v) = Σ_j |π_P1(v, vj)| · Φ_P2(vj)
type indexedMaterializer struct {
	tr       *metapath.Traverser
	ix       *pathIndex
	strategy Strategy
	stats    MatStats
	// dense is the reusable chunk-combination scratch: when the graph's
	// vertex-ID space is small enough it replaces a per-chunk map
	// accumulator with hash-free scatters (same crossover cap as the
	// traverser's dense kernel). acc is the map fallback.
	dense *sparse.DenseAccumulator
	acc   *sparse.Accumulator
}

// maxDenseChunkSpan caps the dense chunk scratch, entries (8 B each); it
// mirrors metapath.MaxDenseSpan.
const maxDenseChunkSpan = 4 << 20

// chunkAcc returns the accumulator used to combine chunk vectors. Chunk
// coordinates are raw vertex IDs, so the dense scratch is sized to the whole
// graph's ID space when that fits under the cap.
func (m *indexedMaterializer) chunkAcc(hint int) sparse.Acc {
	if n := m.tr.Graph().NumVertices(); n <= maxDenseChunkSpan {
		if m.dense == nil {
			m.dense = sparse.NewDenseAccumulator(n)
		}
		m.dense.Grow(n)
		return m.dense
	}
	if m.acc == nil {
		m.acc = sparse.NewAccumulator(hint)
	}
	return m.acc
}

func (m *indexedMaterializer) Strategy() Strategy { return m.strategy }
func (m *indexedMaterializer) IndexBytes() int64  { return m.ix.bytes }
func (m *indexedMaterializer) Stats() MatStats    { return m.stats }

func (m *indexedMaterializer) NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error) {
	g := m.tr.Graph()
	if p.IsZero() {
		return sparse.Vector{}, fmt.Errorf("core: zero meta-path")
	}
	if !g.Valid(v) {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d out of range", v)
	}
	if g.Type(v) != p.Source() {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d has type %s, path starts at %s",
			v, g.Schema().TypeName(g.Type(v)), g.Schema().TypeName(p.Source()))
	}
	// Whole-path fast path: length-2 paths are looked up directly.
	if p.Hops() == 2 {
		if vec, ok := m.lookup(p, v); ok {
			return vec, nil
		}
		return m.traverseFrontier(p, 0, sparse.Vector{Idx: []int32{int32(v)}, Val: []float64{1}}), nil
	}

	frontier := sparse.Vector{Idx: []int32{int32(v)}, Val: []float64{1}}
	hop := 0
	for p.Hops()-hop >= 2 {
		chunk := metapath.MustNew(p.Type(hop), p.Type(hop+1), p.Type(hop+2))
		// One key build + one map probe per chunk; the per-vertex probes
		// below are then pure array loads.
		tbl := m.ix.table(chunk)
		next := m.chunkAcc(frontier.NNZ() * 4)
		for i := range frontier.Idx {
			u := hin.VertexID(frontier.Idx[i])
			w := frontier.Val[i]
			if vec, ok := m.probe(tbl, u); ok {
				next.AddVector(vec, w)
				continue
			}
			start := time.Now()
			vec, err := m.tr.NeighborVector(chunk, u)
			m.stats.TraversalTime += time.Since(start)
			m.stats.TraversedVectors++
			if err != nil {
				return sparse.Vector{}, err
			}
			next.AddVector(vec, w)
		}
		frontier = next.Take()
		hop += 2
		if frontier.IsZero() {
			return frontier, nil
		}
	}
	if p.Hops()-hop == 1 {
		// Odd-length tail: a single network hop (Section 6.2: "even if the
		// original meta-path is odd-length, we only need to traverse the
		// network for a single hop").
		start := time.Now()
		frontier = m.tr.Expand(frontier, p.Type(p.Hops()))
		m.stats.TraversalTime += time.Since(start)
		m.stats.TraversedVectors++
	}
	return frontier, nil
}

func (m *indexedMaterializer) lookup(chunk metapath.Path, v hin.VertexID) (sparse.Vector, bool) {
	return m.probe(m.ix.table(chunk), v)
}

func (m *indexedMaterializer) probe(t *pathTable, v hin.VertexID) (sparse.Vector, bool) {
	start := time.Now()
	vec, ok := m.ix.probe(t, v)
	// Probe time is index time whether the probe hits or misses — a miss
	// still paid the lookup, and dropping it would understate the "indexed"
	// share of Figure 4 style breakdowns for sparse indexes.
	m.stats.IndexedTime += time.Since(start)
	if ok {
		m.stats.IndexedVectors++
	}
	return vec, ok
}

func (m *indexedMaterializer) traverseFrontier(p metapath.Path, fromHop int, frontier sparse.Vector) sparse.Vector {
	start := time.Now()
	for hop := fromHop; hop < p.Hops(); hop++ {
		frontier = m.tr.Expand(frontier, p.Type(hop+1))
		// One traversal per hop actually expanded, so a long fallback walk
		// is not undercounted as a single vector.
		m.stats.TraversedVectors++
		if frontier.IsZero() {
			break
		}
	}
	m.stats.TraversalTime += time.Since(start)
	return frontier
}

// ---------------------------------------------------------------------------
// PM

// NewPM builds the full pre-materialization strategy: Φ vectors for every
// schema-valid length-2 meta-path from every vertex. Construction cost is
// deliberately front-loaded (it models an offline indexing phase); query
// time then pays only index lookups plus single-hop traversal for
// odd-length paths.
func NewPM(g *hin.Graph) Materializer {
	return NewPMPaths(g, allLength2Paths(g.Schema()))
}

// NewPMPaths builds PM restricted to a subset of length-2 meta-paths
// (Section 6.2: "we may compute all length-2 paths or only a subset").
func NewPMPaths(g *hin.Graph, paths []metapath.Path) Materializer {
	tr := metapath.NewTraverser(g)
	ix := newPathIndex(g)
	for _, p := range paths {
		if p.Hops() != 2 {
			panic(fmt.Sprintf("core: PM pre-materializes length-2 paths only, got %v", p))
		}
		for _, v := range g.VerticesOfType(p.Source()) {
			vec, err := tr.NeighborVector(p, v)
			if err != nil {
				// Unreachable: sources are enumerated by type.
				panic(err)
			}
			ix.put(p, v, vec)
		}
	}
	return &indexedMaterializer{tr: tr, ix: ix, strategy: StrategyPM}
}

// ---------------------------------------------------------------------------
// SPM

// SPMConfig configures selective pre-materialization.
type SPMConfig struct {
	// Threshold is the relative frequency cutoff: a vertex is materialized
	// if it appears in the candidate set of at least Threshold·|queries| of
	// the initialization queries (Section 6.2; the paper studies 0.001,
	// 0.01, 0.05 and 0.1).
	Threshold float64
}

// NewSPM builds the selective pre-materialization strategy from an
// initialization query set: it resolves each query's candidate set with a
// throwaway baseline engine, counts how often each vertex appears across
// candidate sets, and pre-materializes all length-2 meta-paths starting
// from the vertices whose relative frequency reaches the threshold.
func NewSPM(g *hin.Graph, initQueries []string, cfg SPMConfig) (Materializer, error) {
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("core: SPM threshold must be in [0,1], got %g", cfg.Threshold)
	}
	freq := make(map[hin.VertexID]int)
	probe := NewEngine(g)
	for _, src := range initQueries {
		members, err := probe.CandidateSet(src)
		if err != nil {
			return nil, fmt.Errorf("core: SPM initialization query %q: %w", src, err)
		}
		for _, v := range members {
			freq[v]++
		}
	}
	cutoff := cfg.Threshold * float64(len(initQueries))
	var selected []hin.VertexID
	for v, n := range freq {
		if float64(n) >= cutoff {
			selected = append(selected, v)
		}
	}
	return newSPMFromVertices(g, selected), nil
}

// NewSPMVertices builds SPM with an explicit pre-selected vertex set,
// bypassing the frequency-counting phase. Useful for tests and for callers
// that track query logs themselves.
func NewSPMVertices(g *hin.Graph, vertices []hin.VertexID) Materializer {
	return newSPMFromVertices(g, vertices)
}

func newSPMFromVertices(g *hin.Graph, selected []hin.VertexID) Materializer {
	tr := metapath.NewTraverser(g)
	ix := newPathIndex(g)
	byType := make(map[hin.TypeID][]hin.VertexID)
	for _, v := range selected {
		byType[g.Type(v)] = append(byType[g.Type(v)], v)
	}
	for _, p := range allLength2Paths(g.Schema()) {
		for _, v := range byType[p.Source()] {
			vec, err := tr.NeighborVector(p, v)
			if err != nil {
				panic(err)
			}
			ix.put(p, v, vec)
		}
	}
	return &indexedMaterializer{tr: tr, ix: ix, strategy: StrategySPM}
}
