package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
	"netout/internal/obs"
	"netout/internal/xerr"
)

// ErrOverloaded is returned by ServePool.Execute when admission control is
// on (ServeOptions.MaxQueue > 0) and the queue is full: the pool sheds the
// query immediately instead of queueing unboundedly. Callers should treat it
// as retryable back-pressure: code RESOURCE_EXHAUSTED, HTTP 429, not 500.
var ErrOverloaded = xerr.New(xerr.ResourceExhausted, "core: serve pool overloaded")

// ErrPoolClosed is returned by ServePool.Execute once Close has begun: the
// pool is draining or gone and this replica cannot take the query. Its code
// is UNAVAILABLE (HTTP 503) — a shutting-down server is never the client's
// fault, and a load balancer should retry elsewhere.
var ErrPoolClosed = xerr.New(xerr.Unavailable, "core: ServePool is closed")

// ServePool is the serving front door for heavy query traffic: a bounded
// pool of workers, each with its own engine, all sharing one materializer
// through views. With a cached materializer the pool realizes the shared
// warm cache end to end — every worker's traversals warm every other
// worker's lookups, and concurrent misses on the same vertex are
// singleflighted. Unlike ExecuteBatch (one shot over a fixed query slice),
// a ServePool stays up and accepts queries one at a time from any number
// of goroutines, which matches an online analyst workload.
type ServePool struct {
	mu     sync.RWMutex // guards closed against concurrent Execute/Close
	closed bool
	jobs   chan serveJob
	wg     sync.WaitGroup

	maxQueue int           // admission control: queue bound (0 = unbounded)
	timeout  time.Duration // default per-query deadline (0 = none)
	grace    time.Duration // post-deadline wait for a degraded reply

	served    atomic.Int64
	failed    atomic.Int64
	queueNs   atomic.Int64
	executeNs atomic.Int64
	shed      atomic.Int64
	panics    atomic.Int64
	timeouts  atomic.Int64
	partials  atomic.Int64
	canceled  atomic.Int64

	// queueHist and execHist are per-query latency distributions, set when
	// the pool has a registry. They exist ALONGSIDE the *_seconds_total
	// CounterFuncs above, which keep their exact ServeStats correspondence;
	// the histograms add the shape (quantiles) the totals cannot express.
	queueHist *obs.Histogram
	execHist  *obs.Histogram
}

// ServeOptions configures NewServePool.
type ServeOptions struct {
	// Workers is the pool size (default: GOMAXPROCS).
	Workers int
	// Measure is the outlierness measure (default MeasureNetOut).
	Measure Measure
	// Combination is the multi-path combination mode (default average).
	Combination Combination
	// Materializer, if set, is shared across the workers via NewView
	// (warm-shared for caches, read-only for PM/SPM indexes); nil means
	// each worker gets its own baseline.
	Materializer Materializer
	// QueryParallelism bounds each worker engine's intra-query pipeline
	// (WithQueryParallelism). The pool default is 1 — pools already spread
	// queries across Workers cores, and letting every worker fan out to
	// GOMAXPROCS more goroutines would oversubscribe the machine. Raise it
	// for pools sized below the core count that still see huge single
	// queries.
	QueryParallelism int
	// Shards, when > 0, gives every worker engine a resident scatter–gather
	// shard group (WithShards): a query's candidates split across Shards
	// goroutines with private materializer views and the results are k-way
	// merged, bit-identical to unsharded execution. A slow or panicking
	// shard degrades its query to Partial instead of failing it (NetOut).
	// Each worker holds its own group, so the pool runs Workers × Shards
	// resident goroutines; Close releases them.
	Shards int
	// RemoteShards, when non-empty, scatters every worker engine's queries
	// across out-of-process shard servers instead of resident goroutines
	// (WithRemoteShards); it takes precedence over Shards. The clients are
	// shared by every worker — RemoteShard implementations are safe for
	// concurrent use — and are NOT closed by the pool: close them wherever
	// they were dialed, after the pool drains.
	RemoteShards []RemoteShard
	// MaxQueue, when positive, turns on admission control: at most MaxQueue
	// queries may be queued waiting for a worker, and further Execute calls
	// fail fast with ErrOverloaded instead of blocking unboundedly. 0 (the
	// default) keeps the pre-admission behavior: Execute blocks until a
	// worker is free or the context ends.
	MaxQueue int
	// DefaultTimeout, when positive, is the per-query deadline applied to
	// Execute calls whose context carries no deadline of its own. A caller
	// deadline always wins; DefaultTimeout is the pool's backstop against
	// runaway queries from callers that never set one.
	DefaultTimeout time.Duration
	// DrainGrace bounds how long Execute waits, after a query's deadline
	// expires, for the worker's own reply — which under the NetOut measure
	// is a Partial=true result covering the work done so far (see
	// Result.Partial). The worker observes the same expired deadline at its
	// next per-vertex check, so the reply normally arrives promptly; the
	// bound keeps a stalled materializer from stranding the caller. Default
	// 250ms; negative disables the wait (expired deadlines return
	// context.DeadlineExceeded immediately, as before).
	DrainGrace time.Duration
	// Obs, if set, receives the pool's metrics: served/failed totals,
	// shed/panic/timeout/partial counters, and cumulative
	// queue-wait/execute seconds (read from the same atomics Stats reports,
	// so a scrape matches ServeStats exactly), the shared materializer's
	// instruments, and every worker engine's per-query latency histograms.
	Obs *obs.Registry
	// SlowLog, if set, retains the pool's slowest queries with their traces.
	SlowLog *obs.SlowLog
	// Events, if set, receives one wide obs.Event per completed query from
	// every worker engine (see WithEventSink). The sink must be safe for
	// concurrent use — workers emit concurrently.
	Events obs.EventSink
	// Inflight, if set, tracks every executing query for the
	// /debug/requests inspector; its gauge is registered on Obs when both
	// are present.
	Inflight *obs.Inflight
}

// ServeStats summarizes a pool's lifetime traffic.
type ServeStats struct {
	// Served and Failed count completed queries by outcome (Failed includes
	// cancellations observed by a worker).
	Served, Failed int64
	// QueueWait is total time queries spent waiting for a free worker;
	// Execute is total time spent executing. MeanQueueWait and MeanExecute
	// report the per-query means.
	QueueWait, Execute time.Duration
	// Shed counts queries rejected with ErrOverloaded by admission control
	// (they never reached a worker and are in neither Served nor Failed).
	Shed int64
	// Panics counts worker panics recovered and converted into query errors
	// (each is also counted in Failed).
	Panics int64
	// Timeouts counts queries a worker completed with an expired deadline
	// (counted in Failed); Partials counts deadline-degraded queries that
	// still produced a Partial=true result (counted in Served).
	Timeouts, Partials int64
	// Canceled counts queries a worker observed aborting with
	// context.Canceled — a caller that went away, not a timeout and not a
	// server fault (counted in Failed, never in Timeouts).
	Canceled int64
}

// MeanQueueWait returns the mean time a query waited for a free worker,
// or 0 before any query completed.
func (s ServeStats) MeanQueueWait() time.Duration {
	if n := s.Served + s.Failed; n > 0 {
		return s.QueueWait / time.Duration(n)
	}
	return 0
}

// MeanExecute returns the mean query execution time, or 0 before any query
// completed.
func (s ServeStats) MeanExecute() time.Duration {
	if n := s.Served + s.Failed; n > 0 {
		return s.Execute / time.Duration(n)
	}
	return 0
}

type serveJob struct {
	ctx      context.Context
	src      string
	enqueued time.Time
	done     chan serveDone
}

type serveDone struct {
	res *Result
	err error
}

// NewServePool starts a worker pool over g. Callers must Close the pool to
// release its workers.
func NewServePool(g *hin.Graph, opts ServeOptions) (*ServePool, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queryPar := opts.QueryParallelism
	if queryPar <= 0 {
		queryPar = 1
	}
	engines := make([]*Engine, workers)
	for w := range engines {
		var mat Materializer
		if opts.Materializer != nil {
			view, err := NewView(opts.Materializer)
			if err != nil {
				return nil, err
			}
			mat = view
		} else {
			mat = NewBaseline(g)
		}
		engines[w] = NewEngine(g,
			WithMeasure(opts.Measure),
			WithCombination(opts.Combination),
			WithMaterializer(mat),
			WithQueryParallelism(queryPar),
			WithShards(opts.Shards),
			WithRemoteShards(opts.RemoteShards...),
			WithObs(opts.Obs, opts.SlowLog),
			WithEventSink(opts.Events),
			WithInflight(opts.Inflight))
	}
	maxQueue := opts.MaxQueue
	if maxQueue < 0 {
		maxQueue = 0
	}
	grace := opts.DrainGrace
	if grace == 0 {
		grace = 250 * time.Millisecond
	}
	p := &ServePool{
		// The queue buffer IS the admission bound: with MaxQueue set, a send
		// that cannot buffer means MaxQueue queries are already waiting.
		jobs:     make(chan serveJob, maxQueue),
		maxQueue: maxQueue,
		timeout:  opts.DefaultTimeout,
		grace:    grace,
	}
	if opts.Obs != nil {
		p.registerMetrics(opts.Obs, workers)
		if opts.Materializer != nil {
			RegisterMaterializerMetrics(opts.Obs, opts.Materializer)
		}
		if opts.Inflight != nil {
			opts.Inflight.RegisterMetrics(opts.Obs)
		}
	}
	for _, eng := range engines {
		p.wg.Add(1)
		go func(eng *Engine) {
			defer p.wg.Done()
			// Release the engine's resident shard goroutines (if any) once
			// the pool drains; a no-op for unsharded engines.
			defer eng.Close()
			for job := range p.jobs {
				p.serveJob(eng, job)
			}
		}(eng)
	}
	return p, nil
}

// serveJob runs one query on a worker's engine, isolating panics: the reply
// channel is ALWAYS written (a panic would otherwise strand the caller
// forever on a background context) and the worker survives to take the next
// job, so one hostile query cannot shrink pool capacity.
func (p *ServePool) serveJob(eng *Engine, job serveJob) {
	wait := time.Since(job.enqueued)
	p.queueNs.Add(wait.Nanoseconds())
	if p.queueHist != nil {
		p.queueHist.Observe(wait.Seconds())
	}
	// The wait rides the context into the engine so the query's wide event
	// reports how long it sat in the queue before a worker picked it up.
	ctx := obs.WithQueueWait(job.ctx, wait)
	start := time.Now()
	var res *Result
	err := func() (err error) {
		defer recoverAsError(&err)
		res, err = eng.ExecuteContext(ctx, job.src)
		return err
	}()
	elapsed := time.Since(start)
	p.executeNs.Add(elapsed.Nanoseconds())
	if p.execHist != nil {
		p.execHist.Observe(elapsed.Seconds())
	}
	if err != nil {
		res = nil
		p.failed.Add(1)
		switch {
		case IsPanicError(err):
			p.panics.Add(1)
		case degradable(err):
			// Deadline expiry only: cancellation must never inflate the
			// timeout count — degradable excludes context.Canceled.
			p.timeouts.Add(1)
		case errors.Is(err, context.Canceled):
			p.canceled.Add(1)
		}
	} else {
		p.served.Add(1)
		if res != nil && res.Partial {
			p.partials.Add(1)
		}
	}
	job.done <- serveDone{res: res, err: err}
}

// Execute runs one query on the pool, blocking until a worker is free and
// the query completes. It is safe to call from any number of goroutines.
// The context bounds both the wait for a worker and the execution itself;
// a query abandoned after dispatch still aborts promptly, because the
// worker checks the context at per-vertex granularity. When the pool has a
// DefaultTimeout and ctx carries no deadline, the timeout is applied here;
// with MaxQueue set, a full queue fails fast with ErrOverloaded; a closed
// pool fails with ErrPoolClosed.
//
// Every query is stamped with a per-request correlation ID — the caller's,
// when ctx carries one (obs.WithRequestID), or a fresh one. The ID rides
// the context into the engine's trace (Result.Trace.RequestID) and the
// slow-query log, and every error Execute returns carries it
// (xerr.RequestIDOf), so a failure is correlatable end to end.
func (p *ServePool) Execute(ctx context.Context, src string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rid := obs.RequestIDFrom(ctx)
	if rid == "" {
		rid = obs.NewRequestID()
		ctx = obs.WithRequestID(ctx, rid)
	}
	if p.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.timeout)
			defer cancel()
		}
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, xerr.WithRequestID(ErrPoolClosed, rid)
	}
	if err := ctxErr(ctx); err != nil {
		p.mu.RUnlock()
		return nil, xerr.WithRequestID(xerr.Interrupt(err), rid)
	}
	job := serveJob{ctx: ctx, src: src, enqueued: time.Now(), done: make(chan serveDone, 1)}
	if p.maxQueue > 0 {
		// Admission control: never block on the queue. A send that cannot
		// complete immediately means the buffer already holds MaxQueue
		// waiting queries — shed this one.
		select {
		case p.jobs <- job:
			p.mu.RUnlock()
		default:
			p.mu.RUnlock()
			p.shed.Add(1)
			return nil, xerr.WithRequestID(ErrOverloaded, rid)
		}
	} else {
		select {
		case p.jobs <- job:
			p.mu.RUnlock()
		case <-ctx.Done():
			p.mu.RUnlock()
			return nil, xerr.WithRequestID(xerr.Interrupt(ctx.Err()), rid)
		}
	}
	select {
	case d := <-job.done:
		return d.res, xerr.WithRequestID(d.err, rid)
	case <-ctx.Done():
		if degradable(ctx.Err()) && p.grace > 0 {
			// The worker observes this same expired deadline at its next
			// per-vertex check and replies promptly — under NetOut with a
			// Partial=true result covering the candidates scored so far.
			// Wait briefly for that reply instead of discarding it; the
			// bound keeps a stalled materializer from stranding us.
			t := time.NewTimer(p.grace)
			defer t.Stop()
			select {
			case d := <-job.done:
				return d.res, xerr.WithRequestID(d.err, rid)
			case <-t.C:
			}
		}
		// The worker aborts via the same context; its result is discarded
		// into the buffered done channel.
		return nil, xerr.WithRequestID(xerr.Interrupt(ctx.Err()), rid)
	}
}

// registerMetrics exposes the pool's traffic counters on reg, reading the
// same atomics Stats snapshots so scrape and ServeStats agree exactly.
func (p *ServePool) registerMetrics(reg *obs.Registry, workers int) {
	reg.GaugeFunc("netout_serve_workers", "Resident worker count of the serve pool.",
		func() float64 { return float64(workers) })
	reg.CounterFunc("netout_serve_served_total", "Queries completed successfully by the serve pool.",
		func() float64 { return float64(p.served.Load()) })
	reg.CounterFunc("netout_serve_failed_total", "Queries that failed or were cancelled in the serve pool.",
		func() float64 { return float64(p.failed.Load()) })
	reg.CounterFunc("netout_serve_queue_seconds_total", "Total seconds queries spent waiting for a free worker.",
		func() float64 { return float64(p.queueNs.Load()) / 1e9 })
	reg.CounterFunc("netout_serve_execute_seconds_total", "Total seconds workers spent executing queries.",
		func() float64 { return float64(p.executeNs.Load()) / 1e9 })
	reg.CounterFunc("netout_serve_shed_total", "Queries rejected with ErrOverloaded by admission control.",
		func() float64 { return float64(p.shed.Load()) })
	reg.CounterFunc("netout_serve_panics_total", "Worker panics recovered and converted into query errors.",
		func() float64 { return float64(p.panics.Load()) })
	reg.CounterFunc("netout_serve_timeouts_total", "Queries that failed with an expired deadline.",
		func() float64 { return float64(p.timeouts.Load()) })
	reg.CounterFunc("netout_serve_partials_total", "Deadline-degraded queries answered with a Partial=true result.",
		func() float64 { return float64(p.partials.Load()) })
	reg.CounterFunc("netout_serve_canceled_total", "Queries aborted by caller cancellation (not timeouts).",
		func() float64 { return float64(p.canceled.Load()) })
	p.queueHist = reg.Histogram("netout_serve_queue_seconds",
		"Per-query time spent waiting for a free worker.", nil)
	p.execHist = reg.Histogram("netout_serve_execute_seconds",
		"Per-query worker execution time.", nil)
}

// Ready reports whether the pool can accept queries: nil while open,
// ErrPoolClosed once Close has begun. It is the readiness source behind
// /readyz (obs.WithReadiness) — a draining replica stays alive for /healthz
// while telling the load balancer to route elsewhere.
func (p *ServePool) Ready() error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	return nil
}

// Stats returns a snapshot of the pool's traffic counters.
func (p *ServePool) Stats() ServeStats {
	return ServeStats{
		Served:    p.served.Load(),
		Failed:    p.failed.Load(),
		QueueWait: time.Duration(p.queueNs.Load()),
		Execute:   time.Duration(p.executeNs.Load()),
		Shed:      p.shed.Load(),
		Panics:    p.panics.Load(),
		Timeouts:  p.timeouts.Load(),
		Partials:  p.partials.Load(),
		Canceled:  p.canceled.Load(),
	}
}

// Close stops the pool and waits for in-flight queries to finish. Further
// Execute calls fail. Close is idempotent.
func (p *ServePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
