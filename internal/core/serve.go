package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
	"netout/internal/obs"
)

// ServePool is the serving front door for heavy query traffic: a bounded
// pool of workers, each with its own engine, all sharing one materializer
// through views. With a cached materializer the pool realizes the shared
// warm cache end to end — every worker's traversals warm every other
// worker's lookups, and concurrent misses on the same vertex are
// singleflighted. Unlike ExecuteBatch (one shot over a fixed query slice),
// a ServePool stays up and accepts queries one at a time from any number
// of goroutines, which matches an online analyst workload.
type ServePool struct {
	mu     sync.RWMutex // guards closed against concurrent Execute/Close
	closed bool
	jobs   chan serveJob
	wg     sync.WaitGroup

	served    atomic.Int64
	failed    atomic.Int64
	queueNs   atomic.Int64
	executeNs atomic.Int64
}

// ServeOptions configures NewServePool.
type ServeOptions struct {
	// Workers is the pool size (default: GOMAXPROCS).
	Workers int
	// Measure is the outlierness measure (default MeasureNetOut).
	Measure Measure
	// Combination is the multi-path combination mode (default average).
	Combination Combination
	// Materializer, if set, is shared across the workers via NewView
	// (warm-shared for caches, read-only for PM/SPM indexes); nil means
	// each worker gets its own baseline.
	Materializer Materializer
	// QueryParallelism bounds each worker engine's intra-query pipeline
	// (WithQueryParallelism). The pool default is 1 — pools already spread
	// queries across Workers cores, and letting every worker fan out to
	// GOMAXPROCS more goroutines would oversubscribe the machine. Raise it
	// for pools sized below the core count that still see huge single
	// queries.
	QueryParallelism int
	// Obs, if set, receives the pool's metrics: served/failed totals and
	// cumulative queue-wait/execute seconds (read from the same atomics
	// Stats reports, so a scrape matches ServeStats exactly), the shared
	// materializer's instruments, and every worker engine's per-query
	// latency histograms.
	Obs *obs.Registry
	// SlowLog, if set, retains the pool's slowest queries with their traces.
	SlowLog *obs.SlowLog
}

// ServeStats summarizes a pool's lifetime traffic.
type ServeStats struct {
	// Served and Failed count completed queries by outcome (Failed includes
	// cancellations observed by a worker).
	Served, Failed int64
	// QueueWait is total time queries spent waiting for a free worker;
	// Execute is total time spent executing. MeanQueueWait and MeanExecute
	// report the per-query means.
	QueueWait, Execute time.Duration
}

// MeanQueueWait returns the mean time a query waited for a free worker,
// or 0 before any query completed.
func (s ServeStats) MeanQueueWait() time.Duration {
	if n := s.Served + s.Failed; n > 0 {
		return s.QueueWait / time.Duration(n)
	}
	return 0
}

// MeanExecute returns the mean query execution time, or 0 before any query
// completed.
func (s ServeStats) MeanExecute() time.Duration {
	if n := s.Served + s.Failed; n > 0 {
		return s.Execute / time.Duration(n)
	}
	return 0
}

type serveJob struct {
	ctx      context.Context
	src      string
	enqueued time.Time
	done     chan serveDone
}

type serveDone struct {
	res *Result
	err error
}

// NewServePool starts a worker pool over g. Callers must Close the pool to
// release its workers.
func NewServePool(g *hin.Graph, opts ServeOptions) (*ServePool, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queryPar := opts.QueryParallelism
	if queryPar <= 0 {
		queryPar = 1
	}
	engines := make([]*Engine, workers)
	for w := range engines {
		var mat Materializer
		if opts.Materializer != nil {
			view, err := NewView(opts.Materializer)
			if err != nil {
				return nil, err
			}
			mat = view
		} else {
			mat = NewBaseline(g)
		}
		engines[w] = NewEngine(g,
			WithMeasure(opts.Measure),
			WithCombination(opts.Combination),
			WithMaterializer(mat),
			WithQueryParallelism(queryPar),
			WithObs(opts.Obs, opts.SlowLog))
	}
	p := &ServePool{jobs: make(chan serveJob)}
	if opts.Obs != nil {
		p.registerMetrics(opts.Obs, workers)
		if opts.Materializer != nil {
			RegisterMaterializerMetrics(opts.Obs, opts.Materializer)
		}
	}
	for _, eng := range engines {
		p.wg.Add(1)
		go func(eng *Engine) {
			defer p.wg.Done()
			for job := range p.jobs {
				p.queueNs.Add(time.Since(job.enqueued).Nanoseconds())
				start := time.Now()
				res, err := eng.ExecuteContext(job.ctx, job.src)
				p.executeNs.Add(time.Since(start).Nanoseconds())
				if err != nil {
					p.failed.Add(1)
				} else {
					p.served.Add(1)
				}
				job.done <- serveDone{res: res, err: err}
			}
		}(eng)
	}
	return p, nil
}

// Execute runs one query on the pool, blocking until a worker is free and
// the query completes. It is safe to call from any number of goroutines.
// The context bounds both the wait for a worker and the execution itself;
// a query abandoned after dispatch still aborts promptly, because the
// worker checks the context at per-vertex granularity.
func (p *ServePool) Execute(ctx context.Context, src string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, fmt.Errorf("core: ServePool is closed")
	}
	job := serveJob{ctx: ctx, src: src, enqueued: time.Now(), done: make(chan serveDone, 1)}
	select {
	case p.jobs <- job:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case d := <-job.done:
		return d.res, d.err
	case <-ctx.Done():
		// The worker aborts via the same context; its result is discarded
		// into the buffered done channel.
		return nil, ctx.Err()
	}
}

// registerMetrics exposes the pool's traffic counters on reg, reading the
// same atomics Stats snapshots so scrape and ServeStats agree exactly.
func (p *ServePool) registerMetrics(reg *obs.Registry, workers int) {
	reg.GaugeFunc("netout_serve_workers", "Resident worker count of the serve pool.",
		func() float64 { return float64(workers) })
	reg.CounterFunc("netout_serve_served_total", "Queries completed successfully by the serve pool.",
		func() float64 { return float64(p.served.Load()) })
	reg.CounterFunc("netout_serve_failed_total", "Queries that failed or were cancelled in the serve pool.",
		func() float64 { return float64(p.failed.Load()) })
	reg.CounterFunc("netout_serve_queue_seconds_total", "Total seconds queries spent waiting for a free worker.",
		func() float64 { return float64(p.queueNs.Load()) / 1e9 })
	reg.CounterFunc("netout_serve_execute_seconds_total", "Total seconds workers spent executing queries.",
		func() float64 { return float64(p.executeNs.Load()) / 1e9 })
}

// Stats returns a snapshot of the pool's traffic counters.
func (p *ServePool) Stats() ServeStats {
	return ServeStats{
		Served:    p.served.Load(),
		Failed:    p.failed.Load(),
		QueueWait: time.Duration(p.queueNs.Load()),
		Execute:   time.Duration(p.executeNs.Load()),
	}
}

// Close stops the pool and waits for in-flight queries to finish. Further
// Execute calls fail. Close is idempotent.
func (p *ServePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
