package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
)

// ServePool is the serving front door for heavy query traffic: a bounded
// pool of workers, each with its own engine, all sharing one materializer
// through views. With a cached materializer the pool realizes the shared
// warm cache end to end — every worker's traversals warm every other
// worker's lookups, and concurrent misses on the same vertex are
// singleflighted. Unlike ExecuteBatch (one shot over a fixed query slice),
// a ServePool stays up and accepts queries one at a time from any number
// of goroutines, which matches an online analyst workload.
type ServePool struct {
	mu     sync.RWMutex // guards closed against concurrent Execute/Close
	closed bool
	jobs   chan serveJob
	wg     sync.WaitGroup

	served    atomic.Int64
	failed    atomic.Int64
	queueNs   atomic.Int64
	executeNs atomic.Int64
}

// ServeOptions configures NewServePool.
type ServeOptions struct {
	// Workers is the pool size (default: GOMAXPROCS).
	Workers int
	// Measure is the outlierness measure (default MeasureNetOut).
	Measure Measure
	// Combination is the multi-path combination mode (default average).
	Combination Combination
	// Materializer, if set, is shared across the workers via NewView
	// (warm-shared for caches, read-only for PM/SPM indexes); nil means
	// each worker gets its own baseline.
	Materializer Materializer
}

// ServeStats summarizes a pool's lifetime traffic.
type ServeStats struct {
	// Served and Failed count completed queries by outcome (Failed includes
	// cancellations observed by a worker).
	Served, Failed int64
	// QueueWait is total time queries spent waiting for a free worker;
	// Execute is total time spent executing. Divide by Served+Failed for
	// per-query means.
	QueueWait, Execute time.Duration
}

type serveJob struct {
	ctx      context.Context
	src      string
	enqueued time.Time
	done     chan serveDone
}

type serveDone struct {
	res *Result
	err error
}

// NewServePool starts a worker pool over g. Callers must Close the pool to
// release its workers.
func NewServePool(g *hin.Graph, opts ServeOptions) (*ServePool, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	engines := make([]*Engine, workers)
	for w := range engines {
		var mat Materializer
		if opts.Materializer != nil {
			view, err := NewView(opts.Materializer)
			if err != nil {
				return nil, err
			}
			mat = view
		} else {
			mat = NewBaseline(g)
		}
		engines[w] = NewEngine(g,
			WithMeasure(opts.Measure),
			WithCombination(opts.Combination),
			WithMaterializer(mat))
	}
	p := &ServePool{jobs: make(chan serveJob)}
	for _, eng := range engines {
		p.wg.Add(1)
		go func(eng *Engine) {
			defer p.wg.Done()
			for job := range p.jobs {
				p.queueNs.Add(time.Since(job.enqueued).Nanoseconds())
				start := time.Now()
				res, err := eng.ExecuteContext(job.ctx, job.src)
				p.executeNs.Add(time.Since(start).Nanoseconds())
				if err != nil {
					p.failed.Add(1)
				} else {
					p.served.Add(1)
				}
				job.done <- serveDone{res: res, err: err}
			}
		}(eng)
	}
	return p, nil
}

// Execute runs one query on the pool, blocking until a worker is free and
// the query completes. It is safe to call from any number of goroutines.
// The context bounds both the wait for a worker and the execution itself;
// a query abandoned after dispatch still aborts promptly, because the
// worker checks the context at per-vertex granularity.
func (p *ServePool) Execute(ctx context.Context, src string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, fmt.Errorf("core: ServePool is closed")
	}
	job := serveJob{ctx: ctx, src: src, enqueued: time.Now(), done: make(chan serveDone, 1)}
	select {
	case p.jobs <- job:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case d := <-job.done:
		return d.res, d.err
	case <-ctx.Done():
		// The worker aborts via the same context; its result is discarded
		// into the buffered done channel.
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the pool's traffic counters.
func (p *ServePool) Stats() ServeStats {
	return ServeStats{
		Served:    p.served.Load(),
		Failed:    p.failed.Load(),
		QueueWait: time.Duration(p.queueNs.Load()),
		Execute:   time.Duration(p.executeNs.Load()),
	}
}

// Close stops the pool and waits for in-flight queries to finish. Further
// Execute calls fail. Close is idempotent.
func (p *ServePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
