package core

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// The cached materializer's state is sharded so that a query-serving
// workload (ExecuteBatch, ServePool) can share one warm cache across all
// workers: the map/LRU bookkeeping is split over cacheShardCount
// mutex-guarded shards keyed by a hash of the cache key, all counters are
// atomic, and concurrent misses on the same (path, vertex) are coalesced by
// a singleflight group so the network is traversed once, not once per
// worker. Correctness does not depend on the shard count; it only bounds
// lock contention.

// cacheShardCount must be a power of two (the shard index is a bitmask).
const cacheShardCount = 16

// ckey identifies one cached Φ vector: the canonical subpath key (one byte
// per vertex type, metapath.Path.Key) and the source vertex. It is a
// comparable struct rather than a concatenated string so building a probe
// key is two field copies — no per-lookup allocation — and the key of any
// prefix of a path is a substring of the full path's key, which in Go
// shares the backing bytes (probing every prefix allocates nothing).
type ckey struct {
	path string
	v    hin.VertexID
}

type cacheEntry struct {
	key ckey
	vec sparse.Vector
}

// cacheShard is one mutex-guarded slice of the cache: a map for lookup and
// an LRU list for eviction order, with byte accounting local to the shard.
type cacheShard struct {
	mu      sync.Mutex
	entries map[ckey]*list.Element
	order   *list.List // front = most recent
	bytes   int64      // guarded by mu
}

func (sh *cacheShard) get(key ckey) (sparse.Vector, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return sparse.Vector{}, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*cacheEntry).vec, true
}

// sharedCacheState is the state every view of one cached materializer
// shares: the shard set (warm entries), the singleflight group, a traverser
// pool and the aggregated counters. All counter fields are atomic so that
// Stats/CacheStats totals are exact under concurrency.
type sharedCacheState struct {
	g        *hin.Graph
	maxBytes int64
	shards   [cacheShardCount]cacheShard
	flight   flightGroup

	// subpath enables subpath-decomposed evaluation (WithSubpathCache):
	// misses resume from the longest cached prefix of the path and may
	// persist intermediate frontiers for other paths to resume from.
	subpath bool
	// planner drives the kernel/persist decisions of subpath evaluation;
	// nil means the naive policy (adaptive kernels, persist everything).
	planner *Planner
	// plannerOff suppresses the default planner under WithSubpathCache.
	plannerOff bool

	// traversers pools per-goroutine scratch space for cache misses
	// (metapath.Traverser is not safe for concurrent use).
	traversers sync.Pool

	// victim rotates eviction across shards (approximate global LRU).
	victim atomic.Uint64

	bytes     atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	deduped   atomic.Int64

	// prefixHits counts misses that resumed from a cached proper-prefix
	// frontier instead of traversing from the source; hopsSaved totals the
	// hops those resumes skipped. Both are zero outside subpath mode.
	prefixHits atomic.Int64
	hopsSaved  atomic.Int64

	indexedNs     atomic.Int64
	traversalNs   atomic.Int64
	indexedVecs   atomic.Int64
	traversedVecs atomic.Int64
}

func newSharedCacheState(g *hin.Graph, maxBytes int64) *sharedCacheState {
	st := &sharedCacheState{g: g, maxBytes: maxBytes}
	st.traversers.New = func() any { return metapath.NewTraverser(g) }
	for i := range st.shards {
		st.shards[i].entries = make(map[ckey]*list.Element)
		st.shards[i].order = list.New()
	}
	return st
}

// shard maps a cache key to its shard by FNV-1a hash over the subpath bytes
// and the vertex ID.
func (st *sharedCacheState) shard(key ckey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key.path); i++ {
		h ^= uint64(key.path[i])
		h *= prime64
	}
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(byte(key.v >> shift))
		h *= prime64
	}
	return &st.shards[h&(cacheShardCount-1)]
}

// indexEntryOverhead approximates the per-entry bookkeeping cost of a cache
// entry (map bucket share, vertex key, two slice headers).
const indexEntryOverhead = 4 + 2*24

func cacheEntrySize(key ckey, vec sparse.Vector) int64 {
	return int64(vec.Bytes()) + indexEntryOverhead + int64(len(key.path)) + 4
}

// lookup probes the cache, charging probe time and a hit to the counters.
func (st *sharedCacheState) lookup(key ckey) (sparse.Vector, bool) {
	start := time.Now()
	vec, ok := st.shard(key).get(key)
	if ok {
		st.indexedNs.Add(time.Since(start).Nanoseconds())
		st.indexedVecs.Add(1)
		st.hits.Add(1)
	}
	return vec, ok
}

// load resolves a miss: at most one goroutine per key traverses the
// network; every other concurrent caller for the same key waits for that
// result. The leader re-checks the cache inside the flight, so a load that
// raced with a completed insert is served warm too.
func (st *sharedCacheState) load(p metapath.Path, v hin.VertexID, key ckey) (sparse.Vector, error) {
	start := time.Now()
	sh := st.shard(key)
	traversed := false
	vec, err := st.flight.do(key, func() (sparse.Vector, error) {
		if vec, ok := sh.get(key); ok {
			return vec, nil
		}
		traversed = true
		if st.subpath {
			return st.materializeDecomposed(p, v, key)
		}
		tr := st.traversers.Get().(*metapath.Traverser)
		vec, err := tr.NeighborVector(p, v)
		st.traversers.Put(tr)
		if err != nil {
			return sparse.Vector{}, err
		}
		st.insert(key, vec)
		return vec, nil
	})
	elapsed := time.Since(start).Nanoseconds()
	if traversed {
		// This goroutine led the flight and traversed the network.
		st.traversalNs.Add(elapsed)
		st.traversedVecs.Add(1)
		st.misses.Add(1)
	} else {
		// Served by another goroutine's in-flight traversal (or by the
		// re-check): no network work was done on this call, so it counts as
		// a warm load, with Deduped recording the coalescing.
		st.indexedNs.Add(elapsed)
		st.indexedVecs.Add(1)
		st.hits.Add(1)
		st.deduped.Add(1)
	}
	return vec, err
}

// materializeDecomposed computes Φ_P(v) by subpath decomposition: resume
// hop-by-hop expansion from the longest cached prefix frontier of P at v,
// persisting the intermediates the planner deems profitable along the way.
//
// Bit-identity: a cached prefix entry is, by induction, exactly the frontier
// whole-path traversal holds after that prefix's hops (the entry was itself
// produced by this expansion sequence from the seed vertex), and every
// expansion kernel is bit-equal, so resuming performs the identical floating-
// point operation sequence as Traverser.NeighborVector — Float64bits-equal
// output, not merely approximately equal. Suffix recombination (summing
// Φ_suffix over the frontier) would reassociate the additions and break this,
// which is why only prefix reuse is implemented.
//
// The caller (load) holds the singleflight slot for the FULL key only;
// prefix probes and intermediate inserts touch one shard lock at a time, so
// an entry evicted between probe and use merely degrades this call to more
// traversal — the probed vector value itself is immutable and stays valid.
func (st *sharedCacheState) materializeDecomposed(p metapath.Path, v hin.VertexID, key ckey) (sparse.Vector, error) {
	var plan *pathPlan
	if st.planner != nil {
		plan = st.planner.planFor(p)
	}
	pk := p.Key()
	// Probe prefixes longest-first. A prefix of k types covers k-1 hops; the
	// shortest useful prefix has 2 types (1 hop). Probes move entries to the
	// LRU front but do not count as Hits — the Hits+Misses == loads contract
	// tracks NeighborVector calls, and this whole call is one Miss.
	cur := sparse.Vector{Idx: []int32{int32(v)}, Val: []float64{1}}
	startHop := 0
	for k := p.Len() - 1; k >= 2; k-- {
		pref := ckey{path: pk[:k], v: v}
		if vec, ok := st.shard(pref).get(pref); ok {
			cur, startHop = vec, k-1
			break
		}
	}
	tr := st.traversers.Get().(*metapath.Traverser)
	for hop := startHop; hop < p.Hops(); hop++ {
		kern := metapath.KernelAuto
		if plan != nil {
			kern = plan.kernels[hop]
		}
		cur = tr.ExpandWith(kern, cur, p.Type(hop+1))
		if cur.IsZero() {
			break // empty frontier: Φ_P(v) is zero, like whole-path traversal
		}
		// Persist the boundary frontier (prefix of hop+2 types) when the plan
		// marks it profitable; without a planner, persist everything and let
		// the LRU sort it out.
		if b := hop + 2; b < p.Len() && (plan == nil || plan.persist[b]) {
			st.insert(ckey{path: pk[:b], v: v}, cur)
			if st.planner != nil {
				st.planner.count(planPersistIntermediate)
			}
		}
	}
	st.traversers.Put(tr)
	st.insert(key, cur)
	if startHop > 0 {
		st.prefixHits.Add(1)
		st.hopsSaved.Add(int64(startHop))
		if st.planner != nil {
			st.planner.count(planPrefixResume)
		}
	} else if st.planner != nil {
		st.planner.count(planFullTraverse)
	}
	return cur, nil
}

// insert stores a vector, superseding any entry already present under the
// same key (its element is unlinked and its bytes reclaimed — with
// singleflight this is rare, but eviction between a flight's re-check and
// its insert can race a second flight for the same key). The global byte
// budget is then enforced by evicting LRU tails, rotating across shards.
func (st *sharedCacheState) insert(key ckey, vec sparse.Vector) {
	size := cacheEntrySize(key, vec)
	if size > st.maxBytes {
		return // larger than the whole cache: do not thrash
	}
	sh := st.shard(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		oldSize := cacheEntrySize(old.key, old.vec)
		sh.order.Remove(el)
		delete(sh.entries, key)
		sh.bytes -= oldSize
		st.bytes.Add(-oldSize)
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, vec: vec})
	sh.bytes += size
	sh.mu.Unlock()
	st.bytes.Add(size)
	for st.bytes.Load() > st.maxBytes {
		if !st.evictOne() {
			break
		}
	}
}

// evictOne drops the LRU tail of the next non-empty shard in rotation.
// Per-shard LRU with a rotating victim approximates global LRU while never
// holding more than one shard lock at a time.
func (st *sharedCacheState) evictOne() bool {
	for i := 0; i < cacheShardCount; i++ {
		sh := &st.shards[st.victim.Add(1)&(cacheShardCount-1)]
		sh.mu.Lock()
		tail := sh.order.Back()
		if tail == nil {
			sh.mu.Unlock()
			continue
		}
		e := tail.Value.(*cacheEntry)
		size := cacheEntrySize(e.key, e.vec)
		sh.order.Remove(tail)
		delete(sh.entries, e.key)
		sh.bytes -= size
		sh.mu.Unlock()
		st.bytes.Add(-size)
		st.evictions.Add(1)
		return true
	}
	return false
}

func (st *sharedCacheState) matStats() MatStats {
	return MatStats{
		IndexedTime:      time.Duration(st.indexedNs.Load()),
		TraversalTime:    time.Duration(st.traversalNs.Load()),
		IndexedVectors:   st.indexedVecs.Load(),
		TraversedVectors: st.traversedVecs.Load(),
	}
}

func (st *sharedCacheState) cacheStats() CacheStats {
	return CacheStats{
		Hits:       st.hits.Load(),
		Misses:     st.misses.Load(),
		Evictions:  st.evictions.Load(),
		Deduped:    st.deduped.Load(),
		PrefixHits: st.prefixHits.Load(),
		HopsSaved:  st.hopsSaved.Load(),
		Bytes:      st.bytes.Load(),
	}
}

// recomputeBytes walks every shard and re-sums entry sizes; tests use it to
// verify the atomic byte accounting against ground truth.
func (st *sharedCacheState) recomputeBytes() int64 {
	var total int64
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			total += cacheEntrySize(e.key, e.vec)
		}
		sh.mu.Unlock()
	}
	return total
}

// ---------------------------------------------------------------------------
// Singleflight

// flightCall is one in-flight materialization; waiters block on wg.
type flightCall struct {
	wg  sync.WaitGroup
	vec sparse.Vector
	err error
}

// flightGroup deduplicates concurrent loads per key (a minimal
// singleflight: no external dependency, vector-typed results).
type flightGroup struct {
	mu sync.Mutex
	m  map[ckey]*flightCall
}

// do runs fn once per key among concurrent callers; every caller receives
// the leader's result. fn runs outside the group lock.
func (fg *flightGroup) do(key ckey, fn func() (sparse.Vector, error)) (sparse.Vector, error) {
	fg.mu.Lock()
	if fg.m == nil {
		fg.m = make(map[ckey]*flightCall)
	}
	if call, ok := fg.m[key]; ok {
		fg.mu.Unlock()
		call.wg.Wait()
		return call.vec, call.err
	}
	call := &flightCall{}
	call.wg.Add(1)
	fg.m[key] = call
	fg.mu.Unlock()

	call.vec, call.err = fn()

	fg.mu.Lock()
	delete(fg.m, key)
	fg.mu.Unlock()
	call.wg.Done()
	return call.vec, call.err
}
