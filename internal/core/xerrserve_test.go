package core

// Tests for the serving error taxonomy: typed sentinels, cancel-vs-deadline
// accounting, and request-ID threading from Execute through the trace, the
// returned error and the slow log's failure ring.

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/xerr"
)

// A drained pool must refuse queries with the typed ErrPoolClosed
// (UNAVAILABLE — the server's state, never the client's query), not an
// anonymous error that the HTTP layer would misclassify as a 400.
func TestServePoolClosedTyped(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(41)))
	pool, err := NewServePool(g, ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	res, err := pool.Execute(context.Background(), faultQuery)
	if res != nil {
		t.Fatalf("res = %+v, want nil from a closed pool", res)
	}
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	if xerr.CodeOf(err) != xerr.Unavailable {
		t.Fatalf("CodeOf = %s, want UNAVAILABLE", xerr.CodeOf(err))
	}
	if xerr.RequestIDOf(err) == "" {
		t.Fatal("closed-pool error carries no request ID")
	}
}

// The pool's typed sentinels classify for the adapters without any string
// matching.
func TestServeSentinelCodes(t *testing.T) {
	if xerr.CodeOf(ErrOverloaded) != xerr.ResourceExhausted {
		t.Fatalf("ErrOverloaded code = %s", xerr.CodeOf(ErrOverloaded))
	}
	if xerr.CodeOf(ErrPoolClosed) != xerr.Unavailable {
		t.Fatalf("ErrPoolClosed code = %s", xerr.CodeOf(ErrPoolClosed))
	}
	if xerr.HTTPStatus(ErrPoolClosed) != 503 {
		t.Fatalf("ErrPoolClosed status = %d, want 503", xerr.HTTPStatus(ErrPoolClosed))
	}
	if xerr.HTTPStatus(ErrOverloaded) != 429 {
		t.Fatalf("ErrOverloaded status = %d, want 429", xerr.HTTPStatus(ErrOverloaded))
	}
}

// Cancellation is not a timeout: a query aborted by its caller must count
// in ServeStats.Canceled (and Failed), never in Timeouts, and surface in
// its own metric.
func TestServePoolCancelNotTimeout(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(43)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var loads atomic.Int64
	fm := &faultMat{inner: NewBaseline(g), hook: func(metapath.Path, hin.VertexID) {
		if loads.Add(1) == 2 { // mid-execution, after the worker picked it up
			cancel()
		}
	}}
	reg := obs.NewRegistry()
	pool, err := NewServePool(g, ServeOptions{Workers: 1, Materializer: fm, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Execute(ctx, faultQuery)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if xerr.CodeOf(err) != xerr.Canceled {
		t.Fatalf("CodeOf = %s, want CANCELED", xerr.CodeOf(err))
	}
	pool.Close() // joins the worker, so the accounting below is settled
	st := pool.Stats()
	if st.Failed != 1 || st.Canceled != 1 || st.Timeouts != 0 {
		t.Fatalf("stats = %+v, want Failed=1 Canceled=1 Timeouts=0", st)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "netout_serve_canceled_total 1") {
		t.Fatalf("scrape missing canceled counter:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "netout_serve_timeouts_total 0") {
		t.Fatalf("cancellation inflated the timeout counter:\n%s", sb.String())
	}
}

// Request-ID threading on the happy path: Execute generates an ID when the
// caller has none, and the ID lands on the result's trace; a caller-supplied
// ID is honored verbatim.
func TestServePoolRequestIDThreading(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(47)))
	pool, err := NewServePool(g, ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	res, err := pool.Execute(context.Background(), faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.RequestID == "" {
		t.Fatal("no request ID on the trace of a pool-served query")
	}

	ctx := obs.WithRequestID(context.Background(), "caller-supplied-id")
	res, err = pool.Execute(ctx, faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.RequestID != "caller-supplied-id" {
		t.Fatalf("trace rid = %q, want the caller's", res.Trace.RequestID)
	}
}

// The 500-debuggability contract end to end: a worker panic comes back as a
// request-ID-stamped INTERNAL defect, and that same ID addresses the
// slow log's failure ring, where the stack of the panic is retained.
func TestServePoolPanicRequestIDLocatesStack(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(53)))
	fm := &faultMat{inner: NewBaseline(g), hook: fireOnce("injected rid fault")}
	slow := obs.NewSlowLog(4)
	pool, err := NewServePool(g, ServeOptions{Workers: 1, Materializer: fm, SlowLog: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	res, err := pool.Execute(context.Background(), faultQuery)
	if res != nil || !IsPanicError(err) {
		t.Fatalf("got (%v, %v), want (nil, *PanicError)", res, err)
	}
	if xerr.CodeOf(err) != xerr.Internal || xerr.KindOf(err) != xerr.KindDefect {
		t.Fatalf("panic classified as %s/%s, want defect/INTERNAL", xerr.KindOf(err), xerr.CodeOf(err))
	}
	rid := xerr.RequestIDOf(err)
	if rid == "" {
		t.Fatal("panic error carries no request ID")
	}
	if st := xerr.StackOf(err); !strings.Contains(st, "NeighborVector") {
		t.Fatalf("StackOf through the rid wrapper lost the panic stack:\n%s", st)
	}

	// The failure ring is written by the engine's observation hook on the
	// worker goroutine; Execute has returned, so it is already recorded.
	var entry *obs.SlowEntry
	deadline := time.Now().Add(5 * time.Second)
	for entry == nil {
		for _, f := range slow.Failures() {
			if f.RequestID == rid {
				f := f
				entry = &f
			}
		}
		if entry == nil {
			if time.Now().After(deadline) {
				t.Fatalf("no failure entry with rid %q in the slow log (failures: %+v)", rid, slow.Failures())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !strings.Contains(entry.Err, "injected rid fault") {
		t.Fatalf("failure entry error = %q", entry.Err)
	}
	if !strings.Contains(entry.Stack, "injected rid fault") && !strings.Contains(entry.Stack, "NeighborVector") {
		t.Fatalf("failure entry retains no usable stack:\n%s", entry.Stack)
	}
	// And the rendered /debug/slow page carries the correlation.
	page := slow.Format()
	if !strings.Contains(page, "rid="+rid) {
		t.Fatalf("slow log page does not mention rid %q:\n%s", rid, page)
	}
}

// Engine errors carry their taxonomy codes: the codes — not the strings —
// are what the HTTP layer keys on.
func TestEngineErrorCodes(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(59)))
	eng := NewEngine(g)
	for _, tc := range []struct {
		src  string
		code xerr.Code
	}{
		{`FIND OUTLIERS FROM author{"No Such Author"} JUDGED BY author.paper.venue;`, xerr.NotFound},
		{`FIND OUTLIERS FROM widget JUDGED BY author.paper.venue;`, xerr.InvalidArgument},
		{`FIND OUTLIERS FROM;`, xerr.InvalidArgument}, // parse error
		{`FIND OUTLIERS FROM author;`, xerr.InvalidArgument},
	} {
		_, err := eng.Execute(tc.src)
		if err == nil {
			t.Fatalf("%s: expected an error", tc.src)
		}
		if got := xerr.CodeOf(err); got != tc.code {
			t.Errorf("%s: code = %s, want %s", tc.src, got, tc.code)
		}
	}
}
