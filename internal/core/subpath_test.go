package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/sparse"
)

// Tests for the subpath-decomposed cache and its cost-based planner. The
// load-bearing property throughout: decomposed evaluation is BIT-identical
// to whole-path evaluation — Float64bits-equal scores and vectors, equal
// ranks and skip lists — for every kernel, measure, worker count and cache
// condition (cold, warm, byte-starved). Decomposition may only change which
// work is skipped, never any result.

// vecBitEqual asserts two vectors are exactly equal, coordinate indices and
// Float64bits of every value.
func vecBitEqual(t *testing.T, label string, want, got sparse.Vector) {
	t.Helper()
	if len(want.Idx) != len(got.Idx) {
		t.Fatalf("%s: nnz %d, want %d", label, len(got.Idx), len(want.Idx))
	}
	for i := range want.Idx {
		if want.Idx[i] != got.Idx[i] || math.Float64bits(want.Val[i]) != math.Float64bits(got.Val[i]) {
			t.Fatalf("%s: coordinate %d = (%d, %x), want (%d, %x)", label, i,
				got.Idx[i], math.Float64bits(got.Val[i]), want.Idx[i], math.Float64bits(want.Val[i]))
		}
	}
}

// entriesBitEqual asserts two results rank the same vertices with
// Float64bits-equal scores and identical skip lists.
func entriesBitEqual(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Entries) != len(got.Entries) || len(want.Skipped) != len(got.Skipped) {
		t.Fatalf("%s: %d entries / %d skipped, want %d / %d", label,
			len(got.Entries), len(got.Skipped), len(want.Entries), len(want.Skipped))
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		if w.Vertex != g.Vertex || math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, g, w)
		}
	}
	for i := range want.Skipped {
		if want.Skipped[i] != got.Skipped[i] {
			t.Fatalf("%s: skipped[%d] = %d, want %d", label, i, got.Skipped[i], want.Skipped[i])
		}
	}
}

// overlappingQueries share meta-path prefixes across queries: the features
// of the later ones extend the earlier ones, which is exactly the overlap
// the subpath cache exists to exploit.
var overlappingQueries = []string{
	`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 10;`,
	`FIND OUTLIERS FROM author JUDGED BY author.paper.venue.paper.author TOP 10;`,
	`FIND OUTLIERS FROM author JUDGED BY author.paper.venue.paper.author.paper.term TOP 10;`,
	`FIND OUTLIERS FROM author JUDGED BY author.paper.author, author.paper.author.paper.venue TOP 10;`,
}

// TestSubpathBitIdenticalProperty is the acceptance property: for every
// measure × worker count × {planner on, planner off} × {roomy, byte-starved}
// cache, with each query run cold then warm, the subpath-decomposed engine's
// output is bit-identical to the baseline engine's.
func TestSubpathBitIdenticalProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		variants := []struct {
			name  string
			bytes int64
			opts  []CacheOption
		}{
			{"planner", 64 << 20, []CacheOption{WithSubpathCache()}},
			{"noplanner", 64 << 20, []CacheOption{WithSubpathCache(), WithCachePlanner(false)}},
			{"starved", 900, []CacheOption{WithSubpathCache()}},
		}
		for _, m := range []Measure{MeasureNetOut, MeasurePathSim, MeasureCosSim} {
			base := NewEngine(g, WithMeasure(m))
			want := make([]*Result, len(overlappingQueries))
			for i, src := range overlappingQueries {
				res, err := base.Execute(src)
				if err != nil {
					t.Fatalf("seed %d baseline %q: %v", seed, src, err)
				}
				want[i] = res
			}
			for _, workers := range []int{1, 3} {
				for _, v := range variants {
					mat, err := NewCached(g, v.bytes, v.opts...)
					if err != nil {
						t.Fatal(err)
					}
					eng := NewEngine(g, WithMeasure(m), WithMaterializer(mat), WithQueryParallelism(workers))
					for i, src := range overlappingQueries {
						for run := 0; run < 2; run++ { // cold then warm
							label := fmt.Sprintf("seed %d %s workers=%d %s q%d run%d", seed, m, workers, v.name, i, run)
							res, err := eng.Execute(src)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							entriesBitEqual(t, label, want[i], res)
						}
					}
					cs, _ := CacheStatsOf(mat)
					if cs.Hits+cs.Misses == 0 {
						t.Fatalf("seed %d %s: cache saw no loads", seed, v.name)
					}
					if v.name == "planner" && cs.PrefixHits == 0 {
						t.Fatalf("seed %d workers=%d: overlapping queries produced no prefix resumes: %+v", seed, workers, cs)
					}
					if cs.HopsSaved < cs.PrefixHits {
						t.Fatalf("seed %d: HopsSaved %d < PrefixHits %d", seed, cs.HopsSaved, cs.PrefixHits)
					}
				}
			}
		}
	}
}

// TestSubpathKernelsBitIdentical pins decomposed Φ vectors against
// whole-path traversal under every forced kernel: all four must agree with
// the decomposed result to the bit, regardless of which prefix it resumed
// from.
func TestSubpathKernelsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := randomBibGraph(r)
	mat, err := NewCached(g, 64<<20, WithSubpathCache())
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		"author.paper.venue",
		"author.paper.venue.paper.author",
		"author.paper.venue.paper.author.paper.term",
	}
	a, _ := g.Schema().TypeByName("author")
	kernels := []metapath.Kernel{metapath.KernelAuto, metapath.KernelMap, metapath.KernelDense, metapath.KernelMerge}
	for _, dotted := range paths { // shortest first, so longer paths resume
		p, err := metapath.ParseDotted(g.Schema(), dotted)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range g.VerticesOfType(a) {
			got, err := mat.NeighborVector(p, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range kernels {
				tr := metapath.NewTraverser(g)
				tr.SetKernel(k)
				want, err := tr.NeighborVector(p, v)
				if err != nil {
					t.Fatal(err)
				}
				vecBitEqual(t, fmt.Sprintf("%s v%d kernel=%s", dotted, v, k), want, got)
			}
		}
	}
	cs, _ := CacheStatsOf(mat)
	if cs.PrefixHits == 0 {
		t.Fatalf("no prefix resumes across nested paths: %+v", cs)
	}
}

// TestSubpathEvictionDegradesToTraversal churns a byte-starved subpath
// cache (planner off: persist everything, maximum eviction pressure) and
// checks that an evicted subpath entry only ever costs extra traversal —
// the vectors stay bit-identical to baseline on every round — while the
// byte accounting and the Hits+Misses == loads contract hold exactly.
func TestSubpathEvictionDegradesToTraversal(t *testing.T) {
	g := fig1Graph(t)
	const maxBytes = 300 // a couple of entries: constant eviction
	mat, err := NewCached(g, maxBytes, WithSubpathCache(), WithCachePlanner(false))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Schema().TypeByName("author")
	authors := g.VerticesOfType(a)
	var paths []metapath.Path
	for _, dotted := range []string{"author.paper.venue", "author.paper.venue.paper.author", "author.paper.author.paper.term"} {
		p, err := metapath.ParseDotted(g.Schema(), dotted)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	base := NewBaseline(g)
	loads := 0
	for round := 0; round < 5; round++ {
		for _, p := range paths {
			for _, v := range authors {
				got, err := mat.NeighborVector(p, v)
				if err != nil {
					t.Fatal(err)
				}
				loads++
				want, err := base.NeighborVector(p, v)
				if err != nil {
					t.Fatal(err)
				}
				vecBitEqual(t, fmt.Sprintf("round %d %s v%d", round, p, v), want, got)
			}
		}
	}
	cs, _ := CacheStatsOf(mat)
	if cs.Evictions == 0 {
		t.Fatalf("starved cache never evicted: %+v", cs)
	}
	if cs.Hits+cs.Misses != int64(loads) {
		t.Fatalf("Hits+Misses = %d, want %d loads: %+v", cs.Hits+cs.Misses, loads, cs)
	}
	if cs.Bytes > maxBytes {
		t.Fatalf("cache exceeded budget: %d > %d", cs.Bytes, maxBytes)
	}
	st := mat.(*cached).state
	if ground := st.recomputeBytes(); ground != cs.Bytes {
		t.Fatalf("byte accounting drifted: atomic %d, ground truth %d", cs.Bytes, ground)
	}
}

// TestSubpathEvictedPrefixMidWorkload deterministically removes a prefix
// entry a longer path had been resuming from; the next load must degrade to
// full traversal (no prefix available) and still produce the right vector.
func TestSubpathEvictedPrefixMidWorkload(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 1<<20, WithSubpathCache())
	if err != nil {
		t.Fatal(err)
	}
	st := mat.(*cached).state
	short, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	long, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue.paper.author")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")

	if _, err := mat.NeighborVector(short, zoe); err != nil {
		t.Fatal(err)
	}
	if _, err := mat.NeighborVector(long, zoe); err != nil {
		t.Fatal(err)
	}
	cs, _ := CacheStatsOf(mat)
	if cs.PrefixHits != 1 {
		t.Fatalf("long path should have resumed from the short path's entry: %+v", cs)
	}
	// Drop every entry (simulating eviction churn between two loads), then
	// reload the long path: no prefix to resume from, full traversal, same
	// vector as baseline.
	for st.evictOne() {
	}
	got, err := mat.NeighborVector(long, zoe)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewBaseline(g).NeighborVector(long, zoe)
	if err != nil {
		t.Fatal(err)
	}
	vecBitEqual(t, "post-eviction reload", want, got)
	cs, _ = CacheStatsOf(mat)
	if cs.PrefixHits != 1 {
		t.Fatalf("evicted prefix cannot be resumed from: %+v", cs)
	}
}

// TestSubpathConcurrentStress hammers a byte-starved subpath cache from 8
// goroutines (half through views) with overlapping paths; run under -race.
// Vectors must always match baseline and the counter contract must hold.
func TestSubpathConcurrentStress(t *testing.T) {
	g := fig1Graph(t)
	const maxBytes = 400
	mat, err := NewCached(g, maxBytes, WithSubpathCache())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Schema().TypeByName("author")
	authors := g.VerticesOfType(a)[:3]
	var paths []metapath.Path
	for _, dotted := range []string{"author.paper.venue", "author.paper.author", "author.paper.venue.paper.author", "author.paper.author.paper.term"} {
		p, err := metapath.ParseDotted(g.Schema(), dotted)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	want := make(map[ckey]sparse.Vector)
	base := NewBaseline(g)
	for _, p := range paths {
		for _, v := range authors {
			vec, err := base.NeighborVector(p, v)
			if err != nil {
				t.Fatal(err)
			}
			want[cacheKey(p, v)] = vec
		}
	}
	const (
		workers = 8
		rounds  = 300
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		m := Materializer(mat)
		if w%2 == 1 {
			if m, err = NewView(mat); err != nil {
				t.Fatal(err)
			}
		}
		wg.Add(1)
		go func(w int, m Materializer) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				p := paths[r.Intn(len(paths))]
				v := authors[r.Intn(len(authors))]
				vec, err := m.NeighborVector(p, v)
				if err != nil {
					errCh <- err
					return
				}
				if !vec.Equal(want[cacheKey(p, v)]) {
					errCh <- fmt.Errorf("worker %d: wrong vector for %v/%d", w, p, v)
					return
				}
			}
		}(w, m)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cs, _ := CacheStatsOf(mat)
	if total := cs.Hits + cs.Misses; total != workers*rounds {
		t.Fatalf("Hits+Misses = %d, want %d", total, workers*rounds)
	}
	if cs.PrefixHits > cs.Misses {
		t.Fatalf("PrefixHits %d exceeds Misses %d", cs.PrefixHits, cs.Misses)
	}
	if cs.Bytes > maxBytes {
		t.Fatalf("budget exceeded: %d > %d", cs.Bytes, maxBytes)
	}
	st := mat.(*cached).state
	if ground := st.recomputeBytes(); ground != cs.Bytes {
		t.Fatalf("byte accounting drifted: atomic %d, ground truth %d", cs.Bytes, ground)
	}
}

// TestCacheProbeNoAllocs pins the hot-path micro-fix: a warm cache probe —
// key construction included — allocates nothing, for both whole-path and
// subpath caches. Before Path.Key was precomputed and the cache key became
// a comparable struct, every probe built a fresh string.
func TestCacheProbeNoAllocs(t *testing.T) {
	g := fig1Graph(t)
	p, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue.paper.author")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	for _, tc := range []struct {
		name string
		opts []CacheOption
	}{
		{"wholepath", nil},
		{"subpath", []CacheOption{WithSubpathCache()}},
	} {
		mat, err := NewCached(g, 1<<20, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mat.NeighborVector(p, zoe); err != nil { // warm the entry
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := mat.NeighborVector(p, zoe); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm probe allocates %.1f objects/op, want 0", tc.name, allocs)
		}
	}
}

// TestPlannerDecisions unit-tests the cost model: estimate shape, persist
// gating by the byte budget, decision counters and plan rendering.
func TestPlannerDecisions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomBibGraph(r)
	p, err := metapath.ParseDotted(g.Schema(), "author.paper.venue.paper.author")
	if err != nil {
		t.Fatal(err)
	}

	pl := NewPlanner(g, 64<<20)
	pp := pl.planFor(p)
	if len(pp.est) != p.Hops()+1 || pp.est[0] != 1 {
		t.Fatalf("estimate shape: %v", pp.est)
	}
	if len(pp.kernels) != p.Hops() || len(pp.persist) != p.Len() {
		t.Fatalf("plan shape: %d kernels, %d persist flags", len(pp.kernels), len(pp.persist))
	}
	if pp.persist[0] || pp.persist[1] {
		t.Fatal("persist flags below 2 types must never be set")
	}
	if s := pl.PlanSummary(p); !strings.Contains(s, "plan (") || !strings.Contains(s, "kernels=[") {
		t.Fatalf("summary rendering: %q", s)
	}
	counts := pl.DecisionCounts()
	if len(counts) != int(planChoiceCount) {
		t.Fatalf("DecisionCounts has %d labels, want %d", len(counts), planChoiceCount)
	}
	if kc := counts["kernel-auto"] + counts["kernel-dense"] + counts["kernel-map"]; kc != int64(p.Hops()) {
		t.Fatalf("kernel decisions = %d, want one per hop (%d)", kc, p.Hops())
	}

	// A budget smaller than any entry's share must turn persistence off.
	tiny := NewPlanner(g, plannerEntryShare)
	for b, on := range tiny.planFor(p).persist {
		if on {
			t.Fatalf("tiny budget persisted boundary %d", b)
		}
	}

	// Replan cadence: the memoized plan is rebuilt after plannerReplanEvery
	// loads (observable through builtAt).
	first := pl.planFor(p)
	for i := 0; i < plannerReplanEvery+1; i++ {
		pl.planFor(p)
	}
	if again := pl.planFor(p); again.builtAt == first.builtAt {
		t.Fatal("plan not rebuilt after replan cadence")
	}
}

// TestSubpathPlanInTraceAndEvent checks the planner's decisions surface in
// the query trace, its terminal rendering, and the wide event (the
// /debug/events view).
func TestSubpathPlanInTraceAndEvent(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 1<<20, WithSubpathCache())
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewEventRing(4)
	eng := NewEngine(g, WithMaterializer(mat), WithEventSink(ring))
	src := `FIND OUTLIERS FROM author JUDGED BY author.paper.venue.paper.author, author.paper.venue TOP 5;`
	res, err := eng.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Plan) != 2 {
		t.Fatalf("trace has %d plan lines, want one per feature path: %v", len(res.Trace.Plan), res.Trace.Plan)
	}
	if !strings.Contains(res.Trace.Format(), "plan (") {
		t.Fatalf("trace rendering lacks plan lines:\n%s", res.Trace.Format())
	}
	evs := ring.Snapshot()
	if len(evs) != 1 || len(evs[0].Plan) != 2 {
		t.Fatalf("event plan lines: %+v", evs)
	}
	if evs[0].Plan[0] != res.Trace.Plan[0] {
		t.Fatalf("event and trace disagree: %q vs %q", evs[0].Plan[0], res.Trace.Plan[0])
	}
	// A whole-path cache stamps nothing.
	plain, _ := NewCached(g, 1<<20)
	res2, err := NewEngine(g, WithMaterializer(plain)).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trace.Plan) != 0 {
		t.Fatalf("whole-path cache stamped plan lines: %v", res2.Trace.Plan)
	}
}

// TestSubpathSharedAcrossViews checks the cross-query contract: a view
// created from a subpath cache shares entries at subpath granularity, so a
// short path materialized through one view is resumed from by a longer path
// through another.
func TestSubpathSharedAcrossViews(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 1<<20, WithSubpathCache())
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(mat)
	if err != nil {
		t.Fatal(err)
	}
	short, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	long, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue.paper.author")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	if _, err := view.NeighborVector(short, zoe); err != nil {
		t.Fatal(err)
	}
	if _, err := mat.NeighborVector(long, zoe); err != nil {
		t.Fatal(err)
	}
	cs, _ := CacheStatsOf(mat)
	if cs.PrefixHits != 1 {
		t.Fatalf("long path did not resume from the view-warmed prefix: %+v", cs)
	}
}

// TestSubpathPlannerMetrics checks the netout_plan_* and prefix-hit metric
// families register and expose live values for a subpath cache.
func TestSubpathPlannerMetrics(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 1<<20, WithSubpathCache())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RegisterMaterializerMetrics(reg, mat)
	short, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	long, _ := metapath.ParseDotted(g.Schema(), "author.paper.venue.paper.author")
	a, _ := g.Schema().TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	if _, err := mat.NeighborVector(short, zoe); err != nil {
		t.Fatal(err)
	}
	if _, err := mat.NeighborVector(long, zoe); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`netout_cache_prefix_hits_total 1`,
		`netout_cache_hops_saved_total 2`,
		`netout_plan_decisions_total{choice="prefix-resume"} 1`,
		`netout_plan_decisions_total{choice="full-traverse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	pl := PlannerOf(mat)
	if pl == nil {
		t.Fatal("PlannerOf returned nil for a planner-enabled cache")
	}
	if pl.DecisionCounts()["prefix-resume"] != 1 {
		t.Fatalf("decision counts: %v", pl.DecisionCounts())
	}
	if PlannerOf(NewBaseline(g)) != nil {
		t.Error("PlannerOf on baseline should be nil")
	}
	if plain, _ := NewCached(g, 1<<10); PlannerOf(plain) != nil {
		t.Error("PlannerOf on a whole-path cache should be nil")
	}
}

// BenchmarkCacheProbe measures a warm cache probe end to end: key build,
// shard lookup, LRU bump. Run with -benchmem — the headline is 0 allocs/op.
// Before Path precomputed its canonical key and the cache moved to a
// comparable struct key, every probe allocated a fresh key string.
func BenchmarkCacheProbe(b *testing.B) {
	const nAuthors = 4096
	g, apa, authors := pathIndexGraph(b, nAuthors)
	for _, tc := range []struct {
		name string
		opts []CacheOption
	}{
		{"wholepath", nil},
		{"subpath", []CacheOption{WithSubpathCache()}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			mat, err := NewCached(g, 256<<20, tc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range authors { // warm every entry
				if _, err := mat.NeighborVector(apa, v); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var nnz int
			for i := 0; i < b.N; i++ {
				vec, err := mat.NeighborVector(apa, authors[i%nAuthors])
				if err != nil {
					b.Fatal(err)
				}
				nnz += vec.NNZ()
			}
			sinkInt(nnz)
		})
	}
}
