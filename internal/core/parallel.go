package core

import (
	"runtime"
	"sync"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// NewPMParallel builds the full PM index using a worker pool: the
// per-vertex Φ computations of a length-2 path are independent, so index
// construction parallelizes embarrassingly. workers <= 0 uses GOMAXPROCS.
// The resulting materializer is identical to NewPM's — including its
// concurrency contract: only the build is parallel; to query the index
// from several goroutines, give each worker a NewView.
func NewPMParallel(g *hin.Graph, workers int) Materializer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	paths := allLength2Paths(g.Schema())
	ix := newPathIndex(g)

	type job struct {
		path metapath.Path
		lo   int
		hi   int
	}
	type chunkResult struct {
		path metapath.Path
		lo   int
		vecs []sparse.Vector
	}

	const chunkSize = 1024
	var jobs []job
	for _, p := range paths {
		n := len(g.VerticesOfType(p.Source()))
		for lo := 0; lo < n; lo += chunkSize {
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			jobs = append(jobs, job{p, lo, hi})
		}
	}

	jobCh := make(chan job)
	resCh := make(chan chunkResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := metapath.NewTraverser(g)
			for jb := range jobCh {
				src := g.VerticesOfType(jb.path.Source())
				vecs := make([]sparse.Vector, jb.hi-jb.lo)
				for i := jb.lo; i < jb.hi; i++ {
					vec, err := tr.NeighborVector(jb.path, src[i])
					if err != nil {
						// Unreachable: sources enumerate the path's source type.
						panic(err)
					}
					vecs[i-jb.lo] = vec
				}
				resCh <- chunkResult{jb.path, jb.lo, vecs}
			}
		}()
	}
	go func() {
		for _, jb := range jobs {
			jobCh <- jb
		}
		close(jobCh)
		wg.Wait()
		close(resCh)
	}()
	for cr := range resCh {
		src := g.VerticesOfType(cr.path.Source())
		for i, vec := range cr.vecs {
			ix.put(cr.path, src[cr.lo+i], vec)
		}
	}
	return &indexedMaterializer{tr: metapath.NewTraverser(g), ix: ix, strategy: StrategyPM}
}
