package core

import (
	"runtime"
	"sync"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// pmBuildHook, when non-nil, observes every (path, vertex) the parallel
// builder is about to materialize. It is the fault-injection seam of the
// robustness tests (the hook may panic or stall); it is nil in production
// and consulted only from buildPMChunk.
var pmBuildHook func(p metapath.Path, v hin.VertexID)

// NewPMParallel builds the full PM index using a worker pool: the
// per-vertex Φ computations of a length-2 path are independent, so index
// construction parallelizes embarrassingly. workers <= 0 uses GOMAXPROCS.
// The resulting materializer is identical to NewPM's — including its
// concurrency contract: only the build is parallel; to query the index
// from several goroutines, give each worker a NewView.
//
// Panic containment: a panic while building a chunk no longer escapes a
// worker goroutine (which would kill the process unrecoverably). The worker
// converts it into a chunk failure and keeps draining; after every worker
// has joined, the first failure is re-raised as a *PanicError panic in the
// caller's goroutine, where the caller CAN recover it — and no builder
// goroutine is leaked behind the unwinding stack.
func NewPMParallel(g *hin.Graph, workers int) Materializer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	paths := allLength2Paths(g.Schema())
	ix := newPathIndex(g)

	type job struct {
		path metapath.Path
		lo   int
		hi   int
	}

	const chunkSize = 1024
	var jobs []job
	for _, p := range paths {
		n := len(g.VerticesOfType(p.Source()))
		for lo := 0; lo < n; lo += chunkSize {
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			jobs = append(jobs, job{p, lo, hi})
		}
	}

	jobCh := make(chan job)
	resCh := make(chan pmChunkResult, workers)
	var errOnce sync.Once
	var buildErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := metapath.NewTraverser(g)
			for jb := range jobCh {
				cr, err := buildPMChunk(tr, g, jb.path, jb.lo, jb.hi)
				if err != nil {
					errOnce.Do(func() { buildErr = err })
					continue
				}
				resCh <- cr
			}
		}()
	}
	go func() {
		for _, jb := range jobs {
			jobCh <- jb
		}
		close(jobCh)
		wg.Wait()
		close(resCh)
	}()
	for cr := range resCh {
		src := g.VerticesOfType(cr.path.Source())
		for i, vec := range cr.vecs {
			ix.put(cr.path, src[cr.lo+i], vec)
		}
	}
	// resCh is closed only after wg.Wait, so by here every worker has
	// joined and buildErr is stable.
	if buildErr != nil {
		panic(buildErr)
	}
	return &indexedMaterializer{tr: metapath.NewTraverser(g), ix: ix, strategy: StrategyPM}
}

type pmChunkResult struct {
	path metapath.Path
	lo   int
	vecs []sparse.Vector
}

// buildPMChunk materializes one chunk of a path's source vertices,
// converting a panic (or the nominally unreachable traversal error —
// sources enumerate the path's source type) into a chunk error.
func buildPMChunk(tr *metapath.Traverser, g *hin.Graph, p metapath.Path, lo, hi int) (cr pmChunkResult, err error) {
	defer recoverAsError(&err)
	src := g.VerticesOfType(p.Source())
	vecs := make([]sparse.Vector, hi-lo)
	for i := lo; i < hi; i++ {
		if pmBuildHook != nil {
			pmBuildHook(p, src[i])
		}
		vec, err := tr.NeighborVector(p, src[i])
		if err != nil {
			return pmChunkResult{}, err
		}
		vecs[i-lo] = vec
	}
	return pmChunkResult{p, lo, vecs}, nil
}
