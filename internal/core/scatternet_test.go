package core

// The remote half of the shard tier, exercised at the coordinator seam:
// RemoteShard fakes that execute via ServeShardRequest (a real remote's
// code path, minus the socket) with failure injection on top. The network
// transport's own suite (internal/shardnet) covers the codec and real TCP;
// these tests pin the coordinator-side contracts — bit-identical merging,
// the gather loop's protocol-version gate, and the widened exact-prefix
// degradation rule for remote loss modes. All tests here must pass under
// `go test -race -cpu 1,4`.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"netout/internal/hin"
	"netout/internal/xerr"
)

// fakeRemote implements RemoteShard in-process over its own materializer
// (each fake is "another process" as far as sharing goes). intercept, when
// set, replaces the call entirely; mutate, when set, edits the reply before
// it returns — both simulate remote misbehavior. The unexported err field
// is stripped before returning, exactly as a wire crossing would, so the
// coordinator exercises its xerr.FromWire reconstruction.
type fakeRemote struct {
	addr      string
	serve     func(ctx context.Context, req *ShardRequest, b *ShardBroadcast) *ShardResponse
	intercept func(req *ShardRequest) (*ShardResponse, error)
	mutate    func(resp *ShardResponse)
}

func (f *fakeRemote) Addr() string { return f.addr }

func (f *fakeRemote) Call(ctx context.Context, req *ShardRequest, b *ShardBroadcast) (*ShardResponse, error) {
	if f.intercept != nil {
		return f.intercept(req)
	}
	resp := f.serve(ctx, req, b)
	resp.err = nil // the wire ships only Err/Code/Kind
	resp.remote = false
	resp.addr = ""
	if f.mutate != nil {
		f.mutate(resp)
	}
	return resp, nil
}

// newFakeFleet builds n healthy fake remotes over g, each with a private
// materializer, mirroring n shard server processes hosting the network.
func newFakeFleet(t *testing.T, g *hin.Graph, n int) []RemoteShard {
	t.Helper()
	remotes := make([]RemoteShard, n)
	for i := range remotes {
		mat := NewBaseline(g)
		remotes[i] = &fakeRemote{
			addr: fmt.Sprintf("fake-shard-%d", i),
			serve: func(ctx context.Context, req *ShardRequest, b *ShardBroadcast) *ShardResponse {
				return ServeShardRequest(ctx, g, mat, req, b)
			},
		}
	}
	return remotes
}

// Scattering over remote shards is bit-identical to unsharded execution for
// every measure and combination — the same contract the in-process tier
// pins, now crossing the RemoteShard seam with the broadcast reference
// reduction instead of shared scorer pointers.
func TestRemoteShardsBitIdentical(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(21)))
	queries := []string{
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue : 2, author.paper.term : 1;`,
	}
	for _, m := range []Measure{MeasureNetOut, MeasurePathSim, MeasureCosSim} {
		for _, comb := range []Combination{CombineAverage, CombineConcat} {
			plain := NewEngine(g, WithMeasure(m), WithCombination(comb))
			for _, n := range []int{1, 2, 3} {
				eng := NewEngine(g, WithMeasure(m), WithCombination(comb),
					WithRemoteShards(newFakeFleet(t, g, n)...))
				if eng.Shards() != n {
					t.Fatalf("Shards() = %d, want %d", eng.Shards(), n)
				}
				for _, src := range queries {
					want, err1 := plain.Execute(src)
					got, err2 := eng.Execute(src)
					if err1 != nil || err2 != nil {
						t.Fatalf("measure %v remotes=%d %q: %v / %v", m, n, src, err1, err2)
					}
					if !bitIdentical(want, got) {
						t.Fatalf("measure %v combine %v remotes=%d diverges on %q:\nunsharded %+v\nremote    %+v",
							m, comb, n, src, want.Entries, got.Entries)
					}
					for i, st := range got.Shards {
						if st.Addr != fmt.Sprintf("fake-shard-%d", i) {
							t.Fatalf("Shards[%d].Addr = %q", i, st.Addr)
						}
					}
				}
				eng.Close()
			}
			plain.Close()
		}
	}
}

// Remote shards take precedence over WithShards when both are configured.
func TestRemoteShardsWinOverLocal(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(22)))
	eng := NewEngine(g, WithShards(5), WithRemoteShards(newFakeFleet(t, g, 2)...))
	defer eng.Close()
	if eng.Shards() != 2 {
		t.Fatalf("Shards() = %d, want the 2 remotes to win over 5 locals", eng.Shards())
	}
	res, err := eng.Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 2 || res.Shards[0].Addr == "" {
		t.Fatalf("accounting = %+v, want 2 addressed remote shards", res.Shards)
	}
}

// Regression (this PR): the gather loop must validate ShardResponse.Version.
// A reply stamped with a foreign protocol revision — a mixed-revision fleet
// — fails the query with a typed INTERNAL skew error naming the shard and
// its address, never merges.
func TestRemoteShardVersionSkewFailsQuery(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(23)))
	remotes := newFakeFleet(t, g, 2)
	remotes[1].(*fakeRemote).mutate = func(resp *ShardResponse) {
		resp.Version = ShardProtocolVersion + 1
	}
	eng := NewEngine(g, WithRemoteShards(remotes...))
	defer eng.Close()
	_, err := eng.Execute(faultQuery)
	if err == nil {
		t.Fatal("forged protocol version merged silently; want a skew failure")
	}
	if xerr.CodeOf(err) != xerr.Internal {
		t.Fatalf("skew error code = %v, want INTERNAL (%v)", xerr.CodeOf(err), err)
	}
	for _, frag := range []string{"protocol skew", "shard 1", "fake-shard-1",
		fmt.Sprintf("version %d", ShardProtocolVersion+1)} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("skew error %q does not name %q", err, frag)
		}
	}
}

// A shard server refuses a request stamped with a foreign version — the
// server-side half of the mutual skew gate.
func TestServeShardRequestRejectsForeignVersion(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(24)))
	req := &ShardRequest{Version: ShardProtocolVersion - 1, Measure: MeasureNetOut, Combine: CombineConcat}
	resp := ServeShardRequest(context.Background(), g, NewBaseline(g), req, &ShardBroadcast{})
	if resp.Err == "" || resp.Code != xerr.Internal || !strings.Contains(resp.Err, "skew") {
		t.Fatalf("foreign-version request answered %+v, want a typed skew rejection", resp)
	}
	if resp.Version != ShardProtocolVersion {
		t.Fatalf("rejection stamped version %d, want the server's own %d", resp.Version, ShardProtocolVersion)
	}
}

// expectPrefixPartial runs q against eng expecting shard `lost` of n to have
// contributed nothing: Partial is true, the lost shard shows Done 0, and
// every surviving entry and skip is bit-identical to the unsharded run.
func expectPrefixPartial(t *testing.T, g *hin.Graph, eng *Engine, lost int) {
	t.Helper()
	want, err := NewEngine(g, WithMeasure(MeasureNetOut)).Execute(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantScore := make(map[int32]uint64, len(want.Entries))
	for _, e := range want.Entries {
		wantScore[int32(e.Vertex)] = math.Float64bits(e.Score)
	}
	res, err := eng.Execute(faultQuery)
	if err != nil {
		t.Fatalf("lost remote shard failed the query instead of degrading: %v", err)
	}
	if !res.Partial {
		t.Fatal("Partial = false after losing a remote shard")
	}
	covered := 0
	for i, st := range res.Shards {
		if i == lost {
			if st.Done != 0 || !st.Partial || st.Err == "" {
				t.Fatalf("lost shard accounting = %+v, want Done 0 with its classified error", st)
			}
			continue
		}
		if st.Partial || st.Done != st.Candidates {
			t.Fatalf("surviving shard %d accounting = %+v, want complete", i, st)
		}
		covered += st.Candidates
	}
	if got := len(res.Entries) + len(res.Skipped); got != covered {
		t.Fatalf("partial covers %d candidates, want the survivors' %d", got, covered)
	}
	for _, e := range res.Entries {
		bits, ok := wantScore[int32(e.Vertex)]
		if !ok {
			t.Fatalf("partial ranks %q, absent from the unsharded ranking", e.Name)
		}
		if bits != math.Float64bits(e.Score) {
			t.Fatalf("surviving score for %q = %x, want bit-identical %x", e.Name, math.Float64bits(e.Score), bits)
		}
	}
}

// Transport loss of one remote shard folds into the exact-prefix Partial
// contract under NetOut: the query completes, the survivors' scores are
// bit-identical to unsharded execution, and the lost shard's slice is
// accounted as not done.
func TestRemoteShardLossDegradesToExactPrefix(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(25)))
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"unavailable", xerr.New(xerr.Unavailable, "dial tcp: connection refused")},
		{"deadline", xerr.Interrupt(context.DeadlineExceeded)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			remotes := newFakeFleet(t, g, 3)
			remotes[1].(*fakeRemote).intercept = func(*ShardRequest) (*ShardResponse, error) {
				return nil, tc.err
			}
			eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
			defer eng.Close()
			expectPrefixPartial(t, g, eng, 1)
		})
	}
}

// A shard replying with a classified failure degrades for the remote loss
// modes (admission shed, remote defect) and fails the query for plain
// INTERNAL errors and cancellation — the coordinator reconstructs each from
// the wire triple via xerr.FromWire and applies shardDegradable.
func TestRemoteShardReplyClassification(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(26)))
	replyWith := func(code xerr.Code, kind xerr.Kind) func(req *ShardRequest) (*ShardResponse, error) {
		return func(req *ShardRequest) (*ShardResponse, error) {
			return &ShardResponse{
				Version:    ShardProtocolVersion,
				QueryID:    req.QueryID,
				Shard:      req.Shard,
				Candidates: len(req.Candidates),
				Err:        "injected remote failure",
				Code:       code,
				Kind:       kind,
			}, nil
		}
	}
	t.Run("shed degrades", func(t *testing.T) {
		remotes := newFakeFleet(t, g, 2)
		remotes[0].(*fakeRemote).intercept = replyWith(xerr.ResourceExhausted, 0)
		eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
		defer eng.Close()
		expectPrefixPartial(t, g, eng, 0)
	})
	t.Run("remote defect degrades", func(t *testing.T) {
		remotes := newFakeFleet(t, g, 2)
		remotes[1].(*fakeRemote).intercept = replyWith(xerr.Internal, xerr.KindDefect)
		eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
		defer eng.Close()
		expectPrefixPartial(t, g, eng, 1)
	})
	t.Run("plain internal fails", func(t *testing.T) {
		remotes := newFakeFleet(t, g, 2)
		remotes[1].(*fakeRemote).intercept = replyWith(xerr.Internal, 0)
		eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
		defer eng.Close()
		if _, err := eng.Execute(faultQuery); xerr.CodeOf(err) != xerr.Internal {
			t.Fatalf("plain remote INTERNAL returned %v, want the query to fail INTERNAL", err)
		}
	})
	t.Run("cancellation fails", func(t *testing.T) {
		remotes := newFakeFleet(t, g, 2)
		remotes[1].(*fakeRemote).intercept = func(*ShardRequest) (*ShardResponse, error) {
			return nil, xerr.Interrupt(context.Canceled)
		}
		eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
		defer eng.Close()
		_, err := eng.Execute(faultQuery)
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled remote returned %v, want context.Canceled to fail the query", err)
		}
	})
	t.Run("loss under pathsim fails", func(t *testing.T) {
		// Exact-prefix degradation is a NetOut-only contract (separability);
		// under PathSim a lost remote must fail the query.
		remotes := newFakeFleet(t, g, 2)
		remotes[1].(*fakeRemote).intercept = func(*ShardRequest) (*ShardResponse, error) {
			return nil, xerr.New(xerr.Unavailable, "connection reset")
		}
		eng := NewEngine(g, WithMeasure(MeasurePathSim), WithRemoteShards(remotes...))
		defer eng.Close()
		if _, err := eng.Execute(faultQuery); xerr.CodeOf(err) != xerr.Unavailable {
			t.Fatalf("lost PathSim remote returned %v, want UNAVAILABLE failure", err)
		}
	})
}

// A remote returning (nil, nil) — a buggy client — synthesizes a classified
// UNAVAILABLE loss instead of a nil-dereference in the gather loop.
func TestRemoteShardNilReplySynthesizesLoss(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(27)))
	remotes := newFakeFleet(t, g, 2)
	remotes[0].(*fakeRemote).intercept = func(*ShardRequest) (*ShardResponse, error) {
		return nil, nil
	}
	eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
	defer eng.Close()
	expectPrefixPartial(t, g, eng, 0)
}

// A panicking RemoteShard client is recovered into a defect loss on the
// struck shard only: the rest of the fleet's work survives as a Partial.
func TestRemoteShardClientPanicIsolated(t *testing.T) {
	g := randomBibGraph(rand.New(rand.NewSource(28)))
	remotes := newFakeFleet(t, g, 2)
	remotes[0].(*fakeRemote).intercept = func(*ShardRequest) (*ShardResponse, error) {
		panic("client bug")
	}
	eng := NewEngine(g, WithMeasure(MeasureNetOut), WithRemoteShards(remotes...))
	defer eng.Close()
	expectPrefixPartial(t, g, eng, 0)
}
