package core

import "sort"

// entryBefore is the ranking order: ascending score (smaller = more
// outlying), vertex ID breaking score ties. Candidates are unique per
// query, so this is a strict total order — every selection below is fully
// deterministic regardless of push or merge order.
func entryBefore(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Vertex < b.Vertex
}

// topSelector retains the best k entries under entryBefore without holding
// the full candidate set: a bounded binary max-heap whose root is the worst
// retained entry, making selection O(n log k) against the old full
// sort.Slice+truncate's O(n log n) — and, under the chunked pipeline,
// letting every scored-and-ranked candidate vector be dropped immediately.
// k <= 0 means unbounded (the query has no TOP clause): entries are simply
// collected and sorted at the end.
type topSelector struct {
	k       int
	entries []Entry // max-heap ordered when bounded and full; plain slice otherwise
}

func newTopSelector(k int) *topSelector {
	if k < 0 {
		k = 0
	}
	s := &topSelector{k: k}
	if k > 0 {
		s.entries = make([]Entry, 0, k)
	}
	return s
}

// push offers one entry to the selection.
func (s *topSelector) push(e Entry) {
	if s.k <= 0 {
		s.entries = append(s.entries, e)
		return
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, e)
		s.up(len(s.entries) - 1)
		return
	}
	// Full: the root is the worst retained entry; replace it only if the
	// offered entry ranks strictly ahead of it.
	if entryBefore(e, s.entries[0]) {
		s.entries[0] = e
		s.down(0)
	}
}

// merge absorbs every entry retained by o. The k globally-best entries are
// always contained in the union of per-worker top-k sets, so merging the
// workers' selectors loses nothing.
func (s *topSelector) merge(o *topSelector) {
	for _, e := range o.entries {
		s.push(e)
	}
}

// ranked returns the retained entries most outlying first, consuming the
// selector.
func (s *topSelector) ranked() []Entry {
	sort.Slice(s.entries, func(i, j int) bool { return entryBefore(s.entries[i], s.entries[j]) })
	return s.entries
}

// mergeRanked is the scatter–gather coordinator's deterministic k-way
// merge: lists are per-shard rankings, each ascending under entryBefore,
// and the result is the global top k in that same order. It uses the exact
// total order ranked() sorts by — ascending score, vertex ID tie-break —
// and candidates are unique across shards (ranges are disjoint), so the
// order is strict and the output is identical to pushing every entry
// through one topSelector and ranking, duplicated scores included. k <= 0
// merges everything.
func mergeRanked(lists [][]Entry, k int) []Entry {
	var heads [][]Entry
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			heads = append(heads, l)
			total += len(l)
		}
	}
	if k <= 0 || k > total {
		k = total
	}
	if k == 0 {
		return nil
	}
	// Index-free min-heap over the lists, keyed by each list's current head.
	down := func(i int) {
		for {
			least := i
			if l := 2*i + 1; l < len(heads) && entryBefore(heads[l][0], heads[least][0]) {
				least = l
			}
			if r := 2*i + 2; r < len(heads) && entryBefore(heads[r][0], heads[least][0]) {
				least = r
			}
			if least == i {
				return
			}
			heads[i], heads[least] = heads[least], heads[i]
			i = least
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		down(i)
	}
	out := make([]Entry, 0, k)
	for len(out) < k {
		out = append(out, heads[0][0])
		if heads[0] = heads[0][1:]; len(heads[0]) == 0 {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		down(0)
	}
	return out
}

// up restores the max-heap property from leaf i toward the root (a parent
// must never rank ahead of its children: the worst entry bubbles to the top).
func (s *topSelector) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !entryBefore(s.entries[p], s.entries[i]) {
			return
		}
		s.entries[p], s.entries[i] = s.entries[i], s.entries[p]
		i = p
	}
}

// down restores the max-heap property from i toward the leaves.
func (s *topSelector) down(i int) {
	n := len(s.entries)
	for {
		worst := i
		if l := 2*i + 1; l < n && entryBefore(s.entries[worst], s.entries[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && entryBefore(s.entries[worst], s.entries[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		s.entries[i], s.entries[worst] = s.entries[worst], s.entries[i]
		i = worst
	}
}
