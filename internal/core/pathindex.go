package core

import (
	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// pathIndex stores pre-materialized Φ vectors for a set of meta-paths in an
// arena-backed layout: every indexed vector's coordinates live in two shared
// backing arrays (idx/val), and each path owns a dense entry table indexed
// by (vertex − span base) of its source type. A probe is therefore one map
// hash to find the path's table (hoisted out of per-vertex loops by the
// materializer) plus one array load — no per-probe key building, no second
// hash, and vectors for consecutive vertices of one path sit adjacent in
// memory.
//
// The index is built single-goroutine and immutable afterwards; views share
// it read-only. Returned vectors alias the arena and must not be modified
// (the same contract the CSR adjacency slices carry).
type pathIndex struct {
	g      *hin.Graph
	tables map[string]*pathTable
	idx    []int32
	val    []float64
	bytes  int64
}

// vecSpan locates one vector's payload inside the arena. n < 0 marks an
// absent entry.
type vecSpan struct {
	off int64
	n   int32
}

const spanAbsent = int32(-1)

// vecSpanBytes is the in-memory size of one entry-table slot.
const vecSpanBytes = 12 // off int64 + n int32 (+ padding amortized away by packing)

// pathTable is one path's vertex → arena-span table, dense over the source
// type's vertex-ID span.
type pathTable struct {
	path    metapath.Path
	lo      int32 // span base: smallest vertex ID the table covers
	entries []vecSpan
	count   int // number of present entries
}

func newPathIndex(g *hin.Graph) *pathIndex {
	return &pathIndex{g: g, tables: make(map[string]*pathTable)}
}

// table resolves the per-path entry table with a single map probe (nil if
// the path was never indexed). Callers probing many vertices of one path
// hoist this lookup out of their loop.
func (ix *pathIndex) table(p metapath.Path) *pathTable {
	return ix.tables[p.Key()]
}

// probe returns the indexed vector for v in t, aliasing the arena. It is
// hash-free: a bounds check and an array load.
func (ix *pathIndex) probe(t *pathTable, v hin.VertexID) (sparse.Vector, bool) {
	if t == nil {
		return sparse.Vector{}, false
	}
	i := int64(v) - int64(t.lo)
	if i < 0 || i >= int64(len(t.entries)) {
		return sparse.Vector{}, false
	}
	e := t.entries[i]
	if e.n < 0 {
		return sparse.Vector{}, false
	}
	return sparse.Vector{
		Idx: ix.idx[e.off : e.off+int64(e.n) : e.off+int64(e.n)],
		Val: ix.val[e.off : e.off+int64(e.n) : e.off+int64(e.n)],
	}, true
}

// get is the one-shot probe (table + entry); loops should hoist table.
func (ix *pathIndex) get(p metapath.Path, v hin.VertexID) (sparse.Vector, bool) {
	return ix.probe(ix.tables[p.Key()], v)
}

// put stores Φ_p(v), copying the payload into the arena. Re-putting a
// vertex overwrites in place when the new payload fits; otherwise the new
// payload is appended and the old span goes dead (dead bytes stay counted —
// IndexBytes reports what the arena actually holds).
func (ix *pathIndex) put(p metapath.Path, v hin.VertexID, vec sparse.Vector) {
	key := p.Key()
	t := ix.tables[key]
	if t == nil {
		lo, hi, ok := ix.g.TypeIDSpan(p.Source())
		if !ok {
			lo, hi = v, v
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		span := int(hi) - int(lo) + 1
		t = &pathTable{path: p, lo: int32(lo), entries: newAbsentSpans(span)}
		ix.tables[key] = t
		ix.bytes += int64(span)*vecSpanBytes + int64(len(key))
	}
	i := int64(v) - int64(t.lo)
	if i < 0 {
		// Vertex below the span base (only possible for indexes loaded
		// against unusual graphs): rebase the table.
		grow := -i
		entries := newAbsentSpans(int(grow) + len(t.entries))
		copy(entries[grow:], t.entries)
		t.entries = entries
		t.lo = int32(v)
		ix.bytes += grow * vecSpanBytes
		i = 0
	}
	if i >= int64(len(t.entries)) {
		grow := i + 1 - int64(len(t.entries))
		t.entries = append(t.entries, newAbsentSpans(int(grow))...)
		ix.bytes += grow * vecSpanBytes
	}
	e := &t.entries[i]
	n := int32(vec.NNZ())
	if e.n >= 0 && n <= e.n {
		copy(ix.idx[e.off:], vec.Idx)
		copy(ix.val[e.off:], vec.Val)
		e.n = n
		return
	}
	if e.n < 0 {
		t.count++
	}
	e.off = int64(len(ix.idx))
	e.n = n
	ix.idx = append(ix.idx, vec.Idx...)
	ix.val = append(ix.val, vec.Val...)
	ix.bytes += int64(n) * 12 // 4 B index + 8 B value per coordinate
}

func newAbsentSpans(n int) []vecSpan {
	s := make([]vecSpan, n)
	for i := range s {
		s[i].n = spanAbsent
	}
	return s
}

// numPaths reports how many paths have at least one indexed vector.
func (ix *pathIndex) numPaths() int { return len(ix.tables) }

// forEachPath iterates the per-path tables (map order).
func (ix *pathIndex) forEachPath(fn func(key string, t *pathTable)) {
	for key, t := range ix.tables {
		fn(key, t)
	}
}

// forEach iterates a table's present vectors in ascending vertex order.
func (t *pathTable) forEach(ix *pathIndex, fn func(v hin.VertexID, vec sparse.Vector)) {
	for i := range t.entries {
		e := t.entries[i]
		if e.n < 0 {
			continue
		}
		fn(hin.VertexID(int64(t.lo)+int64(i)), sparse.Vector{
			Idx: ix.idx[e.off : e.off+int64(e.n) : e.off+int64(e.n)],
			Val: ix.val[e.off : e.off+int64(e.n) : e.off+int64(e.n)],
		})
	}
}
