package core

import (
	"fmt"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// StrategyCached is the LRU-cached materializer: no offline
// pre-materialization, but computed neighbor vectors are kept in a
// bounded-memory cache, so repeated workloads approach PM speed for their
// hot vertices without PM's index-build cost. It sits between the paper's
// Baseline and SPM: SPM picks its hot set offline from an initialization
// query set, the cache discovers it online.
const StrategyCached Strategy = 3

// cached is a handle on a shared, concurrency-safe cache (see
// shardedcache.go). Unlike the other materializers it IS safe for
// concurrent use, and NewView returns handles on the same shard set, so a
// batch or serving workload shares one warm cache across all workers.
type cached struct {
	state *sharedCacheState
}

// CacheStats reports cache behaviour beyond the shared MatStats.
type CacheStats struct {
	Hits, Misses, Evictions int64
	// Deduped counts loads that missed the cache but were served by another
	// goroutine's concurrent traversal of the same (path, vertex) — the
	// singleflight coalescing. Deduped loads are included in Hits (no
	// network work was done on that call), so Hits+Misses always equals the
	// number of NeighborVector calls.
	Deduped int64
	// PrefixHits counts misses that resumed traversal from a cached prefix
	// frontier instead of the source vertex (subpath mode only); HopsSaved
	// totals the hops those resumes skipped. Prefix resumes still count as
	// Misses — they traverse the network for the remaining hops — so the
	// Hits+Misses == loads contract is unchanged.
	PrefixHits, HopsSaved int64
	Bytes                 int64
}

// HitRate returns Hits/(Hits+Misses) in [0,1], or 0 before any load —
// the zero-traffic guard every display site would otherwise hand-roll.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the counters for terminal display.
func (s CacheStats) String() string {
	out := fmt.Sprintf("hits %d, misses %d (%.1f%% hit rate), deduped %d, evictions %d, %.1f MB resident",
		s.Hits, s.Misses, 100*s.HitRate(), s.Deduped, s.Evictions, float64(s.Bytes)/1e6)
	if s.PrefixHits > 0 {
		out += fmt.Sprintf(", %d prefix resumes (%d hops saved)", s.PrefixHits, s.HopsSaved)
	}
	return out
}

// CacheOption configures a NewCached materializer.
type CacheOption func(*sharedCacheState)

// WithSubpathCache enables subpath-decomposed evaluation: cache entries are
// shared at (canonical subpath, vertex) granularity, a miss on Φ_P(v)
// resumes hop-by-hop expansion from the longest cached prefix of P at v
// (e.g. an APAPA miss resumes from a cached APA entry, skipping two hops),
// and profitable intermediate frontiers are persisted under the same byte
// budget for other paths to resume from. Decomposed evaluation is
// bit-identical to whole-path traversal (see materializeDecomposed); only
// which work is skipped changes.
func WithSubpathCache() CacheOption {
	return func(st *sharedCacheState) { st.subpath = true }
}

// WithCachePlanner toggles the cost-based planner for subpath evaluation
// (default on when WithSubpathCache is set; no effect otherwise). Off means
// the naive policy: adaptive kernels per hop and every intermediate
// persisted, leaving the LRU to discard the unprofitable ones.
func WithCachePlanner(on bool) CacheOption {
	return func(st *sharedCacheState) { st.plannerOff = !on }
}

// NewCached returns a materializer that memoizes neighbor vectors in an
// LRU cache bounded to maxBytes of vector payload (plus fixed per-entry
// overhead). maxBytes must be positive.
//
// The cache is safe for concurrent use, and concurrent misses on the same
// (path, vertex) traverse the network once (singleflight). Views created
// with NewView share the same warm state and counters.
func NewCached(g *hin.Graph, maxBytes int64, opts ...CacheOption) (Materializer, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("core: cache size must be positive, got %d", maxBytes)
	}
	st := newSharedCacheState(g, maxBytes)
	for _, o := range opts {
		o(st)
	}
	if st.subpath && !st.plannerOff {
		st.planner = newPlanner(g, st)
	}
	return &cached{state: st}, nil
}

func (c *cached) Strategy() Strategy { return StrategyCached }
func (c *cached) IndexBytes() int64  { return c.state.bytes.Load() }
func (c *cached) Stats() MatStats    { return c.state.matStats() }

// CacheStats returns hit/miss/eviction counters, aggregated over every view
// of the cache. The materializer must have been created by NewCached.
func (c *cached) CacheStats() CacheStats { return c.state.cacheStats() }

// CacheStatsOf extracts cache counters from a materializer created by
// NewCached (or any view of one); ok is false for other strategies.
func CacheStatsOf(m Materializer) (CacheStats, bool) {
	c, ok := m.(*cached)
	if !ok {
		return CacheStats{}, false
	}
	return c.CacheStats(), true
}

// Planner returns the cost-based planner steering this cache's subpath
// evaluation, or nil when the planner (or subpath mode) is disabled.
func (c *cached) Planner() *Planner { return c.state.planner }

// PlannerOf extracts the planner from a materializer created by NewCached
// (or any view of one); nil for other strategies or when disabled.
func PlannerOf(m Materializer) *Planner {
	if c, ok := m.(*cached); ok {
		return c.state.planner
	}
	return nil
}

// cacheKey builds the probe key for Φ_P(v). Path.Key is precomputed and
// ckey is a plain comparable struct, so this is allocation-free — it runs
// once per NeighborVector call on the hot path.
func cacheKey(p metapath.Path, v hin.VertexID) ckey {
	return ckey{path: p.Key(), v: v}
}

func (c *cached) NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error) {
	g := c.state.g
	if p.IsZero() {
		return sparse.Vector{}, fmt.Errorf("core: zero meta-path")
	}
	if !g.Valid(v) {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d out of range", v)
	}
	if g.Type(v) != p.Source() {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d has type %s, path starts at %s",
			v, g.Schema().TypeName(g.Type(v)), g.Schema().TypeName(p.Source()))
	}
	key := cacheKey(p, v)
	if vec, ok := c.state.lookup(key); ok {
		return vec, nil
	}
	return c.state.load(p, v, key)
}
