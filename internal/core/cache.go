package core

import (
	"fmt"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// StrategyCached is the LRU-cached materializer: no offline
// pre-materialization, but computed neighbor vectors are kept in a
// bounded-memory cache, so repeated workloads approach PM speed for their
// hot vertices without PM's index-build cost. It sits between the paper's
// Baseline and SPM: SPM picks its hot set offline from an initialization
// query set, the cache discovers it online.
const StrategyCached Strategy = 3

// cached is a handle on a shared, concurrency-safe cache (see
// shardedcache.go). Unlike the other materializers it IS safe for
// concurrent use, and NewView returns handles on the same shard set, so a
// batch or serving workload shares one warm cache across all workers.
type cached struct {
	state *sharedCacheState
}

// CacheStats reports cache behaviour beyond the shared MatStats.
type CacheStats struct {
	Hits, Misses, Evictions int64
	// Deduped counts loads that missed the cache but were served by another
	// goroutine's concurrent traversal of the same (path, vertex) — the
	// singleflight coalescing. Deduped loads are included in Hits (no
	// network work was done on that call), so Hits+Misses always equals the
	// number of NeighborVector calls.
	Deduped int64
	Bytes   int64
}

// HitRate returns Hits/(Hits+Misses) in [0,1], or 0 before any load —
// the zero-traffic guard every display site would otherwise hand-roll.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the counters for terminal display.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits %d, misses %d (%.1f%% hit rate), deduped %d, evictions %d, %.1f MB resident",
		s.Hits, s.Misses, 100*s.HitRate(), s.Deduped, s.Evictions, float64(s.Bytes)/1e6)
}

// NewCached returns a materializer that memoizes neighbor vectors in an
// LRU cache bounded to maxBytes of vector payload (plus fixed per-entry
// overhead). maxBytes must be positive.
//
// The cache is safe for concurrent use, and concurrent misses on the same
// (path, vertex) traverse the network once (singleflight). Views created
// with NewView share the same warm state and counters.
func NewCached(g *hin.Graph, maxBytes int64) (Materializer, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("core: cache size must be positive, got %d", maxBytes)
	}
	return &cached{state: newSharedCacheState(g, maxBytes)}, nil
}

func (c *cached) Strategy() Strategy { return StrategyCached }
func (c *cached) IndexBytes() int64  { return c.state.bytes.Load() }
func (c *cached) Stats() MatStats    { return c.state.matStats() }

// CacheStats returns hit/miss/eviction counters, aggregated over every view
// of the cache. The materializer must have been created by NewCached.
func (c *cached) CacheStats() CacheStats { return c.state.cacheStats() }

// CacheStatsOf extracts cache counters from a materializer created by
// NewCached (or any view of one); ok is false for other strategies.
func CacheStatsOf(m Materializer) (CacheStats, bool) {
	c, ok := m.(*cached)
	if !ok {
		return CacheStats{}, false
	}
	return c.CacheStats(), true
}

func cacheKey(p metapath.Path, v hin.VertexID) string {
	return p.Key() + "\x00" + string([]byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
	})
}

func (c *cached) NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error) {
	g := c.state.g
	if p.IsZero() {
		return sparse.Vector{}, fmt.Errorf("core: zero meta-path")
	}
	if !g.Valid(v) {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d out of range", v)
	}
	if g.Type(v) != p.Source() {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d has type %s, path starts at %s",
			v, g.Schema().TypeName(g.Type(v)), g.Schema().TypeName(p.Source()))
	}
	key := cacheKey(p, v)
	if vec, ok := c.state.lookup(key); ok {
		return vec, nil
	}
	return c.state.load(p, v, key)
}
