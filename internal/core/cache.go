package core

import (
	"container/list"
	"fmt"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// StrategyCached is the LRU-cached materializer: no offline
// pre-materialization, but computed neighbor vectors are kept in a
// bounded-memory cache, so repeated workloads approach PM speed for their
// hot vertices without PM's index-build cost. It sits between the paper's
// Baseline and SPM: SPM picks its hot set offline from an initialization
// query set, the cache discovers it online.
const StrategyCached Strategy = 3

type cacheEntry struct {
	key string
	vec sparse.Vector
}

type cached struct {
	tr       *metapath.Traverser
	maxBytes int64

	entries  map[string]*list.Element
	order    *list.List // front = most recent
	curBytes int64

	stats     MatStats
	hits      int64
	misses    int64
	evictions int64
}

// CacheStats reports cache behaviour beyond the shared MatStats.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64
}

// NewCached returns a materializer that memoizes neighbor vectors in an
// LRU cache bounded to maxBytes of vector payload (plus fixed per-entry
// overhead). maxBytes must be positive.
func NewCached(g *hin.Graph, maxBytes int64) (Materializer, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("core: cache size must be positive, got %d", maxBytes)
	}
	return &cached{
		tr:       metapath.NewTraverser(g),
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}, nil
}

func (c *cached) Strategy() Strategy { return StrategyCached }
func (c *cached) IndexBytes() int64  { return c.curBytes }
func (c *cached) Stats() MatStats    { return c.stats }

// CacheStats returns hit/miss/eviction counters. The materializer must
// have been created by NewCached.
func (c *cached) CacheStats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Bytes: c.curBytes}
}

// CacheStatsOf extracts cache counters from a materializer created by
// NewCached; ok is false for other strategies.
func CacheStatsOf(m Materializer) (CacheStats, bool) {
	c, ok := m.(*cached)
	if !ok {
		return CacheStats{}, false
	}
	return c.CacheStats(), true
}

func cacheKey(p metapath.Path, v hin.VertexID) string {
	return p.Key() + "\x00" + string([]byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
	})
}

func (c *cached) NeighborVector(p metapath.Path, v hin.VertexID) (sparse.Vector, error) {
	g := c.tr.Graph()
	if p.IsZero() {
		return sparse.Vector{}, fmt.Errorf("core: zero meta-path")
	}
	if !g.Valid(v) {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d out of range", v)
	}
	if g.Type(v) != p.Source() {
		return sparse.Vector{}, fmt.Errorf("core: vertex %d has type %s, path starts at %s",
			v, g.Schema().TypeName(g.Type(v)), g.Schema().TypeName(p.Source()))
	}
	key := cacheKey(p, v)
	start := time.Now()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.IndexedTime += time.Since(start)
		c.stats.IndexedVectors++
		c.hits++
		return el.Value.(*cacheEntry).vec, nil
	}
	vec, err := c.tr.NeighborVector(p, v)
	c.stats.TraversalTime += time.Since(start)
	c.stats.TraversedVectors++
	c.misses++
	if err != nil {
		return sparse.Vector{}, err
	}
	c.insert(key, vec)
	return vec, nil
}

func (c *cached) insert(key string, vec sparse.Vector) {
	size := int64(vec.Bytes()) + indexEntryOverhead + int64(len(key))
	if size > c.maxBytes {
		return // larger than the whole cache: do not thrash
	}
	el := c.order.PushFront(&cacheEntry{key: key, vec: vec})
	c.entries[key] = el
	c.curBytes += size
	for c.curBytes > c.maxBytes {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*cacheEntry)
		c.order.Remove(tail)
		delete(c.entries, e.key)
		c.curBytes -= int64(e.vec.Bytes()) + indexEntryOverhead + int64(len(e.key))
		c.evictions++
	}
}
