package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// Index persistence: PM and SPM are offline indexing phases, so their
// indexes can be built once and shipped to query servers. The format is a
// simple little-endian binary layout:
//
//	magic "NOIX" | version u32 | strategy u32 | numPaths u32
//	per path: keyLen u32 | key bytes | numVertices u32
//	  per vertex: id i32 | nnz u32 | idx i32[nnz] | val f64[nnz]
//
// The graph itself is not embedded; callers must load the index against
// the same graph it was built from (a fingerprint of vertex/edge counts is
// stored and checked).

const (
	indexMagic   = "NOIX"
	indexVersion = 1
)

// SaveIndex writes a pre-materialized index (PM or SPM) to w. Baseline and
// cached materializers have no persistent index and are rejected.
func SaveIndex(m Materializer, w io.Writer) error {
	im, ok := m.(*indexedMaterializer)
	if !ok {
		return fmt.Errorf("core: %s has no persistent index", m.Strategy())
	}
	g := im.tr.Graph()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	head := []uint64{
		indexVersion,
		uint64(im.strategy),
		uint64(g.NumVertices()),
		uint64(g.NumEdges()),
		uint64(im.ix.numPaths()),
	}
	for _, h := range head {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	var werr error
	im.ix.forEachPath(func(key string, t *pathTable) {
		if werr != nil {
			return
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(key))); err != nil {
			werr = err
			return
		}
		if _, err := bw.WriteString(key); err != nil {
			werr = err
			return
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.count)); err != nil {
			werr = err
			return
		}
		// The arena stores each table's vectors in vertex order, so this walk
		// streams the idx/val arrays near-sequentially.
		t.forEach(im.ix, func(v hin.VertexID, vec sparse.Vector) {
			if werr != nil {
				return
			}
			if err := binary.Write(bw, binary.LittleEndian, int32(v)); err != nil {
				werr = err
				return
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(vec.NNZ())); err != nil {
				werr = err
				return
			}
			if err := binary.Write(bw, binary.LittleEndian, vec.Idx); err != nil {
				werr = err
				return
			}
			if err := binary.Write(bw, binary.LittleEndian, vec.Val); err != nil {
				werr = err
				return
			}
		})
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// LoadIndex reads an index written by SaveIndex and returns a materializer
// over g. The graph must match the one the index was built from.
func LoadIndex(g *hin.Graph, r io.Reader) (Materializer, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: not a netout index file (magic %q)", magic)
	}
	var head [5]uint64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("core: reading index header: %w", err)
		}
	}
	if head[0] != indexVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", head[0])
	}
	strategy := Strategy(head[1])
	if strategy != StrategyPM && strategy != StrategySPM {
		return nil, fmt.Errorf("core: index has invalid strategy %d", head[1])
	}
	if head[2] != uint64(g.NumVertices()) || head[3] != uint64(g.NumEdges()) {
		return nil, fmt.Errorf("core: index was built for a different graph (%d vertices/%d edges, graph has %d/%d)",
			head[2], head[3], g.NumVertices(), g.NumEdges())
	}
	numPaths := head[4]
	if numPaths > 1<<20 {
		return nil, fmt.Errorf("core: implausible path count %d", numPaths)
	}
	ix := newPathIndex(g)
	// put copies payloads into the arena, so one pair of read buffers is
	// reused across every vector in the file.
	var idxBuf []int32
	var valBuf []float64
	for p := uint64(0); p < numPaths; p++ {
		var keyLen uint32
		if err := binary.Read(br, binary.LittleEndian, &keyLen); err != nil {
			return nil, fmt.Errorf("core: reading path key length: %w", err)
		}
		if keyLen > 255 {
			return nil, fmt.Errorf("core: implausible path key length %d", keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("core: reading path key: %w", err)
		}
		path := metapath.FromKey(string(key))
		if err := path.Validate(g.Schema()); err != nil {
			return nil, fmt.Errorf("core: index path invalid for this schema: %w", err)
		}
		var numVerts uint32
		if err := binary.Read(br, binary.LittleEndian, &numVerts); err != nil {
			return nil, fmt.Errorf("core: reading vertex count: %w", err)
		}
		for i := uint32(0); i < numVerts; i++ {
			var v int32
			var nnz uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("core: reading vertex id: %w", err)
			}
			if !g.Valid(hin.VertexID(v)) {
				return nil, fmt.Errorf("core: index vertex %d out of range", v)
			}
			if g.Type(hin.VertexID(v)) != path.Source() {
				return nil, fmt.Errorf("core: index vertex %d has type %s, path %s starts at %s",
					v, g.Schema().TypeName(g.Type(hin.VertexID(v))), path,
					g.Schema().TypeName(path.Source()))
			}
			if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
				return nil, fmt.Errorf("core: reading nnz: %w", err)
			}
			if nnz > uint32(g.NumVertices()) {
				return nil, fmt.Errorf("core: implausible nnz %d", nnz)
			}
			if cap(idxBuf) < int(nnz) {
				idxBuf = make([]int32, nnz)
				valBuf = make([]float64, nnz)
			}
			vec := sparse.Vector{Idx: idxBuf[:nnz], Val: valBuf[:nnz]}
			if err := binary.Read(br, binary.LittleEndian, vec.Idx); err != nil {
				return nil, fmt.Errorf("core: reading indices: %w", err)
			}
			if err := binary.Read(br, binary.LittleEndian, vec.Val); err != nil {
				return nil, fmt.Errorf("core: reading values: %w", err)
			}
			for k := range vec.Idx {
				if k > 0 && vec.Idx[k-1] >= vec.Idx[k] {
					return nil, fmt.Errorf("core: index vector for vertex %d not sorted", v)
				}
				if math.IsNaN(vec.Val[k]) || math.IsInf(vec.Val[k], 0) {
					return nil, fmt.Errorf("core: index vector for vertex %d has non-finite value", v)
				}
			}
			ix.put(path, hin.VertexID(v), vec)
		}
	}
	return &indexedMaterializer{tr: metapath.NewTraverser(g), ix: ix, strategy: strategy}, nil
}

// SaveIndexFile writes the index to a file.
func SaveIndexFile(m Materializer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveIndex(m, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadIndexFile reads an index from a file.
func LoadIndexFile(g *hin.Graph, path string) (Materializer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndex(g, f)
}
