package core

import (
	"fmt"
	"math/rand"
	"testing"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// nestedMapIndex is the pre-arena index layout (path key → vertex → vector),
// kept here as the reference implementation for equivalence tests and as the
// baseline arm of BenchmarkPathIndexProbe.
type nestedMapIndex struct {
	vectors map[string]map[hin.VertexID]sparse.Vector
}

func newNestedMapIndex() *nestedMapIndex {
	return &nestedMapIndex{vectors: make(map[string]map[hin.VertexID]sparse.Vector)}
}

func (ix *nestedMapIndex) put(p metapath.Path, v hin.VertexID, vec sparse.Vector) {
	key := p.Key()
	m := ix.vectors[key]
	if m == nil {
		m = make(map[hin.VertexID]sparse.Vector)
		ix.vectors[key] = m
	}
	m[v] = vec.Clone()
}

func (ix *nestedMapIndex) get(p metapath.Path, v hin.VertexID) (sparse.Vector, bool) {
	m, ok := ix.vectors[p.Key()]
	if !ok {
		return sparse.Vector{}, false
	}
	vec, ok := m[v]
	return vec, ok
}

// pathIndexGraph builds a two-type graph with nAuthors authors (IDs first)
// and one paper, plus the author->paper->author test path.
func pathIndexGraph(tb testing.TB, nAuthors int) (*hin.Graph, metapath.Path, []hin.VertexID) {
	tb.Helper()
	s := hin.MustSchema("author", "paper")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	s.AllowLink(a, p)
	b := hin.NewBuilder(s)
	authors := make([]hin.VertexID, nAuthors)
	for i := range authors {
		authors[i] = b.MustAddVertex(a, fmt.Sprintf("a%d", i))
	}
	paper := b.MustAddVertex(p, "p0")
	for _, v := range authors {
		b.MustAddEdge(v, paper)
	}
	return b.Build(), metapath.MustNew(a, p, a), authors
}

func TestPathIndexPutGet(t *testing.T) {
	g, apa, authors := pathIndexGraph(t, 8)
	ix := newPathIndex(g)

	if _, ok := ix.get(apa, authors[0]); ok {
		t.Fatal("empty index returned a vector")
	}
	if ix.table(apa) != nil {
		t.Fatal("empty index has a table")
	}

	vecs := make(map[hin.VertexID]sparse.Vector)
	for i, v := range authors {
		if i == 3 {
			continue // leave one hole to exercise absent entries mid-span
		}
		vec := sparse.FromMap(map[int32]float64{int32(v): float64(i + 1), int32(authors[0]): 1})
		vecs[v] = vec
		ix.put(apa, v, vec)
	}
	tbl := ix.table(apa)
	if tbl == nil {
		t.Fatal("table missing after puts")
	}
	if tbl.count != len(vecs) {
		t.Fatalf("table count = %d, want %d", tbl.count, len(vecs))
	}
	for _, v := range authors {
		got, ok := ix.probe(tbl, v)
		want, present := vecs[v]
		if ok != present {
			t.Fatalf("probe(%d) ok = %v, want %v", v, ok, present)
		}
		if ok && !got.Equal(want) {
			t.Fatalf("probe(%d) = %v, want %v", v, got, want)
		}
	}
	// A vertex of the wrong type (the paper, whose ID is past the author
	// span) misses rather than aliasing garbage.
	if _, ok := ix.get(apa, hin.VertexID(len(authors))); ok {
		t.Fatal("paper vertex resolved in an author table")
	}

	// Exact bytes: arena payload + entry tables + key strings, no estimates.
	wantBytes := int64(len(ix.idx))*4 + int64(len(ix.val))*8
	for key, tb := range ix.tables {
		wantBytes += int64(len(tb.entries))*vecSpanBytes + int64(len(key))
	}
	if ix.bytes != wantBytes {
		t.Fatalf("bytes = %d, want exact %d", ix.bytes, wantBytes)
	}
}

func TestPathIndexOverwrite(t *testing.T) {
	g, apa, authors := pathIndexGraph(t, 4)
	ix := newPathIndex(g)
	v := authors[1]
	big := sparse.FromMap(map[int32]float64{0: 1, 1: 2, 2: 3})
	ix.put(apa, v, big)
	arenaLen := len(ix.idx)

	// Smaller payload overwrites in place: arena does not grow.
	small := sparse.FromMap(map[int32]float64{2: 9})
	ix.put(apa, v, small)
	if len(ix.idx) != arenaLen {
		t.Fatalf("in-place overwrite grew the arena: %d -> %d", arenaLen, len(ix.idx))
	}
	if got, ok := ix.get(apa, v); !ok || !got.Equal(small) {
		t.Fatalf("after shrink overwrite: %v, %v", got, ok)
	}

	// Larger payload appends; the old span goes dead but stays counted.
	bigger := sparse.FromMap(map[int32]float64{0: 1, 1: 2, 2: 3, 3: 4})
	ix.put(apa, v, bigger)
	if len(ix.idx) != arenaLen+bigger.NNZ() {
		t.Fatalf("append overwrite arena length = %d, want %d", len(ix.idx), arenaLen+bigger.NNZ())
	}
	if got, ok := ix.get(apa, v); !ok || !got.Equal(bigger) {
		t.Fatalf("after grow overwrite: %v, %v", got, ok)
	}
	if tbl := ix.table(apa); tbl.count != 1 {
		t.Fatalf("overwrites changed the entry count: %d", tbl.count)
	}
}

func TestPathIndexMatchesNestedMap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomBibGraph(r)
		arena := newPathIndex(g)
		nested := newNestedMapIndex()
		tr := metapath.NewTraverser(g)
		paths := allLength2Paths(g.Schema())
		for _, p := range paths {
			for _, v := range g.VerticesOfType(p.Source()) {
				if r.Float64() < 0.3 {
					continue // partial index, like SPM
				}
				vec, err := tr.NeighborVector(p, v)
				if err != nil {
					t.Fatal(err)
				}
				arena.put(p, v, vec)
				nested.put(p, v, vec)
			}
		}
		for _, p := range paths {
			tbl := arena.table(p)
			for v := hin.VertexID(0); int(v) < g.NumVertices(); v++ {
				got, gotOK := arena.probe(tbl, v)
				want, wantOK := nested.get(p, v)
				if gotOK != wantOK {
					t.Fatalf("trial %d: probe(%v,%d) ok=%v, nested ok=%v", trial, p, v, gotOK, wantOK)
				}
				if gotOK && !got.Equal(want) {
					t.Fatalf("trial %d: probe(%v,%d) = %v, want %v", trial, p, v, got, want)
				}
			}
		}
	}
}

func BenchmarkPathIndexProbe(b *testing.B) {
	const nAuthors = 4096
	g, apa, authors := pathIndexGraph(b, nAuthors)
	arena := newPathIndex(g)
	nested := newNestedMapIndex()
	r := rand.New(rand.NewSource(1))
	for i, v := range authors {
		m := map[int32]float64{int32(v): 1}
		for j := 0; j < 8; j++ {
			m[int32(authors[r.Intn(nAuthors)])] = float64(i%7 + 1)
		}
		vec := sparse.FromMap(m)
		arena.put(apa, v, vec)
		nested.put(apa, v, vec)
	}
	b.Run("nested-map", func(b *testing.B) {
		var nnz int
		for i := 0; i < b.N; i++ {
			vec, _ := nested.get(apa, authors[i%nAuthors])
			nnz += vec.NNZ()
		}
		sinkInt(nnz)
	})
	b.Run("arena", func(b *testing.B) {
		tbl := arena.table(apa)
		var nnz int
		for i := 0; i < b.N; i++ {
			vec, _ := arena.probe(tbl, authors[i%nAuthors])
			nnz += vec.NNZ()
		}
		sinkInt(nnz)
	})
}

//go:noinline
func sinkInt(int) {}
