package core

import (
	"fmt"
	"math/rand"
	"strings"

	"netout/internal/hin"
)

// Template is a query template in the style of Table 4: the marker "{}" is
// replaced by a quoted vertex name to generate a concrete query.
type Template struct {
	Name string
	Text string
}

// Instantiate substitutes name into the template's placeholder.
func (t Template) Instantiate(name string) string {
	quoted := `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(name) + `"`
	return strings.Replace(t.Text, "{}", "{"+quoted+"}", 1)
}

// PaperTemplates returns the three query templates of Table 4, used for the
// efficiency experiments: 10,000 random authors are substituted into each.
func PaperTemplates() []Template {
	return []Template{
		{Name: "Q1", Text: `FIND OUTLIERS FROM author{}.paper.author
JUDGED BY author.paper.venue
TOP 10;`},
		{Name: "Q2", Text: `FIND OUTLIERS IN author{}.paper.venue
JUDGED BY venue.paper.term
TOP 10;`},
		{Name: "Q3", Text: `FIND OUTLIERS IN author{}.paper.term
JUDGED BY term.paper.venue
TOP 10;`},
	}
}

// RandomVertexNames samples n vertex names of the given type uniformly with
// replacement, deterministically from seed. It mirrors the paper's
// construction of query sets ("we randomly select 10,000 author-typed
// vertices").
func RandomVertexNames(g *hin.Graph, typeName string, n int, seed int64) ([]string, error) {
	t, ok := g.Schema().TypeByName(typeName)
	if !ok {
		return nil, fmt.Errorf("core: unknown vertex type %q", typeName)
	}
	vs := g.VerticesOfType(t)
	if len(vs) == 0 {
		return nil, fmt.Errorf("core: no vertices of type %q", typeName)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = g.Name(vs[r.Intn(len(vs))])
	}
	return out, nil
}

// BuildQuerySet instantiates the template once per name.
func BuildQuerySet(t Template, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = t.Instantiate(n)
	}
	return out
}
