package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
)

// ---------------------------------------------------------------------------
// Combination modes

func TestCombineConcatSingleFeatureMatchesAverage(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`
	avg, err := NewEngine(g).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewEngine(g, WithCombination(CombineConcat)).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(avg, cc) {
		t.Fatalf("single-feature queries must agree:\n%+v\nvs\n%+v", avg.Entries, cc.Entries)
	}
}

func TestCombineConcatMultiFeature(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author
JUDGED BY author.paper.venue : 2.0, author.paper.author;`
	res, err := NewEngine(g, WithCombination(CombineConcat)).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %+v", res.Entries)
	}
	// Hand-check Zoe: concat vector is [2·Φ_v ⊕ Φ_a] with
	// Φ_v(Zoe)=[ICDE:2,KDD:3], Φ_a(Zoe)=[Ava:1,Liam:2,Zoe:5].
	// Visibility = 4·13 + 30 = 82.
	// S_v = [ICDE:4, KDD:6]; S_a = Σ Φ_a = [Ava:(2+1+1), Liam:(1+5+2)... ]
	// — computed programmatically below instead of by hand:
	tr := NewBaseline(g)
	pv, err := metapath.ParseDotted(g.Schema(), "author.paper.venue")
	if err != nil {
		t.Fatal(err)
	}
	pa, err := metapath.ParseDotted(g.Schema(), "author.paper.author")
	if err != nil {
		t.Fatal(err)
	}
	authorT, _ := g.Schema().TypeByName("author")
	var names = []string{"Ava", "Liam", "Zoe"}
	var vvecs, avecs []sparse.Vector
	for _, n := range names {
		v, _ := g.VertexByName(authorT, n)
		x, _ := tr.NeighborVector(pv, v)
		y, _ := tr.NeighborVector(pa, v)
		vvecs = append(vvecs, x)
		avecs = append(avecs, y)
	}
	sv := sparse.Sum(vvecs)
	sa := sparse.Sum(avecs)
	want := map[string]float64{}
	for i, n := range names {
		num := 4*vvecs[i].Dot(sv) + avecs[i].Dot(sa)
		den := 4*vvecs[i].Norm2Sq() + avecs[i].Norm2Sq()
		want[n] = num / den
	}
	for _, e := range res.Entries {
		if math.Abs(e.Score-want[e.Name]) > 1e-9 {
			t.Errorf("%s: concat score %g, want %g", e.Name, e.Score, want[e.Name])
		}
	}
}

func TestParseCombination(t *testing.T) {
	for name, want := range map[string]Combination{
		"average": CombineAverage, "avg": CombineAverage,
		"concat": CombineConcat, "concatenate": CombineConcat,
	} {
		got, err := ParseCombination(name)
		if err != nil || got != want {
			t.Errorf("ParseCombination(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseCombination("zzz"); err == nil {
		t.Error("unknown combination should fail")
	}
	if CombineAverage.String() != "average" || CombineConcat.String() != "concat" ||
		Combination(9).String() == "" {
		t.Error("Combination.String misbehaves")
	}
}

// The two combination modes must rank differently in general but both must
// agree with Baseline vs PM materialization.
func TestQuickCombinationsUnderPM(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		a, _ := g.Schema().TypeByName("author")
		authors := g.VerticesOfType(a)
		anchor := g.Name(authors[r.Intn(len(authors))])
		src := fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author
JUDGED BY author.paper.venue, author.paper.term : 2.0;`, anchor)
		for _, c := range []Combination{CombineAverage, CombineConcat} {
			rb, err1 := NewEngine(g, WithCombination(c)).Execute(src)
			rp, err2 := NewEngine(g, WithCombination(c), WithMaterializer(NewPM(g))).Execute(src)
			if err1 != nil || err2 != nil {
				return false
			}
			if !resultsEqual(rb, rp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Progressive execution

func TestProgressiveExactOnCompletion(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`
	exact, err := NewEngine(g).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []ProgressiveSnapshot
	prog, err := NewEngine(g).ExecuteProgressive(src, ProgressiveOptions{
		ChunkSize: 1,
		OnSnapshot: func(s ProgressiveSnapshot) bool {
			snaps = append(snaps, s)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 { // three reference vertices, chunk size 1
		t.Fatalf("snapshots = %d", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Exact || last.ProcessedRefs != last.TotalRefs {
		t.Fatalf("final snapshot not exact: %+v", last)
	}
	if len(prog.Entries) != len(exact.Entries) {
		t.Fatalf("progressive entries = %+v", prog.Entries)
	}
	for i := range exact.Entries {
		if prog.Entries[i].Vertex != exact.Entries[i].Vertex ||
			math.Abs(prog.Entries[i].Score-exact.Entries[i].Score) > 1e-9 {
			t.Fatalf("progressive diverges: %+v vs %+v", prog.Entries[i], exact.Entries[i])
		}
	}
	// Final half-widths are zero (exact).
	for _, est := range last.TopK {
		if est.HalfWidth != 0 {
			t.Errorf("exact snapshot has half-width %g", est.HalfWidth)
		}
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`
	calls := 0
	res, err := NewEngine(g).ExecuteProgressive(src, ProgressiveOptions{
		ChunkSize: 1,
		OnSnapshot: func(s ProgressiveSnapshot) bool {
			calls++
			return calls < 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("snapshot calls = %d", calls)
	}
	if len(res.Entries) == 0 {
		t.Fatal("early stop should still return estimates")
	}
}

func TestProgressiveMultiFeatureAndErrors(t *testing.T) {
	g := fig1Graph(t)
	multi := `FIND OUTLIERS FROM author{"Zoe"}.paper.author
JUDGED BY author.paper.venue, author.paper.author;`
	res, err := NewEngine(g).ExecuteProgressive(multi, ProgressiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Multi-feature progressive uses concat semantics: must equal the
	// concat-combination exact execution.
	cc, err := NewEngine(g, WithCombination(CombineConcat)).Execute(multi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cc.Entries {
		if math.Abs(res.Entries[i].Score-cc.Entries[i].Score) > 1e-9 {
			t.Fatalf("multi-feature progressive diverges: %+v vs %+v", res.Entries, cc.Entries)
		}
	}
	if _, err := NewEngine(g, WithMeasure(MeasurePathSim)).ExecuteProgressive(multi, ProgressiveOptions{}); err == nil {
		t.Error("progressive with PathSim should fail")
	}
	if _, err := NewEngine(g).ExecuteProgressive("bogus", ProgressiveOptions{}); err == nil {
		t.Error("bad query should fail")
	}
}

// The progressive estimator is unbiased: on a larger random graph the
// half-width must cover the true score for most snapshots, and estimates
// must converge to the exact value.
func TestProgressiveConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomBibGraph(r)
	src := `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`
	exact, err := NewEngine(g).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]float64{}
	for _, e := range exact.Entries {
		truth[e.Name] = e.Score
	}
	var lastNonExact ProgressiveSnapshot
	_, err = NewEngine(g).ExecuteProgressive(src, ProgressiveOptions{
		ChunkSize: 2,
		Seed:      3,
		OnSnapshot: func(s ProgressiveSnapshot) bool {
			if !s.Exact {
				lastNonExact = s
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastNonExact.TotalRefs == 0 {
		t.Skip("graph too small for a non-exact snapshot")
	}
	covered, total := 0, 0
	for _, est := range lastNonExact.TopK {
		want, ok := truth[est.Name]
		if !ok {
			continue
		}
		total++
		if math.Abs(est.Score-want) <= est.HalfWidth+1e-9 {
			covered++
		}
	}
	if total > 0 && float64(covered)/float64(total) < 0.5 {
		t.Errorf("confidence intervals cover only %d/%d true scores", covered, total)
	}
}

// ---------------------------------------------------------------------------
// Explanations

func TestExplain(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`
	eng := NewEngine(g)
	x, err := eng.Explain(src, "Zoe", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zoe's exact score is 2 (hand-computed in TestExecuteBasicNetOut);
	// the explanation's total must reproduce it.
	if math.Abs(x.Score-2.0) > 1e-12 {
		t.Fatalf("explained score = %g, want 2", x.Score)
	}
	if len(x.Paths) != 1 {
		t.Fatalf("paths = %+v", x.Paths)
	}
	pe := x.Paths[0]
	if pe.Visibility != 13 {
		t.Fatalf("visibility = %g, want 13", pe.Visibility)
	}
	if len(pe.Contributions) != 2 {
		t.Fatalf("contributions = %+v", pe.Contributions)
	}
	// Per-coordinate: KDD share = 9/13, ICDE share = 4/13; Ω parts sum to 2.
	var sum, shares float64
	for _, c := range pe.Contributions {
		sum += c.Omega
		shares += c.CandidateShare
	}
	if math.Abs(sum-2.0) > 1e-12 || math.Abs(shares-1.0) > 1e-12 {
		t.Fatalf("Ω parts sum %g (want 2), shares %g (want 1)", sum, shares)
	}
	if pe.Contributions[0].Name != "KDD" { // largest share first
		t.Fatalf("first contribution = %+v", pe.Contributions[0])
	}
	if !strings.Contains(x.Format(), "KDD") {
		t.Error("Format missing neighbor names")
	}
}

func TestExplainTruncationAndErrors(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`
	eng := NewEngine(g)
	x, err := eng.Explain(src, "Zoe", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Paths[0].Contributions) != 1 {
		t.Fatalf("truncation failed: %+v", x.Paths[0].Contributions)
	}
	if _, err := eng.Explain(src, "Nobody", 0); err == nil {
		t.Error("unknown candidate should fail")
	}
	if _, err := eng.Explain(src, "Hermit", 0); err == nil {
		t.Error("candidate outside the set should fail")
	}
	if _, err := eng.Explain("bogus", "Zoe", 0); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := NewEngine(g, WithMeasure(MeasureCosSim)).Explain(src, "Zoe", 0); err == nil {
		t.Error("explanations under CosSim should fail")
	}
	// Zero-visibility candidate: explanation exists, path block is empty.
	x, err = eng.Explain(`FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`, "Hermit", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Paths[0].Contributions) != 0 || x.Score != 0 {
		t.Fatalf("hermit explanation = %+v", x)
	}
	if !strings.Contains(x.Format(), "skipped") {
		t.Error("Format should mention the skip")
	}
}

// Explanations must reproduce Execute's scores on random graphs.
func TestQuickExplainMatchesExecute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomBibGraph(r)
		a, _ := g.Schema().TypeByName("author")
		authors := g.VerticesOfType(a)
		anchor := g.Name(authors[r.Intn(len(authors))])
		src := fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author
JUDGED BY author.paper.venue, author.paper.term : 2.0;`, anchor)
		eng := NewEngine(g)
		res, err := eng.Execute(src)
		if err != nil {
			return false
		}
		for _, e := range res.Entries {
			x, err := eng.Explain(src, e.Name, 0)
			if err != nil {
				t.Logf("explain %q: %v", e.Name, err)
				return false
			}
			if math.Abs(x.Score-e.Score) > 1e-9 {
				t.Logf("%s: explain %g vs execute %g", e.Name, x.Score, e.Score)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Suggestions

func TestSuggestFeatures(t *testing.T) {
	g := fig1Graph(t)
	src := `FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`
	sugs, err := NewEngine(g).SuggestFeatures(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	paths := map[string]bool{}
	for _, s := range sugs {
		paths[s.Path] = true
		if s.Separation < 1 || s.Characterized <= 0 || s.Characterized > 1 {
			t.Errorf("suspicious suggestion %+v", s)
		}
	}
	for _, want := range []string{"author.paper.venue", "author.paper.author", "author.paper.term"} {
		if !paths[want] {
			t.Errorf("expected path %s among suggestions %v", want, paths)
		}
	}
	// Sorted best-first by separation × characterized.
	for i := 1; i < len(sugs); i++ {
		a := sugs[i-1].Separation * sugs[i-1].Characterized
		b := sugs[i].Separation * sugs[i].Characterized
		if a < b {
			t.Fatalf("suggestions not sorted: %v", sugs)
		}
	}
	if out := FormatSuggestions(sugs, 2); !strings.Contains(out, "author.paper") {
		t.Error("FormatSuggestions output wrong")
	}
	// maxHops 4 yields strictly more paths.
	deep, err := NewEngine(g).SuggestFeatures(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(deep) <= len(sugs) {
		t.Fatalf("maxHops=4 gave %d paths, 2 gave %d", len(deep), len(sugs))
	}
}

func TestSuggestFeaturesErrors(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	if _, err := eng.SuggestFeatures("bogus", 2); err == nil {
		t.Error("bad query should fail")
	}
	// Candidate set of size < 3.
	if _, err := eng.SuggestFeatures(`FIND OUTLIERS FROM author{"Hermit"} JUDGED BY author.paper.venue;`, 2); err == nil {
		t.Error("tiny candidate set should fail")
	}
}

// ---------------------------------------------------------------------------
// Batch execution

func TestExecuteBatch(t *testing.T) {
	g := fig1Graph(t)
	queries := []string{
		`FIND OUTLIERS FROM author{"Zoe"}.paper.author JUDGED BY author.paper.venue;`,
		`FIND OUTLIERS FROM author{"Liam"}.paper.author JUDGED BY author.paper.venue;`,
		`bogus query`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.author;`,
	}
	results, err := ExecuteBatch(g, queries, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	serial := NewEngine(g)
	for i, br := range results {
		if br.Index != i {
			t.Fatalf("result %d has index %d", i, br.Index)
		}
		want, wantErr := serial.Execute(queries[i])
		if (br.Err == nil) != (wantErr == nil) {
			t.Fatalf("query %d error mismatch: %v vs %v", i, br.Err, wantErr)
		}
		if br.Err == nil && !resultsEqual(br.Result, want) {
			t.Fatalf("query %d result diverges", i)
		}
	}
}

func TestExecuteBatchSharedIndex(t *testing.T) {
	g := fig1Graph(t)
	pm := NewPM(g)
	names := []string{"Zoe", "Liam", "Ava"}
	var queries []string
	for _, n := range names {
		for i := 0; i < 4; i++ {
			queries = append(queries,
				fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY author.paper.venue;`, n))
		}
	}
	results, err := ExecuteBatch(g, queries, BatchOptions{Workers: 4, Materializer: pm})
	if err != nil {
		t.Fatal(err)
	}
	serial := NewEngine(g)
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("query %d: %v", i, br.Err)
		}
		want, _ := serial.Execute(queries[i])
		if !resultsEqual(br.Result, want) {
			t.Fatalf("query %d diverges under shared PM index", i)
		}
	}
	// Views are per worker: the shared materializer's own stats stay zero.
	if s := pm.Stats(); s.IndexedVectors != 0 || s.TraversedVectors != 0 {
		t.Fatalf("shared materializer mutated: %+v", s)
	}
}

func TestExecuteBatchSharedCache(t *testing.T) {
	g := fig1Graph(t)
	mat, err := NewCached(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Zoe", "Liam", "Ava"}
	var queries []string
	for _, n := range names {
		for i := 0; i < 4; i++ {
			queries = append(queries,
				fmt.Sprintf(`FIND OUTLIERS FROM author{%q}.paper.author JUDGED BY author.paper.venue;`, n))
		}
	}
	results, err := ExecuteBatch(g, queries, BatchOptions{Workers: 4, Materializer: mat})
	if err != nil {
		t.Fatal(err)
	}
	serial := NewEngine(g)
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("query %d: %v", i, br.Err)
		}
		want, _ := serial.Execute(queries[i])
		if !resultsEqual(br.Result, want) {
			t.Fatalf("query %d diverges under shared cache", i)
		}
	}
	// Unlike PM views, cache views share warm state AND stats: the repeated
	// workload must resolve mostly from cache, and the handle the caller
	// kept sees the whole pool's counters.
	cs, ok := CacheStatsOf(mat)
	if !ok {
		t.Fatal("CacheStatsOf failed")
	}
	if cs.Hits <= cs.Misses || cs.Misses == 0 {
		t.Fatalf("shared cache not warm across batch workers: %+v", cs)
	}
	if st := mat.Stats(); st.TraversedVectors != cs.Misses || st.IndexedVectors != cs.Hits {
		t.Fatalf("stats disagree: %+v vs %+v", st, cs)
	}
}

func TestNewViewErrors(t *testing.T) {
	if _, err := NewView(nil); err == nil {
		t.Error("nil materializer view should fail")
	}
}

func TestExecuteBatchEmpty(t *testing.T) {
	g := fig1Graph(t)
	results, err := ExecuteBatch(g, nil, BatchOptions{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first materialization step must abort
	_, err := eng.ExecuteContext(ctx, `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// A live context executes normally, and the engine is reusable after a
	// cancelled query.
	res, err := eng.ExecuteContext(context.Background(), `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`)
	if err != nil || len(res.Entries) == 0 {
		t.Fatalf("post-cancel execution failed: %v", err)
	}
	// WHERE filtering also honours cancellation.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = eng.ExecuteContext(ctx2, `FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 0 JUDGED BY author.paper.venue;`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WHERE path: want context.Canceled, got %v", err)
	}
}

func TestStopWhenStable(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	snapshots := 0
	res, err := eng.ExecuteProgressive(
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 2;`,
		ProgressiveOptions{
			ChunkSize: 1,
			OnSnapshot: StopWhenStable(2, 2, func(s ProgressiveSnapshot) bool {
				snapshots++
				return true
			}),
		})
	if err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 || len(res.Entries) == 0 {
		t.Fatal("stability stop produced nothing")
	}
	// Stability detector semantics in isolation.
	mk := func(vs ...hin.VertexID) ProgressiveSnapshot {
		s := ProgressiveSnapshot{}
		for _, v := range vs {
			s.TopK = append(s.TopK, ProgressiveEstimate{Vertex: v})
		}
		return s
	}
	cb := StopWhenStable(2, 2, nil)
	if !cb(mk(1, 2)) { // first sight
		t.Fatal("should continue after first snapshot")
	}
	if !cb(mk(1, 2)) { // stable x1
		t.Fatal("should continue after one stable round")
	}
	if cb(mk(1, 2)) { // stable x2 -> stop
		t.Fatal("should stop after two stable rounds")
	}
	cb = StopWhenStable(0, 0, nil) // clamps to 1,1
	if cb(mk(1)) && !cb(mk(2)) {
		// first call establishes, change resets; second identical call stops.
		t.Fatal("clamped detector misbehaves")
	}
	// Inner callback vetoes immediately.
	cb = StopWhenStable(2, 5, func(ProgressiveSnapshot) bool { return false })
	if cb(mk(1, 2)) {
		t.Fatal("inner veto ignored")
	}
}

// An empty reference set is legal: every candidate sums over nothing and
// scores 0 (all equally outlying) — documented degenerate behavior.
func TestEmptyReferenceSet(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS FROM author{"Zoe"}.paper.author
COMPARED TO author AS A WHERE COUNT(A.paper) > 100
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReferenceCount != 0 {
		t.Fatalf("ReferenceCount = %d", res.ReferenceCount)
	}
	for _, e := range res.Entries {
		if e.Score != 0 {
			t.Fatalf("empty-reference score = %g, want 0", e.Score)
		}
	}
}

// A cancelled context from a previous ExecuteContext must not leak into
// later context-less calls.
func TestStaleContextDoesNotLeak(t *testing.T) {
	g := fig1Graph(t)
	eng := NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	whereQuery := `FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) >= 0 JUDGED BY author.paper.venue;`
	if _, err := eng.ExecuteContext(ctx, whereQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup: want Canceled, got %v", err)
	}
	if _, err := eng.Explain(whereQuery, "Zoe", 0); err != nil {
		t.Errorf("Explain saw stale context: %v", err)
	}
	if _, err := eng.SuggestFeatures(whereQuery, 2); err != nil {
		t.Errorf("SuggestFeatures saw stale context: %v", err)
	}
	if _, err := eng.ExecuteProgressive(whereQuery, ProgressiveOptions{}); err != nil {
		t.Errorf("ExecuteProgressive saw stale context: %v", err)
	}
	if _, err := eng.CandidateSet(whereQuery); err != nil {
		t.Errorf("CandidateSet saw stale context: %v", err)
	}
}
