package core

import (
	"context"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/obs"
	"netout/internal/oql"
	"netout/internal/sparse"
	"netout/internal/xerr"
)

// Engine executes outlier queries over a heterogeneous information network.
// An Engine is configured once with a measure and a materialization
// strategy. It is re-entrant: queries carry their own context and trace, so
// concurrent calls on one Engine never observe each other's per-query
// state. Whether concurrent use is actually SAFE depends on the
// materializer: the cached strategy (NewCached) is internally synchronized,
// so a cached Engine may serve queries from any number of goroutines;
// baseline and PM/SPM materializers carry unsynchronized scratch and stats,
// so engines over those still need one engine per goroutine (share the
// index through NewView, or route traffic through a ServePool) — see the
// concurrency contract in DESIGN.md.
type Engine struct {
	g  *hin.Graph
	tr *metapath.Traverser
	// trMu guards tr: set evaluation (EvalSet and WHERE conditions) shares
	// one traverser across concurrent queries, and the traverser's scratch
	// is not concurrency-safe.
	trMu    sync.Mutex
	mat     Materializer
	measure Measure
	combine Combination
	// parallelism bounds the intra-query pipeline's worker count
	// (WithQueryParallelism); 0 means GOMAXPROCS, 1 means sequential.
	parallelism int
	// workerPool recycles pipeline workers across queries: a worker's
	// materializer view and traversal scratch are the expensive parts of
	// query setup, and both are reusable as-is.
	workerPool sync.Pool
	// shards is the configured shard count (WithShards); the resident
	// scatter–gather group behind it starts lazily on first sharded query
	// (shardOnce) and is torn down by Close. shardGrp stays nil when the
	// materializer has no concurrent views — the engine then runs unsharded.
	shards    int
	shardOnce sync.Once
	shardGrp  *shardGroup
	// remotes, when set via WithRemoteShards, scatter queries across
	// out-of-process shards instead of resident goroutines; they take
	// precedence over shards. The engine does not own the clients.
	remotes []RemoteShard

	// obs and slow, when set via WithObs, receive per-query metrics (latency
	// histograms, outcome counters, vector counters) and slow-query entries.
	obs  *obs.Registry
	slow *obs.SlowLog
	// events, when set via WithEventSink, receives one wide Event per
	// completed query (ok, error, partial or recovered panic).
	events obs.EventSink
	// inflight, when set via WithInflight, tracks executing queries for the
	// /debug/requests inspector.
	inflight *obs.Inflight
}

// ctxErr reports the context error, if any (nil context never cancels).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Option configures an Engine.
type Option func(*Engine)

// WithMeasure selects the outlierness measure (default MeasureNetOut).
func WithMeasure(m Measure) Option { return func(e *Engine) { e.measure = m } }

// WithMaterializer selects the materialization strategy (default Baseline).
func WithMaterializer(m Materializer) Option { return func(e *Engine) { e.mat = m } }

// WithQueryParallelism bounds the intra-query execution pipeline: queries
// with enough candidates split the candidate set into chunks and run
// materialize→score fused per chunk on n workers, each holding a view of
// the engine's materializer. n <= 0 (the default) uses GOMAXPROCS; n == 1
// forces the sequential path. Results are identical for every n — the
// pipeline changes wall-clock time and peak memory, never the ranking, the
// skip list or the vector counters.
func WithQueryParallelism(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.parallelism = n
	}
}

// WithObs connects the engine to an observability registry and (optionally)
// a slow-query log: every query observes its latency and phase breakdown
// into reg's instruments, and completed queries are offered to slow. Either
// argument may be nil. Queries always carry a Trace regardless.
func WithObs(reg *obs.Registry, slow *obs.SlowLog) Option {
	return func(e *Engine) { e.obs, e.slow = reg, slow }
}

// WithEventSink connects the engine to a wide-event journal: every completed
// query (ok, error, partial or recovered panic) emits exactly one obs.Event
// describing what it did — identity, configuration, per-phase costs, kernel
// counts, outcome. nil disables emission. The sink must be safe for
// concurrent use; emission is side-effect-free with respect to results, so
// the pipeline's determinism contract is unaffected.
func WithEventSink(s obs.EventSink) Option {
	return func(e *Engine) { e.events = s }
}

// WithInflight registers every executing query in the given table for the
// /debug/requests live inspector, deregistering on finish. nil disables
// tracking.
func WithInflight(t *obs.Inflight) Option {
	return func(e *Engine) { e.inflight = t }
}

// NewEngine creates an engine over g with the given options.
func NewEngine(g *hin.Graph, opts ...Option) *Engine {
	e := &Engine{g: g, tr: metapath.NewTraverser(g), measure: MeasureNetOut}
	for _, o := range opts {
		o(e)
	}
	if e.mat == nil {
		e.mat = NewBaseline(g)
	}
	return e
}

// Graph returns the engine's network.
func (e *Engine) Graph() *hin.Graph { return e.g }

// Measure returns the configured outlierness measure.
func (e *Engine) Measure() Measure { return e.measure }

// Materializer returns the configured materialization strategy.
func (e *Engine) Materializer() Materializer { return e.mat }

// Combination returns the configured multi-path combination mode.
func (e *Engine) Combination() Combination { return e.combine }

// QueryParallelism returns the effective intra-query worker count.
func (e *Engine) QueryParallelism() int {
	if e.parallelism > 0 {
		return e.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Entry is one ranked outlier: smaller Score means more outlying.
type Entry struct {
	Vertex hin.VertexID
	Name   string
	Score  float64
}

// Timing is the per-query cost breakdown reported in the Figure 4 study.
// Under the parallel pipeline the durations are summed across workers
// (CPU time, not wall time); the vector counters are exact and identical
// for every worker count.
type Timing struct {
	Total        time.Duration
	SetRetrieval time.Duration
	// NotIndexed is time spent materializing neighbor vectors by network
	// traversal ("not indexed vectors" in Figure 4).
	NotIndexed time.Duration
	// Indexed is time spent loading pre-materialized vectors.
	Indexed time.Duration
	// Scoring is the outlierness calculation time.
	Scoring time.Duration

	TraversedVectors int64
	IndexedVectors   int64
}

// Result is the outcome of one query.
type Result struct {
	// Entries is the ranked outlier list, most outlying first (ascending
	// score), truncated to the query's TOP k.
	Entries []Entry
	// Skipped lists candidates with zero visibility under every feature
	// meta-path: they cannot be characterized and are excluded from the
	// ranking.
	Skipped []hin.VertexID
	// CandidateCount and ReferenceCount are the sizes of Sc and Sr.
	CandidateCount, ReferenceCount int
	// Partial marks a deadline-degraded result: the query's deadline expired
	// mid-pipeline under the NetOut measure and the engine returned the
	// ranking over the candidates scored so far instead of a bare
	// context.DeadlineExceeded. Scores of the entries present are exact
	// (NetOut is separable per candidate once the reference side is fixed);
	// what is missing is the candidates never reached. Entries and Skipped
	// cover only the processed prefix; CandidateCount still reports the full
	// |Sc|. Cancellation never degrades — a cancelled caller gets the error.
	Partial bool
	// Shards is the per-shard accounting of a sharded execution (WithShards),
	// one entry per shard in index order; nil for unsharded queries. On a
	// Partial result the entries with Partial=true are the shards that
	// degraded — a deadline-expired or panicking shard contributes the exact
	// prefix of candidates it fully scored (Done of Candidates) instead of
	// failing the query.
	Shards []ShardStatus
	Timing Timing
	// Trace is the per-phase breakdown (parse → validate → plan →
	// materialize → score → rank); phases recorded contiguously, so their
	// durations sum to the trace total. The parse span is present only for
	// queries entered as text (Execute/ExecuteContext). Under the parallel
	// pipeline scoring is fused into the materialize span and the score
	// span is (near-)empty; the span's vector and cache counters aggregate
	// all workers and match the sequential execution exactly. Sharded
	// execution replaces materialize → score → rank with reduce (reference
	// side, on the coordinator) → scatter (per-shard fused scoring) → merge
	// (k-way merge), plus one ShardSpan per shard on the trace.
	Trace *obs.Trace
}

// Execute parses, validates and runs a query given as OQL text.
func (e *Engine) Execute(src string) (*Result, error) {
	return e.ExecuteContext(context.Background(), src)
}

// ExecuteContext is Execute with cancellation: the query aborts with the
// context's error at the next per-vertex materialization step. The analyst
// interactivity the paper motivates ("react to outliers or further
// elaborate their queries") needs runaway queries to be abortable.
func (e *Engine) ExecuteContext(ctx context.Context, src string) (*Result, error) {
	tr := obs.StartTrace()
	q, err := oql.Parse(src)
	if err != nil {
		if e.obs != nil {
			e.obs.Counter(`netout_queries_total{outcome="error"}`, queriesHelp).Inc()
			e.obs.Counter(`netout_query_errors_total{outcome="`+xerr.Outcome(err)+`"}`, errorsHelp).Inc()
		}
		// A parse failure never reaches executeQuery's observation defer, but
		// the journal's contract is one event per completed query, including
		// this kind: emit it here with the raw source (there is no *oql.Query
		// to print) and a parse-only trace.
		tr.EndPhase("parse", obs.SpanStats{})
		trace := tr.Finish()
		stampIdentity(ctx, trace)
		e.emitEvent(ctx, trace, src, nil, err, nil)
		return nil, err
	}
	tr.EndPhase("parse", obs.SpanStats{})
	return e.executeQuery(ctx, q, tr)
}

// stampIdentity copies the request ID and span context carried by ctx onto
// the sealed trace, linking it to the X-Request-Id and traceparent headers
// the client saw.
func stampIdentity(ctx context.Context, trace *obs.Trace) {
	trace.RequestID = obs.RequestIDFrom(ctx)
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		trace.TraceID = sc.TraceID
		trace.SpanID = sc.SpanID
		trace.ParentSpanID = sc.ParentSpanID
	}
}

const queriesHelp = "Queries executed by outcome (parse/validation failures and cancellations count as errors)."

const errorsHelp = "Query errors by taxonomy outcome (finer-grained companion to netout_queries_total)."

// observeQuery seals the trace onto the result and feeds the configured
// registry and slow-query log. The serving layer's request ID, when ctx
// carries one, is stamped onto the trace so the slow log and /debug/slow
// are addressable by the X-Request-Id a client saw.
func (e *Engine) observeQuery(ctx context.Context, tr *obs.Tracer, q *oql.Query, res *Result, err error, kernels map[string]int64) {
	trace := tr.Finish()
	stampIdentity(ctx, trace)
	if res != nil {
		res.Trace = trace
	}
	if e.obs != nil {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		if IsPanicError(err) {
			e.obs.Counter("netout_query_panics_total",
				"Recovered panics converted into query errors.").Inc()
		}
		if err == nil && res != nil && res.Partial {
			e.obs.Counter("netout_query_partial_total",
				"Queries answered with a deadline-degraded Partial=true result.").Inc()
		}
		e.obs.Counter(`netout_queries_total{outcome="`+outcome+`"}`, queriesHelp).Inc()
		if err != nil {
			// Finer-grained taxonomy counter alongside the coarse ok/error
			// pair: the coarse counter's exact Served/Failed correspondence is
			// load-bearing for dashboards and tests, so the breakdown by code
			// lives in its own metric.
			e.obs.Counter(`netout_query_errors_total{outcome="`+xerr.Outcome(err)+`"}`, errorsHelp).Inc()
		}
		e.obs.Histogram("netout_query_seconds", "Query wall time.", nil).Observe(trace.Total.Seconds())
		var traversed, indexed int64
		for _, s := range trace.Spans {
			e.obs.Histogram(`netout_query_phase_seconds{phase="`+s.Phase+`"}`,
				"Per-phase query wall time.", nil).Observe(s.Duration.Seconds())
			// Summing across spans covers both phase shapes: unsharded
			// queries attribute all vector work to the materialize span,
			// sharded ones split it between reduce and scatter.
			traversed += s.Stats.TraversedVectors
			indexed += s.Stats.IndexedVectors
		}
		if traversed+indexed > 0 {
			e.obs.Counter("netout_vectors_traversed_total",
				"Neighbor vectors materialized by network traversal.").Add(traversed)
			e.obs.Counter("netout_vectors_indexed_total",
				"Neighbor vectors served from an index or cache.").Add(indexed)
		}
		if res != nil && len(res.Shards) > 0 {
			for _, st := range res.Shards {
				e.obs.Counter(`netout_shard_queries_total{shard="`+strconv.Itoa(st.Shard)+`"}`,
					"Per-shard requests served by the scatter-gather tier.").Inc()
				if st.Partial {
					e.obs.Counter("netout_shard_partials_total",
						"Shards that contributed an exact-prefix partial to a degraded query.").Inc()
				}
			}
			if s, ok := trace.Span("merge"); ok {
				e.obs.Histogram("netout_shard_merge_seconds",
					"Coordinator k-way merge time for sharded queries.", nil).Observe(s.Duration.Seconds())
			}
		}
	}
	if e.slow != nil {
		if err == nil {
			e.slow.Record(q.String(), trace.Total, trace)
		} else {
			// Failures are retained by recency with their request ID, error
			// text and (for defects) stack, so a 500's X-Request-Id locates
			// the crashing frame at /debug/slow.
			e.slow.RecordFailure(q.String(), trace.Total, trace, err.Error(), xerr.StackOf(err))
		}
	}
	e.emitEvent(ctx, trace, q.String(), res, err, kernels)
}

// emitEvent builds and emits the wide event for one completed query. The
// event's durations and counters are read from the same sealed trace the
// /metrics instruments observed, so the three views always agree.
func (e *Engine) emitEvent(ctx context.Context, trace *obs.Trace, query string, res *Result, err error, kernels map[string]int64) {
	if e.events == nil {
		return
	}
	ev := &obs.Event{
		Time:         time.Now(),
		RequestID:    trace.RequestID,
		TraceID:      trace.TraceID,
		SpanID:       trace.SpanID,
		ParentSpanID: trace.ParentSpanID,
		Query:        obs.TruncateQuery(query),
		Measure:      e.measure.String(),
		Strategy:     e.mat.Strategy().String(),
		Parallelism:  e.QueryParallelism(),
		QueueWaitUs:  obs.QueueWaitFrom(ctx).Microseconds(),
		TotalUs:      trace.Total.Microseconds(),
		Kernels:      kernels,
		Plan:         trace.Plan,
		Outcome:      xerr.Outcome(err),
	}
	for _, s := range trace.Spans {
		ev.Phases = append(ev.Phases, obs.EventPhase{
			Phase:            s.Phase,
			DurationUs:       s.Duration.Microseconds(),
			TraversedVectors: s.Stats.TraversedVectors,
			IndexedVectors:   s.Stats.IndexedVectors,
			CacheHits:        s.Stats.CacheHits,
			CacheMisses:      s.Stats.CacheMisses,
		})
	}
	for _, ss := range trace.Shards {
		ev.Shards = append(ev.Shards, obs.EventShard{
			Shard:      ss.Shard,
			Addr:       ss.Addr,
			DurationUs: ss.Duration.Microseconds(),
			Candidates: ss.Candidates,
			Done:       ss.Done,
			Partial:    ss.Partial,
			Err:        ss.Err,
		})
	}
	if err != nil {
		ev.Error = err.Error()
	}
	if res != nil {
		ev.Candidates = res.CandidateCount
		ev.References = res.ReferenceCount
		ev.Entries = len(res.Entries)
		ev.Partial = res.Partial
		if len(res.Entries) > 0 {
			top := res.Entries[0].Score
			ev.TopScore = &top
		}
	}
	e.events.Emit(ev)
}

// kernelCountsOf reads the cumulative traversal-kernel counters behind a
// materializer, when it owns a private traverser whose counters the
// executing goroutine may read (baseline and PM/SPM). The shared cached
// strategy is excluded: its state is touched by every pool worker and the
// counters are not synchronized for cross-goroutine reads.
func kernelCountsOf(m Materializer) (metapath.KernelCounts, bool) {
	switch x := m.(type) {
	case *baseline:
		return x.tr.KernelCounts(), true
	case *indexedMaterializer:
		return x.tr.KernelCounts(), true
	}
	return metapath.KernelCounts{}, false
}

// kernelDelta maps the non-zero per-kernel hop deltas for an event.
func kernelDelta(before, after metapath.KernelCounts) map[string]int64 {
	out := make(map[string]int64, 3)
	if d := after.Map - before.Map; d > 0 {
		out["map"] = int64(d)
	}
	if d := after.Dense - before.Dense; d > 0 {
		out["dense"] = int64(d)
	}
	if d := after.Merge - before.Merge; d > 0 {
		out["merge"] = int64(d)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ExecuteQuery runs a parsed query.
func (e *Engine) ExecuteQuery(q *oql.Query) (*Result, error) {
	return e.ExecuteQueryContext(context.Background(), q)
}

// ExecuteQueryContext runs a parsed query with cancellation. The context is
// threaded through the whole call chain (never stored on the Engine), so
// concurrent queries on one engine each observe exactly their own context.
func (e *Engine) ExecuteQueryContext(ctx context.Context, q *oql.Query) (*Result, error) {
	return e.executeQuery(ctx, q, obs.StartTrace())
}

// executeQuery runs a parsed query against a trace whose parse phase (if
// any) has already been recorded.
func (e *Engine) executeQuery(ctx context.Context, q *oql.Query, tr *obs.Tracer) (res *Result, err error) {
	start := time.Now()
	// Live registration for the /debug/requests inspector. Deregistration is
	// the first defer, so it runs last — after observation — and a panicking
	// query still leaves the table.
	var ifq *obs.InflightQuery
	if e.inflight != nil {
		traceID := ""
		if sc, ok := obs.SpanContextFrom(ctx); ok {
			traceID = sc.TraceID
		}
		ifq = e.inflight.Register(obs.RequestIDFrom(ctx), traceID, q.String())
	}
	defer e.inflight.Deregister(ifq)
	// Kernel counters are snapshotted around execution when the materializer
	// exposes them (see kernelCountsOf); the delta is computed inside the
	// observation defer so recovered panics still report the work done.
	kernelBefore, kernelTrack := kernelCountsOf(e.mat)
	defer func() {
		var kernels map[string]int64
		if kernelTrack {
			if after, ok := kernelCountsOf(e.mat); ok {
				kernels = kernelDelta(kernelBefore, after)
			}
		}
		e.observeQuery(ctx, tr, q, res, err, kernels)
	}()
	// Panic isolation (registered after observeQuery so it runs first and
	// the observation sees the error): a panic anywhere in execution — the
	// engine's own phases or a pipeline worker's re-raised chunk failure —
	// returns a *PanicError instead of unwinding through the serving layers.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, newPanicError(r)
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	ifq.SetPhase("validate")
	if _, err := oql.Validate(q, e.g.Schema()); err != nil {
		return nil, err
	}
	tr.EndPhase("validate", obs.SpanStats{})
	ifq.SetPhase("plan")

	// Plan: resolve the candidate/reference sets and the feature meta-paths.
	setStart := time.Now()
	cands, err := e.EvalSetContext(ctx, q.From)
	if err != nil {
		return nil, err
	}
	refs := cands
	if q.ComparedTo != nil {
		refs, err = e.EvalSetContext(ctx, q.ComparedTo)
		if err != nil {
			return nil, err
		}
	}
	paths := make([]metapath.Path, len(q.Features))
	weights := make([]float64, len(q.Features))
	for m, f := range q.Features {
		if paths[m], err = metapath.FromNames(e.g.Schema(), f.Segments...); err != nil {
			return nil, err
		}
		weights[m] = f.Weight
	}
	res = &Result{
		CandidateCount: len(cands),
		ReferenceCount: len(refs),
	}
	res.Timing.SetRetrieval = time.Since(setStart)
	// When the materializer runs a subpath planner, stamp its per-path
	// decisions into the trace during the plan phase; observeQuery copies
	// them onto the wide event, so /debug/events shows how each feature
	// path was going to be evaluated.
	if pl := PlannerOf(e.mat); pl != nil {
		for _, p := range paths {
			tr.AddPlan(pl.PlanSummary(p))
		}
	}
	tr.EndPhase("plan", obs.SpanStats{})
	ifq.SetPhase("materialize")

	plan := &queryPlan{q: q, cands: cands, refs: refs, paths: paths, weights: weights, ifq: ifq}
	if sg := e.shardGroup(); sg != nil {
		if err := e.executeSharded(ctx, plan, res, tr, sg); err != nil {
			return nil, err
		}
		res.Timing.Total = time.Since(start)
		return res, nil
	}
	if ws, ok := e.pipelineWorkers(len(cands)); ok {
		err := e.executeParallel(ctx, plan, res, tr, ws)
		e.releaseWorkers(ws)
		if err != nil {
			return nil, err
		}
		res.Timing.Total = time.Since(start)
		return res, nil
	}

	// Sequential path: materialize Φ for Sr and Sc under every feature
	// meta-path, then score, then rank.
	matBefore := e.mat.Stats()
	cacheBefore, _ := CacheStatsOf(e.mat)
	candPerPath := make([][]sparse.Vector, len(q.Features))
	refPerPath := make([][]sparse.Vector, len(q.Features))
	candDone := make([]int, len(q.Features))
	var matErr error
	for m := range q.Features {
		candPerPath[m], refPerPath[m], candDone[m], matErr = e.materializeFeature(ctx, paths[m], cands, refs, &res.Timing)
		if matErr != nil {
			break
		}
	}
	if matErr != nil {
		// Graceful degradation: an expired deadline under NetOut returns the
		// ranking over the prefix of candidates materialized under EVERY
		// feature (a candidate's score needs all of its Φ vectors; the
		// feature loop is feature-major, so that prefix is the minimum of
		// the per-feature progress). Scores over the prefix are exact —
		// NetOut is separable, so a candidate's arithmetic never reads other
		// candidates. References are materialized before candidates per
		// feature; a deadline that strikes during a feature's reference side
		// leaves that feature without a scorer, so the prefix is empty and
		// the error stands, as it does for cancellation and real failures.
		prefix := 0
		if e.measure == MeasureNetOut && degradable(matErr) {
			prefix = len(cands)
			for m := range q.Features {
				if refPerPath[m] == nil {
					prefix = 0
					break
				}
				if candDone[m] < prefix {
					prefix = candDone[m]
				}
			}
		}
		if prefix == 0 {
			return nil, matErr
		}
		cands = cands[:prefix]
		for m := range candPerPath {
			candPerPath[m] = candPerPath[m][:prefix]
		}
		res.Partial = true
	}
	matDelta := e.mat.Stats().Sub(matBefore)
	cacheAfter, _ := CacheStatsOf(e.mat)
	tr.EndPhase("materialize", obs.SpanStats{
		TraversedVectors: matDelta.TraversedVectors,
		IndexedVectors:   matDelta.IndexedVectors,
		CacheHits:        cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:      cacheAfter.Misses - cacheBefore.Misses,
	})

	// Combine across paths (Section 5.1 leaves the method open and names
	// two: independent per-path scores averaged, or connectivity redefined
	// over combined vectors).
	ifq.SetPhase("score")
	scoreStart := time.Now()
	combined := make([]float64, len(cands))
	seen := make([]bool, len(cands)) // candidate characterized by ≥1 path
	switch e.combine {
	case CombineConcat:
		stride := int32(e.g.NumVertices())
		candVecs := concatVectors(candPerPath, weights, stride)
		refVecs := concatVectors(refPerPath, weights, stride)
		rs := newRefScorer(e.measure, refVecs)
		for i, phi := range candVecs {
			if s := rs.score(phi); !math.IsNaN(s) {
				combined[i] = s
				seen[i] = true
			}
		}
	default: // CombineAverage
		// The average is renormalized per candidate by the summed weight of
		// the paths that actually characterize it: a candidate with zero
		// visibility under one path still gets a proper weighted mean of the
		// paths it IS visible under, instead of a score deflated by the
		// invisible paths' weight (which would fake extra outlierness).
		seenWeight := make([]float64, len(cands))
		for m := range q.Features {
			rs := newRefScorer(e.measure, refPerPath[m])
			for i, phi := range candPerPath[m] {
				s := rs.score(phi)
				if math.IsNaN(s) {
					continue
				}
				combined[i] += weights[m] * s
				seenWeight[i] += weights[m]
				seen[i] = true
			}
		}
		for i := range combined {
			if seenWeight[i] > 0 {
				combined[i] /= seenWeight[i]
			}
		}
	}
	tr.EndPhase("score", obs.SpanStats{})
	ifq.SetPhase("rank")

	sel := newTopSelector(q.TopK)
	for i, v := range cands {
		if !seen[i] {
			res.Skipped = append(res.Skipped, v)
			continue
		}
		sel.push(Entry{
			Vertex: v,
			Name:   e.g.Name(v),
			Score:  combined[i],
		})
	}
	res.Entries = sel.ranked()
	tr.EndPhase("rank", obs.SpanStats{})
	res.Timing.Scoring += time.Since(scoreStart)
	res.Timing.Total = time.Since(start)
	return res, nil
}

// materializeFeature computes Φ_p for all reference and candidate vertices,
// charging materializer time to the timing breakdown (also on error, so a
// degraded query's cost accounting covers the work it actually did). done
// reports how many candidate vectors were completed; on error the returned
// candVecs hold exactly that prefix, and refVecs are non-nil only if the
// reference side completed — the inputs deadline degradation needs.
func (e *Engine) materializeFeature(ctx context.Context, p metapath.Path, cands, refs []hin.VertexID, tm *Timing) (candVecs, refVecs []sparse.Vector, done int, err error) {
	before := e.mat.Stats()
	defer func() {
		d := e.mat.Stats().Sub(before)
		tm.NotIndexed += d.TraversalTime
		tm.Indexed += d.IndexedTime
		tm.TraversedVectors += d.TraversedVectors
		tm.IndexedVectors += d.IndexedVectors
	}()
	refVecs = make([]sparse.Vector, len(refs))
	for j, v := range refs {
		if err = ctxErr(ctx); err != nil {
			return nil, nil, 0, err
		}
		if refVecs[j], err = e.mat.NeighborVector(p, v); err != nil {
			return nil, nil, 0, err
		}
	}
	candVecs = make([]sparse.Vector, len(cands))
	for i, v := range cands {
		if err = ctxErr(ctx); err != nil {
			return candVecs[:i], refVecs, i, err
		}
		if candVecs[i], err = e.mat.NeighborVector(p, v); err != nil {
			return candVecs[:i], refVecs, i, err
		}
	}
	return candVecs, refVecs, len(cands), nil
}

// CandidateSet parses the query and resolves only its candidate set. Used
// by SPM's initialization phase, which needs candidate membership counts
// without paying for scoring.
func (e *Engine) CandidateSet(src string) ([]hin.VertexID, error) {
	q, err := oql.Parse(src)
	if err != nil {
		return nil, err
	}
	if _, err := oql.Validate(q, e.g.Schema()); err != nil {
		return nil, err
	}
	return e.EvalSet(q.From)
}

// EvalSet resolves a set expression to a sorted slice of vertex IDs.
func (e *Engine) EvalSet(expr oql.SetExpr) ([]hin.VertexID, error) {
	return e.EvalSetContext(context.Background(), expr)
}

// EvalSetContext is EvalSet with cancellation, checked at per-vertex
// granularity while WHERE conditions are evaluated.
func (e *Engine) EvalSetContext(ctx context.Context, expr oql.SetExpr) ([]hin.VertexID, error) {
	switch x := expr.(type) {
	case *oql.SetChain:
		return e.evalChain(ctx, x)
	case *oql.SetBinary:
		left, err := e.EvalSetContext(ctx, x.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.EvalSetContext(ctx, x.Right)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case oql.SetUnion:
			return mergeUnion(left, right), nil
		case oql.SetIntersect:
			return mergeIntersect(left, right), nil
		case oql.SetExcept:
			return mergeExcept(left, right), nil
		}
		return nil, xerr.Newf(xerr.Internal, "core: unknown set operator %v", x.Op)
	}
	return nil, xerr.Newf(xerr.Internal, "core: unknown set expression %T", expr)
}

// expandSet advances a vertex set one hop on the engine's shared traverser.
// The mutex makes set evaluation safe under concurrent queries (the
// traverser's scratch is single-goroutine); expansion itself stays
// sequential per step.
func (e *Engine) expandSet(set []hin.VertexID, t hin.TypeID) []hin.VertexID {
	e.trMu.Lock()
	defer e.trMu.Unlock()
	return e.tr.ExpandSet(set, t)
}

func (e *Engine) evalChain(ctx context.Context, c *oql.SetChain) ([]hin.VertexID, error) {
	s := e.g.Schema()
	anchorType, ok := s.TypeByName(c.TypeName)
	if !ok {
		return nil, xerr.Newf(xerr.InvalidArgument, "core: unknown vertex type %q", c.TypeName)
	}
	var set []hin.VertexID
	if len(c.Names) == 0 {
		set = append(set, e.g.VerticesOfType(anchorType)...)
	} else {
		for _, name := range c.Names {
			v, ok := e.g.VertexByName(anchorType, name)
			if !ok {
				return nil, xerr.Newf(xerr.NotFound, "core: no %s named %q", c.TypeName, name)
			}
			set = append(set, v)
		}
		sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
		set = dedupSorted(set)
	}
	for _, step := range c.Steps {
		t, ok := s.TypeByName(step)
		if !ok {
			return nil, xerr.Newf(xerr.InvalidArgument, "core: unknown vertex type %q", step)
		}
		set = e.expandSet(set, t)
	}
	if c.Where != nil {
		filtered := set[:0:0]
		for _, v := range set {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			keep, err := e.evalCond(ctx, c.Where, v)
			if err != nil {
				return nil, err
			}
			if keep {
				filtered = append(filtered, v)
			}
		}
		set = filtered
	}
	return set, nil
}

func (e *Engine) evalCond(ctx context.Context, cond oql.Cond, v hin.VertexID) (bool, error) {
	switch c := cond.(type) {
	case *oql.CondBinary:
		l, err := e.evalCond(ctx, c.Left, v)
		if err != nil {
			return false, err
		}
		// No short-circuit subtlety needed: conditions are side-effect free,
		// but avoid the second evaluation when the outcome is decided.
		if c.Op == oql.CondAnd && !l {
			return false, nil
		}
		if c.Op == oql.CondOr && l {
			return true, nil
		}
		return e.evalCond(ctx, c.Right, v)
	case *oql.CondNot:
		inner, err := e.evalCond(ctx, c.Inner, v)
		return !inner, err
	case *oql.CondCount:
		n, err := e.countNeighbors(v, c.Segments)
		if err != nil {
			return false, err
		}
		return c.Op.Eval(float64(n), c.Value), nil
	}
	return false, xerr.Newf(xerr.Internal, "core: unknown condition %T", cond)
}

// countNeighbors counts the distinct meta-path neighbors of v along the
// dotted steps: COUNT(A.paper) is the number of distinct papers of an
// author ("has published at least 10 papers").
func (e *Engine) countNeighbors(v hin.VertexID, steps []string) (int, error) {
	s := e.g.Schema()
	set := []hin.VertexID{v}
	for _, step := range steps {
		t, ok := s.TypeByName(step)
		if !ok {
			return 0, xerr.Newf(xerr.InvalidArgument, "core: unknown vertex type %q", step)
		}
		set = e.expandSet(set, t)
	}
	return len(set), nil
}

func dedupSorted(xs []hin.VertexID) []hin.VertexID {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

func mergeUnion(a, b []hin.VertexID) []hin.VertexID {
	out := make([]hin.VertexID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeIntersect(a, b []hin.VertexID) []hin.VertexID {
	var out []hin.VertexID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func mergeExcept(a, b []hin.VertexID) []hin.VertexID {
	var out []hin.VertexID
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}
