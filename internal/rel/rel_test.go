package rel

import (
	"fmt"
	"strings"
	"testing"

	"netout/internal/core"
)

// bibDB builds a small relational bibliographic database: papers reference
// venues by foreign key; authorship is a junction table.
func bibDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustCreate := func(def TableDef) *Table {
		tab, err := db.CreateTable(def)
		if err != nil {
			t.Fatalf("CreateTable(%s): %v", def.Name, err)
		}
		return tab
	}
	venues := mustCreate(TableDef{
		Name: "venue", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}, {Name: "name", Type: TextCol}},
	})
	authors := mustCreate(TableDef{
		Name: "author", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}, {Name: "name", Type: TextCol}},
	})
	papers := mustCreate(TableDef{
		Name: "paper", Key: "id",
		Columns: []Column{
			{Name: "id", Type: IntCol},
			{Name: "title", Type: TextCol},
			{Name: "venue_id", Type: IntCol, References: "venue"},
		},
	})
	wrote := mustCreate(TableDef{
		Name: "wrote",
		Columns: []Column{
			{Name: "author_id", Type: IntCol, References: "author"},
			{Name: "paper_id", Type: IntCol, References: "paper"},
		},
	})

	venues.MustInsert(Row{"id": int64(1), "name": "KDD"})
	venues.MustInsert(Row{"id": int64(2), "name": "SIGGRAPH"})
	for i, name := range []string{"Ann", "Ben", "Cai", "Eve"} {
		authors.MustInsert(Row{"id": int64(i + 1), "name": name})
	}
	// Papers 1-4 at KDD by the Ann/Ben/Cai group; papers 5-7 at SIGGRAPH by Eve.
	for i := 1; i <= 4; i++ {
		papers.MustInsert(Row{"id": int64(i), "title": fmt.Sprintf("p%d", i), "venue_id": int64(1)})
	}
	for i := 5; i <= 7; i++ {
		papers.MustInsert(Row{"id": int64(i), "title": fmt.Sprintf("p%d", i), "venue_id": int64(2)})
	}
	authorship := [][2]int64{
		{1, 1}, {2, 1}, {1, 2}, {3, 2}, {2, 3}, {3, 3}, {1, 4}, {4, 4},
		{4, 5}, {4, 6}, {4, 7},
	}
	for _, ap := range authorship {
		wrote.MustInsert(Row{"author_id": ap[0], "paper_id": ap[1]})
	}
	return db
}

func TestDBBasics(t *testing.T) {
	db := bibDB(t)
	if err := db.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	names := db.TableNames()
	if len(names) != 4 || names[0] != "venue" {
		t.Fatalf("TableNames = %v", names)
	}
	papers, _ := db.Table("paper")
	if papers.NumRows() != 7 {
		t.Fatalf("papers = %d", papers.NumRows())
	}
	i, ok := papers.Lookup(int64(3))
	if !ok {
		t.Fatal("Lookup failed")
	}
	v, err := papers.ValueAt(i, "title")
	if err != nil || v.(string) != "p3" {
		t.Fatalf("ValueAt = %v, %v", v, err)
	}
	if _, err := papers.ValueAt(i, "nosuch"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := papers.ValueAt(99, "title"); err == nil {
		t.Error("row out of range should fail")
	}
	if cols := papers.sortedColumns(); len(cols) != 3 || cols[0] != "id" {
		t.Fatalf("sortedColumns = %v", cols)
	}
	if papers.Def().Name != "paper" {
		t.Fatal("Def wrong")
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDB()
	cases := []TableDef{
		{},
		{Name: "t"},
		{Name: "t", Columns: []Column{{}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: IntCol}, {Name: "a", Type: IntCol}}},
		{Name: "t", Key: "missing", Columns: []Column{{Name: "a", Type: IntCol}}},
		{Name: "t", Key: "f", Columns: []Column{{Name: "f", Type: FloatCol}}},
	}
	for i, def := range cases {
		if _, err := db.CreateTable(def); err == nil {
			t.Errorf("case %d: invalid table accepted", i)
		}
	}
	if _, err := db.CreateTable(TableDef{Name: "ok", Columns: []Column{{Name: "a", Type: IntCol}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(TableDef{Name: "ok", Columns: []Column{{Name: "a", Type: IntCol}}}); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestInsertErrors(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable(TableDef{
		Name: "t", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}, {Name: "x", Type: FloatCol}},
	})
	if err := tab.Insert(Row{"id": int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := tab.Insert(Row{"id": int64(1), "nosuch": int64(2)}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := tab.Insert(Row{"id": "one", "x": 1.5}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := tab.Insert(Row{"id": int64(1), "x": 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Row{"id": int64(1), "x": 2.5}); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := tab.Insert(Row{"id": int64(2), "x": nil}); err != nil {
		t.Errorf("nil value should be allowed: %v", err)
	}
}

func TestValidateIntegrity(t *testing.T) {
	db := NewDB()
	a, _ := db.CreateTable(TableDef{Name: "a", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}}})
	bT, _ := db.CreateTable(TableDef{Name: "b", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}, {Name: "a_id", Type: IntCol, References: "a"}}})
	a.MustInsert(Row{"id": int64(1)})
	bT.MustInsert(Row{"id": int64(1), "a_id": int64(1)})
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	bT.MustInsert(Row{"id": int64(2), "a_id": int64(99)})
	if err := db.Validate(); err == nil {
		t.Error("dangling FK should fail validation")
	}
	db2 := NewDB()
	c, _ := db2.CreateTable(TableDef{Name: "c",
		Columns: []Column{{Name: "x", Type: IntCol, References: "nowhere"}}})
	c.MustInsert(Row{"x": int64(1)})
	if err := db2.Validate(); err == nil {
		t.Error("FK to unknown table should fail validation")
	}
}

func TestToHIN(t *testing.T) {
	db := bibDB(t)
	g, err := ToHIN(db, BridgeConfig{
		EntityTables: []EntityTable{
			{Table: "author", NameColumn: "name"},
			{Table: "paper", NameColumn: "title"},
			{Table: "venue", NameColumn: "name"},
		},
		JunctionTables: []string{"wrote"},
	})
	if err != nil {
		t.Fatalf("ToHIN: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	s := g.Schema()
	authorT, ok := s.TypeByName("author")
	if !ok {
		t.Fatal("author type missing")
	}
	paperT, _ := s.TypeByName("paper")
	venueT, _ := s.TypeByName("venue")
	if g.NumVerticesOfType(authorT) != 4 || g.NumVerticesOfType(paperT) != 7 || g.NumVerticesOfType(venueT) != 2 {
		t.Fatalf("vertex counts wrong: %+v", g.Stats())
	}
	// FK edges: paper-venue; junction edges: author-paper.
	eve, _ := g.VertexByName(authorT, "Eve")
	if d := g.Degree(eve, paperT); d != 4 {
		t.Fatalf("Eve paper degree = %d, want 4", d)
	}
	// The bridged network answers outlier queries.
	eng := core.NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS
FROM author{"Ann"}.paper.author
JUDGED BY author.paper.venue
TOP 4;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries[0].Name != "Eve" {
		t.Fatalf("top outlier = %s, want Eve (%+v)", res.Entries[0].Name, res.Entries)
	}
}

func TestToHINErrors(t *testing.T) {
	db := bibDB(t)
	cases := []BridgeConfig{
		{},
		{EntityTables: []EntityTable{{Table: "nosuch"}}},
		{EntityTables: []EntityTable{{Table: "author", NameColumn: "nosuch"}}},
		{EntityTables: []EntityTable{{Table: "author"}, {Table: "author"}}},
		{EntityTables: []EntityTable{{Table: "author"}}, JunctionTables: []string{"nosuch"}},
		{EntityTables: []EntityTable{{Table: "author"}}, JunctionTables: []string{"author"}},
		// Junction referencing fewer than two entity tables.
		{EntityTables: []EntityTable{{Table: "author"}}, JunctionTables: []string{"wrote"}},
		// Entity table without a primary key.
		{EntityTables: []EntityTable{{Table: "wrote"}}},
	}
	for i, cfg := range cases {
		if _, err := ToHIN(db, cfg); err == nil {
			t.Errorf("case %d: invalid bridge accepted", i)
		}
	}
}

func TestToHINDuplicateLabels(t *testing.T) {
	db := NewDB()
	people, _ := db.CreateTable(TableDef{Name: "person", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}, {Name: "name", Type: TextCol}}})
	people.MustInsert(Row{"id": int64(1), "name": "Smith"})
	people.MustInsert(Row{"id": int64(2), "name": "Smith"})
	g, err := ToHIN(db, BridgeConfig{EntityTables: []EntityTable{{Table: "person", NameColumn: "name"}}})
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := g.Schema().TypeByName("person")
	if g.NumVerticesOfType(pt) != 2 {
		t.Fatalf("both Smiths should exist, got %d", g.NumVerticesOfType(pt))
	}
	if _, ok := g.VertexByName(pt, "Smith"); !ok {
		t.Error("first Smith lost")
	}
	if _, ok := g.VertexByName(pt, "Smith#i:2"); !ok {
		t.Error("second Smith not disambiguated")
	}
}

func TestToHINNilForeignKey(t *testing.T) {
	db := NewDB()
	venues, _ := db.CreateTable(TableDef{Name: "venue", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}}})
	papers, _ := db.CreateTable(TableDef{Name: "paper", Key: "id",
		Columns: []Column{{Name: "id", Type: IntCol}, {Name: "venue_id", Type: IntCol, References: "venue"}}})
	venues.MustInsert(Row{"id": int64(1)})
	papers.MustInsert(Row{"id": int64(1), "venue_id": int64(1)})
	papers.MustInsert(Row{"id": int64(2), "venue_id": nil}) // preprint, no venue
	g, err := ToHIN(db, BridgeConfig{EntityTables: []EntityTable{{Table: "venue"}, {Table: "paper"}}})
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := g.Schema().TypeByName("paper")
	vt, _ := g.Schema().TypeByName("venue")
	p2, _ := g.VertexByName(pt, "2")
	if d := g.Degree(p2, vt); d != 0 {
		t.Fatalf("nil FK produced an edge: degree %d", d)
	}
}

func TestColumnTypeString(t *testing.T) {
	if TextCol.String() != "text" || IntCol.String() != "int" || FloatCol.String() != "float" {
		t.Error("ColumnType.String wrong")
	}
	if !strings.Contains(ColumnType(9).String(), "9") {
		t.Error("unknown ColumnType.String wrong")
	}
}
