package rel

import (
	"fmt"

	"netout/internal/hin"
)

// BridgeConfig controls the relational→HIN conversion.
type BridgeConfig struct {
	// EntityTables lists tables that become vertex types; each entry names
	// the column whose value labels the vertex (defaults to the primary
	// key when NameColumn is ""). Foreign keys between entity tables
	// become edges directly.
	EntityTables []EntityTable
	// JunctionTables lists pure many-to-many tables: each of their rows
	// connects the entities referenced by two (or more) foreign keys. The
	// junction rows themselves do not become vertices.
	JunctionTables []string
}

// EntityTable selects a table for conversion to a vertex type.
type EntityTable struct {
	Table string
	// NameColumn labels the vertices ("" = primary key). Labels must be
	// unique within the table; the primary key is appended on collision.
	NameColumn string
}

// ToHIN converts the database into a heterogeneous information network
// under the given configuration. Vertex types are named after the entity
// tables. For every foreign key from entity table A to entity table B, an
// undirected A-B link type is allowed and instantiated per row. Junction
// tables connect every pair of entities their rows reference.
func ToHIN(db *DB, cfg BridgeConfig) (*hin.Graph, error) {
	if len(cfg.EntityTables) == 0 {
		return nil, fmt.Errorf("rel: bridge needs at least one entity table")
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}

	entity := map[string]EntityTable{}
	typeNames := make([]string, 0, len(cfg.EntityTables))
	for _, et := range cfg.EntityTables {
		t, ok := db.Table(et.Table)
		if !ok {
			return nil, fmt.Errorf("rel: entity table %q does not exist", et.Table)
		}
		if t.keyCol < 0 {
			return nil, fmt.Errorf("rel: entity table %q needs a primary key", et.Table)
		}
		if et.NameColumn != "" {
			if _, ok := t.colIdx[et.NameColumn]; !ok {
				return nil, fmt.Errorf("rel: entity table %q has no column %q", et.Table, et.NameColumn)
			}
		}
		if _, dup := entity[et.Table]; dup {
			return nil, fmt.Errorf("rel: entity table %q listed twice", et.Table)
		}
		entity[et.Table] = et
		typeNames = append(typeNames, et.Table)
	}
	schema, err := hin.NewSchema(typeNames...)
	if err != nil {
		return nil, err
	}

	// Allow links for every FK between entity tables, and for every pair
	// of entity FKs within a junction table.
	typeOf := func(table string) (hin.TypeID, bool) { return schema.TypeByName(table) }
	for _, name := range db.TableNames() {
		t := db.tables[name]
		if _, isEntity := entity[name]; isEntity {
			src, _ := typeOf(name)
			for k := range t.fkCols {
				if dst, ok := typeOf(t.fkRefs[k]); ok {
					schema.AllowLink(src, dst)
				}
			}
		}
	}
	for _, jname := range cfg.JunctionTables {
		t, ok := db.Table(jname)
		if !ok {
			return nil, fmt.Errorf("rel: junction table %q does not exist", jname)
		}
		if _, isEntity := entity[jname]; isEntity {
			return nil, fmt.Errorf("rel: table %q cannot be both entity and junction", jname)
		}
		var types []hin.TypeID
		for k := range t.fkCols {
			if tt, ok := typeOf(t.fkRefs[k]); ok {
				types = append(types, tt)
			}
		}
		if len(types) < 2 {
			return nil, fmt.Errorf("rel: junction table %q references fewer than two entity tables", jname)
		}
		for i := 0; i < len(types); i++ {
			for j := i + 1; j < len(types); j++ {
				schema.AllowLink(types[i], types[j])
			}
		}
	}

	b := hin.NewBuilder(schema)

	// Create vertices for every entity row.
	vertexOf := map[string][]hin.VertexID{} // table -> row index -> vertex
	for _, name := range typeNames {
		t := db.tables[name]
		et := entity[name]
		tt, _ := typeOf(name)
		ids := make([]hin.VertexID, len(t.rows))
		seen := map[string]bool{}
		for ri, row := range t.rows {
			label := labelFor(t, et, row)
			if seen[label] {
				label = fmt.Sprintf("%s#%s", label, keyString(row[t.keyCol]))
			}
			seen[label] = true
			v, err := b.AddVertex(tt, label)
			if err != nil {
				return nil, err
			}
			ids[ri] = v
		}
		vertexOf[name] = ids
	}

	// Edges from entity-table foreign keys.
	for _, name := range typeNames {
		t := db.tables[name]
		for k, ci := range t.fkCols {
			target, ok := db.Table(t.fkRefs[k])
			if !ok || vertexOf[t.fkRefs[k]] == nil {
				continue // FK to a non-entity table: no edge
			}
			for ri, row := range t.rows {
				if row[ci] == nil {
					continue
				}
				ti, _ := target.Lookup(row[ci])
				if err := b.AddEdge(vertexOf[name][ri], vertexOf[t.fkRefs[k]][ti]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Edges from junction tables: connect every pair of referenced
	// entities per row.
	for _, jname := range cfg.JunctionTables {
		t := db.tables[jname]
		for _, row := range t.rows {
			var ends []hin.VertexID
			for k, ci := range t.fkCols {
				target, ok := db.Table(t.fkRefs[k])
				if !ok || vertexOf[t.fkRefs[k]] == nil || row[ci] == nil {
					continue
				}
				ti, _ := target.Lookup(row[ci])
				ends = append(ends, vertexOf[t.fkRefs[k]][ti])
			}
			for i := 0; i < len(ends); i++ {
				for j := i + 1; j < len(ends); j++ {
					if err := b.AddEdge(ends[i], ends[j]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return b.Build(), nil
}

func labelFor(t *Table, et EntityTable, row []Value) string {
	col := et.NameColumn
	if col == "" {
		col = t.def.Key
	}
	v := row[t.colIdx[col]]
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	case nil:
		return fmt.Sprintf("row-%s", keyString(row[t.keyCol]))
	}
	return fmt.Sprintf("%v", v)
}
