// Package rel is a small in-memory relational store with a bridge into
// heterogeneous information networks. Section 8 of the paper observes that
// "it is also possible to apply our query-based outlier detection idea on
// traditional relational databases"; this package makes that concrete:
// entity tables become vertex types, foreign keys and junction tables
// become links, and from there every outlier query in the OQL language
// runs unchanged.
//
// The store is deliberately minimal — typed columns, primary keys, foreign
// keys, insertion and integrity checking — because its purpose is the
// schema bridge, not general SQL processing.
package rel

import (
	"fmt"
	"sort"
)

// ColumnType is the type of a column.
type ColumnType int

// Supported column types.
const (
	// TextCol holds strings.
	TextCol ColumnType = iota
	// IntCol holds int64 values.
	IntCol
	// FloatCol holds float64 values.
	FloatCol
)

func (t ColumnType) String() string {
	switch t {
	case TextCol:
		return "text"
	case IntCol:
		return "int"
	case FloatCol:
		return "float"
	}
	return fmt.Sprintf("ColumnType(%d)", int(t))
}

// Column declares one column of a table.
type Column struct {
	Name string
	Type ColumnType
	// References names a target table when this column is a foreign key
	// ("" otherwise). Foreign keys reference the target's primary key.
	References string
}

// TableDef declares a table.
type TableDef struct {
	Name string
	// Key is the primary-key column name; it must be one of Columns and of
	// type TextCol or IntCol.
	Key     string
	Columns []Column
}

// Value is a cell value: string, int64 or float64 matching the column type.
type Value any

// Row is a map from column name to value.
type Row map[string]Value

// Table is a populated table.
type Table struct {
	def    TableDef
	colIdx map[string]int
	rows   [][]Value
	byKey  map[string]int // primary key (stringified) -> row index
	keyCol int
	fkCols []int // indices of foreign-key columns
	fkRefs []string
}

// DB is an in-memory relational database.
type DB struct {
	tables map[string]*Table
	order  []string // creation order, for deterministic iteration
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable adds a table to the database.
func (db *DB) CreateTable(def TableDef) (*Table, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("rel: table needs a name")
	}
	if _, dup := db.tables[def.Name]; dup {
		return nil, fmt.Errorf("rel: table %q already exists", def.Name)
	}
	if len(def.Columns) == 0 {
		return nil, fmt.Errorf("rel: table %q needs at least one column", def.Name)
	}
	t := &Table{
		def:    def,
		colIdx: make(map[string]int, len(def.Columns)),
		byKey:  make(map[string]int),
		keyCol: -1,
	}
	for i, c := range def.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("rel: table %q has an unnamed column", def.Name)
		}
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("rel: table %q has duplicate column %q", def.Name, c.Name)
		}
		t.colIdx[c.Name] = i
		if c.References != "" {
			t.fkCols = append(t.fkCols, i)
			t.fkRefs = append(t.fkRefs, c.References)
		}
		if c.Name == def.Key {
			if c.Type == FloatCol {
				return nil, fmt.Errorf("rel: table %q: float primary keys are not supported", def.Name)
			}
			t.keyCol = i
		}
	}
	if def.Key != "" && t.keyCol < 0 {
		return nil, fmt.Errorf("rel: table %q: key column %q not declared", def.Name, def.Key)
	}
	db.tables[def.Name] = t
	db.order = append(db.order, def.Name)
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns the table names in creation order.
func (db *DB) TableNames() []string {
	return append([]string(nil), db.order...)
}

// Def returns the table's definition.
func (t *Table) Def() TableDef { return t.def }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Insert adds a row. Missing columns are rejected; values must match the
// declared column types; primary keys must be unique.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.def.Columns) {
		return fmt.Errorf("rel: %s: row has %d values, table has %d columns", t.def.Name, len(r), len(t.def.Columns))
	}
	vals := make([]Value, len(t.def.Columns))
	for name, v := range r {
		i, ok := t.colIdx[name]
		if !ok {
			return fmt.Errorf("rel: %s: unknown column %q", t.def.Name, name)
		}
		if err := checkType(v, t.def.Columns[i].Type); err != nil {
			return fmt.Errorf("rel: %s.%s: %w", t.def.Name, name, err)
		}
		vals[i] = v
	}
	if t.keyCol >= 0 {
		k := keyString(vals[t.keyCol])
		if _, dup := t.byKey[k]; dup {
			return fmt.Errorf("rel: %s: duplicate primary key %q", t.def.Name, k)
		}
		t.byKey[k] = len(t.rows)
	}
	t.rows = append(t.rows, vals)
	return nil
}

// MustInsert is Insert panicking on error, for fixtures.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// Lookup finds a row index by primary key.
func (t *Table) Lookup(key Value) (int, bool) {
	i, ok := t.byKey[keyString(key)]
	return i, ok
}

// ValueAt returns the value of column col in row i.
func (t *Table) ValueAt(i int, col string) (Value, error) {
	ci, ok := t.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("rel: %s: unknown column %q", t.def.Name, col)
	}
	if i < 0 || i >= len(t.rows) {
		return nil, fmt.Errorf("rel: %s: row %d out of range", t.def.Name, i)
	}
	return t.rows[i][ci], nil
}

// Validate checks referential integrity: every foreign-key value must
// resolve in the referenced table (or be nil for optional references).
func (db *DB) Validate() error {
	for _, name := range db.order {
		t := db.tables[name]
		for k, ci := range t.fkCols {
			target, ok := db.tables[t.fkRefs[k]]
			if !ok {
				return fmt.Errorf("rel: %s.%s references unknown table %q",
					name, t.def.Columns[ci].Name, t.fkRefs[k])
			}
			if target.keyCol < 0 {
				return fmt.Errorf("rel: %s.%s references table %q which has no primary key",
					name, t.def.Columns[ci].Name, t.fkRefs[k])
			}
			for ri, row := range t.rows {
				if row[ci] == nil {
					continue
				}
				if _, ok := target.Lookup(row[ci]); !ok {
					return fmt.Errorf("rel: %s row %d: dangling foreign key %s=%v",
						name, ri, t.def.Columns[ci].Name, row[ci])
				}
			}
		}
	}
	return nil
}

func checkType(v Value, want ColumnType) error {
	if v == nil {
		return nil // nullable everywhere except primary keys (checked at Insert)
	}
	switch want {
	case TextCol:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want text, got %T", v)
		}
	case IntCol:
		if _, ok := v.(int64); !ok {
			return fmt.Errorf("want int64, got %T", v)
		}
	case FloatCol:
		if _, ok := v.(float64); !ok {
			return fmt.Errorf("want float64, got %T", v)
		}
	}
	return nil
}

func keyString(v Value) string {
	switch x := v.(type) {
	case string:
		return "s:" + x
	case int64:
		return fmt.Sprintf("i:%d", x)
	default:
		return fmt.Sprintf("?:%v", v)
	}
}

// sortedColumns returns column names sorted, for deterministic output.
func (t *Table) sortedColumns() []string {
	out := make([]string, 0, len(t.colIdx))
	for n := range t.colIdx {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
