package oql

import (
	"strings"

	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/xerr"
)

// invalidf builds a validation failure: code INVALID_ARGUMENT in the
// serving taxonomy (the query must change, the server is healthy), message
// built with fmt semantics so %w-wrapped causes stay errors.Is/As-visible.
func invalidf(format string, args ...any) error {
	return xerr.Newf(xerr.InvalidArgument, format, args...)
}

// Validate performs semantic validation of a parsed query against a schema,
// enforcing the constraints of Definition 8:
//
//   - every type name in set chains, WHERE counts and features exists;
//   - every chain, count path and feature path is a schema-valid meta-path;
//   - the candidate and reference sets have the same element type;
//   - every feature meta-path starts at that element type;
//   - WHERE conditions reference the chain's own alias (or its element type
//     name when no alias was declared).
//
// It returns the resolved element type of the candidate set. Every error is
// a typed INVALID_ARGUMENT failure — the only class of serving error that
// maps to HTTP 400.
func Validate(q *Query, s *hin.Schema) (hin.TypeID, error) {
	if q.From == nil {
		return hin.InvalidType, invalidf("oql: query has no candidate set")
	}
	if len(q.Features) == 0 {
		return hin.InvalidType, invalidf("oql: query has no feature meta-paths")
	}
	candType, err := validateSetExpr(q.From, s)
	if err != nil {
		return hin.InvalidType, invalidf("oql: candidate set: %w", err)
	}
	if q.ComparedTo != nil {
		refType, err := validateSetExpr(q.ComparedTo, s)
		if err != nil {
			return hin.InvalidType, invalidf("oql: reference set: %w", err)
		}
		if refType != candType {
			return hin.InvalidType, invalidf(
				"oql: candidate set has element type %s but reference set has %s; they must match",
				s.TypeName(candType), s.TypeName(refType))
		}
	}
	for i, f := range q.Features {
		p, err := metapath.FromNames(s, f.Segments...)
		if err != nil {
			return hin.InvalidType, invalidf("oql: feature %d: %w", i+1, err)
		}
		if err := p.Validate(s); err != nil {
			return hin.InvalidType, invalidf("oql: feature %d (%s): %w", i+1, strings.Join(f.Segments, "."), err)
		}
		if p.Source() != candType {
			return hin.InvalidType, invalidf(
				"oql: feature %d starts at %s but the candidate set contains %s vertices",
				i+1, f.Segments[0], s.TypeName(candType))
		}
		if f.Weight <= 0 {
			return hin.InvalidType, invalidf("oql: feature %d has non-positive weight %g", i+1, f.Weight)
		}
	}
	return candType, nil
}

func validateSetExpr(e SetExpr, s *hin.Schema) (hin.TypeID, error) {
	switch e := e.(type) {
	case *SetChain:
		return validateSetChain(e, s)
	case *SetBinary:
		lt, err := validateSetExpr(e.Left, s)
		if err != nil {
			return hin.InvalidType, err
		}
		rt, err := validateSetExpr(e.Right, s)
		if err != nil {
			return hin.InvalidType, err
		}
		if lt != rt {
			return hin.InvalidType, invalidf(
				"%s combines %s vertices with %s vertices", e.Op, s.TypeName(lt), s.TypeName(rt))
		}
		return lt, nil
	default:
		return hin.InvalidType, invalidf("unknown set expression %T", e)
	}
}

func validateSetChain(c *SetChain, s *hin.Schema) (hin.TypeID, error) {
	segments := append([]string{c.TypeName}, c.Steps...)
	p, err := metapath.FromNames(s, segments...)
	if err != nil {
		return hin.InvalidType, xerr.Wrap(xerr.InvalidArgument, err)
	}
	if err := p.Validate(s); err != nil {
		return hin.InvalidType, xerr.Wrap(xerr.InvalidArgument, err)
	}
	elemType := p.Target()
	if c.Where != nil {
		name := c.Alias
		if name == "" {
			name = c.ElementType()
		}
		if err := validateCond(c.Where, name, elemType, s); err != nil {
			return hin.InvalidType, err
		}
	}
	return elemType, nil
}

func validateCond(cond Cond, alias string, elemType hin.TypeID, s *hin.Schema) error {
	switch c := cond.(type) {
	case *CondBinary:
		if err := validateCond(c.Left, alias, elemType, s); err != nil {
			return err
		}
		return validateCond(c.Right, alias, elemType, s)
	case *CondNot:
		return validateCond(c.Inner, alias, elemType, s)
	case *CondCount:
		if !strings.EqualFold(c.Alias, alias) {
			return invalidf("COUNT references %q but the set is named %q", c.Alias, alias)
		}
		segments := append([]string{s.TypeName(elemType)}, c.Segments...)
		p, err := metapath.FromNames(s, segments...)
		if err != nil {
			return xerr.Wrap(xerr.InvalidArgument, err)
		}
		return p.Validate(s)
	default:
		return invalidf("unknown condition %T", cond)
	}
}
