package oql

import (
	"strings"
	"testing"
)

// FuzzParse exercises the lexer and parser with arbitrary input. Run the
// seed corpus as a regression test with `go test`; explore with
// `go test -fuzz=FuzzParse ./internal/oql`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"FIND OUTLIERS FROM author JUDGED BY author.paper;",
		`FIND OUTLIERS FROM author{"Christos Faloutsos"}.paper.author JUDGED BY author.paper.venue TOP 10;`,
		`FIND OUTLIERS FROM venue{"SIGMOD"}.paper.author AS A WHERE COUNT(A.paper) >= 5 JUDGED BY author.paper.author, author.paper.term : 3.0 TOP 50;`,
		`FIND OUTLIERS FROM a{"x"} UNION b{"y"} INTERSECT c EXCEPT (d UNION e) JUDGED BY a.b;`,
		`find outliers in author{'quoted \' name'} judged by a.b top 1`,
		"FIND OUTLIERS FROM a -- comment\nJUDGED BY a.b; // more",
		`FIND OUTLIERS FROM a AS s WHERE NOT (COUNT(s.b) != 0 AND COUNT(s.b.c) < 1.5) OR COUNT(s.b) = 2 JUDGED BY a.b;`,
		"FIND OUTLIERS FROM a{\"\\t\\n\\\\\"} JUDGED BY a.b;",
		"\x00\xff\xfe",
		strings.Repeat("(", 100),
		"FIND OUTLIERS FROM " + strings.Repeat("a.", 200) + "b JUDGED BY a.b;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Parsed queries must round-trip through their canonical printing.
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form unparsable: %q from %q: %v", printed, src, err)
		}
		if q2.String() != printed {
			t.Fatalf("round trip unstable:\n%q\nvs\n%q", printed, q2.String())
		}
	})
}
