package oql

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is the parsed form of a FIND OUTLIERS statement (Definition 8: the
// candidate set Sc, the optional reference set Sr, the weighted feature
// meta-paths P with weights w, and the number of outliers to return).
type Query struct {
	From       SetExpr   // candidate set Sc (required)
	ComparedTo SetExpr   // reference set Sr; nil means Sr = Sc
	Features   []Feature // feature meta-paths with weights (required)
	TopK       int       // 0 means return all candidates ranked
}

// Feature is one entry of the JUDGED BY clause: a meta-path written as
// dotted type names, with an optional weight (default 1).
type Feature struct {
	Segments []string
	Weight   float64
}

// SetExpr is a candidate/reference set expression: either a SetChain or a
// SetBinary combinator over two sub-expressions.
type SetExpr interface {
	fmt.Stringer
	setExpr()
}

// SetOp is a binary set combinator.
type SetOp int

// Set combinators, in increasing precedence order (all are parsed
// left-associative at the same precedence, like SQL's UNION chain).
const (
	SetUnion SetOp = iota
	SetIntersect
	SetExcept
)

func (op SetOp) String() string {
	switch op {
	case SetUnion:
		return "UNION"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	}
	return "?"
}

// SetBinary combines two set expressions with UNION, INTERSECT or EXCEPT.
type SetBinary struct {
	Op          SetOp
	Left, Right SetExpr
}

func (*SetBinary) setExpr() {}

func (b *SetBinary) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(b.Left), b.Op, parenthesize(b.Right))
}

func parenthesize(e SetExpr) string {
	if _, ok := e.(*SetBinary); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// SetChain is an anchored neighborhood chain:
//
//	venue{"EDBT"}.paper.author AS A WHERE COUNT(A.paper) > 10
//
// TypeName anchors the chain at a vertex type; Names optionally restricts
// the anchor to specific vertices (empty means every vertex of the type);
// Steps walk the meta-path to the element type of the set; Alias names the
// set for WHERE conditions; Where optionally filters members.
type SetChain struct {
	TypeName string
	Names    []string
	Steps    []string
	Alias    string
	Where    Cond
}

func (*SetChain) setExpr() {}

func (c *SetChain) String() string {
	var sb strings.Builder
	sb.WriteString(c.TypeName)
	if len(c.Names) > 0 {
		sb.WriteByte('{')
		for i, n := range c.Names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(strconv.Quote(n))
		}
		sb.WriteByte('}')
	}
	for _, s := range c.Steps {
		sb.WriteByte('.')
		sb.WriteString(s)
	}
	if c.Alias != "" {
		sb.WriteString(" AS ")
		sb.WriteString(c.Alias)
	}
	if c.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(c.Where.String())
	}
	return sb.String()
}

// ElementType returns the vertex type name of the set's members: the last
// step, or the anchor type for step-less chains.
func (c *SetChain) ElementType() string {
	if len(c.Steps) > 0 {
		return c.Steps[len(c.Steps)-1]
	}
	return c.TypeName
}

// Cond is a WHERE condition tree.
type Cond interface {
	fmt.Stringer
	cond()
}

// CondOp joins two conditions.
type CondOp int

// Boolean connectives.
const (
	CondAnd CondOp = iota
	CondOr
)

func (op CondOp) String() string {
	if op == CondAnd {
		return "AND"
	}
	return "OR"
}

// CondBinary is an AND/OR of two conditions.
type CondBinary struct {
	Op          CondOp
	Left, Right Cond
}

func (*CondBinary) cond() {}

func (c *CondBinary) String() string {
	return fmt.Sprintf("(%s %s %s)", c.Left, c.Op, c.Right)
}

// CondNot negates a condition.
type CondNot struct{ Inner Cond }

func (*CondNot) cond() {}

func (c *CondNot) String() string { return "NOT " + c.Inner.String() }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

func (op CmpOp) String() string {
	switch op {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	}
	return "?"
}

// Eval applies the comparison to a left-hand value.
func (op CmpOp) Eval(lhs, rhs float64) bool {
	switch op {
	case CmpLT:
		return lhs < rhs
	case CmpLE:
		return lhs <= rhs
	case CmpGT:
		return lhs > rhs
	case CmpGE:
		return lhs >= rhs
	case CmpEQ:
		return lhs == rhs
	case CmpNE:
		return lhs != rhs
	}
	return false
}

// CondCount is the comparison COUNT(A.paper.term) >= 5: for each member of
// the set aliased A, count the distinct meta-path neighbors reached by the
// dotted steps and compare against Value.
type CondCount struct {
	Alias    string   // the alias the count is anchored at
	Segments []string // meta-path steps from the element type
	Op       CmpOp
	Value    float64
}

func (*CondCount) cond() {}

func (c *CondCount) String() string {
	return fmt.Sprintf("COUNT(%s.%s) %s %s",
		c.Alias, strings.Join(c.Segments, "."), c.Op,
		strconv.FormatFloat(c.Value, 'g', -1, 64))
}

// String renders the query in canonical form; Parse(q.String()) reproduces
// an equivalent Query.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("FIND OUTLIERS\nFROM ")
	sb.WriteString(q.From.String())
	if q.ComparedTo != nil {
		sb.WriteString("\nCOMPARED TO ")
		sb.WriteString(q.ComparedTo.String())
	}
	sb.WriteString("\nJUDGED BY ")
	for i, f := range q.Features {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strings.Join(f.Segments, "."))
		if f.Weight != 1 {
			sb.WriteString(" : ")
			sb.WriteString(strconv.FormatFloat(f.Weight, 'g', -1, 64))
		}
	}
	if q.TopK > 0 {
		fmt.Fprintf(&sb, "\nTOP %d", q.TopK)
	}
	sb.WriteString(";")
	return sb.String()
}
