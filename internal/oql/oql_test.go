package oql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"netout/internal/hin"
)

func bibSchema(t *testing.T) *hin.Schema {
	t.Helper()
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	return s
}

// The three example queries from Section 4.3 of the paper.
const (
	example1 = `FIND OUTLIERS
FROM author{"Christos Faloutsos"}.paper.author
JUDGED BY author.paper.venue
TOP 10;`

	example2 = `FIND OUTLIERS
FROM
  author{"Christos Faloutsos"}.paper.author
COMPARED TO
  venue{"KDD"}.paper.author
JUDGED BY
  author.paper.venue,
  author.paper.author
TOP 10;`

	example3 = `FIND OUTLIERS
FROM venue{"SIGMOD"}.paper.author AS A
  WHERE COUNT(A.paper) >= 5
JUDGED BY
  author.paper.author,
  author.paper.term : 3.0
TOP 50;`
)

func TestParseExample1(t *testing.T) {
	q, err := Parse(example1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	chain, ok := q.From.(*SetChain)
	if !ok {
		t.Fatalf("From = %T", q.From)
	}
	if chain.TypeName != "author" || len(chain.Names) != 1 || chain.Names[0] != "Christos Faloutsos" {
		t.Fatalf("chain anchor = %+v", chain)
	}
	if len(chain.Steps) != 2 || chain.Steps[0] != "paper" || chain.Steps[1] != "author" {
		t.Fatalf("chain steps = %v", chain.Steps)
	}
	if q.ComparedTo != nil {
		t.Fatal("no COMPARED TO expected")
	}
	if len(q.Features) != 1 || strings.Join(q.Features[0].Segments, ".") != "author.paper.venue" {
		t.Fatalf("features = %+v", q.Features)
	}
	if q.Features[0].Weight != 1 {
		t.Fatalf("default weight = %g", q.Features[0].Weight)
	}
	if q.TopK != 10 {
		t.Fatalf("TopK = %d", q.TopK)
	}
}

func TestParseExample2(t *testing.T) {
	q, err := Parse(example2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.ComparedTo == nil {
		t.Fatal("COMPARED TO missing")
	}
	ref, ok := q.ComparedTo.(*SetChain)
	if !ok || ref.TypeName != "venue" || ref.Names[0] != "KDD" {
		t.Fatalf("reference = %+v", q.ComparedTo)
	}
	if len(q.Features) != 2 {
		t.Fatalf("features = %+v", q.Features)
	}
}

func TestParseExample3(t *testing.T) {
	q, err := Parse(example3)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	chain := q.From.(*SetChain)
	if chain.Alias != "A" {
		t.Fatalf("alias = %q", chain.Alias)
	}
	cnt, ok := chain.Where.(*CondCount)
	if !ok {
		t.Fatalf("Where = %T", chain.Where)
	}
	if cnt.Alias != "A" || len(cnt.Segments) != 1 || cnt.Segments[0] != "paper" ||
		cnt.Op != CmpGE || cnt.Value != 5 {
		t.Fatalf("count = %+v", cnt)
	}
	if q.Features[1].Weight != 3 {
		t.Fatalf("weight = %g", q.Features[1].Weight)
	}
	if q.TopK != 50 {
		t.Fatalf("TopK = %d", q.TopK)
	}
}

// Table 4's query templates use IN instead of FROM.
func TestParseInKeyword(t *testing.T) {
	q, err := Parse(`FIND OUTLIERS IN author{"X"}.paper.venue JUDGED BY venue.paper.term TOP 10;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.From.(*SetChain).TypeName != "author" {
		t.Fatal("IN clause not parsed")
	}
}

func TestParseSetOperators(t *testing.T) {
	q, err := Parse(`FIND OUTLIERS FROM
  venue{"EDBT"}.paper.author UNION venue{"ICDE"}.paper.author INTERSECT venue{"KDD"}.paper.author
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Left-associative: (EDBT UNION ICDE) INTERSECT KDD.
	top, ok := q.From.(*SetBinary)
	if !ok || top.Op != SetIntersect {
		t.Fatalf("top = %+v", q.From)
	}
	inner, ok := top.Left.(*SetBinary)
	if !ok || inner.Op != SetUnion {
		t.Fatalf("inner = %+v", top.Left)
	}
	if q.TopK != 0 {
		t.Fatalf("TopK default = %d", q.TopK)
	}
}

func TestParseParenthesizedSets(t *testing.T) {
	q, err := Parse(`FIND OUTLIERS FROM
  venue{"EDBT"}.paper.author EXCEPT (venue{"ICDE"}.paper.author UNION venue{"KDD"}.paper.author)
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	top := q.From.(*SetBinary)
	if top.Op != SetExcept {
		t.Fatalf("op = %v", top.Op)
	}
	if _, ok := top.Right.(*SetBinary); !ok {
		t.Fatalf("right = %T", top.Right)
	}
}

func TestParseMultiNameAnchorAndBareType(t *testing.T) {
	q, err := Parse(`FIND OUTLIERS FROM author{"A", "B"}.paper.author COMPARED TO author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.From.(*SetChain).Names; len(got) != 2 || got[1] != "B" {
		t.Fatalf("names = %v", got)
	}
	ref := q.ComparedTo.(*SetChain)
	if ref.TypeName != "author" || len(ref.Names) != 0 || len(ref.Steps) != 0 {
		t.Fatalf("bare-type reference = %+v", ref)
	}
}

func TestParseComplexWhere(t *testing.T) {
	q, err := Parse(`FIND OUTLIERS FROM venue{"KDD"}.paper.author AS A
WHERE COUNT(A.paper) >= 5 AND (COUNT(A.paper.venue) < 3 OR NOT COUNT(A.paper.term) = 0)
JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	w := q.From.(*SetChain).Where
	and, ok := w.(*CondBinary)
	if !ok || and.Op != CondAnd {
		t.Fatalf("top cond = %+v", w)
	}
	or, ok := and.Right.(*CondBinary)
	if !ok || or.Op != CondOr {
		t.Fatalf("right cond = %+v", and.Right)
	}
	if _, ok := or.Right.(*CondNot); !ok {
		t.Fatalf("NOT missing: %+v", or.Right)
	}
}

func TestParseComments(t *testing.T) {
	src := `FIND OUTLIERS FROM author{"X"}.paper.author // candidate set
-- reference set omitted
JUDGED BY author.paper.venue // feature
TOP 3;`
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.TopK != 3 {
		t.Fatal("comments broke parsing")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`find outliers from author{"X"}.paper.author judged by author.paper.venue top 7`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.TopK != 7 {
		t.Fatal("lowercase keywords not accepted")
	}
}

func TestParseSingleQuotedStringsAndEscapes(t *testing.T) {
	q, err := Parse(`FIND OUTLIERS FROM author{'He said \"hi\"'}.paper.author JUDGED BY author.paper.venue;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := q.From.(*SetChain).Names[0]
	if got != `He said "hi"` {
		t.Fatalf("name = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"missing outliers", "FIND author JUDGED BY a.b;"},
		{"missing from", "FIND OUTLIERS JUDGED BY a.b;"},
		{"missing judged", `FIND OUTLIERS FROM author{"X"}.paper.author TOP 5;`},
		{"single segment feature", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author;`},
		{"zero top", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.paper.venue TOP 0;`},
		{"negative weight", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.paper.venue : 0;`},
		{"fractional top", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.paper.venue TOP 2.5;`},
		{"unterminated string", `FIND OUTLIERS FROM author{"X.paper.author JUDGED BY author.paper.venue;`},
		{"unterminated brace", `FIND OUTLIERS FROM author{"X".paper.author JUDGED BY author.paper.venue;`},
		{"bad escape", `FIND OUTLIERS FROM author{"\q"}.paper.author JUDGED BY author.paper.venue;`},
		{"count without path", `FIND OUTLIERS FROM author AS A WHERE COUNT(A) > 1 JUDGED BY author.paper.venue;`},
		{"count without cmp", `FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) JUDGED BY author.paper.venue;`},
		{"trailing garbage", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.paper.venue; extra`},
		{"stray bang", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.paper.venue ! ;`},
		{"dot without step", `FIND OUTLIERS FROM author{"X"}. JUDGED BY author.paper.venue;`},
		{"keyword as chain", `FIND OUTLIERS FROM UNION JUDGED BY author.paper.venue;`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) should fail", tc.src)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("FIND OUTLIERS\nFROM ???")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Pos.Line)
	}
	if !strings.Contains(se.Error(), "oql:") {
		t.Fatalf("Error() = %q", se.Error())
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{example1, example2, example3} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", q.String(), q2.String())
		}
	}
}

// randomQuery builds a random valid query AST for round-trip testing.
func randomQuery(r *rand.Rand) *Query {
	types := []string{"author", "paper", "venue", "term"}
	randChain := func() *SetChain {
		c := &SetChain{TypeName: types[r.Intn(len(types))]}
		for i := 0; i < r.Intn(3); i++ {
			c.Names = append(c.Names, string(rune('A'+r.Intn(26))))
		}
		for i := 0; i < r.Intn(3); i++ {
			c.Steps = append(c.Steps, types[r.Intn(len(types))])
		}
		if r.Intn(2) == 0 {
			c.Alias = "S"
			c.Where = &CondCount{
				Alias:    "S",
				Segments: []string{types[r.Intn(len(types))]},
				Op:       CmpOp(r.Intn(6)),
				Value:    float64(r.Intn(20)),
			}
		}
		return c
	}
	var randSet func(depth int) SetExpr
	randSet = func(depth int) SetExpr {
		if depth == 0 || r.Intn(2) == 0 {
			return randChain()
		}
		return &SetBinary{
			Op:    SetOp(r.Intn(3)),
			Left:  randSet(depth - 1),
			Right: randSet(depth - 1),
		}
	}
	q := &Query{From: randSet(2)}
	if r.Intn(2) == 0 {
		q.ComparedTo = randSet(1)
	}
	for i := 0; i <= r.Intn(3); i++ {
		f := Feature{Segments: []string{types[r.Intn(len(types))], types[r.Intn(len(types))]}, Weight: 1}
		if r.Intn(2) == 0 {
			f.Weight = float64(1+r.Intn(8)) / 2
		}
		q.Features = append(q.Features, f)
	}
	if r.Intn(2) == 0 {
		q.TopK = 1 + r.Intn(100)
	}
	return q
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		src := q.String()
		q2, err := Parse(src)
		if err != nil {
			t.Logf("Parse(%q): %v", src, err)
			return false
		}
		return q2.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	s := bibSchema(t)
	good := []string{
		example1, example2, example3,
		`FIND OUTLIERS IN author{"X"}.paper.venue JUDGED BY venue.paper.term TOP 10;`,
		`FIND OUTLIERS IN author{"X"}.paper.term JUDGED BY term.paper.venue TOP 10;`,
		`FIND OUTLIERS FROM venue{"A"}.paper.author UNION venue{"B"}.paper.author JUDGED BY author.paper.venue;`,
		// WHERE without alias uses the element type name.
		`FIND OUTLIERS FROM venue{"A"}.paper.author WHERE COUNT(author.paper) > 2 JUDGED BY author.paper.venue;`,
	}
	for _, src := range good {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Validate(q, s); err != nil {
			t.Errorf("Validate(%q): %v", src, err)
		}
	}
	author, _ := s.TypeByName("author")
	q, _ := Parse(example1)
	if et, _ := Validate(q, s); et != author {
		t.Errorf("element type = %v, want author", et)
	}

	bad := []struct{ name, src string }{
		{"unknown anchor type", `FIND OUTLIERS FROM person{"X"}.paper.author JUDGED BY author.paper.venue;`},
		{"unknown step type", `FIND OUTLIERS FROM author{"X"}.article.author JUDGED BY author.paper.venue;`},
		{"schema-invalid chain", `FIND OUTLIERS FROM author{"X"}.venue JUDGED BY venue.paper.author;`},
		{"feature wrong source", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY venue.paper.author;`},
		{"feature invalid hop", `FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.venue.paper;`},
		{"ref type mismatch", `FIND OUTLIERS FROM author{"X"}.paper.author COMPARED TO author{"Y"}.paper JUDGED BY author.paper.venue;`},
		{"union type mismatch", `FIND OUTLIERS FROM author{"X"}.paper.author UNION author{"Y"}.paper JUDGED BY author.paper.venue;`},
		{"wrong where alias", `FIND OUTLIERS FROM venue{"A"}.paper.author AS A WHERE COUNT(B.paper) > 2 JUDGED BY author.paper.venue;`},
		{"invalid count path", `FIND OUTLIERS FROM venue{"A"}.paper.author AS A WHERE COUNT(A.venue) > 2 JUDGED BY author.paper.venue;`},
		{"unknown count type", `FIND OUTLIERS FROM venue{"A"}.paper.author AS A WHERE COUNT(A.article) > 2 JUDGED BY author.paper.venue;`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if _, err := Validate(q, s); err == nil {
				t.Errorf("Validate(%q) should fail", tc.src)
			}
		})
	}
}

func TestValidateStructuralErrors(t *testing.T) {
	s := bibSchema(t)
	if _, err := Validate(&Query{}, s); err == nil {
		t.Error("query without From should fail")
	}
	if _, err := Validate(&Query{From: &SetChain{TypeName: "author"}}, s); err == nil {
		t.Error("query without features should fail")
	}
	q := &Query{
		From:     &SetChain{TypeName: "author"},
		Features: []Feature{{Segments: []string{"author", "paper"}, Weight: -1}},
	}
	if _, err := Validate(q, s); err == nil {
		t.Error("negative weight should fail validation")
	}
}

func TestParseFullEscapeRepertoire(t *testing.T) {
	// The printer uses strconv.Quote, so the lexer must accept every escape
	// it can emit (a fuzz-found regression: \x1d).
	cases := map[string]string{
		`"\a\b\f\n\r\t\v"`: "\a\b\f\n\r\t\v",
		`"\x1d"`:           "\x1d",
		`"é"`:              "é",
		`"\U0001F600"`:     "😀",
		`"mix\x41B"`:       "mixAB",
	}
	for lit, want := range cases {
		src := `FIND OUTLIERS FROM author{` + lit + `}.paper.author JUDGED BY author.paper.venue;`
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%s): %v", lit, err)
			continue
		}
		got := q.From.(*SetChain).Names[0]
		if got != want {
			t.Errorf("Parse(%s) = %q, want %q", lit, got, want)
		}
	}
	bad := []string{`"\x1"`, `"\xzz"`, `"\u12"`, `"\U00110000"`, `"\x`}
	for _, lit := range bad {
		src := `FIND OUTLIERS FROM author{` + lit + `}.paper.author JUDGED BY author.paper.venue;`
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%s) should fail", lit)
		}
	}
}

// Any name, however hostile, survives a print/parse round trip.
func TestQuickNameQuotingRoundTrip(t *testing.T) {
	f := func(name string) bool {
		if !utf8.ValidString(name) {
			return true // strconv.Quote replaces invalid UTF-8; skip
		}
		q := &Query{
			From:     &SetChain{TypeName: "author", Names: []string{name}},
			Features: []Feature{{Segments: []string{"author", "paper"}, Weight: 1}},
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Logf("Parse(%q): %v", q.String(), err)
			return false
		}
		return q2.From.(*SetChain).Names[0] == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringersAndEval(t *testing.T) {
	// Token kind descriptions appear in error messages; keep them readable.
	for _, k := range []tokenKind{tokEOF, tokIdent, tokString, tokNumber, tokDot,
		tokComma, tokColon, tokSemi, tokLParen, tokRParen, tokLBrace, tokRBrace,
		tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE} {
		if k.String() == "" || k.String() == "unknown token" {
			t.Errorf("kind %d has no description", k)
		}
	}
	if tokenKind(99).String() != "unknown token" {
		t.Error("unknown kind description wrong")
	}
	// Comparison evaluation, all six operators.
	cases := []struct {
		op   CmpOp
		l, r float64
		want bool
	}{
		{CmpLT, 1, 2, true}, {CmpLT, 2, 2, false},
		{CmpLE, 2, 2, true}, {CmpLE, 3, 2, false},
		{CmpGT, 3, 2, true}, {CmpGT, 2, 2, false},
		{CmpGE, 2, 2, true}, {CmpGE, 1, 2, false},
		{CmpEQ, 2, 2, true}, {CmpEQ, 1, 2, false},
		{CmpNE, 1, 2, true}, {CmpNE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.l, c.r); got != c.want {
			t.Errorf("%v.Eval(%g,%g) = %v", c.op, c.l, c.r, got)
		}
	}
	if CmpOp(99).Eval(1, 2) || CmpOp(99).String() != "?" {
		t.Error("unknown CmpOp misbehaves")
	}
	// Set/cond stringers used in error reporting.
	if SetOp(99).String() != "?" || CondOp(99).String() == "" {
		t.Error("operator stringers misbehave")
	}
	// ElementType for step-less chains.
	c := &SetChain{TypeName: "author"}
	if c.ElementType() != "author" {
		t.Error("step-less ElementType wrong")
	}
	c.Steps = []string{"paper", "venue"}
	if c.ElementType() != "venue" {
		t.Error("stepped ElementType wrong")
	}
	n := &CondNot{Inner: &CondCount{Alias: "A", Segments: []string{"paper"}, Op: CmpGT, Value: 1}}
	if !strings.Contains(n.String(), "NOT") {
		t.Error("CondNot.String wrong")
	}
}
