package oql

import (
	"fmt"
	"math"
	"strings"
)

// Parse parses a single FIND OUTLIERS statement.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSemi {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after end of query", p.describe())
	}
	return q, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) describe() string {
	if p.tok.kind == tokIdent {
		return fmt.Sprintf("identifier %q", p.tok.text)
	}
	return p.tok.kind.String()
}

// isKeyword reports whether the current token is the given case-insensitive
// keyword.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, found %s", strings.ToUpper(kw), p.describe())
	}
	return p.advance()
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %s, found %s", kind, p.describe())
	}
	t := p.tok
	return t, p.advance()
}

// reserved keywords cannot start a set chain or be used as steps outside
// their clause context.
func (p *parser) atClauseBoundary() bool {
	for _, kw := range []string{"COMPARED", "JUDGED", "TOP", "UNION", "INTERSECT", "EXCEPT", "AS", "WHERE"} {
		if p.isKeyword(kw) {
			return true
		}
	}
	return p.tok.kind == tokSemi || p.tok.kind == tokEOF || p.tok.kind == tokRParen
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("FIND"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OUTLIERS"); err != nil {
		return nil, err
	}
	// Both FROM and IN introduce the candidate set (the paper uses FROM in
	// Section 4.2 and IN in the Table 4 query templates).
	if !p.isKeyword("FROM") && !p.isKeyword("IN") {
		return nil, p.errorf("expected FROM or IN, found %s", p.describe())
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{}
	var err error
	if q.From, err = p.parseSetExpr(); err != nil {
		return nil, err
	}
	if p.isKeyword("COMPARED") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		if q.ComparedTo, err = p.parseSetExpr(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("JUDGED"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	if q.Features, err = p.parseFeatures(); err != nil {
		return nil, err
	}
	if p.isKeyword("TOP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		k := int(t.num)
		if float64(k) != t.num || k <= 0 {
			return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("TOP expects a positive integer, got %s", t.text)}
		}
		q.TopK = k
	}
	return q, nil
}

func (p *parser) parseSetExpr() (SetExpr, error) {
	left, err := p.parseSetTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op SetOp
		switch {
		case p.isKeyword("UNION"):
			op = SetUnion
		case p.isKeyword("INTERSECT"):
			op = SetIntersect
		case p.isKeyword("EXCEPT"):
			op = SetExcept
		default:
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseSetTerm()
		if err != nil {
			return nil, err
		}
		left = &SetBinary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseSetTerm() (SetExpr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseSetChain()
}

func (p *parser) parseSetChain() (SetExpr, error) {
	if p.tok.kind != tokIdent || p.atClauseBoundary() {
		return nil, p.errorf("expected a vertex type name, found %s", p.describe())
	}
	c := &SetChain{TypeName: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokLBrace {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			c.Names = append(c.Names, t.text)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
	}
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		c.Steps = append(c.Steps, t.text)
	}
	if p.isKeyword("AS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		c.Alias = t.text
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseCondOr()
		if err != nil {
			return nil, err
		}
		c.Where = w
	}
	return c, nil
}

func (p *parser) parseCondOr() (Cond, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = &CondBinary{Op: CondOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseCondAnd() (Cond, error) {
	left, err := p.parseCondUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCondUnary()
		if err != nil {
			return nil, err
		}
		left = &CondBinary{Op: CondAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseCondUnary() (Cond, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseCondUnary()
		if err != nil {
			return nil, err
		}
		return &CondNot{Inner: inner}, nil
	}
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseCondOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseCondCount()
}

func (p *parser) parseCondCount() (Cond, error) {
	if err := p.expectKeyword("COUNT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	alias, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	c := &CondCount{Alias: alias.text}
	for p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		c.Segments = append(c.Segments, t.text)
	}
	if len(c.Segments) == 0 {
		return nil, p.errorf("COUNT needs a meta-path, e.g. COUNT(A.paper)")
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokLT:
		c.Op = CmpLT
	case tokLE:
		c.Op = CmpLE
	case tokGT:
		c.Op = CmpGT
	case tokGE:
		c.Op = CmpGE
	case tokEQ:
		c.Op = CmpEQ
	case tokNE:
		c.Op = CmpNE
	default:
		return nil, p.errorf("expected a comparison operator, found %s", p.describe())
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	c.Value = t.num
	return c, nil
}

func (p *parser) parseFeatures() ([]Feature, error) {
	var out []Feature
	for {
		f := Feature{Weight: 1}
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		f.Segments = append(f.Segments, t.text)
		for p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			f.Segments = append(f.Segments, t.text)
		}
		if len(f.Segments) < 2 {
			return nil, p.errorf("a feature meta-path needs at least two types, got %q", f.Segments[0])
		}
		if p.tok.kind == tokColon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			if t.num <= 0 || math.IsInf(t.num, 0) || math.IsNaN(t.num) {
				return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("feature weight must be positive and finite, got %s", t.text)}
			}
			f.Weight = t.num
		}
		out = append(out, f)
		if p.tok.kind != tokComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}
