// Package oql implements the outlier query language of Section 4.2:
//
//	FIND OUTLIERS FROM ...   // candidate set
//	COMPARED TO ...          // reference set (optional)
//	JUDGED BY ...            // weighted feature meta-paths
//	TOP ...;                 // number of outliers to return (optional)
//
// Set expressions support anchored neighborhood chains
// (author{"Christos Faloutsos"}.paper.author), AS aliases, WHERE filters
// over meta-path COUNTs, and UNION / INTERSECT / EXCEPT combinators.
// Keywords are case-insensitive; identifiers are case-sensitive.
package oql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"netout/internal/xerr"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokDot
	tokComma
	tokColon
	tokSemi
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokDot:
		return "'.'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'!='"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string // identifier text, unquoted string value, or number literal
	num  float64
	pos  Pos
}

// Pos is a 1-based line/column source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError reports a lexical or parse error with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("oql: %s: %s", e.Pos, e.Msg) }

// ErrorCode classifies a syntax error for the serving layer's taxonomy
// (xerr.Coder): a query that does not parse is the client's request to fix,
// never a server fault.
func (e *SyntaxError) ErrorCode() xerr.Code { return xerr.InvalidArgument }

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	b := l.src[l.off]
	l.off++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
		case b == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case b == '-' && l.off+1 < len(l.src) && l.src[l.off+1] == '-':
			// SQL-style comment.
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	b := l.peekByte()
	switch b {
	case '.':
		l.advance()
		return token{kind: tokDot, pos: pos}, nil
	case ',':
		l.advance()
		return token{kind: tokComma, pos: pos}, nil
	case ':':
		l.advance()
		return token{kind: tokColon, pos: pos}, nil
	case ';':
		l.advance()
		return token{kind: tokSemi, pos: pos}, nil
	case '(':
		l.advance()
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		l.advance()
		return token{kind: tokRParen, pos: pos}, nil
	case '{':
		l.advance()
		return token{kind: tokLBrace, pos: pos}, nil
	case '}':
		l.advance()
		return token{kind: tokRBrace, pos: pos}, nil
	case '<':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokLE, pos: pos}, nil
		}
		if l.peekByte() == '>' {
			l.advance()
			return token{kind: tokNE, pos: pos}, nil
		}
		return token{kind: tokLT, pos: pos}, nil
	case '>':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokGE, pos: pos}, nil
		}
		return token{kind: tokGT, pos: pos}, nil
	case '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
		}
		return token{kind: tokEQ, pos: pos}, nil
	case '!':
		l.advance()
		if l.peekByte() != '=' {
			return token{}, l.errorf(pos, "unexpected '!'")
		}
		l.advance()
		return token{kind: tokNE, pos: pos}, nil
	case '"', '\'':
		return l.lexString(pos)
	}
	if b >= '0' && b <= '9' {
		return l.lexNumber(pos)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	if isIdentStart(r) {
		return l.lexIdent(pos)
	}
	return token{}, l.errorf(pos, "unexpected character %q", r)
}

func (l *lexer) lexString(pos Pos) (token, error) {
	quote := l.advance()
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return token{}, l.errorf(pos, "unterminated string")
		}
		b := l.advance()
		switch b {
		case quote:
			return token{kind: tokString, text: sb.String(), pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return token{}, l.errorf(pos, "unterminated escape in string")
			}
			e := l.advance()
			switch e {
			case 'a':
				sb.WriteByte('\a')
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case 'v':
				sb.WriteByte('\v')
			case '\\', '"', '\'':
				sb.WriteByte(e)
			case 'x':
				v, err := l.hexDigits(pos, 2)
				if err != nil {
					return token{}, err
				}
				sb.WriteByte(byte(v))
			case 'u':
				v, err := l.hexDigits(pos, 4)
				if err != nil {
					return token{}, err
				}
				sb.WriteRune(rune(v))
			case 'U':
				v, err := l.hexDigits(pos, 8)
				if err != nil {
					return token{}, err
				}
				if v > 0x10FFFF {
					return token{}, l.errorf(pos, "escape \\U%08x outside unicode range", v)
				}
				sb.WriteRune(rune(v))
			default:
				return token{}, l.errorf(pos, "unknown escape \\%c", e)
			}
		default:
			sb.WriteByte(b)
		}
	}
}

// hexDigits consumes exactly n hex digits of an escape sequence.
func (l *lexer) hexDigits(pos Pos, n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		if l.off >= len(l.src) {
			return 0, l.errorf(pos, "unterminated hex escape in string")
		}
		b := l.advance()
		switch {
		case b >= '0' && b <= '9':
			v = v<<4 | uint32(b-'0')
		case b >= 'a' && b <= 'f':
			v = v<<4 | uint32(b-'a'+10)
		case b >= 'A' && b <= 'F':
			v = v<<4 | uint32(b-'A'+10)
		default:
			return 0, l.errorf(pos, "bad hex digit %q in escape", b)
		}
	}
	return v, nil
}

func (l *lexer) lexNumber(pos Pos) (token, error) {
	start := l.off
	for l.off < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
		l.advance()
	}
	if l.off < len(l.src) && l.peekByte() == '.' &&
		l.off+1 < len(l.src) && l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9' {
		l.advance()
		for l.off < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	var num float64
	if _, err := fmt.Sscanf(text, "%g", &num); err != nil {
		return token{}, l.errorf(pos, "bad number %q", text)
	}
	return token{kind: tokNumber, text: text, num: num, pos: pos}, nil
}

func (l *lexer) lexIdent(pos Pos) (token, error) {
	start := l.off
	for l.off < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentPart(r) {
			break
		}
		for i := 0; i < size; i++ {
			l.advance()
		}
	}
	return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
}
