package metapath

import (
	"netout/internal/hin"
	"netout/internal/sparse"
)

// Kernel selects the frontier-expansion algorithm a Traverser uses for one
// hop of Φ_P materialization. The default, KernelAuto, picks per hop from
// the frontier's NNZ and the target type's vertex-ID span; forcing a kernel
// is for benchmarks and equivalence tests. All kernels produce bit-equal
// sorted vectors (property- and fuzz-tested).
type Kernel int

const (
	// KernelAuto picks merge, dense or map per hop (the default).
	KernelAuto Kernel = iota
	// KernelMap scatters into the map-backed Accumulator: unbounded
	// coordinate space, one hash per scattered edge. The fallback.
	KernelMap
	// KernelDense scatters into a dense scratch sized to the target type's
	// ID span with a touched list: hash-free adds, sort only the output.
	KernelDense
	// KernelMerge k-way-merges the already-sorted CSR adjacency rows
	// directly into a sorted vector, touching no scratch at all. Only
	// sensible for tiny frontiers (the scan over row heads is linear in k).
	KernelMerge
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelMap:
		return "map"
	case KernelDense:
		return "dense"
	case KernelMerge:
		return "merge"
	}
	return "Kernel(?)"
}

// Crossover constants for KernelAuto, calibrated with BenchmarkExpand (see
// DESIGN.md "Expansion kernels"): the merge path wins while the head scan
// over frontier rows stays trivially small; the dense scratch wins over the
// map at every frontier size but is capped so a traverser never pins more
// than ~32 MiB of scratch per hop on huge vertex types.
const (
	// MergeMaxFrontier is the largest frontier NNZ the merge path accepts.
	MergeMaxFrontier = 4
	// MaxDenseSpan is the largest target-type ID span (entries, 8 B each)
	// the dense kernel will allocate scratch for.
	MaxDenseSpan = 4 << 20
)

// KernelCounts reports how many hops each kernel expanded, for heuristic
// observability and tests.
type KernelCounts struct {
	Map, Dense, Merge uint64
}

// SetKernel forces the expansion kernel (KernelAuto restores the adaptive
// heuristic). For benchmarks and equivalence tests.
func (tr *Traverser) SetKernel(k Kernel) { tr.kernel = k }

// KernelCounts returns how many hops each kernel has expanded so far.
func (tr *Traverser) KernelCounts() KernelCounts { return tr.counts }

// pick chooses the kernel for one hop: merge for tiny frontiers, dense when
// the target type's ID span affords a scratch array, map otherwise.
func (tr *Traverser) pick(nnz int, next hin.TypeID) Kernel {
	if tr.kernel != KernelAuto {
		return tr.kernel
	}
	if nnz <= MergeMaxFrontier {
		return KernelMerge
	}
	if lo, hi, ok := tr.g.TypeIDSpan(next); ok && int64(hi)-int64(lo) < MaxDenseSpan {
		return KernelDense
	}
	return KernelMap
}

// expandMap is the fallback kernel: scatter through the map accumulator.
func (tr *Traverser) expandMap(frontier sparse.Vector, next hin.TypeID) sparse.Vector {
	tr.counts.Map++
	for i := range frontier.Idx {
		w := frontier.Val[i]
		nbrs, mults := tr.g.Neighbors(hin.VertexID(frontier.Idx[i]), next)
		for j, u := range nbrs {
			tr.acc.Add(int32(u), w*float64(mults[j]))
		}
	}
	return tr.acc.Take()
}

// expandDense scatters into the dense scratch, offset by the target type's
// span base so the scratch is sized to one type, not the whole graph.
func (tr *Traverser) expandDense(frontier sparse.Vector, next hin.TypeID) sparse.Vector {
	lo, hi, ok := tr.g.TypeIDSpan(next)
	if !ok {
		return sparse.Vector{} // no vertices of the target type at all
	}
	tr.counts.Dense++
	if tr.dense == nil {
		tr.dense = sparse.NewDenseAccumulator(0)
	}
	tr.dense.Grow(int(hi) - int(lo) + 1)
	base := int32(lo)
	for i := range frontier.Idx {
		w := frontier.Val[i]
		nbrs, mults := tr.g.Neighbors(hin.VertexID(frontier.Idx[i]), next)
		for j, u := range nbrs {
			tr.dense.Add(int32(u)-base, w*float64(mults[j]))
		}
	}
	out := tr.dense.Take()
	for i := range out.Idx {
		out.Idx[i] += base
	}
	return out
}

// mergeCursor is one frontier row being consumed by the merge path.
type mergeCursor struct {
	nbrs  []hin.VertexID
	mults []int32
	w     float64
}

// expandMerge k-way-merges the sorted CSR rows of the frontier vertices
// straight into a sorted output vector: no scratch, no post-sort. The head
// scan is linear in the number of rows, so KernelAuto only routes frontiers
// with NNZ ≤ MergeMaxFrontier here.
func (tr *Traverser) expandMerge(frontier sparse.Vector, next hin.TypeID) sparse.Vector {
	tr.counts.Merge++
	cursors := tr.cursors[:0]
	total := 0
	for i := range frontier.Idx {
		nbrs, mults := tr.g.Neighbors(hin.VertexID(frontier.Idx[i]), next)
		if len(nbrs) == 0 {
			continue
		}
		cursors = append(cursors, mergeCursor{nbrs, mults, frontier.Val[i]})
		total += len(nbrs)
	}
	tr.cursors = cursors[:0] // keep the grown scratch
	if len(cursors) == 0 {
		return sparse.Vector{}
	}
	if len(cursors) == 1 {
		// Single row: a straight scale of the adjacency row.
		c := cursors[0]
		out := sparse.Vector{Idx: make([]int32, 0, len(c.nbrs)), Val: make([]float64, 0, len(c.nbrs))}
		for j, u := range c.nbrs {
			if x := c.w * float64(c.mults[j]); x != 0 {
				out.Idx = append(out.Idx, int32(u))
				out.Val = append(out.Val, x)
			}
		}
		return out
	}
	out := sparse.Vector{Idx: make([]int32, 0, total), Val: make([]float64, 0, total)}
	for {
		best := -1
		var bestID hin.VertexID
		for ci := range cursors {
			c := &cursors[ci]
			if len(c.nbrs) == 0 {
				continue
			}
			if best < 0 || c.nbrs[0] < bestID {
				best, bestID = ci, c.nbrs[0]
			}
		}
		if best < 0 {
			return out
		}
		var sum float64
		for ci := range cursors {
			c := &cursors[ci]
			if len(c.nbrs) > 0 && c.nbrs[0] == bestID {
				sum += c.w * float64(c.mults[0])
				c.nbrs, c.mults = c.nbrs[1:], c.mults[1:]
			}
		}
		if sum != 0 { // exact cancellation drops the coordinate, like the accumulators
			out.Idx = append(out.Idx, int32(bestID))
			out.Val = append(out.Val, sum)
		}
	}
}
