package metapath

import (
	"fmt"

	"netout/internal/hin"
	"netout/internal/sparse"
)

// Traverser materializes neighbor vectors Φ_P(v) by hop-by-hop frontier
// expansion over a graph. It owns reusable scratch space, so a single
// Traverser amortizes allocations across many vertices; it is not safe for
// concurrent use (create one per goroutine).
//
// Each hop runs through one of three expansion kernels — merge, dense or
// map — picked per hop by an adaptive heuristic (see kernel.go and the
// "Expansion kernels" section of DESIGN.md).
type Traverser struct {
	g   *hin.Graph
	acc *sparse.Accumulator
	// dense is the span-offset scratch for KernelDense, grown lazily to the
	// largest target-type ID span seen.
	dense *sparse.DenseAccumulator
	// cursors is the reusable row set for KernelMerge.
	cursors []mergeCursor
	// kernel forces a specific kernel when != KernelAuto.
	kernel Kernel
	counts KernelCounts
}

// NewTraverser creates a traverser over g.
func NewTraverser(g *hin.Graph) *Traverser {
	return &Traverser{g: g, acc: sparse.NewAccumulator(64)}
}

// Graph returns the traversed graph.
func (tr *Traverser) Graph() *hin.Graph { return tr.g }

// NeighborVector computes Φ_P(v) (Definition 7): coordinate u holds
// |π_P(v,u)|, the number of path instances of P from v to u, counting edge
// multiplicities multiplicatively along each route. The source vertex must
// have type P.Source().
func (tr *Traverser) NeighborVector(p Path, v hin.VertexID) (sparse.Vector, error) {
	if p.IsZero() {
		return sparse.Vector{}, fmt.Errorf("metapath: zero path")
	}
	if !tr.g.Valid(v) {
		return sparse.Vector{}, fmt.Errorf("metapath: vertex %d out of range", v)
	}
	if tr.g.Type(v) != p.Source() {
		return sparse.Vector{}, fmt.Errorf("metapath: vertex %d has type %s, path starts at %s",
			v, tr.g.Schema().TypeName(tr.g.Type(v)), tr.g.Schema().TypeName(p.Source()))
	}
	cur := sparse.Vector{Idx: []int32{int32(v)}, Val: []float64{1}}
	for hop := 0; hop < p.Hops(); hop++ {
		cur = tr.Expand(cur, p.Type(hop+1))
		if cur.IsZero() {
			break
		}
	}
	return cur, nil
}

// Expand advances a weighted frontier one hop to the given neighbor type:
// out[u] = Σ_w frontier[w] · mult(w,u) over neighbors u of type next. The
// expansion kernel is chosen per hop (tiny frontiers merge sorted CSR rows
// directly; mid/dense frontiers scatter into a dense scratch; the map
// accumulator is the fallback for huge sparse types). Expand does not
// require the frontier to be sorted, only duplicate-free.
func (tr *Traverser) Expand(frontier sparse.Vector, next hin.TypeID) sparse.Vector {
	return tr.ExpandWith(KernelAuto, frontier, next)
}

// ExpandWith is Expand with the kernel chosen by the caller — the hook the
// cost-based planner uses to pin a kernel per hop. KernelAuto defers to the
// adaptive heuristic (and to any SetKernel override). All kernels are
// bit-equal, so the choice affects speed only, never the vector.
func (tr *Traverser) ExpandWith(k Kernel, frontier sparse.Vector, next hin.TypeID) sparse.Vector {
	if k == KernelAuto {
		k = tr.pick(frontier.NNZ(), next)
	}
	switch k {
	case KernelMerge:
		return tr.expandMerge(frontier, next)
	case KernelDense:
		return tr.expandDense(frontier, next)
	default:
		return tr.expandMap(frontier, next)
	}
}

// CountInstances returns |π_P(vi,vj)|, the number of instances of P
// connecting vi to vj (Definition 5).
func (tr *Traverser) CountInstances(p Path, vi, vj hin.VertexID) (float64, error) {
	phi, err := tr.NeighborVector(p, vi)
	if err != nil {
		return 0, err
	}
	return phi.At(int32(vj)), nil
}

// Neighborhood returns N_P(vi) = {vj : π_P(vi,vj) ≠ ∅} (Definition 6), in
// ascending vertex order.
func (tr *Traverser) Neighborhood(p Path, v hin.VertexID) ([]hin.VertexID, error) {
	phi, err := tr.NeighborVector(p, v)
	if err != nil {
		return nil, err
	}
	out := make([]hin.VertexID, len(phi.Idx))
	for i, ix := range phi.Idx {
		out[i] = hin.VertexID(ix)
	}
	return out, nil
}

// ExpandSet advances a set of vertices one hop to the given neighbor type,
// returning the distinct neighbors (set semantics, no counts). Used by the
// query engine to resolve candidate/reference set chains.
func (tr *Traverser) ExpandSet(set []hin.VertexID, next hin.TypeID) []hin.VertexID {
	// Run the adaptive kernels on a weight-1 frontier and keep the index
	// list: counts are all positive, so no coordinate can cancel and the
	// output indices are exactly the distinct neighbors.
	idx := make([]int32, len(set))
	val := make([]float64, len(set))
	for i, v := range set {
		idx[i] = int32(v)
		val[i] = 1
	}
	vec := tr.Expand(sparse.Vector{Idx: idx, Val: val}, next)
	out := make([]hin.VertexID, len(vec.Idx))
	for i, ix := range vec.Idx {
		out[i] = hin.VertexID(ix)
	}
	return out
}

// Visibility returns κ(v,v) = |π_{PP⁻¹}(v,v)| = ‖Φ_P(v)‖₂², the vertex's
// potential for connectivity under feature path p (Section 5.1).
func (tr *Traverser) Visibility(p Path, v hin.VertexID) (float64, error) {
	phi, err := tr.NeighborVector(p, v)
	if err != nil {
		return 0, err
	}
	return phi.Norm2Sq(), nil
}
