package metapath

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"netout/internal/hin"
	"netout/internal/sparse"
)

var forcedKernels = []Kernel{KernelMap, KernelDense, KernelMerge}

// expandAll runs one hop under every forced kernel plus auto and checks the
// results are bit-equal, returning the map-kernel result.
func expandAll(t *testing.T, g *hin.Graph, frontier sparse.Vector, next hin.TypeID) sparse.Vector {
	t.Helper()
	tr := NewTraverser(g)
	tr.SetKernel(KernelMap)
	want := tr.Expand(frontier, next)
	for _, k := range []Kernel{KernelDense, KernelMerge, KernelAuto} {
		tr.SetKernel(k)
		if got := tr.Expand(frontier, next); !got.Equal(want) {
			t.Fatalf("kernel %v: Expand = %v, want %v (frontier %v)", k, got, want, frontier)
		}
	}
	return want
}

// kernelGraph is the deterministic two-author/one-paper fixture used by the
// cancellation and heuristic tests.
func kernelGraph(t *testing.T) (*hin.Graph, map[string]hin.VertexID) {
	t.Helper()
	s := hin.MustSchema("author", "paper")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	s.AllowLink(a, p)
	b := hin.NewBuilder(s)
	ids := map[string]hin.VertexID{
		"a1": b.MustAddVertex(a, "a1"),
		"a2": b.MustAddVertex(a, "a2"),
		"a3": b.MustAddVertex(a, "a3"),
		"p1": b.MustAddVertex(p, "p1"),
		"p2": b.MustAddVertex(p, "p2"),
	}
	b.MustAddEdge(ids["a1"], ids["p1"])
	b.MustAddEdge(ids["a2"], ids["p1"])
	b.MustAddEdge(ids["a2"], ids["p2"])
	b.MustAddEdge(ids["a3"], ids["p2"])
	return b.Build(), ids
}

func TestExpandKernelsZeroCancellation(t *testing.T) {
	g, ids := kernelGraph(t)
	p, _ := g.Schema().TypeByName("paper")
	// a1 and a2 share p1 with equal multiplicity; opposite weights cancel it
	// exactly, and every kernel must drop the coordinate.
	frontier := sparse.FromMap(map[int32]float64{
		int32(ids["a1"]): 1,
		int32(ids["a2"]): -1,
	})
	got := expandAll(t, g, frontier, p)
	want := sparse.FromMap(map[int32]float64{int32(ids["p2"]): -1})
	if !got.Equal(want) {
		t.Fatalf("cancellation result = %v, want %v", got, want)
	}
}

func TestExpandKernelsEmptyAndMissing(t *testing.T) {
	g, ids := kernelGraph(t)
	paper, _ := g.Schema().TypeByName("paper")
	if got := expandAll(t, g, sparse.Vector{}, paper); !got.IsZero() {
		t.Fatalf("empty frontier expanded to %v", got)
	}
	// A frontier whose vertices have no neighbors of the target type.
	author, _ := g.Schema().TypeByName("author")
	frontier := sparse.FromMap(map[int32]float64{int32(ids["a1"]): 2})
	if got := expandAll(t, g, frontier, author); !got.IsZero() {
		t.Fatalf("author->author frontier expanded to %v", got)
	}
}

func TestKernelHeuristic(t *testing.T) {
	g, ids := kernelGraph(t)
	paper, _ := g.Schema().TypeByName("paper")
	tr := NewTraverser(g)
	// Tiny frontier routes through the merge path.
	tiny := sparse.FromMap(map[int32]float64{int32(ids["a1"]): 1})
	tr.Expand(tiny, paper)
	if c := tr.KernelCounts(); c.Merge != 1 || c.Map != 0 || c.Dense != 0 {
		t.Fatalf("tiny frontier counts = %+v, want one merge", c)
	}
	// Above MergeMaxFrontier the dense scratch takes over (the paper span
	// here is far under MaxDenseSpan), and at the boundary merge still wins.
	if k := tr.pick(MergeMaxFrontier+1, paper); k != KernelDense {
		t.Fatalf("pick(%d, paper) = %v, want dense", MergeMaxFrontier+1, k)
	}
	if k := tr.pick(MergeMaxFrontier, paper); k != KernelMerge {
		t.Fatalf("pick(%d, paper) = %v, want merge", MergeMaxFrontier, k)
	}
	// Forced kernels override the heuristic.
	tr.SetKernel(KernelMap)
	if k := tr.pick(1, paper); k != KernelMap {
		t.Fatalf("forced map, pick = %v", k)
	}
	tr.SetKernel(KernelAuto)
}

// randomFrontier draws a random weighted frontier over the vertices of a
// type, with negative weights included so cancellation paths are exercised.
func randomFrontier(r *rand.Rand, g *hin.Graph, t hin.TypeID) sparse.Vector {
	vs := g.VerticesOfType(t)
	m := make(map[int32]float64)
	n := r.Intn(len(vs) + 1)
	for i := 0; i < n; i++ {
		w := float64(r.Intn(9) - 4)
		if w != 0 {
			m[int32(vs[r.Intn(len(vs))])] = w
		}
	}
	return sparse.FromMap(m)
}

func TestQuickExpandKernelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		s := g.Schema()
		src := hin.TypeID(r.Intn(s.NumTypes()))
		nexts := s.AllowedFrom(src)
		if len(nexts) == 0 {
			return true
		}
		next := nexts[r.Intn(len(nexts))]
		frontier := randomFrontier(r, g, src)
		tr := NewTraverser(g)
		tr.SetKernel(KernelMap)
		want := tr.Expand(frontier, next)
		for _, k := range []Kernel{KernelDense, KernelMerge, KernelAuto} {
			tr.SetKernel(k)
			if !tr.Expand(frontier, next).Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Multi-hop NeighborVector must be kernel-independent too: hop sizes cross
// the merge/dense crossover mid-path under KernelAuto.
func TestQuickNeighborVectorKernelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		p := randomValidPath(r, g.Schema(), 4)
		src := g.VerticesOfType(p.Source())
		if len(src) == 0 {
			return true
		}
		v := src[r.Intn(len(src))]
		var want sparse.Vector
		for i, k := range []Kernel{KernelMap, KernelDense, KernelMerge, KernelAuto} {
			tr := NewTraverser(g)
			tr.SetKernel(k)
			phi, err := tr.NeighborVector(p, v)
			if err != nil {
				return false
			}
			if i == 0 {
				want = phi
			} else if !phi.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpandSetKernelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		s := g.Schema()
		src := hin.TypeID(r.Intn(s.NumTypes()))
		nexts := s.AllowedFrom(src)
		if len(nexts) == 0 {
			return true
		}
		next := nexts[r.Intn(len(nexts))]
		vs := g.VerticesOfType(src)
		set := make([]hin.VertexID, 0, len(vs))
		for _, v := range vs {
			if r.Float64() < 0.5 {
				set = append(set, v)
			}
		}
		var want []hin.VertexID
		for i, k := range forcedKernels {
			tr := NewTraverser(g)
			tr.SetKernel(k)
			got := tr.ExpandSet(set, next)
			if i == 0 {
				want = got
				continue
			}
			if len(got) != len(want) {
				return false
			}
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzExpandKernels decodes arbitrary bytes into a tiny two-type network, a
// frontier and a hop direction, then asserts the three kernels agree
// bit-for-bit. The seed corpus covers the structural edges: empty frontier,
// single row, duplicate-free fan-in, cancellation, and self-type hops with
// no allowed neighbors.
func FuzzExpandKernels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 0, 0, 1, 1, 2, 3, 0, 1})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0})                   // single row, repeated edge (multiplicity)
	f.Add([]byte{2, 1, 0, 0, 1, 0, 0, 1, 1, 255})           // two rows into one paper: cancellation candidates
	f.Add([]byte{8, 8, 0, 1, 2, 3, 4, 5, 6, 7, 7, 6, 5, 4}) // wider fan
	f.Fuzz(func(t *testing.T, data []byte) {
		pop := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		s := hin.MustSchema("a", "b")
		ta, _ := s.TypeByName("a")
		tb, _ := s.TypeByName("b")
		s.AllowLink(ta, tb)
		nA := int(pop()%8) + 1
		nB := int(pop()%8) + 1
		bld := hin.NewBuilder(s)
		as := make([]hin.VertexID, nA)
		bs := make([]hin.VertexID, nB)
		for i := range as {
			as[i] = bld.MustAddVertex(ta, fmt.Sprintf("a%d", i))
		}
		for i := range bs {
			bs[i] = bld.MustAddVertex(tb, fmt.Sprintf("b%d", i))
		}
		nEdges := int(pop() % 32)
		for i := 0; i < nEdges; i++ {
			x := as[int(pop())%nA]
			y := bs[int(pop())%nB]
			bld.MustAddEdge(x, y) // repeats raise multiplicity
		}
		g := bld.Build()
		m := make(map[int32]float64)
		nFront := int(pop() % 8)
		for i := 0; i < nFront; i++ {
			v := as[int(pop())%nA]
			w := float64(int(pop()) - 128)
			if w != 0 {
				m[int32(v)] = w
			}
		}
		frontier := sparse.FromMap(m)
		tr := NewTraverser(g)
		tr.SetKernel(KernelMap)
		want := tr.Expand(frontier, tb)
		for _, k := range []Kernel{KernelDense, KernelMerge, KernelAuto} {
			tr.SetKernel(k)
			if got := tr.Expand(frontier, tb); !got.Equal(want) {
				t.Fatalf("kernel %v: Expand = %v, want %v (frontier %v, graph %d/%d)",
					k, got, want, frontier, nA, nB)
			}
		}
		// The hop with no vertices of the target type in range: expand the
		// B frontier back to A as well.
		mB := make(map[int32]float64)
		for i := 0; i < nFront; i++ {
			mB[int32(bs[int(pop())%nB])] = float64(int(pop())%16) + 1
		}
		back := sparse.FromMap(mB)
		tr.SetKernel(KernelMap)
		wantBack := tr.Expand(back, ta)
		for _, k := range []Kernel{KernelDense, KernelMerge, KernelAuto} {
			tr.SetKernel(k)
			if got := tr.Expand(back, ta); !got.Equal(wantBack) {
				t.Fatalf("kernel %v (reverse): Expand = %v, want %v", k, got, wantBack)
			}
		}
	})
}
