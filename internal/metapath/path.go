// Package metapath implements meta-paths over heterogeneous information
// networks (Definitions 2-7 of Kuck et al., EDBT 2015): the path type with
// reversal and concatenation operators, schema validation, path-instance
// counting π_P, neighborhoods N_P and neighbor vectors Φ_P.
package metapath

import (
	"fmt"
	"strings"

	"netout/internal/hin"
)

// Path is an ordered sequence of vertex types, P = (T0 T1 ... Tl).
// The zero Path is invalid; construct with New, FromNames or ParseDotted.
// Paths are immutable: operators return new values.
type Path struct {
	types []hin.TypeID
	// key is the canonical byte encoding of types (one byte per type),
	// precomputed at construction so Key() — the cache/index map key — is a
	// field load instead of a per-lookup allocation.
	key string
}

// mk builds a Path over types, precomputing its canonical key. The slice is
// adopted, not copied — callers must own it exclusively.
func mk(types []hin.TypeID) Path {
	b := make([]byte, len(types))
	for i, t := range types {
		b[i] = byte(t)
	}
	return Path{types: types, key: string(b)}
}

// New builds a meta-path from type IDs. At least one type is required.
func New(types ...hin.TypeID) (Path, error) {
	if len(types) == 0 {
		return Path{}, fmt.Errorf("metapath: a meta-path needs at least one vertex type")
	}
	return mk(append([]hin.TypeID(nil), types...)), nil
}

// MustNew is New panicking on error, for statically-known paths.
func MustNew(types ...hin.TypeID) Path {
	p, err := New(types...)
	if err != nil {
		panic(err)
	}
	return p
}

// FromNames builds a meta-path by resolving type names against a schema.
func FromNames(s *hin.Schema, names ...string) (Path, error) {
	if len(names) == 0 {
		return Path{}, fmt.Errorf("metapath: a meta-path needs at least one vertex type")
	}
	types := make([]hin.TypeID, len(names))
	for i, n := range names {
		t, ok := s.TypeByName(n)
		if !ok {
			return Path{}, fmt.Errorf("metapath: unknown vertex type %q", n)
		}
		types[i] = t
	}
	return mk(types), nil
}

// ParseDotted parses the query-language form "author.paper.venue".
func ParseDotted(s *hin.Schema, dotted string) (Path, error) {
	parts := strings.Split(dotted, ".")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
		if parts[i] == "" {
			return Path{}, fmt.Errorf("metapath: empty segment in %q", dotted)
		}
	}
	return FromNames(s, parts...)
}

// Len reports the number of vertex types in the path (hops + 1).
func (p Path) Len() int { return len(p.types) }

// Hops reports the number of edges a path instance traverses, |P| in the
// paper's notation (a length-2 meta-path has 3 types and 2 hops).
func (p Path) Hops() int { return len(p.types) - 1 }

// IsZero reports whether p is the invalid zero Path.
func (p Path) IsZero() bool { return len(p.types) == 0 }

// Type returns the i-th vertex type.
func (p Path) Type(i int) hin.TypeID { return p.types[i] }

// Types returns a copy of the type sequence.
func (p Path) Types() []hin.TypeID { return append([]hin.TypeID(nil), p.types...) }

// Source returns the first vertex type T0.
func (p Path) Source() hin.TypeID { return p.types[0] }

// Target returns the last vertex type Tl.
func (p Path) Target() hin.TypeID { return p.types[len(p.types)-1] }

// Reverse returns P⁻¹ = (Tl ... T0) (Definition 3).
func (p Path) Reverse() Path {
	rev := make([]hin.TypeID, len(p.types))
	for i, t := range p.types {
		rev[len(p.types)-1-i] = t
	}
	return mk(rev)
}

// Concat returns the concatenation (P Q) (Definition 4). The target type of
// p must equal the source type of q; the shared type appears once.
func (p Path) Concat(q Path) (Path, error) {
	if p.IsZero() || q.IsZero() {
		return Path{}, fmt.Errorf("metapath: cannot concatenate zero paths")
	}
	if p.Target() != q.Source() {
		return Path{}, fmt.Errorf("metapath: concat type mismatch (target %d != source %d)", p.Target(), q.Source())
	}
	out := make([]hin.TypeID, 0, len(p.types)+len(q.types)-1)
	out = append(out, p.types...)
	out = append(out, q.types[1:]...)
	return mk(out), nil
}

// Symmetric returns Psym = (P P⁻¹), the round-trip path used to define
// connectivity κ in Section 5.1. For P = (A P V) it is (A P V P A).
func (p Path) Symmetric() Path {
	sym, err := p.Concat(p.Reverse())
	if err != nil {
		// Unreachable: Target(P) always equals Source(P⁻¹).
		panic(err)
	}
	return sym
}

// IsSymmetric reports whether the path reads the same forwards and
// backwards.
func (p Path) IsSymmetric() bool {
	for i, j := 0, len(p.types)-1; i < j; i, j = i+1, j-1 {
		if p.types[i] != p.types[j] {
			return false
		}
	}
	return true
}

// Validate checks that every type exists in the schema and every
// consecutive pair is an allowed edge.
func (p Path) Validate(s *hin.Schema) error {
	if p.IsZero() {
		return fmt.Errorf("metapath: zero path")
	}
	for _, t := range p.types {
		if int(t) >= s.NumTypes() {
			return fmt.Errorf("metapath: type id %d outside schema", t)
		}
	}
	for i := 0; i+1 < len(p.types); i++ {
		if !s.EdgeAllowed(p.types[i], p.types[i+1]) {
			return fmt.Errorf("metapath: schema forbids hop %s->%s",
				s.TypeName(p.types[i]), s.TypeName(p.types[i+1]))
		}
	}
	return nil
}

// Equal reports whether two paths have identical type sequences.
func (p Path) Equal(q Path) bool {
	if len(p.types) != len(q.types) {
		return false
	}
	for i := range p.types {
		if p.types[i] != q.types[i] {
			return false
		}
	}
	return true
}

// Key returns a compact comparable key for use as a map key: one byte per
// vertex type, in path order. It is precomputed at construction, so calling
// it in a cache-probe hot loop costs a field load, not an allocation; the
// key of the prefix with j hops is the substring Key()[:j+1] (no copy).
func (p Path) Key() string { return p.key }

// FromKey reconstructs a Path from a Key (or from any prefix of one).
func FromKey(k string) Path {
	types := make([]hin.TypeID, len(k))
	for i := 0; i < len(k); i++ {
		types[i] = hin.TypeID(k[i])
	}
	return mk(types)
}

// Dotted renders the path in the query-language form "author.paper.venue".
func (p Path) Dotted(s *hin.Schema) string {
	parts := make([]string, len(p.types))
	for i, t := range p.types {
		parts[i] = s.TypeName(t)
	}
	return strings.Join(parts, ".")
}

// Enumerate lists schema-valid meta-paths starting at src with minHops to
// maxHops hops, in depth-first order. To keep the space meaningful it
// bounds repetition: any type may appear at most twice after the source
// (so round trips like A.P.A are produced but A-P-A-P-A oscillation is
// not). Used by feature suggestion and by tooling that explores the schema.
func Enumerate(s *hin.Schema, src hin.TypeID, minHops, maxHops int) []Path {
	if minHops < 1 {
		minHops = 1
	}
	var out []Path
	var walk func(types []hin.TypeID)
	walk = func(types []hin.TypeID) {
		hops := len(types) - 1
		if hops >= minHops {
			out = append(out, MustNew(types...))
		}
		if hops == maxHops {
			return
		}
		last := types[len(types)-1]
		for _, next := range s.AllowedFrom(last) {
			seen := 0
			for _, t := range types[1:] {
				if t == next {
					seen++
				}
			}
			if seen >= 2 {
				continue
			}
			walk(append(append([]hin.TypeID(nil), types...), next))
		}
	}
	walk([]hin.TypeID{src})
	return out
}

// String renders the path with numeric type IDs, e.g. "(0 1 3)".
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, t := range p.types {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", t)
	}
	sb.WriteByte(')')
	return sb.String()
}
