package metapath

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netout/internal/hin"
	"netout/internal/sparse"
)

// bibGraph builds the Figure 1(b) network: Zoe authors five papers (two at
// ICDE, three at KDD); Liam coauthors two of them; Ava coauthors one, plus
// one extra paper with Liam at KDD.
func bibGraph(t *testing.T) (*hin.Graph, map[string]hin.VertexID) {
	t.Helper()
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	b := hin.NewBuilder(s)
	ids := map[string]hin.VertexID{
		"Ava":  b.MustAddVertex(a, "Ava"),
		"Liam": b.MustAddVertex(a, "Liam"),
		"Zoe":  b.MustAddVertex(a, "Zoe"),
		"ICDE": b.MustAddVertex(v, "ICDE"),
		"KDD":  b.MustAddVertex(v, "KDD"),
	}
	for i := 1; i <= 6; i++ {
		ids[fmt.Sprintf("p%d", i)] = b.MustAddVertex(p, fmt.Sprintf("p%d", i))
	}
	edge := func(x, y string) { b.MustAddEdge(ids[x], ids[y]) }
	for i := 1; i <= 5; i++ {
		edge(fmt.Sprintf("p%d", i), "Zoe")
	}
	edge("p1", "ICDE")
	edge("p2", "ICDE")
	edge("p3", "KDD")
	edge("p4", "KDD")
	edge("p5", "KDD")
	edge("p1", "Liam")
	edge("p2", "Liam")
	edge("p3", "Ava")
	edge("p6", "Ava")
	edge("p6", "Liam")
	edge("p6", "KDD")
	return b.Build(), ids
}

func mustPath(t *testing.T, g *hin.Graph, dotted string) Path {
	t.Helper()
	p, err := ParseDotted(g.Schema(), dotted)
	if err != nil {
		t.Fatalf("ParseDotted(%q): %v", dotted, err)
	}
	return p
}

func TestPathConstruction(t *testing.T) {
	g, _ := bibGraph(t)
	s := g.Schema()
	p := mustPath(t, g, "author.paper.venue")
	if p.Len() != 3 || p.Hops() != 2 {
		t.Fatalf("Len/Hops = %d/%d", p.Len(), p.Hops())
	}
	if s.TypeName(p.Source()) != "author" || s.TypeName(p.Target()) != "venue" {
		t.Fatal("Source/Target wrong")
	}
	if p.Dotted(s) != "author.paper.venue" {
		t.Fatalf("Dotted = %q", p.Dotted(s))
	}
	if _, err := New(); err == nil {
		t.Error("empty New should fail")
	}
	if _, err := FromNames(s); err == nil {
		t.Error("empty FromNames should fail")
	}
	if _, err := FromNames(s, "author", "nosuch"); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := ParseDotted(s, "author..venue"); err == nil {
		t.Error("empty segment should fail")
	}
	if p.String() == "" || p.Key() == "" {
		t.Error("String/Key empty")
	}
	if !FromKey(p.Key()).Equal(p) {
		t.Error("FromKey round-trip failed")
	}
}

func TestReverseAndConcat(t *testing.T) {
	g, _ := bibGraph(t)
	s := g.Schema()
	apv := mustPath(t, g, "author.paper.venue")
	vpa := apv.Reverse()
	if vpa.Dotted(s) != "venue.paper.author" {
		t.Fatalf("Reverse = %q", vpa.Dotted(s))
	}
	// Reversal is an involution.
	if !vpa.Reverse().Equal(apv) {
		t.Fatal("double reverse should be identity")
	}
	vpt := mustPath(t, g, "venue.paper.term")
	cat, err := apv.Concat(vpt)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if cat.Dotted(s) != "author.paper.venue.paper.term" {
		t.Fatalf("Concat = %q", cat.Dotted(s))
	}
	if _, err := apv.Concat(apv); err == nil {
		t.Error("type-mismatched concat should fail")
	}
	if _, err := (Path{}).Concat(apv); err == nil {
		t.Error("zero path concat should fail")
	}
	sym := apv.Symmetric()
	if sym.Dotted(s) != "author.paper.venue.paper.author" {
		t.Fatalf("Symmetric = %q", sym.Dotted(s))
	}
	if !sym.IsSymmetric() || apv.IsSymmetric() {
		t.Error("IsSymmetric misbehaves")
	}
}

func TestValidate(t *testing.T) {
	g, _ := bibGraph(t)
	s := g.Schema()
	if err := mustPath(t, g, "author.paper.venue").Validate(s); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	bad, _ := FromNames(s, "author", "venue")
	if err := bad.Validate(s); err == nil {
		t.Error("author-venue hop should be rejected")
	}
	if err := (Path{}).Validate(s); err == nil {
		t.Error("zero path should be rejected")
	}
	outOfRange := MustNew(hin.TypeID(50))
	if err := outOfRange.Validate(s); err == nil {
		t.Error("out-of-range type should be rejected")
	}
}

func TestNeighborVectorFigure1(t *testing.T) {
	g, ids := bibGraph(t)
	tr := NewTraverser(g)
	pca := mustPath(t, g, "author.paper.author")
	pv := mustPath(t, g, "author.paper.venue")

	// |π_Pca(Ava, Liam)| = 1 and |π_Pca(Liam, Zoe)| = 2, as in Section 3.
	if c, err := tr.CountInstances(pca, ids["Ava"], ids["Liam"]); err != nil || c != 1 {
		t.Fatalf("π(Ava,Liam) = %g, %v; want 1", c, err)
	}
	if c, _ := tr.CountInstances(pca, ids["Liam"], ids["Zoe"]); c != 2 {
		t.Fatalf("π(Liam,Zoe) = %g; want 2", c)
	}

	// Φ_Pca(Zoe) = [Ava:1, Liam:2, Zoe:5].
	phi, err := tr.NeighborVector(pca, ids["Zoe"])
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.FromMap(map[int32]float64{
		int32(ids["Ava"]): 1, int32(ids["Liam"]): 2, int32(ids["Zoe"]): 5,
	})
	if !phi.Equal(want) {
		t.Fatalf("Φ_Pca(Zoe) = %v, want %v", phi, want)
	}

	// Φ_Pv(Zoe) = [ICDE:2, KDD:3].
	phiV, _ := tr.NeighborVector(pv, ids["Zoe"])
	wantV := sparse.FromMap(map[int32]float64{
		int32(ids["ICDE"]): 2, int32(ids["KDD"]): 3,
	})
	if !phiV.Equal(wantV) {
		t.Fatalf("Φ_Pv(Zoe) = %v, want %v", phiV, wantV)
	}

	// Neighborhood N_Pca(Zoe) = {Ava, Liam, Zoe} (Definition 6 includes the
	// vertex itself, which is connected to itself via each of its papers).
	nb, _ := tr.Neighborhood(pca, ids["Zoe"])
	if len(nb) != 3 {
		t.Fatalf("N_Pca(Zoe) = %v", nb)
	}

	// Visibility of Zoe under Pv: 2² + 3² = 13.
	vis, _ := tr.Visibility(pv, ids["Zoe"])
	if vis != 13 {
		t.Fatalf("visibility = %g, want 13", vis)
	}
}

func TestNeighborVectorErrors(t *testing.T) {
	g, ids := bibGraph(t)
	tr := NewTraverser(g)
	pv := mustPath(t, g, "author.paper.venue")
	if _, err := tr.NeighborVector(Path{}, ids["Zoe"]); err == nil {
		t.Error("zero path should fail")
	}
	if _, err := tr.NeighborVector(pv, hin.VertexID(9999)); err == nil {
		t.Error("out-of-range vertex should fail")
	}
	if _, err := tr.NeighborVector(pv, ids["ICDE"]); err == nil {
		t.Error("type-mismatched source should fail")
	}
	if _, err := tr.CountInstances(Path{}, ids["Zoe"], ids["Zoe"]); err == nil {
		t.Error("CountInstances with zero path should fail")
	}
	if _, err := tr.Neighborhood(Path{}, ids["Zoe"]); err == nil {
		t.Error("Neighborhood with zero path should fail")
	}
	if _, err := tr.Visibility(Path{}, ids["Zoe"]); err == nil {
		t.Error("Visibility with zero path should fail")
	}
}

func TestExpandSet(t *testing.T) {
	g, ids := bibGraph(t)
	tr := NewTraverser(g)
	s := g.Schema()
	paperT, _ := s.TypeByName("paper")
	authorT, _ := s.TypeByName("author")
	papers := tr.ExpandSet([]hin.VertexID{ids["Zoe"]}, paperT)
	if len(papers) != 5 {
		t.Fatalf("Zoe's papers = %v", papers)
	}
	coauthors := tr.ExpandSet(papers, authorT)
	if len(coauthors) != 3 {
		t.Fatalf("Zoe's coauthor set = %v", coauthors)
	}
	if got := tr.ExpandSet(nil, paperT); len(got) != 0 {
		t.Fatalf("empty set expansion = %v", got)
	}
}

// bruteCount counts instances of p from vi to vj by explicit DFS,
// multiplying edge multiplicities along each route.
func bruteCount(g *hin.Graph, p Path, vi, vj hin.VertexID) float64 {
	var dfs func(v hin.VertexID, depth int, w float64) float64
	dfs = func(v hin.VertexID, depth int, w float64) float64 {
		if depth == p.Hops() {
			if v == vj {
				return w
			}
			return 0
		}
		var total float64
		nbrs, mults := g.Neighbors(v, p.Type(depth+1))
		for i, u := range nbrs {
			total += dfs(u, depth+1, w*float64(mults[i]))
		}
		return total
	}
	if g.Type(vi) != p.Source() || g.Type(vj) != p.Target() {
		return 0
	}
	return dfs(vi, 0, 1)
}

// randomGraph builds a small random 3-type network with multi-edges.
func randomGraph(r *rand.Rand) *hin.Graph {
	s := hin.MustSchema("a", "b", "c")
	ta, _ := s.TypeByName("a")
	tb, _ := s.TypeByName("b")
	tc, _ := s.TypeByName("c")
	s.AllowLink(ta, tb)
	s.AllowLink(tb, tc)
	s.AllowLink(ta, tc)
	bld := hin.NewBuilder(s)
	var as, bs, cs []hin.VertexID
	for i := 0; i < 4+r.Intn(4); i++ {
		as = append(as, bld.MustAddVertex(ta, fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 4+r.Intn(4); i++ {
		bs = append(bs, bld.MustAddVertex(tb, fmt.Sprintf("b%d", i)))
	}
	for i := 0; i < 4+r.Intn(4); i++ {
		cs = append(cs, bld.MustAddVertex(tc, fmt.Sprintf("c%d", i)))
	}
	addSome := func(xs, ys []hin.VertexID) {
		for _, x := range xs {
			for _, y := range ys {
				if r.Float64() < 0.4 {
					if err := bld.AddEdgeMult(x, y, int32(1+r.Intn(3))); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	addSome(as, bs)
	addSome(bs, cs)
	addSome(as, cs)
	return bld.Build()
}

func randomValidPath(r *rand.Rand, s *hin.Schema, maxHops int) Path {
	types := []hin.TypeID{hin.TypeID(r.Intn(s.NumTypes()))}
	hops := 1 + r.Intn(maxHops)
	for i := 0; i < hops; i++ {
		next := s.AllowedFrom(types[len(types)-1])
		if len(next) == 0 {
			break
		}
		types = append(types, next[r.Intn(len(next))])
	}
	return MustNew(types...)
}

func TestQuickTraversalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		p := randomValidPath(r, g.Schema(), 3)
		tr := NewTraverser(g)
		src := g.VerticesOfType(p.Source())
		if len(src) == 0 {
			return true
		}
		v := src[r.Intn(len(src))]
		phi, err := tr.NeighborVector(p, v)
		if err != nil {
			return false
		}
		// Every target vertex must match the brute-force DFS count.
		for _, u := range g.VerticesOfType(p.Target()) {
			if math.Abs(phi.At(int32(u))-bruteCount(g, p, v, u)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// For symmetric meta-paths, path counting is symmetric:
// |π(v,u)| == |π(u,v)| because every instance reverses.
func TestQuickSymmetricPathCountSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		base := randomValidPath(r, g.Schema(), 2)
		p := base.Symmetric()
		tr := NewTraverser(g)
		src := g.VerticesOfType(p.Source())
		if len(src) < 2 {
			return true
		}
		v, u := src[r.Intn(len(src))], src[r.Intn(len(src))]
		cvu, err1 := tr.CountInstances(p, v, u)
		cuv, err2 := tr.CountInstances(p, u, v)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(cvu-cuv) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Visibility equals the squared norm of the neighbor vector, i.e. the count
// of round trips π_{PP⁻¹}(v,v).
func TestQuickVisibilityIsRoundTripCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		base := randomValidPath(r, g.Schema(), 2)
		tr := NewTraverser(g)
		src := g.VerticesOfType(base.Source())
		if len(src) == 0 {
			return true
		}
		v := src[r.Intn(len(src))]
		vis, err := tr.Visibility(base, v)
		if err != nil {
			return false
		}
		roundTrips, err := tr.CountInstances(base.Symmetric(), v, v)
		if err != nil {
			return false
		}
		return math.Abs(vis-roundTrips) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		types := make([]hin.TypeID, n)
		for i := range types {
			types[i] = hin.TypeID(r.Intn(5))
		}
		p := MustNew(types...)
		return p.Reverse().Reverse().Equal(p) &&
			p.Reverse().Len() == p.Len() &&
			p.Symmetric().IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerate(t *testing.T) {
	g, _ := bibGraph(t)
	s := g.Schema()
	authorT, _ := s.TypeByName("author")

	paths := Enumerate(s, authorT, 2, 2)
	// From author, the only first hop is paper; second hops: author, venue, term.
	if len(paths) != 3 {
		t.Fatalf("length-2 paths = %d: %v", len(paths), paths)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if err := p.Validate(s); err != nil {
			t.Fatalf("enumerated invalid path %v: %v", p, err)
		}
		if p.Source() != authorT || p.Hops() != 2 {
			t.Fatalf("bad path %v", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.Key()] = true
	}

	// Deeper enumeration strictly grows and respects the repetition bound.
	deep := Enumerate(s, authorT, 2, 4)
	if len(deep) <= len(paths) {
		t.Fatalf("maxHops=4 gave %d paths", len(deep))
	}
	for _, p := range deep {
		counts := map[hin.TypeID]int{}
		for i := 1; i < p.Len(); i++ {
			counts[p.Type(i)]++
		}
		for tt, c := range counts {
			if c > 2 {
				t.Fatalf("type %d appears %d times in %v", tt, c, p)
			}
		}
	}

	// minHops=1 includes single hops; minHops clamps below 1.
	withSingles := Enumerate(s, authorT, 0, 2)
	if len(withSingles) != len(paths)+1 { // +1 for author.paper
		t.Fatalf("minHops=0 gave %d paths", len(withSingles))
	}
}
