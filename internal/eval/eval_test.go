package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func pos(ids ...string) map[string]bool {
	m := map[string]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestPrecisionAtK(t *testing.T) {
	ranked := []string{"a", "b", "c", "d"}
	p := pos("a", "c")
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1}, {2, 0.5}, {3, 2.0 / 3}, {4, 0.5}, {10, 0.5}, {0, 0}, {-1, 0},
	}
	for _, c := range cases {
		if got := PrecisionAtK(ranked, p, c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P@%d = %g, want %g", c.k, got, c.want)
		}
	}
	if PrecisionAtK(nil, p, 3) != 0 {
		t.Error("empty ranking should be 0")
	}
}

func TestRecallAtK(t *testing.T) {
	ranked := []string{"a", "b", "c", "d"}
	p := pos("a", "c", "zz")
	if got := RecallAtK(ranked, p, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("R@3 = %g", got)
	}
	if got := RecallAtK(ranked, p, 100); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("R@100 = %g", got)
	}
	if RecallAtK(ranked, nil, 3) != 0 {
		t.Error("no positives should be 0")
	}
}

func TestAveragePrecision(t *testing.T) {
	// Positives at ranks 1 and 3: AP = (1/1 + 2/3)/2.
	ranked := []string{"a", "b", "c"}
	if got := AveragePrecision(ranked, pos("a", "c")); math.Abs(got-(1+2.0/3)/2) > 1e-12 {
		t.Errorf("AP = %g", got)
	}
	// Perfect ranking: AP = 1.
	if got := AveragePrecision([]string{"a", "b", "x"}, pos("a", "b")); got != 1 {
		t.Errorf("perfect AP = %g", got)
	}
	// Missing positive halves the best case.
	if got := AveragePrecision([]string{"a"}, pos("a", "missing")); got != 0.5 {
		t.Errorf("missing-positive AP = %g", got)
	}
	if AveragePrecision(ranked, nil) != 0 {
		t.Error("no positives should be 0")
	}
}

func TestROCAUC(t *testing.T) {
	// Perfect separation.
	auc, err := ROCAUC([]string{"p1", "p2", "n1", "n2"}, pos("p1", "p2"))
	if err != nil || auc != 1 {
		t.Fatalf("perfect AUC = %g, %v", auc, err)
	}
	// Inverted ranking.
	auc, err = ROCAUC([]string{"n1", "n2", "p1", "p2"}, pos("p1", "p2"))
	if err != nil || auc != 0 {
		t.Fatalf("inverted AUC = %g, %v", auc, err)
	}
	// Interleaved: p n p n → pairs (p1,n1) win, (p1,n2) win, (p2,n1) lose, (p2,n2) win = 3/4.
	auc, err = ROCAUC([]string{"p1", "n1", "p2", "n2"}, pos("p1", "p2"))
	if err != nil || math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("interleaved AUC = %g, %v", auc, err)
	}
	// Unranked positive sits below all ranked items.
	auc, err = ROCAUC([]string{"p1", "n1"}, pos("p1", "ghost"))
	if err != nil || math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("ghost AUC = %g, %v", auc, err)
	}
	if _, err := ROCAUC([]string{"p1"}, pos("p1")); err == nil {
		t.Error("single-class AUC should fail")
	}
	if _, err := ROCAUC([]string{"n1"}, nil); err == nil {
		t.Error("no positives should fail")
	}
}

func TestEvaluateAndFormat(t *testing.T) {
	rep, err := Evaluate("NetOut", []string{"p", "n", "n"}, pos("p"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Precision != 1 || rep.Recall != 1 || rep.AP != 1 || rep.AUC != 1 {
		t.Fatalf("report = %+v", rep)
	}
	out := FormatReports([]Report{rep})
	if !strings.Contains(out, "NetOut") || !strings.Contains(out, "AUC") {
		t.Fatalf("format = %q", out)
	}
	if _, err := Evaluate("x", []string{"p"}, pos("p"), 1); err == nil {
		t.Error("degenerate Evaluate should fail")
	}
}

// AUC must be invariant to how many negatives trail the ranking's positives
// region, and AP must be monotone when a positive moves up.
func TestQuickMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(10)
		var ranked []string
		positives := map[string]bool{}
		for i := 0; i < n; i++ {
			id := string(rune('a' + i))
			ranked = append(ranked, id)
			if r.Intn(3) == 0 {
				positives[id] = true
			}
		}
		if len(positives) == 0 || len(positives) == n {
			return true
		}
		auc, err := ROCAUC(ranked, positives)
		if err != nil || auc < 0 || auc > 1 {
			return false
		}
		ap := AveragePrecision(ranked, positives)
		if ap < 0 || ap > 1 {
			return false
		}
		// Swapping a positive one rank up never decreases AP or AUC.
		for i := 1; i < n; i++ {
			if positives[ranked[i]] && !positives[ranked[i-1]] {
				swapped := append([]string(nil), ranked...)
				swapped[i-1], swapped[i] = swapped[i], swapped[i-1]
				ap2 := AveragePrecision(swapped, positives)
				auc2, err := ROCAUC(swapped, positives)
				if err != nil || ap2 < ap-1e-12 || auc2 < auc-1e-12 {
					return false
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
