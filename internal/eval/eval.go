// Package eval provides ranking-evaluation metrics for outlier detection
// experiments: precision/recall at k, average precision and ROC AUC against
// a ground-truth set of planted outliers. The case-study experiments use it
// to score NetOut and the baselines against the generator's manifest.
//
// All functions take a ranked list of item identifiers, most outlying
// first, and the ground-truth positive set.
package eval

import (
	"fmt"
	"sort"
)

// PrecisionAtK is the fraction of the top-k ranked items that are
// positives. k is clamped to the ranking length.
func PrecisionAtK(ranked []string, positives map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, id := range ranked[:k] {
		if positives[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK is the fraction of positives found in the top-k ranked items.
func RecallAtK(ranked []string, positives map[string]bool, k int) float64 {
	if len(positives) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, id := range ranked[:k] {
		if positives[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(positives))
}

// AveragePrecision is the mean of precision@k over the ranks k at which a
// positive appears, normalized by the number of positives (AP as used for
// ranked retrieval). Positives missing from the ranking contribute zero.
func AveragePrecision(ranked []string, positives map[string]bool) float64 {
	if len(positives) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, id := range ranked {
		if positives[id] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(positives))
}

// ROCAUC computes the area under the ROC curve for a ranking: the
// probability that a uniformly random positive is ranked above a uniformly
// random negative. Items absent from the ranking are treated as ranked
// below everything (ties broken pessimistically). An error is returned if
// either class is empty among the union of ranked items and positives.
func ROCAUC(ranked []string, positives map[string]bool) (float64, error) {
	rank := make(map[string]int, len(ranked))
	for i, id := range ranked {
		rank[id] = i
	}
	worst := len(ranked)
	var posRanks, negRanks []int
	seen := map[string]bool{}
	for _, id := range ranked {
		seen[id] = true
		if positives[id] {
			posRanks = append(posRanks, rank[id])
		} else {
			negRanks = append(negRanks, rank[id])
		}
	}
	for id := range positives {
		if !seen[id] {
			posRanks = append(posRanks, worst)
		}
	}
	if len(posRanks) == 0 || len(negRanks) == 0 {
		return 0, fmt.Errorf("eval: ROC AUC needs both positives (%d) and negatives (%d)",
			len(posRanks), len(negRanks))
	}
	// Count positive<negative pairs (smaller rank = more outlying = better).
	sort.Ints(negRanks)
	var wins, ties float64
	for _, pr := range posRanks {
		lo := sort.SearchInts(negRanks, pr)   // negatives ranked above pr
		hi := sort.SearchInts(negRanks, pr+1) // negatives tied with pr
		wins += float64(len(negRanks) - hi)
		ties += float64(hi - lo)
	}
	total := float64(len(posRanks) * len(negRanks))
	return (wins + ties/2) / total, nil
}

// Report bundles the standard metric set for one method.
type Report struct {
	Method    string
	K         int
	Precision float64
	Recall    float64
	AP        float64
	AUC       float64
}

// Evaluate computes the full report for a ranking.
func Evaluate(method string, ranked []string, positives map[string]bool, k int) (Report, error) {
	auc, err := ROCAUC(ranked, positives)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Method:    method,
		K:         k,
		Precision: PrecisionAtK(ranked, positives, k),
		Recall:    RecallAtK(ranked, positives, k),
		AP:        AveragePrecision(ranked, positives),
		AUC:       auc,
	}, nil
}

// FormatReports renders reports as an aligned table.
func FormatReports(reports []Report) string {
	out := fmt.Sprintf("%-24s %12s %12s %8s %8s\n", "method", "precision@k", "recall@k", "AP", "AUC")
	for _, r := range reports {
		out += fmt.Sprintf("%-24s %12.2f %12.2f %8.2f %8.2f\n",
			r.Method, r.Precision, r.Recall, r.AP, r.AUC)
	}
	return out
}
