package shardnet

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"netout/internal/core"
	"netout/internal/obs"
	"netout/internal/xerr"
)

// ClientOptions configures a remote shard client.
type ClientOptions struct {
	// MaxAttempts bounds how many times one Call tries the shard (first
	// attempt + retries). Only transport faults (UNAVAILABLE) and admission
	// sheds (RESOURCE_EXHAUSTED replies) retry — they are the "try again"
	// codes by definition; skew, validation failures and interrupts never
	// do. Default 3.
	MaxAttempts int
	// Backoff is the first retry's sleep; it doubles per retry. The sleep
	// is context-aware, so a cancelled query never sits out a backoff.
	// Default 25ms.
	Backoff time.Duration
	// Hedge, when positive, launches a second identical call if the first
	// has not answered within this long, and Call returns whichever
	// finishes first (the loser is cancelled). Hedging is safe because
	// shard requests are idempotent reads. 0 disables.
	Hedge time.Duration
	// DialTimeout bounds one TCP connect. Default 2s.
	DialTimeout time.Duration
	// CallTimeout bounds one attempt when the query's context carries no
	// deadline of its own — the client's backstop against a hung shard.
	// Default 30s.
	CallTimeout time.Duration
	// DrainGrace extends the connection read deadline past the query's
	// deadline, mirroring core.ServeOptions.DrainGrace: a shard observing
	// the expired deadline replies promptly with its exact prefix, and this
	// window lets that degraded reply land instead of being severed
	// mid-flight. Default 250ms.
	DrainGrace time.Duration
	// Obs, if set, receives per-shard RPC metrics (attempt counts by
	// outcome, retries, hedges, call latency), labeled by shard address.
	Obs *obs.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.DrainGrace == 0 {
		o.DrainGrace = 250 * time.Millisecond
	}
	return o
}

// Client is a coordinator-side remote shard: it implements core.RemoteShard
// over the shardnet codec with connection pooling, bounded retry with
// exponential backoff, optional hedging, and deadline propagation. Safe for
// concurrent use — every ServePool worker shares one Client per shard.
type Client struct {
	addr string
	opts ClientOptions

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

// clientConn keeps a connection WITH its buffered reader: the reader may
// have read ahead, so re-wrapping the conn on reuse would lose bytes.
type clientConn struct {
	c  net.Conn
	br *bufio.Reader
}

// maxIdleConns bounds the per-client idle pool; beyond it, returning
// connections close instead of parking.
const maxIdleConns = 8

// Dial returns a client for the shard at addr. Connection establishment is
// lazy — the first Call dials — so constructing a fleet of clients never
// blocks on a down shard; the per-call retry/degradation machinery owns
// that failure instead.
func Dial(addr string, opts ClientOptions) *Client {
	return &Client{addr: addr, opts: opts.withDefaults()}
}

// Addr names the remote endpoint (core.RemoteShard).
func (c *Client) Addr() string { return c.addr }

// Close releases the client's pooled connections. In-flight calls finish on
// their own connections; later calls dial fresh (a closed client still
// works, it just stops pooling).
func (c *Client) Close() {
	c.mu.Lock()
	idle := c.idle
	c.idle, c.closed = nil, true
	c.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
}

func (c *Client) getConn() (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, xerr.Wrap(xerr.Unavailable, err)
	}
	return &clientConn{c: conn, br: bufio.NewReader(conn)}, nil
}

func (c *Client) putConn(cc *clientConn) {
	cc.c.SetDeadline(time.Time{})
	c.mu.Lock()
	if !c.closed && len(c.idle) < maxIdleConns {
		c.idle = append(c.idle, cc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cc.c.Close()
}

func (c *Client) counter(name, help string) *obs.Counter {
	return c.opts.Obs.Counter(name+`{addr="`+c.addr+`"}`, help)
}

func (c *Client) observe(outcome string, d time.Duration) {
	if c.opts.Obs == nil {
		return
	}
	c.opts.Obs.Counter(`netout_shard_rpc_total{addr="`+c.addr+`",outcome="`+outcome+`"}`,
		"Remote shard RPC attempts by shard address and outcome.").Inc()
	c.opts.Obs.Histogram(`netout_shard_rpc_seconds{addr="`+c.addr+`"}`,
		"Remote shard RPC attempt latency.", nil).Observe(d.Seconds())
}

// Call implements core.RemoteShard: one scattered shard request, retried
// and optionally hedged. A non-nil response with Err set is a shard-side
// failure the coordinator classifies; a returned error is transport-level
// loss (or an interrupt) after retries were exhausted.
func (c *Client) Call(ctx context.Context, req *core.ShardRequest, b *core.ShardBroadcast) (*core.ShardResponse, error) {
	if c.opts.Hedge <= 0 {
		return c.callRetry(ctx, req, b)
	}
	type outcome struct {
		resp *core.ShardResponse
		err  error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered for both racers: the loser's send never blocks, so its
	// goroutine exits even though nobody reads it.
	ch := make(chan outcome, 2)
	launch := func() {
		go func() {
			resp, err := c.callRetry(hctx, req, b)
			ch <- outcome{resp, err}
		}()
	}
	launch()
	inFlight := 1
	hedge := time.NewTimer(c.opts.Hedge)
	defer hedge.Stop()
	var firstErr error
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				return o.resp, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-hedge.C:
			if c.opts.Obs != nil {
				c.counter(`netout_shard_rpc_hedges_total`, "Hedged (duplicate) remote shard RPCs launched.").Inc()
			}
			launch()
			inFlight++
		}
	}
}

// retryable reports whether one attempt's outcome warrants another try:
// transport loss, or the shard shedding under admission control. The
// response case matters — a shed is a well-formed reply, not an error, and
// backing off then retrying is exactly what RESOURCE_EXHAUSTED asks for.
func retryable(resp *core.ShardResponse, err error) bool {
	if err != nil {
		return xerr.CodeOf(err) == xerr.Unavailable
	}
	return resp.Err != "" && resp.Code == xerr.ResourceExhausted
}

func (c *Client) callRetry(ctx context.Context, req *core.ShardRequest, b *core.ShardBroadcast) (*core.ShardResponse, error) {
	backoff := c.opts.Backoff
	for attempt := 0; ; attempt++ {
		resp, err := c.callOnce(ctx, req, b)
		if !retryable(resp, err) || attempt+1 >= c.opts.MaxAttempts {
			return resp, err
		}
		if c.opts.Obs != nil {
			c.counter(`netout_shard_rpc_retries_total`, "Remote shard RPC retries after a retryable failure.").Inc()
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, xerr.Interrupt(ctx.Err())
		case <-t.C:
		}
		backoff *= 2
	}
}

func (c *Client) callOnce(ctx context.Context, req *core.ShardRequest, b *core.ShardBroadcast) (*core.ShardResponse, error) {
	start := time.Now()
	resp, err := c.attempt(ctx, req, b)
	if c.opts.Obs != nil {
		out := "ok"
		switch {
		case err != nil:
			out = string(xerr.CodeOf(err))
		case resp.Err != "":
			out = string(resp.Code)
		}
		c.observe(out, time.Since(start))
	}
	return resp, err
}

func (c *Client) attempt(ctx context.Context, req *core.ShardRequest, b *core.ShardBroadcast) (*core.ShardResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, xerr.Interrupt(err)
	}
	cc, err := c.getConn()
	if err != nil {
		return nil, err
	}
	// Deadline propagation: the shard receives the REMAINING budget (clock-
	// skew safe), and the connection read deadline runs DrainGrace past it
	// so the shard's post-expiry degraded reply can still land. Without a
	// caller deadline, CallTimeout backstops a hung shard.
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			c.putConn(cc)
			return nil, xerr.Interrupt(context.DeadlineExceeded)
		}
	}
	connDL := budget
	if connDL <= 0 {
		connDL = c.opts.CallTimeout
	}
	if c.opts.DrainGrace > 0 {
		connDL += c.opts.DrainGrace
	}
	cc.c.SetDeadline(time.Now().Add(connDL))
	// Cancellation watchdog: an expired deadline is already covered by the
	// connection deadline above, but an explicit cancel must unblock a
	// pending read NOW — nobody is waiting for the reply.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			if ctx.Err() == context.Canceled {
				cc.c.SetDeadline(time.Now())
			}
		case <-watchdogDone:
		}
	}()

	wire := &Request{Req: req, Broadcast: b, Deadline: budget}
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		wire.Traceparent = sc.Traceparent()
	}
	if err := WriteRequest(cc.c, wire); err != nil {
		cc.c.Close()
		return nil, c.classify(ctx, err)
	}
	resp, err := ReadResponse(cc.br)
	if err != nil {
		cc.c.Close()
		return nil, c.classify(ctx, err)
	}
	c.putConn(cc)
	return resp, nil
}

// classify maps a transport fault to its true cause: an I/O error provoked
// by our own watchdog or an expired budget is the context's interrupt, not
// the shard's unavailability; a clean EOF between request and reply is the
// shard dying mid-call (io.EOF is only "clean" BETWEEN frames), which is
// UNAVAILABLE — retryable, and degradable at the coordinator.
func (c *Client) classify(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return xerr.Interrupt(ctxErr)
	}
	if errors.Is(err, io.EOF) {
		return xerr.Wrap(xerr.Unavailable, err)
	}
	return err
}
