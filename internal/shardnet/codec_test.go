package shardnet

// Codec round-trip properties: every field of both message kinds must
// survive encode→decode exactly, including the payloads the determinism
// contract cares about most — NaN and ±Inf float bits — and the classified
// error triple for every taxonomy code. The decoder must reject, never
// panic on and never over-allocate for corrupt frames.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"netout/internal/core"
	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
	"netout/internal/xerr"
)

// floatsEqual compares float slices by their IEEE-754 bits, so NaN == NaN
// and -0.0 != +0.0 — the comparison the wire contract is written against.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func vecEqual(a, b sparse.Vector) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			return false
		}
	}
	return floatsEqual(a.Val, b.Val)
}

func vecsEqual(a, b []sparse.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !vecEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// awkwardFloats is the float palette every generated message draws from:
// the values a lossy or text-based codec would mangle first.
var awkwardFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, -1e-308, 1e308,
	math.NaN(), math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64,
}

func randFloats(r *rand.Rand, n int) []float64 {
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = awkwardFloats[r.Intn(len(awkwardFloats))]
	}
	return fs
}

func randVector(r *rand.Rand) sparse.Vector {
	n := r.Intn(5)
	if n == 0 {
		return sparse.Vector{}
	}
	v := sparse.Vector{Idx: make([]int32, n), Val: randFloats(r, n)}
	for i := range v.Idx {
		v.Idx[i] = int32(r.Intn(1 << 20))
	}
	return v
}

func randRequest(r *rand.Rand) *Request {
	req := &core.ShardRequest{
		Version: core.ShardProtocolVersion,
		QueryID: strings.Repeat("q", r.Intn(20)),
		Shard:   r.Intn(8),
		TopK:    r.Intn(100),
		Measure: core.Measure(r.Intn(3)),
		Combine: core.Combination(r.Intn(2)),
	}
	nPaths := 1 + r.Intn(3)
	req.Weights = randFloats(r, nPaths)
	for i := 0; i < nPaths; i++ {
		key := make([]byte, 2+r.Intn(4))
		for j := range key {
			key[j] = byte(r.Intn(4))
		}
		req.Paths = append(req.Paths, metapath.FromKey(string(key)))
	}
	for i := 0; i < r.Intn(10); i++ {
		req.Candidates = append(req.Candidates, hin.VertexID(r.Intn(1<<20)))
	}
	b := &core.ShardBroadcast{Stride: int32(r.Intn(1 << 20))}
	for i := 0; i < 1+r.Intn(3); i++ {
		st := core.ShardRefState{Agg: randVector(r)}
		for j := 0; j < r.Intn(3); j++ {
			st.Refs = append(st.Refs, randVector(r))
		}
		st.RefVis = randFloats(r, len(st.Refs))
		b.Refs = append(b.Refs, st)
	}
	return &Request{
		Req:         req,
		Broadcast:   b,
		Deadline:    time.Duration(r.Int63n(int64(time.Hour))),
		Traceparent: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
	}
}

func requestsEqual(t *testing.T, a, b *Request) {
	t.Helper()
	ra, rb := a.Req, b.Req
	if ra.Version != rb.Version || ra.QueryID != rb.QueryID || ra.Shard != rb.Shard ||
		ra.TopK != rb.TopK || ra.Measure != rb.Measure || ra.Combine != rb.Combine {
		t.Fatalf("request header diverges:\n%+v\n%+v", ra, rb)
	}
	if !floatsEqual(ra.Weights, rb.Weights) {
		t.Fatalf("weights diverge: %v vs %v", ra.Weights, rb.Weights)
	}
	if len(ra.Paths) != len(rb.Paths) {
		t.Fatalf("path count diverges: %d vs %d", len(ra.Paths), len(rb.Paths))
	}
	for i := range ra.Paths {
		if ra.Paths[i].Key() != rb.Paths[i].Key() {
			t.Fatalf("path %d diverges: %q vs %q", i, ra.Paths[i].Key(), rb.Paths[i].Key())
		}
	}
	if len(ra.Candidates) != len(rb.Candidates) {
		t.Fatalf("candidate count diverges")
	}
	for i := range ra.Candidates {
		if ra.Candidates[i] != rb.Candidates[i] {
			t.Fatalf("candidate %d diverges", i)
		}
	}
	ba, bb := a.Broadcast, b.Broadcast
	if ba.Stride != bb.Stride || len(ba.Refs) != len(bb.Refs) {
		t.Fatalf("broadcast shape diverges")
	}
	for i := range ba.Refs {
		if !vecEqual(ba.Refs[i].Agg, bb.Refs[i].Agg) ||
			!vecsEqual(ba.Refs[i].Refs, bb.Refs[i].Refs) ||
			!floatsEqual(ba.Refs[i].RefVis, bb.Refs[i].RefVis) {
			t.Fatalf("broadcast ref state %d diverges", i)
		}
	}
	if a.Deadline != b.Deadline || a.Traceparent != b.Traceparent {
		t.Fatalf("envelope diverges: %v/%q vs %v/%q", a.Deadline, a.Traceparent, b.Deadline, b.Traceparent)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		in := randRequest(r)
		var buf bytes.Buffer
		if err := WriteRequest(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		requestsEqual(t, in, out)
		if buf.Len() != 0 {
			t.Fatalf("round %d: %d bytes left after one frame", i, buf.Len())
		}
	}
}

func randResponse(r *rand.Rand) *core.ShardResponse {
	resp := &core.ShardResponse{
		Version:    core.ShardProtocolVersion,
		QueryID:    strings.Repeat("r", r.Intn(20)),
		Shard:      r.Intn(8),
		Candidates: r.Intn(1000),
		Done:       r.Intn(1000),
		Duration:   time.Duration(r.Int63n(int64(time.Minute))),
	}
	for i := 0; i < r.Intn(8); i++ {
		resp.Entries = append(resp.Entries, core.Entry{
			Vertex: hin.VertexID(r.Intn(1 << 20)),
			Name:   strings.Repeat("n", r.Intn(12)),
			Score:  awkwardFloats[r.Intn(len(awkwardFloats))],
		})
	}
	for i := 0; i < r.Intn(6); i++ {
		resp.Skipped = append(resp.Skipped, hin.VertexID(r.Intn(1<<20)))
	}
	resp.Stats = core.MatStats{
		IndexedTime:      time.Duration(r.Int63n(int64(time.Second))),
		TraversalTime:    time.Duration(r.Int63n(int64(time.Second))),
		IndexedVectors:   r.Int63n(1 << 30),
		TraversedVectors: r.Int63n(1 << 30),
	}
	return resp
}

func responsesEqual(t *testing.T, a, b *core.ShardResponse) {
	t.Helper()
	if a.Version != b.Version || a.QueryID != b.QueryID || a.Shard != b.Shard ||
		a.Candidates != b.Candidates || a.Done != b.Done ||
		a.Err != b.Err || a.Code != b.Code || a.Kind != b.Kind ||
		a.Stats != b.Stats || a.Duration != b.Duration {
		t.Fatalf("response diverges:\n%+v\n%+v", a, b)
	}
	if len(a.Entries) != len(b.Entries) || len(a.Skipped) != len(b.Skipped) {
		t.Fatalf("response payload shape diverges")
	}
	for i := range a.Entries {
		if a.Entries[i].Vertex != b.Entries[i].Vertex || a.Entries[i].Name != b.Entries[i].Name ||
			math.Float64bits(a.Entries[i].Score) != math.Float64bits(b.Entries[i].Score) {
			t.Fatalf("entry %d diverges: %+v vs %+v", i, a.Entries[i], b.Entries[i])
		}
	}
	for i := range a.Skipped {
		if a.Skipped[i] != b.Skipped[i] {
			t.Fatalf("skip %d diverges", i)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		in := randResponse(r)
		var buf bytes.Buffer
		if err := WriteResponse(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		responsesEqual(t, in, out)
	}
}

// The classified error triple survives the wire for every taxonomy code and
// kind — this is what lets the coordinator reconstruct a remote failure
// with xerr.FromWire and apply the same degradation rules as in-process.
func TestResponseErrorTripleRoundTrip(t *testing.T) {
	codes := []xerr.Code{
		xerr.InvalidArgument, xerr.NotFound, xerr.ResourceExhausted,
		xerr.DeadlineExceeded, xerr.Canceled, xerr.Unavailable, xerr.Internal,
	}
	for _, code := range codes {
		for _, kind := range []xerr.Kind{xerr.KindFailure, xerr.KindDefect, xerr.KindInterrupt} {
			in := &core.ShardResponse{
				Version: core.ShardProtocolVersion,
				Err:     "boom: " + string(code),
				Code:    code,
				Kind:    kind,
			}
			var buf bytes.Buffer
			if err := WriteResponse(&buf, in); err != nil {
				t.Fatal(err)
			}
			out, err := ReadResponse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			responsesEqual(t, in, out)
			rec := xerr.FromWire(out.Code, out.Kind, out.Err)
			if xerr.CodeOf(rec) != code || xerr.KindOf(rec) != kind || rec.Error() != in.Err {
				t.Fatalf("FromWire(%s, %d) reconstructed %v", code, kind, rec)
			}
		}
	}
}

// Multiple frames on one stream decode in order — the per-connection serial
// request/response loop depends on exact framing.
func TestFramesAreSelfDelimiting(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	in := make([]*core.ShardResponse, 5)
	for i := range in {
		in[i] = randResponse(r)
		if err := WriteResponse(&buf, in[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range in {
		out, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		responsesEqual(t, in[i], out)
	}
	if _, err := ReadResponse(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read past last frame = %v, want io.EOF", err)
	}
}

// A clean EOF before any header byte is io.EOF (idle peer hang-up); a
// truncated header or body is a classified UNAVAILABLE transport fault.
func TestReadFrameEOFClassification(t *testing.T) {
	if _, err := ReadResponse(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
	if _, err := ReadResponse(bytes.NewReader([]byte{0, 0})); xerr.CodeOf(err) != xerr.Unavailable {
		t.Fatalf("truncated header = %v, want UNAVAILABLE", err)
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, &core.ShardResponse{Version: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponse(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); xerr.CodeOf(err) != xerr.Unavailable {
		t.Fatalf("truncated body = %v, want UNAVAILABLE", err)
	}
}

// Protocol violations — oversized or zero length prefixes, a response frame
// where a request is expected — are INTERNAL, distinct from transport loss.
func TestReadFrameRejectsProtocolViolations(t *testing.T) {
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrameBytes+1)
	if _, err := ReadResponse(bytes.NewReader(huge)); xerr.CodeOf(err) != xerr.Internal {
		t.Fatalf("oversize length = %v, want INTERNAL", err)
	}
	if _, err := ReadResponse(bytes.NewReader(make([]byte, 4))); xerr.CodeOf(err) != xerr.Internal {
		t.Fatalf("zero length = %v, want INTERNAL", err)
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, &core.ShardResponse{Version: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(bytes.NewReader(buf.Bytes())); xerr.CodeOf(err) != xerr.Internal {
		t.Fatalf("kind mismatch = %v, want INTERNAL", err)
	}
}

// corrupt decodes random mutations of valid frames: the decoder must return
// a typed error or a message, never panic, and a forged element count must
// not drive an allocation beyond the frame's own size.
func TestDecoderSurvivesCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var reqBuf, respBuf bytes.Buffer
	if err := WriteRequest(&reqBuf, randRequest(r)); err != nil {
		t.Fatal(err)
	}
	if err := WriteResponse(&respBuf, randResponse(r)); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []struct {
		name  string
		frame []byte
		read  func(io.Reader) error
	}{
		{"request", reqBuf.Bytes(), func(rd io.Reader) error { _, err := ReadRequest(rd); return err }},
		{"response", respBuf.Bytes(), func(rd io.Reader) error { _, err := ReadResponse(rd); return err }},
	} {
		t.Run(seed.name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				frame := append([]byte(nil), seed.frame...)
				switch r.Intn(3) {
				case 0: // flip random bytes (past the length prefix, which readFrame owns)
					for j := 0; j <= r.Intn(4); j++ {
						frame[4+r.Intn(len(frame)-4)] ^= byte(1 + r.Intn(255))
					}
				case 1: // truncate, fixing the length prefix so the decoder sees it
					n := 5 + r.Intn(len(frame)-5)
					frame = frame[:n]
					binary.BigEndian.PutUint32(frame, uint32(n-4))
				case 2: // forge an interior count to a huge value
					off := 5 + r.Intn(len(frame)-9)
					binary.BigEndian.PutUint32(frame[off:], uint32(1<<31-1))
				}
				err := seed.read(bytes.NewReader(frame))
				if err == nil {
					continue // a mutation can still be a valid frame
				}
				if c := xerr.CodeOf(err); c != xerr.Internal && c != xerr.Unavailable {
					t.Fatalf("iteration %d: corrupt frame returned unclassified error %v", i, err)
				}
			}
		})
	}
}

// FuzzReadRequest and FuzzReadResponse run the decoders over arbitrary
// bytes. `go test` exercises the seeds; `go test -fuzz` explores.
func FuzzReadRequest(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, randRequest(rand.New(rand.NewSource(5)))); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadRequest(bytes.NewReader(data))
	})
}

func FuzzReadResponse(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, randResponse(rand.New(rand.NewSource(6)))); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadResponse(bytes.NewReader(data))
	})
}
