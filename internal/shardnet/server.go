package shardnet

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netout/internal/core"
	"netout/internal/hin"
	"netout/internal/obs"
	"netout/internal/xerr"
)

// ServerOptions configures a shard server.
type ServerOptions struct {
	// Workers bounds concurrent request execution: the server holds this
	// many materializer views, and a request runs only while it holds one.
	// Default 4.
	Workers int
	// Queue is how many admitted requests may wait for a view beyond the
	// Workers executing; one more arriving is shed with a typed
	// RESOURCE_EXHAUSTED response. Default 2×Workers.
	Queue int
	// Obs, if set, receives the server's metrics (requests by outcome,
	// sheds, execution latency).
	Obs *obs.Registry
	// Logf, if set, receives connection-level diagnostics (accept and
	// decode failures). Default log.Printf-compatible no-op.
	Logf func(format string, args ...any)
}

// Server hosts one graph slice behind the shardnet protocol: an accept loop
// over a listener, one goroutine per connection reading request frames, a
// bounded view pool as the execution limit, and a slots channel as the
// admission queue. Every decoded request gets exactly one response frame —
// executed, or shed with RESOURCE_EXHAUSTED — mirroring the in-process rule
// that shards always reply.
type Server struct {
	g     *hin.Graph
	opts  ServerOptions
	views chan core.Materializer
	slots chan struct{}

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	sheds *obs.Counter // nil without Obs

	// Test hooks (same-package tests only). gate, when set, runs while the
	// request holds its view — it lets tests hold a request mid-execution.
	// forgeVersion, when non-zero, overwrites the Version of every response,
	// simulating a mixed-revision fleet for skew tests.
	gate         func(req *core.ShardRequest)
	forgeVersion int
}

// NewServer builds a shard server over g with Workers private views of mat.
// The materializer must support concurrent views (core.NewView), exactly
// like the in-process shard tier's runners.
func NewServer(g *hin.Graph, mat core.Materializer, opts ServerOptions) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Queue <= 0 {
		opts.Queue = 2 * opts.Workers
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		g:     g,
		opts:  opts,
		views: make(chan core.Materializer, opts.Workers),
		slots: make(chan struct{}, opts.Workers+opts.Queue),
		conns: make(map[net.Conn]struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		view, err := core.NewView(mat)
		if err != nil {
			return nil, err
		}
		s.views <- view
	}
	if opts.Obs != nil {
		s.sheds = opts.Obs.Counter("netout_shardsrv_shed_total",
			"Shard requests shed by admission control with RESOURCE_EXHAUSTED.")
		opts.Obs.GaugeFunc("netout_shardsrv_workers", "Shard server view-pool size.",
			func() float64 { return float64(opts.Workers) })
	}
	return s, nil
}

// Serve accepts connections on lis until Close. It returns nil after a
// clean Close, or the fatal accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return xerr.Wrap(xerr.Unavailable, err)
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, severs open connections and waits for in-flight
// request handlers to finish. Idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// serveConn reads request frames off one connection and answers each in
// order. Requests on one connection are serial by design — the client pools
// connections, so concurrency across queries arrives as concurrent
// connections, each bounded by the shared view pool.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	for {
		wire, err := ReadRequest(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				s.opts.Logf("shardnet: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.handle(wire)
		if s.forgeVersion != 0 {
			resp.Version = s.forgeVersion
		}
		if err := WriteResponse(conn, resp); err != nil {
			if !s.closed.Load() {
				s.opts.Logf("shardnet: %s: write: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// handle executes one decoded request: admission first (non-blocking slot
// acquire, shed with RESOURCE_EXHAUSTED when the queue is full), then a
// view from the bounded pool, then core.ServeShardRequest under the
// propagated deadline, trace identity and request ID.
func (s *Server) handle(wire *Request) *core.ShardResponse {
	start := time.Now()
	select {
	case s.slots <- struct{}{}:
	default:
		if s.sheds != nil {
			s.sheds.Inc()
		}
		s.observe("shed", time.Since(start))
		return shedResponse(wire.Req)
	}
	defer func() { <-s.slots }()

	view := <-s.views
	defer func() { s.views <- view }()

	ctx := context.Background()
	if wire.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wire.Deadline)
		defer cancel()
	}
	if wire.Req.QueryID != "" {
		ctx = obs.WithRequestID(ctx, wire.Req.QueryID)
	}
	if sc, ok := obs.ParseTraceparent(wire.Traceparent); ok {
		// The shard's work is a child span of the coordinator's query span,
		// so a distributed trace shows coordinator → shard edges.
		ctx = obs.WithSpanContext(ctx, sc.Child())
	}
	if s.gate != nil {
		s.gate(wire.Req)
	}
	resp := core.ServeShardRequest(ctx, s.g, view, wire.Req, wire.Broadcast)
	outcome := "ok"
	if resp.Err != "" {
		outcome = string(resp.Code)
	}
	s.observe(outcome, time.Since(start))
	return resp
}

func (s *Server) observe(outcome string, d time.Duration) {
	if s.opts.Obs == nil {
		return
	}
	s.opts.Obs.Counter(`netout_shardsrv_requests_total{outcome="`+outcome+`"}`,
		"Shard requests served by outcome.").Inc()
	s.opts.Obs.Histogram("netout_shardsrv_seconds",
		"Shard request service time (admission to response).", nil).Observe(d.Seconds())
}

// shedResponse is the typed admission-control rejection: a well-formed
// reply, not a dropped connection, so the coordinator can fold the shed
// into its Partial accounting (or the client can retry with backoff).
func shedResponse(req *core.ShardRequest) *core.ShardResponse {
	err := xerr.New(xerr.ResourceExhausted, "shardnet: shard overloaded, request shed")
	return &core.ShardResponse{
		Version:    core.ShardProtocolVersion,
		QueryID:    req.QueryID,
		Shard:      req.Shard,
		Candidates: len(req.Candidates),
		Err:        err.Error(),
		Code:       xerr.CodeOf(err),
		Kind:       xerr.KindOf(err),
	}
}
