package shardnet

// Network failure-mode tests over real TCP: shard servers on loopback
// listeners, real Dial'd clients, and an engine scattering over them. The
// contracts under test are the acceptance criteria of the network tier —
// bit-identical results across the process boundary, exact-prefix Partial
// when a shard process dies mid-gather, typed admission sheds, retry and
// hedging, protocol-skew rejection, and deadline propagation. All tests
// here must pass under `go test -race -cpu 1,4`.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netout/internal/core"
	"netout/internal/hin"
	"netout/internal/obs"
	"netout/internal/xerr"
)

const netQuery = `FIND OUTLIERS FROM author JUDGED BY author.paper.venue;`

// testGraph builds a small deterministic bibliographic network, the same
// shape the core shard tests use. Every shard server in a test hosts its
// own copy, exactly as a real fleet loads the same network per process.
func testGraph(t *testing.T) *hin.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	s := hin.MustSchema("author", "paper", "venue", "term")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	b := hin.NewBuilder(s)
	var authors, venues, terms []hin.VertexID
	for i := 0; i < 12; i++ {
		authors = append(authors, b.MustAddVertex(a, fmt.Sprintf("A%d", i)))
	}
	for i := 0; i < 4; i++ {
		venues = append(venues, b.MustAddVertex(v, fmt.Sprintf("V%d", i)))
	}
	for i := 0; i < 6; i++ {
		terms = append(terms, b.MustAddVertex(tm, fmt.Sprintf("T%d", i)))
	}
	for i := 0; i < 25; i++ {
		pp := b.MustAddVertex(p, fmt.Sprintf("P%d", i))
		for j := 0; j <= r.Intn(3); j++ {
			b.MustAddEdge(pp, authors[r.Intn(len(authors))])
		}
		b.MustAddEdge(pp, venues[r.Intn(len(venues))])
		for j := 0; j <= r.Intn(4); j++ {
			b.MustAddEdge(pp, terms[r.Intn(len(terms))])
		}
	}
	return b.Build()
}

// startShard boots one shard server on a loopback listener and returns it
// with its address. The caller owns Close (ordering matters for tests that
// gate handlers).
func startShard(t *testing.T, g *hin.Graph, opts ServerOptions) (*Server, string) {
	t.Helper()
	srv, err := NewServer(g, core.NewBaseline(g), opts)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	return srv, lis.Addr().String()
}

func fleetOf(t *testing.T, g *hin.Graph, n int, copts ClientOptions) ([]core.RemoteShard, []*Server, []*Client) {
	t.Helper()
	remotes := make([]core.RemoteShard, n)
	servers := make([]*Server, n)
	clients := make([]*Client, n)
	for i := range remotes {
		srv, addr := startShard(t, g, ServerOptions{})
		c := Dial(addr, copts)
		servers[i], clients[i], remotes[i] = srv, c, c
	}
	return remotes, servers, clients
}

func closeFleet(servers []*Server, clients []*Client) {
	for _, c := range clients {
		c.Close()
	}
	for _, s := range servers {
		s.Close()
	}
}

func bitIdentical(a, b *core.Result) bool {
	if len(a.Entries) != len(b.Entries) || len(a.Skipped) != len(b.Skipped) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i].Vertex != b.Entries[i].Vertex ||
			math.Float64bits(a.Entries[i].Score) != math.Float64bits(b.Entries[i].Score) {
			return false
		}
	}
	for i := range a.Skipped {
		if a.Skipped[i] != b.Skipped[i] {
			return false
		}
	}
	return true
}

// minimalRequest is a well-formed zero-work request (no paths, no
// candidates) for transport-focused tests that never need real scoring.
func minimalRequest(shard int) *core.ShardRequest {
	return &core.ShardRequest{
		Version: core.ShardProtocolVersion,
		QueryID: "transport-test",
		Shard:   shard,
		Measure: core.MeasureNetOut,
		Combine: core.CombineAverage,
	}
}

// A query scattered over out-of-process shards — request, broadcast and
// reply all crossing real TCP — is bit-identical to unsharded execution
// for every measure and combination, and both sides' metrics register.
func TestNetworkShardsBitIdentical(t *testing.T) {
	g := testGraph(t)
	serverReg, clientReg := obs.NewRegistry(), obs.NewRegistry()
	queries := []string{
		netQuery,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;`,
		`FIND OUTLIERS FROM author JUDGED BY author.paper.venue : 2, author.paper.term : 1;`,
	}
	var remotes []core.RemoteShard
	var servers []*Server
	for i := 0; i < 2; i++ {
		srv, addr := startShard(t, g, ServerOptions{Obs: serverReg})
		defer srv.Close()
		c := Dial(addr, ClientOptions{Obs: clientReg})
		defer c.Close()
		servers = append(servers, srv)
		remotes = append(remotes, c)
	}
	_ = servers
	for _, m := range []core.Measure{core.MeasureNetOut, core.MeasurePathSim, core.MeasureCosSim} {
		for _, comb := range []core.Combination{core.CombineAverage, core.CombineConcat} {
			plain := core.NewEngine(g, core.WithMeasure(m), core.WithCombination(comb))
			eng := core.NewEngine(g, core.WithMeasure(m), core.WithCombination(comb),
				core.WithRemoteShards(remotes...))
			for _, src := range queries {
				want, err1 := plain.Execute(src)
				got, err2 := eng.Execute(src)
				if err1 != nil || err2 != nil {
					t.Fatalf("measure %v combine %v %q: %v / %v", m, comb, src, err1, err2)
				}
				if !bitIdentical(want, got) {
					t.Fatalf("measure %v combine %v diverges over TCP on %q:\nlocal  %+v\nremote %+v",
						m, comb, src, want.Entries, got.Entries)
				}
				if got.Partial {
					t.Fatalf("healthy fleet produced a partial result")
				}
			}
			eng.Close()
			plain.Close()
		}
	}
	var buf bytes.Buffer
	clientReg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "netout_shard_rpc_total") {
		t.Error("client registry missing netout_shard_rpc_total")
	}
	buf.Reset()
	serverReg.WritePrometheus(&buf)
	for _, m := range []string{"netout_shardsrv_requests_total", "netout_shardsrv_seconds", "netout_shardsrv_workers"} {
		if !strings.Contains(buf.String(), m) {
			t.Errorf("server registry missing %s", m)
		}
	}
}

// Acceptance criterion: killing one shard process mid-query yields
// Partial=true with the surviving shards' exact (bit-identical) scores.
// The victim's handler is gated mid-execution, the server is closed —
// severing its connections and listener, exactly what a process death does
// to the coordinator — and the query must degrade, not fail.
func TestNetworkShardKilledMidQueryDegradesToExactPrefix(t *testing.T) {
	g := testGraph(t)
	want, err := core.NewEngine(g, core.WithMeasure(core.MeasureNetOut)).Execute(netQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantScore := make(map[hin.VertexID]uint64, len(want.Entries))
	for _, e := range want.Entries {
		wantScore[e.Vertex] = math.Float64bits(e.Score)
	}

	remotes, servers, clients := fleetOf(t, g, 3, ClientOptions{MaxAttempts: 2, Backoff: time.Millisecond})
	victim := servers[1]
	reached := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	victim.gate = func(*core.ShardRequest) {
		if once.CompareAndSwap(false, true) {
			close(reached)
			<-release
		}
	}

	eng := core.NewEngine(g, core.WithMeasure(core.MeasureNetOut), core.WithRemoteShards(remotes...))
	defer eng.Close()
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.Execute(netQuery)
		done <- outcome{res, err}
	}()

	<-reached
	// Kill the shard process: listener and connections sever immediately;
	// Close blocks on the gated handler, so it runs on its own goroutine.
	closed := make(chan struct{})
	go func() {
		victim.Close()
		close(closed)
	}()

	o := <-done
	if o.err != nil {
		t.Fatalf("killed shard failed the query instead of degrading: %v", o.err)
	}
	close(release)
	<-closed
	closeFleet(servers, clients)

	res := o.res
	if !res.Partial {
		t.Fatal("Partial = false after killing a shard mid-query")
	}
	if len(res.Shards) != 3 {
		t.Fatalf("shard accounting = %+v", res.Shards)
	}
	covered := 0
	for i, st := range res.Shards {
		if i == 1 {
			if st.Done != 0 || !st.Partial || st.Err == "" {
				t.Fatalf("victim accounting = %+v, want Done 0 with classified error", st)
			}
			continue
		}
		if st.Partial || st.Done != st.Candidates {
			t.Fatalf("surviving shard %d accounting = %+v, want complete", i, st)
		}
		covered += st.Candidates
	}
	if got := len(res.Entries) + len(res.Skipped); got != covered {
		t.Fatalf("partial covers %d candidates, want the survivors' %d", got, covered)
	}
	for _, e := range res.Entries {
		bits, ok := wantScore[e.Vertex]
		if !ok || bits != math.Float64bits(e.Score) {
			t.Fatalf("surviving score for %q not bit-identical to unsharded", e.Name)
		}
	}
}

// A shard server stamped with a foreign protocol revision fails the query
// with a typed INTERNAL skew error naming the shard's address — end to end
// over TCP, the mixed-revision-fleet scenario.
func TestNetworkForgedVersionSkewFailsQuery(t *testing.T) {
	g := testGraph(t)
	remotes, servers, clients := fleetOf(t, g, 2, ClientOptions{})
	defer closeFleet(servers, clients)
	servers[1].forgeVersion = core.ShardProtocolVersion + 7

	eng := core.NewEngine(g, core.WithRemoteShards(remotes...))
	defer eng.Close()
	_, err := eng.Execute(netQuery)
	if err == nil {
		t.Fatal("mixed-revision fleet merged silently; want a skew failure")
	}
	if xerr.CodeOf(err) != xerr.Internal {
		t.Fatalf("skew error code = %v (%v), want INTERNAL", xerr.CodeOf(err), err)
	}
	if !strings.Contains(err.Error(), "protocol skew") || !strings.Contains(err.Error(), clients[1].Addr()) {
		t.Fatalf("skew error %q does not name the offense and the offender", err)
	}
}

// Admission control: with every worker and queue slot held, the next
// request is shed with a well-formed RESOURCE_EXHAUSTED reply (not a
// dropped connection), and the shed counter registers.
func TestNetworkAdmissionShed(t *testing.T) {
	g := testGraph(t)
	reg := obs.NewRegistry()
	srv, addr := startShard(t, g, ServerOptions{Workers: 1, Queue: 1, Obs: reg})
	defer srv.Close()
	release := make(chan struct{})
	defer close(release) // before srv.Close in LIFO order: parked handlers drain first
	reached := make(chan struct{})
	var once atomic.Bool
	srv.gate = func(*core.ShardRequest) {
		if once.CompareAndSwap(false, true) {
			close(reached)
		}
		<-release
	}

	c := Dial(addr, ClientOptions{MaxAttempts: 1})
	defer c.Close()
	// Park one request mid-execution (holds worker slot + view)...
	parked := make(chan struct{})
	go func() {
		c.Call(context.Background(), minimalRequest(0), nil)
		close(parked)
	}()
	<-reached
	// ...then fire requests until one is shed. A request that sneaks into
	// the queue slot parks (its client side times out and moves on); once
	// worker and queue are both full, the next one must shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no shed observed with worker and queue saturated")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		resp, err := c.Call(ctx, minimalRequest(0), nil)
		cancel()
		if err != nil {
			continue // parked in the queue slot; client gave up
		}
		if resp.Err != "" && resp.Code == xerr.ResourceExhausted {
			break // the typed shed
		}
		t.Fatalf("saturated shard answered %+v, want RESOURCE_EXHAUSTED shed", resp)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "netout_shardsrv_shed_total") {
		t.Error("shed counter not registered")
	}
	_ = parked
}

// A shard dropping the connection between request and reply is retried on a
// fresh connection; the call succeeds without the caller seeing the drop.
func TestClientRetriesAfterConnDrop(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var conns int32
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			n := atomic.AddInt32(&conns, 1)
			go func(conn net.Conn, n int32) {
				defer conn.Close()
				wire, err := ReadRequest(conn)
				if err != nil {
					return
				}
				if n == 1 {
					return // drop without replying — mid-call EOF at the client
				}
				WriteResponse(conn, &core.ShardResponse{
					Version: core.ShardProtocolVersion,
					QueryID: wire.Req.QueryID,
					Shard:   wire.Req.Shard,
				})
			}(conn, n)
		}
	}()

	reg := obs.NewRegistry()
	c := Dial(lis.Addr().String(), ClientOptions{MaxAttempts: 3, Backoff: time.Millisecond, Obs: reg})
	defer c.Close()
	resp, err := c.Call(context.Background(), minimalRequest(0), nil)
	if err != nil {
		t.Fatalf("Call after conn drop: %v", err)
	}
	if resp.Err != "" || resp.Version != core.ShardProtocolVersion {
		t.Fatalf("reply = %+v", resp)
	}
	if got := atomic.LoadInt32(&conns); got != 2 {
		t.Fatalf("server saw %d connections, want 2 (drop + retry)", got)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "netout_shard_rpc_retries_total") {
		t.Error("retry counter not registered")
	}
}

// Hedging: when the first attempt stalls, a hedge launches after the hedge
// delay and the call returns the fast replica's answer. The gated first
// handler never completes until the test releases it, so a successful
// return proves the hedge raced past it.
func TestClientHedgedRequestWinsOverStall(t *testing.T) {
	g := testGraph(t)
	srv, addr := startShard(t, g, ServerOptions{})
	defer srv.Close()
	release := make(chan struct{})
	defer close(release)
	var first atomic.Bool
	srv.gate = func(*core.ShardRequest) {
		if first.CompareAndSwap(false, true) {
			<-release
		}
	}

	reg := obs.NewRegistry()
	c := Dial(addr, ClientOptions{Hedge: 20 * time.Millisecond, Obs: reg})
	defer c.Close()
	resp, err := c.Call(context.Background(), minimalRequest(0), nil)
	if err != nil {
		t.Fatalf("hedged call: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("hedged call answered %+v", resp)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "netout_shard_rpc_hedges_total") {
		t.Error("hedge counter not registered")
	}
}

// An expired or cancelled context never touches the network: the call
// returns the context's own interrupt.
func TestClientContextInterrupt(t *testing.T) {
	c := Dial("127.0.0.1:1", ClientOptions{}) // nothing listens; must not matter
	defer c.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.Call(ctx, minimalRequest(0), nil); xerr.CodeOf(err) != xerr.DeadlineExceeded {
		t.Fatalf("expired ctx = %v, want DEADLINE_EXCEEDED", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.Call(ctx2, minimalRequest(0), nil); xerr.CodeOf(err) != xerr.Canceled {
		t.Fatalf("cancelled ctx = %v, want CANCELED", err)
	}
}

// Deadline propagation end to end: a query deadline expires while one shard
// is stalled; the stalled shard's loss is classified as the deadline, the
// query degrades to the survivors' exact prefix, and nothing hangs past the
// drain grace.
func TestNetworkDeadlinePropagation(t *testing.T) {
	g := testGraph(t)
	want, err := core.NewEngine(g, core.WithMeasure(core.MeasureNetOut)).Execute(netQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantScore := make(map[hin.VertexID]uint64, len(want.Entries))
	for _, e := range want.Entries {
		wantScore[e.Vertex] = math.Float64bits(e.Score)
	}

	remotes, servers, clients := fleetOf(t, g, 2,
		ClientOptions{MaxAttempts: 1, DrainGrace: 200 * time.Millisecond})
	release := make(chan struct{})
	var once atomic.Bool
	servers[1].gate = func(*core.ShardRequest) {
		if once.CompareAndSwap(false, true) {
			<-release
		}
	}

	eng := core.NewEngine(g, core.WithMeasure(core.MeasureNetOut), core.WithRemoteShards(remotes...))
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := eng.ExecuteContext(ctx, netQuery)
	elapsed := time.Since(start)
	close(release)
	closeFleet(servers, clients)
	if err != nil {
		t.Fatalf("deadline on one shard failed the query instead of degrading: %v", err)
	}
	if !res.Partial {
		t.Fatal("Partial = false with one shard past the deadline")
	}
	if res.Shards[1].Done != 0 || !res.Shards[1].Partial {
		t.Fatalf("stalled shard accounting = %+v", res.Shards[1])
	}
	if res.Shards[0].Done != res.Shards[0].Candidates {
		t.Fatalf("healthy shard accounting = %+v", res.Shards[0])
	}
	for _, e := range res.Entries {
		bits, ok := wantScore[e.Vertex]
		if !ok || bits != math.Float64bits(e.Score) {
			t.Fatalf("surviving score for %q not bit-identical", e.Name)
		}
	}
	// Budget (250ms) + client drain grace (200ms) + scheduling headroom: the
	// stalled shard must not pin the query anywhere near the release above.
	if elapsed > 3*time.Second {
		t.Fatalf("query took %v; deadline did not propagate", elapsed)
	}
}

// A shard server answers requests on pooled connections across sequential
// queries — the idle pool re-reads from the SAME buffered reader, so any
// read-ahead loss would corrupt the second query's frames.
func TestConnectionReuseAcrossQueries(t *testing.T) {
	g := testGraph(t)
	remotes, servers, clients := fleetOf(t, g, 2, ClientOptions{})
	defer closeFleet(servers, clients)
	eng := core.NewEngine(g, core.WithMeasure(core.MeasureNetOut), core.WithRemoteShards(remotes...))
	defer eng.Close()
	var first *core.Result
	for i := 0; i < 5; i++ {
		res, err := eng.Execute(netQuery)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if first == nil {
			first = res
		} else if !bitIdentical(first, res) {
			t.Fatalf("query %d diverged from query 0 on reused connections", i)
		}
	}
}
