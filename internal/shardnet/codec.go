// Package shardnet is the network transport for the scatter–gather shard
// tier (ROADMAP item 1, distributed half): a length-prefixed binary codec
// over the PR 9 ShardRequest/ShardResponse protocol, a shard server hosting
// a graph slice with per-shard admission control, and a coordinator-side
// client with retry, hedging and deadline propagation implementing
// core.RemoteShard.
//
// # Wire format
//
// Every message is one frame: a big-endian uint32 payload length followed
// by the payload. The payload's first byte is the message kind (0x01
// request, 0x02 response); the rest is the fixed-order field encoding
// below. There is no negotiation and no per-field tagging — the protocol
// revision is carried IN the messages (core.ShardProtocolVersion) and both
// sides reject skew, so the encoding can stay positional and allocation-
// light.
//
//   - Integers are big-endian fixed width: uint64 two's complement for Go
//     ints (negative values round-trip), uint32 for element counts, one
//     byte for enums.
//   - Floats ship as their IEEE-754 bits (math.Float64bits), so NaN
//     payloads and ±Inf cross the wire bit-exactly — the determinism
//     contract extends across the network boundary.
//   - Strings and byte-slices are uint32 length + bytes.
//   - Sparse vectors are nnz + int32 indexes + float64 values.
//   - Meta-paths ship as their compact Key form (one byte per vertex type,
//     metapath.Path.Key / metapath.FromKey).
//   - Durations (deadline budget, shard wall time, materializer time) are
//     int64 nanoseconds. The deadline is a RELATIVE remaining budget, not
//     an absolute timestamp, so clock skew between coordinator and shard
//     hosts cannot stretch or collapse it.
//
// A request frame carries the ShardRequest, the reference broadcast
// (ShardBroadcast), the remaining deadline budget and the W3C traceparent;
// a response frame carries the ShardResponse including its classified
// Err/Code/Kind triple, which the coordinator reconstructs with
// xerr.FromWire.
//
// The decoder trusts nothing: every count is checked against the bytes
// actually remaining in the frame before allocation, so a hostile or
// corrupt peer can waste at most one frame's worth of memory
// (MaxFrameBytes), never an arbitrary allocation.
package shardnet

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"time"

	"netout/internal/core"
	"netout/internal/hin"
	"netout/internal/metapath"
	"netout/internal/sparse"
	"netout/internal/xerr"
)

// MaxFrameBytes bounds a single frame (64 MiB). A legitimate broadcast over
// a graph this repo targets is far below it; anything larger is a corrupt
// length prefix or a hostile peer, and the connection is torn down.
const MaxFrameBytes = 64 << 20

const (
	kindRequest  byte = 0x01
	kindResponse byte = 0x02
)

// Request is one decoded request frame: the shard's share of a scattered
// query plus the per-call envelope the transport adds on top of the core
// protocol.
type Request struct {
	Req       *core.ShardRequest
	Broadcast *core.ShardBroadcast
	// Deadline is the remaining time budget the coordinator granted
	// (0 = unbounded). Relative, so host clock skew is irrelevant.
	Deadline time.Duration
	// Traceparent is the W3C trace context of the coordinator's query span
	// ("" when the query runs untraced).
	Traceparent string
}

// ---- encoding --------------------------------------------------------------

func appendU8(b []byte, v byte) []byte { return append(b, v) }
func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}
func appendInt(b []byte, v int) []byte   { return appendU64(b, uint64(int64(v))) }
func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendFloats(b []byte, fs []float64) []byte {
	b = appendU32(b, uint32(len(fs)))
	for _, f := range fs {
		b = appendF64(b, f)
	}
	return b
}

func appendVertices(b []byte, vs []hin.VertexID) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(int32(v)))
	}
	return b
}

func appendVector(b []byte, v sparse.Vector) []byte {
	b = appendU32(b, uint32(len(v.Idx)))
	for _, i := range v.Idx {
		b = appendU32(b, uint32(i))
	}
	for _, x := range v.Val {
		b = appendF64(b, x)
	}
	return b
}

func appendVectors(b []byte, vs []sparse.Vector) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendVector(b, v)
	}
	return b
}

func appendRequest(b []byte, r *Request) []byte {
	req := r.Req
	b = appendU8(b, kindRequest)
	b = appendInt(b, req.Version)
	b = appendString(b, req.QueryID)
	b = appendInt(b, req.Shard)
	b = appendInt(b, req.TopK)
	b = appendU8(b, byte(req.Measure))
	b = appendU8(b, byte(req.Combine))
	b = appendFloats(b, req.Weights)
	b = appendU32(b, uint32(len(req.Paths)))
	for _, p := range req.Paths {
		b = appendString(b, p.Key())
	}
	b = appendVertices(b, req.Candidates)
	bc := r.Broadcast
	if bc == nil {
		bc = &core.ShardBroadcast{}
	}
	b = appendU32(b, uint32(int32(bc.Stride)))
	b = appendU32(b, uint32(len(bc.Refs)))
	for _, st := range bc.Refs {
		b = appendVector(b, st.Agg)
		b = appendVectors(b, st.Refs)
		b = appendFloats(b, st.RefVis)
	}
	b = appendI64(b, int64(r.Deadline))
	b = appendString(b, r.Traceparent)
	return b
}

func appendResponse(b []byte, resp *core.ShardResponse) []byte {
	b = appendU8(b, kindResponse)
	b = appendInt(b, resp.Version)
	b = appendString(b, resp.QueryID)
	b = appendInt(b, resp.Shard)
	b = appendU32(b, uint32(len(resp.Entries)))
	for _, e := range resp.Entries {
		b = appendU32(b, uint32(int32(e.Vertex)))
		b = appendString(b, e.Name)
		b = appendF64(b, e.Score)
	}
	b = appendVertices(b, resp.Skipped)
	b = appendInt(b, resp.Candidates)
	b = appendInt(b, resp.Done)
	b = appendString(b, resp.Err)
	b = appendString(b, string(resp.Code))
	b = appendU8(b, byte(resp.Kind))
	b = appendI64(b, int64(resp.Stats.IndexedTime))
	b = appendI64(b, int64(resp.Stats.TraversalTime))
	b = appendI64(b, resp.Stats.IndexedVectors)
	b = appendI64(b, resp.Stats.TraversedVectors)
	b = appendI64(b, int64(resp.Duration))
	return b
}

// ---- decoding --------------------------------------------------------------

// decoder walks one frame payload with sticky error state: the first
// malformed read poisons it and every later read returns zero values, so
// call sites stay linear and the single error check happens at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = xerr.Newf(xerr.Internal, "shardnet: malformed frame: "+format, args...)
	}
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.fail("need %d bytes, have %d", n, d.remaining())
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u8() byte {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *decoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}

func (d *decoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

func (d *decoder) int() int     { return int(int64(d.u64())) }
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads an element count and validates it against the bytes left in
// the frame at minBytes per element, so a forged count cannot drive an
// oversized allocation.
func (d *decoder) count(minBytes int) int {
	n := int(d.u32())
	if d.err == nil && minBytes > 0 && n > d.remaining()/minBytes {
		d.fail("count %d exceeds frame (%d bytes left)", n, d.remaining())
		return 0
	}
	return n
}

func (d *decoder) string() string {
	n := d.count(1)
	s := d.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

func (d *decoder) floats() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = d.f64()
	}
	return fs
}

func (d *decoder) vertices() []hin.VertexID {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]hin.VertexID, n)
	for i := range vs {
		vs[i] = hin.VertexID(int32(d.u32()))
	}
	return vs
}

func (d *decoder) vector() sparse.Vector {
	n := d.count(12) // 4 index + 8 value bytes per nnz
	if d.err != nil || n == 0 {
		return sparse.Vector{}
	}
	v := sparse.Vector{Idx: make([]int32, n), Val: make([]float64, n)}
	for i := range v.Idx {
		v.Idx[i] = int32(d.u32())
	}
	for i := range v.Val {
		v.Val[i] = d.f64()
	}
	return v
}

func (d *decoder) vectors() []sparse.Vector {
	n := d.count(4) // ≥ one empty-vector header each
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]sparse.Vector, n)
	for i := range vs {
		vs[i] = d.vector()
	}
	return vs
}

func decodeRequest(payload []byte) (*Request, error) {
	d := &decoder{b: payload}
	req := &core.ShardRequest{}
	req.Version = d.int()
	req.QueryID = d.string()
	req.Shard = d.int()
	req.TopK = d.int()
	req.Measure = core.Measure(d.u8())
	req.Combine = core.Combination(d.u8())
	req.Weights = d.floats()
	nPaths := d.count(4)
	if d.err == nil && nPaths > 0 {
		req.Paths = make([]metapath.Path, nPaths)
		for i := range req.Paths {
			req.Paths[i] = metapath.FromKey(d.string())
		}
	}
	req.Candidates = d.vertices()
	bc := &core.ShardBroadcast{Stride: int32(d.u32())}
	nRefs := d.count(12)
	if d.err == nil && nRefs > 0 {
		bc.Refs = make([]core.ShardRefState, nRefs)
		for i := range bc.Refs {
			bc.Refs[i] = core.ShardRefState{
				Agg:    d.vector(),
				Refs:   d.vectors(),
				RefVis: d.floats(),
			}
		}
	}
	r := &Request{Req: req, Broadcast: bc}
	r.Deadline = time.Duration(d.i64())
	r.Traceparent = d.string()
	if d.err == nil && d.remaining() != 0 {
		d.fail("%d trailing bytes", d.remaining())
	}
	return r, d.err
}

func decodeResponse(payload []byte) (*core.ShardResponse, error) {
	d := &decoder{b: payload}
	resp := &core.ShardResponse{}
	resp.Version = d.int()
	resp.QueryID = d.string()
	resp.Shard = d.int()
	nEntries := d.count(16)
	if d.err == nil && nEntries > 0 {
		resp.Entries = make([]core.Entry, nEntries)
		for i := range resp.Entries {
			resp.Entries[i] = core.Entry{
				Vertex: hin.VertexID(int32(d.u32())),
				Name:   d.string(),
				Score:  d.f64(),
			}
		}
	}
	resp.Skipped = d.vertices()
	resp.Candidates = d.int()
	resp.Done = d.int()
	resp.Err = d.string()
	resp.Code = xerr.Code(d.string())
	resp.Kind = xerr.Kind(d.u8())
	resp.Stats.IndexedTime = time.Duration(d.i64())
	resp.Stats.TraversalTime = time.Duration(d.i64())
	resp.Stats.IndexedVectors = d.i64()
	resp.Stats.TraversedVectors = d.i64()
	resp.Duration = time.Duration(d.i64())
	if d.err == nil && d.remaining() != 0 {
		d.fail("%d trailing bytes", d.remaining())
	}
	return resp, d.err
}

// ---- framing ---------------------------------------------------------------

// writeFrame sends one length-prefixed payload. The length prefix and
// payload go out in a single Write so the transport never interleaves a
// partial frame from concurrent misuse (callers still own per-connection
// serialization).
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return xerr.Newf(xerr.Internal, "shardnet: frame of %d bytes exceeds MaxFrameBytes", len(payload))
	}
	frame := make([]byte, 0, 4+len(payload))
	frame = appendU32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	if _, err := w.Write(frame); err != nil {
		return xerr.Wrap(xerr.Unavailable, err)
	}
	return nil
}

// readFrame reads one length-prefixed payload of the expected kind. A clean
// EOF before any byte of the length prefix returns io.EOF unwrapped — that
// is a peer closing an idle connection, not an error; everything else is
// classified (UNAVAILABLE for transport faults, INTERNAL for protocol
// violations).
func readFrame(r io.Reader, wantKind byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, xerr.Wrap(xerr.Unavailable, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrameBytes {
		return nil, xerr.Newf(xerr.Internal, "shardnet: frame length %d outside (0, %d]", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, xerr.Wrap(xerr.Unavailable, err)
	}
	if payload[0] != wantKind {
		return nil, xerr.Newf(xerr.Internal, "shardnet: frame kind 0x%02x, want 0x%02x", payload[0], wantKind)
	}
	return payload[1:], nil
}

// WriteRequest sends one request frame.
func WriteRequest(w io.Writer, r *Request) error {
	return writeFrame(w, appendRequest(nil, r))
}

// ReadRequest reads one request frame. io.EOF (unwrapped) means the peer
// closed the connection cleanly between requests.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := readFrame(r, kindRequest)
	if err != nil {
		return nil, err
	}
	return decodeRequest(payload)
}

// WriteResponse sends one response frame.
func WriteResponse(w io.Writer, resp *core.ShardResponse) error {
	return writeFrame(w, appendResponse(nil, resp))
}

// ReadResponse reads one response frame.
func ReadResponse(r io.Reader) (*core.ShardResponse, error) {
	payload, err := readFrame(r, kindResponse)
	if err != nil {
		return nil, err
	}
	return decodeResponse(payload)
}
