// Package hin implements the heterogeneous information network substrate:
// a directed multigraph with typed vertices and typed edges, per Definition 1
// of Kuck et al. (EDBT 2015). Vertices carry a type drawn from a small,
// closed schema and a display name; adjacency is stored in a compressed
// per-(vertex, neighbor-type) layout so that meta-path traversal touches
// only neighbors of the requested type.
package hin

import (
	"fmt"
	"sort"
)

// TypeID identifies a vertex type within a Schema. Schemas are small
// (a bibliographic network has 4 types), so a byte suffices.
type TypeID uint8

// InvalidType is returned by lookups for unknown type names.
const InvalidType TypeID = 0xFF

// MaxTypes is the maximum number of vertex types a schema may declare.
const MaxTypes = 64

// Schema describes the closed set of vertex types of a network and which
// ordered pairs of types may be connected by an edge. In a bibliographic
// network the types are paper, venue, author and term, with edges
// paper-venue, paper-author and paper-term.
type Schema struct {
	names   []string
	ids     map[string]TypeID
	allowed []bool // allowed[src*len(names)+dst]
}

// NewSchema creates a schema with the given vertex type names.
// Type names must be unique and non-empty.
func NewSchema(typeNames ...string) (*Schema, error) {
	if len(typeNames) == 0 {
		return nil, fmt.Errorf("hin: schema needs at least one vertex type")
	}
	if len(typeNames) > MaxTypes {
		return nil, fmt.Errorf("hin: too many vertex types (%d > %d)", len(typeNames), MaxTypes)
	}
	s := &Schema{
		names:   make([]string, len(typeNames)),
		ids:     make(map[string]TypeID, len(typeNames)),
		allowed: make([]bool, len(typeNames)*len(typeNames)),
	}
	for i, n := range typeNames {
		if n == "" {
			return nil, fmt.Errorf("hin: empty vertex type name at position %d", i)
		}
		if _, dup := s.ids[n]; dup {
			return nil, fmt.Errorf("hin: duplicate vertex type %q", n)
		}
		s.names[i] = n
		s.ids[n] = TypeID(i)
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically-known schemas in examples and tests.
func MustSchema(typeNames ...string) *Schema {
	s, err := NewSchema(typeNames...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumTypes reports the number of vertex types in the schema.
func (s *Schema) NumTypes() int { return len(s.names) }

// TypeName returns the name of type t. It panics if t is out of range.
func (s *Schema) TypeName(t TypeID) string { return s.names[t] }

// TypeByName resolves a type name to its TypeID. The second result is
// false if the name is not part of the schema.
func (s *Schema) TypeByName(name string) (TypeID, bool) {
	t, ok := s.ids[name]
	if !ok {
		return InvalidType, false
	}
	return t, true
}

// TypeNames returns the type names in declaration order.
func (s *Schema) TypeNames() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// AllowEdge declares that edges from type src to type dst are legal.
// Undirected relations should be declared in both directions; the
// convenience AllowLink does so.
func (s *Schema) AllowEdge(src, dst TypeID) {
	s.allowed[int(src)*len(s.names)+int(dst)] = true
}

// AllowLink declares a symmetric (undirected) relation between types a and b.
func (s *Schema) AllowLink(a, b TypeID) {
	s.AllowEdge(a, b)
	s.AllowEdge(b, a)
}

// EdgeAllowed reports whether edges from type src to type dst are legal.
func (s *Schema) EdgeAllowed(src, dst TypeID) bool {
	return s.allowed[int(src)*len(s.names)+int(dst)]
}

// AllowedFrom returns all destination types reachable from src, in order.
func (s *Schema) AllowedFrom(src TypeID) []TypeID {
	var out []TypeID
	for d := 0; d < len(s.names); d++ {
		if s.EdgeAllowed(src, TypeID(d)) {
			out = append(out, TypeID(d))
		}
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		names:   append([]string(nil), s.names...),
		ids:     make(map[string]TypeID, len(s.ids)),
		allowed: append([]bool(nil), s.allowed...),
	}
	for k, v := range s.ids {
		c.ids[k] = v
	}
	return c
}

// Equal reports whether two schemas declare the same types (in the same
// order) and the same allowed edges.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.names) != len(o.names) {
		return false
	}
	for i := range s.names {
		if s.names[i] != o.names[i] {
			return false
		}
	}
	for i := range s.allowed {
		if s.allowed[i] != o.allowed[i] {
			return false
		}
	}
	return true
}

// String renders the schema compactly, e.g.
// "schema{author, paper, term, venue; paper-author, paper-term, paper-venue}".
func (s *Schema) String() string {
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	out := "schema{"
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	out += ";"
	first := true
	for src := 0; src < len(s.names); src++ {
		for dst := 0; dst < len(s.names); dst++ {
			if s.allowed[src*len(s.names)+dst] {
				if !first {
					out += ","
				}
				out += fmt.Sprintf(" %s->%s", s.names[src], s.names[dst])
				first = false
			}
		}
	}
	return out + "}"
}
