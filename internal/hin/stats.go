package hin

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DegreeSummary describes the distribution of degrees from one vertex type
// toward another — the structural statistic the efficiency experiments
// depend on (meta-path fan-out is a product of these degrees).
type DegreeSummary struct {
	From, To  string
	Count     int // vertices of the From type
	Min, Max  int
	Mean      float64
	Median    int
	P90, P99  int
	ZeroShare float64 // fraction of From vertices with no To neighbor
	// GiniLike is a [0,1] concentration measure of the degree mass
	// (0 = perfectly uniform, →1 = all edges on one vertex); Zipfian
	// networks sit noticeably above uniform ones.
	GiniLike float64
}

// DegreeDistribution summarizes the degrees from vertices of type `from`
// toward neighbors of type `to`.
func (g *Graph) DegreeDistribution(from, to TypeID) DegreeSummary {
	s := DegreeSummary{
		From:  g.schema.TypeName(from),
		To:    g.schema.TypeName(to),
		Count: len(g.byType[from]),
		Min:   math.MaxInt,
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	degrees := make([]int, 0, s.Count)
	total := 0
	zero := 0
	for _, v := range g.byType[from] {
		d := g.Degree(v, to)
		degrees = append(degrees, d)
		total += d
		if d == 0 {
			zero++
		}
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	sort.Ints(degrees)
	s.Mean = float64(total) / float64(s.Count)
	s.Median = degrees[s.Count/2]
	s.P90 = degrees[percentileIndex(s.Count, 0.90)]
	s.P99 = degrees[percentileIndex(s.Count, 0.99)]
	s.ZeroShare = float64(zero) / float64(s.Count)
	// Gini coefficient over the sorted degree sequence.
	if total > 0 {
		var cum, area float64
		for _, d := range degrees {
			cum += float64(d)
			area += cum
		}
		// area/(n·total) is the area under the Lorenz curve (right sum);
		// Gini = 1 - 2·AUC + 1/n correction for the discrete right sum.
		auc := area / (float64(s.Count) * float64(total))
		s.GiniLike = 1 - 2*auc + 1/float64(s.Count)
		if s.GiniLike < 0 {
			s.GiniLike = 0
		}
	}
	return s
}

// StatsReport renders degree summaries for every allowed link direction.
func (g *Graph) StatsReport() string {
	var sb strings.Builder
	st := g.Stats()
	fmt.Fprintf(&sb, "network: %d vertices, %d directed edges\n", st.Vertices, st.EdgesDirected)
	for from := 0; from < g.schema.NumTypes(); from++ {
		for to := 0; to < g.schema.NumTypes(); to++ {
			if !g.schema.EdgeAllowed(TypeID(from), TypeID(to)) {
				continue
			}
			d := g.DegreeDistribution(TypeID(from), TypeID(to))
			fmt.Fprintf(&sb, "  %s->%s: n=%d mean=%.2f median=%d p90=%d p99=%d max=%d zero=%.1f%% gini=%.2f\n",
				d.From, d.To, d.Count, d.Mean, d.Median, d.P90, d.P99, d.Max, 100*d.ZeroShare, d.GiniLike)
		}
	}
	return sb.String()
}

func percentileIndex(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
