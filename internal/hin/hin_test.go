package hin

import (
	"fmt"
	"strings"
	"testing"
)

func bibSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("author", "paper", "venue", "term")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	tm, _ := s.TypeByName("term")
	s.AllowLink(p, a)
	s.AllowLink(p, v)
	s.AllowLink(p, tm)
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := bibSchema(t)
	if got := s.NumTypes(); got != 4 {
		t.Fatalf("NumTypes = %d, want 4", got)
	}
	a, ok := s.TypeByName("author")
	if !ok {
		t.Fatal("author type missing")
	}
	if s.TypeName(a) != "author" {
		t.Fatalf("TypeName round-trip failed: %q", s.TypeName(a))
	}
	if _, ok := s.TypeByName("nosuch"); ok {
		t.Fatal("unknown type resolved")
	}
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	if !s.EdgeAllowed(p, v) || !s.EdgeAllowed(v, p) {
		t.Fatal("paper-venue link should be allowed both ways")
	}
	if s.EdgeAllowed(a, v) {
		t.Fatal("author-venue should not be allowed")
	}
	from := s.AllowedFrom(p)
	if len(from) != 3 {
		t.Fatalf("AllowedFrom(paper) = %v, want 3 types", from)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate type should fail")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty type name should fail")
	}
	many := make([]string, MaxTypes+1)
	for i := range many {
		many[i] = strings.Repeat("x", i+1)
	}
	if _, err := NewSchema(many...); err == nil {
		t.Error("too many types should fail")
	}
}

func TestSchemaCloneEqual(t *testing.T) {
	s := bibSchema(t)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	a, _ := c.TypeByName("author")
	v, _ := c.TypeByName("venue")
	c.AllowLink(a, v)
	if s.Equal(c) {
		t.Fatal("mutated clone should differ")
	}
	if s.Equal(nil) {
		t.Fatal("Equal(nil) should be false")
	}
}

// figure1Graph builds the instantiated bibliographic network of Figure 1(b):
// Zoe authors five papers (two at ICDE, three at KDD); Liam coauthors two of
// Zoe's papers; Ava coauthors one of Zoe's papers and one extra paper with
// Liam.
func figure1Graph(t *testing.T) (*Graph, *Schema) {
	t.Helper()
	s := bibSchema(t)
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	ve, _ := s.TypeByName("venue")
	b := NewBuilder(s)
	ava := b.MustAddVertex(a, "Ava")
	liam := b.MustAddVertex(a, "Liam")
	zoe := b.MustAddVertex(a, "Zoe")
	icde := b.MustAddVertex(ve, "ICDE")
	kdd := b.MustAddVertex(ve, "KDD")
	papers := make([]VertexID, 6)
	for i := range papers {
		papers[i] = b.MustAddVertex(p, fmt.Sprintf("p%d", i+1))
	}
	// Zoe's five papers.
	for i := 0; i < 5; i++ {
		b.MustAddEdge(papers[i], zoe)
	}
	b.MustAddEdge(papers[0], icde)
	b.MustAddEdge(papers[1], icde)
	b.MustAddEdge(papers[2], kdd)
	b.MustAddEdge(papers[3], kdd)
	b.MustAddEdge(papers[4], kdd)
	// Liam coauthors papers 0 and 1 with Zoe.
	b.MustAddEdge(papers[0], liam)
	b.MustAddEdge(papers[1], liam)
	// Ava coauthors paper 2 with Zoe.
	b.MustAddEdge(papers[2], ava)
	// Extra paper by Ava and Liam at KDD.
	b.MustAddEdge(papers[5], ava)
	b.MustAddEdge(papers[5], liam)
	b.MustAddEdge(papers[5], kdd)
	return b.Build(), s
}

func TestBuilderAndGraph(t *testing.T) {
	g, s := figure1Graph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 11 {
		t.Fatalf("NumVertices = %d, want 11", g.NumVertices())
	}
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")
	if g.NumVerticesOfType(a) != 3 || g.NumVerticesOfType(p) != 6 || g.NumVerticesOfType(v) != 2 {
		t.Fatalf("per-type counts wrong: %+v", g.Stats())
	}
	zoe, ok := g.VertexByName(a, "Zoe")
	if !ok {
		t.Fatal("Zoe missing")
	}
	if g.Name(zoe) != "Zoe" || g.Type(zoe) != a {
		t.Fatal("Zoe metadata wrong")
	}
	if d := g.Degree(zoe, p); d != 5 {
		t.Fatalf("Zoe paper degree = %d, want 5", d)
	}
	if d := g.Degree(zoe, v); d != 0 {
		t.Fatalf("Zoe venue degree = %d, want 0", d)
	}
	if d := g.TotalDegree(zoe); d != 5 {
		t.Fatalf("Zoe total degree = %d, want 5", d)
	}
	nbrs, mults := g.Neighbors(zoe, p)
	if len(nbrs) != 5 {
		t.Fatalf("Zoe paper neighbors = %v", nbrs)
	}
	for i := range nbrs {
		if i > 0 && nbrs[i-1] >= nbrs[i] {
			t.Fatal("neighbors not sorted")
		}
		if mults[i] != 1 {
			t.Fatalf("unexpected multiplicity %d", mults[i])
		}
	}
	st := g.Stats()
	if st.Vertices != 11 || st.PerType["author"] != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if g.NumEdges() != st.EdgesDirected || g.NumEdges() == 0 {
		t.Fatal("edge count inconsistent")
	}
}

func TestBuilderUpsertAndErrors(t *testing.T) {
	s := bibSchema(t)
	a, _ := s.TypeByName("author")
	v, _ := s.TypeByName("venue")
	p, _ := s.TypeByName("paper")
	b := NewBuilder(s)
	x1 := b.MustAddVertex(a, "X")
	x2 := b.MustAddVertex(a, "X")
	if x1 != x2 {
		t.Fatalf("duplicate name should upsert: %d vs %d", x1, x2)
	}
	if _, err := b.AddVertex(TypeID(99), "bad"); err == nil {
		t.Error("unknown type should fail")
	}
	ven := b.MustAddVertex(v, "V1")
	if err := b.AddEdge(x1, ven); err == nil {
		t.Error("schema-forbidden edge should fail")
	}
	if err := b.AddEdge(x1, VertexID(99)); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	pap := b.MustAddVertex(p, "P1")
	if err := b.AddEdgeMult(x1, pap, 0); err == nil {
		t.Error("non-positive multiplicity should fail")
	}
	if err := b.AddEdgeMult(x1, pap, 3); err != nil {
		t.Fatalf("AddEdgeMult: %v", err)
	}
	if err := b.AddEdge(x1, pap); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m := g.EdgeMultiplicity(x1, pap); m != 4 {
		t.Fatalf("multiplicity = %d, want 4", m)
	}
	if m := g.EdgeMultiplicity(pap, x1); m != 4 {
		t.Fatalf("reverse multiplicity = %d, want 4", m)
	}
	if m := g.EdgeMultiplicity(x1, ven); m != 0 {
		t.Fatalf("absent edge multiplicity = %d, want 0", m)
	}
}

func TestVertexLookup(t *testing.T) {
	g, s := figure1Graph(t)
	a, _ := s.TypeByName("author")
	v, _ := s.TypeByName("venue")
	if _, ok := g.VertexByName(a, "Nobody"); ok {
		t.Error("unknown name resolved")
	}
	if _, ok := g.VertexByName(v, "Ava"); ok {
		t.Error("name from wrong type resolved")
	}
	ava, ok := g.VertexByName(a, "Ava")
	if !ok || g.Name(ava) != "Ava" {
		t.Error("Ava lookup failed")
	}
	if !g.Valid(ava) || g.Valid(InvalidVertex) || g.Valid(VertexID(1000)) {
		t.Error("Valid misbehaves")
	}
}

func TestVerticesOfTypeSorted(t *testing.T) {
	g, s := figure1Graph(t)
	p, _ := s.TypeByName("paper")
	vs := g.VerticesOfType(p)
	for i := 1; i < len(vs); i++ {
		if vs[i-1] >= vs[i] {
			t.Fatal("VerticesOfType not ascending")
		}
	}
}

func TestTypeIDSpan(t *testing.T) {
	g, s := figure1Graph(t)
	for _, name := range []string{"author", "paper", "venue"} {
		tp, _ := s.TypeByName(name)
		lo, hi, ok := g.TypeIDSpan(tp)
		if !ok {
			t.Fatalf("TypeIDSpan(%s) not ok", name)
		}
		vs := g.VerticesOfType(tp)
		if lo != vs[0] || hi != vs[len(vs)-1] {
			t.Fatalf("TypeIDSpan(%s) = [%d,%d], want [%d,%d]", name, lo, hi, vs[0], vs[len(vs)-1])
		}
		if int(hi)-int(lo)+1 < len(vs) {
			t.Fatalf("TypeIDSpan(%s) narrower than the type's count", name)
		}
	}
	// A type with no vertices reports !ok.
	term, _ := s.TypeByName("term")
	if g.NumVerticesOfType(term) == 0 {
		if _, _, ok := g.TypeIDSpan(term); ok {
			t.Fatal("TypeIDSpan of empty type should be !ok")
		}
	}
}

func TestSelfLoopEdge(t *testing.T) {
	s := MustSchema("node")
	n, _ := s.TypeByName("node")
	s.AllowLink(n, n)
	b := NewBuilder(s)
	x := b.MustAddVertex(n, "x")
	if err := b.AddEdge(x, x); err != nil {
		t.Fatalf("self loop: %v", err)
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m := g.EdgeMultiplicity(x, x); m != 1 {
		t.Fatalf("self-loop multiplicity = %d, want 1", m)
	}
}

func TestSchemaString(t *testing.T) {
	s := bibSchema(t)
	str := s.String()
	for _, want := range []string{"author", "paper", "venue", "term", "paper->venue"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}
