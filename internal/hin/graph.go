package hin

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex in a Graph. IDs are dense, starting at 0.
type VertexID int32

// InvalidVertex is returned by lookups for unknown vertices.
const InvalidVertex VertexID = -1

// Graph is an immutable heterogeneous information network. Build one with a
// Builder. Adjacency is stored per (vertex, neighbor type): Neighbors(v, t)
// returns the distinct neighbors of v with type t together with edge
// multiplicities, so meta-path traversal never scans neighbors of other
// types.
type Graph struct {
	schema *Schema
	types  []TypeID
	names  []string

	// byType[t] lists the vertices of type t in ascending ID order.
	byType [][]VertexID
	// byName[t] maps a vertex name to its ID, per type. Names are unique
	// within a type (the builder enforces this).
	byName []map[string]VertexID

	// CSR blocks: the neighbors of vertex v with type t occupy
	// nbr[off[k]:off[k+1]] with k = int(v)*numTypes + int(t); mult holds the
	// parallel edge multiplicities.
	off  []int64
	nbr  []VertexID
	mult []int32

	numEdges int64 // total directed edge count, multiplicities included
}

// Schema returns the graph's schema.
func (g *Graph) Schema() *Schema { return g.schema }

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return len(g.types) }

// NumEdges reports the total number of directed edges, counting
// multiplicities.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// Type returns the type of vertex v.
func (g *Graph) Type(v VertexID) TypeID { return g.types[v] }

// Name returns the display name of vertex v.
func (g *Graph) Name(v VertexID) string { return g.names[v] }

// Valid reports whether v is a vertex of this graph.
func (g *Graph) Valid(v VertexID) bool { return v >= 0 && int(v) < len(g.types) }

// VerticesOfType returns all vertices of type t in ascending ID order.
// The returned slice is shared; callers must not modify it.
func (g *Graph) VerticesOfType(t TypeID) []VertexID { return g.byType[t] }

// NumVerticesOfType reports how many vertices have type t.
func (g *Graph) NumVerticesOfType(t TypeID) int { return len(g.byType[t]) }

// TypeIDSpan returns the smallest and largest vertex IDs of type t; ok is
// false when the graph has no vertex of that type. Expansion kernels size
// their dense scratch to hi-lo+1 (the type's ID span) rather than the whole
// vertex space: builders assign IDs in insertion order, so loaders that add
// vertices type by type keep the span close to the type's count.
func (g *Graph) TypeIDSpan(t TypeID) (lo, hi VertexID, ok bool) {
	if int(t) >= len(g.byType) || len(g.byType[t]) == 0 {
		return InvalidVertex, InvalidVertex, false
	}
	vs := g.byType[t]
	return vs[0], vs[len(vs)-1], true
}

// VertexByName resolves a (type, name) pair to a vertex ID. The second
// result is false if no such vertex exists.
func (g *Graph) VertexByName(t TypeID, name string) (VertexID, bool) {
	if int(t) >= len(g.byName) {
		return InvalidVertex, false
	}
	v, ok := g.byName[t][name]
	if !ok {
		return InvalidVertex, false
	}
	return v, true
}

// Neighbors returns the distinct neighbors of v having type t, in ascending
// ID order, along with the multiplicity of each connecting edge. The
// returned slices alias the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v VertexID, t TypeID) (nbrs []VertexID, mults []int32) {
	k := int64(v)*int64(g.schema.NumTypes()) + int64(t)
	lo, hi := g.off[k], g.off[k+1]
	return g.nbr[lo:hi], g.mult[lo:hi]
}

// Degree reports the number of distinct neighbors of v having type t.
func (g *Graph) Degree(v VertexID, t TypeID) int {
	k := int64(v)*int64(g.schema.NumTypes()) + int64(t)
	return int(g.off[k+1] - g.off[k])
}

// TotalDegree reports the number of distinct neighbors of v of any type.
func (g *Graph) TotalDegree(v VertexID) int {
	n := g.schema.NumTypes()
	k := int64(v) * int64(n)
	return int(g.off[k+int64(n)] - g.off[k])
}

// EdgeMultiplicity reports the multiplicity of the edge from v to u, or 0 if
// no edge exists.
func (g *Graph) EdgeMultiplicity(v, u VertexID) int32 {
	nbrs, mults := g.Neighbors(v, g.types[u])
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= u })
	if i < len(nbrs) && nbrs[i] == u {
		return mults[i]
	}
	return 0
}

// Validate performs an integrity check over the whole graph: offsets are
// monotone, neighbor lists are sorted and unique, every stored edge respects
// the schema, and every edge has a symmetric counterpart. It is intended for
// tests and loaders, not hot paths.
func (g *Graph) Validate() error {
	nt := g.schema.NumTypes()
	if len(g.off) != len(g.types)*nt+1 {
		return fmt.Errorf("hin: offset table has %d entries, want %d", len(g.off), len(g.types)*nt+1)
	}
	for k := 0; k+1 < len(g.off); k++ {
		if g.off[k] > g.off[k+1] {
			return fmt.Errorf("hin: offsets not monotone at block %d", k)
		}
	}
	for v := 0; v < len(g.types); v++ {
		for t := 0; t < nt; t++ {
			nbrs, mults := g.Neighbors(VertexID(v), TypeID(t))
			for i, u := range nbrs {
				if !g.Valid(u) {
					return fmt.Errorf("hin: vertex %d has out-of-range neighbor %d", v, u)
				}
				if g.types[u] != TypeID(t) {
					return fmt.Errorf("hin: neighbor %d of vertex %d stored under type %s but has type %s",
						u, v, g.schema.TypeName(TypeID(t)), g.schema.TypeName(g.types[u]))
				}
				if i > 0 && nbrs[i-1] >= u {
					return fmt.Errorf("hin: neighbor list of vertex %d type %s not sorted/unique", v, g.schema.TypeName(TypeID(t)))
				}
				if mults[i] <= 0 {
					return fmt.Errorf("hin: non-positive multiplicity on edge %d-%d", v, u)
				}
				if !g.schema.EdgeAllowed(g.types[v], TypeID(t)) {
					return fmt.Errorf("hin: edge %d-%d violates schema (%s->%s not allowed)",
						v, u, g.schema.TypeName(g.types[v]), g.schema.TypeName(TypeID(t)))
				}
				if g.EdgeMultiplicity(u, VertexID(v)) != mults[i] {
					return fmt.Errorf("hin: edge %d-%d lacks symmetric counterpart with equal multiplicity", v, u)
				}
			}
		}
	}
	return nil
}

// Stats summarizes a graph for display.
type Stats struct {
	Vertices      int
	EdgesDirected int64
	PerType       map[string]int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Vertices:      g.NumVertices(),
		EdgesDirected: g.numEdges,
		PerType:       make(map[string]int, g.schema.NumTypes()),
	}
	for t := 0; t < g.schema.NumTypes(); t++ {
		st.PerType[g.schema.TypeName(TypeID(t))] = len(g.byType[t])
	}
	return st
}
