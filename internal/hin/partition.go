package hin

// Range partitioning for the scatter–gather shard tier: a shard owns a
// contiguous slice of a type's (ascending-ID) vertex list, so shard
// ownership of any sorted candidate set is a contiguous sub-slice too and a
// coordinator can split a query's candidates without copying anything.

// PartitionVertices splits vs into n contiguous ranges that cover vs in
// order, balanced to within one element (the first len(vs)%n ranges hold the
// extra element). n <= 1 yields a single range. Ranges are sub-slices of vs
// — no copying — taken with full-slice expressions so every range has
// cap == len: a caller appending to its range always reallocates instead of
// scribbling into the next range's storage (the slice-aliasing hazard class
// BenchmarkExpand hit in PR 3). When len(vs) < n the trailing ranges are
// empty; an empty vs yields n empty ranges.
func PartitionVertices(vs []VertexID, n int) [][]VertexID {
	if n < 1 {
		n = 1
	}
	out := make([][]VertexID, n)
	size, extra := len(vs)/n, len(vs)%n
	lo := 0
	for i := range out {
		hi := lo + size
		if i < extra {
			hi++
		}
		out[i] = vs[lo:hi:hi]
		lo = hi
	}
	return out
}

// PartitionVerticesOfType splits the type-t vertex list (ascending ID
// order, see VerticesOfType) into n contiguous shard ranges. The ranges
// share the graph's storage and must not be modified. A type with no
// vertices — or an out-of-range t — yields n empty ranges.
func (g *Graph) PartitionVerticesOfType(t TypeID, n int) [][]VertexID {
	if int(t) < 0 || int(t) >= len(g.byType) {
		return PartitionVertices(nil, n)
	}
	return PartitionVertices(g.byType[t], n)
}
