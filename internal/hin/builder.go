package hin

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is not usable; construct with NewBuilder.
//
// Edges are undirected by the paper's convention (Definition 1 treats an
// undirected edge as two symmetric directed edges): AddEdge stores both
// directions. Adding the same edge repeatedly increases its multiplicity,
// which is how a bibliographic builder records, for example, two authors
// sharing several papers at the paper level (each paper contributes its own
// paper-author edges, so multiplicities above 1 typically arise in
// projected or aggregated networks).
type Builder struct {
	schema *Schema
	types  []TypeID
	names  []string
	byName []map[string]VertexID
	// edges[v] maps neighbor -> multiplicity. A map keeps AddEdge O(1)
	// amortized; Build converts to sorted CSR.
	edges []map[VertexID]int32
}

// NewBuilder creates a builder for a network with the given schema.
func NewBuilder(schema *Schema) *Builder {
	b := &Builder{
		schema: schema,
		byName: make([]map[string]VertexID, schema.NumTypes()),
	}
	for i := range b.byName {
		b.byName[i] = make(map[string]VertexID)
	}
	return b
}

// Schema returns the builder's schema.
func (b *Builder) Schema() *Schema { return b.schema }

// NumVertices reports the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.types) }

// AddVertex adds a vertex of type t with the given display name and returns
// its ID. Names must be unique within a type; adding a duplicate returns the
// existing vertex (upsert semantics), which makes incremental loaders simple.
func (b *Builder) AddVertex(t TypeID, name string) (VertexID, error) {
	if int(t) >= b.schema.NumTypes() {
		return InvalidVertex, fmt.Errorf("hin: unknown type id %d", t)
	}
	if v, ok := b.byName[t][name]; ok {
		return v, nil
	}
	v := VertexID(len(b.types))
	b.types = append(b.types, t)
	b.names = append(b.names, name)
	b.edges = append(b.edges, nil)
	b.byName[t][name] = v
	return v, nil
}

// MustAddVertex is AddVertex panicking on error, for tests and examples.
func (b *Builder) MustAddVertex(t TypeID, name string) VertexID {
	v, err := b.AddVertex(t, name)
	if err != nil {
		panic(err)
	}
	return v
}

// Vertex resolves a (type, name) pair among the vertices added so far.
func (b *Builder) Vertex(t TypeID, name string) (VertexID, bool) {
	if int(t) >= len(b.byName) {
		return InvalidVertex, false
	}
	v, ok := b.byName[t][name]
	if !ok {
		return InvalidVertex, false
	}
	return v, true
}

// AddEdge records an undirected edge between v and u, increasing its
// multiplicity by one if it already exists. The edge must be allowed by the
// schema in both directions.
func (b *Builder) AddEdge(v, u VertexID) error { return b.AddEdgeMult(v, u, 1) }

// AddEdgeMult records an undirected edge with an explicit multiplicity
// increment (useful when loading aggregated networks).
func (b *Builder) AddEdgeMult(v, u VertexID, mult int32) error {
	if int(v) >= len(b.types) || v < 0 || int(u) >= len(b.types) || u < 0 {
		return fmt.Errorf("hin: edge endpoints %d-%d out of range", v, u)
	}
	if mult <= 0 {
		return fmt.Errorf("hin: edge multiplicity must be positive, got %d", mult)
	}
	tv, tu := b.types[v], b.types[u]
	if !b.schema.EdgeAllowed(tv, tu) || !b.schema.EdgeAllowed(tu, tv) {
		return fmt.Errorf("hin: schema forbids edge %s-%s",
			b.schema.TypeName(tv), b.schema.TypeName(tu))
	}
	b.bump(v, u, mult)
	if v != u {
		b.bump(u, v, mult)
	}
	return nil
}

// MustAddEdge is AddEdge panicking on error, for tests and examples.
func (b *Builder) MustAddEdge(v, u VertexID) {
	if err := b.AddEdge(v, u); err != nil {
		panic(err)
	}
}

func (b *Builder) bump(v, u VertexID, mult int32) {
	m := b.edges[v]
	if m == nil {
		m = make(map[VertexID]int32, 4)
		b.edges[v] = m
	}
	m[u] += mult
}

// Build finalizes the builder into an immutable Graph. The builder remains
// usable afterwards (Build copies), though reusing it is uncommon.
func (b *Builder) Build() *Graph {
	nt := b.schema.NumTypes()
	n := len(b.types)
	g := &Graph{
		schema: b.schema.Clone(),
		types:  append([]TypeID(nil), b.types...),
		names:  append([]string(nil), b.names...),
		byType: make([][]VertexID, nt),
		byName: make([]map[string]VertexID, nt),
		off:    make([]int64, n*nt+1),
	}
	for t := 0; t < nt; t++ {
		g.byName[t] = make(map[string]VertexID, len(b.byName[t]))
		for name, v := range b.byName[t] {
			g.byName[t][name] = v
		}
	}
	for v := 0; v < n; v++ {
		g.byType[b.types[v]] = append(g.byType[b.types[v]], VertexID(v))
	}
	// byType slices are already ascending because vertex IDs are assigned in
	// increasing order, but sort defensively in case of future mutation paths.
	for t := 0; t < nt; t++ {
		vs := g.byType[t]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}

	// First pass: count per-(vertex,type) neighbors to size the CSR arrays.
	counts := make([]int64, n*nt)
	var total int64
	for v := 0; v < n; v++ {
		for u := range b.edges[v] {
			counts[v*nt+int(b.types[u])]++
			total++
		}
	}
	g.nbr = make([]VertexID, total)
	g.mult = make([]int32, total)
	var running int64
	for k := 0; k < n*nt; k++ {
		g.off[k] = running
		running += counts[k]
	}
	g.off[n*nt] = running

	// Second pass: fill and sort each block.
	fill := make([]int64, n*nt)
	copy(fill, g.off[:n*nt])
	for v := 0; v < n; v++ {
		for u, m := range b.edges[v] {
			k := v*nt + int(b.types[u])
			g.nbr[fill[k]] = u
			g.mult[fill[k]] = m
			fill[k]++
			g.numEdges += int64(m)
		}
	}
	for k := 0; k < n*nt; k++ {
		lo, hi := g.off[k], g.off[k+1]
		block := blockSorter{nbr: g.nbr[lo:hi], mult: g.mult[lo:hi]}
		sort.Sort(block)
	}
	return g
}

type blockSorter struct {
	nbr  []VertexID
	mult []int32
}

func (s blockSorter) Len() int           { return len(s.nbr) }
func (s blockSorter) Less(i, j int) bool { return s.nbr[i] < s.nbr[j] }
func (s blockSorter) Swap(i, j int) {
	s.nbr[i], s.nbr[j] = s.nbr[j], s.nbr[i]
	s.mult[i], s.mult[j] = s.mult[j], s.mult[i]
}
