package hin

import (
	"math"
	"strings"
	"testing"
)

func TestDegreeDistribution(t *testing.T) {
	g, s := figure1Graph(t)
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	v, _ := s.TypeByName("venue")

	d := g.DegreeDistribution(a, p)
	// Ava: 2, Liam: 3, Zoe: 5.
	if d.Count != 3 || d.Min != 2 || d.Max != 5 || d.Median != 3 {
		t.Fatalf("author->paper = %+v", d)
	}
	if math.Abs(d.Mean-10.0/3.0) > 1e-12 {
		t.Fatalf("mean = %g", d.Mean)
	}
	if d.ZeroShare != 0 {
		t.Fatalf("zero share = %g", d.ZeroShare)
	}
	if d.GiniLike < 0 || d.GiniLike > 1 {
		t.Fatalf("gini = %g", d.GiniLike)
	}

	// Papers have at most one venue; p6 has one, p1..p5 have one; so no
	// zeros. Venue->author is disallowed but still summarizable: all zero.
	dz := g.DegreeDistribution(v, a)
	if dz.ZeroShare != 1 || dz.Max != 0 {
		t.Fatalf("venue->author = %+v", dz)
	}
	if dz.GiniLike != 0 {
		t.Fatalf("all-zero gini = %g", dz.GiniLike)
	}
}

func TestDegreeDistributionUniformVsSkewed(t *testing.T) {
	s := MustSchema("a", "b")
	ta, _ := s.TypeByName("a")
	tb, _ := s.TypeByName("b")
	s.AllowLink(ta, tb)

	// Uniform: every a vertex has exactly 2 b-neighbors.
	bld := NewBuilder(s)
	var bs []VertexID
	for i := 0; i < 4; i++ {
		bs = append(bs, bld.MustAddVertex(tb, string(rune('w'+i))))
	}
	for i := 0; i < 6; i++ {
		av := bld.MustAddVertex(ta, string(rune('A'+i)))
		bld.MustAddEdge(av, bs[i%4])
		bld.MustAddEdge(av, bs[(i+1)%4])
	}
	uniform := bld.Build().DegreeDistribution(ta, tb)
	if uniform.GiniLike > 0.05 {
		t.Fatalf("uniform gini = %g", uniform.GiniLike)
	}

	// Skewed: one hub with many neighbors, the rest with one.
	bld2 := NewBuilder(s)
	var bs2 []VertexID
	for i := 0; i < 12; i++ {
		bs2 = append(bs2, bld2.MustAddVertex(tb, string(rune('a'+i))))
	}
	hub := bld2.MustAddVertex(ta, "hub")
	for _, bv := range bs2 {
		bld2.MustAddEdge(hub, bv)
	}
	for i := 0; i < 5; i++ {
		av := bld2.MustAddVertex(ta, string(rune('A'+i)))
		bld2.MustAddEdge(av, bs2[i])
	}
	skewed := bld2.Build().DegreeDistribution(ta, tb)
	if skewed.GiniLike <= uniform.GiniLike+0.2 {
		t.Fatalf("skewed gini %g should exceed uniform %g", skewed.GiniLike, uniform.GiniLike)
	}
	if skewed.P99 != 12 || skewed.Median != 1 {
		t.Fatalf("skewed = %+v", skewed)
	}
}

func TestDegreeDistributionEmptyType(t *testing.T) {
	s := MustSchema("a", "b")
	ta, _ := s.TypeByName("a")
	tb, _ := s.TypeByName("b")
	s.AllowLink(ta, tb)
	g := NewBuilder(s).Build()
	d := g.DegreeDistribution(ta, tb)
	if d.Count != 0 || d.Min != 0 || d.Max != 0 {
		t.Fatalf("empty = %+v", d)
	}
}

func TestStatsReport(t *testing.T) {
	g, _ := figure1Graph(t)
	rep := g.StatsReport()
	for _, want := range []string{"network:", "author->paper", "paper->venue", "gini="} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "author->venue") {
		t.Error("report should not include disallowed links")
	}
}

func TestPercentileIndex(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{10, 0.9, 8}, {10, 0.99, 9}, {1, 0.5, 0}, {4, 0.0, 0}, {4, 1.0, 3},
	}
	for _, c := range cases {
		if got := percentileIndex(c.n, c.p); got != c.want {
			t.Errorf("percentileIndex(%d, %g) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}
