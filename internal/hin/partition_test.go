package hin

import (
	"testing"
)

func TestPartitionVerticesCoversInOrder(t *testing.T) {
	for _, tc := range []struct {
		n, parts int
		sizes    []int
	}{
		{n: 10, parts: 1, sizes: []int{10}},
		{n: 10, parts: 2, sizes: []int{5, 5}},
		{n: 10, parts: 3, sizes: []int{4, 3, 3}}, // odd split: extras lead
		{n: 7, parts: 3, sizes: []int{3, 2, 2}},
		{n: 3, parts: 7, sizes: []int{1, 1, 1, 0, 0, 0, 0}}, // more shards than vertices
		{n: 0, parts: 4, sizes: []int{0, 0, 0, 0}},          // empty type
		{n: 5, parts: 0, sizes: []int{5}},                   // n < 1 clamps to one range
	} {
		vs := make([]VertexID, tc.n)
		for i := range vs {
			vs[i] = VertexID(i * 2)
		}
		got := PartitionVertices(vs, tc.parts)
		if len(got) != len(tc.sizes) {
			t.Fatalf("PartitionVertices(%d, %d) returned %d ranges, want %d", tc.n, tc.parts, len(got), len(tc.sizes))
		}
		var flat []VertexID
		for i, r := range got {
			if len(r) != tc.sizes[i] {
				t.Errorf("PartitionVertices(%d, %d) range %d has %d elements, want %d", tc.n, tc.parts, i, len(r), tc.sizes[i])
			}
			flat = append(flat, r...)
		}
		if len(flat) != len(vs) {
			t.Fatalf("ranges cover %d vertices, want %d", len(flat), len(vs))
		}
		for i := range flat {
			if flat[i] != vs[i] {
				t.Fatalf("concatenated ranges diverge at %d: %d != %d", i, flat[i], vs[i])
			}
		}
	}
}

func TestPartitionVerticesSharesBackingWithoutAliasing(t *testing.T) {
	vs := []VertexID{0, 1, 2, 3, 4, 5, 6}
	got := PartitionVertices(vs, 3)
	// No copying: each non-empty range is a sub-slice of vs itself.
	off := 0
	for i, r := range got {
		if len(r) == 0 {
			continue
		}
		if &r[0] != &vs[off] {
			t.Fatalf("range %d copied the underlying slice", i)
		}
		off += len(r)
	}
	// No aliasing hazard: cap == len, so an append to one range must
	// reallocate rather than overwrite the next range's first element.
	for i, r := range got {
		if cap(r) != len(r) {
			t.Fatalf("range %d has cap %d > len %d: append would alias the next range", i, cap(r), len(r))
		}
	}
	_ = append(got[0], 99)
	for i, want := range []VertexID{0, 1, 2, 3, 4, 5, 6} {
		if vs[i] != want {
			t.Fatalf("append to a range mutated the shared slice at %d: %d", i, vs[i])
		}
	}
}

func TestPartitionVerticesOfType(t *testing.T) {
	s := MustSchema("author", "paper")
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	s.AllowLink(p, a)
	b := NewBuilder(s)
	for i := 0; i < 5; i++ {
		b.MustAddVertex(a, string(rune('A'+i)))
	}
	g := b.Build()

	ranges := g.PartitionVerticesOfType(a, 2)
	if len(ranges) != 2 || len(ranges[0]) != 3 || len(ranges[1]) != 2 {
		t.Fatalf("author ranges = %v", ranges)
	}
	// A type with no vertices still yields the requested shard count.
	empty := g.PartitionVerticesOfType(p, 3)
	if len(empty) != 3 {
		t.Fatalf("empty type yields %d ranges, want 3", len(empty))
	}
	for i, r := range empty {
		if len(r) != 0 {
			t.Fatalf("empty-type range %d not empty: %v", i, r)
		}
	}
	if out := g.PartitionVerticesOfType(TypeID(99), 2); len(out) != 2 || len(out[0]) != 0 {
		t.Fatalf("out-of-range type = %v", out)
	}
}
