package hin

import (
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	g, s := figure1Graph(t)
	a, _ := s.TypeByName("author")
	p, _ := s.TypeByName("paper")
	zoe, _ := g.VertexByName(a, "Zoe")
	liam, _ := g.VertexByName(a, "Liam")
	papers, _ := g.Neighbors(zoe, p)

	keep := append([]VertexID{zoe, liam, zoe}, papers...) // duplicate zoe on purpose
	sub, mapping, err := InducedSubgraph(g, keep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subgraph invalid: %v", err)
	}
	if sub.NumVertices() != 2+len(papers) {
		t.Fatalf("subgraph has %d vertices, want %d", sub.NumVertices(), 2+len(papers))
	}
	nz, ok := mapping[zoe]
	if !ok {
		t.Fatal("zoe missing from mapping")
	}
	if sub.Name(nz) != "Zoe" || sub.Type(nz) != a {
		t.Fatal("zoe metadata lost")
	}
	// Zoe keeps all 5 paper edges; Liam keeps only the 2 papers he shares
	// with Zoe (p6 was not included).
	if d := sub.Degree(nz, p); d != 5 {
		t.Fatalf("sub Zoe degree = %d", d)
	}
	nl := mapping[liam]
	if d := sub.Degree(nl, p); d != 2 {
		t.Fatalf("sub Liam degree = %d", d)
	}
	// Venue edges vanished (no venue vertices kept).
	v, _ := s.TypeByName("venue")
	if sub.NumVerticesOfType(v) != 0 {
		t.Fatal("venues should be absent")
	}
	if _, _, err := InducedSubgraph(g, []VertexID{999}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestInducedSubgraphKeepsMultiplicities(t *testing.T) {
	s := MustSchema("n")
	n, _ := s.TypeByName("n")
	s.AllowLink(n, n)
	b := NewBuilder(s)
	x := b.MustAddVertex(n, "x")
	y := b.MustAddVertex(n, "y")
	if err := b.AddEdgeMult(x, y, 3); err != nil {
		t.Fatal(err)
	}
	b.MustAddEdge(x, x)
	g := b.Build()
	sub, mapping, err := InducedSubgraph(g, []VertexID{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if m := sub.EdgeMultiplicity(mapping[x], mapping[y]); m != 3 {
		t.Fatalf("multiplicity = %d", m)
	}
	if m := sub.EdgeMultiplicity(mapping[x], mapping[x]); m != 1 {
		t.Fatalf("self loop multiplicity = %d", m)
	}
}

func TestEgoNetwork(t *testing.T) {
	g, s := figure1Graph(t)
	a, _ := s.TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")

	// 0 hops: just the seed.
	ego0, err := EgoNetwork(g, []VertexID{zoe}, 0)
	if err != nil || len(ego0) != 1 {
		t.Fatalf("ego0 = %v, %v", ego0, err)
	}
	// 1 hop: Zoe + her 5 papers.
	ego1, _ := EgoNetwork(g, []VertexID{zoe}, 1)
	if len(ego1) != 6 {
		t.Fatalf("ego1 = %d vertices", len(ego1))
	}
	// 2 hops: + coauthors and venues of those papers.
	ego2, _ := EgoNetwork(g, []VertexID{zoe}, 2)
	if len(ego2) <= len(ego1) {
		t.Fatalf("ego2 = %d vertices", len(ego2))
	}
	for i := 1; i < len(ego2); i++ {
		if ego2[i-1] >= ego2[i] {
			t.Fatal("ego network not sorted")
		}
	}
	// Large hop count saturates at the connected component.
	egoAll, _ := EgoNetwork(g, []VertexID{zoe}, 99)
	// Everything except the isolated-from-Zoe part: the Figure 1 graph is
	// fully connected through papers, so all 11 vertices appear.
	if len(egoAll) != g.NumVertices() {
		t.Fatalf("saturated ego = %d of %d", len(egoAll), g.NumVertices())
	}
	if _, err := EgoNetwork(g, []VertexID{999}, 1); err == nil {
		t.Error("bad seed accepted")
	}
	// Dedup of duplicate seeds.
	egoDup, _ := EgoNetwork(g, []VertexID{zoe, zoe}, 0)
	if len(egoDup) != 1 {
		t.Fatalf("duplicate seeds = %v", egoDup)
	}
}

// Subgraph of an ego network supports downstream algorithms end-to-end.
func TestEgoSubgraphPipeline(t *testing.T) {
	g, s := figure1Graph(t)
	a, _ := s.TypeByName("author")
	zoe, _ := g.VertexByName(a, "Zoe")
	ego, err := EgoNetwork(g, []VertexID{zoe}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping, err := InducedSubgraph(g, ego)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := mapping[zoe]; !ok {
		t.Fatal("seed missing from subgraph")
	}
}
