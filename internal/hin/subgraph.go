package hin

import (
	"fmt"
	"sort"
)

// InducedSubgraph builds the subgraph induced by the given vertices: the
// new graph keeps their types, names and every edge whose both endpoints
// are in the set (with multiplicities). The returned mapping translates
// original vertex IDs to subgraph IDs (absent vertices map to
// InvalidVertex). Duplicate input vertices are deduplicated.
//
// Ego networks extracted this way let quadratic algorithms (e.g. SimRank)
// run on the neighborhood of a query instead of the whole network.
func InducedSubgraph(g *Graph, vertices []VertexID) (*Graph, map[VertexID]VertexID, error) {
	sorted := append([]VertexID(nil), vertices...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := NewBuilder(g.Schema().Clone())
	mapping := make(map[VertexID]VertexID, len(sorted))
	for i, v := range sorted {
		if i > 0 && sorted[i-1] == v {
			continue
		}
		if !g.Valid(v) {
			return nil, nil, fmt.Errorf("hin: subgraph vertex %d out of range", v)
		}
		nv, err := b.AddVertex(g.Type(v), g.Name(v))
		if err != nil {
			return nil, nil, err
		}
		mapping[v] = nv
	}
	nt := g.Schema().NumTypes()
	for v, nv := range mapping {
		for t := 0; t < nt; t++ {
			nbrs, mults := g.Neighbors(v, TypeID(t))
			for i, u := range nbrs {
				nu, ok := mapping[u]
				if !ok || u < v { // add each undirected edge once (self loops at u==v)
					continue
				}
				if err := b.AddEdgeMult(nv, nu, mults[i]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return b.Build(), mapping, nil
}

// EgoNetwork returns the vertices within `hops` undirected hops of the
// seeds (including the seeds), in ascending ID order.
func EgoNetwork(g *Graph, seeds []VertexID, hops int) ([]VertexID, error) {
	seen := make(map[VertexID]bool, len(seeds))
	frontier := make([]VertexID, 0, len(seeds))
	for _, v := range seeds {
		if !g.Valid(v) {
			return nil, fmt.Errorf("hin: ego seed %d out of range", v)
		}
		if !seen[v] {
			seen[v] = true
			frontier = append(frontier, v)
		}
	}
	nt := g.Schema().NumTypes()
	for h := 0; h < hops; h++ {
		var next []VertexID
		for _, v := range frontier {
			for t := 0; t < nt; t++ {
				nbrs, _ := g.Neighbors(v, TypeID(t))
				for _, u := range nbrs {
					if !seen[u] {
						seen[u] = true
						next = append(next, u)
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
