// Package kg ingests open-schema knowledge graphs — subject/predicate/object
// triples in the RDF spirit — into heterogeneous information networks.
// Section 8 of the paper notes that "our query language can be applied to
// open-schema networks such as a knowledge graph"; this package derives the
// closed HIN schema the engine needs from the triples themselves: `type`
// declarations become vertex types, every other predicate becomes an
// allowed link between the types of its endpoints.
//
// The triple format is line oriented, tab separated:
//
//	# comment
//	Alice	type	person
//	UIUC	type	university
//	Alice	worksAt	UIUC
//
// Multiple predicates between the same endpoint types are merged into one
// link type; repeated triples raise the edge multiplicity, so "mentions"
// counts accumulate naturally.
package kg

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"netout/internal/hin"
)

// TypePredicate is the predicate that declares an entity's type.
const TypePredicate = "type"

// Triple is one (subject, predicate, object) statement.
type Triple struct {
	Subject, Predicate, Object string
}

// Store accumulates triples before conversion.
type Store struct {
	triples []Triple
	types   map[string]string // entity -> declared type
}

// NewStore creates an empty triple store.
func NewStore() *Store {
	return &Store{types: make(map[string]string)}
}

// Len reports the number of non-type triples stored.
func (st *Store) Len() int { return len(st.triples) }

// NumEntities reports the number of typed entities.
func (st *Store) NumEntities() int { return len(st.types) }

// Add records one triple. Type declarations (predicate "type") assign the
// subject's vertex type; an entity may be declared once (re-declaring the
// same type is idempotent, conflicting declarations fail).
func (st *Store) Add(subject, predicate, object string) error {
	if subject == "" || predicate == "" || object == "" {
		return fmt.Errorf("kg: triple needs subject, predicate and object")
	}
	if predicate == TypePredicate {
		if prev, ok := st.types[subject]; ok && prev != object {
			return fmt.Errorf("kg: entity %q declared both %q and %q", subject, prev, object)
		}
		st.types[subject] = object
		return nil
	}
	st.triples = append(st.triples, Triple{subject, predicate, object})
	return nil
}

// Predicates returns the distinct non-type predicates, sorted.
func (st *Store) Predicates() []string {
	seen := map[string]bool{}
	for _, t := range st.triples {
		seen[t.Predicate] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ToHIN converts the store into a heterogeneous information network.
// Every entity must have a type declaration; every triple connects two
// typed entities. Repeated triples raise edge multiplicity.
func (st *Store) ToHIN() (*hin.Graph, error) {
	if len(st.types) == 0 {
		return nil, fmt.Errorf("kg: no type declarations")
	}
	typeSet := map[string]bool{}
	for _, t := range st.types {
		typeSet[t] = true
	}
	typeNames := make([]string, 0, len(typeSet))
	for t := range typeSet {
		typeNames = append(typeNames, t)
	}
	sort.Strings(typeNames)
	schema, err := hin.NewSchema(typeNames...)
	if err != nil {
		return nil, err
	}

	// First pass: derive allowed links from the triples.
	for _, tr := range st.triples {
		ts, err := st.typeOf(tr.Subject)
		if err != nil {
			return nil, err
		}
		to, err := st.typeOf(tr.Object)
		if err != nil {
			return nil, err
		}
		s, _ := schema.TypeByName(ts)
		o, _ := schema.TypeByName(to)
		schema.AllowLink(s, o)
	}

	b := hin.NewBuilder(schema)
	vertexOf := make(map[string]hin.VertexID, len(st.types))
	// Deterministic vertex order: sorted entity names.
	entities := make([]string, 0, len(st.types))
	for e := range st.types {
		entities = append(entities, e)
	}
	sort.Strings(entities)
	for _, e := range entities {
		t, _ := schema.TypeByName(st.types[e])
		v, err := b.AddVertex(t, e)
		if err != nil {
			return nil, err
		}
		vertexOf[e] = v
	}
	for _, tr := range st.triples {
		if err := b.AddEdge(vertexOf[tr.Subject], vertexOf[tr.Object]); err != nil {
			return nil, fmt.Errorf("kg: triple (%s %s %s): %w", tr.Subject, tr.Predicate, tr.Object, err)
		}
	}
	return b.Build(), nil
}

func (st *Store) typeOf(entity string) (string, error) {
	t, ok := st.types[entity]
	if !ok {
		return "", fmt.Errorf("kg: entity %q has no type declaration", entity)
	}
	return t, nil
}

// Read parses tab-separated triples from r into a new store. Blank lines
// and lines starting with '#' are skipped.
func Read(r io.Reader) (*Store, error) {
	st := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("kg: line %d: want 3 tab-separated fields, got %d", lineNo, len(fields))
		}
		if err := st.Add(fields[0], fields[1], fields[2]); err != nil {
			return nil, fmt.Errorf("kg: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kg: %w", err)
	}
	return st, nil
}

// Load reads triples from a file.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits the store's triples (type declarations first) in the format
// Read accepts.
func (st *Store) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	entities := make([]string, 0, len(st.types))
	for e := range st.types {
		entities = append(entities, e)
	}
	sort.Strings(entities)
	for _, e := range entities {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", e, TypePredicate, st.types[e]); err != nil {
			return err
		}
	}
	for _, t := range st.triples {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", t.Subject, t.Predicate, t.Object); err != nil {
			return err
		}
	}
	return bw.Flush()
}
