package kg

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"netout/internal/core"
)

const sampleTriples = `# a tiny academic knowledge graph
Alice	type	person
Bob	type	person
Carol	type	person
UIUC	type	university
UCSB	type	university
GraphLab	type	project
MinerX	type	project
Alice	worksAt	UIUC
Bob	worksAt	UIUC
Carol	worksAt	UCSB
Alice	contributesTo	GraphLab
Bob	contributesTo	GraphLab
Carol	contributesTo	MinerX
Alice	contributesTo	MinerX
`

func TestReadAndToHIN(t *testing.T) {
	st, err := Read(strings.NewReader(sampleTriples))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if st.NumEntities() != 7 || st.Len() != 7 {
		t.Fatalf("entities=%d triples=%d", st.NumEntities(), st.Len())
	}
	preds := st.Predicates()
	if len(preds) != 2 || preds[0] != "contributesTo" || preds[1] != "worksAt" {
		t.Fatalf("Predicates = %v", preds)
	}
	g, err := st.ToHIN()
	if err != nil {
		t.Fatalf("ToHIN: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	s := g.Schema()
	person, ok := s.TypeByName("person")
	if !ok {
		t.Fatal("person type missing")
	}
	uni, _ := s.TypeByName("university")
	if g.NumVerticesOfType(person) != 3 || g.NumVerticesOfType(uni) != 2 {
		t.Fatalf("counts wrong: %+v", g.Stats())
	}
	alice, _ := g.VertexByName(person, "Alice")
	if d := g.Degree(alice, uni); d != 1 {
		t.Fatalf("Alice university degree = %d", d)
	}
	// The derived network answers outlier queries: among GraphLab's
	// contributors' colleagues... keep it simple: people judged by projects.
	eng := core.NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS FROM person JUDGED BY person.project TOP 3;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %+v", res.Entries)
	}
}

func TestRepeatedTriplesRaiseMultiplicity(t *testing.T) {
	st := NewStore()
	for _, tr := range [][3]string{
		{"a", "type", "person"}, {"p", "type", "project"},
		{"a", "contributesTo", "p"}, {"a", "contributesTo", "p"}, {"a", "contributesTo", "p"},
	} {
		if err := st.Add(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := st.ToHIN()
	if err != nil {
		t.Fatal(err)
	}
	person, _ := g.Schema().TypeByName("person")
	project, _ := g.Schema().TypeByName("project")
	a, _ := g.VertexByName(person, "a")
	p, _ := g.VertexByName(project, "p")
	if m := g.EdgeMultiplicity(a, p); m != 3 {
		t.Fatalf("multiplicity = %d, want 3", m)
	}
}

func TestAddErrors(t *testing.T) {
	st := NewStore()
	if err := st.Add("", "p", "o"); err == nil {
		t.Error("empty subject accepted")
	}
	if err := st.Add("s", "", "o"); err == nil {
		t.Error("empty predicate accepted")
	}
	if err := st.Add("s", "p", ""); err == nil {
		t.Error("empty object accepted")
	}
	if err := st.Add("x", "type", "person"); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("x", "type", "person"); err != nil {
		t.Errorf("idempotent re-declaration should pass: %v", err)
	}
	if err := st.Add("x", "type", "robot"); err == nil {
		t.Error("conflicting type declaration accepted")
	}
}

func TestToHINErrors(t *testing.T) {
	if _, err := NewStore().ToHIN(); err == nil {
		t.Error("empty store accepted")
	}
	st := NewStore()
	st.Add("a", "type", "person")
	st.Add("a", "knows", "ghost") // ghost has no type
	if _, err := st.ToHIN(); err == nil {
		t.Error("untyped entity accepted")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields": "a\tb\n",
		"bad triple":   "\ttype\tperson\n",
		"conflict":     "a\ttype\tx\na\ttype\ty\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(src)); err == nil {
				t.Errorf("Read(%q) should fail", src)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	st, err := Read(strings.NewReader(sampleTriples))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumEntities() != st.NumEntities() || st2.Len() != st.Len() {
		t.Fatalf("round trip changed the store: %d/%d vs %d/%d",
			st2.NumEntities(), st2.Len(), st.NumEntities(), st.Len())
	}
	g1, _ := st.ToHIN()
	g2, _ := st2.ToHIN()
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/triples.tsv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLargerKnowledgeGraphOutliers(t *testing.T) {
	// People in two cities; everyone attends events in their own city
	// except one planted traveler.
	st := NewStore()
	add := func(s, p, o string) {
		if err := st.Add(s, p, o); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 2; c++ {
		city := fmt.Sprintf("city%d", c)
		add(city, "type", "city")
		for e := 0; e < 3; e++ {
			ev := fmt.Sprintf("event-%d-%d", c, e)
			add(ev, "type", "event")
			add(ev, "heldIn", city)
		}
	}
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("person%02d", i)
		add(p, "type", "person")
		c := i % 2
		for e := 0; e < 3; e++ {
			add(p, "attended", fmt.Sprintf("event-%d-%d", c, e))
		}
	}
	// The traveler lives among city-0 folks but attends city-1 events.
	add("traveler", "type", "person")
	add("traveler", "attended", "event-0-0")
	for e := 0; e < 3; e++ {
		add("traveler", "attended", fmt.Sprintf("event-1-%d", e))
		add("traveler", "attended", fmt.Sprintf("event-1-%d", e))
	}
	g, err := st.ToHIN()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(g)
	res, err := eng.Execute(`FIND OUTLIERS
FROM event{"event-0-0"}.person
JUDGED BY person.event.city
TOP 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries[0].Name != "traveler" {
		t.Fatalf("top outlier = %s, want traveler", res.Entries[0].Name)
	}
}
