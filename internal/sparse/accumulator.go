package sparse

import "sort"

// Accumulator gathers coordinate contributions and emits a sorted Vector.
// It is the scratch structure used by meta-path traversal: each hop scatters
// weighted adjacency rows into the accumulator, then Take drains it.
//
// The implementation is map-backed with an amortized touched-list; for the
// graph sizes in this repository (hundreds of thousands of vertices, sparse
// frontiers) this outperforms a dense scratch array because frontiers are
// tiny relative to the vertex count and the accumulator is reused across
// many vertices.
type Accumulator struct {
	m map[int32]float64
}

// NewAccumulator creates an accumulator with a capacity hint.
func NewAccumulator(hint int) *Accumulator {
	return &Accumulator{m: make(map[int32]float64, hint)}
}

// Add adds x at coordinate i.
func (acc *Accumulator) Add(i int32, x float64) { acc.m[i] += x }

// AddVector adds w·v into the accumulator.
func (acc *Accumulator) AddVector(v Vector, w float64) {
	for i := range v.Idx {
		acc.m[v.Idx[i]] += w * v.Val[i]
	}
}

// Len reports the number of touched coordinates.
func (acc *Accumulator) Len() int { return len(acc.m) }

// Take drains the accumulator into a sorted Vector and resets it for reuse.
func (acc *Accumulator) Take() Vector {
	if len(acc.m) == 0 {
		return Vector{}
	}
	v := Vector{
		Idx: make([]int32, 0, len(acc.m)),
		Val: make([]float64, 0, len(acc.m)),
	}
	for ix, x := range acc.m {
		if x != 0 {
			v.Idx = append(v.Idx, ix)
		}
	}
	sort.Slice(v.Idx, func(i, j int) bool { return v.Idx[i] < v.Idx[j] })
	for _, ix := range v.Idx {
		v.Val = append(v.Val, acc.m[ix])
	}
	clear(acc.m)
	return v
}

// Reset clears the accumulator without producing a vector.
func (acc *Accumulator) Reset() { clear(acc.m) }
