package sparse

import (
	"cmp"
	"slices"
)

// Acc is the contract every frontier accumulator satisfies: scatter adds in,
// one sorted Vector out. The map-backed Accumulator and the DenseAccumulator
// are interchangeable behind it (property-tested to emit identical vectors),
// so hot paths can pick a kernel per hop.
type Acc interface {
	// Add adds x at coordinate i.
	Add(i int32, x float64)
	// AddVector adds w·v into the accumulator.
	AddVector(v Vector, w float64)
	// Len reports the number of touched coordinates.
	Len() int
	// Take drains the accumulator into a sorted Vector and resets it.
	Take() Vector
	// Reset clears the accumulator without producing a vector.
	Reset()
}

// Accumulator gathers coordinate contributions and emits a sorted Vector.
// It is the fallback scratch structure for meta-path traversal: unbounded
// coordinate space, memory proportional to the touched set, one hash per
// scattered coordinate. The DenseAccumulator beats it whenever the target
// coordinate span is small enough to afford a dense scratch array; the
// adaptive kernel in internal/metapath picks between them per hop.
type Accumulator struct {
	m map[int32]float64
	// pairs is the reusable Take scratch: coordinates and values are
	// collected in one map pass and co-sorted, so Take never re-hashes
	// coordinates it already visited.
	pairs []coord
}

type coord struct {
	ix int32
	x  float64
}

// NewAccumulator creates an accumulator with a capacity hint.
func NewAccumulator(hint int) *Accumulator {
	return &Accumulator{m: make(map[int32]float64, hint)}
}

// Add adds x at coordinate i.
func (acc *Accumulator) Add(i int32, x float64) { acc.m[i] += x }

// AddVector adds w·v into the accumulator.
func (acc *Accumulator) AddVector(v Vector, w float64) {
	for i := range v.Idx {
		acc.m[v.Idx[i]] += w * v.Val[i]
	}
}

// Len reports the number of touched coordinates.
func (acc *Accumulator) Len() int { return len(acc.m) }

// Take drains the accumulator into a sorted Vector and resets it for reuse.
// Coordinates and values leave the map together in a single pass, so sorting
// costs no further hashing.
func (acc *Accumulator) Take() Vector {
	if len(acc.m) == 0 {
		return Vector{}
	}
	pairs := acc.pairs[:0]
	for ix, x := range acc.m {
		if x != 0 {
			pairs = append(pairs, coord{ix, x})
		}
	}
	clear(acc.m)
	acc.pairs = pairs // keep the grown scratch for the next Take
	slices.SortFunc(pairs, func(a, b coord) int { return cmp.Compare(a.ix, b.ix) })
	v := Vector{
		Idx: make([]int32, len(pairs)),
		Val: make([]float64, len(pairs)),
	}
	for i, c := range pairs {
		v.Idx[i] = c.ix
		v.Val[i] = c.x
	}
	return v
}

// Reset clears the accumulator without producing a vector.
func (acc *Accumulator) Reset() { clear(acc.m) }
