package sparse

import "sort"

// DenseAccumulator is the alternative scratch structure for frontier
// accumulation: a dense value array indexed by vertex ID plus a touched
// list. Compared to the map-backed Accumulator it trades O(|V|) resident
// memory and cache-unfriendly clearing for branch-free scatter adds.
//
// Measured trade-off (see BenchmarkAccumulators): the dense variant is
// ~1.4-1.9× faster per scatter/drain cycle at every tested frontier size,
// but it pins 8·|V| bytes per accumulator for the life of the traverser.
// The engine creates one traverser per worker and graphs run to millions of
// vertices, so the map remains the default; swap in the dense variant for
// single-traverser batch jobs on mid-sized graphs. Both produce identical
// vectors (property-tested).
type DenseAccumulator struct {
	val     []float64
	touched []int32
}

// NewDenseAccumulator creates an accumulator for coordinate space [0, n).
func NewDenseAccumulator(n int) *DenseAccumulator {
	return &DenseAccumulator{val: make([]float64, n)}
}

// Add adds x at coordinate i. i must be < the constructed size.
func (acc *DenseAccumulator) Add(i int32, x float64) {
	if acc.val[i] == 0 && x != 0 {
		acc.touched = append(acc.touched, i)
	}
	acc.val[i] += x
}

// AddVector adds w·v into the accumulator.
func (acc *DenseAccumulator) AddVector(v Vector, w float64) {
	for k := range v.Idx {
		acc.Add(v.Idx[k], w*v.Val[k])
	}
}

// Len reports the number of touched coordinates (including exact cancels).
func (acc *DenseAccumulator) Len() int { return len(acc.touched) }

// Take drains the accumulator into a sorted Vector and resets it for reuse.
func (acc *DenseAccumulator) Take() Vector {
	if len(acc.touched) == 0 {
		return Vector{}
	}
	sort.Slice(acc.touched, func(i, j int) bool { return acc.touched[i] < acc.touched[j] })
	out := Vector{
		Idx: make([]int32, 0, len(acc.touched)),
		Val: make([]float64, 0, len(acc.touched)),
	}
	prev := int32(-1)
	for _, ix := range acc.touched {
		if ix == prev {
			continue // coordinate re-touched after cancelling to zero
		}
		prev = ix
		if x := acc.val[ix]; x != 0 {
			out.Idx = append(out.Idx, ix)
			out.Val = append(out.Val, x)
		}
		acc.val[ix] = 0
	}
	acc.touched = acc.touched[:0]
	return out
}

// Reset clears the accumulator without producing a vector.
func (acc *DenseAccumulator) Reset() {
	for _, ix := range acc.touched {
		acc.val[ix] = 0
	}
	acc.touched = acc.touched[:0]
}
