package sparse

import "slices"

// DenseAccumulator is the Gustavson-style scratch structure for frontier
// accumulation: a dense value array indexed by coordinate plus a touched
// list. Compared to the map-backed Accumulator it trades O(span) resident
// memory and a touched-list sort for hash-free O(1) scatter adds; clearing
// is O(touched), not O(span), so a long-lived accumulator amortizes its
// scratch across many drains.
//
// The scratch grows lazily (Grow), so a zero-sized accumulator costs nothing
// until its first dense hop. The adaptive kernel in internal/metapath
// offsets coordinates by the target type's ID span base, keeping the scratch
// proportional to one vertex type rather than the whole graph. Both
// accumulators produce identical vectors (property-tested); see
// BenchmarkAccumulators and BenchmarkExpand for the measured crossovers.
type DenseAccumulator struct {
	val     []float64
	touched []int32
}

// NewDenseAccumulator creates an accumulator for coordinate space [0, n).
// n may be 0; the scratch then grows on the first Grow call.
func NewDenseAccumulator(n int) *DenseAccumulator {
	return &DenseAccumulator{val: make([]float64, n)}
}

// Grow ensures the accumulator accepts coordinates in [0, n). Growth
// preserves accumulated values and doubles capacity to amortize repeated
// calls with creeping spans.
func (acc *DenseAccumulator) Grow(n int) {
	if n <= len(acc.val) {
		return
	}
	if c := 2 * len(acc.val); n < c {
		n = c
	}
	val := make([]float64, n)
	copy(val, acc.val)
	acc.val = val
}

// Size reports the current coordinate-space size.
func (acc *DenseAccumulator) Size() int { return len(acc.val) }

// Add adds x at coordinate i. i must be < the current Size.
func (acc *DenseAccumulator) Add(i int32, x float64) {
	if acc.val[i] == 0 && x != 0 {
		acc.touched = append(acc.touched, i)
	}
	acc.val[i] += x
}

// AddVector adds w·v into the accumulator.
func (acc *DenseAccumulator) AddVector(v Vector, w float64) {
	for k := range v.Idx {
		acc.Add(v.Idx[k], w*v.Val[k])
	}
}

// Len reports the number of touched coordinates (including exact cancels).
func (acc *DenseAccumulator) Len() int { return len(acc.touched) }

// Take drains the accumulator into a sorted Vector and resets it for reuse.
// Only the touched list is sorted — the dense scratch is never scanned.
func (acc *DenseAccumulator) Take() Vector {
	if len(acc.touched) == 0 {
		return Vector{}
	}
	slices.Sort(acc.touched)
	out := Vector{
		Idx: make([]int32, 0, len(acc.touched)),
		Val: make([]float64, 0, len(acc.touched)),
	}
	prev := int32(-1)
	for _, ix := range acc.touched {
		if ix == prev {
			continue // coordinate re-touched after cancelling to zero
		}
		prev = ix
		if x := acc.val[ix]; x != 0 {
			out.Idx = append(out.Idx, ix)
			out.Val = append(out.Val, x)
		}
		acc.val[ix] = 0
	}
	acc.touched = acc.touched[:0]
	return out
}

// Reset clears the accumulator without producing a vector.
func (acc *DenseAccumulator) Reset() {
	for _, ix := range acc.touched {
		acc.val[ix] = 0
	}
	acc.touched = acc.touched[:0]
}
