// Package sparse provides the small sparse-vector toolkit used to represent
// meta-path neighbor vectors Φ_P(v) (Definition 7 of the paper) and to
// evaluate the NetOut formula, Equation (1), with sparse dot products.
//
// Vectors are stored in sorted coordinate form: parallel slices of indices
// and values with strictly increasing indices. This makes dot products,
// sums and norms linear merges, keeps memory compact for index
// pre-materialization, and supports exact byte accounting for the SPM index
// size study (Figure 5b).
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse vector in sorted coordinate form. Idx is strictly
// increasing; Val[i] is the value at coordinate Idx[i]. Zero values should
// not be stored (the constructors drop them). The zero Vector is an empty
// (all-zero) vector and is ready to use.
type Vector struct {
	Idx []int32
	Val []float64
}

// New builds a Vector from unsorted coordinate pairs, combining duplicates
// by addition and dropping zeros.
func New(idx []int32, val []float64) (Vector, error) {
	if len(idx) != len(val) {
		return Vector{}, fmt.Errorf("sparse: index/value length mismatch (%d vs %d)", len(idx), len(val))
	}
	m := make(map[int32]float64, len(idx))
	for i, ix := range idx {
		m[ix] += val[i]
	}
	return FromMap(m), nil
}

// FromMap builds a Vector from a coordinate map, dropping zeros.
func FromMap(m map[int32]float64) Vector {
	v := Vector{
		Idx: make([]int32, 0, len(m)),
		Val: make([]float64, 0, len(m)),
	}
	for ix, x := range m {
		if x != 0 {
			v.Idx = append(v.Idx, ix)
		}
	}
	sort.Slice(v.Idx, func(i, j int) bool { return v.Idx[i] < v.Idx[j] })
	for _, ix := range v.Idx {
		v.Val = append(v.Val, m[ix])
	}
	return v
}

// NNZ reports the number of stored (non-zero) coordinates.
func (a Vector) NNZ() int { return len(a.Idx) }

// IsZero reports whether the vector has no stored coordinates.
func (a Vector) IsZero() bool { return len(a.Idx) == 0 }

// At returns the value at coordinate i (0 if absent).
func (a Vector) At(i int32) float64 {
	k := sort.Search(len(a.Idx), func(k int) bool { return a.Idx[k] >= i })
	if k < len(a.Idx) && a.Idx[k] == i {
		return a.Val[k]
	}
	return 0
}

// Dot returns the inner product a·b by merging the two sorted index lists.
func (a Vector) Dot(b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// Norm2Sq returns the squared Euclidean norm ‖a‖₂². For a neighbor vector
// Φ_P(v) this equals the vertex's visibility κ(v,v) = |π_{PP⁻¹}(v,v)|.
func (a Vector) Norm2Sq() float64 {
	var s float64
	for _, x := range a.Val {
		s += x * x
	}
	return s
}

// Norm2 returns the Euclidean norm ‖a‖₂.
func (a Vector) Norm2() float64 { return math.Sqrt(a.Norm2Sq()) }

// L1 returns the sum of absolute values ‖a‖₁. For a neighbor vector with
// non-negative counts this is the total number of path instances from the
// source vertex.
func (a Vector) L1() float64 {
	var s float64
	for _, x := range a.Val {
		s += math.Abs(x)
	}
	return s
}

// Sum returns the plain coordinate sum Σᵢ aᵢ.
func (a Vector) Sum() float64 {
	var s float64
	for _, x := range a.Val {
		s += x
	}
	return s
}

// Scale returns s·a as a new vector. Scaling by zero yields the empty vector.
func (a Vector) Scale(s float64) Vector {
	if s == 0 {
		return Vector{}
	}
	out := Vector{Idx: append([]int32(nil), a.Idx...), Val: make([]float64, len(a.Val))}
	for i, x := range a.Val {
		out.Val[i] = s * x
	}
	return out
}

// Normalize returns a/‖a‖₂, or the zero vector if a is zero.
func (a Vector) Normalize() Vector {
	n := a.Norm2()
	if n == 0 {
		return Vector{}
	}
	return a.Scale(1 / n)
}

// Add returns a+b as a new vector (linear merge; exact zeros are dropped).
func Add(a, b Vector) Vector {
	out := Vector{
		Idx: make([]int32, 0, len(a.Idx)+len(b.Idx)),
		Val: make([]float64, 0, len(a.Idx)+len(b.Idx)),
	}
	i, j := 0, 0
	push := func(ix int32, x float64) {
		if x != 0 {
			out.Idx = append(out.Idx, ix)
			out.Val = append(out.Val, x)
		}
	}
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			push(a.Idx[i], a.Val[i])
			i++
		case a.Idx[i] > b.Idx[j]:
			push(b.Idx[j], b.Val[j])
			j++
		default:
			push(a.Idx[i], a.Val[i]+b.Val[j])
			i++
			j++
		}
	}
	for ; i < len(a.Idx); i++ {
		push(a.Idx[i], a.Val[i])
	}
	for ; j < len(b.Idx); j++ {
		push(b.Idx[j], b.Val[j])
	}
	return out
}

// Equal reports exact coordinate-wise equality.
func (a Vector) Equal(b Vector) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports coordinate-wise equality within an absolute tolerance,
// treating absent coordinates as zero.
func (a Vector) ApproxEqual(b Vector, tol float64) bool {
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			if math.Abs(a.Val[i]) > tol {
				return false
			}
			i++
		case i >= len(a.Idx) || a.Idx[i] > b.Idx[j]:
			if math.Abs(b.Val[j]) > tol {
				return false
			}
			j++
		default:
			if math.Abs(a.Val[i]-b.Val[j]) > tol {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Clone returns a deep copy.
func (a Vector) Clone() Vector {
	return Vector{
		Idx: append([]int32(nil), a.Idx...),
		Val: append([]float64(nil), a.Val...),
	}
}

// Bytes reports the in-memory footprint of the stored coordinates (4 bytes
// per index + 8 per value), used for the SPM index-size accounting of
// Figure 5b.
func (a Vector) Bytes() int { return len(a.Idx)*4 + len(a.Val)*8 }

// String renders the vector like "{3:1 7:2.5}".
func (a Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i := range a.Idx {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%g", a.Idx[i], a.Val[i])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Sum of a set of vectors, pairwise-merged. Used to form
// S = Σ_{v∈Sr} Φ_P(v) in Equation (1).
func Sum(vs []Vector) Vector {
	acc := NewAccumulator(0)
	for _, v := range vs {
		acc.AddVector(v, 1)
	}
	return acc.Take()
}
