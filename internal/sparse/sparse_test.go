package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vec(t *testing.T, pairs ...float64) Vector {
	t.Helper()
	if len(pairs)%2 != 0 {
		t.Fatal("vec wants index/value pairs")
	}
	m := make(map[int32]float64)
	for i := 0; i < len(pairs); i += 2 {
		m[int32(pairs[i])] += pairs[i+1]
	}
	return FromMap(m)
}

func TestNewAndFromMap(t *testing.T) {
	v, err := New([]int32{5, 1, 5, 9}, []float64{1, 2, 3, 0})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := vec(t, 1, 2, 5, 4)
	if !v.Equal(want) {
		t.Fatalf("New = %v, want %v", v, want)
	}
	if _, err := New([]int32{1}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if v.NNZ() != 2 || v.IsZero() {
		t.Errorf("NNZ/IsZero wrong for %v", v)
	}
	var zero Vector
	if !zero.IsZero() || zero.NNZ() != 0 {
		t.Error("zero Vector should be empty")
	}
}

func TestAt(t *testing.T) {
	v := vec(t, 1, 2, 5, 4, 100, -1)
	cases := map[int32]float64{0: 0, 1: 2, 3: 0, 5: 4, 100: -1, 101: 0}
	for ix, want := range cases {
		if got := v.At(ix); got != want {
			t.Errorf("At(%d) = %g, want %g", ix, got, want)
		}
	}
}

func TestDotAndNorms(t *testing.T) {
	a := vec(t, 0, 10, 1, 10, 2, 1, 3, 1)
	b := vec(t, 1, 1, 3, 20, 4, 7)
	if got := a.Dot(b); got != 10+20 {
		t.Fatalf("Dot = %g, want 30", got)
	}
	if got := a.Norm2Sq(); got != 100+100+1+1 {
		t.Fatalf("Norm2Sq = %g, want 202", got)
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(202)) > 1e-12 {
		t.Fatalf("Norm2 = %g", got)
	}
	c := vec(t, 0, -3, 1, 4)
	if got := c.L1(); got != 7 {
		t.Fatalf("L1 = %g, want 7", got)
	}
	if got := c.Sum(); got != 1 {
		t.Fatalf("Sum = %g, want 1", got)
	}
}

func TestScaleNormalize(t *testing.T) {
	a := vec(t, 1, 3, 2, 4)
	s := a.Scale(2)
	if !s.Equal(vec(t, 1, 6, 2, 8)) {
		t.Fatalf("Scale = %v", s)
	}
	if !a.Scale(0).IsZero() {
		t.Error("Scale(0) should be zero vector")
	}
	n := a.Normalize()
	if math.Abs(n.Norm2()-1) > 1e-12 {
		t.Fatalf("Normalize norm = %g", n.Norm2())
	}
	var zero Vector
	if !zero.Normalize().IsZero() {
		t.Error("Normalize of zero should be zero")
	}
}

func TestAdd(t *testing.T) {
	a := vec(t, 1, 1, 3, 2)
	b := vec(t, 2, 5, 3, -2, 9, 1)
	got := Add(a, b)
	want := vec(t, 1, 1, 2, 5, 9, 1) // coordinate 3 cancels exactly
	if !got.Equal(want) {
		t.Fatalf("Add = %v, want %v", got, want)
	}
	if !Add(Vector{}, Vector{}).IsZero() {
		t.Error("Add of zeros should be zero")
	}
}

func TestSum(t *testing.T) {
	vs := []Vector{vec(t, 0, 1), vec(t, 0, 2, 5, 1), vec(t, 5, -1)}
	got := Sum(vs)
	if !got.Equal(vec(t, 0, 3)) {
		t.Fatalf("Sum = %v", got)
	}
	if !Sum(nil).IsZero() {
		t.Error("Sum(nil) should be zero")
	}
}

func TestApproxEqual(t *testing.T) {
	a := vec(t, 1, 1.0, 2, 2.0)
	b := vec(t, 1, 1.0+1e-12, 2, 2.0)
	if !a.ApproxEqual(b, 1e-9) {
		t.Error("should be approx equal")
	}
	c := vec(t, 1, 1.0, 2, 2.0, 3, 0.5)
	if a.ApproxEqual(c, 1e-9) {
		t.Error("extra coordinate should break approx equality")
	}
	if !a.ApproxEqual(Add(a, vec(t, 9, 1e-12)), 1e-9) {
		t.Error("tiny extra coordinate within tol should pass")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := vec(t, 1, 1)
	c := a.Clone()
	c.Val[0] = 99
	if a.Val[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestBytesAndString(t *testing.T) {
	a := vec(t, 1, 1, 2, 2)
	if a.Bytes() != 2*(4+8) {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
	if s := a.String(); s != "{1:1 2:2}" {
		t.Fatalf("String = %q", s)
	}
}

func randomVector(r *rand.Rand, maxIdx int32) Vector {
	m := make(map[int32]float64)
	n := r.Intn(20)
	for i := 0; i < n; i++ {
		m[r.Int31n(maxIdx)] = float64(r.Intn(21) - 10)
	}
	return FromMap(m)
}

func TestQuickDotSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomVector(rr, 50), randomVector(rr, 50)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddCommutativeAndConsistentWithAt(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomVector(rr, 40), randomVector(rr, 40)
		s1, s2 := Add(a, b), Add(b, a)
		if !s1.Equal(s2) {
			return false
		}
		for ix := int32(0); ix < 40; ix++ {
			if math.Abs(s1.At(ix)-(a.At(ix)+b.At(ix))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDotMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomVector(rr, 30), randomVector(rr, 30)
		var dense float64
		for ix := int32(0); ix < 30; ix++ {
			dense += a.At(ix) * b.At(ix)
		}
		return math.Abs(a.Dot(b)-dense) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortedInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := Add(randomVector(rr, 60), randomVector(rr, 60))
		for i := 1; i < len(v.Idx); i++ {
			if v.Idx[i-1] >= v.Idx[i] {
				return false
			}
		}
		for _, x := range v.Val {
			if x == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulator(t *testing.T) {
	acc := NewAccumulator(4)
	acc.Add(5, 1)
	acc.Add(2, 3)
	acc.Add(5, 2)
	if acc.Len() != 2 {
		t.Fatalf("Len = %d", acc.Len())
	}
	v := acc.Take()
	if !v.Equal(FromMap(map[int32]float64{2: 3, 5: 3})) {
		t.Fatalf("Take = %v", v)
	}
	if acc.Len() != 0 {
		t.Error("Take should reset")
	}
	acc.AddVector(v, 2)
	got := acc.Take()
	if !got.Equal(v.Scale(2)) {
		t.Fatalf("AddVector = %v", got)
	}
	acc.Add(1, 1)
	acc.Reset()
	if !acc.Take().IsZero() {
		t.Error("Reset should clear")
	}
	// Exact cancellation inside the accumulator drops the coordinate.
	acc.Add(3, 1)
	acc.Add(3, -1)
	if !acc.Take().IsZero() {
		t.Error("cancelled coordinate should be dropped")
	}
}

func TestDenseAccumulator(t *testing.T) {
	acc := NewDenseAccumulator(16)
	acc.Add(5, 1)
	acc.Add(2, 3)
	acc.Add(5, 2)
	if acc.Len() != 2 {
		t.Fatalf("Len = %d", acc.Len())
	}
	v := acc.Take()
	if !v.Equal(FromMap(map[int32]float64{2: 3, 5: 3})) {
		t.Fatalf("Take = %v", v)
	}
	if acc.Len() != 0 || !acc.Take().IsZero() {
		t.Error("Take should reset")
	}
	acc.AddVector(v, 2)
	if got := acc.Take(); !got.Equal(v.Scale(2)) {
		t.Fatalf("AddVector = %v", got)
	}
	// Exact cancellation drops the coordinate; re-adding after a cancel
	// must not duplicate it.
	acc.Add(3, 1)
	acc.Add(3, -1)
	acc.Add(3, 7)
	got := acc.Take()
	if !got.Equal(FromMap(map[int32]float64{3: 7})) {
		t.Fatalf("cancel+readd = %v", got)
	}
	// Reset clears without emitting.
	acc.Add(1, 1)
	acc.Reset()
	if !acc.Take().IsZero() {
		t.Error("Reset should clear")
	}
}

// Both accumulators satisfy the shared kernel contract.
var (
	_ Acc = (*Accumulator)(nil)
	_ Acc = (*DenseAccumulator)(nil)
)

func TestDenseAccumulatorGrow(t *testing.T) {
	acc := NewDenseAccumulator(0)
	if acc.Size() != 0 {
		t.Fatalf("Size = %d, want 0", acc.Size())
	}
	acc.Grow(4)
	acc.Add(3, 2)
	acc.Grow(100) // growth must preserve accumulated values
	acc.Add(99, 1)
	if acc.Size() < 100 {
		t.Fatalf("Size = %d after Grow(100)", acc.Size())
	}
	got := acc.Take()
	if !got.Equal(FromMap(map[int32]float64{3: 2, 99: 1})) {
		t.Fatalf("Take after Grow = %v", got)
	}
	// Grow never shrinks.
	acc.Grow(10)
	if acc.Size() < 100 {
		t.Fatalf("Grow shrank the scratch to %d", acc.Size())
	}
}

// Both accumulators must produce identical vectors for any add sequence.
func TestQuickAccumulatorsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewAccumulator(8)
		d := NewDenseAccumulator(64)
		for i := 0; i < 200; i++ {
			ix := r.Int31n(64)
			x := float64(r.Intn(9) - 4)
			m.Add(ix, x)
			d.Add(ix, x)
		}
		return m.Take().Equal(d.Take())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAccumulators compares the two scratch structures across frontier
// densities (the design choice documented on DenseAccumulator).
func BenchmarkAccumulators(b *testing.B) {
	const space = 1 << 16
	for _, frontier := range []int{32, 1024, 16384} {
		idx := make([]int32, frontier)
		r := rand.New(rand.NewSource(1))
		for i := range idx {
			idx[i] = r.Int31n(space)
		}
		b.Run(fmt.Sprintf("map/frontier=%d", frontier), func(b *testing.B) {
			acc := NewAccumulator(frontier)
			for i := 0; i < b.N; i++ {
				for _, ix := range idx {
					acc.Add(ix, 1)
				}
				_ = acc.Take()
			}
		})
		b.Run(fmt.Sprintf("dense/frontier=%d", frontier), func(b *testing.B) {
			acc := NewDenseAccumulator(space)
			for i := 0; i < b.N; i++ {
				for _, ix := range idx {
					acc.Add(ix, 1)
				}
				_ = acc.Take()
			}
		})
	}
}
