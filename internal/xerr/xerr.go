// Package xerr is the serving layer's structured error core: stable
// machine-readable codes, a Failure/Defect/Interrupt taxonomy, and
// errors.Is/As-clean wrapping — with zero policy baked in. Transport
// adapters (error→HTTP status, error→metrics outcome label) live in
// adapters.go on top of the classification, never inside it.
//
// The taxonomy:
//
//   - A Failure is an expected domain or infrastructure error (a query that
//     does not validate, a pool that is shutting down, admission control
//     shedding load). Failures carry no stack — they are not bugs.
//   - A Defect is a programmer bug surfacing at runtime, typically a
//     recovered panic. Defects keep the stack captured at the defect site,
//     because the stack is the debugging artifact.
//   - An Interrupt wraps a context error: the caller cancelled or the
//     deadline expired. Interrupts unwrap to context.Canceled or
//     context.DeadlineExceeded, so existing errors.Is checks keep working.
//
// Classification is non-invasive: CodeOf/KindOf/StackOf walk the unwrap
// graph (including multi-unwrap joins) looking for the small Coder/Kinder/
// Stacker interfaces, fall back to the context sentinels, and classify
// everything else as INTERNAL — an unrecognized error is the server's
// fault until proven otherwise, never the client's.
package xerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// Code is a stable machine-readable error code, wire-safe by design: the
// values never change meaning, so shards, retry layers and dashboards can
// switch on them across versions.
type Code string

// The code set. It deliberately stays small — every serving-layer error
// maps onto exactly one of these.
const (
	// InvalidArgument: the request itself is malformed or fails validation
	// (oql parse/validate errors). The client must change the request.
	InvalidArgument Code = "INVALID_ARGUMENT"
	// NotFound: the request names an entity that does not exist (e.g. an
	// anchor vertex name with no vertex).
	NotFound Code = "NOT_FOUND"
	// ResourceExhausted: admission control shed the request; retry with
	// backoff.
	ResourceExhausted Code = "RESOURCE_EXHAUSTED"
	// DeadlineExceeded: the per-request deadline expired before completion.
	DeadlineExceeded Code = "DEADLINE_EXCEEDED"
	// Canceled: the caller went away; nobody is waiting for an answer.
	Canceled Code = "CANCELED"
	// Unavailable: the serving process cannot take requests right now
	// (draining/closed pool); retry against another replica.
	Unavailable Code = "UNAVAILABLE"
	// Internal: an invariant broke server-side — recovered panics,
	// materializer I/O failures, persist corruption, and every error nothing
	// else claims.
	Internal Code = "INTERNAL"
)

// Kind is the taxonomy axis orthogonal to Code: what sort of thing went
// wrong, which decides whether a stack is attached and how operators triage.
type Kind uint8

const (
	// KindFailure is an expected domain/infra error; no stack.
	KindFailure Kind = iota
	// KindDefect is a programmer bug (recovered panic); keeps its stack.
	KindDefect
	// KindInterrupt wraps a context error (cancellation or deadline).
	KindInterrupt
)

// String names the kind for logs and labels.
func (k Kind) String() string {
	switch k {
	case KindDefect:
		return "defect"
	case KindInterrupt:
		return "interrupt"
	default:
		return "failure"
	}
}

// Coder lets any error type declare its code without wrapping — foreign
// types (oql.SyntaxError, core.PanicError) participate in classification by
// implementing it. *Error implements it too.
type Coder interface{ ErrorCode() Code }

// Kinder is the analogous declaration for the taxonomy kind.
type Kinder interface{ ErrorKind() Kind }

// Stacker surfaces a defect's captured stack.
type Stacker interface{ ErrorStack() string }

// requestIDer surfaces the per-request correlation ID an error carries.
type requestIDer interface{ RequestID() string }

// Error is the structured error. The message lives in the wrapped cause
// (err, never nil), so Error() and the unwrap chain behave exactly like the
// fmt.Errorf chains this package replaces — migration changes an error's
// classification, never its text.
type Error struct {
	code      Code
	kind      Kind
	err       error  // message-bearing cause; never nil
	stack     string // defects only
	requestID string
}

// Error returns the message of the wrapped cause.
func (e *Error) Error() string { return e.err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.err }

// ErrorCode returns the stable machine-readable code.
func (e *Error) ErrorCode() Code { return e.code }

// ErrorKind returns the taxonomy kind.
func (e *Error) ErrorKind() Kind { return e.kind }

// ErrorStack returns the captured stack ("" unless the error is a defect).
func (e *Error) ErrorStack() string { return e.stack }

// RequestID returns the per-request correlation ID attached via
// WithRequestID ("" when none).
func (e *Error) RequestID() string { return e.requestID }

// Format renders the error; %+v appends the kind, code, request ID and (for
// defects) the stack for diagnostics, while %v/%s stay concise.
func (e *Error) Format(f fmt.State, verb rune) {
	if verb == 'v' && f.Flag('+') {
		fmt.Fprintf(f, "%s [%s/%s]", e.err.Error(), e.kind, e.code)
		if e.requestID != "" {
			fmt.Fprintf(f, " rid=%s", e.requestID)
		}
		// A wrapper (e.g. WithRequestID) holds no stack of its own; render
		// the defect's stack from anywhere in the chain.
		if st := StackOf(e); st != "" {
			fmt.Fprintf(f, "\n%s", st)
		}
		return
	}
	fmt.Fprintf(f, "%s", e.err.Error())
}

// New returns a Failure with the given code and message.
func New(code Code, msg string) *Error {
	return &Error{code: code, kind: KindFailure, err: errors.New(msg)}
}

// Newf returns a Failure with a fmt.Errorf-built message; %w operands wrap
// into the chain and stay visible to errors.Is/As.
func Newf(code Code, format string, args ...any) *Error {
	return &Error{code: code, kind: KindFailure, err: fmt.Errorf(format, args...)}
}

// Wrap classifies an existing error under code without changing its message
// or its unwrap chain. A nil err returns nil.
func Wrap(code Code, err error) *Error {
	if err == nil {
		return nil
	}
	return &Error{code: code, kind: KindOf(err), err: err}
}

// Defectf returns a Defect (code INTERNAL) carrying the stack captured at
// the call site — for invariant violations detected in code rather than via
// panic.
func Defectf(format string, args ...any) *Error {
	return &Error{
		code:  Internal,
		kind:  KindDefect,
		err:   fmt.Errorf(format, args...),
		stack: string(debug.Stack()),
	}
}

// Interrupt wraps a context error so it classifies as CANCELED or
// DEADLINE_EXCEEDED while still unwrapping to the context sentinel. A cause
// that is neither classifies INTERNAL (a mislabeled interrupt is a bug).
func Interrupt(cause error) *Error {
	code := Internal
	switch {
	case errors.Is(cause, context.Canceled):
		code = Canceled
	case errors.Is(cause, context.DeadlineExceeded):
		code = DeadlineExceeded
	}
	return &Error{code: code, kind: KindInterrupt, err: cause}
}

// FromWire reconstructs a classified error from the wire-safe triple a
// shard ships across a network boundary (message text, code, kind). The
// reconstruction preserves classification exactly — CodeOf and KindOf on
// the result return the inputs — and a cause that stood for a context
// sentinel on the far side keeps answering errors.Is against that sentinel,
// so coordinator-side deadline checks treat a remote expiry like a local
// one. Stacks do not cross the wire: a remote defect classifies as
// KindDefect but StackOf returns "" (the remote's own log has the frames).
// An empty code classifies INTERNAL, mirroring CodeOf's default.
func FromWire(code Code, kind Kind, msg string) *Error {
	if code == "" {
		code = Internal
	}
	var cause error
	switch code {
	case Canceled:
		cause = &wireCause{msg: msg, is: context.Canceled}
	case DeadlineExceeded:
		cause = &wireCause{msg: msg, is: context.DeadlineExceeded}
	default:
		cause = errors.New(msg)
	}
	return &Error{code: code, kind: kind, err: cause}
}

// wireCause is a deserialized error cause that keeps errors.Is working
// against the context sentinel it stood for on the far side of the wire.
type wireCause struct {
	msg string
	is  error
}

func (w *wireCause) Error() string        { return w.msg }
func (w *wireCause) Is(target error) bool { return target == w.is }

// WithRequestID returns err wrapped with a per-request correlation ID,
// preserving classification and the full unwrap chain (errors.Is against
// the original error and any sentinel it wraps keeps working). nil err or
// empty id return err unchanged.
func WithRequestID(err error, id string) error {
	if err == nil || id == "" {
		return err
	}
	return &Error{code: CodeOf(err), kind: KindOf(err), err: err, requestID: id}
}

// CodeOf classifies an error: the first Coder in the unwrap graph wins,
// then the context sentinels (CANCELED, DEADLINE_EXCEEDED), and every
// unclaimed non-nil error is INTERNAL — never the client's fault by
// default. CodeOf(nil) is "".
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	var c Coder
	if errors.As(err, &c) {
		return c.ErrorCode()
	}
	switch {
	case errors.Is(err, context.Canceled):
		return Canceled
	case errors.Is(err, context.DeadlineExceeded):
		return DeadlineExceeded
	}
	return Internal
}

// KindOf classifies an error's taxonomy kind: the first Kinder wins, context
// errors are interrupts, everything else is a failure.
func KindOf(err error) Kind {
	if err == nil {
		return KindFailure
	}
	var k Kinder
	if errors.As(err, &k) {
		return k.ErrorKind()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return KindInterrupt
	}
	return KindFailure
}

// StackOf returns the first non-empty captured stack in the unwrap graph
// ("" when the error carries none — i.e. it is not a defect). Unlike a
// plain errors.As, it keeps walking past Stackers with empty stacks, so a
// request-ID wrapper around a recovered panic still yields the panic's
// stack.
func StackOf(err error) string {
	for err != nil {
		if s, ok := err.(Stacker); ok {
			if st := s.ErrorStack(); st != "" {
				return st
			}
		}
		switch u := err.(type) {
		case interface{ Unwrap() error }:
			err = u.Unwrap()
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				if st := StackOf(e); st != "" {
					return st
				}
			}
			return ""
		default:
			return ""
		}
	}
	return ""
}

// RequestIDOf returns the per-request correlation ID attached to err (""
// when none).
func RequestIDOf(err error) string {
	var r requestIDer
	if errors.As(err, &r) {
		return r.RequestID()
	}
	return ""
}
